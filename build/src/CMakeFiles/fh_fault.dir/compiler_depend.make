# Empty compiler generated dependencies file for fh_fault.
# This may be replaced when dependencies are built.
