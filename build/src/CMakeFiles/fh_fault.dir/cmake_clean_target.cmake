file(REMOVE_RECURSE
  "libfh_fault.a"
)
