file(REMOVE_RECURSE
  "CMakeFiles/fh_fault.dir/fault/campaign.cc.o"
  "CMakeFiles/fh_fault.dir/fault/campaign.cc.o.d"
  "CMakeFiles/fh_fault.dir/fault/injector.cc.o"
  "CMakeFiles/fh_fault.dir/fault/injector.cc.o.d"
  "CMakeFiles/fh_fault.dir/fault/tandem.cc.o"
  "CMakeFiles/fh_fault.dir/fault/tandem.cc.o.d"
  "libfh_fault.a"
  "libfh_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fh_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
