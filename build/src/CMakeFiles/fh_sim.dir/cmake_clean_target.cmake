file(REMOVE_RECURSE
  "libfh_sim.a"
)
