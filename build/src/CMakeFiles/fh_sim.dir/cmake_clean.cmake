file(REMOVE_RECURSE
  "CMakeFiles/fh_sim.dir/sim/config.cc.o"
  "CMakeFiles/fh_sim.dir/sim/config.cc.o.d"
  "CMakeFiles/fh_sim.dir/sim/logging.cc.o"
  "CMakeFiles/fh_sim.dir/sim/logging.cc.o.d"
  "CMakeFiles/fh_sim.dir/sim/rng.cc.o"
  "CMakeFiles/fh_sim.dir/sim/rng.cc.o.d"
  "CMakeFiles/fh_sim.dir/sim/stats.cc.o"
  "CMakeFiles/fh_sim.dir/sim/stats.cc.o.d"
  "CMakeFiles/fh_sim.dir/sim/text_table.cc.o"
  "CMakeFiles/fh_sim.dir/sim/text_table.cc.o.d"
  "libfh_sim.a"
  "libfh_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fh_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
