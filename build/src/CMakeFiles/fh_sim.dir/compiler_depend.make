# Empty compiler generated dependencies file for fh_sim.
# This may be replaced when dependencies are built.
