file(REMOVE_RECURSE
  "libfh_workload.a"
)
