file(REMOVE_RECURSE
  "CMakeFiles/fh_workload.dir/workload/kernels.cc.o"
  "CMakeFiles/fh_workload.dir/workload/kernels.cc.o.d"
  "CMakeFiles/fh_workload.dir/workload/workload.cc.o"
  "CMakeFiles/fh_workload.dir/workload/workload.cc.o.d"
  "libfh_workload.a"
  "libfh_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fh_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
