# Empty compiler generated dependencies file for fh_workload.
# This may be replaced when dependencies are built.
