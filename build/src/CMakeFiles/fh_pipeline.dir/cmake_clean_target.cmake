file(REMOVE_RECURSE
  "libfh_pipeline.a"
)
