
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/branch_predictor.cc" "src/CMakeFiles/fh_pipeline.dir/pipeline/branch_predictor.cc.o" "gcc" "src/CMakeFiles/fh_pipeline.dir/pipeline/branch_predictor.cc.o.d"
  "/root/repo/src/pipeline/core.cc" "src/CMakeFiles/fh_pipeline.dir/pipeline/core.cc.o" "gcc" "src/CMakeFiles/fh_pipeline.dir/pipeline/core.cc.o.d"
  "/root/repo/src/pipeline/regfile.cc" "src/CMakeFiles/fh_pipeline.dir/pipeline/regfile.cc.o" "gcc" "src/CMakeFiles/fh_pipeline.dir/pipeline/regfile.cc.o.d"
  "/root/repo/src/pipeline/rename.cc" "src/CMakeFiles/fh_pipeline.dir/pipeline/rename.cc.o" "gcc" "src/CMakeFiles/fh_pipeline.dir/pipeline/rename.cc.o.d"
  "/root/repo/src/pipeline/rob.cc" "src/CMakeFiles/fh_pipeline.dir/pipeline/rob.cc.o" "gcc" "src/CMakeFiles/fh_pipeline.dir/pipeline/rob.cc.o.d"
  "/root/repo/src/pipeline/stats_dump.cc" "src/CMakeFiles/fh_pipeline.dir/pipeline/stats_dump.cc.o" "gcc" "src/CMakeFiles/fh_pipeline.dir/pipeline/stats_dump.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fh_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fh_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fh_filters.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
