file(REMOVE_RECURSE
  "CMakeFiles/fh_pipeline.dir/pipeline/branch_predictor.cc.o"
  "CMakeFiles/fh_pipeline.dir/pipeline/branch_predictor.cc.o.d"
  "CMakeFiles/fh_pipeline.dir/pipeline/core.cc.o"
  "CMakeFiles/fh_pipeline.dir/pipeline/core.cc.o.d"
  "CMakeFiles/fh_pipeline.dir/pipeline/regfile.cc.o"
  "CMakeFiles/fh_pipeline.dir/pipeline/regfile.cc.o.d"
  "CMakeFiles/fh_pipeline.dir/pipeline/rename.cc.o"
  "CMakeFiles/fh_pipeline.dir/pipeline/rename.cc.o.d"
  "CMakeFiles/fh_pipeline.dir/pipeline/rob.cc.o"
  "CMakeFiles/fh_pipeline.dir/pipeline/rob.cc.o.d"
  "CMakeFiles/fh_pipeline.dir/pipeline/stats_dump.cc.o"
  "CMakeFiles/fh_pipeline.dir/pipeline/stats_dump.cc.o.d"
  "libfh_pipeline.a"
  "libfh_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fh_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
