# Empty compiler generated dependencies file for fh_pipeline.
# This may be replaced when dependencies are built.
