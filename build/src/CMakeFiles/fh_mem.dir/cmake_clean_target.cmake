file(REMOVE_RECURSE
  "libfh_mem.a"
)
