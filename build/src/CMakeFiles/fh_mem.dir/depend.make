# Empty dependencies file for fh_mem.
# This may be replaced when dependencies are built.
