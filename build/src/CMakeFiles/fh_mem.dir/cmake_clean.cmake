file(REMOVE_RECURSE
  "CMakeFiles/fh_mem.dir/mem/cache.cc.o"
  "CMakeFiles/fh_mem.dir/mem/cache.cc.o.d"
  "CMakeFiles/fh_mem.dir/mem/hierarchy.cc.o"
  "CMakeFiles/fh_mem.dir/mem/hierarchy.cc.o.d"
  "CMakeFiles/fh_mem.dir/mem/memory.cc.o"
  "CMakeFiles/fh_mem.dir/mem/memory.cc.o.d"
  "CMakeFiles/fh_mem.dir/mem/tlb.cc.o"
  "CMakeFiles/fh_mem.dir/mem/tlb.cc.o.d"
  "libfh_mem.a"
  "libfh_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fh_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
