file(REMOVE_RECURSE
  "libfh_redundancy.a"
)
