file(REMOVE_RECURSE
  "CMakeFiles/fh_redundancy.dir/redundancy/srt.cc.o"
  "CMakeFiles/fh_redundancy.dir/redundancy/srt.cc.o.d"
  "libfh_redundancy.a"
  "libfh_redundancy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fh_redundancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
