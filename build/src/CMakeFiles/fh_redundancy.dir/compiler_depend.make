# Empty compiler generated dependencies file for fh_redundancy.
# This may be replaced when dependencies are built.
