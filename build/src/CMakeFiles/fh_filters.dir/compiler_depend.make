# Empty compiler generated dependencies file for fh_filters.
# This may be replaced when dependencies are built.
