file(REMOVE_RECURSE
  "libfh_filters.a"
)
