
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filters/bit_filter.cc" "src/CMakeFiles/fh_filters.dir/filters/bit_filter.cc.o" "gcc" "src/CMakeFiles/fh_filters.dir/filters/bit_filter.cc.o.d"
  "/root/repo/src/filters/detector.cc" "src/CMakeFiles/fh_filters.dir/filters/detector.cc.o" "gcc" "src/CMakeFiles/fh_filters.dir/filters/detector.cc.o.d"
  "/root/repo/src/filters/pbfs.cc" "src/CMakeFiles/fh_filters.dir/filters/pbfs.cc.o" "gcc" "src/CMakeFiles/fh_filters.dir/filters/pbfs.cc.o.d"
  "/root/repo/src/filters/second_level.cc" "src/CMakeFiles/fh_filters.dir/filters/second_level.cc.o" "gcc" "src/CMakeFiles/fh_filters.dir/filters/second_level.cc.o.d"
  "/root/repo/src/filters/state_machine.cc" "src/CMakeFiles/fh_filters.dir/filters/state_machine.cc.o" "gcc" "src/CMakeFiles/fh_filters.dir/filters/state_machine.cc.o.d"
  "/root/repo/src/filters/tcam.cc" "src/CMakeFiles/fh_filters.dir/filters/tcam.cc.o" "gcc" "src/CMakeFiles/fh_filters.dir/filters/tcam.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
