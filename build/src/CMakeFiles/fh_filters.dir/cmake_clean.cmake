file(REMOVE_RECURSE
  "CMakeFiles/fh_filters.dir/filters/bit_filter.cc.o"
  "CMakeFiles/fh_filters.dir/filters/bit_filter.cc.o.d"
  "CMakeFiles/fh_filters.dir/filters/detector.cc.o"
  "CMakeFiles/fh_filters.dir/filters/detector.cc.o.d"
  "CMakeFiles/fh_filters.dir/filters/pbfs.cc.o"
  "CMakeFiles/fh_filters.dir/filters/pbfs.cc.o.d"
  "CMakeFiles/fh_filters.dir/filters/second_level.cc.o"
  "CMakeFiles/fh_filters.dir/filters/second_level.cc.o.d"
  "CMakeFiles/fh_filters.dir/filters/state_machine.cc.o"
  "CMakeFiles/fh_filters.dir/filters/state_machine.cc.o.d"
  "CMakeFiles/fh_filters.dir/filters/tcam.cc.o"
  "CMakeFiles/fh_filters.dir/filters/tcam.cc.o.d"
  "libfh_filters.a"
  "libfh_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fh_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
