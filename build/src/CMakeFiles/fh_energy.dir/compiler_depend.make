# Empty compiler generated dependencies file for fh_energy.
# This may be replaced when dependencies are built.
