file(REMOVE_RECURSE
  "libfh_energy.a"
)
