file(REMOVE_RECURSE
  "CMakeFiles/fh_energy.dir/energy/cacti_lite.cc.o"
  "CMakeFiles/fh_energy.dir/energy/cacti_lite.cc.o.d"
  "CMakeFiles/fh_energy.dir/energy/energy_model.cc.o"
  "CMakeFiles/fh_energy.dir/energy/energy_model.cc.o.d"
  "libfh_energy.a"
  "libfh_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fh_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
