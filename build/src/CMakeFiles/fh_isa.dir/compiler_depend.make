# Empty compiler generated dependencies file for fh_isa.
# This may be replaced when dependencies are built.
