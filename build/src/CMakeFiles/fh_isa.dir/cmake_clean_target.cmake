file(REMOVE_RECURSE
  "libfh_isa.a"
)
