file(REMOVE_RECURSE
  "CMakeFiles/fh_isa.dir/isa/exec.cc.o"
  "CMakeFiles/fh_isa.dir/isa/exec.cc.o.d"
  "CMakeFiles/fh_isa.dir/isa/functional.cc.o"
  "CMakeFiles/fh_isa.dir/isa/functional.cc.o.d"
  "CMakeFiles/fh_isa.dir/isa/instruction.cc.o"
  "CMakeFiles/fh_isa.dir/isa/instruction.cc.o.d"
  "CMakeFiles/fh_isa.dir/isa/opcode.cc.o"
  "CMakeFiles/fh_isa.dir/isa/opcode.cc.o.d"
  "CMakeFiles/fh_isa.dir/isa/program.cc.o"
  "CMakeFiles/fh_isa.dir/isa/program.cc.o.d"
  "libfh_isa.a"
  "libfh_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fh_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
