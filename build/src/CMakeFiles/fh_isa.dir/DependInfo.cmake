
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/exec.cc" "src/CMakeFiles/fh_isa.dir/isa/exec.cc.o" "gcc" "src/CMakeFiles/fh_isa.dir/isa/exec.cc.o.d"
  "/root/repo/src/isa/functional.cc" "src/CMakeFiles/fh_isa.dir/isa/functional.cc.o" "gcc" "src/CMakeFiles/fh_isa.dir/isa/functional.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "src/CMakeFiles/fh_isa.dir/isa/instruction.cc.o" "gcc" "src/CMakeFiles/fh_isa.dir/isa/instruction.cc.o.d"
  "/root/repo/src/isa/opcode.cc" "src/CMakeFiles/fh_isa.dir/isa/opcode.cc.o" "gcc" "src/CMakeFiles/fh_isa.dir/isa/opcode.cc.o.d"
  "/root/repo/src/isa/program.cc" "src/CMakeFiles/fh_isa.dir/isa/program.cc.o" "gcc" "src/CMakeFiles/fh_isa.dir/isa/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fh_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
