file(REMOVE_RECURSE
  "CMakeFiles/test_srt.dir/test_srt.cc.o"
  "CMakeFiles/test_srt.dir/test_srt.cc.o.d"
  "test_srt"
  "test_srt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_srt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
