file(REMOVE_RECURSE
  "CMakeFiles/test_second_level.dir/test_second_level.cc.o"
  "CMakeFiles/test_second_level.dir/test_second_level.cc.o.d"
  "test_second_level"
  "test_second_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_second_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
