file(REMOVE_RECURSE
  "CMakeFiles/test_pbfs.dir/test_pbfs.cc.o"
  "CMakeFiles/test_pbfs.dir/test_pbfs.cc.o.d"
  "test_pbfs"
  "test_pbfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pbfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
