# Empty compiler generated dependencies file for test_pbfs.
# This may be replaced when dependencies are built.
