file(REMOVE_RECURSE
  "CMakeFiles/test_bit_filter.dir/test_bit_filter.cc.o"
  "CMakeFiles/test_bit_filter.dir/test_bit_filter.cc.o.d"
  "test_bit_filter"
  "test_bit_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bit_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
