# Empty dependencies file for test_bit_filter.
# This may be replaced when dependencies are built.
