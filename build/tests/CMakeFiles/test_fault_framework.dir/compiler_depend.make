# Empty compiler generated dependencies file for test_fault_framework.
# This may be replaced when dependencies are built.
