file(REMOVE_RECURSE
  "CMakeFiles/test_fault_framework.dir/test_fault_framework.cc.o"
  "CMakeFiles/test_fault_framework.dir/test_fault_framework.cc.o.d"
  "test_fault_framework"
  "test_fault_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
