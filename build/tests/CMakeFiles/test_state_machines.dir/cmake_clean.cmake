file(REMOVE_RECURSE
  "CMakeFiles/test_state_machines.dir/test_state_machines.cc.o"
  "CMakeFiles/test_state_machines.dir/test_state_machines.cc.o.d"
  "test_state_machines"
  "test_state_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_state_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
