# Empty dependencies file for test_state_machines.
# This may be replaced when dependencies are built.
