# Empty compiler generated dependencies file for test_hierarchy_properties.
# This may be replaced when dependencies are built.
