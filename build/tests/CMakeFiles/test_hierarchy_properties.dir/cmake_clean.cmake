file(REMOVE_RECURSE
  "CMakeFiles/test_hierarchy_properties.dir/test_hierarchy_properties.cc.o"
  "CMakeFiles/test_hierarchy_properties.dir/test_hierarchy_properties.cc.o.d"
  "test_hierarchy_properties"
  "test_hierarchy_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hierarchy_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
