file(REMOVE_RECURSE
  "CMakeFiles/test_stats_table.dir/test_stats_table.cc.o"
  "CMakeFiles/test_stats_table.dir/test_stats_table.cc.o.d"
  "test_stats_table"
  "test_stats_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
