file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_coverage_fp.dir/bench_fig8_coverage_fp.cc.o"
  "CMakeFiles/bench_fig8_coverage_fp.dir/bench_fig8_coverage_fp.cc.o.d"
  "bench_fig8_coverage_fp"
  "bench_fig8_coverage_fp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_coverage_fp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
