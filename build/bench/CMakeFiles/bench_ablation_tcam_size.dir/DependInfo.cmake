
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_tcam_size.cc" "bench/CMakeFiles/bench_ablation_tcam_size.dir/bench_ablation_tcam_size.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_tcam_size.dir/bench_ablation_tcam_size.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fh_redundancy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fh_fault.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fh_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fh_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fh_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fh_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fh_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fh_filters.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
