# Empty dependencies file for bench_ablation_pbfs_clear.
# This may be replaced when dependencies are built.
