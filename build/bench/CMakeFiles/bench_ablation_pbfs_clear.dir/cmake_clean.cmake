file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pbfs_clear.dir/bench_ablation_pbfs_clear.cc.o"
  "CMakeFiles/bench_ablation_pbfs_clear.dir/bench_ablation_pbfs_clear.cc.o.d"
  "bench_ablation_pbfs_clear"
  "bench_ablation_pbfs_clear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pbfs_clear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
