# Empty compiler generated dependencies file for bench_fig6_bit_change.
# This may be replaced when dependencies are built.
