# Empty dependencies file for bench_fig7_fault_characterization.
# This may be replaced when dependencies are built.
