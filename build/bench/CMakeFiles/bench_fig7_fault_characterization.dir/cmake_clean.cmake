file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_fault_characterization.dir/bench_fig7_fault_characterization.cc.o"
  "CMakeFiles/bench_fig7_fault_characterization.dir/bench_fig7_fault_characterization.cc.o.d"
  "bench_fig7_fault_characterization"
  "bench_fig7_fault_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_fault_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
