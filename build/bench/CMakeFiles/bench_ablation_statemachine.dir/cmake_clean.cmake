file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_statemachine.dir/bench_ablation_statemachine.cc.o"
  "CMakeFiles/bench_ablation_statemachine.dir/bench_ablation_statemachine.cc.o.d"
  "bench_ablation_statemachine"
  "bench_ablation_statemachine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_statemachine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
