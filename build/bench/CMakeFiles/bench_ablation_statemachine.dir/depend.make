# Empty dependencies file for bench_ablation_statemachine.
# This may be replaced when dependencies are built.
