file(REMOVE_RECURSE
  "CMakeFiles/fhsim.dir/fhsim.cpp.o"
  "CMakeFiles/fhsim.dir/fhsim.cpp.o.d"
  "fhsim"
  "fhsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fhsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
