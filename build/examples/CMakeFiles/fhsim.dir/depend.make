# Empty dependencies file for fhsim.
# This may be replaced when dependencies are built.
