/**
 * @file
 * Example: run a fault-injection campaign (the Section 4 methodology)
 * on one benchmark under FaultHound, and print the classification and
 * coverage breakdown. Mirrors what bench_fig8_coverage_fp does per
 * scheme, but as a minimal, commented walkthrough of the fault API:
 *
 *   fault::drawPlan / apply    -> single-bit flips in RF/LSQ/rename
 *   fault::runFork / archEquals -> tandem golden-vs-faulty execution
 *   fault::runCampaign          -> the full masked/noisy/SDC pipeline
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "exec/interrupt.hh"
#include "exec/progress.hh"
#include "exec/thread_pool.hh"
#include "fault/campaign.hh"
#include "fault/campaign_json.hh"
#include "workload/workload.hh"

using namespace fh;

int
main(int argc, char **argv)
{
    // usage: fault_injection_campaign [bench] [threads]
    // (threads: host workers for the campaign forks; also settable
    //  via FH_THREADS; 0/unset = all hardware threads)
    const char *bench_name = argc > 1 ? argv[1] : "400.perl";
    const char *env = std::getenv("FH_INJECTIONS");
    const char *env_threads = std::getenv("FH_THREADS");
    const char *env_json = std::getenv("FH_JSON");

    workload::WorkloadSpec spec;
    spec.maxThreads = 2;
    isa::Program prog = workload::build(bench_name, spec);

    pipeline::CoreParams params;
    params.detector = filters::DetectorParams::faultHound();

    fault::CampaignConfig cfg;
    cfg.injections = env ? std::strtoull(env, nullptr, 0) : 200;
    cfg.window = 1000; // paper: 1000-instruction run window
    cfg.threads = static_cast<unsigned>(
        env_threads ? std::strtoul(env_threads, nullptr, 0) : 0);
    if (const char *gf = std::getenv("FH_GOLDEN_FORK"))
        cfg.forceGoldenFork = std::strtoul(gf, nullptr, 0) != 0;
    // Resilience knobs: FH_JOURNAL names a trial journal (rerun with
    // the same config to resume an interrupted campaign), and
    // FH_TRIAL_TIMEOUT_MS bounds each trial's wall time.
    if (const char *j = std::getenv("FH_JOURNAL"))
        cfg.journalPath = j;
    if (const char *t = std::getenv("FH_TRIAL_TIMEOUT_MS"))
        cfg.trialTimeoutMs = std::strtoull(t, nullptr, 0);
    if (argc > 2)
        cfg.threads =
            static_cast<unsigned>(std::strtoul(argv[2], nullptr, 0));

    std::printf("injecting %llu single-bit faults into %s "
                "(rename 20%% / LSQ 8%% / datapath+RF 72%%) "
                "on %u worker threads...\n",
                static_cast<unsigned long long>(cfg.injections),
                prog.name.c_str(), exec::resolveThreads(cfg.threads));

    exec::installShutdownHandlers();
    exec::ProgressMeter meter(std::string(bench_name) + " campaign",
                              cfg.injections);
    cfg.progress = &meter;

    const auto t0 = std::chrono::steady_clock::now();
    auto r = fault::runCampaign(params, &prog, cfg);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    meter.finish();

    if (env_json) {
        fault::writeCampaignJson(env_json, bench_name,
                                 exec::resolveThreads(cfg.threads), cfg,
                                 r, seconds);
    }

    auto pct = [&](u64 n, u64 d) {
        return d ? 100.0 * static_cast<double>(n) / d : 0.0;
    };

    std::printf("\nclassification (of %llu injections)\n",
                static_cast<unsigned long long>(r.injected));
    std::printf("  masked : %5.1f%%   (no architectural effect)\n",
                100 * r.maskedFrac());
    std::printf("  noisy  : %5.1f%%   (raised an exception)\n",
                100 * r.noisyFrac());
    std::printf("  SDC    : %5.1f%%   (silent data corruption)\n",
                100 * r.sdcFrac());

    std::printf("\nFaultHound on the %llu SDC faults\n",
                static_cast<unsigned long long>(r.sdc));
    std::printf("  recovered (replay/rollback) : %5.1f%%\n",
                pct(r.recovered, r.sdc));
    std::printf("  detected (LSQ compare/trap) : %5.1f%%\n",
                pct(r.detected, r.sdc));
    std::printf("  uncovered                   : %5.1f%%\n",
                pct(r.uncovered, r.sdc));
    std::printf("  => coverage %.1f%% (paper: ~75%% mean)\n",
                100 * r.coverage());

    std::printf("\nuncovered-fault breakdown (Figure 11 bins)\n");
    std::printf("  suppressed by 2nd-level filter : %llu\n",
                static_cast<unsigned long long>(
                    r.bins.secondLevelMasked));
    std::printf("  completed/committed register   : %llu\n",
                static_cast<unsigned long long>(r.bins.completedReg));
    std::printf("  uncovered rename fault         : %llu\n",
                static_cast<unsigned long long>(
                    r.bins.renameUncovered));
    std::printf("  never triggered a filter       : %llu\n",
                static_cast<unsigned long long>(r.bins.noTrigger));
    std::printf("  other                          : %llu\n",
                static_cast<unsigned long long>(r.bins.other));
    if (r.trialErrors)
        std::printf("\n%llu trial(s) isolated after in-fork errors "
                    "(see warnings above for repro plans)\n",
                    static_cast<unsigned long long>(r.trialErrors));
    if (r.partial) {
        std::printf("\ncampaign interrupted after %llu trials; rerun "
                    "with the same FH_JOURNAL to resume\n",
                    static_cast<unsigned long long>(r.injected));
        return 130;
    }
    return 0;
}
