/**
 * @file
 * Example: run a fault-injection campaign (the Section 4 methodology)
 * on one benchmark under FaultHound, and print the classification and
 * coverage breakdown. Mirrors what bench_fig8_coverage_fp does per
 * scheme, but as a minimal, commented walkthrough of the fault API:
 *
 *   fault::drawPlan / apply    -> single-bit flips in RF/LSQ/rename
 *   fault::runFork / archEquals -> tandem golden-vs-faulty execution
 *   fault::runCampaign          -> the full masked/noisy/SDC pipeline
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "exec/progress.hh"
#include "exec/thread_pool.hh"
#include "fault/campaign.hh"
#include "workload/workload.hh"

using namespace fh;

namespace
{

/**
 * Machine-readable result record (FH_JSON=<path>, or "-" for stdout):
 * the campaign configuration, the classification counts, and the
 * throughput headline, in the same shape as BENCH_filters.json so CI
 * and scripts can diff runs against the committed baseline.
 */
void
writeJson(const char *path, const char *bench, unsigned workers,
          const fault::CampaignConfig &cfg, const fault::CampaignResult &r,
          double seconds)
{
    std::FILE *out = std::strcmp(path, "-") == 0 ? stdout
                                                 : std::fopen(path, "w");
    if (!out) {
        std::fprintf(stderr, "cannot write FH_JSON file %s\n", path);
        return;
    }
    auto u = [](u64 v) { return static_cast<unsigned long long>(v); };
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"benchmark\": \"%s\",\n", bench);
    std::fprintf(out, "  \"seed\": %llu,\n", u(cfg.seed));
    std::fprintf(out, "  \"injections\": %llu,\n", u(cfg.injections));
    std::fprintf(out, "  \"window\": %llu,\n", u(cfg.window));
    std::fprintf(out, "  \"worker_threads\": %u,\n", workers);
    std::fprintf(out, "  \"elapsed_seconds\": %.3f,\n", seconds);
    std::fprintf(out, "  \"trials_per_second\": %.1f,\n",
                 seconds > 0 ? static_cast<double>(r.injected) / seconds
                             : 0.0);
    std::fprintf(out, "  \"classification\": {\n");
    std::fprintf(out, "    \"injected\": %llu,\n", u(r.injected));
    std::fprintf(out, "    \"masked\": %llu,\n", u(r.masked));
    std::fprintf(out, "    \"noisy\": %llu,\n", u(r.noisy));
    std::fprintf(out, "    \"sdc\": %llu,\n", u(r.sdc));
    std::fprintf(out, "    \"recovered\": %llu,\n", u(r.recovered));
    std::fprintf(out, "    \"detected\": %llu,\n", u(r.detected));
    std::fprintf(out, "    \"uncovered\": %llu\n", u(r.uncovered));
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"bins\": {\n");
    std::fprintf(out, "    \"covered\": %llu,\n", u(r.bins.covered));
    std::fprintf(out, "    \"second_level_masked\": %llu,\n",
                 u(r.bins.secondLevelMasked));
    std::fprintf(out, "    \"completed_reg\": %llu,\n",
                 u(r.bins.completedReg));
    std::fprintf(out, "    \"arch_reg\": %llu,\n", u(r.bins.archReg));
    std::fprintf(out, "    \"rename_uncovered\": %llu,\n",
                 u(r.bins.renameUncovered));
    std::fprintf(out, "    \"no_trigger\": %llu,\n", u(r.bins.noTrigger));
    std::fprintf(out, "    \"other\": %llu\n", u(r.bins.other));
    std::fprintf(out, "  },\n");
    // Wall-time phase breakdown: master advance + golden checkpoint
    // ledger, snapshot copies, the two faulty forks, and the
    // arch/digest comparisons.
    const fault::CampaignPhases &p = r.phases;
    const double total =
        static_cast<double>(p.totalNs() ? p.totalNs() : 1);
    auto pct = [&](u64 ns) {
        return 100.0 * static_cast<double>(ns) / total;
    };
    std::fprintf(out,
                 "  \"phases_ns\": { \"snapshot\": %llu, \"golden\": "
                 "%llu, \"bare\": %llu, \"protected\": %llu, "
                 "\"compare\": %llu },\n",
                 u(p.snapshotNs), u(p.goldenNs), u(p.bareNs),
                 u(p.protectedNs), u(p.compareNs));
    std::fprintf(out,
                 "  \"phases_pct\": { \"snapshot\": %.1f, \"golden\": "
                 "%.1f, \"bare\": %.1f, \"protected\": %.1f, "
                 "\"compare\": %.1f }\n",
                 pct(p.snapshotNs), pct(p.goldenNs), pct(p.bareNs),
                 pct(p.protectedNs), pct(p.compareNs));
    std::fprintf(out, "}\n");
    if (out != stdout)
        std::fclose(out);
}

} // namespace

int
main(int argc, char **argv)
{
    // usage: fault_injection_campaign [bench] [threads]
    // (threads: host workers for the campaign forks; also settable
    //  via FH_THREADS; 0/unset = all hardware threads)
    const char *bench_name = argc > 1 ? argv[1] : "400.perl";
    const char *env = std::getenv("FH_INJECTIONS");
    const char *env_threads = std::getenv("FH_THREADS");
    const char *env_json = std::getenv("FH_JSON");

    workload::WorkloadSpec spec;
    spec.maxThreads = 2;
    isa::Program prog = workload::build(bench_name, spec);

    pipeline::CoreParams params;
    params.detector = filters::DetectorParams::faultHound();

    fault::CampaignConfig cfg;
    cfg.injections = env ? std::strtoull(env, nullptr, 0) : 200;
    cfg.window = 1000; // paper: 1000-instruction run window
    cfg.threads = static_cast<unsigned>(
        env_threads ? std::strtoul(env_threads, nullptr, 0) : 0);
    if (const char *gf = std::getenv("FH_GOLDEN_FORK"))
        cfg.forceGoldenFork = std::strtoul(gf, nullptr, 0) != 0;
    if (argc > 2)
        cfg.threads =
            static_cast<unsigned>(std::strtoul(argv[2], nullptr, 0));

    std::printf("injecting %llu single-bit faults into %s "
                "(rename 20%% / LSQ 8%% / datapath+RF 72%%) "
                "on %u worker threads...\n",
                static_cast<unsigned long long>(cfg.injections),
                prog.name.c_str(), exec::resolveThreads(cfg.threads));

    exec::ProgressMeter meter(std::string(bench_name) + " campaign",
                              cfg.injections);
    cfg.progress = &meter;

    const auto t0 = std::chrono::steady_clock::now();
    auto r = fault::runCampaign(params, &prog, cfg);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    meter.finish();

    if (env_json) {
        writeJson(env_json, bench_name, exec::resolveThreads(cfg.threads),
                  cfg, r, seconds);
    }

    auto pct = [&](u64 n, u64 d) {
        return d ? 100.0 * static_cast<double>(n) / d : 0.0;
    };

    std::printf("\nclassification (of %llu injections)\n",
                static_cast<unsigned long long>(r.injected));
    std::printf("  masked : %5.1f%%   (no architectural effect)\n",
                100 * r.maskedFrac());
    std::printf("  noisy  : %5.1f%%   (raised an exception)\n",
                100 * r.noisyFrac());
    std::printf("  SDC    : %5.1f%%   (silent data corruption)\n",
                100 * r.sdcFrac());

    std::printf("\nFaultHound on the %llu SDC faults\n",
                static_cast<unsigned long long>(r.sdc));
    std::printf("  recovered (replay/rollback) : %5.1f%%\n",
                pct(r.recovered, r.sdc));
    std::printf("  detected (LSQ compare/trap) : %5.1f%%\n",
                pct(r.detected, r.sdc));
    std::printf("  uncovered                   : %5.1f%%\n",
                pct(r.uncovered, r.sdc));
    std::printf("  => coverage %.1f%% (paper: ~75%% mean)\n",
                100 * r.coverage());

    std::printf("\nuncovered-fault breakdown (Figure 11 bins)\n");
    std::printf("  suppressed by 2nd-level filter : %llu\n",
                static_cast<unsigned long long>(
                    r.bins.secondLevelMasked));
    std::printf("  completed/committed register   : %llu\n",
                static_cast<unsigned long long>(r.bins.completedReg));
    std::printf("  uncovered rename fault         : %llu\n",
                static_cast<unsigned long long>(
                    r.bins.renameUncovered));
    std::printf("  never triggered a filter       : %llu\n",
                static_cast<unsigned long long>(r.bins.noTrigger));
    std::printf("  other                          : %llu\n",
                static_cast<unsigned long long>(r.bins.other));
    return 0;
}
