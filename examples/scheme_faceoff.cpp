/**
 * @file
 * Example: the paper's headline comparison on one workload — run the
 * same benchmark under the fault-intolerant baseline, PBFS,
 * PBFS-biased, FaultHound-backend, and full FaultHound, and print the
 * three-way tradeoff (coverage, performance, energy) each scheme
 * strikes. This is Figures 8-10 in miniature.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "energy/energy_model.hh"
#include "fault/campaign.hh"
#include "workload/workload.hh"

using namespace fh;

int
main(int argc, char **argv)
{
    const char *bench_name = argc > 1 ? argv[1] : "specjbb";
    const u64 budget = 100000;

    workload::WorkloadSpec spec;
    spec.maxThreads = 2;
    isa::Program prog = workload::build(bench_name, spec);

    struct Row
    {
        std::string label;
        filters::DetectorParams det;
    };
    std::vector<Row> schemes = {
        {"baseline", filters::DetectorParams::none()},
        {"PBFS", filters::DetectorParams::pbfsSticky()},
        {"PBFS-biased", filters::DetectorParams::pbfsBiased()},
        {"FH-backend", filters::DetectorParams::faultHoundBackend()},
        {"FaultHound", filters::DetectorParams::faultHound()},
    };

    // Baseline reference run.
    pipeline::CoreParams base_params;
    base_params.detector = filters::DetectorParams::none();
    pipeline::Core base(base_params, &prog);
    base.runPerThreadBudget(budget / 2, budget * 200);
    const double base_cycles = static_cast<double>(base.cycle());
    const double base_energy = energy::computeEnergy(base).total();

    std::printf("%s: %llu instructions/thread, baseline CPI %.2f\n\n",
                prog.name.c_str(),
                static_cast<unsigned long long>(budget / 2),
                2.0 * base_cycles / static_cast<double>(budget));
    std::printf("%-12s %10s %10s %10s\n", "scheme", "coverage",
                "slowdown", "energy+");

    fault::CampaignConfig cfg;
    cfg.injections = 150;

    for (const auto &row : schemes) {
        pipeline::CoreParams params;
        params.detector = row.det;

        pipeline::Core core(params, &prog);
        core.runPerThreadBudget(budget / 2, budget * 200);
        double slowdown =
            static_cast<double>(core.cycle()) / base_cycles - 1.0;
        double energy_over =
            energy::computeEnergy(core).total() / base_energy - 1.0;

        double coverage = 0.0;
        if (row.det.scheme != filters::Scheme::None)
            coverage =
                fault::runCampaign(params, &prog, cfg).coverage();

        std::printf("%-12s %9.1f%% %9.1f%% %9.1f%%\n",
                    row.label.c_str(), 100 * coverage, 100 * slowdown,
                    100 * energy_over);
    }

    std::printf("\npaper shape: PBFS covers little but costs nothing; "
                "PBFS-biased covers well at a punishing slowdown;\n"
                "FaultHound keeps most of the coverage at a fraction "
                "of the cost (Figures 8-10).\n");
    return 0;
}
