/**
 * @file
 * fhsim — the command-line simulator driver, the binary a downstream
 * user actually runs. Configures the core from key=value options (file
 * and/or command line), runs a benchmark under a chosen scheme, and
 * dumps gem5-style stats; optionally runs a fault-injection campaign —
 * in this process, or sharded across worker processes through the
 * distributed campaign fabric (src/dist).
 *
 * Usage:
 *   fhsim [--config FILE] [key=value ...]        run sim (+ campaign)
 *   fhsim dispatch jobs=N [key=value ...]        campaign on N local
 *                                                worker processes
 *   fhsim serve listen=HOST:PORT [key=value ...] coordinator only;
 *                                                workers join remotely
 *   fhsim worker HOST:PORT [jobs=N]              join a coordinator
 *
 * Run `fhsim` with no arguments (or `help=1`) for the full option
 * list — it is generated from the same consumed-key registry that
 * powers the unknown-option check, so it cannot drift from what the
 * driver actually accepts.
 *
 * Unknown keys are fatal: `injectons=5000` should refuse to run, not
 * silently run the default campaign.
 *
 * SIGINT/SIGTERM stop new trials, drain the in-flight wave (dispatch
 * mode forwards the signal to every worker and drains them all),
 * flush the journal, and emit the (partial-flagged) outputs; exit
 * code 130.
 *
 * Examples:
 *   fhsim bench=429.mcf scheme=pbfs-biased insts=200000
 *   fhsim bench=apache campaign=true injections=500 jobs=8 \
 *         journal=apache.fhj
 *   fhsim dispatch jobs=4 bench=ocean injections=5000 json=-
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "dist/coordinator.hh"
#include "dist/spawner.hh"
#include "dist/spec.hh"
#include "dist/worker.hh"
#include "energy/energy_model.hh"
#include "exec/interrupt.hh"
#include "exec/progress.hh"
#include "exec/thread_pool.hh"
#include "fault/campaign.hh"
#include "fault/campaign_json.hh"
#include "fault/journal.hh"
#include "pipeline/stats_dump.hh"
#include "sim/config.hh"
#include "sim/logging.hh"
#include "workload/workload.hh"

using namespace fh;

namespace
{

/**
 * The full option registry: every key any fhsim mode reads, with its
 * help line. Declaring them all up front serves both masters — the
 * typo check refuses anything not listed here, and printHelp() prints
 * exactly this list.
 */
void
declareAllKeys(const Config &cfg)
{
    // Simulation.
    cfg.declareKey("bench", "benchmark name (default 400.perl)");
    cfg.declareKey("scheme",
                   "none|pbfs|pbfs-biased|fh-backend|faulthound "
                   "(default faulthound)");
    cfg.declareKey("insts",
                   "per-thread instruction budget (default 100000)");
    cfg.declareKey("threads", "SMT contexts (default 2)");
    cfg.declareKey("seed", "workload/data seed (default 0x5eed)");
    cfg.declareKey("tcam.entries",
                   "first-level TCAM entries (default 32)");
    cfg.declareKey("tcam.threshold",
                   "TCAM loosen threshold (default 4)");
    cfg.declareKey("delay_buffer",
                   "delay buffer entries (default 16)");
    // Campaign.
    cfg.declareKey("campaign",
                   "also run a fault campaign (default false)");
    cfg.declareKey("injections",
                   "campaign injections (default 300)");
    cfg.declareKey("window", "campaign run window (default 1000)");
    cfg.declareKey("jobs",
                   "campaign worker threads, or worker processes in "
                   "dispatch mode; 0 = all hardware threads");
    cfg.declareKey("golden_fork",
                   "force the legacy golden-fork loop (default false)");
    cfg.declareKey("journal",
                   "trial-journal path for checkpoint/resume");
    cfg.declareKey("trial_timeout_ms",
                   "wall-clock budget per trial; overruns become "
                   "trial errors (0 = off)");
    cfg.declareKey("early_stop",
                   "end bare forks early on provable fault erasure "
                   "(default true; classification unchanged)");
    cfg.declareKey("ci_target",
                   "adaptive stop: pooled SDC-rate CI half-width "
                   "target (0 = fixed-count campaign)");
    cfg.declareKey("ci_wave",
                   "adaptive stop wave size in trials (default 64)");
    cfg.declareKey("json",
                   "write the FH_JSON campaign record here "
                   "(\"-\" = stdout)");
    // Distributed fabric.
    cfg.declareKey("listen",
                   "serve/dispatch mode: coordinator endpoint, "
                   "host:port or unix:/path (port 0 = ephemeral)");
    cfg.declareKey("workers",
                   "serve mode: expected worker count, sizes the "
                   "lease chunks (default 1)");
    cfg.declareKey("chunk",
                   "trials per range lease; 0 = auto (~4 per worker)");
    cfg.declareKey("lease_timeout_ms",
                   "heartbeat silence before a worker's lease is "
                   "re-issued (default 10000; env FH_LEASE_TIMEOUT_MS)");
    cfg.declareKey("heartbeat_ms",
                   "worker liveness heartbeat period (default 300; "
                   "env FH_HEARTBEAT_MS)");
    cfg.declareKey("worker_jobs",
                   "dispatch mode: fork-execution threads per worker "
                   "process (default 1)");
    cfg.declareKey("help", "print this option list and exit");
}

void
printHelp(const Config &cfg)
{
    std::printf(
        "usage: fhsim [--config FILE] [key=value ...]\n"
        "       fhsim dispatch jobs=N [key=value ...]\n"
        "       fhsim serve listen=HOST:PORT [key=value ...]\n"
        "       fhsim worker HOST:PORT [jobs=N]\n"
        "\noptions:\n");
    for (const auto &[key, desc] : cfg.keyDocs())
        std::printf("  %-18s%s\n", key.c_str(), desc.c_str());
}

bool
parseArgs(Config &cfg, int argc, char **argv, int first)
{
    std::string error;
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            declareAllKeys(cfg);
            printHelp(cfg);
            std::exit(0);
        }
        if (arg == "--config") {
            if (i + 1 >= argc || !cfg.parseFile(argv[++i], error)) {
                std::fprintf(stderr, "fhsim: %s\n", error.c_str());
                return false;
            }
            continue;
        }
        if (!cfg.set(arg)) {
            std::fprintf(stderr, "fhsim: bad option '%s'\n",
                         arg.c_str());
            return false;
        }
    }
    return true;
}

/** Refuse to run with unrecognised keys (a misspelt key silently
 *  running a default campaign wastes hours). */
bool
rejectUnknown(const Config &cfg)
{
    const auto unknown = cfg.unknownKeys();
    if (unknown.empty())
        return true;
    for (const auto &key : unknown)
        std::fprintf(stderr, "fhsim: unknown option '%s'\n",
                     key.c_str());
    std::fprintf(stderr, "fhsim: refusing to run with unrecognised "
                         "options; run `fhsim` for the list\n");
    return false;
}

/** The deterministic campaign description all modes share, built from
 *  the same keys the in-process path reads. */
dist::CampaignSpec
specFromConfig(const Config &cfg)
{
    dist::CampaignSpec spec;
    spec.bench = cfg.getString("bench", "400.perl");
    spec.scheme = cfg.getString("scheme", "faulthound");
    spec.coreThreads =
        static_cast<unsigned>(cfg.getU64("threads", 2));
    spec.workload.maxThreads = std::max(2u, spec.coreThreads);
    spec.workload.seed = cfg.getU64("seed", 0x5eedULL);
    spec.tcamEntries =
        static_cast<unsigned>(cfg.getU64("tcam.entries", 0));
    spec.tcamThreshold =
        static_cast<unsigned>(cfg.getU64("tcam.threshold", 0));
    spec.delayBuffer =
        static_cast<unsigned>(cfg.getU64("delay_buffer", 0));
    spec.campaign.injections = cfg.getU64("injections", 300);
    spec.campaign.window = cfg.getU64("window", 1000);
    spec.campaign.seed = cfg.getU64("seed", 1);
    spec.campaign.forceGoldenFork = cfg.getBool("golden_fork", false);
    spec.campaign.trialTimeoutMs = cfg.getU64("trial_timeout_ms", 0);
    spec.campaign.earlyStop =
        cfg.getBool("early_stop", spec.campaign.earlyStop);
    spec.campaign.ciTarget = cfg.getDouble("ci_target", 0.0);
    spec.campaign.ciWave = cfg.getU64("ci_wave", 64);
    return spec;
}

/** Env-mirrored u64 default: the config key wins, then the env var,
 *  then the built-in — so chaos/slow CI hosts can retune the fabric's
 *  timing knobs fleet-wide without touching every invocation. */
u64
u64FromEnv(const char *env, u64 def)
{
    const char *v = std::getenv(env);
    if (!v || !*v)
        return def;
    char *end = nullptr;
    const unsigned long long parsed = std::strtoull(v, &end, 10);
    if (end == v || *end != '\0') {
        fh_warn("ignoring malformed %s='%s'", env, v);
        return def;
    }
    return parsed;
}

std::string
journalPathFromConfig(const Config &cfg)
{
    std::string path = cfg.getString("journal", "");
    if (const char *env = std::getenv("FH_JOURNAL");
        env && *env && path.empty())
        path = env;
    return path;
}

std::string
jsonPathFromConfig(const Config &cfg)
{
    std::string path = cfg.getString("json", "");
    if (const char *env = std::getenv("FH_JSON");
        env && *env && path.empty())
        path = env;
    return path;
}

/** The stdout campaign block + FH_JSON record + exit code, shared by
 *  the in-process and distributed paths so their outputs are
 *  comparable byte for byte (stdout) / field for field (JSON). */
int
emitCampaignOutputs(const Config &cfg, const std::string &bench,
                    unsigned workers,
                    const fault::CampaignConfig &ccfg,
                    const fault::CampaignResult &r, double seconds,
                    const fault::FabricHealth *fabric = nullptr)
{
    std::printf("%-34s%-16.4f# fraction of injections\n",
                "campaign.masked", r.maskedFrac());
    std::printf("%-34s%-16.4f# fraction of injections\n",
                "campaign.noisy", r.noisyFrac());
    std::printf("%-34s%-16.4f# fraction of injections\n",
                "campaign.sdc", r.sdcFrac());
    std::printf("%-34s%-16.4f# of SDC faults\n",
                "campaign.coverage", r.coverage());
    std::printf("%-34s%-16llu# trials isolated after in-fork "
                "errors\n",
                "campaign.trial_errors",
                static_cast<unsigned long long>(r.trialErrors));
    std::printf("%-34s%-16llu# bare forks past forkMaxCycles\n",
                "campaign.hung_bare",
                static_cast<unsigned long long>(r.hungBare));
    std::printf("%-34s%-16llu# protected forks past "
                "forkMaxCycles\n",
                "campaign.hung_protected",
                static_cast<unsigned long long>(r.hungProtected));
    std::printf("%-34s%-16d# 1 = interrupted, counters are a "
                "prefix\n",
                "campaign.partial", r.partial ? 1 : 0);
    std::printf("%-34s%-16llu# masked with no fork executed\n",
                "campaign.skipped_provably_masked",
                static_cast<unsigned long long>(
                    r.skippedProvablyMasked));
    std::printf("%-34s%-16llu# bare forks ended by fault-watch "
                "erasure\n",
                "campaign.early_terminated",
                static_cast<unsigned long long>(r.earlyTerminated));
    std::printf("%-34s%-16d# 1 = adaptive CI stop fired\n",
                "campaign.ci_stopped", r.ciStopped ? 1 : 0);
    // Wall-time phase split goes to stderr with the other
    // diagnostics: stdout stays byte-identical across runs and
    // worker counts (the determinism suite diffs it).
    const fault::CampaignPhases &p = r.phases;
    const double total =
        static_cast<double>(p.totalNs() ? p.totalNs() : 1);
    auto pct = [&](u64 ns) {
        return 100.0 * static_cast<double>(ns) / total;
    };
    std::fprintf(stderr,
                 "fhsim: campaign time %.2fs — snapshot %.1f%%, "
                 "golden-ledger %.1f%%, bare %.1f%%, protected "
                 "%.1f%%, compare %.1f%%\n",
                 static_cast<double>(p.totalNs()) * 1e-9,
                 pct(p.snapshotNs), pct(p.goldenNs), pct(p.bareNs),
                 pct(p.protectedNs), pct(p.compareNs));
    // Scheduler observability (stderr for the same reason): how the
    // event-driven issue stage spent the campaign's window execution.
    // Zeros under FH_SCAN_ISSUE=1 (except the issue-stage occupancy
    // pair) and in distributed runs (the wire carries classification
    // counters only).
    const fault::SchedCounters &s = r.sched;
    auto ull = [](u64 v) { return static_cast<unsigned long long>(v); };
    std::fprintf(stderr,
                 "fhsim: scheduler — wakeup hits %llu, overflow "
                 "parks %llu, overflow rescans %llu, fast-forwarded "
                 "cycles %llu, issue occupancy %.2f (%llu candidates "
                 "/ %llu evals)\n",
                 ull(s.wakeupHits), ull(s.overflowParks),
                 ull(s.overflowRescans), ull(s.fastForwarded),
                 s.issueEvals ? static_cast<double>(s.issueCandidates) /
                                    static_cast<double>(s.issueEvals)
                              : 0.0,
                 ull(s.issueCandidates), ull(s.issueEvals));
    // Per-site vulnerability profile (stderr diagnostics; the full
    // machine-readable block rides FH_JSON). Stratum rows with no
    // trials are elided.
    auto stratumName = [](unsigned si) -> std::string {
        if (si == 0)
            return "rename";
        const unsigned group =
            (si - 1) % fault::StratumSpace::kBitGroups;
        const unsigned lo = group * fault::StratumSpace::kGroupBits;
        const unsigned hi = lo + fault::StratumSpace::kGroupBits - 1;
        const char *kind =
            si < 1 + fault::StratumSpace::kBitGroups ? "lsq"
            : si < 1 + 2 * fault::StratumSpace::kBitGroups
                ? "reg-inflight"
                : "reg-static";
        return csprintf("%s[b%u-%u]", kind, lo, hi);
    };
    std::fprintf(stderr,
                 "fhsim: vulnerability profile — %-14s%8s%8s%8s%8s\n",
                 "stratum", "trials", "masked", "sdc", "covered");
    for (unsigned si = 0; si < fault::StratumSpace::kCount; ++si) {
        const fault::StratumCounts &sc = r.profile.strata[si];
        if (sc.trials == 0)
            continue;
        std::fprintf(stderr,
                     "fhsim:   %-32s%8llu%8llu%8llu%8llu\n",
                     stratumName(si).c_str(), ull(sc.trials),
                     ull(sc.masked), ull(sc.sdc), ull(sc.covered));
    }
    {
        const fault::StratumSpace space(ccfg.mix);
        std::fprintf(stderr,
                     "fhsim: pooled SDC-rate CI half-width %.5f "
                     "(target %.5f%s)\n",
                     fault::pooledSdcHalfWidth(r.profile, space),
                     ccfg.ciTarget,
                     ccfg.ciTarget > 0.0
                         ? r.ciStopped ? ", reached" : ", not reached"
                         : ", fixed-count");
        // Root-cause attribution: the workload instructions whose
        // values produced the most SDCs.
        std::vector<std::pair<u64, u64>> pcs(r.profile.sdcPcs.begin(),
                                             r.profile.sdcPcs.end());
        std::sort(pcs.begin(), pcs.end(),
                  [](const auto &a, const auto &b) {
                      return a.second != b.second ? a.second > b.second
                                                  : a.first < b.first;
                  });
        for (size_t i = 0; i < pcs.size() && i < 5; ++i)
            std::fprintf(stderr,
                         "fhsim:   sdc source pc 0x%llx — %llu "
                         "SDC(s)\n",
                         ull(pcs[i].first), ull(pcs[i].second));
    }
    const std::string json = jsonPathFromConfig(cfg);
    if (!json.empty())
        fault::writeCampaignJson(json, bench, workers, ccfg, r,
                                 seconds, fabric);
    if (r.partial) {
        std::fprintf(stderr,
                     "fhsim: campaign interrupted after %llu "
                     "trials; rerun with the same journal to "
                     "resume\n",
                     static_cast<unsigned long long>(r.injected));
        return 130;
    }
    return 0;
}

/** Coordinator driver shared by dispatch and serve. */
int
runCoordinator(const Config &cfg, dist::Coordinator &coord,
               const dist::CampaignSpec &spec, unsigned workers)
{
    fault::CampaignConfig ccfg = spec.campaign;
    ccfg.journalPath = journalPathFromConfig(cfg);
    std::unique_ptr<fault::TrialJournal> journal;
    if (!ccfg.journalPath.empty()) {
        journal = std::make_unique<fault::TrialJournal>(
            ccfg.journalPath, ccfg,
            filters::to_string(spec.buildParams().detector.scheme));
        if (journal->replayCount() > 0)
            fh_inform("journal '%s': replaying %llu completed "
                      "trial(s)",
                      ccfg.journalPath.c_str(),
                      static_cast<unsigned long long>(
                          journal->replayCount()));
    }

    const auto t0 = std::chrono::steady_clock::now();
    fault::CampaignResult r = coord.run(journal.get());
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();

    const dist::DistStats &ds = coord.stats();
    std::fprintf(stderr,
                 "fhsim: fabric — %u worker(s) joined, %u died, "
                 "%llu lease(s) issued, %llu re-issued, %llu crc "
                 "error(s), %llu reconnect(s), %llu quarantine(s)%s\n",
                 ds.workersJoined, ds.workersDied,
                 static_cast<unsigned long long>(ds.rangesIssued),
                 static_cast<unsigned long long>(ds.rangesReissued),
                 static_cast<unsigned long long>(ds.crcErrors),
                 static_cast<unsigned long long>(ds.reconnects),
                 static_cast<unsigned long long>(ds.quarantined),
                 ds.degraded ? ", DEGRADED to in-process tail" : "");
    fault::FabricHealth health;
    health.workersJoined = ds.workersJoined;
    health.workersDied = ds.workersDied;
    health.crcErrors = ds.crcErrors;
    health.reconnects = ds.reconnects;
    health.rangesIssued = ds.rangesIssued;
    health.rangesReissued = ds.rangesReissued;
    health.quarantined = ds.quarantined;
    health.degraded = ds.degraded;
    return emitCampaignOutputs(cfg, spec.bench, workers, ccfg, r,
                               seconds, &health);
}

int
cmdDispatch(int argc, char **argv)
{
    Config cfg;
    if (!parseArgs(cfg, argc, argv, 2))
        return 1;
    declareAllKeys(cfg);
    if (cfg.getBool("help", false)) {
        printHelp(cfg);
        return 0;
    }
    if (!rejectUnknown(cfg))
        return 1;

    const dist::CampaignSpec spec = specFromConfig(cfg);
    const unsigned jobs = static_cast<unsigned>(
        std::max<u64>(1, cfg.getU64("jobs", 1)));
    const u64 workerJobs = cfg.getU64("worker_jobs", 1);

    exec::installShutdownHandlers();
    exec::ProgressMeter meter("fhsim dispatch",
                              spec.campaign.injections);

    dist::CoordinatorOptions copts;
    copts.workers = jobs;
    copts.chunk = cfg.getU64("chunk", 0);
    copts.leaseTimeoutMs = cfg.getU64(
        "lease_timeout_ms", u64FromEnv("FH_LEASE_TIMEOUT_MS", 10000));
    copts.progress = &meter;
    std::string error;
    if (!dist::parseEndpoint(cfg.getString("listen", "127.0.0.1:0"),
                             copts.listen, error)) {
        std::fprintf(stderr, "fhsim: %s\n", error.c_str());
        return 1;
    }
    const u64 heartbeatMs = cfg.getU64(
        "heartbeat_ms", u64FromEnv("FH_HEARTBEAT_MS", 300));
    dist::Coordinator coord(spec, copts);

    const std::string exe = dist::selfExe();
    if (exe.empty()) {
        std::fprintf(stderr, "fhsim: cannot resolve own binary "
                             "path for worker spawn\n");
        return 1;
    }
    std::vector<pid_t> pids;
    for (unsigned i = 0; i < jobs; ++i) {
        const pid_t pid = dist::spawnExec(
            {exe, "worker", coord.endpoint().str(),
             "jobs=" + std::to_string(workerJobs),
             "heartbeat_ms=" + std::to_string(heartbeatMs)});
        if (pid < 0) {
            std::fprintf(stderr, "fhsim: worker spawn failed\n");
            return 1;
        }
        pids.push_back(pid);
        coord.addChild(pid);
        // Guard against the no-RAII death paths (fh_fatal exits,
        // FH_STRICT panics abort): whatever kills this process must
        // not orphan the workers.
        dist::ChildGuard::add(pid);
    }
    std::fprintf(stderr,
                 "fhsim: dispatching %llu injections to %u worker "
                 "process(es) on %s\n",
                 static_cast<unsigned long long>(
                     spec.campaign.injections),
                 jobs, coord.endpoint().str().c_str());

    const int rc = runCoordinator(cfg, coord, spec, jobs);
    meter.finish();
    // The coordinator closed every socket; workers exit on their own.
    // Reap them all — dispatch never leaves orphans.
    for (pid_t pid : pids) {
        dist::reap(pid);
        dist::ChildGuard::remove(pid);
    }
    return rc;
}

int
cmdServe(int argc, char **argv)
{
    Config cfg;
    if (!parseArgs(cfg, argc, argv, 2))
        return 1;
    declareAllKeys(cfg);
    if (cfg.getBool("help", false)) {
        printHelp(cfg);
        return 0;
    }
    if (!rejectUnknown(cfg))
        return 1;

    const dist::CampaignSpec spec = specFromConfig(cfg);
    exec::installShutdownHandlers();
    exec::ProgressMeter meter("fhsim serve",
                              spec.campaign.injections);

    dist::CoordinatorOptions copts;
    std::string error;
    if (!dist::parseEndpoint(
            cfg.getString("listen", "127.0.0.1:0"), copts.listen,
            error)) {
        std::fprintf(stderr, "fhsim: %s\n", error.c_str());
        return 1;
    }
    copts.workers = static_cast<unsigned>(
        std::max<u64>(1, cfg.getU64("workers", 1)));
    copts.chunk = cfg.getU64("chunk", 0);
    copts.leaseTimeoutMs = cfg.getU64(
        "lease_timeout_ms", u64FromEnv("FH_LEASE_TIMEOUT_MS", 10000));
    copts.progress = &meter;
    dist::Coordinator coord(spec, copts);
    std::fprintf(stderr,
                 "fhsim: serving %llu injections on %s; start "
                 "workers with `fhsim worker %s`\n",
                 static_cast<unsigned long long>(
                     spec.campaign.injections),
                 coord.endpoint().str().c_str(),
                 coord.endpoint().str().c_str());

    const int rc = runCoordinator(cfg, coord, spec, copts.workers);
    meter.finish();
    return rc;
}

int
cmdWorker(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: fhsim worker HOST:PORT [jobs=N]\n");
        return 1;
    }
    Config cfg;
    if (!parseArgs(cfg, argc, argv, 3))
        return 1;
    declareAllKeys(cfg);
    if (!rejectUnknown(cfg))
        return 1;

    dist::WorkerOptions wopts;
    std::string error;
    if (!dist::parseEndpoint(argv[2], wopts.endpoint, error)) {
        std::fprintf(stderr, "fhsim: %s\n", error.c_str());
        return 1;
    }
    wopts.jobs = static_cast<unsigned>(cfg.getU64("jobs", 1));
    wopts.heartbeatMs = cfg.getU64(
        "heartbeat_ms", u64FromEnv("FH_HEARTBEAT_MS", 300));
    return dist::runWorker(wopts);
}

int
runSim(const Config &cfg)
{
    const std::string bench = cfg.getString("bench", "400.perl");
    if (!workload::find(bench)) {
        std::fprintf(stderr, "fhsim: unknown benchmark '%s'; pick "
                             "one of:\n",
                     bench.c_str());
        for (const auto &info : workload::all())
            std::fprintf(stderr, "  %s\n", info.name.c_str());
        return 1;
    }

    workload::WorkloadSpec spec;
    spec.maxThreads =
        std::max<unsigned>(2, static_cast<unsigned>(
                                  cfg.getU64("threads", 2)));
    spec.seed = cfg.getU64("seed", 0x5eedULL);
    isa::Program prog = workload::build(bench, spec);

    pipeline::CoreParams params;
    params.threads =
        static_cast<unsigned>(cfg.getU64("threads", 2));
    if (!dist::schemeByName(cfg.getString("scheme", "faulthound"),
                            params.detector)) {
        std::fprintf(stderr, "fhsim: unknown scheme '%s'\n",
                     cfg.getString("scheme", "").c_str());
        return 1;
    }
    params.detector.tcam.entries = static_cast<unsigned>(
        cfg.getU64("tcam.entries", params.detector.tcam.entries));
    params.detector.tcam.loosenThreshold =
        static_cast<unsigned>(cfg.getU64(
            "tcam.threshold", params.detector.tcam.loosenThreshold));
    params.delayBufferSize = static_cast<unsigned>(
        cfg.getU64("delay_buffer", params.delayBufferSize));

    const u64 insts = cfg.getU64("insts", 100000);
    std::fprintf(stderr,
                 "fhsim: %s, scheme %s, %llu insts/thread, %u "
                 "threads\n",
                 bench.c_str(),
                 filters::to_string(params.detector.scheme).c_str(),
                 static_cast<unsigned long long>(insts),
                 params.threads);

    pipeline::Core core(params, &prog);
    core.runPerThreadBudget(insts, insts * 400 + 1000000);
    pipeline::dumpStats(core, std::cout);

    auto e = energy::computeEnergy(core);
    std::printf("%-34s%-16.0f# dynamic+static energy (arb. units)\n",
                "energy.total", e.total());
    std::printf("%-34s%-16.0f# filter-table energy\n",
                "energy.detector", e.detector);

    if (cfg.getBool("campaign", false)) {
        fault::CampaignConfig ccfg = specFromConfig(cfg).campaign;
        ccfg.threads =
            static_cast<unsigned>(cfg.getU64("jobs", 0));
        ccfg.journalPath = journalPathFromConfig(cfg);
        exec::installShutdownHandlers();
        exec::ProgressMeter meter("fhsim campaign", ccfg.injections);
        ccfg.progress = &meter;
        std::fprintf(stderr, "fhsim: running %llu-injection "
                             "campaign on %u worker threads...\n",
                     static_cast<unsigned long long>(ccfg.injections),
                     exec::resolveThreads(ccfg.threads));
        const auto t0 = std::chrono::steady_clock::now();
        auto r = fault::runCampaign(params, &prog, ccfg);
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        meter.finish();
        return emitCampaignOutputs(cfg, bench,
                                   exec::resolveThreads(ccfg.threads),
                                   ccfg, r, seconds);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1) {
        const std::string mode = argv[1];
        if (mode == "dispatch")
            return cmdDispatch(argc, argv);
        if (mode == "serve")
            return cmdServe(argc, argv);
        if (mode == "worker")
            return cmdWorker(argc, argv);
    }

    Config cfg;
    if (!parseArgs(cfg, argc, argv, 1))
        return 1;
    declareAllKeys(cfg);
    if (argc == 1 || cfg.getBool("help", false)) {
        // Bare `fhsim` documents itself; the registry above is the
        // single source of truth for the option list.
        printHelp(cfg);
        return 0;
    }
    if (!rejectUnknown(cfg))
        return 1;
    return runSim(cfg);
}
