/**
 * @file
 * fhsim — the command-line simulator driver, the binary a downstream
 * user actually runs. Configures the core from key=value options (file
 * and/or command line), runs a benchmark under a chosen scheme, and
 * dumps gem5-style stats; optionally runs a fault-injection campaign.
 *
 * Usage:
 *   fhsim [--config FILE] [key=value ...]
 *
 * Options (defaults in parentheses):
 *   bench          benchmark name                 (400.perl)
 *   scheme         none|pbfs|pbfs-biased|fh-backend|faulthound
 *                                                  (faulthound)
 *   insts          per-thread instruction budget  (100000)
 *   threads        SMT contexts                   (2)
 *   seed           workload/data seed             (0x5eed)
 *   tcam.entries   first-level TCAM entries       (32)
 *   tcam.threshold loosen threshold               (4)
 *   delay_buffer   delay buffer entries           (16)
 *   campaign       run a fault campaign too       (false)
 *   injections     campaign injections            (300)
 *   window         campaign run window            (1000)
 *   jobs           host worker threads for the campaign forks;
 *                  0 = all hardware threads       (0)
 *   golden_fork    force the legacy golden-fork loop (false)
 *   journal        trial-journal path for checkpoint/resume; an
 *                  interrupted campaign rerun with the same config
 *                  and journal resumes where it stopped     (off)
 *   trial_timeout_ms  wall-clock budget per trial; overruns are
 *                  classified as trial errors     (0 = off)
 *   json           write the FH_JSON campaign record here
 *                  ("-" = stdout)                 (off)
 *
 * Unknown keys are fatal: `injectons=5000` should refuse to run, not
 * silently run the default campaign.
 *
 * SIGINT/SIGTERM stop new trials, drain the in-flight wave, flush the
 * journal, and emit the (partial-flagged) outputs; exit code 130.
 *
 * Example:
 *   fhsim bench=429.mcf scheme=pbfs-biased insts=200000
 *   fhsim bench=apache campaign=true injections=500 jobs=8 \
 *         journal=apache.fhj
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "exec/interrupt.hh"
#include "exec/progress.hh"
#include "exec/thread_pool.hh"
#include "fault/campaign.hh"
#include "fault/campaign_json.hh"
#include "energy/energy_model.hh"
#include "pipeline/stats_dump.hh"
#include "sim/config.hh"
#include "workload/workload.hh"

using namespace fh;

namespace
{

bool
schemeFromName(const std::string &name, filters::DetectorParams &out)
{
    if (name == "none")
        out = filters::DetectorParams::none();
    else if (name == "pbfs")
        out = filters::DetectorParams::pbfsSticky();
    else if (name == "pbfs-biased")
        out = filters::DetectorParams::pbfsBiased();
    else if (name == "fh-backend")
        out = filters::DetectorParams::faultHoundBackend();
    else if (name == "faulthound")
        out = filters::DetectorParams::faultHound();
    else
        return false;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Config cfg;
    std::string error;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::printf("usage: fhsim [--config FILE] [key=value ...]"
                        "\nsee the file header for the option list\n");
            return 0;
        }
        if (arg == "--config") {
            if (i + 1 >= argc || !cfg.parseFile(argv[++i], error)) {
                std::fprintf(stderr, "fhsim: %s\n", error.c_str());
                return 1;
            }
            continue;
        }
        if (!cfg.set(arg)) {
            std::fprintf(stderr, "fhsim: bad option '%s'\n",
                         arg.c_str());
            return 1;
        }
    }

    // Campaign keys are only read when campaign=true; declare them so
    // the typo check below doesn't flag legitimate options, then
    // refuse to run with anything unrecognised (a misspelt key
    // silently running a default campaign wastes hours).
    for (const char *key : {"injections", "window", "jobs",
                            "golden_fork", "journal",
                            "trial_timeout_ms", "json"})
        cfg.declareKey(key);
    cfg.declareKey("campaign");
    for (const char *key : {"bench", "scheme", "threads", "seed",
                            "insts", "tcam.entries", "tcam.threshold",
                            "delay_buffer"})
        cfg.declareKey(key);
    const auto unknown = cfg.unknownKeys();
    if (!unknown.empty()) {
        for (const auto &key : unknown)
            std::fprintf(stderr, "fhsim: unknown option '%s'\n",
                         key.c_str());
        std::fprintf(stderr,
                     "fhsim: refusing to run with unrecognised "
                     "options; see the file header for the list\n");
        return 1;
    }

    const std::string bench = cfg.getString("bench", "400.perl");
    if (!workload::find(bench)) {
        std::fprintf(stderr, "fhsim: unknown benchmark '%s'; pick "
                             "one of:\n",
                     bench.c_str());
        for (const auto &info : workload::all())
            std::fprintf(stderr, "  %s\n", info.name.c_str());
        return 1;
    }

    workload::WorkloadSpec spec;
    spec.maxThreads =
        std::max<unsigned>(2, static_cast<unsigned>(
                                  cfg.getU64("threads", 2)));
    spec.seed = cfg.getU64("seed", 0x5eedULL);
    isa::Program prog = workload::build(bench, spec);

    pipeline::CoreParams params;
    params.threads =
        static_cast<unsigned>(cfg.getU64("threads", 2));
    if (!schemeFromName(cfg.getString("scheme", "faulthound"),
                        params.detector)) {
        std::fprintf(stderr, "fhsim: unknown scheme '%s'\n",
                     cfg.getString("scheme", "").c_str());
        return 1;
    }
    params.detector.tcam.entries = static_cast<unsigned>(
        cfg.getU64("tcam.entries", params.detector.tcam.entries));
    params.detector.tcam.loosenThreshold =
        static_cast<unsigned>(cfg.getU64(
            "tcam.threshold", params.detector.tcam.loosenThreshold));
    params.delayBufferSize = static_cast<unsigned>(
        cfg.getU64("delay_buffer", params.delayBufferSize));

    const u64 insts = cfg.getU64("insts", 100000);
    std::fprintf(stderr,
                 "fhsim: %s, scheme %s, %llu insts/thread, %u "
                 "threads\n",
                 bench.c_str(),
                 filters::to_string(params.detector.scheme).c_str(),
                 static_cast<unsigned long long>(insts),
                 params.threads);

    pipeline::Core core(params, &prog);
    core.runPerThreadBudget(insts, insts * 400 + 1000000);
    pipeline::dumpStats(core, std::cout);

    auto e = energy::computeEnergy(core);
    std::printf("%-34s%-16.0f# dynamic+static energy (arb. units)\n",
                "energy.total", e.total());
    std::printf("%-34s%-16.0f# filter-table energy\n",
                "energy.detector", e.detector);

    if (cfg.getBool("campaign", false)) {
        fault::CampaignConfig ccfg;
        ccfg.injections = cfg.getU64("injections", 300);
        ccfg.window = cfg.getU64("window", 1000);
        ccfg.seed = cfg.getU64("seed", 1);
        ccfg.threads =
            static_cast<unsigned>(cfg.getU64("jobs", 0));
        ccfg.forceGoldenFork = cfg.getBool("golden_fork", false);
        ccfg.journalPath = cfg.getString("journal", "");
        if (const char *env = std::getenv("FH_JOURNAL");
            env && *env && ccfg.journalPath.empty())
            ccfg.journalPath = env;
        ccfg.trialTimeoutMs = cfg.getU64("trial_timeout_ms", 0);
        exec::installShutdownHandlers();
        exec::ProgressMeter meter("fhsim campaign", ccfg.injections);
        ccfg.progress = &meter;
        std::fprintf(stderr, "fhsim: running %llu-injection "
                             "campaign on %u worker threads...\n",
                     static_cast<unsigned long long>(ccfg.injections),
                     exec::resolveThreads(ccfg.threads));
        const auto t0 = std::chrono::steady_clock::now();
        auto r = fault::runCampaign(params, &prog, ccfg);
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
        meter.finish();
        std::printf("%-34s%-16.4f# fraction of injections\n",
                    "campaign.masked", r.maskedFrac());
        std::printf("%-34s%-16.4f# fraction of injections\n",
                    "campaign.noisy", r.noisyFrac());
        std::printf("%-34s%-16.4f# fraction of injections\n",
                    "campaign.sdc", r.sdcFrac());
        std::printf("%-34s%-16.4f# of SDC faults\n",
                    "campaign.coverage", r.coverage());
        std::printf("%-34s%-16llu# trials isolated after in-fork "
                    "errors\n",
                    "campaign.trial_errors",
                    static_cast<unsigned long long>(r.trialErrors));
        std::printf("%-34s%-16llu# bare forks past forkMaxCycles\n",
                    "campaign.hung_bare",
                    static_cast<unsigned long long>(r.hungBare));
        std::printf("%-34s%-16llu# protected forks past "
                    "forkMaxCycles\n",
                    "campaign.hung_protected",
                    static_cast<unsigned long long>(r.hungProtected));
        std::printf("%-34s%-16d# 1 = interrupted, counters are a "
                    "prefix\n",
                    "campaign.partial", r.partial ? 1 : 0);
        // Wall-time phase split goes to stderr with the other
        // diagnostics: stdout stays byte-identical across runs and
        // worker counts (the determinism suite diffs it).
        const fault::CampaignPhases &p = r.phases;
        const double total = static_cast<double>(
            p.totalNs() ? p.totalNs() : 1);
        auto pct = [&](u64 ns) {
            return 100.0 * static_cast<double>(ns) / total;
        };
        std::fprintf(stderr,
                     "fhsim: campaign time %.2fs — snapshot %.1f%%, "
                     "golden-ledger %.1f%%, bare %.1f%%, protected "
                     "%.1f%%, compare %.1f%%\n",
                     static_cast<double>(p.totalNs()) * 1e-9,
                     pct(p.snapshotNs), pct(p.goldenNs), pct(p.bareNs),
                     pct(p.protectedNs), pct(p.compareNs));
        std::string json = cfg.getString("json", "");
        if (const char *env = std::getenv("FH_JSON");
            env && *env && json.empty())
            json = env;
        if (!json.empty())
            fault::writeCampaignJson(json, bench,
                                     exec::resolveThreads(ccfg.threads),
                                     ccfg, r, seconds);
        if (r.partial) {
            std::fprintf(stderr,
                         "fhsim: campaign interrupted after %llu "
                         "trials; rerun with the same journal to "
                         "resume\n",
                         static_cast<unsigned long long>(r.injected));
            return 130;
        }
    }
    return 0;
}
