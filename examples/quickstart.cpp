/**
 * @file
 * Quickstart: build a benchmark, attach FaultHound, run it, and print
 * performance and detector statistics. This is the smallest end-to-end
 * tour of the public API:
 *
 *   workload::build()  -> an FH-RISC program
 *   pipeline::Core     -> the out-of-order SMT core
 *   filters::Detector  -> FaultHound attached through CoreParams
 *   energy::computeEnergy -> McPAT-style energy accounting
 */

#include <cstdio>

#include "energy/energy_model.hh"
#include "filters/detector.hh"
#include "pipeline/core.hh"
#include "workload/workload.hh"

using namespace fh;

int
main()
{
    // A small SPEC-like workload: the hash-table kernel behind
    // 400.perl, scaled down for a quick run.
    workload::WorkloadSpec spec;
    spec.maxThreads = 2;
    spec.footprintDivider = 4;
    isa::Program prog = workload::build("400.perl", spec);

    // Table 2 core with FaultHound attached.
    pipeline::CoreParams params;
    params.detector = filters::DetectorParams::faultHound();

    pipeline::Core core(params, &prog);

    // Run half a million instructions.
    const u64 budget = 500000;
    while (core.committedTotal() < budget && !core.allHalted())
        core.tick();

    const auto &s = core.stats();
    std::printf("benchmark        : %s\n", prog.name.c_str());
    std::printf("cycles           : %llu\n",
                static_cast<unsigned long long>(s.cycles));
    std::printf("committed        : %llu (IPC %.2f)\n",
                static_cast<unsigned long long>(s.committed),
                static_cast<double>(s.committed) / s.cycles);
    std::printf("loads / stores   : %llu / %llu\n",
                static_cast<unsigned long long>(s.loads),
                static_cast<unsigned long long>(s.stores));
    std::printf("branch mispred   : %llu\n",
                static_cast<unsigned long long>(s.mispredicts));
    std::printf("L1D miss rate    : %.2f%%\n",
                core.hierarchy().l1d().missRate() * 100.0);

    const auto &d = core.detector().stats();
    std::printf("\nFaultHound (fault-free run => all triggers are "
                "false positives)\n");
    std::printf("checks           : %llu\n",
                static_cast<unsigned long long>(d.checks));
    std::printf("triggers         : %llu\n",
                static_cast<unsigned long long>(d.triggers));
    std::printf("suppressed (L2)  : %llu\n",
                static_cast<unsigned long long>(d.suppressed));
    std::printf("replays          : %llu\n",
                static_cast<unsigned long long>(d.replays));
    std::printf("rollbacks        : %llu\n",
                static_cast<unsigned long long>(d.rollbacks));
    std::printf("FP rate          : %.3f%% of instructions\n",
                100.0 * static_cast<double>(d.replays + d.rollbacks) /
                    static_cast<double>(s.committed));

    auto energy = energy::computeEnergy(core);
    std::printf("\nenergy (arbitrary units)\n");
    std::printf("pipeline         : %.0f\n", energy.pipeline);
    std::printf("memory           : %.0f\n", energy.memory);
    std::printf("detector         : %.0f\n", energy.detector);
    std::printf("leakage          : %.0f\n", energy.leakage);
    return 0;
}
