/**
 * @file
 * Example: drive FaultHound's filters directly — no pipeline — to see
 * the mechanisms of Section 3 in isolation. Feeds a synthetic store-
 * value stream with high value locality into the detector, then
 * injects a single "fault" value and shows the trigger; then shows the
 * second-level filter silencing a delinquent bit.
 */

#include <cstdio>

#include "filters/detector.hh"
#include "sim/rng.hh"

using namespace fh;
using namespace fh::filters;

namespace
{

const char *
name(CompleteAction a)
{
    switch (a) {
      case CompleteAction::None: return "none";
      case CompleteAction::Replay: return "REPLAY";
      case CompleteAction::Rollback: return "ROLLBACK";
    }
    return "?";
}

} // namespace

int
main()
{
    Detector det(DetectorParams::faultHound());
    Rng rng(42);

    // --- 1. Train on a well-behaved neighborhood -----------------
    std::printf("training the value TCAM on a counter-like stream "
                "(base 0x7f000000, 6 noisy low bits)...\n");
    for (int i = 0; i < 2000; ++i) {
        u64 value = 0x7f000000 + (rng.next() & 0x3f) * 8;
        det.checkComplete(StreamKind::StoreValue, 7, value, false);
    }
    const auto &s = det.stats();
    std::printf("  checks=%llu triggers=%llu (learning transients) "
                "replays=%llu suppressed=%llu\n\n",
                (unsigned long long)s.checks,
                (unsigned long long)s.triggers,
                (unsigned long long)s.replays,
                (unsigned long long)s.suppressed);

    // --- 2. A single-bit "soft fault" strays from the neighborhood
    u64 healthy = 0x7f000000 + 24 * 8;
    u64 faulty = healthy ^ (1ULL << 41);
    auto action =
        det.checkComplete(StreamKind::StoreValue, 7, faulty, false);
    std::printf("bit-41 corrupted store value 0x%llx -> %s\n",
                (unsigned long long)faulty, name(action));

    // --- 3. Re-execution under replay is deemed final -------------
    auto replay_action =
        det.checkComplete(StreamKind::StoreValue, 7, healthy, true);
    std::printf("re-checked during replay -> %s (triggers during "
                "replay are ignored; Section 3.3)\n\n",
                name(replay_action));

    // --- 4. A delinquent bit gets silenced ------------------------
    std::printf("now a delinquent bit (bit 13) toggles every few "
                "hundred values:\n");
    unsigned allowed = 0;
    unsigned silenced = 0;
    for (int round = 0; round < 12; ++round) {
        for (int i = 0; i < 300; ++i) {
            u64 value = 0x7f000000 + (rng.next() & 0x3f) * 8 +
                        ((round & 1) ? (1ULL << 13) : 0);
            auto a = det.checkComplete(StreamKind::StoreValue, 7,
                                       value, false);
            if (a == CompleteAction::Replay)
                ++allowed;
        }
    }
    silenced = static_cast<unsigned>(det.stats().suppressed);
    std::printf("  replays allowed: %u, alarms suppressed by the "
                "second-level filter: %u\n",
                allowed, silenced);
    std::printf("  (without the second-level filter every phase flip "
                "of bit 13 would cost a recovery action)\n\n");

    // --- 5. The commit-time probe is read-only --------------------
    u64 before = det.addrTcam().accesses();
    det.checkCommit(StreamKind::StoreAddr, 7, 0x12345678);
    std::printf("commit-time probe performed %llu training accesses "
                "(must be 0: probes are read-only)\n",
                (unsigned long long)(det.addrTcam().accesses() -
                                     before));
    return 0;
}
