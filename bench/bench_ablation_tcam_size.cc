/**
 * @file
 * TCAM size sweep (Section 3.1): 16-32 entries suffice for good
 * coverage even for the commercial workloads, and leslie3d's coverage
 * improves with larger filters (Section 5.2).
 */

#include <iostream>

#include "energy/cacti_lite.hh"
#include "harness.hh"

using namespace fh;

int
main()
{
    auto cfg = bench::campaignConfig();
    const u64 budget = bench::envU64("FH_INSTS", 100000);
    const std::vector<unsigned> sizes = {8, 16, 32, 64};

    TextTable table({"benchmark", "8", "16", "32", "64"});
    std::vector<std::vector<double>> cols(sizes.size());

    // benchmark x size cells are independent: outer pool over the
    // cells, leftover FH_THREADS budget into each cell's campaign.
    auto benchmarks = bench::selectedBenchmarks();
    const u64 ncells = benchmarks.size() * sizes.size();
    std::vector<double> cells(ncells);
    const auto split = bench::splitThreads(ncells);
    cfg.threads = split.inner;
    exec::ThreadPool pool(split.outer);
    pool.parallelFor(ncells, [&](u64 j) {
        isa::Program prog =
            bench::buildProgram(benchmarks[j / sizes.size()], 2);
        auto det = filters::DetectorParams::faultHound();
        det.tcam.entries = sizes[j % sizes.size()];
        auto params = bench::coreParams(det);
        cells[j] = fault::runCampaign(params, &prog, cfg).coverage();
    });

    for (size_t b = 0; b < benchmarks.size(); ++b) {
        std::vector<std::string> row{benchmarks[b].name};
        for (size_t i = 0; i < sizes.size(); ++i) {
            const double cov = cells[b * sizes.size() + i];
            cols[i].push_back(cov);
            row.push_back(TextTable::pct(cov));
        }
        table.addRow(row);
    }
    std::vector<std::string> mean_row{"mean"};
    for (auto &c : cols)
        mean_row.push_back(TextTable::pct(bench::mean(c)));
    table.addRow(mean_row);

    std::cout << "SDC coverage vs TCAM entries (Section 3.1: 16-32 "
                 "entries suffice; leslie improves with larger "
                 "filters)\n\n";
    table.print(std::cout);

    // Filter energy scaling: the small-TCAM cost argument.
    TextTable energy({"entries", "energy/access (units)"});
    (void)budget;
    for (unsigned n : {8u, 16u, 32u, 64u, 2048u}) {
        energy.addRow({std::to_string(n),
                       TextTable::num(
                           fh::energy::tcamAccessEnergy(n, 192), 4)});
    }
    std::cout << "\nTCAM access energy scaling (CACTI-lite; PBFS's "
                 "2K-entry SRAM table costs "
              << TextTable::num(fh::energy::sramAccessEnergy(2048, 192),
                                3)
              << " units/access)\n\n";
    energy.print(std::cout);
    return 0;
}
