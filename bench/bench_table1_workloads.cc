/**
 * @file
 * Table 1: the benchmark suite. Prints each synthetic workload with
 * its suite, archetype, footprint, and the instruction mix measured
 * from a short fault-free run on the baseline core.
 */

#include <iostream>

#include "harness.hh"

using namespace fh;

int
main()
{
    const u64 budget = bench::envU64("FH_INSTS", 100000);
    TextTable table({"benchmark", "suite", "archetype", "KB/thread",
                     "loads", "stores", "branches", "mispred"});

    for (const auto &info : bench::selectedBenchmarks()) {
        isa::Program prog = bench::buildProgram(info, 2);
        auto params =
            bench::coreParams(filters::DetectorParams::none());
        pipeline::Core core = bench::runBudget(params, &prog, budget);
        const auto &s = core.stats();
        const double n = static_cast<double>(s.committed);
        u64 seg_bytes = prog.segments.empty() ? 0
                                              : prog.segments[0].size;
        table.addRow({info.name, workload::to_string(info.suite),
                      info.archetype,
                      std::to_string(seg_bytes / 1024),
                      TextTable::pct(s.committedLoads / n),
                      TextTable::pct(s.committedStores / n),
                      TextTable::pct(s.committedBranches / n),
                      TextTable::pct(
                          s.mispredicts /
                          std::max(1.0, double(s.committedBranches)))});
    }

    std::cout << "Table 1: benchmarks (measured over " << budget
              << " instructions, 2 SMT threads)\n\n";
    table.print(std::cout);
    return 0;
}
