/**
 * @file
 * Campaign-throughput micro-harness: the headline trials/second number
 * behind BENCH_campaign.json. Runs one fault-injection campaign at 1
 * worker thread and at all hardware threads and reports throughput
 * plus the per-phase wall-time breakdown (snapshot / golden-ledger /
 * bare / protected / compare).
 *
 * Human-readable summary goes to stderr; a machine-readable record in
 * the BENCH_campaign.json shape goes to FH_JSON (path, or "-" for
 * stdout — the default), so CI can smoke the schema:
 *
 *   FH_INJECTIONS=2000 FH_THREADS=1 bench_campaign_throughput
 *
 * Honors FH_BENCH (default 400.perl, matching the recorded baseline),
 * FH_INJECTIONS (default 2000), FH_WINDOW, FH_SEED, FH_GOLDEN_FORK.
 *
 * FH_DIST_WORKERS=N adds a multi-PROCESS row: the same campaign run
 * through the distributed fabric (in-process coordinator, N forked
 * worker processes on a loopback socket), which both measures dispatch
 * overhead against the in-process rows and asserts the merged
 * classification is bit-identical to the single-thread run.
 *
 * FH_AB_EARLY_STOP=1 (the default; 0 disables) adds an interleaved
 * early-stop A/B block: FH_BENCH_ROUNDS (default 3) alternating rounds
 * of the same campaign with arch-digest early termination on and off,
 * asserting identical classification and reporting best-of-rounds
 * throughput for both sides plus the on/off speedup ratio.
 *
 * FH_BENCH_BASELINE=<binary|mode> turns on interleaved same-window A/B
 * measurement — the honest way to compare revisions on a noisy shared
 * container, where back-to-back runs see different neighbors. Each of
 * FH_BENCH_ROUNDS (default 5) rounds runs the current binary and the
 * baseline alternately under identical settings (single worker
 * thread), and the summary reports best-of-rounds for both sides plus
 * the ratio. The baseline is either a path to an older
 * bench_campaign_throughput binary (run as a subprocess, throughput
 * parsed from its FH_JSON), or the literal mode name "scan" for an
 * in-process FH_SCAN_ISSUE-oracle comparison of the two issue-stage
 * implementations inside this binary.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dist/coordinator.hh"
#include "dist/spawner.hh"
#include "dist/spec.hh"
#include "dist/worker.hh"
#include "harness.hh"

using namespace fh;

namespace
{

struct Run
{
    unsigned threads = 1;
    unsigned processes = 0; ///< 0 = in-process; else distributed
    double seconds = 0.0;
    fault::CampaignResult result;
};

void
printPhases(std::FILE *out, const fault::CampaignPhases &p)
{
    const double total =
        static_cast<double>(p.totalNs() ? p.totalNs() : 1);
    auto pct = [&](u64 ns) {
        return 100.0 * static_cast<double>(ns) / total;
    };
    std::fprintf(out,
                 "  phases: snapshot %.1f%%  golden-ledger %.1f%%  "
                 "bare %.1f%%  protected %.1f%%  compare %.1f%%\n",
                 pct(p.snapshotNs), pct(p.goldenNs), pct(p.bareNs),
                 pct(p.protectedNs), pct(p.compareNs));
}

void
printSched(std::FILE *out, const fault::SchedCounters &s)
{
    const double occ =
        s.issueEvals ? static_cast<double>(s.issueCandidates) /
                           static_cast<double>(s.issueEvals)
                     : 0.0;
    auto u = [](u64 v) { return static_cast<unsigned long long>(v); };
    std::fprintf(out,
                 "  scheduler: %llu wakeup hits, %llu overflow parks, "
                 "%llu overflow rescans, %llu fast-forwarded cycles, "
                 "issue occupancy %.2f\n",
                 u(s.wakeupHits), u(s.overflowParks),
                 u(s.overflowRescans), u(s.fastForwarded), occ);
}

void
writeJsonSched(std::FILE *out, const fault::SchedCounters &s,
               const char *indent)
{
    auto u = [](u64 v) { return static_cast<unsigned long long>(v); };
    std::fprintf(out,
                 "%s\"scheduler\": { \"wakeup_hits\": %llu, "
                 "\"overflow_parks\": %llu, \"overflow_rescans\": %llu, "
                 "\"fast_forwarded_cycles\": %llu, \"issue_evals\": "
                 "%llu, \"issue_candidates\": %llu },\n",
                 indent, u(s.wakeupHits), u(s.overflowParks),
                 u(s.overflowRescans), u(s.fastForwarded),
                 u(s.issueEvals), u(s.issueCandidates));
}

/// One timed single-configuration campaign; returns trials/second.
double
runCampaignOnce(const pipeline::CoreParams &params,
                const isa::Program *prog,
                const fault::CampaignConfig &cfg,
                fault::CampaignResult *result)
{
    const auto t0 = std::chrono::steady_clock::now();
    fault::CampaignResult r = fault::runCampaign(params, prog, cfg);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    const double tps =
        seconds > 0 ? static_cast<double>(r.injected) / seconds : 0.0;
    if (result)
        *result = std::move(r);
    return tps;
}

/// Run an older bench binary as the B side of an A/B round and pull
/// trials_per_second out of its FH_JSON. The first occurrence in the
/// file is the single-thread row, which is the one we compare against.
/// FH_BENCH_BASELINE is cleared in the child so a baseline built from
/// this revision cannot recurse into its own A/B loop.
double
runBaselineBinary(const std::string &bin)
{
    const std::string tmp = "/tmp/fh_bench_ab_baseline.json";
    const std::string cmd = "FH_THREADS=1 FH_DIST_WORKERS=0 "
                            "FH_BENCH_BASELINE= FH_JSON='" +
                            tmp + "' '" + bin +
                            "' >/dev/null 2>/dev/null";
    if (std::system(cmd.c_str()) != 0)
        return 0.0;
    std::FILE *f = std::fopen(tmp.c_str(), "r");
    if (!f)
        return 0.0;
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    std::remove(tmp.c_str());
    const char *key = "\"trials_per_second\":";
    const size_t pos = text.find(key);
    if (pos == std::string::npos)
        return 0.0;
    return std::strtod(text.c_str() + pos + std::strlen(key), nullptr);
}

void
writeJsonPhases(std::FILE *out, const fault::CampaignPhases &p,
                const char *indent)
{
    const double total =
        static_cast<double>(p.totalNs() ? p.totalNs() : 1);
    auto u = [](u64 v) { return static_cast<unsigned long long>(v); };
    auto pct = [&](u64 ns) {
        return 100.0 * static_cast<double>(ns) / total;
    };
    std::fprintf(out,
                 "%s\"phases_ns\": { \"snapshot\": %llu, \"golden\": "
                 "%llu, \"bare\": %llu, \"protected\": %llu, "
                 "\"compare\": %llu },\n",
                 indent, u(p.snapshotNs), u(p.goldenNs), u(p.bareNs),
                 u(p.protectedNs), u(p.compareNs));
    std::fprintf(out,
                 "%s\"phases_pct\": { \"snapshot\": %.1f, \"golden\": "
                 "%.1f, \"bare\": %.1f, \"protected\": %.1f, "
                 "\"compare\": %.1f }",
                 indent, pct(p.snapshotNs), pct(p.goldenNs),
                 pct(p.bareNs), pct(p.protectedNs), pct(p.compareNs));
}

} // namespace

int
main()
{
    const std::string bench_name = bench::envStr("FH_BENCH", "400.perl");
    auto cfg = bench::campaignConfig();
    cfg.injections = bench::envU64("FH_INJECTIONS", 2000);

    workload::WorkloadSpec spec;
    spec.maxThreads = 2;
    isa::Program prog = workload::build(bench_name, spec);
    pipeline::CoreParams params;
    params.detector = filters::DetectorParams::faultHound();

    std::vector<unsigned> counts{1};
    if (exec::hardwareThreads() > 1)
        counts.push_back(exec::hardwareThreads());

    std::vector<Run> runs;
    for (unsigned threads : counts) {
        Run run;
        run.threads = threads;
        cfg.threads = threads;
        std::fprintf(stderr,
                     "campaign throughput: %s, %llu injections, %u "
                     "worker thread(s), %s golden...\n",
                     bench_name.c_str(),
                     static_cast<unsigned long long>(cfg.injections),
                     threads,
                     cfg.forceGoldenFork ? "forked" : "ledger");
        const auto t0 = std::chrono::steady_clock::now();
        run.result = fault::runCampaign(params, &prog, cfg);
        run.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        const double tps =
            run.seconds > 0
                ? static_cast<double>(run.result.injected) / run.seconds
                : 0.0;
        std::fprintf(stderr, "  %.1f trials/s (%.2f s)\n", tps,
                     run.seconds);
        printPhases(stderr, run.result.phases);
        printSched(stderr, run.result.sched);
        runs.push_back(std::move(run));
    }

    // Optional distributed row: same campaign through the fabric,
    // with real forked worker processes. Trial frames deliberately
    // omit the nondeterministic phase times, so this row reports
    // wall-clock and throughput only — and doubles as a determinism
    // check against the single-thread row.
    const unsigned distWorkers = static_cast<unsigned>(
        bench::envU64("FH_DIST_WORKERS", 0));
    if (distWorkers > 0) {
        dist::CampaignSpec dspec;
        dspec.bench = bench_name;
        dspec.scheme = "faulthound";
        dspec.workload = spec;
        dspec.campaign = cfg;
        dspec.campaign.threads = 1;
        dspec.campaign.journalPath.clear();

        std::fprintf(stderr,
                     "campaign throughput: %s, %llu injections, %u "
                     "worker process(es) via dispatch fabric...\n",
                     bench_name.c_str(),
                     static_cast<unsigned long long>(cfg.injections),
                     distWorkers);
        const auto t0 = std::chrono::steady_clock::now();
        dist::CoordinatorOptions copts;
        copts.workers = distWorkers;
        dist::Coordinator coord(dspec, copts);
        const dist::Endpoint ep = coord.endpoint();
        std::vector<pid_t> pids;
        for (unsigned i = 0; i < distWorkers; ++i) {
            const pid_t pid = dist::spawnFn([ep] {
                dist::WorkerOptions w;
                w.endpoint = ep;
                return dist::runWorker(w);
            });
            pids.push_back(pid);
            coord.addChild(pid);
        }
        Run run;
        run.result = coord.run(nullptr);
        for (pid_t pid : pids)
            dist::reap(pid);
        run.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        run.threads = 1;
        run.processes = distWorkers;
        const double tps =
            run.seconds > 0
                ? static_cast<double>(run.result.injected) / run.seconds
                : 0.0;
        std::fprintf(stderr, "  %.1f trials/s (%.2f s)\n", tps,
                     run.seconds);

        const fault::CampaignResult &a = runs.front().result;
        const fault::CampaignResult &b = run.result;
        if (a.injected != b.injected || a.masked != b.masked ||
            a.noisy != b.noisy || a.sdc != b.sdc ||
            a.recovered != b.recovered || a.detected != b.detected ||
            a.uncovered != b.uncovered ||
            a.trialErrors != b.trialErrors) {
            std::fprintf(stderr,
                         "FATAL: distributed classification diverges "
                         "from the in-process run\n");
            return 1;
        }
        runs.push_back(std::move(run));
    }

    // Interleaved A/B: alternate current-vs-baseline rounds under
    // identical settings, so noise on a shared container lands on both
    // sides of the comparison instead of whichever binary ran second.
    // Best-of-rounds is the headline on each side — the max is the run
    // least disturbed by neighbors.
    const std::string baselineSpec =
        bench::envStr("FH_BENCH_BASELINE", "");
    std::vector<double> abCur, abBase;
    if (!baselineSpec.empty()) {
        const unsigned rounds = static_cast<unsigned>(
            bench::envU64("FH_BENCH_ROUNDS", 5));
        const bool modeBaseline = baselineSpec == "scan";
        fault::CampaignConfig abCfg = cfg;
        abCfg.threads = 1;
        pipeline::CoreParams scanParams = params;
        scanParams.scanIssue = true;
        std::fprintf(stderr,
                     "interleaved A/B: current vs %s, %u round(s), 1 "
                     "worker thread\n",
                     modeBaseline ? "in-process scan oracle"
                                  : baselineSpec.c_str(),
                     rounds);
        for (unsigned round = 0; round < rounds; ++round) {
            fault::CampaignResult cur;
            abCur.push_back(
                runCampaignOnce(params, &prog, abCfg, &cur));
            double base = 0.0;
            if (modeBaseline) {
                fault::CampaignResult alt;
                base = runCampaignOnce(scanParams, &prog, abCfg, &alt);
                // Free equivalence check: the scan oracle must
                // classify every trial identically.
                if (cur.injected != alt.injected ||
                    cur.masked != alt.masked || cur.noisy != alt.noisy ||
                    cur.sdc != alt.sdc ||
                    cur.recovered != alt.recovered ||
                    cur.detected != alt.detected ||
                    cur.uncovered != alt.uncovered ||
                    cur.trialErrors != alt.trialErrors) {
                    std::fprintf(stderr,
                                 "FATAL: scan-oracle classification "
                                 "diverges from wakeup scheduler\n");
                    return 1;
                }
            } else {
                base = runBaselineBinary(baselineSpec);
                if (base <= 0.0) {
                    std::fprintf(stderr,
                                 "FATAL: baseline %s produced no "
                                 "throughput figure\n",
                                 baselineSpec.c_str());
                    return 1;
                }
            }
            abBase.push_back(base);
            std::fprintf(stderr,
                         "  round %u/%u: current %.1f vs baseline "
                         "%.1f trials/s (%.3fx)\n",
                         round + 1, rounds, abCur.back(), base,
                         base > 0 ? abCur.back() / base : 0.0);
        }
        const double bestCur =
            *std::max_element(abCur.begin(), abCur.end());
        const double bestBase =
            *std::max_element(abBase.begin(), abBase.end());
        std::fprintf(stderr,
                     "  best-of-%u: current %.1f vs baseline %.1f "
                     "trials/s — ratio %.3fx\n",
                     rounds, bestCur, bestBase,
                     bestBase > 0 ? bestCur / bestBase : 0.0);
    }

    // Interleaved early-stop A/B: the same campaign with arch-digest
    // early termination on and off, alternating rounds so container
    // noise lands on both sides. Classification must be identical —
    // early exit is licensed only by provable fault erasure — so the
    // check here is as much an oracle as a benchmark. Best-of-rounds
    // on each side, ratio = on/off (the early-stop speedup).
    std::vector<double> abEsOn, abEsOff;
    fault::CampaignResult esOnR, esOffR;
    const bool abEarlyStop =
        bench::envU64("FH_AB_EARLY_STOP", 1) != 0;
    if (abEarlyStop) {
        const unsigned rounds = static_cast<unsigned>(
            bench::envU64("FH_BENCH_ROUNDS", 3));
        fault::CampaignConfig onCfg = cfg;
        onCfg.threads = 1;
        onCfg.earlyStop = true;
        fault::CampaignConfig offCfg = onCfg;
        offCfg.earlyStop = false;
        std::fprintf(stderr,
                     "interleaved A/B: early-stop on vs off, %u "
                     "round(s), 1 worker thread\n",
                     rounds);
        for (unsigned round = 0; round < rounds; ++round) {
            abEsOn.push_back(
                runCampaignOnce(params, &prog, onCfg, &esOnR));
            abEsOff.push_back(
                runCampaignOnce(params, &prog, offCfg, &esOffR));
            if (esOnR.injected != esOffR.injected ||
                esOnR.masked != esOffR.masked ||
                esOnR.noisy != esOffR.noisy ||
                esOnR.sdc != esOffR.sdc ||
                esOnR.recovered != esOffR.recovered ||
                esOnR.detected != esOffR.detected ||
                esOnR.uncovered != esOffR.uncovered ||
                esOnR.trialErrors != esOffR.trialErrors) {
                std::fprintf(stderr,
                             "FATAL: early-stop classification "
                             "diverges from the full-window run\n");
                return 1;
            }
            std::fprintf(stderr,
                         "  round %u/%u: on %.1f vs off %.1f "
                         "trials/s (%.3fx)\n",
                         round + 1, rounds, abEsOn.back(),
                         abEsOff.back(),
                         abEsOff.back() > 0
                             ? abEsOn.back() / abEsOff.back()
                             : 0.0);
        }
        const double bestOn =
            *std::max_element(abEsOn.begin(), abEsOn.end());
        const double bestOff =
            *std::max_element(abEsOff.begin(), abEsOff.end());
        std::fprintf(stderr,
                     "  best-of-%u: on %.1f vs off %.1f trials/s — "
                     "ratio %.3fx (%llu/%llu trials early-terminated)\n",
                     rounds, bestOn, bestOff,
                     bestOff > 0 ? bestOn / bestOff : 0.0,
                     static_cast<unsigned long long>(
                         esOnR.earlyTerminated),
                     static_cast<unsigned long long>(esOnR.injected));
    }

    const std::string json = bench::envStr("FH_JSON", "-");
    std::FILE *out = json == "-" ? stdout : std::fopen(json.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot write FH_JSON file %s\n",
                     json.c_str());
        return 1;
    }
    auto u = [](u64 v) { return static_cast<unsigned long long>(v); };
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"benchmark\": \"%s\",\n", bench_name.c_str());
    std::fprintf(out, "  \"seed\": %llu,\n", u(cfg.seed));
    std::fprintf(out, "  \"injections\": %llu,\n", u(cfg.injections));
    std::fprintf(out, "  \"window\": %llu,\n", u(cfg.window));
    std::fprintf(out, "  \"golden_mode\": \"%s\",\n",
                 cfg.forceGoldenFork ? "forked" : "ledger");
    std::fprintf(out, "  \"runs\": [\n");
    for (size_t i = 0; i < runs.size(); ++i) {
        const Run &run = runs[i];
        const double tps =
            run.seconds > 0
                ? static_cast<double>(run.result.injected) / run.seconds
                : 0.0;
        std::fprintf(out, "    {\n");
        std::fprintf(out, "      \"worker_threads\": %u,\n", run.threads);
        std::fprintf(out, "      \"worker_processes\": %u,\n",
                     run.processes);
        std::fprintf(out, "      \"elapsed_seconds\": %.3f,\n",
                     run.seconds);
        std::fprintf(out, "      \"trials_per_second\": %.1f,\n", tps);
        writeJsonSched(out, run.result.sched, "      ");
        writeJsonPhases(out, run.result.phases, "      ");
        std::fprintf(out, "\n    }%s\n",
                     i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    if (!abCur.empty()) {
        auto writeArray = [out](const char *name,
                                const std::vector<double> &v) {
            std::fprintf(out, "    \"%s\": [", name);
            for (size_t i = 0; i < v.size(); ++i)
                std::fprintf(out, "%s%.1f", i ? ", " : "", v[i]);
            std::fprintf(out, "],\n");
        };
        const double bestCur =
            *std::max_element(abCur.begin(), abCur.end());
        const double bestBase =
            *std::max_element(abBase.begin(), abBase.end());
        std::fprintf(out, "  \"ab\": {\n");
        std::fprintf(out, "    \"baseline\": \"%s\",\n",
                     baselineSpec.c_str());
        std::fprintf(out, "    \"rounds\": %zu,\n", abCur.size());
        writeArray("current_trials_per_second", abCur);
        writeArray("baseline_trials_per_second", abBase);
        std::fprintf(out, "    \"best_current\": %.1f,\n", bestCur);
        std::fprintf(out, "    \"best_baseline\": %.1f,\n", bestBase);
        std::fprintf(out, "    \"ratio\": %.3f\n",
                     bestBase > 0 ? bestCur / bestBase : 0.0);
        std::fprintf(out, "  },\n");
    }
    if (!abEsOn.empty()) {
        auto writeArray = [out](const char *name,
                                const std::vector<double> &v) {
            std::fprintf(out, "    \"%s\": [", name);
            for (size_t i = 0; i < v.size(); ++i)
                std::fprintf(out, "%s%.1f", i ? ", " : "", v[i]);
            std::fprintf(out, "],\n");
        };
        const double bestOn =
            *std::max_element(abEsOn.begin(), abEsOn.end());
        const double bestOff =
            *std::max_element(abEsOff.begin(), abEsOff.end());
        std::fprintf(out, "  \"ab_early_stop\": {\n");
        std::fprintf(out, "    \"rounds\": %zu,\n", abEsOn.size());
        writeArray("on_trials_per_second", abEsOn);
        writeArray("off_trials_per_second", abEsOff);
        std::fprintf(out, "    \"best_on\": %.1f,\n", bestOn);
        std::fprintf(out, "    \"best_off\": %.1f,\n", bestOff);
        std::fprintf(out, "    \"ratio\": %.3f,\n",
                     bestOff > 0 ? bestOn / bestOff : 0.0);
        std::fprintf(out, "    \"early_terminated\": %llu,\n",
                     u(esOnR.earlyTerminated));
        std::fprintf(out, "    \"skipped_provably_masked\": %llu\n",
                     u(esOnR.skippedProvablyMasked));
        std::fprintf(out, "  },\n");
    }
    const fault::CampaignResult &r = runs.front().result;
    std::fprintf(out, "  \"classification\": {\n");
    std::fprintf(out, "    \"injected\": %llu,\n", u(r.injected));
    std::fprintf(out, "    \"masked\": %llu,\n", u(r.masked));
    std::fprintf(out, "    \"noisy\": %llu,\n", u(r.noisy));
    std::fprintf(out, "    \"sdc\": %llu,\n", u(r.sdc));
    std::fprintf(out, "    \"recovered\": %llu,\n", u(r.recovered));
    std::fprintf(out, "    \"detected\": %llu,\n", u(r.detected));
    std::fprintf(out, "    \"uncovered\": %llu,\n", u(r.uncovered));
    std::fprintf(out, "    \"trial_errors\": %llu,\n", u(r.trialErrors));
    std::fprintf(out, "    \"hung_bare\": %llu,\n", u(r.hungBare));
    std::fprintf(out, "    \"hung_protected\": %llu\n",
                 u(r.hungProtected));
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"partial\": %s\n",
                 r.partial ? "true" : "false");
    std::fprintf(out, "}\n");
    if (out != stdout)
        std::fclose(out);
    return 0;
}
