/**
 * @file
 * Campaign-throughput micro-harness: the headline trials/second number
 * behind BENCH_campaign.json. Runs one fault-injection campaign at 1
 * worker thread and at all hardware threads and reports throughput
 * plus the per-phase wall-time breakdown (snapshot / golden-ledger /
 * bare / protected / compare).
 *
 * Human-readable summary goes to stderr; a machine-readable record in
 * the BENCH_campaign.json shape goes to FH_JSON (path, or "-" for
 * stdout — the default), so CI can smoke the schema:
 *
 *   FH_INJECTIONS=2000 FH_THREADS=1 bench_campaign_throughput
 *
 * Honors FH_BENCH (default 400.perl, matching the recorded baseline),
 * FH_INJECTIONS (default 2000), FH_WINDOW, FH_SEED, FH_GOLDEN_FORK.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "harness.hh"

using namespace fh;

namespace
{

struct Run
{
    unsigned threads = 1;
    double seconds = 0.0;
    fault::CampaignResult result;
};

void
printPhases(std::FILE *out, const fault::CampaignPhases &p)
{
    const double total =
        static_cast<double>(p.totalNs() ? p.totalNs() : 1);
    auto pct = [&](u64 ns) {
        return 100.0 * static_cast<double>(ns) / total;
    };
    std::fprintf(out,
                 "  phases: snapshot %.1f%%  golden-ledger %.1f%%  "
                 "bare %.1f%%  protected %.1f%%  compare %.1f%%\n",
                 pct(p.snapshotNs), pct(p.goldenNs), pct(p.bareNs),
                 pct(p.protectedNs), pct(p.compareNs));
}

void
writeJsonPhases(std::FILE *out, const fault::CampaignPhases &p,
                const char *indent)
{
    const double total =
        static_cast<double>(p.totalNs() ? p.totalNs() : 1);
    auto u = [](u64 v) { return static_cast<unsigned long long>(v); };
    auto pct = [&](u64 ns) {
        return 100.0 * static_cast<double>(ns) / total;
    };
    std::fprintf(out,
                 "%s\"phases_ns\": { \"snapshot\": %llu, \"golden\": "
                 "%llu, \"bare\": %llu, \"protected\": %llu, "
                 "\"compare\": %llu },\n",
                 indent, u(p.snapshotNs), u(p.goldenNs), u(p.bareNs),
                 u(p.protectedNs), u(p.compareNs));
    std::fprintf(out,
                 "%s\"phases_pct\": { \"snapshot\": %.1f, \"golden\": "
                 "%.1f, \"bare\": %.1f, \"protected\": %.1f, "
                 "\"compare\": %.1f }",
                 indent, pct(p.snapshotNs), pct(p.goldenNs),
                 pct(p.bareNs), pct(p.protectedNs), pct(p.compareNs));
}

} // namespace

int
main()
{
    const std::string bench_name = bench::envStr("FH_BENCH", "400.perl");
    auto cfg = bench::campaignConfig();
    cfg.injections = bench::envU64("FH_INJECTIONS", 2000);

    workload::WorkloadSpec spec;
    spec.maxThreads = 2;
    isa::Program prog = workload::build(bench_name, spec);
    pipeline::CoreParams params;
    params.detector = filters::DetectorParams::faultHound();

    std::vector<unsigned> counts{1};
    if (exec::hardwareThreads() > 1)
        counts.push_back(exec::hardwareThreads());

    std::vector<Run> runs;
    for (unsigned threads : counts) {
        Run run;
        run.threads = threads;
        cfg.threads = threads;
        std::fprintf(stderr,
                     "campaign throughput: %s, %llu injections, %u "
                     "worker thread(s), %s golden...\n",
                     bench_name.c_str(),
                     static_cast<unsigned long long>(cfg.injections),
                     threads,
                     cfg.forceGoldenFork ? "forked" : "ledger");
        const auto t0 = std::chrono::steady_clock::now();
        run.result = fault::runCampaign(params, &prog, cfg);
        run.seconds = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
        const double tps =
            run.seconds > 0
                ? static_cast<double>(run.result.injected) / run.seconds
                : 0.0;
        std::fprintf(stderr, "  %.1f trials/s (%.2f s)\n", tps,
                     run.seconds);
        printPhases(stderr, run.result.phases);
        runs.push_back(std::move(run));
    }

    const std::string json = bench::envStr("FH_JSON", "-");
    std::FILE *out = json == "-" ? stdout : std::fopen(json.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot write FH_JSON file %s\n",
                     json.c_str());
        return 1;
    }
    auto u = [](u64 v) { return static_cast<unsigned long long>(v); };
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"benchmark\": \"%s\",\n", bench_name.c_str());
    std::fprintf(out, "  \"seed\": %llu,\n", u(cfg.seed));
    std::fprintf(out, "  \"injections\": %llu,\n", u(cfg.injections));
    std::fprintf(out, "  \"window\": %llu,\n", u(cfg.window));
    std::fprintf(out, "  \"golden_mode\": \"%s\",\n",
                 cfg.forceGoldenFork ? "forked" : "ledger");
    std::fprintf(out, "  \"runs\": [\n");
    for (size_t i = 0; i < runs.size(); ++i) {
        const Run &run = runs[i];
        const double tps =
            run.seconds > 0
                ? static_cast<double>(run.result.injected) / run.seconds
                : 0.0;
        std::fprintf(out, "    {\n");
        std::fprintf(out, "      \"worker_threads\": %u,\n", run.threads);
        std::fprintf(out, "      \"elapsed_seconds\": %.3f,\n",
                     run.seconds);
        std::fprintf(out, "      \"trials_per_second\": %.1f,\n", tps);
        writeJsonPhases(out, run.result.phases, "      ");
        std::fprintf(out, "\n    }%s\n",
                     i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    const fault::CampaignResult &r = runs.front().result;
    std::fprintf(out, "  \"classification\": {\n");
    std::fprintf(out, "    \"injected\": %llu,\n", u(r.injected));
    std::fprintf(out, "    \"masked\": %llu,\n", u(r.masked));
    std::fprintf(out, "    \"noisy\": %llu,\n", u(r.noisy));
    std::fprintf(out, "    \"sdc\": %llu,\n", u(r.sdc));
    std::fprintf(out, "    \"recovered\": %llu,\n", u(r.recovered));
    std::fprintf(out, "    \"detected\": %llu,\n", u(r.detected));
    std::fprintf(out, "    \"uncovered\": %llu,\n", u(r.uncovered));
    std::fprintf(out, "    \"trial_errors\": %llu,\n", u(r.trialErrors));
    std::fprintf(out, "    \"hung_bare\": %llu,\n", u(r.hungBare));
    std::fprintf(out, "    \"hung_protected\": %llu\n",
                 u(r.hungProtected));
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"partial\": %s\n",
                 r.partial ? "true" : "false");
    std::fprintf(out, "}\n");
    if (out != stdout)
        std::fclose(out);
    return 0;
}
