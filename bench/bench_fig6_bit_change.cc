/**
 * @file
 * Figure 6: percent of values that differ from the previous value (of
 * the same static instruction) in each bit position, for load
 * addresses, store addresses, and store values, aggregated over all
 * benchmarks. The paper's takeaways to reproduce: most bit positions
 * change in under 1% of writes (high value locality) and a few
 * low-order bit positions change much more often.
 */

#include <array>
#include <iostream>

#include "harness.hh"

using namespace fh;

int
main()
{
    const u64 budget = bench::envU64("FH_INSTS", 150000);

    std::array<std::array<u64, wordBits>, 3> changes{};
    std::array<u64, 3> samples{};

    for (const auto &info : bench::selectedBenchmarks()) {
        isa::Program prog = bench::buildProgram(info, 2);
        auto params =
            bench::coreParams(filters::DetectorParams::none());
        pipeline::Core core(params, &prog);
        core.probe().enabled = true;
        while (core.committedTotal() < budget && !core.allHalted())
            core.tick();
        const auto &probe = core.probe();
        for (unsigned s = 0; s < 3; ++s) {
            samples[s] += probe.samples[s];
            for (unsigned b = 0; b < wordBits; ++b)
                changes[s][b] += probe.bitChanges[s][b];
        }
    }

    TextTable table({"bit", "load-addr %", "store-addr %",
                     "store-value %"});
    for (unsigned b = 0; b < wordBits; ++b) {
        std::vector<std::string> row{std::to_string(b)};
        for (unsigned s = 0; s < 3; ++s) {
            double pct = samples[s]
                             ? 100.0 * static_cast<double>(changes[s][b]) /
                                   static_cast<double>(samples[s])
                             : 0.0;
            row.push_back(TextTable::num(pct, 3));
        }
        table.addRow(row);
    }

    std::cout << "Figure 6: percent change per bit position "
                 "(all benchmarks combined)\n\n";
    table.print(std::cout);

    // Summary statistics the paper quotes.
    for (unsigned s = 0; s < 3; ++s) {
        unsigned under1 = 0;
        double avg_bits = 0.0;
        for (unsigned b = 0; b < wordBits; ++b) {
            double frac = samples[s]
                              ? static_cast<double>(changes[s][b]) /
                                    static_cast<double>(samples[s])
                              : 0.0;
            if (frac < 0.01)
                ++under1;
            avg_bits += frac;
        }
        static const char *names[] = {"load-addr", "store-addr",
                                      "store-value"};
        std::cout << "\n" << names[s] << ": " << under1
                  << "/64 bit positions change in <1% of writes; "
                  << "avg " << TextTable::num(avg_bits, 2)
                  << " changed bits per write";
    }
    std::cout << "\n(paper: most bits <1%, ~3 bits change per 64-bit "
                 "write on average)\n";
    return 0;
}
