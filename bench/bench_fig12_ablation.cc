/**
 * @file
 * Figure 12: isolating FaultHound's back-end mechanisms, overall mean
 * across all benchmarks.
 *
 *  left:  false-positive rate of FH-BE-nocluster-no2level (similar to
 *         PBFS-biased) -> FH-BE-no2level (adds clustering) -> FH-BE
 *         (adds the second-level filter); each step improves.
 *  mid:   performance overhead of FH-BE with full rollback vs with
 *         predecessor replay; replay is dramatically better.
 *  right: SDC coverage of FH-BE without vs with the LSQ commit check;
 *         covering the LSQ makes a significant difference.
 */

#include <iostream>

#include "harness.hh"

using namespace fh;

namespace
{

filters::DetectorParams
backendVariant(bool clustering, bool second_level, bool replay,
               bool lsq)
{
    auto p = filters::DetectorParams::faultHoundBackend();
    p.clustering = clustering;
    p.secondLevel = second_level;
    p.replayRecovery = replay;
    p.lsqCommitCheck = lsq;
    return p;
}

} // namespace

int
main()
{
    const u64 budget = bench::envU64("FH_INSTS", 120000);
    auto cfg = bench::campaignConfig();
    auto benchmarks = bench::selectedBenchmarks();

    // ---- left: false-positive rates ----
    struct FpVariant
    {
        std::string label;
        filters::DetectorParams params;
    };
    std::vector<FpVariant> fp_variants = {
        {"FH-BE-nocluster-no2level",
         backendVariant(false, false, true, true)},
        {"FH-BE-no2level", backendVariant(true, false, true, true)},
        {"FH-BE", backendVariant(true, true, true, true)},
    };

    // Each (variant, benchmark) cell of every section is independent;
    // reuse one outer pool for all three and shard the right-hand
    // campaigns' forks with the leftover budget.
    const auto split = bench::splitThreads(benchmarks.size());
    cfg.threads = split.inner;
    exec::ThreadPool pool(split.outer);

    TextTable fp({"variant", "false-positive rate"});
    for (const auto &variant : fp_variants) {
        std::vector<double> rates(benchmarks.size());
        pool.parallelFor(benchmarks.size(), [&](u64 b) {
            isa::Program prog = bench::buildProgram(benchmarks[b], 2);
            rates[b] = bench::fpRateSteady(
                bench::coreParams(variant.params), &prog, budget);
        });
        fp.addRow({variant.label,
                   TextTable::pct(bench::mean(rates), 2)});
    }

    std::cout << "Figure 12 (left): impact of clustering and the "
                 "second-level filter on the false-positive rate "
                 "(mean over all benchmarks)\n\n";
    fp.print(std::cout);

    // ---- middle: full rollback vs replay performance ----
    std::vector<double> o_rollback(benchmarks.size());
    std::vector<double> o_replay(benchmarks.size());
    pool.parallelFor(benchmarks.size(), [&](u64 i) {
        isa::Program prog = bench::buildProgram(benchmarks[i], 2);
        auto base = bench::runBudget(
            bench::coreParams(filters::DetectorParams::none()), &prog,
            budget);
        auto rb = bench::runBudget(
            bench::coreParams(backendVariant(true, true, false, true)),
            &prog, budget);
        auto rp = bench::runBudget(
            bench::coreParams(backendVariant(true, true, true, true)),
            &prog, budget);
        const double b = static_cast<double>(base.cycle());
        o_rollback[i] = static_cast<double>(rb.cycle()) / b - 1.0;
        o_replay[i] = static_cast<double>(rp.cycle()) / b - 1.0;
    });

    TextTable perf({"variant", "performance overhead"});
    perf.addRow({"FH-BE-full-rollback",
                 TextTable::pct(bench::mean(o_rollback))});
    perf.addRow({"FH-BE (replay)",
                 TextTable::pct(bench::mean(o_replay))});
    std::cout << "\nFigure 12 (middle): predecessor replay vs full "
                 "rollback (mean overhead over baseline)\n\n";
    perf.print(std::cout);

    // ---- right: LSQ coverage ----
    std::vector<double> cov_nolsq(benchmarks.size());
    std::vector<double> cov_lsq(benchmarks.size());
    pool.parallelFor(benchmarks.size(), [&](u64 i) {
        isa::Program prog = bench::buildProgram(benchmarks[i], 2);
        auto r0 = fault::runCampaign(
            bench::coreParams(backendVariant(true, true, true, false)),
            &prog, cfg);
        auto r1 = fault::runCampaign(
            bench::coreParams(backendVariant(true, true, true, true)),
            &prog, cfg);
        cov_nolsq[i] = r0.coverage();
        cov_lsq[i] = r1.coverage();
    });

    TextTable cov({"variant", "SDC coverage"});
    cov.addRow({"FH-BE-noLSQ", TextTable::pct(bench::mean(cov_nolsq))});
    cov.addRow({"FH-BE", TextTable::pct(bench::mean(cov_lsq))});
    std::cout << "\nFigure 12 (right): impact of covering the LSQ on "
                 "SDC coverage (mean)\n\n";
    cov.print(std::cout);
    return 0;
}
