/**
 * @file
 * Shared helpers for the experiment harnesses (one binary per paper
 * table/figure). Every harness honors these environment knobs:
 *
 *   FH_BENCH       run only the named benchmark (default: all 14)
 *   FH_INSTS       instruction budget of timing runs
 *   FH_INJECTIONS  fault injections per campaign
 *   FH_WINDOW      run-window length (instructions, paper: 1000)
 *   FH_SEED        master seed
 *   FH_THREADS     host worker threads (default: all hardware
 *                  threads; results are bit-identical for any value)
 *   FH_GOLDEN_FORK set to 1 to run campaigns with the legacy explicit
 *                  golden fork instead of the golden checkpoint
 *                  ledger (same counts, ~1 extra fork per trial)
 *   FH_JOURNAL     trial-journal path; an interrupted campaign rerun
 *                  with the same config resumes from the journal
 *                  (single-campaign harnesses only — harnesses that
 *                  run many campaign cells would contend for the file)
 *   FH_TRIAL_TIMEOUT_MS  per-trial wall-clock budget; overruns are
 *                  isolated and counted as trial errors
 *   FH_EARLY_STOP  set to 0 to disable bare-fork early termination on
 *                  provable fault erasure (default 1; classification
 *                  is identical either way)
 *   FH_CI_TARGET   adaptive stop: pooled SDC-rate Wilson CI
 *                  half-width target (default 0 = fixed-count)
 *   FH_CI_WAVE     adaptive stop wave size in trials (default 64)
 *   FH_DIST_WORKERS  bench_campaign_throughput only: add a row run
 *                  through the distributed fabric with this many
 *                  forked worker processes (coordinator in-process,
 *                  loopback socket) — measures dispatch overhead and
 *                  re-checks bit-identical classification
 *
 * The campaign-heavy harnesses additionally parallelize across their
 * independent scheme/size/benchmark cells, splitting the FH_THREADS
 * budget between cells (outer) and each cell's campaign forks (inner)
 * via splitThreads().
 */

#ifndef FH_BENCH_HARNESS_HH
#define FH_BENCH_HARNESS_HH

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "exec/thread_pool.hh"
#include "fault/campaign.hh"
#include "filters/detector.hh"
#include "pipeline/core.hh"
#include "sim/text_table.hh"
#include "workload/workload.hh"

namespace fh::bench
{

inline u64
envU64(const char *name, u64 def)
{
    const char *v = std::getenv(name);
    return v ? std::strtoull(v, nullptr, 0) : def;
}

inline std::string
envStr(const char *name, const std::string &def)
{
    const char *v = std::getenv(name);
    return v ? v : def;
}

inline double
envDouble(const char *name, double def)
{
    const char *v = std::getenv(name);
    return v ? std::strtod(v, nullptr) : def;
}

/** Worker-thread budget from FH_THREADS (unset/0 = all hardware). */
inline unsigned
envThreads()
{
    return exec::resolveThreads(
        static_cast<unsigned>(envU64("FH_THREADS", 0)));
}

/**
 * Split of the FH_THREADS budget between the independent
 * configuration cells of a harness and each cell's campaign forks.
 */
struct ThreadSplit
{
    unsigned outer = 1; ///< exec::ThreadPool size across cells
    unsigned inner = 1; ///< CampaignConfig::threads within a cell
};

inline ThreadSplit
splitThreads(u64 cells)
{
    const u64 budget = envThreads();
    ThreadSplit split;
    split.outer = static_cast<unsigned>(
        std::min<u64>(std::max<u64>(cells, 1), budget));
    split.inner =
        static_cast<unsigned>(std::max<u64>(1, budget / split.outer));
    return split;
}

/** Benchmarks selected by FH_BENCH (default: all of Table 1). */
inline std::vector<workload::BenchmarkInfo>
selectedBenchmarks()
{
    const std::string pick = envStr("FH_BENCH", "");
    std::vector<workload::BenchmarkInfo> out;
    for (const auto &info : workload::all())
        if (pick.empty() || info.name == pick)
            out.push_back(info);
    return out;
}

/** Build a benchmark program for the given SMT context count. */
inline isa::Program
buildProgram(const workload::BenchmarkInfo &info, unsigned max_threads)
{
    workload::WorkloadSpec spec;
    spec.maxThreads = max_threads;
    spec.seed = envU64("FH_SEED", 0x5eedULL);
    return info.build(spec);
}

/** Table 2 core with the given detector attached. */
inline pipeline::CoreParams
coreParams(const filters::DetectorParams &det)
{
    pipeline::CoreParams params;
    params.detector = det;
    return params;
}

/**
 * Run a fresh core until every thread commits its equal share of
 * inst_budget (frozen precisely, so schemes are compared on identical
 * per-thread work); returns the core for stats.
 */
inline pipeline::Core
runBudget(const pipeline::CoreParams &params, const isa::Program *prog,
          u64 inst_budget)
{
    pipeline::Core core(params, prog);
    core.runPerThreadBudget(inst_budget / core.numThreads(),
                            inst_budget * 200 + 1000000);
    return core;
}

/** The four screening schemes of Figure 8, in paper order. */
struct SchemeDef
{
    std::string label;
    filters::DetectorParams params;
};

inline std::vector<SchemeDef>
fig8Schemes()
{
    return {
        {"PBFS", filters::DetectorParams::pbfsSticky()},
        {"PBFS-biased", filters::DetectorParams::pbfsBiased()},
        {"FH-backend", filters::DetectorParams::faultHoundBackend()},
        {"FaultHound", filters::DetectorParams::faultHound()},
    };
}

/** False-positive recovery actions per committed instruction. */
inline double
fpRate(const pipeline::Core &core)
{
    const auto &d = core.detector().stats();
    const u64 committed = core.stats().committed;
    if (committed == 0)
        return 0.0;
    return static_cast<double>(d.replays + d.rollbacks +
                               d.commitTriggers) /
           static_cast<double>(committed);
}

/**
 * Steady-state false-positive rate: run a warmup quarter of the
 * budget (filters train, caches warm), then measure recovery actions
 * per instruction over the remainder.
 */
inline double
fpRateSteady(const pipeline::CoreParams &params, const isa::Program *prog,
             u64 inst_budget)
{
    pipeline::Core core(params, prog);
    const u64 per_thread = inst_budget / core.numThreads();
    const Cycle bound = inst_budget * 200 + 1000000;
    core.runPerThreadBudget(per_thread / 4, bound);
    const auto warm = core.detector().stats();
    const u64 committed_warm = core.stats().committed;
    core.runPerThreadBudget(per_thread, bound);
    const auto &d = core.detector().stats();
    const u64 committed = core.stats().committed - committed_warm;
    if (committed == 0)
        return 0.0;
    return static_cast<double>((d.replays - warm.replays) +
                               (d.rollbacks - warm.rollbacks) +
                               (d.commitTriggers - warm.commitTriggers)) /
           static_cast<double>(committed);
}

inline double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

/** Default campaign configuration from the environment. */
inline fault::CampaignConfig
campaignConfig()
{
    fault::CampaignConfig cfg;
    cfg.injections = envU64("FH_INJECTIONS", 120);
    cfg.window = envU64("FH_WINDOW", 1000);
    cfg.seed = envU64("FH_SEED", 1);
    cfg.threads = static_cast<unsigned>(envU64("FH_THREADS", 0));
    cfg.forceGoldenFork = envU64("FH_GOLDEN_FORK", 0) != 0;
    cfg.trialTimeoutMs = envU64("FH_TRIAL_TIMEOUT_MS", 0);
    cfg.earlyStop = envU64("FH_EARLY_STOP", 1) != 0;
    cfg.ciTarget = envDouble("FH_CI_TARGET", 0.0);
    cfg.ciWave = envU64("FH_CI_WAVE", 64);
    return cfg;
}

/**
 * campaignConfig() plus FH_JOURNAL, for harnesses that run exactly
 * one campaign (the journal is keyed to one config; concurrent cells
 * would clobber each other's files).
 */
inline fault::CampaignConfig
campaignConfigJournaled()
{
    fault::CampaignConfig cfg = campaignConfig();
    cfg.journalPath = envStr("FH_JOURNAL", "");
    return cfg;
}

} // namespace fh::bench

#endif // FH_BENCH_HARNESS_HH
