/**
 * @file
 * Section 3 state-machine depth claim: "changing from two-bit to
 * three-bit state machine reduces the coverage from 80% to 60%" —
 * the deeper bias suppresses more true faults in intermediate states.
 * We sweep the per-bit counter flavor of FaultHound's TCAM filters and
 * report coverage and false-positive rates.
 */

#include <iostream>

#include "harness.hh"

using namespace fh;

int
main()
{
    auto cfg = bench::campaignConfig();
    const u64 budget = bench::envU64("FH_INSTS", 100000);

    struct Variant
    {
        std::string label;
        filters::CounterConfig counters;
    };
    std::vector<Variant> variants = {
        {"standard 2-bit (unbiased)", filters::CounterConfig::standard()},
        {"biased 2-bit (paper)", filters::CounterConfig::biased()},
        {"biased 3-bit (deeper)", filters::CounterConfig::biased3()},
    };

    // variant x benchmark cells are independent: outer pool over the
    // cells, leftover FH_THREADS budget into each cell's campaign.
    auto benchmarks = bench::selectedBenchmarks();
    const u64 ncells = variants.size() * benchmarks.size();
    std::vector<double> cov(ncells);
    std::vector<double> fp(ncells);
    const auto split = bench::splitThreads(ncells);
    cfg.threads = split.inner;
    exec::ThreadPool pool(split.outer);
    pool.parallelFor(ncells, [&](u64 j) {
        const auto &variant = variants[j / benchmarks.size()];
        isa::Program prog =
            bench::buildProgram(benchmarks[j % benchmarks.size()], 2);
        auto det = filters::DetectorParams::faultHound();
        det.tcam.counters = variant.counters;
        auto params = bench::coreParams(det);
        cov[j] = fault::runCampaign(params, &prog, cfg).coverage();
        fp[j] = bench::fpRateSteady(params, &prog, budget);
    });

    TextTable table({"state machine", "SDC coverage", "FP rate"});
    for (size_t v = 0; v < variants.size(); ++v) {
        const auto cov_first = cov.begin() + v * benchmarks.size();
        const auto fp_first = fp.begin() + v * benchmarks.size();
        std::vector<double> cov_row(cov_first,
                                    cov_first + benchmarks.size());
        std::vector<double> fp_row(fp_first,
                                   fp_first + benchmarks.size());
        table.addRow({variants[v].label,
                      TextTable::pct(bench::mean(cov_row)),
                      TextTable::pct(bench::mean(fp_row), 2)});
    }

    std::cout << "State-machine depth ablation (Section 3)\n(paper: "
                 "deeper bias costs coverage, 80% -> 60%; the unbiased "
                 "machine has unacceptable false positives)\n\n";
    table.print(std::cout);
    return 0;
}
