/**
 * @file
 * Section 3 state-machine depth claim: "changing from two-bit to
 * three-bit state machine reduces the coverage from 80% to 60%" —
 * the deeper bias suppresses more true faults in intermediate states.
 * We sweep the per-bit counter flavor of FaultHound's TCAM filters and
 * report coverage and false-positive rates.
 */

#include <iostream>

#include "harness.hh"

using namespace fh;

int
main()
{
    auto cfg = bench::campaignConfig();
    const u64 budget = bench::envU64("FH_INSTS", 100000);

    struct Variant
    {
        std::string label;
        filters::CounterConfig counters;
    };
    std::vector<Variant> variants = {
        {"standard 2-bit (unbiased)", filters::CounterConfig::standard()},
        {"biased 2-bit (paper)", filters::CounterConfig::biased()},
        {"biased 3-bit (deeper)", filters::CounterConfig::biased3()},
    };

    TextTable table({"state machine", "SDC coverage", "FP rate"});
    for (const auto &variant : variants) {
        std::vector<double> cov;
        std::vector<double> fp;
        for (const auto &info : bench::selectedBenchmarks()) {
            isa::Program prog = bench::buildProgram(info, 2);
            auto det = filters::DetectorParams::faultHound();
            det.tcam.counters = variant.counters;
            auto params = bench::coreParams(det);
            cov.push_back(
                fault::runCampaign(params, &prog, cfg).coverage());
            fp.push_back(bench::fpRateSteady(params, &prog, budget));
        }
        table.addRow({variant.label,
                      TextTable::pct(bench::mean(cov)),
                      TextTable::pct(bench::mean(fp), 2)});
    }

    std::cout << "State-machine depth ablation (Section 3)\n(paper: "
                 "deeper bias costs coverage, 80% -> 60%; the unbiased "
                 "machine has unacceptable false positives)\n\n";
    table.print(std::cout);
    return 0;
}
