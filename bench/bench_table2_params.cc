/**
 * @file
 * Table 2: hardware parameters of the simulated core, as configured
 * by default in pipeline::CoreParams / mem::HierarchyParams /
 * filters::DetectorParams.
 */

#include <iostream>

#include "harness.hh"

using namespace fh;

int
main()
{
    pipeline::CoreParams p =
        bench::coreParams(filters::DetectorParams::faultHound());

    TextTable table({"parameter", "value"});
    auto row = [&](const std::string &k, const std::string &v) {
        table.addRow({k, v});
    };

    row("SMT contexts per core", std::to_string(p.threads));
    row("fetch/decode/issue/commit width",
        std::to_string(p.fetchWidth));
    row("ALU / Mul units", std::to_string(p.numAlu) + " / " +
                               std::to_string(p.numMul));
    row("issue queue", std::to_string(p.iqSize));
    row("re-order buffer", std::to_string(p.robSize));
    row("physical registers", std::to_string(p.physRegs));
    row("LSQ", std::to_string(p.lsqSize));
    row("delay buffer", std::to_string(p.delayBufferSize));
    row("L1 I/D", std::to_string(p.memory.l1i.sizeBytes / 1024) +
                      " KB, " + std::to_string(p.memory.l1i.ways) +
                      "-way, " +
                      std::to_string(p.memory.l1d.hitLatency) +
                      " cycles");
    row("L2", std::to_string(p.memory.l2.sizeBytes / (1024 * 1024)) +
                  " MB, " + std::to_string(p.memory.l2.ways) +
                  "-way, " + std::to_string(p.memory.l2.hitLatency) +
                  " cycles");
    row("ITLB/DTLB entries", std::to_string(p.memory.itlb.entries));
    row("memory latency",
        std::to_string(p.memory.memoryLatency) + " cycles");
    row("FaultHound TCAMs",
        "2 x " + std::to_string(p.detector.tcam.entries) +
            "-entry, 64-bit (loosen threshold " +
            std::to_string(p.detector.tcam.loosenThreshold) + ")");
    row("second-level filter",
        std::to_string(p.detector.secondLevelStates) +
            "-state per bit, one per TCAM");
    row("squash state machines",
        std::to_string(p.detector.squashStates) +
            "-state per TCAM entry");

    std::cout << "Table 2: hardware parameters\n\n";
    table.print(std::cout);
    return 0;
}
