/**
 * @file
 * Figure 9: performance degradation over the fault-intolerant
 * baseline for PBFS, PBFS-biased, FaultHound-backend, FaultHound, and
 * SRT-iso. Expected shape: PBFS negligible, PBFS-biased very high
 * (~97% in the paper, full rollbacks on every false positive),
 * FaultHound-backend <= FaultHound ~10%, SRT-iso slightly above
 * FaultHound.
 */

#include <iostream>

#include "harness.hh"
#include "redundancy/srt.hh"

using namespace fh;

namespace
{

/** Cycles for the leading threads to commit the budget under SRT. */
u64
srtCycles(const workload::BenchmarkInfo &info, u64 budget,
          double coverage)
{
    isa::Program prog = bench::buildProgram(info, 4);
    pipeline::CoreParams base =
        bench::coreParams(filters::DetectorParams::none());
    pipeline::CoreParams params = redundancy::srtParams(base);
    pipeline::Core core(params, &prog);
    const u64 per_lead = budget / base.threads;
    redundancy::configureSrt(core, base.threads, {coverage}, per_lead);
    std::vector<u64> targets(core.numThreads(), 0);
    for (unsigned t = 0; t < base.threads; ++t) {
        core.threadOptions(t).stopAfterInsts = per_lead;
        targets[t] = per_lead;
    }
    core.runUntilCommitted(targets, budget * 200 + 1000000);
    return core.cycle();
}

} // namespace

int
main()
{
    const u64 budget = bench::envU64("FH_INSTS", 150000);
    const double srt_coverage = 0.75; // FaultHound's coverage level

    TextTable table({"benchmark", "PBFS", "PBFS-biased", "FH-backend",
                     "FaultHound", "SRT-iso"});
    std::vector<std::vector<double>> columns(5);

    for (const auto &info : bench::selectedBenchmarks()) {
        isa::Program prog = bench::buildProgram(info, 2);

        auto base = bench::runBudget(
            bench::coreParams(filters::DetectorParams::none()), &prog,
            budget);
        const double base_cycles = static_cast<double>(base.cycle());

        std::vector<std::string> row{info.name};
        unsigned col = 0;
        for (const auto &scheme : bench::fig8Schemes()) {
            auto core = bench::runBudget(bench::coreParams(scheme.params),
                                         &prog, budget);
            double overhead =
                static_cast<double>(core.cycle()) / base_cycles - 1.0;
            columns[col++].push_back(overhead);
            row.push_back(TextTable::pct(overhead));
        }

        double srt = static_cast<double>(
                         srtCycles(info, budget, srt_coverage)) /
                         base_cycles -
                     1.0;
        columns[4].push_back(srt);
        row.push_back(TextTable::pct(srt));
        table.addRow(row);
    }

    table.addRow({"mean", TextTable::pct(bench::mean(columns[0])),
                  TextTable::pct(bench::mean(columns[1])),
                  TextTable::pct(bench::mean(columns[2])),
                  TextTable::pct(bench::mean(columns[3])),
                  TextTable::pct(bench::mean(columns[4]))});

    std::cout << "Figure 9: performance degradation vs "
                 "no-fault-tolerance baseline (" << budget
              << " instructions)\n(paper: PBFS ~1%, PBFS-biased ~97%, "
                 "FH-backend < FaultHound ~10%, SRT-iso slightly "
                 "above FaultHound)\n\n";
    table.print(std::cout);
    return 0;
}
