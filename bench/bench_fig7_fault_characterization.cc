/**
 * @file
 * Figure 7: fraction of injected faults that are masked, noisy
 * (exception-raising), or silent data corruptions, per benchmark.
 * Expected shape (paper): ~85% masked, ~5% noisy, ~10% SDC.
 */

#include <iostream>

#include "harness.hh"

using namespace fh;

int
main()
{
    auto cfg = bench::campaignConfig();

    TextTable table({"benchmark", "masked", "noisy", "SDC"});
    std::vector<double> masked;
    std::vector<double> noisy;
    std::vector<double> sdc;

    for (const auto &info : bench::selectedBenchmarks()) {
        isa::Program prog = bench::buildProgram(info, 2);
        auto params =
            bench::coreParams(filters::DetectorParams::none());
        auto res = fault::runCampaign(params, &prog, cfg);
        masked.push_back(res.maskedFrac());
        noisy.push_back(res.noisyFrac());
        sdc.push_back(res.sdcFrac());
        table.addRow({info.name, TextTable::pct(res.maskedFrac()),
                      TextTable::pct(res.noisyFrac()),
                      TextTable::pct(res.sdcFrac())});
    }

    table.addRow({"mean", TextTable::pct(bench::mean(masked)),
                  TextTable::pct(bench::mean(noisy)),
                  TextTable::pct(bench::mean(sdc))});

    std::cout << "Figure 7: fault characterization (" << cfg.injections
              << " single-bit injections per benchmark: rename table "
                 "20%, register file 72%, LSQ 8%)\n(paper: ~85% "
                 "masked, ~5% noisy, ~10% SDC)\n\n";
    table.print(std::cout);
    return 0;
}
