/**
 * @file
 * Figure 11: breakdown of injected SDC faults under full FaultHound
 * into covered faults, faults masked by the second-level filter,
 * faults in completed/committed registers, uncovered rename faults,
 * faults that never trigger, and other.
 */

#include <iostream>

#include "harness.hh"

using namespace fh;

int
main()
{
    auto cfg = bench::campaignConfig();

    TextTable table({"benchmark", "covered", "2nd-level", "compl-reg",
                     "rename", "no-trigger", "other"});
    std::vector<std::vector<double>> cols(6);

    for (const auto &info : bench::selectedBenchmarks()) {
        isa::Program prog = bench::buildProgram(info, 2);
        auto params =
            bench::coreParams(filters::DetectorParams::faultHound());
        auto res = fault::runCampaign(params, &prog, cfg);

        const double sdc = std::max<double>(1.0, res.sdc);
        const double vals[6] = {
            static_cast<double>(res.bins.covered) / sdc,
            static_cast<double>(res.bins.secondLevelMasked) / sdc,
            static_cast<double>(res.bins.completedReg) / sdc,
            static_cast<double>(res.bins.renameUncovered) / sdc,
            static_cast<double>(res.bins.noTrigger) / sdc,
            static_cast<double>(res.bins.other) / sdc,
        };
        std::vector<std::string> row{info.name};
        for (unsigned i = 0; i < 6; ++i) {
            cols[i].push_back(vals[i]);
            row.push_back(TextTable::pct(vals[i]));
        }
        table.addRow(row);
    }

    std::vector<std::string> row{"mean"};
    for (auto &c : cols)
        row.push_back(TextTable::pct(bench::mean(c)));
    table.addRow(row);

    std::cout << "Figure 11: SDC fault breakdown under FaultHound ("
              << cfg.injections
              << " injections per benchmark)\n(paper: covered "
                 "dominates; non-triggering faults ~10% of SDC; "
                 "completed/committed-register and uncovered-rename "
                 "faults modest)\n\n";
    table.print(std::cout);
    return 0;
}
