/**
 * @file
 * Figure 11: breakdown of injected SDC faults under full FaultHound
 * into covered faults, faults masked by the second-level filter,
 * faults in completed/committed registers, uncovered rename faults,
 * faults that never trigger, and other.
 */

#include <iostream>

#include "harness.hh"

using namespace fh;

int
main()
{
    auto cfg = bench::campaignConfig();
    auto benchmarks = bench::selectedBenchmarks();

    TextTable table({"benchmark", "covered", "2nd-level", "compl-reg",
                     "rename", "no-trigger", "other"});
    std::vector<std::vector<double>> cols(6);

    // One campaign per benchmark; campaigns are independent, so run
    // them on an outer pool and shard each one's forks with the rest.
    std::vector<fault::CampaignResult> results(benchmarks.size());
    const auto split = bench::splitThreads(benchmarks.size());
    cfg.threads = split.inner;
    exec::ThreadPool pool(split.outer);
    pool.parallelFor(benchmarks.size(), [&](u64 b) {
        isa::Program prog = bench::buildProgram(benchmarks[b], 2);
        auto params =
            bench::coreParams(filters::DetectorParams::faultHound());
        results[b] = fault::runCampaign(params, &prog, cfg);
    });

    for (size_t b = 0; b < benchmarks.size(); ++b) {
        const auto &info = benchmarks[b];
        const auto &res = results[b];

        const double sdc = std::max<double>(1.0, res.sdc);
        const double vals[6] = {
            static_cast<double>(res.bins.covered) / sdc,
            static_cast<double>(res.bins.secondLevelMasked) / sdc,
            static_cast<double>(res.bins.completedReg) / sdc,
            static_cast<double>(res.bins.renameUncovered) / sdc,
            static_cast<double>(res.bins.noTrigger) / sdc,
            static_cast<double>(res.bins.other) / sdc,
        };
        std::vector<std::string> row{info.name};
        for (unsigned i = 0; i < 6; ++i) {
            cols[i].push_back(vals[i]);
            row.push_back(TextTable::pct(vals[i]));
        }
        table.addRow(row);
    }

    std::vector<std::string> row{"mean"};
    for (auto &c : cols)
        row.push_back(TextTable::pct(bench::mean(c)));
    table.addRow(row);

    std::cout << "Figure 11: SDC fault breakdown under FaultHound ("
              << cfg.injections
              << " injections per benchmark)\n(paper: covered "
                 "dominates; non-triggering faults ~10% of SDC; "
                 "completed/committed-register and uncovered-rename "
                 "faults modest)\n\n";
    table.print(std::cout);
    return 0;
}
