/**
 * @file
 * google-benchmark microbenchmarks for the filter structures: the
 * filters are checked on every load/store completion and commit, so
 * their software cost bounds the simulator's throughput (and their
 * modeled hardware cost is what Section 3.1's TCAM-size argument is
 * about).
 */

#include <benchmark/benchmark.h>

#include "filters/detector.hh"
#include "filters/pbfs.hh"
#include "filters/second_level.hh"
#include "filters/tcam.hh"
#include "sim/rng.hh"

using namespace fh;
using namespace fh::filters;

namespace
{

std::vector<u64>
counterStream(size_t n)
{
    std::vector<u64> values;
    values.reserve(n);
    Rng rng(1);
    for (size_t i = 0; i < n; ++i)
        values.push_back(0x20000000 + (i % 512) * 8 +
                         (rng.chance(0.1) ? 4096 : 0));
    return values;
}

} // namespace

static void
BM_TcamLookup(benchmark::State &state)
{
    TcamParams params;
    params.entries = static_cast<unsigned>(state.range(0));
    CountingTcam tcam(params);
    auto values = counterStream(4096);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tcam.lookup(values[i++ & 4095]));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TcamLookup)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

static void
BM_TcamProbe(benchmark::State &state)
{
    CountingTcam tcam({32, 4, CounterConfig::biased()});
    auto values = counterStream(4096);
    for (u64 v : values)
        tcam.lookup(v);
    size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(tcam.probe(values[i++ & 4095]));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TcamProbe);

static void
BM_PbfsCheck(benchmark::State &state)
{
    PbfsTable table({2048, 10000, CounterConfig::sticky()});
    auto values = counterStream(4096);
    size_t i = 0;
    for (auto _ : state) {
        size_t k = i++ & 4095;
        benchmark::DoNotOptimize(table.check(k & 63, values[k]));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PbfsCheck);

static void
BM_SecondLevelTrigger(benchmark::State &state)
{
    SecondLevelFilter second(8);
    Rng rng(2);
    std::vector<u64> masks(1024);
    for (auto &m : masks)
        m = 1ULL << rng.below(16);
    size_t i = 0;
    for (auto _ : state)
        benchmark::DoNotOptimize(second.onTrigger(masks[i++ & 1023]));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SecondLevelTrigger);

static void
BM_DetectorCheckComplete(benchmark::State &state)
{
    Detector det(DetectorParams::faultHound());
    auto values = counterStream(4096);
    size_t i = 0;
    for (auto _ : state) {
        size_t k = i++ & 4095;
        benchmark::DoNotOptimize(det.checkComplete(
            StreamKind::LoadAddr, k & 63, values[k], false));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DetectorCheckComplete);

BENCHMARK_MAIN();
