/**
 * @file
 * Figure 8: (a) SDC coverage and (b) false-positive rates for PBFS,
 * PBFS-biased, FaultHound-backend, and full FaultHound.
 *
 * Expected shape (paper): PBFS low coverage (~30%) with negligible
 * false positives; PBFS-biased good coverage (~75-80%) but high
 * false-positive rates (~8%); FaultHound matches PBFS-biased's
 * coverage at much lower false-positive rates (~3%); FH-backend
 * covers only the back-end, so its overall coverage is lower than
 * full FaultHound's.
 */

#include <iostream>

#include "harness.hh"

using namespace fh;

int
main()
{
    auto cfg = bench::campaignConfig();
    const u64 fp_budget = bench::envU64("FH_INSTS", 120000);
    auto schemes = bench::fig8Schemes();
    auto benchmarks = bench::selectedBenchmarks();

    TextTable cov({"benchmark", "PBFS", "PBFS-biased", "FH-backend",
                   "FaultHound"});
    TextTable fp({"benchmark", "PBFS", "PBFS-biased", "FH-backend",
                  "FaultHound"});
    std::vector<std::vector<double>> cov_cols(schemes.size());
    std::vector<std::vector<double>> fp_cols(schemes.size());

    // Every benchmark x scheme cell is independent: run the cells on
    // an outer pool and give each campaign the rest of the budget.
    struct Cell
    {
        double cov = 0.0;
        double fp = 0.0;
    };
    std::vector<Cell> cells(benchmarks.size() * schemes.size());
    const auto split = bench::splitThreads(cells.size());
    cfg.threads = split.inner;
    exec::ThreadPool pool(split.outer);
    pool.parallelFor(cells.size(), [&](u64 j) {
        const auto &info = benchmarks[j / schemes.size()];
        const auto &scheme = schemes[j % schemes.size()];
        isa::Program prog = bench::buildProgram(info, 2);
        auto params = bench::coreParams(scheme.params);
        cells[j].cov = fault::runCampaign(params, &prog, cfg).coverage();
        cells[j].fp = bench::fpRateSteady(params, &prog, fp_budget);
    });

    for (size_t b = 0; b < benchmarks.size(); ++b) {
        std::vector<std::string> cov_row{benchmarks[b].name};
        std::vector<std::string> fp_row{benchmarks[b].name};
        for (size_t s = 0; s < schemes.size(); ++s) {
            const Cell &cell = cells[b * schemes.size() + s];
            cov_cols[s].push_back(cell.cov);
            cov_row.push_back(TextTable::pct(cell.cov));
            fp_cols[s].push_back(cell.fp);
            fp_row.push_back(TextTable::pct(cell.fp, 2));
        }
        cov.addRow(cov_row);
        fp.addRow(fp_row);
    }

    auto addMean = [&](TextTable &t,
                       std::vector<std::vector<double>> &cols) {
        std::vector<std::string> row{"mean"};
        for (auto &c : cols)
            row.push_back(TextTable::pct(bench::mean(c)));
        t.addRow(row);
    };
    addMean(cov, cov_cols);
    addMean(fp, fp_cols);

    std::cout << "Figure 8(a): SDC coverage (" << cfg.injections
              << " injections per benchmark per scheme)\n(paper: PBFS "
                 "~30%, PBFS-biased ~75-80%, FH-backend < FaultHound "
                 "~75%)\n\n";
    cov.print(std::cout);

    std::cout << "\nFigure 8(b): false-positive rate, fraction of "
                 "committed instructions (fault-free run of "
              << fp_budget
              << " instructions)\n(paper: PBFS ~0%, PBFS-biased ~8%, "
                 "FaultHound ~3%)\n\n";
    fp.print(std::cout);
    return 0;
}
