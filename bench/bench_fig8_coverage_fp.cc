/**
 * @file
 * Figure 8: (a) SDC coverage and (b) false-positive rates for PBFS,
 * PBFS-biased, FaultHound-backend, and full FaultHound.
 *
 * Expected shape (paper): PBFS low coverage (~30%) with negligible
 * false positives; PBFS-biased good coverage (~75-80%) but high
 * false-positive rates (~8%); FaultHound matches PBFS-biased's
 * coverage at much lower false-positive rates (~3%); FH-backend
 * covers only the back-end, so its overall coverage is lower than
 * full FaultHound's.
 */

#include <iostream>

#include "harness.hh"

using namespace fh;

int
main()
{
    auto cfg = bench::campaignConfig();
    const u64 fp_budget = bench::envU64("FH_INSTS", 120000);
    auto schemes = bench::fig8Schemes();

    TextTable cov({"benchmark", "PBFS", "PBFS-biased", "FH-backend",
                   "FaultHound"});
    TextTable fp({"benchmark", "PBFS", "PBFS-biased", "FH-backend",
                  "FaultHound"});
    std::vector<std::vector<double>> cov_cols(schemes.size());
    std::vector<std::vector<double>> fp_cols(schemes.size());

    for (const auto &info : bench::selectedBenchmarks()) {
        isa::Program prog = bench::buildProgram(info, 2);
        std::vector<std::string> cov_row{info.name};
        std::vector<std::string> fp_row{info.name};

        for (size_t s = 0; s < schemes.size(); ++s) {
            auto params = bench::coreParams(schemes[s].params);
            auto res = fault::runCampaign(params, &prog, cfg);
            cov_cols[s].push_back(res.coverage());
            cov_row.push_back(TextTable::pct(res.coverage()));

            double rate = bench::fpRateSteady(params, &prog, fp_budget);
            fp_cols[s].push_back(rate);
            fp_row.push_back(TextTable::pct(rate, 2));
        }
        cov.addRow(cov_row);
        fp.addRow(fp_row);
    }

    auto addMean = [&](TextTable &t,
                       std::vector<std::vector<double>> &cols) {
        std::vector<std::string> row{"mean"};
        for (auto &c : cols)
            row.push_back(TextTable::pct(bench::mean(c)));
        t.addRow(row);
    };
    addMean(cov, cov_cols);
    addMean(fp, fp_cols);

    std::cout << "Figure 8(a): SDC coverage (" << cfg.injections
              << " injections per benchmark per scheme)\n(paper: PBFS "
                 "~30%, PBFS-biased ~75-80%, FH-backend < FaultHound "
                 "~75%)\n\n";
    cov.print(std::cout);

    std::cout << "\nFigure 8(b): false-positive rate, fraction of "
                 "committed instructions (fault-free run of "
              << fp_budget
              << " instructions)\n(paper: PBFS ~0%, PBFS-biased ~8%, "
                 "FaultHound ~3%)\n\n";
    fp.print(std::cout);
    return 0;
}
