/**
 * @file
 * PBFS flash-clear interval sweep (Section 2.1): sticky counters
 * detect only one change per clear, so the clear period sets the
 * coverage/false-positive tradeoff of the baseline — frequent clears
 * re-arm detection (more coverage, more false positives), infrequent
 * clears leave the filters saturated (cheap but nearly blind).
 */

#include <iostream>

#include "harness.hh"

using namespace fh;

int
main()
{
    auto cfg = bench::campaignConfig();
    const u64 budget = bench::envU64("FH_INSTS", 100000);
    const std::vector<u64> intervals = {1000, 5000, 10000, 50000};
    auto benchmarks = bench::selectedBenchmarks();

    // interval x benchmark cells are independent: outer pool over the
    // cells, leftover FH_THREADS budget into each cell's campaign.
    const u64 ncells = intervals.size() * benchmarks.size();
    std::vector<double> cov(ncells);
    std::vector<double> fp(ncells);
    const auto split = bench::splitThreads(ncells);
    cfg.threads = split.inner;
    exec::ThreadPool pool(split.outer);
    pool.parallelFor(ncells, [&](u64 j) {
        const u64 interval = intervals[j / benchmarks.size()];
        isa::Program prog =
            bench::buildProgram(benchmarks[j % benchmarks.size()], 2);
        auto det = filters::DetectorParams::pbfsSticky();
        det.pbfs.clearInterval = interval;
        auto params = bench::coreParams(det);
        cov[j] = fault::runCampaign(params, &prog, cfg).coverage();
        fp[j] = bench::fpRateSteady(params, &prog, budget);
    });

    TextTable table({"clear interval", "SDC coverage", "FP rate"});
    for (size_t i = 0; i < intervals.size(); ++i) {
        const auto first = cov.begin() + i * benchmarks.size();
        std::vector<double> cov_row(first, first + benchmarks.size());
        const auto fp_first = fp.begin() + i * benchmarks.size();
        std::vector<double> fp_row(fp_first,
                                   fp_first + benchmarks.size());
        table.addRow({std::to_string(intervals[i]),
                      TextTable::pct(bench::mean(cov_row)),
                      TextTable::pct(bench::mean(fp_row), 3)});
    }

    std::cout << "PBFS sticky-counter flash-clear sweep (Section 2.1: "
                 "sticky filters detect one change per clear)\n\n";
    table.print(std::cout);
    return 0;
}
