/**
 * @file
 * PBFS flash-clear interval sweep (Section 2.1): sticky counters
 * detect only one change per clear, so the clear period sets the
 * coverage/false-positive tradeoff of the baseline — frequent clears
 * re-arm detection (more coverage, more false positives), infrequent
 * clears leave the filters saturated (cheap but nearly blind).
 */

#include <iostream>

#include "harness.hh"

using namespace fh;

int
main()
{
    auto cfg = bench::campaignConfig();
    const u64 budget = bench::envU64("FH_INSTS", 100000);
    const std::vector<u64> intervals = {1000, 5000, 10000, 50000};

    TextTable table({"clear interval", "SDC coverage", "FP rate"});
    for (u64 interval : intervals) {
        std::vector<double> cov;
        std::vector<double> fp;
        for (const auto &info : bench::selectedBenchmarks()) {
            isa::Program prog = bench::buildProgram(info, 2);
            auto det = filters::DetectorParams::pbfsSticky();
            det.pbfs.clearInterval = interval;
            auto params = bench::coreParams(det);
            cov.push_back(
                fault::runCampaign(params, &prog, cfg).coverage());
            fp.push_back(bench::fpRateSteady(params, &prog, budget));
        }
        table.addRow({std::to_string(interval),
                      TextTable::pct(bench::mean(cov)),
                      TextTable::pct(bench::mean(fp), 3)});
    }

    std::cout << "PBFS sticky-counter flash-clear sweep (Section 2.1: "
                 "sticky filters detect one change per clear)\n\n";
    table.print(std::cout);
    return 0;
}
