/**
 * @file
 * Figure 10: energy overhead over the fault-intolerant baseline for
 * FaultHound-backend, FaultHound, and SRT-iso. Expected shape:
 * FH-backend ~10%, FaultHound ~25% (rename-false-positive rollbacks
 * cost energy even when performance hides them), SRT-iso high (the
 * trailing copies' energy cannot be hidden).
 */

#include <iostream>

#include "energy/energy_model.hh"
#include "harness.hh"
#include "redundancy/srt.hh"

using namespace fh;

namespace
{

double
srtEnergy(const workload::BenchmarkInfo &info, u64 budget,
          double coverage)
{
    isa::Program prog = bench::buildProgram(info, 4);
    pipeline::CoreParams base =
        bench::coreParams(filters::DetectorParams::none());
    pipeline::CoreParams params = redundancy::srtParams(base);
    pipeline::Core core(params, &prog);
    const u64 per_lead = budget / base.threads;
    redundancy::configureSrt(core, base.threads, {coverage}, per_lead);
    std::vector<u64> targets(core.numThreads(), 0);
    for (unsigned t = 0; t < base.threads; ++t) {
        core.threadOptions(t).stopAfterInsts = per_lead;
        targets[t] = per_lead;
    }
    core.runUntilCommitted(targets, budget * 200 + 1000000);
    return energy::computeEnergy(core).total();
}

} // namespace

int
main()
{
    const u64 budget = bench::envU64("FH_INSTS", 150000);
    const double srt_coverage = 0.75;

    TextTable table(
        {"benchmark", "FH-backend", "FaultHound", "SRT-iso"});
    std::vector<std::vector<double>> columns(3);

    for (const auto &info : bench::selectedBenchmarks()) {
        isa::Program prog = bench::buildProgram(info, 2);

        auto base = bench::runBudget(
            bench::coreParams(filters::DetectorParams::none()), &prog,
            budget);
        const double base_energy = energy::computeEnergy(base).total();

        auto be = bench::runBudget(
            bench::coreParams(
                filters::DetectorParams::faultHoundBackend()),
            &prog, budget);
        auto fh = bench::runBudget(
            bench::coreParams(filters::DetectorParams::faultHound()),
            &prog, budget);

        double o_be =
            energy::computeEnergy(be).total() / base_energy - 1.0;
        double o_fh =
            energy::computeEnergy(fh).total() / base_energy - 1.0;
        double o_srt =
            srtEnergy(info, budget, srt_coverage) / base_energy - 1.0;

        columns[0].push_back(o_be);
        columns[1].push_back(o_fh);
        columns[2].push_back(o_srt);
        table.addRow({info.name, TextTable::pct(o_be),
                      TextTable::pct(o_fh), TextTable::pct(o_srt)});
    }

    table.addRow({"mean", TextTable::pct(bench::mean(columns[0])),
                  TextTable::pct(bench::mean(columns[1])),
                  TextTable::pct(bench::mean(columns[2]))});

    std::cout << "Figure 10: energy overhead vs no-fault-tolerance "
                 "baseline\n(paper: FH-backend ~10%, FaultHound ~25%, "
                 "SRT-iso high)\n\n";
    table.print(std::cout);
    return 0;
}
