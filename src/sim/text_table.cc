#include "sim/text_table.hh"

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"

namespace fh
{

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header))
{
    fh_assert(!header_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    fh_assert(cells.size() == header_.size(),
              "row arity %zu != header arity %zu", cells.size(),
              header_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::pct(double ratio, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, ratio * 100.0);
    return buf;
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        os << "\n";
    };

    emit(header_);
    size_t total = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
}

} // namespace fh
