/**
 * @file
 * Error and status reporting helpers in the gem5 spirit: panic() for
 * internal invariant violations, fatal() for user/configuration errors,
 * warn()/inform() for status messages.
 */

#ifndef FH_SIM_LOGGING_HH
#define FH_SIM_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace fh
{

/**
 * printf-style formatting into a std::string.
 */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace fh

/** Abort on an internal simulator bug; never a user error. */
#define fh_panic(...) \
    ::fh::panicImpl(__FILE__, __LINE__, ::fh::csprintf(__VA_ARGS__))

/** Exit cleanly on a condition that is the user's fault. */
#define fh_fatal(...) \
    ::fh::fatalImpl(__FILE__, __LINE__, ::fh::csprintf(__VA_ARGS__))

#define fh_warn(...) ::fh::warnImpl(::fh::csprintf(__VA_ARGS__))
#define fh_inform(...) ::fh::informImpl(::fh::csprintf(__VA_ARGS__))

/** Assert that is kept in release builds; use for cheap invariants. */
#define fh_assert(cond, ...)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::fh::panicImpl(__FILE__, __LINE__,                           \
                            std::string("assertion failed: " #cond " ") + \
                                ::fh::csprintf(__VA_ARGS__));             \
        }                                                                 \
    } while (0)

#endif // FH_SIM_LOGGING_HH
