#include "sim/config.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace fh
{

namespace
{

std::string
strip(const std::string &s)
{
    size_t a = 0;
    size_t b = s.size();
    while (a < b && std::isspace(static_cast<unsigned char>(s[a])))
        ++a;
    while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1])))
        --b;
    return s.substr(a, b - a);
}

} // namespace

bool
Config::parse(const std::string &text, std::string &error)
{
    std::istringstream in(text);
    std::string line;
    unsigned lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        auto hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        line = strip(line);
        if (line.empty())
            continue;
        auto eq = line.find('=');
        if (eq == std::string::npos) {
            error = "line " + std::to_string(lineno) +
                    ": expected key = value";
            return false;
        }
        std::string key = strip(line.substr(0, eq));
        std::string value = strip(line.substr(eq + 1));
        if (key.empty()) {
            error = "line " + std::to_string(lineno) + ": empty key";
            return false;
        }
        values_[key] = value;
    }
    return true;
}

bool
Config::parseFile(const std::string &path, std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open '" + path + "'";
        return false;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    return parse(ss.str(), error);
}

bool
Config::set(const std::string &assignment)
{
    std::string error;
    return parse(assignment, error);
}

bool
Config::has(const std::string &key) const
{
    declareKey(key);
    return values_.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    declareKey(key);
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
}

u64
Config::getU64(const std::string &key, u64 def) const
{
    declareKey(key);
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    return std::strtoull(it->second.c_str(), nullptr, 0);
}

double
Config::getDouble(const std::string &key, double def) const
{
    declareKey(key);
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    return std::strtod(it->second.c_str(), nullptr);
}

bool
Config::getBool(const std::string &key, bool def) const
{
    declareKey(key);
    auto it = values_.find(key);
    if (it == values_.end())
        return def;
    std::string v = it->second;
    std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    return def;
}

void
Config::declareKey(const std::string &key) const
{
    declared_.emplace(key, std::string());
}

void
Config::declareKey(const std::string &key,
                   const std::string &desc) const
{
    declared_[key] = desc;
}

std::vector<std::pair<std::string, std::string>>
Config::keyDocs() const
{
    return {declared_.begin(), declared_.end()};
}

std::vector<std::string>
Config::unknownKeys() const
{
    std::vector<std::string> out;
    for (const auto &[key, value] : values_) {
        (void)value;
        if (declared_.count(key) == 0)
            out.push_back(key);
    }
    return out;
}

} // namespace fh
