#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace fh
{

namespace
{

u64
splitmix64(u64 &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    u64 z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

u64
rotl(u64 x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
Rng::reseed(u64 seed)
{
    u64 x = seed;
    for (auto &word : s_)
        word = splitmix64(x);
}

u64
Rng::next()
{
    const u64 result = rotl(s_[1] * 5, 7) * 9;
    const u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

u64
Rng::below(u64 bound)
{
    fh_assert(bound != 0, "Rng::below(0)");
    // Rejection sampling to avoid modulo bias.
    const u64 threshold = -bound % bound;
    for (;;) {
        u64 r = next();
        if (r >= threshold)
            return r % bound;
    }
}

u64
Rng::range(u64 lo, u64 hi)
{
    fh_assert(lo <= hi, "Rng::range lo > hi");
    return lo + below(hi - lo + 1);
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

u64
Rng::geometric(double p)
{
    fh_assert(p > 0.0 && p <= 1.0, "geometric p out of range");
    if (p >= 1.0)
        return 1;
    double u = uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    return 1 + static_cast<u64>(std::log(u) / std::log1p(-p));
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

Rng
Rng::stream(u64 seed, u64 index)
{
    // Whiten the seed, fold the stream index in, whiten again; the
    // Rng constructor then runs four more splitmix64 rounds, so even
    // adjacent (seed, index) pairs land in unrelated states.
    u64 x = seed;
    x = splitmix64(x) ^ index;
    return Rng(splitmix64(x));
}

} // namespace fh
