/**
 * @file
 * CRC32C (Castagnoli) — the integrity checksum shared by the
 * distributed fabric's wire frames and the trial journal's per-record
 * checksums. One implementation on purpose: a frame journaled verbatim
 * by the coordinator is protected by the same polynomial end to end,
 * so there is exactly one notion of "these bytes are intact" in the
 * system.
 *
 * Software table-based (reflected 0x82F63B78), ~1 byte/cycle — the
 * largest protected unit is a few-hundred-byte trial record, so
 * hardware CRC instructions would be unobservable here.
 */

#ifndef FH_SIM_CRC32C_HH
#define FH_SIM_CRC32C_HH

#include <cstddef>

#include "sim/types.hh"

namespace fh
{

/** CRC32C of data[0, n). Pass a previous return value as seed to
 *  checksum a logically contiguous buffer in pieces. */
u32 crc32c(const void *data, size_t n, u32 seed = 0);

} // namespace fh

#endif // FH_SIM_CRC32C_HH
