/**
 * @file
 * Fundamental fixed-width types and aliases shared by every module.
 */

#ifndef FH_SIM_TYPES_HH
#define FH_SIM_TYPES_HH

#include <cstdint>

namespace fh
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** A simulated clock cycle count. */
using Cycle = u64;

/** A byte address in the simulated physical address space. */
using Addr = u64;

/** Instruction sequence number, unique per dynamic instruction. */
using SeqNum = u64;

/** Number of bits in the machine word the filters watch. */
constexpr unsigned wordBits = 64;

} // namespace fh

#endif // FH_SIM_TYPES_HH
