#include "sim/error.hh"

#include <cstdlib>
#include <cstring>

namespace fh
{

namespace
{

/** Nesting depth of PanicScopes on this thread. */
thread_local int t_panicScopeDepth = 0;

} // namespace

SimError::SimError(const char *file, int line, const std::string &msg)
    : std::runtime_error(std::string(file) + ":" + std::to_string(line) +
                         ": " + msg),
      file_(file), line_(line), message_(msg)
{
}

PanicScope::PanicScope() { ++t_panicScopeDepth; }

PanicScope::~PanicScope() { --t_panicScopeDepth; }

bool
PanicScope::active()
{
    return t_panicScopeDepth > 0;
}

bool
strictMode()
{
    // Read per call, not cached: tests flip the knob with setenv, and
    // the lookup only happens on the (cold) panic path.
    const char *v = std::getenv("FH_STRICT");
    return v && *v && std::strcmp(v, "0") != 0;
}

} // namespace fh
