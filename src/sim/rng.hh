/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All randomness in the simulator flows through seeded Rng instances so
 * that every experiment is reproducible bit-for-bit. The generator is
 * xoshiro256** seeded via splitmix64, which gives independent streams
 * from small integer seeds.
 */

#ifndef FH_SIM_RNG_HH
#define FH_SIM_RNG_HH

#include <array>

#include "sim/types.hh"

namespace fh
{

/**
 * xoshiro256** PRNG with convenience draws. Copyable value type so that
 * forked simulations (tandem fault runs) replay identically.
 */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize the stream from a 64-bit seed. */
    void reseed(u64 seed);

    /** Next raw 64-bit draw. */
    u64 next();

    /** Uniform integer in [0, bound). bound must be non-zero. */
    u64 below(u64 bound);

    /** Uniform integer in [lo, hi] inclusive. */
    u64 range(u64 lo, u64 hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return uniform() < p; }

    /** Geometric-ish draw: number of trials until success at prob p. */
    u64 geometric(double p);

    /** Derive an independent child stream (seed mixing). */
    Rng fork();

    /**
     * Derive the index-th independent stream of a base seed via two
     * splitmix64 mixing rounds. Unlike fork(), this does not touch any
     * generator state, so stream(seed, i) is a pure function of its
     * arguments — campaign trial i draws from stream(cfg.seed, i) no
     * matter which worker thread executes it. Adjacent indices give
     * statistically uncorrelated streams (tests/test_rng.cc).
     */
    static Rng stream(u64 seed, u64 index);

    bool operator==(const Rng &other) const = default;

  private:
    std::array<u64, 4> s_;
};

} // namespace fh

#endif // FH_SIM_RNG_HH
