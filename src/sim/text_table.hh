/**
 * @file
 * Aligned text-table printer used by the benchmark harnesses to render
 * the paper's tables and figure series on the console.
 */

#ifndef FH_SIM_TEXT_TABLE_HH
#define FH_SIM_TEXT_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace fh
{

/** Builds an aligned table row by row and prints it. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    /** Append a data row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);
    /** Format a ratio as a percentage string, e.g. 0.253 -> "25.3%". */
    static std::string pct(double ratio, int precision = 1);

    void print(std::ostream &os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace fh

#endif // FH_SIM_TEXT_TABLE_HH
