#include "sim/logging.hh"

#include <cstdarg>
#include <cstdio>

#include "sim/error.hh"

namespace fh
{

std::string
csprintf(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    // Inside a trial's PanicScope (and outside FH_STRICT=1), a panic
    // is an isolated per-trial failure: throw it to the campaign's
    // trial guard instead of killing an hours-long run. See
    // sim/error.hh for the scoping rules.
    if (PanicScope::active() && !strictMode())
        throw SimError(file, line, msg);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace fh
