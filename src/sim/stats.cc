#include "sim/stats.hh"

#include <algorithm>
#include <iomanip>

#include "sim/logging.hh"

namespace fh::stats
{

void
Accumulator::sample(double v)
{
    if (count_ == 0) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

void
Accumulator::reset()
{
    count_ = 0;
    sum_ = min_ = max_ = 0.0;
}

Histogram::Histogram(double lo, double hi, unsigned buckets)
    : lo_(lo), hi_(hi), buckets_(std::max(1u, buckets), 0)
{
    fh_assert(hi > lo, "histogram range empty");
}

void
Histogram::sample(double v, u64 weight)
{
    const double width = (hi_ - lo_) / buckets_.size();
    double idx = (v - lo_) / width;
    long i = static_cast<long>(idx);
    i = std::clamp<long>(i, 0, static_cast<long>(buckets_.size()) - 1);
    buckets_[static_cast<size_t>(i)] += weight;
    total_ += weight;
}

double
Histogram::bucketLo(unsigned i) const
{
    const double width = (hi_ - lo_) / buckets_.size();
    return lo_ + width * i;
}

double
Histogram::bucketHi(unsigned i) const
{
    return bucketLo(i + 1);
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    total_ = 0;
}

u64
Group::get(const std::string &key) const
{
    auto it = counters_.find(key);
    return it == counters_.end() ? 0 : it->second.value();
}

void
Group::merge(const Group &other)
{
    for (const auto &[key, ctr] : other.counters_)
        counters_[key] += ctr.value();
}

void
Group::dump(std::ostream &os) const
{
    for (const auto &[key, ctr] : counters_) {
        os << (name_.empty() ? key : name_ + "." + key) << " "
           << ctr.value() << "\n";
    }
    for (const auto &[key, acc] : accs_) {
        os << (name_.empty() ? key : name_ + "." + key)
           << ".mean " << acc.mean() << "\n";
    }
}

void
Group::reset()
{
    for (auto &[key, ctr] : counters_)
        ctr.reset();
    for (auto &[key, acc] : accs_)
        acc.reset();
}

} // namespace fh::stats
