/**
 * @file
 * Minimal statistics package: named scalar counters, ratios, and
 * fixed-bucket histograms, grouped for dumping. Modeled loosely on the
 * gem5 stats package but value-typed so whole simulator states can be
 * copied for tandem fault runs.
 */

#ifndef FH_SIM_STATS_HH
#define FH_SIM_STATS_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace fh::stats
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(u64 n) { value_ += n; return *this; }

    u64 value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    u64 value_ = 0;
};

/** A running mean / min / max accumulator over double samples. */
class Accumulator
{
  public:
    void sample(double v);

    u64 count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    void reset();

  private:
    u64 count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** A histogram with uniform buckets over [lo, hi); out-of-range samples
 *  are clamped into the first/last bucket. */
class Histogram
{
  public:
    Histogram() : Histogram(0.0, 1.0, 1) {}
    Histogram(double lo, double hi, unsigned buckets);

    void sample(double v, u64 weight = 1);

    u64 total() const { return total_; }
    const std::vector<u64> &buckets() const { return buckets_; }
    double bucketLo(unsigned i) const;
    double bucketHi(unsigned i) const;
    void reset();

  private:
    double lo_;
    double hi_;
    std::vector<u64> buckets_;
    u64 total_ = 0;
};

/**
 * A named collection of counters for one simulated component. Counters
 * are created on first use; the group can be merged and dumped.
 */
class Group
{
  public:
    explicit Group(std::string name = "") : name_(std::move(name)) {}

    Counter &counter(const std::string &key) { return counters_[key]; }
    u64 get(const std::string &key) const;

    Accumulator &accumulator(const std::string &key) { return accs_[key]; }

    /** Add every counter of other into this group. */
    void merge(const Group &other);

    void dump(std::ostream &os) const;
    void reset();

    const std::string &name() const { return name_; }
    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Accumulator> accs_;
};

} // namespace fh::stats

#endif // FH_SIM_STATS_HH
