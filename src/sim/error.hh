/**
 * @file
 * Structured simulator errors and the scoped panic guard behind the
 * campaign's trial fault isolation.
 *
 * fh_panic / fh_assert normally abort the process: an internal
 * invariant broke and no state can be trusted. A statistical
 * fault-injection campaign is the one place that policy is wrong — a
 * pathological fork is *expected* occasionally (the whole point is to
 * corrupt machine state), and aborting throws away hours of otherwise
 * valid trials. Inside a PanicScope, panics instead throw a SimError
 * carrying the file/line/message, which the campaign catches per
 * trial, counts in CampaignResult::trialErrors, and logs with the
 * injection plan for offline reproduction.
 *
 * Scoping rules (see DESIGN.md "Trial fault isolation"):
 *  - The guard is thread-local, so only the worker running the faulty
 *    fork is affected; the producer thread's master — whose state the
 *    whole campaign depends on — still aborts on panic.
 *  - FH_STRICT=1 (the CI default) disarms every guard: panics abort
 *    exactly as before, so a latent simulator bug cannot hide inside
 *    the trialErrors bucket.
 *  - fh_fatal (user/configuration errors) is never converted: a bad
 *    config is wrong on every trial, not just an unlucky one.
 */

#ifndef FH_SIM_ERROR_HH
#define FH_SIM_ERROR_HH

#include <stdexcept>
#include <string>

namespace fh
{

/** A panic (or trial watchdog expiry) converted into an exception. */
class SimError : public std::runtime_error
{
  public:
    SimError(const char *file, int line, const std::string &msg);

    const std::string &file() const { return file_; }
    int line() const { return line_; }
    /** The panic message alone, without the file:line prefix. */
    const std::string &message() const { return message_; }

  private:
    std::string file_;
    int line_ = 0;
    std::string message_;
};

/**
 * RAII guard: while any PanicScope is alive on this thread (and
 * strictMode() is off), fh_panic/fh_assert throw SimError instead of
 * aborting. Nests; never copied across threads.
 */
class PanicScope
{
  public:
    PanicScope();
    ~PanicScope();

    PanicScope(const PanicScope &) = delete;
    PanicScope &operator=(const PanicScope &) = delete;

    /** True when the calling thread is inside at least one scope. */
    static bool active();
};

/** FH_STRICT environment knob: panics always abort, guard or not. */
bool strictMode();

} // namespace fh

#endif // FH_SIM_ERROR_HH
