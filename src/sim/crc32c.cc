#include "sim/crc32c.hh"

namespace fh
{

namespace
{

struct Crc32cTable
{
    u32 t[256];

    Crc32cTable()
    {
        for (u32 i = 0; i < 256; ++i) {
            u32 c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? (c >> 1) ^ 0x82F63B78u : c >> 1;
            t[i] = c;
        }
    }
};

} // namespace

u32
crc32c(const void *data, size_t n, u32 seed)
{
    static const Crc32cTable table;
    const u8 *p = static_cast<const u8 *>(data);
    u32 c = ~seed;
    for (size_t i = 0; i < n; ++i)
        c = table.t[(c ^ p[i]) & 0xff] ^ (c >> 8);
    return ~c;
}

} // namespace fh
