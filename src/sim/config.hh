/**
 * @file
 * Tiny key=value configuration parser for the CLI driver: lines of
 * `section.key = value` with '#' comments, plus typed accessors with
 * defaults. Intentionally minimal — enough to configure CoreParams and
 * campaign settings from a file or command-line overrides without
 * pulling in a dependency.
 */

#ifndef FH_SIM_CONFIG_HH
#define FH_SIM_CONFIG_HH

#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace fh
{

class Config
{
  public:
    Config() = default;

    /** Parse `key = value` lines; later keys override earlier ones.
     *  Returns false (with an error message) on malformed input. */
    bool parse(const std::string &text, std::string &error);

    /** Parse a file; missing files are user errors (returns false). */
    bool parseFile(const std::string &path, std::string &error);

    /** Apply a single `key=value` override (e.g. from argv). */
    bool set(const std::string &assignment);

    bool has(const std::string &key) const;

    std::string getString(const std::string &key,
                          const std::string &def = "") const;
    u64 getU64(const std::string &key, u64 def = 0) const;
    double getDouble(const std::string &key, double def = 0.0) const;
    bool getBool(const std::string &key, bool def = false) const;

    const std::map<std::string, std::string> &entries() const
    {
        return values_;
    }

    /**
     * Register a key a driver understands without reading it yet
     * (e.g. `injections`, consulted only when `campaign=true`). Every
     * typed accessor registers its key automatically, so drivers only
     * declare keys they read conditionally.
     */
    void declareKey(const std::string &key) const;

    /**
     * Register a key together with a one-line description. The
     * description feeds keyDocs(), from which a driver generates its
     * help text — the registry that powers the typo check doubles as
     * the single source of truth for what the driver understands, so
     * help can never drift from the accepted option set.
     */
    void declareKey(const std::string &key,
                    const std::string &desc) const;

    /**
     * Every declared key with its description (empty for keys
     * registered without one), sorted by key.
     */
    std::vector<std::pair<std::string, std::string>> keyDocs() const;

    /**
     * Keys that were set but never declared or read — in a CLI
     * driver, almost certainly typos (`injectons=5000` silently
     * running the default campaign is the motivating bug). Call after
     * all options are consumed and fh_fatal on a non-empty result.
     */
    std::vector<std::string> unknownKeys() const;

  private:
    std::map<std::string, std::string> values_;
    /** Keys consumed by accessors or declareKey, with their help
     *  descriptions (the recognition set for unknownKeys); mutable
     *  because reading a value is logically const. */
    mutable std::map<std::string, std::string> declared_;
};

} // namespace fh

#endif // FH_SIM_CONFIG_HH
