/**
 * @file
 * Portable population count. std::popcount lowers to a libgcc call on
 * baseline x86-64 unless the whole build carries -mpopcnt; the
 * compiler builtin picks the best available lowering per target
 * without an ISA-gating compile flag, so the build stays portable and
 * the filter kernels stay fast. The SWAR fallback keeps non-GNU
 * compilers working (identical results, a few ops slower).
 */

#ifndef FH_SIM_POPCOUNT_HH
#define FH_SIM_POPCOUNT_HH

#include "sim/types.hh"

namespace fh
{

constexpr unsigned
popcount64(u64 x)
{
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<unsigned>(__builtin_popcountll(x));
#else
    // Classic SWAR reduction (Hacker's Delight, fig. 5-2).
    x -= (x >> 1) & 0x5555555555555555ULL;
    x = (x & 0x3333333333333333ULL) + ((x >> 2) & 0x3333333333333333ULL);
    x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0fULL;
    return static_cast<unsigned>((x * 0x0101010101010101ULL) >> 56);
#endif
}

} // namespace fh

#endif // FH_SIM_POPCOUNT_HH
