#include "fault/campaign_json.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace fh::fault
{

bool
writeCampaignJson(const std::string &path, const std::string &bench,
                  unsigned workers, const CampaignConfig &cfg,
                  const CampaignResult &r, double seconds,
                  const FabricHealth *fabric)
{
    std::FILE *out =
        path == "-" ? stdout : std::fopen(path.c_str(), "w");
    if (!out) {
        fh_warn("cannot write FH_JSON file %s", path.c_str());
        return false;
    }
    auto u = [](u64 v) { return static_cast<unsigned long long>(v); };
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"benchmark\": \"%s\",\n", bench.c_str());
    std::fprintf(out, "  \"seed\": %llu,\n", u(cfg.seed));
    std::fprintf(out, "  \"injections\": %llu,\n", u(cfg.injections));
    std::fprintf(out, "  \"window\": %llu,\n", u(cfg.window));
    std::fprintf(out, "  \"worker_threads\": %u,\n", workers);
    // Interrupted-and-drained runs are flagged, never passed off as
    // complete: the classification below covers only injected trials.
    std::fprintf(out, "  \"partial\": %s,\n",
                 r.partial ? "true" : "false");
    std::fprintf(out, "  \"early_stop\": %s,\n",
                 cfg.earlyStop ? "true" : "false");
    std::fprintf(out, "  \"ci_target\": %.17g,\n", cfg.ciTarget);
    std::fprintf(out, "  \"ci_wave\": %llu,\n", u(cfg.ciWave));
    // Adaptive campaigns: stopped at a wave boundary because the
    // pooled Wilson half-width on the SDC rate reached ci_target.
    std::fprintf(out, "  \"ci_stopped\": %s,\n",
                 r.ciStopped ? "true" : "false");
    std::fprintf(out, "  \"replayed_trials\": %llu,\n",
                 u(r.replayedTrials));
    std::fprintf(out, "  \"elapsed_seconds\": %.3f,\n", seconds);
    std::fprintf(out, "  \"trials_per_second\": %.1f,\n",
                 seconds > 0 ? static_cast<double>(r.injected) / seconds
                             : 0.0);
    std::fprintf(out, "  \"classification\": {\n");
    std::fprintf(out, "    \"injected\": %llu,\n", u(r.injected));
    std::fprintf(out, "    \"masked\": %llu,\n", u(r.masked));
    std::fprintf(out, "    \"noisy\": %llu,\n", u(r.noisy));
    std::fprintf(out, "    \"sdc\": %llu,\n", u(r.sdc));
    std::fprintf(out, "    \"recovered\": %llu,\n", u(r.recovered));
    std::fprintf(out, "    \"detected\": %llu,\n", u(r.detected));
    std::fprintf(out, "    \"uncovered\": %llu,\n", u(r.uncovered));
    std::fprintf(out, "    \"trial_errors\": %llu,\n", u(r.trialErrors));
    std::fprintf(out, "    \"hung_bare\": %llu,\n", u(r.hungBare));
    std::fprintf(out, "    \"hung_protected\": %llu,\n",
                 u(r.hungProtected));
    std::fprintf(out, "    \"skipped_provably_masked\": %llu,\n",
                 u(r.skippedProvablyMasked));
    std::fprintf(out, "    \"early_terminated\": %llu\n",
                 u(r.earlyTerminated));
    std::fprintf(out, "  },\n");
    std::fprintf(out, "  \"bins\": {\n");
    std::fprintf(out, "    \"covered\": %llu,\n", u(r.bins.covered));
    std::fprintf(out, "    \"second_level_masked\": %llu,\n",
                 u(r.bins.secondLevelMasked));
    std::fprintf(out, "    \"completed_reg\": %llu,\n",
                 u(r.bins.completedReg));
    std::fprintf(out, "    \"arch_reg\": %llu,\n", u(r.bins.archReg));
    std::fprintf(out, "    \"rename_uncovered\": %llu,\n",
                 u(r.bins.renameUncovered));
    std::fprintf(out, "    \"no_trigger\": %llu,\n", u(r.bins.noTrigger));
    std::fprintf(out, "    \"other\": %llu\n", u(r.bins.other));
    std::fprintf(out, "  },\n");
    // Per-site vulnerability profile: pure counter folds over the
    // trial record stream (deterministic bytes for any thread/worker
    // count — the dist identity check diffs this block verbatim).
    std::fprintf(out, "  \"profile\": {\n");
    std::fprintf(out, "    \"strata\": [\n");
    for (unsigned si = 0; si < StratumSpace::kCount; ++si) {
        const StratumCounts &sc = r.profile.strata[si];
        std::fprintf(out,
                     "      { \"stratum\": %u, \"trials\": %llu, "
                     "\"masked\": %llu, \"noisy\": %llu, \"sdc\": %llu, "
                     "\"covered\": %llu, \"skipped_provably_masked\": "
                     "%llu, \"early_terminated\": %llu }%s\n",
                     si, u(sc.trials), u(sc.masked), u(sc.noisy),
                     u(sc.sdc), u(sc.covered),
                     u(sc.skippedProvablyMasked), u(sc.earlyTerminated),
                     si + 1 < StratumSpace::kCount ? "," : "");
    }
    std::fprintf(out, "    ],\n");
    static const char *kStructureNames[VulnProfile::kStructures] = {
        "regfile", "lsq", "rename"};
    std::fprintf(out, "    \"sdc_bits\": {\n");
    for (unsigned st = 0; st < VulnProfile::kStructures; ++st) {
        std::fprintf(out, "      \"%s\": [", kStructureNames[st]);
        for (unsigned bit = 0; bit < wordBits; ++bit)
            std::fprintf(out, "%s%llu", bit ? ", " : "",
                         u(r.profile.sdcBits[st][bit]));
        std::fprintf(out, "]%s\n",
                     st + 1 < VulnProfile::kStructures ? "," : "");
    }
    std::fprintf(out, "    },\n");
    std::fprintf(out, "    \"sdc_pcs\": [");
    {
        bool first = true;
        for (const auto &[pc, n] : r.profile.sdcPcs) {
            std::fprintf(out, "%s{ \"pc\": \"0x%llx\", \"sdc\": %llu }",
                         first ? "" : ", ", u(pc), u(n));
            first = false;
        }
    }
    std::fprintf(out, "],\n");
    std::fprintf(out, "    \"sdc_cycle_buckets\": [");
    for (unsigned b = 0; b < VulnProfile::kCycleBuckets; ++b)
        std::fprintf(out, "%s%llu", b ? ", " : "",
                     u(r.profile.sdcCycleBuckets[b]));
    std::fprintf(out, "]\n");
    std::fprintf(out, "  },\n");
    // Distributed-fabric health (coordinator runs only): how rough the
    // network was and what the fabric absorbed. Observational — the
    // classification above is identical whatever these counters say.
    if (fabric) {
        std::fprintf(
            out,
            "  \"fabric\": { \"workers_joined\": %u, "
            "\"workers_died\": %u, \"crc_errors\": %llu, "
            "\"reconnects\": %llu, \"ranges_issued\": %llu, "
            "\"ranges_reissued\": %llu, \"quarantined\": %llu, "
            "\"degraded\": %s },\n",
            fabric->workersJoined, fabric->workersDied,
            u(fabric->crcErrors), u(fabric->reconnects),
            u(fabric->rangesIssued), u(fabric->rangesReissued),
            u(fabric->quarantined),
            fabric->degraded ? "true" : "false");
    }
    // Event-driven scheduler counters over every core the campaign ran
    // (master + forks): purely observational, never classification.
    const SchedCounters &s = r.sched;
    std::fprintf(out,
                 "  \"scheduler\": { \"wakeup_hits\": %llu, "
                 "\"overflow_parks\": %llu, \"overflow_rescans\": %llu, "
                 "\"fast_forwarded_cycles\": %llu, \"issue_evals\": "
                 "%llu, \"issue_candidates\": %llu },\n",
                 u(s.wakeupHits), u(s.overflowParks),
                 u(s.overflowRescans), u(s.fastForwarded),
                 u(s.issueEvals), u(s.issueCandidates));
    // Wall-time phase breakdown: master advance + golden checkpoint
    // ledger, snapshot copies, the two faulty forks, and the
    // arch/digest comparisons.
    const CampaignPhases &p = r.phases;
    const double total =
        static_cast<double>(p.totalNs() ? p.totalNs() : 1);
    auto pct = [&](u64 ns) {
        return 100.0 * static_cast<double>(ns) / total;
    };
    std::fprintf(out,
                 "  \"phases_ns\": { \"snapshot\": %llu, \"golden\": "
                 "%llu, \"bare\": %llu, \"protected\": %llu, "
                 "\"compare\": %llu },\n",
                 u(p.snapshotNs), u(p.goldenNs), u(p.bareNs),
                 u(p.protectedNs), u(p.compareNs));
    std::fprintf(out,
                 "  \"phases_pct\": { \"snapshot\": %.1f, \"golden\": "
                 "%.1f, \"bare\": %.1f, \"protected\": %.1f, "
                 "\"compare\": %.1f }\n",
                 pct(p.snapshotNs), pct(p.goldenNs), pct(p.bareNs),
                 pct(p.protectedNs), pct(p.compareNs));
    std::fprintf(out, "}\n");
    if (out != stdout)
        std::fclose(out);
    return true;
}

} // namespace fh::fault
