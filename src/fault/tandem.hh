/**
 * @file
 * Tandem execution (Section 4): fork the machine at an injection
 * point, run a golden and a fault-injected copy for a run window, and
 * compare architectural state. Any difference in raised exceptions
 * marks a noisy fault; identical state marks a masked fault; the rest
 * are silent data corruptions (SDC).
 */

#ifndef FH_FAULT_TANDEM_HH
#define FH_FAULT_TANDEM_HH

#include <chrono>
#include <vector>

#include "fault/injector.hh"
#include "pipeline/core.hh"
#include "sim/types.hh"

namespace fh::fault
{

/** Result of one forked run-window execution. */
struct ForkOutcome
{
    pipeline::Core core;
    bool reachedTargets = false; ///< false = hung within maxCycles
    bool trapped = false;
    /** Early termination (arm_regfile_watch flavors): the injected
     *  register value was overwritten without ever being read, so this
     *  fork is provably equivalent to a fault-free fork of the same
     *  snapshot — classification is decided without running the
     *  window out (DESIGN.md "Arch-digest early exit"). */
    bool earlyMasked = false;
    Cycle exitCycle = 0; ///< core cycle when the fork run ended
};

/**
 * Wall-clock watchdog for a trial's fork executions (the campaign's
 * trialTimeoutMs, complementing the cycle-count bound max_cycles).
 * One deadline spans all of a trial's forks; when a fork's tick loop
 * crosses it, runFork throws a SimError that the campaign's trial
 * guard converts into a trialErrors entry instead of wedging the
 * worker. Wall time is nondeterministic, so an expiring watchdog
 * trades bit-exact reproducibility for forward progress — the expired
 * trial is journaled, and a resumed run replays the journal rather
 * than re-racing the clock.
 */
struct ForkDeadline
{
    std::chrono::steady_clock::time_point at;
};

/** Per-thread commit targets for a run window starting at base. */
std::vector<u64> windowTargets(const pipeline::Core &base, u64 window);

/** As windowTargets, but into a caller-owned vector (capacity reuse). */
void windowTargetsInto(std::vector<u64> &out, const pipeline::Core &base,
                       u64 window);

/**
 * Copy base, optionally inject plan, optionally enable the detector,
 * and run until the per-thread targets (bounded by max_cycles, and by
 * deadline when non-null). When arm_regfile_watch is set and the plan
 * is a register-file flip, a fault watch is armed on the flipped
 * register so the run ends (out.earlyMasked) as soon as the fault is
 * provably erased — only sound for classification forks whose golden
 * reference reached its targets without trapping (see DESIGN.md).
 */
ForkOutcome runFork(const pipeline::Core &base, const InjectionPlan *plan,
                    bool detector_enabled, const std::vector<u64> &targets,
                    Cycle max_cycles, const ForkDeadline *deadline = nullptr,
                    bool arm_regfile_watch = false);

/**
 * As above, but consume base instead of copying it: the last fork of
 * a trial can take the snapshot by move, saving one whole-machine
 * copy per trial.
 */
ForkOutcome runFork(pipeline::Core &&base, const InjectionPlan *plan,
                    bool detector_enabled, const std::vector<u64> &targets,
                    Cycle max_cycles, const ForkDeadline *deadline = nullptr,
                    bool arm_regfile_watch = false);

/**
 * As runFork, but restore the fork state into a caller-owned scratch
 * outcome by copy-assignment. Between same-parameter cores that is a
 * flat-buffer memcpy reusing the scratch's existing storage, so a
 * worker that keeps one scratch per fork kind allocates nothing in
 * steady state.
 */
void runForkInto(ForkOutcome &out, const pipeline::Core &base,
                 const InjectionPlan *plan, bool detector_enabled,
                 const std::vector<u64> &targets, Cycle max_cycles,
                 const ForkDeadline *deadline = nullptr,
                 bool arm_regfile_watch = false);

/**
 * Consuming flavor: swaps base's buffers into the scratch (and the
 * scratch's previous buffers back into base), so both stay warm and
 * no copy of the machine is made at all. base is left valid but
 * unspecified; the caller overwrites it before any reuse.
 */
void runForkInto(ForkOutcome &out, pipeline::Core &&base,
                 const InjectionPlan *plan, bool detector_enabled,
                 const std::vector<u64> &targets, Cycle max_cycles,
                 const ForkDeadline *deadline = nullptr,
                 bool arm_regfile_watch = false);

/**
 * Architectural equivalence: per-thread registers, commit PCs, halt
 * flags, and full memory contents.
 */
bool archEquals(const pipeline::Core &x, const pipeline::Core &y);

} // namespace fh::fault

#endif // FH_FAULT_TANDEM_HH
