/**
 * @file
 * Fault-injection campaign (Section 4): a master simulation advances
 * with the detector active (so the filters stay trained); at random
 * points the machine is forked into an unprotected faulty copy (for
 * masked/noisy/SDC classification) and — for SDC faults — a protected
 * faulty copy whose outcome decides coverage. The campaign also bins
 * uncovered SDC faults into the Figure 11 categories.
 *
 * The golden reference is not a third fork: the master's own advance
 * past each trial's commit targets records a golden checkpoint
 * (per-thread ArchState + per-segment memory digests) in a
 * GoldenLedger, and forks are compared against that checkpoint in
 * O(threads + segments). The legacy explicit golden fork survives
 * behind CampaignConfig::forceGoldenFork for equivalence testing and
 * for programs without the per-thread segment layout.
 *
 * Execution is sharded: the master advances serially between
 * injection points (cheap), each point is snapshotted into a trial
 * descriptor with its own Rng::stream(seed, trial_index), and an
 * exec::ThreadPool runs the trials' forks concurrently. Per-trial
 * results reduce into CampaignResult in trial order, so the outcome
 * is bit-identical for 1 and N worker threads.
 */

#ifndef FH_FAULT_CAMPAIGN_HH
#define FH_FAULT_CAMPAIGN_HH

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "fault/injector.hh"
#include "fault/sampling.hh"
#include "fault/tandem.hh"
#include "isa/program.hh"
#include "pipeline/core.hh"
#include "sim/rng.hh"

namespace fh::exec
{
class ProgressMeter;
} // namespace fh::exec

namespace fh::fault
{

struct CampaignConfig
{
    u64 injections = 300;
    /**
     * Run window after injection: instructions each of the core's SMT
     * hardware threads (execution contexts) must commit before the
     * forks are compared. Unrelated to the host worker threads that
     * execute trials — see `threads` below.
     */
    u64 window = 1000;
    /** Master warmup before the first injection (instructions). */
    u64 warmupInsts = 20000;
    /** Master cycles between injection points. */
    Cycle minGap = 100;
    Cycle maxGap = 600;
    /** Fork cycle budget (safety bound for hung runs). */
    Cycle forkMaxCycles = 400000;
    u64 seed = 1;
    InjectionMix mix{};

    /**
     * Host worker threads executing the per-trial forks (golden /
     * bare / protected), i.e. the exec::ThreadPool size; 0 = one per
     * hardware thread (the default), 1 = fully serial. Also settable
     * via the FH_THREADS environment variable in the bench harnesses.
     * The result is bit-identical for every value: each trial draws
     * from its own Rng::stream(seed, trial_index) and per-trial
     * results reduce in trial order. Distinct from the simulated
     * core's SMT threads (see `window`).
     */
    unsigned threads = 0;
    /** Optional meter ticked once per completed trial (may be null). */
    exec::ProgressMeter *progress = nullptr;

    /**
     * Debug/equivalence flag: run the legacy per-trial golden fork
     * instead of the golden checkpoint ledger. Classifications are
     * identical either way (tests/test_golden_ledger.cc asserts it);
     * the ledger is ~1 full fork per trial cheaper. Also forced
     * automatically when the program lacks the one-segment-per-thread
     * layout the ledger's master-as-golden argument needs. Settable
     * via FH_GOLDEN_FORK=1 in the bench harnesses / fhsim / examples.
     */
    bool forceGoldenFork = false;

    /**
     * Trial journal path (FH_JOURNAL in the bench harnesses,
     * `journal=` in fhsim); empty = no journal. Completed trials are
     * appended (and flushed) in trial order; a restarted campaign
     * with the same configuration replays the journaled prefix
     * through the cheap serial master advance and skips its forks,
     * producing counters and SDC bins bit-identical to an
     * uninterrupted run. See fault/journal.hh.
     */
    std::string journalPath;

    /**
     * Per-trial wall-clock budget in milliseconds, complementing the
     * cycle-count bound forkMaxCycles (FH_TRIAL_TIMEOUT_MS in the
     * bench harnesses, `trial_timeout_ms=` in fhsim). A trial whose
     * forks exceed it is classified into trialErrors — with its
     * injection plan logged for offline repro — instead of wedging a
     * worker for the rest of the run. 0 = no watchdog (the default:
     * wall time is nondeterministic, so only long unattended runs
     * should opt in).
     */
    u64 trialTimeoutMs = 0;

    /**
     * Debug/test hook: behave as if a shutdown signal arrived once
     * this many trials have been *executed* (not replayed) in this
     * run — the campaign drains in-flight trials, flushes the
     * journal, and returns a partial result. 0 = never. Exercised by
     * the kill-at-trial-K resume tests.
     */
    u64 stopAfterTrials = 0;

    /**
     * Debug/test hook: raise fh_panic inside the worker executing the
     * given trial index, exercising the trial-isolation guard
     * (trialErrors under non-strict mode, abort under FH_STRICT=1).
     * ~0 = never.
     */
    u64 panicAtTrial = ~u64{0};

    /**
     * Early termination of bare forks (FH_EARLY_STOP, `early_stop=` in
     * fhsim; default on): arm a fault watch on register-file flips so
     * a fork whose injected value is provably erased before any read
     * is classified masked immediately instead of running the window
     * out. Classification is identical either way (DESIGN.md
     * "Arch-digest early exit"; fuzzed in test_fuzz_equivalence.cc);
     * only the earlyTerminated diagnostic counter differs.
     */
    bool earlyStop = envEarlyStop();

    /**
     * FH_EARLY_STOP environment default for earlyStop (unset or any
     * value but "0" = on). An env read, like FH_SCAN_ISSUE, so the
     * pinned-count and ledger-equivalence suites can be rerun with
     * early termination forced off as an equivalence oracle without
     * touching their configs.
     */
    static bool envEarlyStop();

    /**
     * Adaptive stop target (FH_CI_TARGET, `ci_target=` in fhsim): when
     * > 0, trials draw stratified injection sites round-robin
     * (sampling.hh) and the campaign stops at the first wave boundary
     * where the pooled Wilson half-width on the SDC rate is <= this.
     * 0 (default) = fixed-count legacy mode, bit-identical schedules
     * and results to previous revisions. The stop decision is a pure
     * function of merged wave counters, so adaptive runs are
     * deterministic across thread and dist worker counts.
     */
    double ciTarget = 0.0;

    /** Adaptive wave size in trials (FH_CI_WAVE, `ci_wave=`): the stop
     *  condition is evaluated only at multiples of this. */
    u64 ciWave = 64;

    /**
     * Host-local abort line (never part of a campaign spec, like
     * threads/progress): when non-null and set, the campaign behaves
     * exactly as if a shutdown signal arrived — drain in-flight
     * trials, flush, return a partial result. The dist worker points
     * this at its per-connection "connection lost" latch so losing the
     * coordinator aborts only the current session, not the process
     * (the global exec::requestShutdown latch would preclude
     * reconnecting).
     */
    const std::atomic<bool> *abortFlag = nullptr;
};

/**
 * Where a campaign's wall time went, in nanoseconds: master advance +
 * ledger upkeep ("golden" — in legacy mode, the per-trial golden
 * forks), trial snapshot copies, the bare and protected faulty forks,
 * and the state comparisons. Accumulated per-trial on the worker
 * threads (each trial sums into its own CampaignResult, merged in
 * trial order) plus producer-side terms added once at the end, so no
 * synchronization is needed beyond the pool's wave barrier.
 */
struct CampaignPhases
{
    u64 snapshotNs = 0;  ///< machine copies + plan draws (producer)
    u64 goldenNs = 0;    ///< golden ledger upkeep or golden forks
    u64 bareNs = 0;      ///< unprotected faulty forks
    u64 protectedNs = 0; ///< protected faulty forks
    u64 compareNs = 0;   ///< arch/digest comparisons

    u64 totalNs() const
    {
        return snapshotNs + goldenNs + bareNs + protectedNs + compareNs;
    }

    CampaignPhases &operator+=(const CampaignPhases &o)
    {
        snapshotNs += o.snapshotNs;
        goldenNs += o.goldenNs;
        bareNs += o.bareNs;
        protectedNs += o.protectedNs;
        compareNs += o.compareNs;
        return *this;
    }
};

/**
 * Event-driven scheduler counters summed over every core the campaign
 * ran (master advance + all forks): how the issue stage did its work,
 * not what the workload did. Purely observational — excluded from the
 * journal's trial packing and the distributed wire format (like
 * phases), so journal bytes and classification stay identical across
 * scheduler modes; in FH_SCAN_ISSUE=1 oracle mode everything except
 * issueEvals/issueCandidates reads zero.
 */
struct SchedCounters
{
    u64 wakeupHits = 0;      ///< consumers moved wake row -> ready pool
    u64 overflowParks = 0;   ///< subscriptions parked on overflow lists
    u64 overflowRescans = 0; ///< overflow refs examined by the slow path
    u64 fastForwarded = 0;   ///< idle cycles skipped by fast-forward
    u64 issueEvals = 0;      ///< cycles the issue stage examined refs
    u64 issueCandidates = 0; ///< ready candidates across those cycles

    SchedCounters &operator+=(const SchedCounters &o)
    {
        wakeupHits += o.wakeupHits;
        overflowParks += o.overflowParks;
        overflowRescans += o.overflowRescans;
        fastForwarded += o.fastForwarded;
        issueEvals += o.issueEvals;
        issueCandidates += o.issueCandidates;
        return *this;
    }

    /** Counter deltas between two CoreStats snapshots of one core. */
    static SchedCounters delta(const pipeline::CoreStats &now,
                               const pipeline::CoreStats &base)
    {
        SchedCounters d;
        d.wakeupHits = now.wakeupHits - base.wakeupHits;
        d.overflowParks = now.overflowParks - base.overflowParks;
        d.overflowRescans = now.overflowRescans - base.overflowRescans;
        d.fastForwarded = now.fastForwarded - base.fastForwarded;
        d.issueEvals = now.issueEvals - base.issueEvals;
        d.issueCandidates = now.issueCandidates - base.issueCandidates;
        return d;
    }
};

/** Figure 11 bins for SDC faults. */
struct SdcBins
{
    u64 covered = 0;
    u64 secondLevelMasked = 0; ///< trigger suppressed by the 2nd level
    u64 completedReg = 0;      ///< completed/committed register fault
    u64 archReg = 0;           ///< diagnostic subset of completedReg:
                               ///< architectural (long-lived) values
    u64 renameUncovered = 0;   ///< uncovered rename-table fault
    u64 noTrigger = 0;         ///< the fault never tripped a filter
    u64 other = 0;

    SdcBins &operator+=(const SdcBins &o)
    {
        covered += o.covered;
        secondLevelMasked += o.secondLevelMasked;
        completedReg += o.completedReg;
        archReg += o.archReg;
        renameUncovered += o.renameUncovered;
        noTrigger += o.noTrigger;
        other += o.other;
        return *this;
    }
};

struct CampaignResult
{
    u64 injected = 0;
    u64 masked = 0;
    u64 noisy = 0;
    u64 sdc = 0;

    u64 recovered = 0; ///< SDC repaired (state matches golden)
    u64 detected = 0;  ///< SDC declared by the LSQ compare / exception
    u64 uncovered = 0;

    /**
     * Trials whose execution was cut short by an isolated in-fork
     * panic or a trialTimeoutMs watchdog expiry (non-strict mode
     * only). Counted in injected but in none of masked/noisy/sdc;
     * each one's injection plan is logged for offline reproduction.
     */
    u64 trialErrors = 0;

    /**
     * Diagnostic counters for forks that exhausted forkMaxCycles
     * without crossing their commit targets. Classification is
     * unchanged (a hung bare fork still counts as noisy; a hung
     * protected fork still lands in uncovered); these only make the
     * previously invisible hang paths observable.
     */
    u64 hungBare = 0;
    u64 hungProtected = 0;

    /**
     * Trials classified masked without forking at all (the injection
     * provably cannot change state: idle strike, free register, empty
     * LSQ). Counted in both injected and masked; they feed the CI
     * estimator and the profile like any other masked trial.
     */
    u64 skippedProvablyMasked = 0;

    /** Bare forks ended early by fault-watch erasure (still counted in
     *  masked; diagnostic only — the one counter that legitimately
     *  differs between early-stop on and off). */
    u64 earlyTerminated = 0;

    /** True when the campaign stopped early (signal / stopAfterTrials)
     *  after draining in-flight trials; the counters cover only the
     *  trials actually completed. */
    bool partial = false;

    /** Adaptive mode: the campaign stopped at a wave boundary because
     *  the pooled CI half-width reached cfg.ciTarget. */
    bool ciStopped = false;

    /** Trials restored from the journal instead of executed. */
    u64 replayedTrials = 0;

    SdcBins bins;
    CampaignPhases phases; ///< wall-time breakdown (not a count)
    SchedCounters sched;   ///< scheduler observability (not journaled)
    /** Per-site vulnerability profile; empty on per-trial deltas
     *  (producers fold deltas + meta via VulnProfile::addTrial). */
    VulnProfile profile;

    u64 covered() const { return recovered + detected; }
    double coverage() const
    {
        return sdc ? static_cast<double>(covered()) / sdc : 0.0;
    }
    double maskedFrac() const
    {
        return injected ? static_cast<double>(masked) / injected : 0.0;
    }
    double noisyFrac() const
    {
        return injected ? static_cast<double>(noisy) / injected : 0.0;
    }
    double sdcFrac() const
    {
        return injected ? static_cast<double>(sdc) / injected : 0.0;
    }

    /** Merge another shard's counters (u64 adds, order-insensitive). */
    CampaignResult &operator+=(const CampaignResult &o)
    {
        injected += o.injected;
        masked += o.masked;
        noisy += o.noisy;
        sdc += o.sdc;
        recovered += o.recovered;
        detected += o.detected;
        uncovered += o.uncovered;
        trialErrors += o.trialErrors;
        hungBare += o.hungBare;
        hungProtected += o.hungProtected;
        skippedProvablyMasked += o.skippedProvablyMasked;
        earlyTerminated += o.earlyTerminated;
        partial = partial || o.partial;
        ciStopped = ciStopped || o.ciStopped;
        replayedTrials += o.replayedTrials;
        bins += o.bins;
        phases += o.phases;
        sched += o.sched;
        profile += o.profile;
        return *this;
    }
};

/** Run a campaign on one core configuration and program. */
CampaignResult runCampaign(const pipeline::CoreParams &params,
                           const isa::Program *prog,
                           const CampaignConfig &cfg);

/**
 * Per-trial result consumer: called once per executed trial, in trial
 * order, with the trial's counter deltas and its sampling metadata
 * (stratum, site, attribution — see TrialMeta). This is the journal's
 * record stream generalized — runCampaign's sink appends to the
 * TrialJournal and folds the profile, a distributed worker's sink
 * frames the same deltas + meta onto a socket.
 */
using TrialSink = std::function<void(
    u64 trial, const CampaignResult &delta, const TrialMeta &meta)>;

/** What a CampaignSession::runRange call actually covered. */
struct RangeOutcome
{
    /** First trial not produced: range end, or where the run stopped. */
    u64 nextTrial = 0;
    /** The master halted; no trial >= nextTrial exists in this
     *  campaign (deterministic: every process sees the same halt). */
    bool halted = false;
    /** A shutdown request drained the range early at nextTrial. */
    bool stopped = false;
    /** Producer-side wall time (master advance + snapshots) spent in
     *  this call; worker-side phase time rides in the trial deltas. */
    CampaignPhases phases;
    /** Master-side scheduler counters accumulated during this call
     *  (trial forks report theirs through the trial deltas). */
    SchedCounters sched;
};

/**
 * An incrementally drivable campaign: the master machine plus all loop
 * state of runCampaign, exposed as a sequence of runRange calls so a
 * distributed worker can execute just its leased trial-index ranges.
 *
 * Determinism: the master's advance is a pure function of the gap
 * schedule (seeded by cfg.seed), and each trial's outcome is a pure
 * function of (config, trial index) — trials outside [begin, end) are
 * skipped by advancing their gaps without snapshotting or forking, so
 * the trials that *are* executed see exactly the machine state and
 * draw exactly the plans of a full single-process run. Ranges must be
 * visited in increasing trial order within one session; a worker
 * leased an earlier range builds a fresh session.
 */
class CampaignSession
{
  public:
    /** Builds the master and runs warmup (fatal if the workload halts
     *  during it, as runCampaign always was). cfg.journalPath is
     *  ignored here — journaling belongs to the caller's sink. */
    CampaignSession(const pipeline::CoreParams &params,
                    const isa::Program *prog, const CampaignConfig &cfg);
    ~CampaignSession();

    CampaignSession(const CampaignSession &) = delete;
    CampaignSession &operator=(const CampaignSession &) = delete;

    /**
     * Produce and execute trials [max(begin, position()), min(end,
     * cfg.injections)), calling sink in trial order; trials below
     * begin are skip-advanced. In ledger mode a non-terminal range
     * closes its last windows on a scratch copy of the master, so the
     * schedule seen by later ranges is untouched.
     */
    RangeOutcome runRange(u64 begin, u64 end, const TrialSink &sink);

    /** Next producible trial index (monotonic across runRange calls). */
    u64 position() const;

    /**
     * Reset the session to its post-warmup state (position() == 0), so
     * a re-issued earlier range can be served without rebuilding the
     * session — and in particular without re-running warmup, which
     * dominates session construction. The master machine is restored
     * from a retained warm snapshot by buffer-reusing assignment, the
     * gap schedule restarts from cfg.seed, and the golden ledger (if
     * any) is rebuilt empty; everything downstream is a pure function
     * of (config, trial index), so trials re-executed after a rewind
     * are bit-identical to their first execution.
     */
    void rewind();

    /** The stratification of this campaign's injection mix (labels in
     *  fixed mode, draw constraints + CI weights in adaptive mode). */
    const StratumSpace &strata() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace fh::fault

#endif // FH_FAULT_CAMPAIGN_HH
