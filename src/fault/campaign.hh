/**
 * @file
 * Fault-injection campaign (Section 4): a master simulation advances
 * with the detector active (so the filters stay trained); at random
 * points the machine is forked into a golden copy, an unprotected
 * faulty copy (for masked/noisy/SDC classification), and — for SDC
 * faults — a protected faulty copy whose outcome decides coverage.
 * The campaign also bins uncovered SDC faults into the Figure 11
 * categories.
 *
 * Execution is sharded: the master advances serially between
 * injection points (cheap), each point is snapshotted into a trial
 * descriptor with its own Rng::stream(seed, trial_index), and an
 * exec::ThreadPool runs the trials' forks concurrently. Per-trial
 * results reduce into CampaignResult in trial order, so the outcome
 * is bit-identical for 1 and N worker threads.
 */

#ifndef FH_FAULT_CAMPAIGN_HH
#define FH_FAULT_CAMPAIGN_HH

#include "fault/injector.hh"
#include "fault/tandem.hh"
#include "isa/program.hh"
#include "pipeline/core.hh"
#include "sim/rng.hh"

namespace fh::exec
{
class ProgressMeter;
} // namespace fh::exec

namespace fh::fault
{

struct CampaignConfig
{
    u64 injections = 300;
    /**
     * Run window after injection: instructions each of the core's SMT
     * hardware threads (execution contexts) must commit before the
     * forks are compared. Unrelated to the host worker threads that
     * execute trials — see `threads` below.
     */
    u64 window = 1000;
    /** Master warmup before the first injection (instructions). */
    u64 warmupInsts = 20000;
    /** Master cycles between injection points. */
    Cycle minGap = 100;
    Cycle maxGap = 600;
    /** Fork cycle budget (safety bound for hung runs). */
    Cycle forkMaxCycles = 400000;
    u64 seed = 1;
    InjectionMix mix{};

    /**
     * Host worker threads executing the per-trial forks (golden /
     * bare / protected), i.e. the exec::ThreadPool size; 0 = one per
     * hardware thread (the default), 1 = fully serial. Also settable
     * via the FH_THREADS environment variable in the bench harnesses.
     * The result is bit-identical for every value: each trial draws
     * from its own Rng::stream(seed, trial_index) and per-trial
     * results reduce in trial order. Distinct from the simulated
     * core's SMT threads (see `window`).
     */
    unsigned threads = 0;
    /** Optional meter ticked once per completed trial (may be null). */
    exec::ProgressMeter *progress = nullptr;
};

/** Figure 11 bins for SDC faults. */
struct SdcBins
{
    u64 covered = 0;
    u64 secondLevelMasked = 0; ///< trigger suppressed by the 2nd level
    u64 completedReg = 0;      ///< completed/committed register fault
    u64 archReg = 0;           ///< diagnostic subset of completedReg:
                               ///< architectural (long-lived) values
    u64 renameUncovered = 0;   ///< uncovered rename-table fault
    u64 noTrigger = 0;         ///< the fault never tripped a filter
    u64 other = 0;

    SdcBins &operator+=(const SdcBins &o)
    {
        covered += o.covered;
        secondLevelMasked += o.secondLevelMasked;
        completedReg += o.completedReg;
        archReg += o.archReg;
        renameUncovered += o.renameUncovered;
        noTrigger += o.noTrigger;
        other += o.other;
        return *this;
    }
};

struct CampaignResult
{
    u64 injected = 0;
    u64 masked = 0;
    u64 noisy = 0;
    u64 sdc = 0;

    u64 recovered = 0; ///< SDC repaired (state matches golden)
    u64 detected = 0;  ///< SDC declared by the LSQ compare / exception
    u64 uncovered = 0;

    SdcBins bins;

    u64 covered() const { return recovered + detected; }
    double coverage() const
    {
        return sdc ? static_cast<double>(covered()) / sdc : 0.0;
    }
    double maskedFrac() const
    {
        return injected ? static_cast<double>(masked) / injected : 0.0;
    }
    double noisyFrac() const
    {
        return injected ? static_cast<double>(noisy) / injected : 0.0;
    }
    double sdcFrac() const
    {
        return injected ? static_cast<double>(sdc) / injected : 0.0;
    }

    /** Merge another shard's counters (u64 adds, order-insensitive). */
    CampaignResult &operator+=(const CampaignResult &o)
    {
        injected += o.injected;
        masked += o.masked;
        noisy += o.noisy;
        sdc += o.sdc;
        recovered += o.recovered;
        detected += o.detected;
        uncovered += o.uncovered;
        bins += o.bins;
        return *this;
    }
};

/** Run a campaign on one core configuration and program. */
CampaignResult runCampaign(const pipeline::CoreParams &params,
                           const isa::Program *prog,
                           const CampaignConfig &cfg);

} // namespace fh::fault

#endif // FH_FAULT_CAMPAIGN_HH
