/**
 * @file
 * Fault-injection campaign (Section 4): a master simulation advances
 * with the detector active (so the filters stay trained); at random
 * points the machine is forked into a golden copy, an unprotected
 * faulty copy (for masked/noisy/SDC classification), and — for SDC
 * faults — a protected faulty copy whose outcome decides coverage.
 * The campaign also bins uncovered SDC faults into the Figure 11
 * categories.
 */

#ifndef FH_FAULT_CAMPAIGN_HH
#define FH_FAULT_CAMPAIGN_HH

#include "fault/injector.hh"
#include "fault/tandem.hh"
#include "isa/program.hh"
#include "pipeline/core.hh"
#include "sim/rng.hh"

namespace fh::fault
{

struct CampaignConfig
{
    u64 injections = 300;
    /** Run window per thread after injection (instructions). */
    u64 window = 1000;
    /** Master warmup before the first injection (instructions). */
    u64 warmupInsts = 20000;
    /** Master cycles between injection points. */
    Cycle minGap = 100;
    Cycle maxGap = 600;
    /** Fork cycle budget (safety bound for hung runs). */
    Cycle forkMaxCycles = 400000;
    u64 seed = 1;
    InjectionMix mix{};
};

/** Figure 11 bins for SDC faults. */
struct SdcBins
{
    u64 covered = 0;
    u64 secondLevelMasked = 0; ///< trigger suppressed by the 2nd level
    u64 completedReg = 0;      ///< completed/committed register fault
    u64 archReg = 0;           ///< diagnostic subset of completedReg:
                               ///< architectural (long-lived) values
    u64 renameUncovered = 0;   ///< uncovered rename-table fault
    u64 noTrigger = 0;         ///< the fault never tripped a filter
    u64 other = 0;
};

struct CampaignResult
{
    u64 injected = 0;
    u64 masked = 0;
    u64 noisy = 0;
    u64 sdc = 0;

    u64 recovered = 0; ///< SDC repaired (state matches golden)
    u64 detected = 0;  ///< SDC declared by the LSQ compare / exception
    u64 uncovered = 0;

    SdcBins bins;

    u64 covered() const { return recovered + detected; }
    double coverage() const
    {
        return sdc ? static_cast<double>(covered()) / sdc : 0.0;
    }
    double maskedFrac() const
    {
        return injected ? static_cast<double>(masked) / injected : 0.0;
    }
    double noisyFrac() const
    {
        return injected ? static_cast<double>(noisy) / injected : 0.0;
    }
    double sdcFrac() const
    {
        return injected ? static_cast<double>(sdc) / injected : 0.0;
    }
};

/** Run a campaign on one core configuration and program. */
CampaignResult runCampaign(const pipeline::CoreParams &params,
                           const isa::Program *prog,
                           const CampaignConfig &cfg);

} // namespace fh::fault

#endif // FH_FAULT_CAMPAIGN_HH
