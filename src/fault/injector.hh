/**
 * @file
 * Single-bit fault injection (Section 4). Faults land in the physical
 * register file (72%, emulating back-end control/datapath faults), the
 * LSQ (8%), and the rename table (20%), with the proportions derived
 * from McPAT area estimates in the paper.
 */

#ifndef FH_FAULT_INJECTOR_HH
#define FH_FAULT_INJECTOR_HH

#include "pipeline/core.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace fh::fault
{

/** Which structure a fault lands in. */
enum class Target : u8
{
    RegFile,
    Lsq,
    Rename,
    /** Datapath strike with no recently-produced value to corrupt:
     *  trivially masked (idle logic). */
    None
};

std::string to_string(Target target);

/** A fully-specified single-bit flip. */
struct InjectionPlan
{
    Target target = Target::RegFile;
    // RegFile
    unsigned preg = 0;
    // Lsq
    unsigned lsqNth = 0;
    bool lsqAddrField = true;
    // Rename
    unsigned tid = 0;
    unsigned arch = 1;
    // Common
    unsigned bit = 0;
    /** The regfile site was drawn from the in-flight destination pool
     *  (datapath-fault emulation) rather than uniformly — also set on
     *  Target::None, which only arises from an empty in-flight pool.
     *  Stratum labeling; set without consuming RNG. */
    bool inflightDraw = false;
    /** PC of the instruction whose value/address/tag the fault lands
     *  on (0 = no in-flight owner). Root-cause attribution for the
     *  vulnerability profile; set without consuming RNG. */
    u64 faultPc = 0;
};

/** Proportions of faults per structure. */
struct InjectionMix
{
    double renameFrac = 0.20;
    double lsqFrac = 0.08;
    // The remainder goes to the register file, which per Section 4
    // also emulates back-end datapath and control faults: that share
    // of the register-file faults is drawn from the destination
    // registers of instructions currently in flight.
    double inflightFrac = 0.85;
};

/** Draw a random plan against the current core state. */
InjectionPlan drawPlan(const pipeline::Core &core, const InjectionMix &mix,
                       Rng &rng);

/** Fill plan.faultPc from the core's current state (no RNG use). */
void attributePlan(const pipeline::Core &core, InjectionPlan &plan);

/**
 * Apply the flip. Returns false when the plan targets an empty
 * structure (e.g. no occupied LSQ entry), in which case the fault is
 * trivially masked.
 */
bool apply(pipeline::Core &core, const InjectionPlan &plan);

} // namespace fh::fault

#endif // FH_FAULT_INJECTOR_HH
