/**
 * @file
 * Statistical campaign engine: stratified injection-site sampling,
 * online Wilson confidence intervals, and per-site vulnerability
 * profiles (ROADMAP item 2; DESIGN.md "Statistical campaign engine").
 *
 * The injection-site space is partitioned into strata by structure ×
 * bit-group (rename tags are ≤16 bits, every other structure's 64-bit
 * word splits into four 16-bit groups). Fixed-count campaigns keep
 * today's single-mix draw and only *label* each trial with its stratum
 * post hoc — bit-identical schedules. Adaptive campaigns
 * (ciTarget > 0) draw strata round-robin by trial index with
 * per-stratum RNG streams and stop at deterministic wave boundaries
 * once the pooled Wilson half-width on the SDC rate reaches the
 * target; the stop decision is a pure function of merged wave
 * counters, so any thread or worker count stops at the same wave.
 *
 * The per-trial TrialMeta (stratum, structure, bit, cycle bucket,
 * faulting PC, early-exit cycle) rides the journal and the dist TRIAL
 * frames, and VulnProfile folds (delta, meta) pairs into an AVF-style
 * report — which structures, bit positions, and workload instructions
 * produce the SDCs — that merges bit-identically in trial order.
 */

#ifndef FH_FAULT_SAMPLING_HH
#define FH_FAULT_SAMPLING_HH

#include <array>
#include <map>
#include <vector>

#include "fault/injector.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace fh::fault
{

struct CampaignResult; // campaign.hh includes this header first

// ------------------------------------------------------------- Wilson

/** Wilson score interval for a binomial proportion at confidence z. */
struct WilsonInterval
{
    double center = 0.0;
    double halfWidth = 1.0; ///< 1.0 when n == 0 (no information)
};

WilsonInterval wilson(u64 successes, u64 n, double z = 1.96);

// ---------------------------------------------------------- TrialMeta

/// TrialMeta.flags: the trial was classified masked pre-fork
/// (provably-masked skip) — no fork was executed.
inline constexpr u8 kMetaSkippedProvablyMasked = 1;
/// TrialMeta.flags: the bare fork exited early on fault-watch erasure.
inline constexpr u8 kMetaEarlyTerminated = 2;

/**
 * Per-trial sampling metadata, journaled alongside the counter deltas
 * ("m" array) and carried by dist TRIAL frames: everything the
 * vulnerability profile and the CI estimator need to reconstruct
 * their state from a record stream, in any process.
 */
struct TrialMeta
{
    u32 stratum = 0;
    u8 structure = 0;   ///< static_cast<u8>(Target)
    u8 bit = 0;
    u8 cycleBucket = 0; ///< injection-cycle bucket (profile label)
    u8 flags = 0;       ///< kMetaSkippedProvablyMasked | kMetaEarlyTerminated
    u64 pc = 0;         ///< faulting-instruction attribution (0 = none)
    u64 exitCycle = 0;  ///< bare-fork exit cycle (0 = no fork ran)

    bool operator==(const TrialMeta &other) const = default;
};

// ------------------------------------------------------- StratumSpace

/**
 * The stratification of the injection-site space. Pure function of
 * the injection mix, so a dist coordinator (which has no core) can
 * evaluate weights and stop decisions from the spec alone.
 */
class StratumSpace
{
  public:
    static constexpr unsigned kBitGroups = 4;  ///< 16-bit groups of 64
    static constexpr unsigned kGroupBits = 16;
    /// rename + lsq groups + regfile-inflight groups + regfile-static
    static constexpr unsigned kCount = 1 + 3 * kBitGroups;

    explicit StratumSpace(const InjectionMix &mix);

    static constexpr unsigned count() { return kCount; }

    /** Analytic probability mass of stratum s under the mix. */
    double weight(unsigned s) const { return weights_[s]; }

    /** Post-hoc stratum label of a mix-drawn plan (fixed-count mode).
     *  Target::None only arises from empty-inflight regfile draws and
     *  labels as the inflight stratum of its drawn bit. */
    static u32 stratumOf(const InjectionPlan &plan);

    /**
     * Adaptive-mode draw: a plan constrained to stratum s against the
     * core's current state. Mirrors drawPlan's site selection within
     * the stratum; consumes rng deterministically.
     */
    InjectionPlan draw(const pipeline::Core &core, unsigned s,
                       Rng &rng) const;

    /** Per-stratum RNG stream salt (xors into the campaign seed). */
    static u64 stratumSalt(unsigned s)
    {
        return u64{0x5d8f} + 0x9e3779b97f4a7c15ULL * (u64{s} + 1);
    }

    /** Observational cycle bucket of an injection point (profile
     *  label only; deterministic function of the master cycle). */
    static u8 cycleBucket(Cycle c)
    {
        return static_cast<u8>((c / 4096) % 8);
    }

  private:
    std::array<double, kCount> weights_{};
};

// -------------------------------------------------------- VulnProfile

/** Per-stratum outcome counts (one row of the profile). */
struct StratumCounts
{
    u64 trials = 0;
    u64 masked = 0;
    u64 noisy = 0;
    u64 sdc = 0;
    u64 covered = 0; ///< of the SDCs: recovered + detected
    u64 skippedProvablyMasked = 0;
    u64 earlyTerminated = 0;

    bool operator==(const StratumCounts &other) const = default;
};

/**
 * AVF-style vulnerability profile: per-stratum outcome counts,
 * per-structure × bit-position SDC counts, SDCs by faulting
 * instruction PC (CFA-style root-cause attribution), and SDCs by
 * injection-cycle bucket. Built per trial from (counter delta, meta)
 * by every producer — worker sinks, journal replay, the dist
 * coordinator's merge — through the same addTrial, so any two
 * processes that saw the same record stream hold byte-identical
 * profiles.
 */
struct VulnProfile
{
    static constexpr unsigned kCycleBuckets = 8;
    /// structure index (Target::RegFile/Lsq/Rename) for sdcBits
    static constexpr unsigned kStructures = 3;

    std::array<StratumCounts, StratumSpace::kCount> strata{};
    /** SDC count per structure per flipped bit position. */
    std::array<std::array<u64, wordBits>, kStructures> sdcBits{};
    /** SDC count per faulting-instruction PC (0 = unattributed). */
    std::map<u64, u64> sdcPcs;
    /** SDC count per injection-cycle bucket. */
    std::array<u64, kCycleBuckets> sdcCycleBuckets{};

    /** Fold one completed trial in (delta holds exactly one trial). */
    void addTrial(const CampaignResult &delta, const TrialMeta &meta);

    VulnProfile &operator+=(const VulnProfile &other);

    u64 trials() const
    {
        u64 n = 0;
        for (const StratumCounts &s : strata)
            n += s.trials;
        return n;
    }

    bool operator==(const VulnProfile &other) const = default;
};

/**
 * Pooled Wilson half-width on the SDC rate across strata: the
 * stratified estimator's half-width is sqrt(Σ (w_s · hw_s)²), with an
 * empty stratum contributing its full prior width (hw = 1). The
 * adaptive stop fires when this reaches the configured ciTarget.
 */
double pooledSdcHalfWidth(const VulnProfile &profile,
                          const StratumSpace &space, double z = 1.96);

} // namespace fh::fault

#endif // FH_FAULT_SAMPLING_HH
