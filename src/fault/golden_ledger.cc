#include "fault/golden_ledger.hh"

#include "sim/logging.hh"

namespace fh::fault
{

GoldenLedger::GoldenLedger(pipeline::Core &master)
    : master_(&master), watches_(master.numThreads())
{
}

bool
GoldenLedger::supports(const pipeline::Core &master,
                       const isa::Program &prog)
{
    const auto segs = master.memory().segments();
    const unsigned n = master.numThreads();
    if (segs.size() != n || prog.threadBases.size() < n)
        return false;
    for (unsigned tid = 0; tid < n; ++tid) {
        if (segs[tid].base != prog.baseOf(tid))
            return false;
    }
    return true;
}

void
GoldenLedger::finalizeThread(u32 slot, unsigned tid)
{
    Entry &e = entries_[slot];
    e.archDigests[tid] = master_->archDigest(tid);
    e.digests[tid] = master_->memory().segmentDigest(tid);
    if (master_->committed(tid) < e.targets[tid])
        e.crossed = false; // halted / force-finalized short of target
    if (master_->trapOf(tid) != isa::Trap::None)
        e.trapped = true;
    fh_assert(e.remaining > 0, "ledger entry finalized twice");
    --e.remaining;
}

u32
GoldenLedger::open(const std::vector<u64> &targets)
{
    u32 slot;
    if (!freeSlots_.empty()) {
        slot = freeSlots_.back();
        freeSlots_.pop_back();
    } else {
        slot = static_cast<u32>(entries_.size());
        entries_.emplace_back();
    }

    const unsigned n = master_->numThreads();
    Entry &e = entries_[slot];
    e.targets = targets;
    e.archDigests.assign(n, 0);
    e.digests.assign(master_->memory().segmentCount(), 0);
    e.trapped = false;
    e.crossed = true;
    e.remaining = n;

    for (unsigned tid = 0; tid < n; ++tid) {
        if (master_->halted(tid) || master_->committed(tid) >= targets[tid]) {
            // A golden fork would freeze (or already be halted) here
            // without committing anything more on this thread.
            finalizeThread(slot, tid);
            continue;
        }
        fh_assert(watches_[tid].empty() ||
                      watches_[tid].back().target <= targets[tid],
                  "ledger targets must be nondecreasing per thread");
        watches_[tid].push_back({slot, targets[tid]});
    }
    return slot;
}

void
GoldenLedger::release(u32 slot)
{
    freeSlots_.push_back(slot);
}

void
GoldenLedger::forceFinalizeAll()
{
    for (unsigned tid = 0; tid < watches_.size(); ++tid) {
        auto &dq = watches_[tid];
        while (!dq.empty()) {
            finalizeThread(dq.front().slot, tid);
            dq.pop_front();
        }
    }
}

bool
GoldenLedger::matches(const Entry &e, const pipeline::Core &fork)
{
    for (unsigned tid = 0; tid < fork.numThreads(); ++tid) {
        // Recompute the fork side from materialized state: a faulty
        // fork's incremental digest can be stale (Core::archDigest).
        if (isa::archStateDigest(fork.archState(tid)) !=
            e.archDigests[tid]) {
            return false;
        }
    }
    const mem::Memory &m = fork.memory();
    for (size_t s = 0; s < e.digests.size(); ++s) {
        if (m.segmentDigest(s) != e.digests[s])
            return false;
    }
    return true;
}

void
GoldenLedger::onCommit(const pipeline::Core &core, unsigned tid)
{
    if (&core != master_)
        return; // a fork copied the observer pointer; ignore it
    auto &dq = watches_[tid];
    const u64 committed = core.committed(tid);
    while (!dq.empty() && dq.front().target <= committed) {
        finalizeThread(dq.front().slot, tid);
        dq.pop_front();
    }
}

void
GoldenLedger::onThreadHalted(const pipeline::Core &core, unsigned tid)
{
    if (&core != master_)
        return;
    // The thread will never commit again; every pending watch on it
    // finalizes with the halted state — exactly what a golden fork
    // frozen short of its target would have sampled.
    auto &dq = watches_[tid];
    while (!dq.empty()) {
        finalizeThread(dq.front().slot, tid);
        dq.pop_front();
    }
}

} // namespace fh::fault
