#include "fault/sampling.hh"

#include <bit>
#include <cmath>

#include "fault/campaign.hh"
#include "sim/logging.hh"

namespace fh::fault
{

WilsonInterval
wilson(u64 successes, u64 n, double z)
{
    if (n == 0)
        return {0.0, 1.0};
    const double nn = static_cast<double>(n);
    const double p = static_cast<double>(successes) / nn;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / nn;
    WilsonInterval w;
    w.center = (p + z2 / (2.0 * nn)) / denom;
    w.halfWidth =
        z * std::sqrt(p * (1.0 - p) / nn + z2 / (4.0 * nn * nn)) / denom;
    return w;
}

StratumSpace::StratumSpace(const InjectionMix &mix)
{
    const double regFrac = 1.0 - mix.renameFrac - mix.lsqFrac;
    weights_[0] = mix.renameFrac;
    for (unsigned g = 0; g < kBitGroups; ++g) {
        weights_[1 + g] = mix.lsqFrac / kBitGroups;
        weights_[1 + kBitGroups + g] =
            regFrac * mix.inflightFrac / kBitGroups;
        weights_[1 + 2 * kBitGroups + g] =
            regFrac * (1.0 - mix.inflightFrac) / kBitGroups;
    }
}

u32
StratumSpace::stratumOf(const InjectionPlan &plan)
{
    const u32 group = plan.bit / kGroupBits;
    switch (plan.target) {
      case Target::Rename:
        return 0;
      case Target::Lsq:
        return 1 + group;
      case Target::RegFile:
      case Target::None:
        // None only arises from an empty in-flight pool, so both label
        // by the draw kind the mix selected.
        return 1 + (plan.inflightDraw ? 1 : 2) * kBitGroups + group;
    }
    return 0;
}

InjectionPlan
StratumSpace::draw(const pipeline::Core &core, unsigned s,
                   Rng &rng) const
{
    fh_assert(s < kCount, "stratum out of range");
    InjectionPlan plan;
    if (s == 0) {
        plan.target = Target::Rename;
        plan.tid = static_cast<unsigned>(rng.below(core.numThreads()));
        plan.arch =
            1 + static_cast<unsigned>(rng.below(isa::numArchRegs - 1));
        const unsigned tag_bits = static_cast<unsigned>(
            std::bit_width(core.numPhysRegs() - 1u));
        plan.bit = static_cast<unsigned>(rng.below(tag_bits));
    } else if (s < 1 + kBitGroups) {
        const unsigned group = s - 1;
        plan.target = Target::Lsq;
        plan.lsqNth =
            static_cast<unsigned>(rng.below(core.params().lsqSize));
        plan.lsqAddrField = rng.chance(0.5);
        plan.bit = group * kGroupBits +
                   static_cast<unsigned>(rng.below(kGroupBits));
    } else if (s < 1 + 2 * kBitGroups) {
        const unsigned group = s - 1 - kBitGroups;
        plan.target = Target::RegFile;
        plan.inflightDraw = true;
        plan.bit = group * kGroupBits +
                   static_cast<unsigned>(rng.below(kGroupBits));
        auto inflight = core.inflightDestPregs();
        if (inflight.empty())
            plan.target = Target::None;
        else
            plan.preg = inflight[rng.below(inflight.size())];
    } else {
        const unsigned group = s - 1 - 2 * kBitGroups;
        plan.target = Target::RegFile;
        plan.bit = group * kGroupBits +
                   static_cast<unsigned>(rng.below(kGroupBits));
        plan.preg =
            static_cast<unsigned>(rng.below(core.numPhysRegs()));
    }
    attributePlan(core, plan);
    return plan;
}

void
VulnProfile::addTrial(const CampaignResult &delta, const TrialMeta &meta)
{
    fh_assert(meta.stratum < StratumSpace::kCount,
              "trial meta stratum out of range");
    StratumCounts &s = strata[meta.stratum];
    s.trials += delta.injected;
    s.masked += delta.masked;
    s.noisy += delta.noisy;
    s.sdc += delta.sdc;
    s.covered += delta.recovered + delta.detected;
    s.skippedProvablyMasked += delta.skippedProvablyMasked;
    s.earlyTerminated += delta.earlyTerminated;
    if (delta.sdc != 0) {
        if (meta.structure < kStructures)
            sdcBits[meta.structure][meta.bit % wordBits] += delta.sdc;
        sdcPcs[meta.pc] += delta.sdc;
        sdcCycleBuckets[meta.cycleBucket % kCycleBuckets] += delta.sdc;
    }
}

VulnProfile &
VulnProfile::operator+=(const VulnProfile &other)
{
    for (unsigned s = 0; s < StratumSpace::kCount; ++s) {
        StratumCounts &a = strata[s];
        const StratumCounts &b = other.strata[s];
        a.trials += b.trials;
        a.masked += b.masked;
        a.noisy += b.noisy;
        a.sdc += b.sdc;
        a.covered += b.covered;
        a.skippedProvablyMasked += b.skippedProvablyMasked;
        a.earlyTerminated += b.earlyTerminated;
    }
    for (unsigned st = 0; st < kStructures; ++st)
        for (unsigned bit = 0; bit < wordBits; ++bit)
            sdcBits[st][bit] += other.sdcBits[st][bit];
    for (const auto &[pc, n] : other.sdcPcs)
        sdcPcs[pc] += n;
    for (unsigned b = 0; b < kCycleBuckets; ++b)
        sdcCycleBuckets[b] += other.sdcCycleBuckets[b];
    return *this;
}

double
pooledSdcHalfWidth(const VulnProfile &profile, const StratumSpace &space,
                   double z)
{
    double sum = 0.0;
    for (unsigned s = 0; s < StratumSpace::kCount; ++s) {
        const StratumCounts &c = profile.strata[s];
        const double hw = wilson(c.sdc, c.trials, z).halfWidth;
        const double whw = space.weight(s) * hw;
        sum += whw * whw;
    }
    return std::sqrt(sum);
}

} // namespace fh::fault
