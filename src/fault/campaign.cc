#include "fault/campaign.hh"

#include "sim/logging.hh"

namespace fh::fault
{

namespace
{

/** Detector-stat deltas observed by a protected faulty fork. */
struct DetectorDelta
{
    u64 triggers = 0;
    u64 suppressed = 0;
    u64 replays = 0;
    u64 rollbacks = 0;
    u64 commitTriggers = 0;
};

DetectorDelta
deltaOf(const pipeline::Core &fork, const pipeline::Core &master)
{
    const auto &f = fork.detector().stats();
    const auto &m = master.detector().stats();
    return {f.triggers - m.triggers, f.suppressed - m.suppressed,
            f.replays - m.replays, f.rollbacks - m.rollbacks,
            f.commitTriggers - m.commitTriggers};
}

} // namespace

CampaignResult
runCampaign(const pipeline::CoreParams &params, const isa::Program *prog,
            const CampaignConfig &cfg)
{
    pipeline::Core master(params, prog);
    Rng rng(cfg.seed);
    CampaignResult result;

    // Warm up caches, predictors and filters.
    while (master.committedTotal() < cfg.warmupInsts &&
           !master.allHalted()) {
        master.tick();
    }
    if (master.allHalted())
        fh_fatal("workload '%s' halted during warmup; "
                 "increase its iteration count",
                 prog->name.c_str());

    for (u64 i = 0; i < cfg.injections; ++i) {
        // Advance the master to the next injection point.
        const Cycle gap = rng.range(cfg.minGap, cfg.maxGap);
        for (Cycle c = 0; c < gap && !master.allHalted(); ++c)
            master.tick();
        if (master.allHalted())
            break;

        const InjectionPlan plan = drawPlan(master, cfg.mix, rng);
        const auto targets = windowTargets(master, cfg.window);

        // Record register lifetime phase before any fork runs.
        pipeline::PregPhase phase = pipeline::PregPhase::Free;
        if (plan.target == Target::RegFile)
            phase = master.pregPhase(plan.preg);

        ++result.injected;

        // Golden fork: no fault, detector checks off (architecturally
        // identical to a protected run; faster).
        ForkOutcome golden =
            runFork(master, nullptr, false, targets, cfg.forkMaxCycles);

        // Unprotected faulty fork: classifies the fault itself.
        ForkOutcome bare =
            runFork(master, &plan, false, targets, cfg.forkMaxCycles);

        const bool noisy = bare.trapped != golden.trapped ||
                           !bare.reachedTargets;
        if (noisy) {
            ++result.noisy;
            continue;
        }
        if (archEquals(bare.core, golden.core)) {
            ++result.masked;
            continue;
        }
        ++result.sdc;

        if (params.detector.scheme == filters::Scheme::None) {
            ++result.uncovered;
            ++result.bins.other;
            continue;
        }

        // Protected faulty fork: does the scheme cover the fault?
        ForkOutcome prot =
            runFork(master, &plan, true, targets, cfg.forkMaxCycles);

        const bool det = prot.core.faultDetected() ||
                         (prot.trapped && !golden.trapped);
        const bool recov = prot.reachedTargets && !prot.trapped &&
                           archEquals(prot.core, golden.core);

        if (recov && !det) {
            ++result.recovered;
            ++result.bins.covered;
            continue;
        }
        if (det) {
            ++result.detected;
            ++result.bins.covered;
            continue;
        }
        ++result.uncovered;

        // Figure 11 binning for the uncovered fault.
        if (plan.target == Target::Rename) {
            ++result.bins.renameUncovered;
            continue;
        }
        DetectorDelta d = deltaOf(prot.core, master);
        if (d.triggers == 0) {
            ++result.bins.noTrigger;
        } else if (d.suppressed > 0 && d.replays == 0 &&
                   d.rollbacks == 0 && d.commitTriggers == 0) {
            ++result.bins.secondLevelMasked;
        } else if (plan.target == Target::RegFile &&
                   (phase == pipeline::PregPhase::Completed ||
                    phase == pipeline::PregPhase::Architectural)) {
            ++result.bins.completedReg;
            if (phase == pipeline::PregPhase::Architectural)
                ++result.bins.archReg;
        } else {
            ++result.bins.other;
        }
    }

    return result;
}

} // namespace fh::fault
