#include "fault/campaign.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "exec/progress.hh"
#include "exec/thread_pool.hh"
#include "sim/logging.hh"

namespace fh::fault
{

namespace
{

/** Detector-stat deltas observed by a protected faulty fork. */
struct DetectorDelta
{
    u64 triggers = 0;
    u64 suppressed = 0;
    u64 replays = 0;
    u64 rollbacks = 0;
    u64 commitTriggers = 0;
};

DetectorDelta
deltaOf(const pipeline::Core &fork, const filters::DetectorStats &m)
{
    const auto &f = fork.detector().stats();
    return {f.triggers - m.triggers, f.suppressed - m.suppressed,
            f.replays - m.replays, f.rollbacks - m.rollbacks,
            f.commitTriggers - m.commitTriggers};
}

/**
 * Everything a worker needs to execute one injection trial without
 * touching the (still advancing) master: a full machine snapshot at
 * the injection point, the drawn plan, the per-SMT-thread commit
 * targets, and the master-side state the classifier compares against.
 */
struct Trial
{
    pipeline::Core master;
    InjectionPlan plan;
    std::vector<u64> targets;
    pipeline::PregPhase phase;
    filters::DetectorStats masterStats;
};

/**
 * Run the 2–3 forks of one trial and classify the outcome. A pure
 * function of the descriptor (safe on any worker thread; the returned
 * single-trial counters merge into CampaignResult with
 * order-insensitive adds), except that the last fork consumes
 * t.master by move — the caller's batch slot is dead after this and
 * gets overwritten by the next batch.
 */
CampaignResult
runTrial(const pipeline::CoreParams &params, const CampaignConfig &cfg,
         Trial &t)
{
    CampaignResult r;
    ++r.injected;

    // Golden fork: no fault, detector checks off (architecturally
    // identical to a protected run; faster).
    ForkOutcome golden =
        runFork(t.master, nullptr, false, t.targets, cfg.forkMaxCycles);

    // Unprotected faulty fork: classifies the fault itself.
    ForkOutcome bare =
        runFork(t.master, &t.plan, false, t.targets, cfg.forkMaxCycles);

    const bool noisy =
        bare.trapped != golden.trapped || !bare.reachedTargets;
    if (noisy) {
        ++r.noisy;
        return r;
    }
    if (archEquals(bare.core, golden.core)) {
        ++r.masked;
        return r;
    }
    ++r.sdc;

    if (params.detector.scheme == filters::Scheme::None) {
        ++r.uncovered;
        ++r.bins.other;
        return r;
    }

    // Protected faulty fork: does the scheme cover the fault? This is
    // the trial's last fork, so it takes the snapshot by move.
    ForkOutcome prot = runFork(std::move(t.master), &t.plan, true,
                               t.targets, cfg.forkMaxCycles);

    const bool det = prot.core.faultDetected() ||
                     (prot.trapped && !golden.trapped);
    const bool recov = prot.reachedTargets && !prot.trapped &&
                       archEquals(prot.core, golden.core);

    if (recov && !det) {
        ++r.recovered;
        ++r.bins.covered;
        return r;
    }
    if (det) {
        ++r.detected;
        ++r.bins.covered;
        return r;
    }
    ++r.uncovered;

    // Figure 11 binning for the uncovered fault.
    if (t.plan.target == Target::Rename) {
        ++r.bins.renameUncovered;
        return r;
    }
    DetectorDelta d = deltaOf(prot.core, t.masterStats);
    if (d.triggers == 0) {
        ++r.bins.noTrigger;
    } else if (d.suppressed > 0 && d.replays == 0 && d.rollbacks == 0 &&
               d.commitTriggers == 0) {
        ++r.bins.secondLevelMasked;
    } else if (t.plan.target == Target::RegFile &&
               (t.phase == pipeline::PregPhase::Completed ||
                t.phase == pipeline::PregPhase::Architectural)) {
        ++r.bins.completedReg;
        if (t.phase == pipeline::PregPhase::Architectural)
            ++r.bins.archReg;
    } else {
        ++r.bins.other;
    }
    return r;
}

} // namespace

CampaignResult
runCampaign(const pipeline::CoreParams &params, const isa::Program *prog,
            const CampaignConfig &cfg)
{
    pipeline::Core master(params, prog);
    Rng gapRng(cfg.seed);
    CampaignResult result;

    // Warm up caches, predictors and filters.
    while (master.committedTotal() < cfg.warmupInsts &&
           !master.allHalted()) {
        master.tick();
    }
    if (master.allHalted())
        fh_fatal("workload '%s' halted during warmup; "
                 "increase its iteration count",
                 prog->name.c_str());

    const unsigned threads = exec::resolveThreads(cfg.threads);
    exec::ThreadPool pool(threads);
    // Trials are produced serially (the master must advance in order)
    // and executed in batches. The batch size bounds how many master
    // snapshots — each a full machine copy — are live at once, while
    // keeping every worker fed with a few trials.
    const u64 batch_cap = std::max<u64>(u64{threads} * 4, 8);

    // One fixed-size batch of trial slots, allocated once and reused
    // across batches: a slot's snapshot is overwritten in place (COW
    // memory makes both the snapshot and the overwrite cheap), so the
    // campaign keeps at most batch_cap machine copies live with no
    // per-batch reallocation churn.
    std::vector<Trial> batch;
    batch.reserve(batch_cap);
    std::vector<CampaignResult> partial(batch_cap);
    u64 trial = 0;
    bool halted = false;
    while (trial < cfg.injections && !halted) {
        u64 filled = 0;
        while (filled < batch_cap && trial < cfg.injections) {
            // Advance the master to the next injection point.
            const Cycle gap = gapRng.range(cfg.minGap, cfg.maxGap);
            for (Cycle c = 0; c < gap && !master.allHalted(); ++c)
                master.tick();
            if (master.allHalted()) {
                halted = true;
                break;
            }

            // The plan comes from the trial's own stream, so the
            // injection schedule is a pure function of (seed, trial)
            // regardless of how many workers execute the forks.
            Rng trialRng = Rng::stream(cfg.seed, trial);
            const InjectionPlan plan = drawPlan(master, cfg.mix, trialRng);

            // Record register lifetime phase before any fork runs.
            pipeline::PregPhase phase = pipeline::PregPhase::Free;
            if (plan.target == Target::RegFile)
                phase = master.pregPhase(plan.preg);

            Trial t{master, plan, windowTargets(master, cfg.window),
                    phase, master.detector().stats()};
            if (filled < batch.size())
                batch[filled] = std::move(t);
            else
                batch.push_back(std::move(t));
            ++filled;
            ++trial;
        }

        pool.parallelFor(filled, [&](u64 k) {
            partial[k] = runTrial(params, cfg, batch[k]);
            if (cfg.progress)
                cfg.progress->tick();
        });
        for (u64 k = 0; k < filled; ++k)
            result += partial[k];
    }

    return result;
}

} // namespace fh::fault
