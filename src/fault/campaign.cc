#include "fault/campaign.hh"

#include <algorithm>
#include <chrono>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "exec/interrupt.hh"
#include "exec/progress.hh"
#include "exec/thread_pool.hh"
#include "fault/golden_ledger.hh"
#include "fault/journal.hh"
#include "sim/error.hh"
#include "sim/logging.hh"

namespace fh::fault
{

namespace
{

/** Wall-clock phase accounting (never feeds classification). */
using PhaseClock = std::chrono::steady_clock;

u64
nsSince(PhaseClock::time_point t0)
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            PhaseClock::now() - t0)
            .count());
}

/** Detector-stat deltas observed by a protected faulty fork. */
struct DetectorDelta
{
    u64 triggers = 0;
    u64 suppressed = 0;
    u64 replays = 0;
    u64 rollbacks = 0;
    u64 commitTriggers = 0;
};

DetectorDelta
deltaOf(const pipeline::Core &fork, const filters::DetectorStats &m)
{
    const auto &f = fork.detector().stats();
    return {f.triggers - m.triggers, f.suppressed - m.suppressed,
            f.replays - m.replays, f.rollbacks - m.rollbacks,
            f.commitTriggers - m.commitTriggers};
}

/**
 * Everything a worker needs to execute one injection trial without
 * touching the (still advancing) master: a full machine snapshot at
 * the injection point, the drawn plan, the per-SMT-thread commit
 * targets, and the master-side state the classifier compares against.
 */
struct Trial
{
    pipeline::Core master;
    InjectionPlan plan;
    std::vector<u64> targets;
    pipeline::PregPhase phase;
    filters::DetectorStats masterStats;
    u64 index = 0; ///< campaign trial number (journal key, repro id)
};

/**
 * Shared tail of both classifiers: the SDC fault ran through a
 * protected fork — decide recovered/detected/uncovered and the
 * Figure 11 bin. golden_trapped is the golden trap status (fork or
 * ledger); prot_matches_golden must already include the
 * reached-targets and no-trap guards (short-circuit preserved from
 * the original classifier).
 */
void
classifyProtected(CampaignResult &r, const Trial &t,
                  const ForkOutcome &prot, bool golden_trapped,
                  bool prot_matches_golden)
{
    const bool det = prot.core.faultDetected() ||
                     (prot.trapped && !golden_trapped);
    const bool recov = prot_matches_golden;

    if (recov && !det) {
        ++r.recovered;
        ++r.bins.covered;
        return;
    }
    if (det) {
        ++r.detected;
        ++r.bins.covered;
        return;
    }
    ++r.uncovered;

    // Figure 11 binning for the uncovered fault.
    if (t.plan.target == Target::Rename) {
        ++r.bins.renameUncovered;
        return;
    }
    DetectorDelta d = deltaOf(prot.core, t.masterStats);
    if (d.triggers == 0) {
        ++r.bins.noTrigger;
    } else if (d.suppressed > 0 && d.replays == 0 && d.rollbacks == 0 &&
               d.commitTriggers == 0) {
        ++r.bins.secondLevelMasked;
    } else if (t.plan.target == Target::RegFile &&
               (t.phase == pipeline::PregPhase::Completed ||
                t.phase == pipeline::PregPhase::Architectural)) {
        ++r.bins.completedReg;
        if (t.phase == pipeline::PregPhase::Architectural)
            ++r.bins.archReg;
    } else {
        ++r.bins.other;
    }
}

/**
 * Legacy trial: run the golden fork explicitly plus 1–2 faulty forks
 * and classify. A pure function of the descriptor (safe on any worker
 * thread; the returned single-trial counters merge into
 * CampaignResult with order-insensitive adds), except that the last
 * fork consumes t.master by move — the caller's batch slot is dead
 * after this and gets overwritten by the next batch.
 */
CampaignResult
runTrialGoldenFork(const pipeline::CoreParams &params,
                   const CampaignConfig &cfg, Trial &t,
                   const ForkDeadline *deadline)
{
    CampaignResult r;
    ++r.injected;

    // Golden fork: no fault, detector checks off (architecturally
    // identical to a protected run; faster).
    auto t0 = PhaseClock::now();
    ForkOutcome golden = runFork(t.master, nullptr, false, t.targets,
                                 cfg.forkMaxCycles, deadline);
    r.phases.goldenNs += nsSince(t0);

    // Unprotected faulty fork: classifies the fault itself.
    t0 = PhaseClock::now();
    ForkOutcome bare = runFork(t.master, &t.plan, false, t.targets,
                               cfg.forkMaxCycles, deadline);
    r.phases.bareNs += nsSince(t0);

    if (!bare.reachedTargets)
        ++r.hungBare; // diagnostic only; still classified noisy below
    const bool noisy =
        bare.trapped != golden.trapped || !bare.reachedTargets;
    if (noisy) {
        ++r.noisy;
        return r;
    }
    t0 = PhaseClock::now();
    const bool masked = archEquals(bare.core, golden.core);
    r.phases.compareNs += nsSince(t0);
    if (masked) {
        ++r.masked;
        return r;
    }
    ++r.sdc;

    if (params.detector.scheme == filters::Scheme::None) {
        ++r.uncovered;
        ++r.bins.other;
        return r;
    }

    // Protected faulty fork: does the scheme cover the fault? This is
    // the trial's last fork, so it takes the snapshot by move.
    t0 = PhaseClock::now();
    ForkOutcome prot = runFork(std::move(t.master), &t.plan, true,
                               t.targets, cfg.forkMaxCycles, deadline);
    r.phases.protectedNs += nsSince(t0);

    if (!prot.reachedTargets)
        ++r.hungProtected; // diagnostic; classification unchanged
    t0 = PhaseClock::now();
    const bool prot_matches = prot.reachedTargets && !prot.trapped &&
                              archEquals(prot.core, golden.core);
    r.phases.compareNs += nsSince(t0);
    classifyProtected(r, t, prot, golden.trapped, prot_matches);
    return r;
}

/**
 * Ledger trial: no golden execution at all. The bare (and, for SDC
 * faults, protected) fork is compared against the master's golden
 * checkpoint with O(threads + segments) arch/digest compares.
 */
CampaignResult
runTrialLedger(const pipeline::CoreParams &params,
               const CampaignConfig &cfg, Trial &t,
               const GoldenLedger::Entry &g, const ForkDeadline *deadline)
{
    CampaignResult r;
    ++r.injected;

    // With no protected scheme there is no third fork, so the bare
    // fork is the trial's last and takes the snapshot by move.
    const bool bare_is_last =
        params.detector.scheme == filters::Scheme::None;

    auto t0 = PhaseClock::now();
    ForkOutcome bare =
        bare_is_last
            ? runFork(std::move(t.master), &t.plan, false, t.targets,
                      cfg.forkMaxCycles, deadline)
            : runFork(t.master, &t.plan, false, t.targets,
                      cfg.forkMaxCycles, deadline);
    r.phases.bareNs += nsSince(t0);

    if (!bare.reachedTargets)
        ++r.hungBare; // diagnostic only; still classified noisy below
    const bool noisy = bare.trapped != g.trapped || !bare.reachedTargets;
    if (noisy) {
        ++r.noisy;
        return r;
    }
    t0 = PhaseClock::now();
    const bool masked = GoldenLedger::matches(g, bare.core);
    r.phases.compareNs += nsSince(t0);
    if (masked) {
        ++r.masked;
        return r;
    }
    ++r.sdc;

    if (bare_is_last) {
        ++r.uncovered;
        ++r.bins.other;
        return r;
    }

    t0 = PhaseClock::now();
    ForkOutcome prot = runFork(std::move(t.master), &t.plan, true,
                               t.targets, cfg.forkMaxCycles, deadline);
    r.phases.protectedNs += nsSince(t0);

    if (!prot.reachedTargets)
        ++r.hungProtected; // diagnostic; classification unchanged
    t0 = PhaseClock::now();
    const bool prot_matches = prot.reachedTargets && !prot.trapped &&
                              GoldenLedger::matches(g, prot.core);
    r.phases.compareNs += nsSince(t0);
    classifyProtected(r, t, prot, g.trapped, prot_matches);
    return r;
}

/**
 * Trial fault isolation: execute one trial's forks inside a
 * PanicScope with the trial's wall-clock watchdog armed. An fh_panic
 * or fh_assert raised by the (deliberately corrupted) forked machine
 * — or a watchdog expiry — surfaces here as a SimError; the trial is
 * counted in trialErrors with its injection plan logged for offline
 * reproduction, and the campaign keeps running. Under FH_STRICT=1
 * (the CI default) panics abort the process exactly as before the
 * resilience layer existed; only the explicitly opted-in watchdog
 * still throws. The guard is scoped to this worker's trial: a panic
 * on the producer thread (the master) still aborts.
 */
template <typename RunTrial>
CampaignResult
runTrialGuarded(const CampaignConfig &cfg, const Trial &t,
                RunTrial &&run_trial)
{
    ForkDeadline deadline;
    const ForkDeadline *dl = nullptr;
    if (cfg.trialTimeoutMs) {
        deadline.at = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(cfg.trialTimeoutMs);
        dl = &deadline;
    }
    try {
        PanicScope guard;
        if (t.index == cfg.panicAtTrial)
            fh_panic("campaign debug hook: forced panic in trial %llu",
                     static_cast<unsigned long long>(t.index));
        return run_trial(dl);
    } catch (const SimError &e) {
        CampaignResult r;
        ++r.injected;
        ++r.trialErrors;
        const InjectionPlan &p = t.plan;
        fh_warn("trial %llu isolated after an in-fork error: %s\n"
                "  repro: FH_STRICT=1 with seed=%llu, plan{target=%s "
                "preg=%u lsqNth=%u lsqAddrField=%d tid=%u arch=%u "
                "bit=%u}",
                static_cast<unsigned long long>(t.index),
                e.what(),
                static_cast<unsigned long long>(cfg.seed),
                to_string(p.target).c_str(), p.preg, p.lsqNth,
                p.lsqAddrField ? 1 : 0, p.tid, p.arch, p.bit);
        return r;
    }
}

/**
 * Legacy campaign loop: produce a batch of snapshots, run each
 * trial's golden + faulty forks on the pool, merge in trial order.
 */
CampaignResult
runCampaignGoldenFork(const pipeline::CoreParams &params,
                      const CampaignConfig &cfg, pipeline::Core &master,
                      TrialJournal *journal)
{
    Rng gapRng(cfg.seed);
    CampaignResult result;
    CampaignPhases produced;

    const unsigned threads = exec::resolveThreads(cfg.threads);
    exec::ThreadPool pool(threads);
    // Trials are produced serially (the master must advance in order)
    // and executed in batches. The batch size bounds how many master
    // snapshots — each a full machine copy — are live at once, while
    // keeping every worker fed with a few trials.
    const u64 batch_cap = std::max<u64>(u64{threads} * 4, 8);

    // One fixed-size batch of trial slots, allocated once and reused
    // across batches: a slot's snapshot is overwritten in place (COW
    // memory makes both the snapshot and the overwrite cheap), so the
    // campaign keeps at most batch_cap machine copies live with no
    // per-batch reallocation churn.
    std::vector<Trial> batch;
    batch.reserve(batch_cap);
    std::vector<CampaignResult> partial(batch_cap);
    u64 trial = 0;
    u64 executed = 0; // produced (not journal-replayed) this run
    bool halted = false;
    bool stopped = false;
    auto stop_requested = [&] {
        return exec::shutdownRequested() ||
               (cfg.stopAfterTrials && executed >= cfg.stopAfterTrials);
    };
    while (trial < cfg.injections && !halted && !stopped) {
        u64 filled = 0;
        while (filled < batch_cap && trial < cfg.injections) {
            // Graceful shutdown: stop opening new trials; the batch
            // filled so far still runs and is journaled (drained).
            if (stop_requested()) {
                stopped = true;
                break;
            }
            // Advance the master to the next injection point.
            auto t0 = PhaseClock::now();
            const Cycle gap = gapRng.range(cfg.minGap, cfg.maxGap);
            for (Cycle c = 0; c < gap && !master.allHalted(); ++c)
                master.tick();
            produced.snapshotNs += nsSince(t0);
            if (master.allHalted()) {
                halted = true;
                break;
            }

            // Resume: a journaled trial's outcome is already known —
            // the master advanced over its gap (same schedule as the
            // original run), but no snapshot or fork work is needed.
            if (journal && trial < journal->replayCount()) {
                result += journal->replayed(trial);
                ++result.replayedTrials;
                if (cfg.progress)
                    cfg.progress->tick();
                ++trial;
                continue;
            }

            // The plan comes from the trial's own stream, so the
            // injection schedule is a pure function of (seed, trial)
            // regardless of how many workers execute the forks.
            t0 = PhaseClock::now();
            Rng trialRng = Rng::stream(cfg.seed, trial);
            const InjectionPlan plan = drawPlan(master, cfg.mix, trialRng);

            // Record register lifetime phase before any fork runs.
            pipeline::PregPhase phase = pipeline::PregPhase::Free;
            if (plan.target == Target::RegFile)
                phase = master.pregPhase(plan.preg);

            Trial t{master, plan, windowTargets(master, cfg.window),
                    phase, master.detector().stats(), trial};
            if (filled < batch.size())
                batch[filled] = std::move(t);
            else
                batch.push_back(std::move(t));
            produced.snapshotNs += nsSince(t0);
            ++filled;
            ++trial;
            ++executed;
        }

        pool.parallelFor(filled, [&](u64 k) {
            partial[k] = runTrialGuarded(
                cfg, batch[k], [&](const ForkDeadline *dl) {
                    return runTrialGoldenFork(params, cfg, batch[k], dl);
                });
            if (cfg.progress)
                cfg.progress->tick();
        });
        // Merge — and journal — in trial (production) order.
        for (u64 k = 0; k < filled; ++k) {
            result += partial[k];
            if (journal)
                journal->record(batch[k].index, partial[k]);
        }
    }

    result.partial = stopped;
    result.phases += produced;
    return result;
}

/**
 * Ledger campaign loop. The master advances on exactly the legacy
 * schedule (same gap ticks between the same snapshots, no extra
 * ticks), so the injection points — and therefore every
 * classification — are bit-identical to the golden-fork path. A
 * produced trial waits in a FIFO until the master's own advance
 * crosses all its commit targets (completing its ledger entry,
 * usually within the next trial or two's gaps); completed trials run
 * on the pool in waves. Only after the final snapshot, when no
 * further injection points depend on the master's cycle position,
 * does the producer tick the master extra ("drain") cycles to close
 * the last windows.
 */
CampaignResult
runCampaignLedger(const pipeline::CoreParams &params,
                  const CampaignConfig &cfg, pipeline::Core &master,
                  TrialJournal *journal)
{
    Rng gapRng(cfg.seed);
    CampaignResult result;
    CampaignPhases produced;

    GoldenLedger ledger(master);
    master.setCommitObserver(&ledger);

    const unsigned threads = exec::resolveThreads(cfg.threads);
    exec::ThreadPool pool(threads);
    const u64 batch_cap = std::max<u64>(u64{threads} * 4, 8);

    struct Pending
    {
        Trial t;
        u32 slot;
    };
    // Produced trials whose windows the master has not fully crossed
    // yet; bounded by window/minGap in practice, not by batch_cap.
    std::deque<Pending> inflight;
    std::vector<Pending> wave;
    wave.reserve(batch_cap + 8);
    std::vector<CampaignResult> partial;

    auto promote = [&] {
        // Entries complete in production order: per-thread targets are
        // nondecreasing, so the FIFO's front always finishes first.
        while (!inflight.empty() &&
               ledger.complete(inflight.front().slot)) {
            wave.push_back(std::move(inflight.front()));
            inflight.pop_front();
        }
    };
    auto flushWave = [&] {
        if (wave.empty())
            return;
        partial.resize(wave.size());
        pool.parallelFor(wave.size(), [&](u64 k) {
            partial[k] = runTrialGuarded(
                cfg, wave[k].t, [&](const ForkDeadline *dl) {
                    return runTrialLedger(params, cfg, wave[k].t,
                                          ledger.entry(wave[k].slot),
                                          dl);
                });
            if (cfg.progress)
                cfg.progress->tick();
        });
        // Merge — and journal — in trial (production) order:
        // bit-identical for any worker count. Slots free up for the
        // next opens.
        for (size_t k = 0; k < wave.size(); ++k) {
            result += partial[k];
            if (journal)
                journal->record(wave[k].t.index, partial[k]);
            ledger.release(wave[k].slot);
        }
        wave.clear();
    };

    u64 trial = 0;
    u64 executed = 0; // produced (not journal-replayed) this run
    bool halted = false;
    bool stopped = false;
    auto stop_requested = [&] {
        return exec::shutdownRequested() ||
               (cfg.stopAfterTrials && executed >= cfg.stopAfterTrials);
    };
    while (trial < cfg.injections && !halted) {
        // Graceful shutdown: stop opening new trials. The in-flight
        // ones drain through the normal tail below — their windows
        // close, they classify, and they reach the journal — so an
        // interrupted run's journal is always a clean prefix.
        if (stop_requested()) {
            stopped = true;
            break;
        }
        // Advance the master to the next injection point — the exact
        // legacy schedule. Ledger entries of earlier trials complete
        // passively inside these ticks via the commit observer.
        auto t0 = PhaseClock::now();
        const Cycle gap = gapRng.range(cfg.minGap, cfg.maxGap);
        for (Cycle c = 0; c < gap && !master.allHalted(); ++c)
            master.tick();
        produced.goldenNs += nsSince(t0);
        if (master.allHalted()) {
            halted = true;
            break;
        }

        // Resume: replay a journaled trial's outcome. The master
        // advanced over its gap exactly as the original run did, so
        // the machine — and every later trial — is bit-identical; the
        // forks and the ledger entry are simply not needed again.
        if (journal && trial < journal->replayCount()) {
            result += journal->replayed(trial);
            ++result.replayedTrials;
            if (cfg.progress)
                cfg.progress->tick();
            ++trial;
            continue;
        }

        t0 = PhaseClock::now();
        Rng trialRng = Rng::stream(cfg.seed, trial);
        const InjectionPlan plan = drawPlan(master, cfg.mix, trialRng);
        pipeline::PregPhase phase = pipeline::PregPhase::Free;
        if (plan.target == Target::RegFile)
            phase = master.pregPhase(plan.preg);

        std::vector<u64> targets = windowTargets(master, cfg.window);
        const u32 slot = ledger.open(targets);
        inflight.push_back({Trial{master, plan, std::move(targets),
                                  phase, master.detector().stats(),
                                  trial},
                            slot});
        produced.snapshotNs += nsSince(t0);
        ++trial;
        ++executed;

        promote();
        if (wave.size() >= batch_cap)
            flushWave();
    }

    // Drain: the last trials' windows extend past the final snapshot.
    // The schedule no longer matters (nothing else is snapshotted), so
    // tick until the youngest entry completes, bounded like a fork.
    auto t0 = PhaseClock::now();
    if (!inflight.empty()) {
        Cycle drained = 0;
        while (!ledger.complete(inflight.back().slot) &&
               !master.allHalted() && drained < cfg.forkMaxCycles) {
            master.tick();
            ++drained;
        }
        if (!ledger.complete(inflight.back().slot))
            ledger.forceFinalizeAll(); // hung master; see GoldenLedger
    }
    produced.goldenNs += nsSince(t0);

    promote();
    fh_assert(inflight.empty(), "ledger drain left incomplete entries");
    flushWave();

    master.setCommitObserver(nullptr);
    result.partial = stopped;
    result.phases += produced;
    return result;
}

} // namespace

CampaignResult
runCampaign(const pipeline::CoreParams &params, const isa::Program *prog,
            const CampaignConfig &cfg)
{
    pipeline::Core master(params, prog);

    // Warm up caches, predictors and filters.
    while (master.committedTotal() < cfg.warmupInsts &&
           !master.allHalted()) {
        master.tick();
    }
    if (master.allHalted())
        fh_fatal("workload '%s' halted during warmup; "
                 "increase its iteration count",
                 prog->name.c_str());

    // Durable progress: open (and replay) the trial journal before
    // the first injection point. The header pins the configuration,
    // so a resumed run either continues bit-identically or refuses.
    std::unique_ptr<TrialJournal> journal;
    if (!cfg.journalPath.empty()) {
        journal = std::make_unique<TrialJournal>(
            cfg.journalPath, cfg,
            filters::to_string(params.detector.scheme));
        if (journal->replayCount() > 0)
            fh_inform("journal '%s': replaying %llu completed trial(s)",
                      cfg.journalPath.c_str(),
                      static_cast<unsigned long long>(
                          journal->replayCount()));
    }

    const bool use_ledger =
        !cfg.forceGoldenFork && GoldenLedger::supports(master, *prog);
    return use_ledger
               ? runCampaignLedger(params, cfg, master, journal.get())
               : runCampaignGoldenFork(params, cfg, master,
                                       journal.get());
}

} // namespace fh::fault
