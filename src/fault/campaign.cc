#include "fault/campaign.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "exec/interrupt.hh"
#include "exec/progress.hh"
#include "exec/thread_pool.hh"
#include "fault/golden_ledger.hh"
#include "fault/journal.hh"
#include "sim/error.hh"
#include "sim/logging.hh"

namespace fh::fault
{

bool
CampaignConfig::envEarlyStop()
{
    static const bool on = [] {
        const char *v = std::getenv("FH_EARLY_STOP");
        return !v || !(v[0] == '0' && v[1] == '\0');
    }();
    return on;
}

namespace
{

/** Wall-clock phase accounting (never feeds classification). */
using PhaseClock = std::chrono::steady_clock;

u64
nsSince(PhaseClock::time_point t0)
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            PhaseClock::now() - t0)
            .count());
}

/** Detector-stat deltas observed by a protected faulty fork. */
struct DetectorDelta
{
    u64 triggers = 0;
    u64 suppressed = 0;
    u64 replays = 0;
    u64 rollbacks = 0;
    u64 commitTriggers = 0;
};

DetectorDelta
deltaOf(const pipeline::Core &fork, const filters::DetectorStats &m)
{
    const auto &f = fork.detector().stats();
    return {f.triggers - m.triggers, f.suppressed - m.suppressed,
            f.replays - m.replays, f.rollbacks - m.rollbacks,
            f.commitTriggers - m.commitTriggers};
}

/**
 * Everything a worker needs to execute one injection trial without
 * touching the (still advancing) master: a full machine snapshot at
 * the injection point, the drawn plan, the per-SMT-thread commit
 * targets, and the master-side state the classifier compares against.
 */
struct Trial
{
    pipeline::Core master;
    InjectionPlan plan;
    std::vector<u64> targets;
    pipeline::PregPhase phase;
    filters::DetectorStats masterStats;
    u64 index = 0; ///< campaign trial number (journal key, repro id)
    /**
     * The injection provably cannot change any observable outcome, so
     * the faulty forks need not run at all. True for three plans:
     *
     *  - Target::None — apply() is a no-op, the "fault" strikes idle
     *    logic; the bare fork is literally a no-fault fork.
     *  - Target::Lsq with an empty LSQ at the snapshot — apply()
     *    refuses (returns false), same no-op.
     *  - Target::RegFile into a free-listed preg. The flip touches
     *    only the value word: ready/free bits and both rename maps are
     *    untouched. While free, the preg is unreadable — preg
     *    reclamation frees a preg only when the next writer of its
     *    arch register commits, and in-order commit means every
     *    reader (including deferred store-data capture) has issued
     *    and read by then; archState and the detectors read only
     *    mapped/owned pregs. Leaving the free state goes through
     *    allocate(), which clears the ready bit, so the producer's
     *    full-word write lands before any consumer read. The corrupt
     *    bits are therefore dead on arrival.
     *
     * In each case the bare fork is bit-equivalent to a no-fault fork,
     * which reproduces the master's own window — the same
     * master-as-golden invariant the ledger already rests on.
     */
    bool provablyMasked = false;
    /** Sampling metadata (stratum, site, attribution), filled at the
     *  snapshot; the trial runner adds its flags and exit cycle. */
    TrialMeta meta{};
};

/** Evaluate Trial::provablyMasked against the snapshot-time master
 *  (the fork sees exactly this state, so the checks transfer). */
bool
provablyMasked(const pipeline::Core &master, const InjectionPlan &plan,
               pipeline::PregPhase phase)
{
    switch (plan.target) {
      case Target::None:
        return true;
      case Target::Lsq:
        return master.lsqOccupied() == 0;
      case Target::RegFile:
        return phase == pipeline::PregPhase::Free;
      case Target::Rename:
        return false;
    }
    return false;
}

/**
 * Per-worker reusable fork machines. The first trial a worker executes
 * allocates them (one machine per fork kind); every later fork
 * restores into the same flat buffers via runForkInto, so the
 * campaign's steady state performs zero fork-path allocations — a
 * bare fork is one arena memcpy plus the COW memory/filter copies.
 */
struct ForkScratch
{
    std::optional<ForkOutcome> golden;
    std::optional<ForkOutcome> bare;
    std::optional<ForkOutcome> prot;
};

ForkOutcome &
forkInto(std::optional<ForkOutcome> &slot, const pipeline::Core &base,
         const InjectionPlan *plan, bool detector_enabled,
         const std::vector<u64> &targets, Cycle max_cycles,
         const ForkDeadline *deadline, bool arm_regfile_watch = false)
{
    if (!slot)
        slot.emplace(runFork(base, plan, detector_enabled, targets,
                             max_cycles, deadline, arm_regfile_watch));
    else
        runForkInto(*slot, base, plan, detector_enabled, targets,
                    max_cycles, deadline, arm_regfile_watch);
    return *slot;
}

ForkOutcome &
forkInto(std::optional<ForkOutcome> &slot, pipeline::Core &&base,
         const InjectionPlan *plan, bool detector_enabled,
         const std::vector<u64> &targets, Cycle max_cycles,
         const ForkDeadline *deadline, bool arm_regfile_watch = false)
{
    if (!slot)
        slot.emplace(runFork(std::move(base), plan, detector_enabled,
                             targets, max_cycles, deadline,
                             arm_regfile_watch));
    else
        runForkInto(*slot, std::move(base), plan, detector_enabled,
                    targets, max_cycles, deadline, arm_regfile_watch);
    return *slot;
}

/**
 * Shared tail of both classifiers: the SDC fault ran through a
 * protected fork — decide recovered/detected/uncovered and the
 * Figure 11 bin. golden_trapped is the golden trap status (fork or
 * ledger); prot_matches_golden must already include the
 * reached-targets and no-trap guards (short-circuit preserved from
 * the original classifier).
 */
void
classifyProtected(CampaignResult &r, const Trial &t,
                  const ForkOutcome &prot, bool golden_trapped,
                  bool prot_matches_golden)
{
    const bool det = prot.core.faultDetected() ||
                     (prot.trapped && !golden_trapped);
    const bool recov = prot_matches_golden;

    if (recov && !det) {
        ++r.recovered;
        ++r.bins.covered;
        return;
    }
    if (det) {
        ++r.detected;
        ++r.bins.covered;
        return;
    }
    ++r.uncovered;

    // Figure 11 binning for the uncovered fault.
    if (t.plan.target == Target::Rename) {
        ++r.bins.renameUncovered;
        return;
    }
    DetectorDelta d = deltaOf(prot.core, t.masterStats);
    if (d.triggers == 0) {
        ++r.bins.noTrigger;
    } else if (d.suppressed > 0 && d.replays == 0 && d.rollbacks == 0 &&
               d.commitTriggers == 0) {
        ++r.bins.secondLevelMasked;
    } else if (t.plan.target == Target::RegFile &&
               (t.phase == pipeline::PregPhase::Completed ||
                t.phase == pipeline::PregPhase::Architectural)) {
        ++r.bins.completedReg;
        if (t.phase == pipeline::PregPhase::Architectural)
            ++r.bins.archReg;
    } else {
        ++r.bins.other;
    }
}

/**
 * Legacy trial: run the golden fork explicitly plus 1–2 faulty forks
 * and classify. A pure function of the descriptor (safe on any worker
 * thread; the returned single-trial counters merge into
 * CampaignResult with order-insensitive adds), except that the last
 * fork consumes t.master by move — the caller's batch slot is dead
 * after this and gets overwritten by the next batch.
 */
CampaignResult
runTrialGoldenFork(const pipeline::CoreParams &params,
                   const CampaignConfig &cfg, Trial &t, ForkScratch &fs,
                   const ForkDeadline *deadline)
{
    CampaignResult r;
    ++r.injected;
    // Scheduler observability: each fork starts from the snapshot's
    // counters, so its contribution is the delta past them. Captured
    // before any fork because the last fork consumes t.master by move.
    const pipeline::CoreStats snapStats = t.master.stats();

    // Golden fork: no fault, detector checks off (architecturally
    // identical to a protected run; faster).
    auto t0 = PhaseClock::now();
    ForkOutcome &golden = forkInto(fs.golden, t.master, nullptr, false,
                                   t.targets, cfg.forkMaxCycles,
                                   deadline);
    r.phases.goldenNs += nsSince(t0);
    r.sched += SchedCounters::delta(golden.core.stats(), snapStats);

    // A provably dead injection: the bare fork would replay the golden
    // fork bit for bit (see Trial::provablyMasked), so classify from
    // the golden outcome alone. Trap status matches by construction,
    // leaving only the reached-targets leg of the noisy test.
    if (t.provablyMasked) {
        if (!golden.reachedTargets) {
            ++r.hungBare;
            ++r.noisy;
        } else {
            ++r.masked;
            // Same skip condition as the ledger path (crossed and
            // untrapped golden), so the counter merges identically
            // across both golden modes.
            if (!golden.trapped) {
                ++r.skippedProvablyMasked;
                t.meta.flags |= kMetaSkippedProvablyMasked;
            }
        }
        return r;
    }

    // Unprotected faulty fork: classifies the fault itself. With a
    // golden run that crossed its targets untrapped, the regfile fault
    // watch may end it early: erasure-before-any-read makes the fork
    // bit-equivalent to the golden fork from that point on (tandem.hh).
    const bool arm =
        cfg.earlyStop && golden.reachedTargets && !golden.trapped;
    t0 = PhaseClock::now();
    ForkOutcome &bare =
        forkInto(fs.bare, t.master, &t.plan, false, t.targets,
                 cfg.forkMaxCycles, deadline, arm);
    r.phases.bareNs += nsSince(t0);
    r.sched += SchedCounters::delta(bare.core.stats(), snapStats);
    t.meta.exitCycle = bare.exitCycle;

    if (bare.earlyMasked) {
        // The injected bit was provably erased before any consumer
        // read it: the rest of the window replays the golden fork,
        // which reached its targets without trapping — masked.
        t.meta.flags |= kMetaEarlyTerminated;
        ++r.masked;
        ++r.earlyTerminated;
        return r;
    }

    if (!bare.reachedTargets)
        ++r.hungBare; // diagnostic only; still classified noisy below
    const bool noisy =
        bare.trapped != golden.trapped || !bare.reachedTargets;
    if (noisy) {
        ++r.noisy;
        return r;
    }
    t0 = PhaseClock::now();
    const bool masked = archEquals(bare.core, golden.core);
    r.phases.compareNs += nsSince(t0);
    if (masked) {
        ++r.masked;
        return r;
    }
    ++r.sdc;

    if (params.detector.scheme == filters::Scheme::None) {
        ++r.uncovered;
        ++r.bins.other;
        return r;
    }

    // Protected faulty fork: does the scheme cover the fault? This is
    // the trial's last fork, so it takes the snapshot by swap (the
    // trial slot inherits the scratch's old buffers and is overwritten
    // in place at the next refill).
    t0 = PhaseClock::now();
    ForkOutcome &prot =
        forkInto(fs.prot, std::move(t.master), &t.plan, true, t.targets,
                 cfg.forkMaxCycles, deadline);
    r.phases.protectedNs += nsSince(t0);
    r.sched += SchedCounters::delta(prot.core.stats(), snapStats);

    if (!prot.reachedTargets)
        ++r.hungProtected; // diagnostic; classification unchanged
    t0 = PhaseClock::now();
    const bool prot_matches = prot.reachedTargets && !prot.trapped &&
                              archEquals(prot.core, golden.core);
    r.phases.compareNs += nsSince(t0);
    classifyProtected(r, t, prot, golden.trapped, prot_matches);
    return r;
}

/**
 * Ledger trial: no golden execution at all. The bare (and, for SDC
 * faults, protected) fork is compared against the master's golden
 * checkpoint with O(threads + segments) arch/digest compares.
 */
CampaignResult
runTrialLedger(const pipeline::CoreParams &params,
               const CampaignConfig &cfg, Trial &t,
               const GoldenLedger::Entry &g, ForkScratch &fs,
               const ForkDeadline *deadline)
{
    CampaignResult r;
    ++r.injected;
    // Per-fork scheduler deltas past the snapshot's counters (see
    // runTrialGoldenFork); captured before the move-consuming fork.
    const pipeline::CoreStats snapStats = t.master.stats();

    // A provably dead injection against a genuinely-crossed, untrapped
    // golden entry: a no-fault fork reaches its targets and samples
    // exactly this entry (the ledger's master-as-golden invariant),
    // and the bare fork is bit-equivalent to a no-fault fork (see
    // Trial::provablyMasked) — masked, no fork needed. A non-crossed
    // or trapped entry falls through to the real forks: there the
    // no-fault replay freezes short of its targets and must take the
    // noisy path with its hung-bare diagnostic.
    if (t.provablyMasked && g.crossed && !g.trapped) {
        ++r.masked;
        ++r.skippedProvablyMasked;
        t.meta.flags |= kMetaSkippedProvablyMasked;
        return r;
    }

    // With no protected scheme there is no third fork, so the bare
    // fork is the trial's last and takes the snapshot by swap.
    const bool bare_is_last =
        params.detector.scheme == filters::Scheme::None;

    // A crossed, untrapped golden entry licenses the regfile fault
    // watch: erasure-before-any-read makes the bare fork equivalent to
    // a no-fault fork, and the ledger's master-as-golden invariant
    // says that fork reaches its targets and matches the entry.
    const bool arm = cfg.earlyStop && g.crossed && !g.trapped;
    auto t0 = PhaseClock::now();
    ForkOutcome &bare =
        bare_is_last
            ? forkInto(fs.bare, std::move(t.master), &t.plan, false,
                       t.targets, cfg.forkMaxCycles, deadline, arm)
            : forkInto(fs.bare, t.master, &t.plan, false, t.targets,
                       cfg.forkMaxCycles, deadline, arm);
    r.phases.bareNs += nsSince(t0);
    r.sched += SchedCounters::delta(bare.core.stats(), snapStats);
    t.meta.exitCycle = bare.exitCycle;

    if (bare.earlyMasked) {
        t.meta.flags |= kMetaEarlyTerminated;
        ++r.masked;
        ++r.earlyTerminated;
        return r;
    }

    if (!bare.reachedTargets)
        ++r.hungBare; // diagnostic only; still classified noisy below
    const bool noisy = bare.trapped != g.trapped || !bare.reachedTargets;
    if (noisy) {
        ++r.noisy;
        return r;
    }
    t0 = PhaseClock::now();
    const bool masked = GoldenLedger::matches(g, bare.core);
    r.phases.compareNs += nsSince(t0);
    if (masked) {
        ++r.masked;
        return r;
    }
    ++r.sdc;

    if (bare_is_last) {
        ++r.uncovered;
        ++r.bins.other;
        return r;
    }

    t0 = PhaseClock::now();
    ForkOutcome &prot =
        forkInto(fs.prot, std::move(t.master), &t.plan, true, t.targets,
                 cfg.forkMaxCycles, deadline);
    r.phases.protectedNs += nsSince(t0);
    r.sched += SchedCounters::delta(prot.core.stats(), snapStats);

    if (!prot.reachedTargets)
        ++r.hungProtected; // diagnostic; classification unchanged
    t0 = PhaseClock::now();
    const bool prot_matches = prot.reachedTargets && !prot.trapped &&
                              GoldenLedger::matches(g, prot.core);
    r.phases.compareNs += nsSince(t0);
    classifyProtected(r, t, prot, g.trapped, prot_matches);
    return r;
}

/**
 * Trial fault isolation: execute one trial's forks inside a
 * PanicScope with the trial's wall-clock watchdog armed. An fh_panic
 * or fh_assert raised by the (deliberately corrupted) forked machine
 * — or a watchdog expiry — surfaces here as a SimError; the trial is
 * counted in trialErrors with its injection plan logged for offline
 * reproduction, and the campaign keeps running. Under FH_STRICT=1
 * (the CI default) panics abort the process exactly as before the
 * resilience layer existed; only the explicitly opted-in watchdog
 * still throws. The guard is scoped to this worker's trial: a panic
 * on the producer thread (the master) still aborts.
 */
template <typename RunTrial>
CampaignResult
runTrialGuarded(const CampaignConfig &cfg, const Trial &t,
                RunTrial &&run_trial)
{
    ForkDeadline deadline;
    const ForkDeadline *dl = nullptr;
    if (cfg.trialTimeoutMs) {
        deadline.at = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(cfg.trialTimeoutMs);
        dl = &deadline;
    }
    try {
        PanicScope guard;
        if (t.index == cfg.panicAtTrial)
            fh_panic("campaign debug hook: forced panic in trial %llu",
                     static_cast<unsigned long long>(t.index));
        return run_trial(dl);
    } catch (const SimError &e) {
        CampaignResult r;
        ++r.injected;
        ++r.trialErrors;
        const InjectionPlan &p = t.plan;
        fh_warn("trial %llu isolated after an in-fork error: %s\n"
                "  repro: FH_STRICT=1 with seed=%llu, plan{target=%s "
                "preg=%u lsqNth=%u lsqAddrField=%d tid=%u arch=%u "
                "bit=%u}",
                static_cast<unsigned long long>(t.index),
                e.what(),
                static_cast<unsigned long long>(cfg.seed),
                to_string(p.target).c_str(), p.preg, p.lsqNth,
                p.lsqAddrField ? 1 : 0, p.tid, p.arch, p.bit);
        return r;
    }
}

} // namespace

/**
 * All loop state of the original runCampaign loops, held across
 * runRange calls so a distributed worker can execute its leased
 * ranges incrementally. One Impl serves both golden modes; the
 * ledger members stay empty in golden-fork mode.
 */
struct CampaignSession::Impl
{
    struct Pending
    {
        u32 trialIdx; ///< index into trialPool
        u32 slot;     ///< ledger checkpoint slot
    };

    Impl(const pipeline::CoreParams &params_in, const isa::Program *prog,
         const CampaignConfig &cfg_in)
        : params(params_in),
          cfg(cfg_in),
          strataSpace(cfg_in.mix),
          master(params_in, prog),
          gapRng(cfg_in.seed),
          threads(exec::resolveThreads(cfg_in.threads)),
          pool(threads),
          batchCap(std::max<u64>(u64{threads} * 4, 8))
    {
        // Warm up caches, predictors and filters.
        while (master.committedTotal() < cfg.warmupInsts &&
               !master.allHalted()) {
            master.tick();
        }
        if (master.allHalted())
            fh_fatal("workload '%s' halted during warmup; "
                     "increase its iteration count",
                     prog->name.c_str());

        // Retained post-warmup snapshot: rewind() restores the master
        // from it by buffer-reusing assignment instead of re-running
        // warmup (see CampaignSession::rewind).
        warmSnapshot = std::make_unique<pipeline::Core>(master);

        useLedger =
            !cfg.forceGoldenFork && GoldenLedger::supports(master, *prog);
        if (useLedger) {
            ledger = std::make_unique<GoldenLedger>(master);
            master.setCommitObserver(ledger.get());
        }
        batch.reserve(batchCap);
        partial.resize(batchCap);
        wave.reserve(batchCap + 8);
        scratch.resize(threads);
    }

    ~Impl()
    {
        if (useLedger)
            master.setCommitObserver(nullptr);
    }

    bool stopRequested() const
    {
        return exec::shutdownRequested() ||
               (cfg.abortFlag &&
                cfg.abortFlag->load(std::memory_order_relaxed)) ||
               (cfg.stopAfterTrials && executed >= cfg.stopAfterTrials);
    }

    /** Advance the master over one inter-injection gap; true if it ran
     *  to completion (false = the workload halted inside it). Uses
     *  Core::advance so wakeup-mode masters fast-forward through idle
     *  stretches — the post-gap machine state is bit-identical to gap
     *  individual ticks (the ledger observer only fires on commits,
     *  which never happen in a skipped cycle). */
    bool advanceGap()
    {
        const Cycle gap = gapRng.range(cfg.minGap, cfg.maxGap);
        master.advance(gap);
        if (master.allHalted()) {
            halted = true;
            return false;
        }
        return true;
    }

    /**
     * Draw trial t's plan and fill its sampling metadata. Fixed mode
     * (ciTarget == 0) keeps the legacy per-trial stream and mix draw —
     * bit-identical schedules to previous revisions — and only labels
     * the stratum post hoc. Adaptive mode rotates strata round-robin
     * by trial index with per-stratum RNG streams, so each stratum's
     * sample sequence is a pure function of (seed, stratum, count) —
     * independent of when other strata stop contributing.
     */
    InjectionPlan drawTrialPlan(u64 t, TrialMeta &meta)
    {
        InjectionPlan plan;
        if (cfg.ciTarget > 0.0) {
            const unsigned s =
                static_cast<unsigned>(t % StratumSpace::kCount);
            Rng rng =
                Rng::stream(cfg.seed ^ StratumSpace::stratumSalt(s),
                            t / StratumSpace::kCount);
            plan = strataSpace.draw(master, s, rng);
            meta.stratum = s;
        } else {
            Rng rng = Rng::stream(cfg.seed, t);
            plan = drawPlan(master, cfg.mix, rng);
            meta.stratum = StratumSpace::stratumOf(plan);
        }
        meta.structure = static_cast<u8>(plan.target);
        meta.bit = static_cast<u8>(plan.bit);
        meta.cycleBucket = StratumSpace::cycleBucket(master.cycle());
        meta.flags = 0;
        meta.pc = plan.faultPc;
        meta.exitCycle = 0;
        return plan;
    }

    RangeOutcome runRangeGoldenFork(u64 begin, u64 end,
                                    const TrialSink &sink);
    RangeOutcome runRangeLedger(u64 begin, u64 end,
                                const TrialSink &sink);
    void rewind();

    pipeline::CoreParams params;
    CampaignConfig cfg;
    StratumSpace strataSpace;
    pipeline::Core master;
    Rng gapRng;
    unsigned threads;
    exec::ThreadPool pool;
    u64 batchCap;
    bool useLedger = false;
    std::unique_ptr<GoldenLedger> ledger;

    u64 trial = 0;    ///< next producible trial index
    u64 executed = 0; ///< trials actually executed by this session
    bool halted = false;

    // One fixed-size batch of trial slots, allocated once and reused
    // across batches: a slot's snapshot is overwritten in place (a
    // flat arena memcpy plus COW memory/filter copies), so the
    // campaign keeps at most batchCap machine copies live with no
    // per-batch reallocation churn.
    std::vector<Trial> batch;
    std::vector<CampaignResult> partial;
    // Per-worker reusable fork machines, indexed by
    // ThreadPool::currentWorker() (caller = 0, workers 1..threads-1).
    std::vector<ForkScratch> scratch;
    // Ledger mode: reusable trial slots. A deque so the references
    // workers hold across a parallelFor stay stable while the
    // producer appends new slots.
    std::deque<Trial> trialPool;
    std::vector<u32> freeTrials;
    // Ledger mode: produced trials whose windows the master has not
    // fully crossed yet; bounded by window/minGap in practice.
    std::deque<Pending> inflight;
    std::vector<Pending> wave;
    std::unique_ptr<pipeline::Core> warmSnapshot;
};

/**
 * Reset the session to its post-warmup state: position() back to 0,
 * master restored from the retained warm snapshot by buffer-reusing
 * assignment, the gap schedule restarted from cfg.seed, and the
 * ledger rebuilt empty. Every downstream quantity is a pure function
 * of (config, trial index), so re-executed trials are bit-identical
 * to the first pass.
 */
void
CampaignSession::Impl::rewind()
{
    if (useLedger)
        master.setCommitObserver(nullptr);
    master = *warmSnapshot;
    gapRng = Rng(cfg.seed);
    trial = 0;
    executed = 0;
    halted = false;
    inflight.clear();
    wave.clear();
    freeTrials.clear();
    for (u32 i = 0; i < trialPool.size(); ++i)
        freeTrials.push_back(i);
    if (useLedger) {
        ledger = std::make_unique<GoldenLedger>(master);
        master.setCommitObserver(ledger.get());
    }
}

/**
 * Legacy-mode range: produce a batch of snapshots, run each trial's
 * golden + faulty forks on the pool, merge in trial order.
 */
RangeOutcome
CampaignSession::Impl::runRangeGoldenFork(u64 begin, u64 end,
                                          const TrialSink &sink)
{
    RangeOutcome out;
    CampaignPhases produced;
    const pipeline::CoreStats masterBase = master.stats();
    bool stopped = false;

    while (trial < end && !halted && !stopped) {
        u64 filled = 0;
        while (filled < batchCap && trial < end) {
            // Graceful shutdown: stop opening new trials; the batch
            // filled so far still runs and reaches the sink (drained).
            if (stopRequested()) {
                stopped = true;
                break;
            }
            // Advance the master to the next injection point.
            auto t0 = PhaseClock::now();
            const bool ran = advanceGap();
            produced.snapshotNs += nsSince(t0);
            if (!ran)
                break;

            // Skip-advance: a trial below the range (journal-replayed
            // by the caller, or leased to another worker) consumed its
            // gap — same schedule as a full run — but needs no
            // snapshot or fork work here.
            if (trial < begin) {
                ++trial;
                continue;
            }

            // The plan comes from the trial's own stream, so the
            // injection schedule is a pure function of (seed, trial)
            // regardless of how many workers execute the forks.
            t0 = PhaseClock::now();
            TrialMeta meta;
            const InjectionPlan plan = drawTrialPlan(trial, meta);

            // Record register lifetime phase before any fork runs.
            pipeline::PregPhase phase = pipeline::PregPhase::Free;
            if (plan.target == Target::RegFile)
                phase = master.pregPhase(plan.preg);
            const bool provable = provablyMasked(master, plan, phase);

            if (filled < batch.size()) {
                // Refill the slot in place: the snapshot lands in the
                // slot's existing arena (a flat memcpy), targets reuse
                // their capacity.
                Trial &slot = batch[filled];
                slot.master = master;
                slot.plan = plan;
                windowTargetsInto(slot.targets, master, cfg.window);
                slot.phase = phase;
                slot.masterStats = master.detector().stats();
                slot.index = trial;
                slot.provablyMasked = provable;
                slot.meta = meta;
            } else {
                batch.push_back(Trial{master, plan,
                                      windowTargets(master, cfg.window),
                                      phase, master.detector().stats(),
                                      trial, provable, meta});
            }
            produced.snapshotNs += nsSince(t0);
            ++filled;
            ++trial;
            ++executed;
        }

        pool.parallelFor(filled, [&](u64 k) {
            ForkScratch &fs =
                scratch[exec::ThreadPool::currentWorker()];
            partial[k] = runTrialGuarded(
                cfg, batch[k], [&](const ForkDeadline *dl) {
                    return runTrialGoldenFork(params, cfg, batch[k], fs,
                                              dl);
                });
            if (cfg.progress)
                cfg.progress->tick();
        });
        // Merge — and sink — in trial (production) order.
        for (u64 k = 0; k < filled; ++k)
            sink(batch[k].index, partial[k], batch[k].meta);
    }

    out.nextTrial = trial;
    out.halted = halted;
    out.stopped = stopped;
    out.phases = produced;
    out.sched = SchedCounters::delta(master.stats(), masterBase);
    return out;
}

/**
 * Ledger-mode range. The master advances on exactly the legacy
 * schedule (same gap ticks between the same snapshots, no extra
 * ticks), so the injection points — and therefore every
 * classification — are bit-identical to the golden-fork path. A
 * produced trial waits in a FIFO until the master's own advance
 * crosses all its commit targets (completing its ledger entry,
 * usually within the next trial or two's gaps); completed trials run
 * on the pool in waves. Windows still open at the end of the range
 * are closed by extra "drain" ticks — on the real master when nothing
 * further depends on its cycle position (final range, halt, or
 * shutdown), and otherwise on a scratch copy, so a later range still
 * sees the exact single-process schedule. Either way an entry
 * finalizes at the same commit counts with the same sampled state:
 * that is the ledger's master-as-golden argument.
 */
RangeOutcome
CampaignSession::Impl::runRangeLedger(u64 begin, u64 end,
                                      const TrialSink &sink)
{
    RangeOutcome out;
    CampaignPhases produced;
    const pipeline::CoreStats masterBase = master.stats();
    bool stopped = false;

    auto promote = [&] {
        // Entries complete in production order: per-thread targets are
        // nondecreasing, so the FIFO's front always finishes first.
        while (!inflight.empty() &&
               ledger->complete(inflight.front().slot)) {
            wave.push_back(std::move(inflight.front()));
            inflight.pop_front();
        }
    };
    auto flushWave = [&] {
        if (wave.empty())
            return;
        partial.resize(std::max(partial.size(), wave.size()));
        pool.parallelFor(wave.size(), [&](u64 k) {
            ForkScratch &fs =
                scratch[exec::ThreadPool::currentWorker()];
            Trial &t = trialPool[wave[k].trialIdx];
            partial[k] = runTrialGuarded(
                cfg, t, [&](const ForkDeadline *dl) {
                    return runTrialLedger(params, cfg, t,
                                          ledger->entry(wave[k].slot),
                                          fs, dl);
                });
            if (cfg.progress)
                cfg.progress->tick();
        });
        // Merge — and sink — in trial (production) order:
        // bit-identical for any worker count. Ledger slots and trial
        // slots both free up for the next opens.
        for (size_t k = 0; k < wave.size(); ++k) {
            const Trial &done = trialPool[wave[k].trialIdx];
            sink(done.index, partial[k], done.meta);
            ledger->release(wave[k].slot);
            freeTrials.push_back(wave[k].trialIdx);
        }
        wave.clear();
    };

    while (trial < end && !halted) {
        // Graceful shutdown: stop opening new trials. The in-flight
        // ones drain through the normal tail below — their windows
        // close, they classify, and they reach the sink — so an
        // interrupted run's record stream is always a clean prefix.
        if (stopRequested()) {
            stopped = true;
            break;
        }
        // Advance the master to the next injection point — the exact
        // legacy schedule. Ledger entries of earlier trials complete
        // passively inside these ticks via the commit observer.
        auto t0 = PhaseClock::now();
        const bool ran = advanceGap();
        produced.goldenNs += nsSince(t0);
        if (!ran)
            break;

        // Skip-advance (see runRangeGoldenFork): gap consumed, no
        // snapshot, no ledger entry, no forks.
        if (trial < begin) {
            ++trial;
            continue;
        }

        t0 = PhaseClock::now();
        TrialMeta meta;
        const InjectionPlan plan = drawTrialPlan(trial, meta);
        pipeline::PregPhase phase = pipeline::PregPhase::Free;
        if (plan.target == Target::RegFile)
            phase = master.pregPhase(plan.preg);
        const bool provable = provablyMasked(master, plan, phase);

        u32 tidx;
        if (!freeTrials.empty()) {
            // Reuse a retired trial slot: the snapshot lands in its
            // existing arena (a flat memcpy), targets reuse capacity.
            tidx = freeTrials.back();
            freeTrials.pop_back();
            Trial &tslot = trialPool[tidx];
            tslot.master = master;
            tslot.plan = plan;
            windowTargetsInto(tslot.targets, master, cfg.window);
            tslot.phase = phase;
            tslot.masterStats = master.detector().stats();
            tslot.index = trial;
            tslot.provablyMasked = provable;
            tslot.meta = meta;
        } else {
            tidx = static_cast<u32>(trialPool.size());
            trialPool.push_back(Trial{master, plan,
                                      windowTargets(master, cfg.window),
                                      phase, master.detector().stats(),
                                      trial, provable, meta});
        }
        const u32 slot = ledger->open(trialPool[tidx].targets);
        inflight.push_back({tidx, slot});
        produced.snapshotNs += nsSince(t0);
        ++trial;
        ++executed;

        promote();
        if (wave.size() >= batchCap)
            flushWave();
    }

    // Drain: the last trials' windows extend past the range's final
    // snapshot. When this is the campaign's end (or the master halted
    // / the run was stopped — terminal either way), the schedule no
    // longer matters and the real master ticks until the youngest
    // entry completes, bounded like a fork. A non-terminal range
    // instead drains a scratch copy: identical machine, identical
    // commit crossings, identical sampled entries — but the real
    // master stays at its exact schedule position for the next range.
    auto t0 = PhaseClock::now();
    if (!inflight.empty()) {
        const bool terminal =
            end >= cfg.injections || halted || stopped;
        pipeline::Core *drainee = &master;
        std::unique_ptr<pipeline::Core> drainCopy;
        if (!terminal) {
            drainCopy = std::make_unique<pipeline::Core>(master);
            master.setCommitObserver(nullptr);
            ledger->retarget(*drainCopy);
            drainCopy->setCommitObserver(ledger.get());
            drainee = drainCopy.get();
        }
        Cycle drained = 0;
        while (!ledger->complete(inflight.back().slot) &&
               !drainee->allHalted() && drained < cfg.forkMaxCycles) {
            drainee->tick();
            ++drained;
        }
        if (!ledger->complete(inflight.back().slot))
            ledger->forceFinalizeAll(); // hung master; see GoldenLedger
        if (!terminal) {
            drainCopy->setCommitObserver(nullptr);
            ledger->retarget(master);
            master.setCommitObserver(ledger.get());
        }
    }
    produced.goldenNs += nsSince(t0);

    promote();
    fh_assert(inflight.empty(), "ledger drain left incomplete entries");
    flushWave();

    out.nextTrial = trial;
    out.halted = halted;
    out.stopped = stopped;
    out.phases = produced;
    out.sched = SchedCounters::delta(master.stats(), masterBase);
    return out;
}

CampaignSession::CampaignSession(const pipeline::CoreParams &params,
                                 const isa::Program *prog,
                                 const CampaignConfig &cfg)
    : impl_(std::make_unique<Impl>(params, prog, cfg))
{
}

CampaignSession::~CampaignSession() = default;

u64
CampaignSession::position() const
{
    return impl_->trial;
}

void
CampaignSession::rewind()
{
    impl_->rewind();
}

const StratumSpace &
CampaignSession::strata() const
{
    return impl_->strataSpace;
}

RangeOutcome
CampaignSession::runRange(u64 begin, u64 end, const TrialSink &sink)
{
    fh_assert(begin >= impl_->trial,
              "campaign ranges must be visited in increasing order "
              "(begin %llu < position %llu); build a fresh session",
              static_cast<unsigned long long>(begin),
              static_cast<unsigned long long>(impl_->trial));
    end = std::min(end, impl_->cfg.injections);
    if (impl_->halted || impl_->trial >= end) {
        RangeOutcome out;
        out.nextTrial = impl_->trial;
        out.halted = impl_->halted;
        return out;
    }
    return impl_->useLedger
               ? impl_->runRangeLedger(begin, end, sink)
               : impl_->runRangeGoldenFork(begin, end, sink);
}

CampaignResult
runCampaign(const pipeline::CoreParams &params, const isa::Program *prog,
            const CampaignConfig &cfg)
{
    // The session runs warmup; a workload that halts inside it is
    // fatal before any journal is touched, exactly as before.
    CampaignSession session(params, prog, cfg);

    // Durable progress: open (and replay) the trial journal before
    // the first injection point. The header pins the configuration,
    // so a resumed run either continues bit-identically or refuses.
    CampaignResult result;
    u64 start = 0;
    std::unique_ptr<TrialJournal> journal;
    if (!cfg.journalPath.empty()) {
        journal = std::make_unique<TrialJournal>(
            cfg.journalPath, cfg,
            filters::to_string(params.detector.scheme));
        if (journal->replayCount() > 0)
            fh_inform("journal '%s': replaying %llu completed trial(s)",
                      cfg.journalPath.c_str(),
                      static_cast<unsigned long long>(
                          journal->replayCount()));
        // A journaled trial's outcome is already known; the session
        // skip-advances the master over its gap (same schedule as the
        // original run), so only the counters are added here. The
        // profile rebuilds from the journaled (delta, meta) pairs —
        // the same fold an uninterrupted run performs in its sink.
        for (u64 t = 0; t < journal->replayCount(); ++t) {
            const CampaignResult &delta = journal->replayed(t);
            result += delta;
            result.profile.addTrial(delta, journal->replayedMeta(t));
            ++result.replayedTrials;
            if (cfg.progress)
                cfg.progress->tick();
        }
        start = journal->replayCount();
    }

    const TrialSink sink = [&](u64 trial, const CampaignResult &delta,
                               const TrialMeta &meta) {
        result += delta;
        result.profile.addTrial(delta, meta);
        if (journal)
            journal->record(trial, delta, meta);
    };

    bool stopped = false;
    if (cfg.ciTarget <= 0.0) {
        // Fixed-count legacy mode: one range covers the whole
        // campaign, bit-identical to previous revisions.
        RangeOutcome out = session.runRange(start, cfg.injections, sink);
        stopped = out.stopped;
        result.phases += out.phases;
        result.sched += out.sched;
    } else {
        // Adaptive mode: drive the session one wave at a time and
        // evaluate the pooled CI half-width only at wave boundaries,
        // on counters merged in trial order. The stop decision is a
        // pure function of the merged trial prefix, so every thread
        // count — and a journal resume, which rebuilds the same
        // prefix above — stops at the same wave; the dist coordinator
        // applies the identical rule to its merged stream.
        const StratumSpace &space = session.strata();
        const u64 wave = std::max<u64>(cfg.ciWave, 1);
        u64 pos = start;
        while (pos < cfg.injections) {
            if (pos > 0 && pos % wave == 0 &&
                pooledSdcHalfWidth(result.profile, space) <=
                    cfg.ciTarget) {
                result.ciStopped = true;
                break;
            }
            const u64 waveEnd =
                std::min((pos / wave + 1) * wave, cfg.injections);
            RangeOutcome out = session.runRange(pos, waveEnd, sink);
            result.phases += out.phases;
            result.sched += out.sched;
            pos = out.nextTrial;
            if (out.halted)
                break;
            if (out.stopped) {
                stopped = true;
                break;
            }
        }
    }
    result.partial = stopped;
    return result;
}

} // namespace fh::fault
