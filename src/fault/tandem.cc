#include "fault/tandem.hh"

#include <algorithm>
#include <utility>

#include "sim/error.hh"

namespace fh::fault
{

namespace
{

/**
 * Cycles per watchdog check: small enough that an expired deadline is
 * noticed within tens of microseconds, large enough that the clock
 * read is noise. Slicing runUntilCommitted is behavior-preserving —
 * its done/frozen checks are pure functions of machine state, so N
 * bounded calls tick exactly the same sequence as one call.
 */
constexpr Cycle kWatchdogSlice = 4096;

} // namespace

std::vector<u64>
windowTargets(const pipeline::Core &base, u64 window)
{
    std::vector<u64> targets;
    windowTargetsInto(targets, base, window);
    return targets;
}

void
windowTargetsInto(std::vector<u64> &out, const pipeline::Core &base,
                  u64 window)
{
    out.resize(base.numThreads());
    for (unsigned tid = 0; tid < base.numThreads(); ++tid)
        out[tid] = base.committed(tid) + window;
}

ForkOutcome
runFork(const pipeline::Core &base, const InjectionPlan *plan,
        bool detector_enabled, const std::vector<u64> &targets,
        Cycle max_cycles, const ForkDeadline *deadline,
        bool arm_regfile_watch)
{
    return runFork(pipeline::Core(base), plan, detector_enabled, targets,
                   max_cycles, deadline, arm_regfile_watch);
}

namespace
{

/** Shared tail of every fork flavor: out.core already holds the forked
 *  machine state; configure it, inject, and run the window. */
void
runPrepared(ForkOutcome &out, const InjectionPlan *plan,
            bool detector_enabled, const std::vector<u64> &targets,
            Cycle max_cycles, const ForkDeadline *deadline,
            bool arm_regfile_watch)
{
    out.reachedTargets = false;
    out.trapped = false;
    out.earlyMasked = false;
    // The fork is a copy of a (possibly observed) campaign master;
    // the ledger must only ever see the master itself.
    out.core.setCommitObserver(nullptr);
    out.core.setDetectorEnabled(detector_enabled);
    // Classification forks (detector off) stop dead front-end work on
    // threads frozen at their commit target; the protected fork keeps
    // the full machine ticking so its detector statistics — which the
    // Figure 11 binning reads — are untouched.
    out.core.setQuiesceFrozen(!detector_enabled);
    // Freeze each thread at exactly its commit target so both tandem
    // copies sample architectural state at the same per-thread point.
    for (unsigned tid = 0; tid < out.core.numThreads(); ++tid)
        out.core.threadOptions(tid).stopAfterInsts = targets[tid];
    if (plan)
        apply(out.core, *plan);
    const bool watching = arm_regfile_watch && plan &&
                          plan->target == Target::RegFile;
    if (watching)
        out.core.armRegfileWatch(plan->preg);
    if (!deadline) {
        out.reachedTargets =
            out.core.runUntilCommitted(targets, max_cycles);
    } else {
        // Watchdogged: run in bounded slices, checking the wall clock
        // between them. runUntilCommitted returning true (targets
        // crossed, no further ticks) ends the loop; a false return
        // with budget left just means the slice ran out — unless the
        // machine is frozen short of its targets, in which case more
        // ticking cannot help and we bail like the unsliced call.
        Cycle spent = 0;
        out.reachedTargets = out.core.runUntilCommitted(targets, 0);
        while (!out.reachedTargets && spent < max_cycles) {
            if (std::chrono::steady_clock::now() >= deadline->at)
                throw SimError(__FILE__, __LINE__,
                               "trial wall-clock budget exceeded "
                               "(trialTimeoutMs watchdog)");
            const Cycle slice =
                std::min(kWatchdogSlice, max_cycles - spent);
            const Cycle before = out.core.cycle();
            out.reachedTargets =
                out.core.runUntilCommitted(targets, slice);
            const Cycle ticked = out.core.cycle() - before;
            spent += slice;
            if (!out.reachedTargets && ticked < slice)
                break; // frozen short of a target: hung, bail now
            if (watching && out.core.regfileWatchErased())
                break; // fault erased unread: outcome is decided
        }
    }
    if (watching) {
        out.earlyMasked = out.core.regfileWatchErased();
        out.core.disarmRegfileWatch();
    }
    out.exitCycle = out.core.cycle();
    out.trapped = out.core.anyTrap();
}

} // namespace

ForkOutcome
runFork(pipeline::Core &&base, const InjectionPlan *plan,
        bool detector_enabled, const std::vector<u64> &targets,
        Cycle max_cycles, const ForkDeadline *deadline,
        bool arm_regfile_watch)
{
    ForkOutcome out{std::move(base), false, false};
    runPrepared(out, plan, detector_enabled, targets, max_cycles,
                deadline, arm_regfile_watch);
    return out;
}

void
runForkInto(ForkOutcome &out, const pipeline::Core &base,
            const InjectionPlan *plan, bool detector_enabled,
            const std::vector<u64> &targets, Cycle max_cycles,
            const ForkDeadline *deadline, bool arm_regfile_watch)
{
    out.core = base;
    runPrepared(out, plan, detector_enabled, targets, max_cycles,
                deadline, arm_regfile_watch);
}

void
runForkInto(ForkOutcome &out, pipeline::Core &&base,
            const InjectionPlan *plan, bool detector_enabled,
            const std::vector<u64> &targets, Cycle max_cycles,
            const ForkDeadline *deadline, bool arm_regfile_watch)
{
    std::swap(out.core, base);
    runPrepared(out, plan, detector_enabled, targets, max_cycles,
                deadline, arm_regfile_watch);
}

bool
archEquals(const pipeline::Core &x, const pipeline::Core &y)
{
    if (x.numThreads() != y.numThreads())
        return false;
    for (unsigned tid = 0; tid < x.numThreads(); ++tid) {
        if (x.archState(tid) != y.archState(tid))
            return false;
    }
    return x.memory().sameContents(y.memory());
}

} // namespace fh::fault
