#include "fault/tandem.hh"

#include <utility>

namespace fh::fault
{

std::vector<u64>
windowTargets(const pipeline::Core &base, u64 window)
{
    std::vector<u64> targets(base.numThreads());
    for (unsigned tid = 0; tid < base.numThreads(); ++tid)
        targets[tid] = base.committed(tid) + window;
    return targets;
}

ForkOutcome
runFork(const pipeline::Core &base, const InjectionPlan *plan,
        bool detector_enabled, const std::vector<u64> &targets,
        Cycle max_cycles)
{
    return runFork(pipeline::Core(base), plan, detector_enabled, targets,
                   max_cycles);
}

ForkOutcome
runFork(pipeline::Core &&base, const InjectionPlan *plan,
        bool detector_enabled, const std::vector<u64> &targets,
        Cycle max_cycles)
{
    ForkOutcome out{std::move(base), false, false};
    // The fork is a copy of a (possibly observed) campaign master;
    // the ledger must only ever see the master itself.
    out.core.setCommitObserver(nullptr);
    out.core.setDetectorEnabled(detector_enabled);
    // Classification forks (detector off) stop dead front-end work on
    // threads frozen at their commit target; the protected fork keeps
    // the full machine ticking so its detector statistics — which the
    // Figure 11 binning reads — are untouched.
    out.core.setQuiesceFrozen(!detector_enabled);
    // Freeze each thread at exactly its commit target so both tandem
    // copies sample architectural state at the same per-thread point.
    for (unsigned tid = 0; tid < out.core.numThreads(); ++tid)
        out.core.threadOptions(tid).stopAfterInsts = targets[tid];
    if (plan)
        apply(out.core, *plan);
    out.reachedTargets = out.core.runUntilCommitted(targets, max_cycles);
    out.trapped = out.core.anyTrap();
    return out;
}

bool
archEquals(const pipeline::Core &x, const pipeline::Core &y)
{
    if (x.numThreads() != y.numThreads())
        return false;
    for (unsigned tid = 0; tid < x.numThreads(); ++tid) {
        if (x.archState(tid) != y.archState(tid))
            return false;
    }
    return x.memory().sameContents(y.memory());
}

} // namespace fh::fault
