/**
 * @file
 * The machine-readable FH_JSON campaign record, shared by fhsim and
 * the fault_injection_campaign example so scripts and CI parse one
 * schema: configuration, classification counts (including the
 * resilience-layer trialErrors / hung-fork counters), Figure 11 bins,
 * the wall-time phase breakdown, and a "partial" marker set when the
 * campaign was interrupted and drained instead of running to
 * completion.
 */

#ifndef FH_FAULT_CAMPAIGN_JSON_HH
#define FH_FAULT_CAMPAIGN_JSON_HH

#include <string>

#include "fault/campaign.hh"

namespace fh::fault
{

/**
 * Distributed-fabric health for the FH_JSON "fabric" block: host-local
 * observability (like "scheduler" and the phase breakdown), never on
 * the wire and never classification. Filled from dist::DistStats by
 * the coordinator drivers; single-process runs omit the block
 * entirely, keeping their JSON byte-identical to previous revisions.
 */
struct FabricHealth
{
    unsigned workersJoined = 0;
    unsigned workersDied = 0;
    u64 crcErrors = 0;
    u64 reconnects = 0;
    u64 rangesIssued = 0;
    u64 rangesReissued = 0;
    u64 quarantined = 0;
    bool degraded = false; ///< tail ran in-process, fleet was dead
};

/**
 * Write the campaign record to path ("-" = stdout). workers is the
 * resolved worker-thread count, seconds the campaign wall time.
 * fabric, when non-null, adds the distributed-run health block.
 * Returns false (with a warning) if the file cannot be opened.
 */
bool writeCampaignJson(const std::string &path, const std::string &bench,
                       unsigned workers, const CampaignConfig &cfg,
                       const CampaignResult &r, double seconds,
                       const FabricHealth *fabric = nullptr);

} // namespace fh::fault

#endif // FH_FAULT_CAMPAIGN_JSON_HH
