/**
 * @file
 * The machine-readable FH_JSON campaign record, shared by fhsim and
 * the fault_injection_campaign example so scripts and CI parse one
 * schema: configuration, classification counts (including the
 * resilience-layer trialErrors / hung-fork counters), Figure 11 bins,
 * the wall-time phase breakdown, and a "partial" marker set when the
 * campaign was interrupted and drained instead of running to
 * completion.
 */

#ifndef FH_FAULT_CAMPAIGN_JSON_HH
#define FH_FAULT_CAMPAIGN_JSON_HH

#include <string>

#include "fault/campaign.hh"

namespace fh::fault
{

/**
 * Write the campaign record to path ("-" = stdout). workers is the
 * resolved worker-thread count, seconds the campaign wall time.
 * Returns false (with a warning) if the file cannot be opened.
 */
bool writeCampaignJson(const std::string &path, const std::string &bench,
                       unsigned workers, const CampaignConfig &cfg,
                       const CampaignResult &r, double seconds);

} // namespace fh::fault

#endif // FH_FAULT_CAMPAIGN_JSON_HH
