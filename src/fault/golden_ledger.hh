/**
 * @file
 * Golden checkpoint ledger: the fault campaign's replacement for the
 * per-trial golden fork.
 *
 * The legacy classifier forked the master at every injection point
 * and re-executed a fault-free ("golden") copy of the run window just
 * to sample what correct architectural state looks like at the
 * trial's per-thread commit targets. But the serially advancing
 * master *is* that fault-free execution: every workload gives each
 * SMT thread a private memory segment (guard gaps, r1-relative
 * addressing), so a thread's committed values are a pure function of
 * its own commit count — independent of scheduling, of the other
 * threads, and of whether the detector is checking. The master
 * crossing commit count N on thread t therefore has exactly the
 * architectural register state, trap status and segment contents a
 * frozen golden fork would show at target N.
 *
 * The ledger rides the master's retirement stream (CommitObserver):
 * opening an entry registers one watch per thread at the trial's
 * commit target; when the master crosses a watch the ledger samples
 * that thread's ArchState, its segment's incremental content digest
 * (mem::Memory::segmentDigest) and its trap status into the entry.
 * Once every thread has crossed (or halted — a golden fork would
 * freeze halted at the same count), the entry is complete and a
 * worker can classify bare/protected forks against it with O(threads
 * + segments) compares — no golden execution, no memory sweeps.
 *
 * Not thread-safe by design: all mutation happens on the producer
 * thread between worker waves, and workers only read entries of
 * trials whose windows the master has already fully crossed.
 */

#ifndef FH_FAULT_GOLDEN_LEDGER_HH
#define FH_FAULT_GOLDEN_LEDGER_HH

#include <deque>
#include <vector>

#include "isa/functional.hh"
#include "pipeline/core.hh"
#include "sim/types.hh"

namespace fh::fault
{

/** See file comment. */
class GoldenLedger final : public pipeline::CommitObserver
{
  public:
    /**
     * What a frozen golden fork of one trial would have looked like:
     * per-thread architectural state at the trial's commit targets,
     * per-segment memory digests (each sampled at its owner thread's
     * crossing), and whether any thread trapped at or before its
     * target.
     */
    struct Entry
    {
        std::vector<u64> targets; ///< per SMT thread
        /** Per thread, at crossing: isa::archStateDigest of the
         *  thread's ArchState, sampled from the master's O(1)
         *  incremental digest (Core::archDigest — trustworthy there
         *  because the master is fault-free). Fork-side compares
         *  recompute from the fork's materialized archState(). */
        std::vector<u64> archDigests;
        std::vector<u64> digests;          ///< per segment (== thread)
        bool trapped = false;
        /** True iff every thread finalized at a genuine commit-target
         *  crossing (not a halt, pre-halted open, or force-finalize).
         *  Exactly then a no-fault fork of the snapshot reaches its
         *  targets and samples this entry's state — the precondition
         *  for classifying provably-masked trials without forking. */
        bool crossed = true;
        unsigned remaining = 0; ///< threads not yet crossed
    };

    /** The ledger observes exactly this master (attach separately via
     *  master.setCommitObserver(&ledger)). */
    explicit GoldenLedger(pipeline::Core &master);

    /**
     * Swap the observed master. Used by CampaignSession's mid-campaign
     * drain: a non-final range closes its last windows by ticking a
     * *copy* of the master (so the injection-point schedule of later
     * ranges is untouched), and during those ticks the ledger must
     * sample the copy. The copy is machine-identical to the master, so
     * an entry finalized at commit count N on either holds the same
     * state — the master-as-golden argument is unchanged. Retarget
     * back to the real master before it ticks again.
     */
    void retarget(pipeline::Core &master) { master_ = &master; }

    /**
     * The master-as-golden argument needs the thread <-> segment
     * bijection: one memory segment per SMT thread, in thread order,
     * based at the thread's r1 data base. Campaigns on programs that
     * break this (none of the built-in workloads do) fall back to the
     * explicit golden fork.
     */
    static bool supports(const pipeline::Core &master,
                         const isa::Program &prog);

    /**
     * Open an entry for a trial snapshotted at the master's current
     * state, with the given per-thread commit targets (nondecreasing
     * across successive opens, since targets are committed + window).
     * Returns the entry's slot. Threads already halted finalize
     * immediately.
     */
    u32 open(const std::vector<u64> &targets);

    /** True once every thread crossed its target (entry readable). */
    bool complete(u32 slot) const
    {
        return entries_[slot].remaining == 0;
    }

    const Entry &entry(u32 slot) const { return entries_[slot]; }

    /** Return a classified trial's slot to the free list. */
    void release(u32 slot);

    /**
     * Safety valve for a master that stops committing before the last
     * windows close (cannot happen with the built-in workloads, which
     * halt rather than hang): finalize every pending watch from the
     * master's current state, mirroring how a hung golden fork would
     * have been compared at its cycle bound.
     */
    void forceFinalizeAll();

    /**
     * Does a frozen fork match this golden checkpoint? Per-thread
     * arch-digest equality plus per-segment memory-digest equality —
     * the digest-based replacement for archEquals' full-memory sweep
     * and full-ArchState compare. Digest equality is taken as content
     * equality (a collision needs ~2^64 trials; see DESIGN.md).
     */
    static bool matches(const Entry &e, const pipeline::Core &fork);

    // CommitObserver — fired by the master's commit stage.
    void onCommit(const pipeline::Core &core, unsigned tid) override;
    void onThreadHalted(const pipeline::Core &core,
                        unsigned tid) override;

  private:
    struct Watch
    {
        u32 slot;
        u64 target;
    };

    /** Sample thread tid's state from the master into an entry. */
    void finalizeThread(u32 slot, unsigned tid);

    pipeline::Core *master_;
    std::vector<Entry> entries_;
    std::vector<u32> freeSlots_;
    /** Per-thread pending watches, FIFO by target (targets are
     *  nondecreasing across opens, so crossing pops from the front). */
    std::vector<std::deque<Watch>> watches_;
};

} // namespace fh::fault

#endif // FH_FAULT_GOLDEN_LEDGER_HH
