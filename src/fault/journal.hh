/**
 * @file
 * Trial journal: durable, append-only progress for fault-injection
 * campaigns, and the deterministic-resume half of the campaign
 * resilience layer.
 *
 * A paper-scale campaign (15000 injections x 11 workloads x several
 * schemes) runs for hours; an OOM kill or a ^C at trial 14000 must
 * not cost the first 14000 trials. The journal records one JSONL line
 * per *completed* trial — its index, its counter deltas into
 * CampaignResult, and its sampling metadata (TrialMeta) — written in
 * trial order on the producer thread at merge time and flushed
 * immediately. The metadata makes the record stream self-sufficient
 * for the statistical engine: a resumed run rebuilds the vulnerability
 * profile and the CI estimator state from (delta, meta) pairs alone,
 * so an adaptive campaign resumes to the identical stop wave.
 *
 * Resume is deterministic by construction: everything downstream of
 * the master's advance is a pure function of (seed, trial index), and
 * the master's advance itself is a pure function of the gap schedule
 * (gapRng is seeded). A restarted campaign therefore replays only the
 * cheap serial master advance over the journaled prefix — same gaps,
 * same ticks, bit-identical machine — skips the forks of journaled
 * trials (their deltas are added straight from the journal), and
 * executes the remainder exactly as the uninterrupted run would have.
 * The final CampaignResult counters and SDC bins equal an
 * uninterrupted run's exactly (wall-time phase accounting excepted —
 * it was never deterministic).
 *
 * The header line pins the campaign identity (seed, injections,
 * window, schedule, mix, scheme); resuming against a journal written
 * by a different configuration is a user error (fh_fatal), not a
 * silent wrong answer. Every record carries a CRC32C over its values
 * (journal v3), splitting damage into two cases with opposite
 * handling: a bad record with nothing valid after it is a torn tail
 * from a crash mid-write — healed by dropping it (the trial
 * re-executes); a bad record with valid records after it is mid-file
 * corruption — resume refuses with the exact record, because silently
 * skipping or re-executing an interior trial would fork the
 * campaign's history.
 */

#ifndef FH_FAULT_JOURNAL_HH
#define FH_FAULT_JOURNAL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "fault/campaign.hh"

namespace fh::fault
{

/**
 * The counters serialized per completed trial, in record-array order:
 * the journal's JSONL "d" array and the distributed fabric's TRIAL
 * frames carry exactly this vector, so a coordinator can journal a
 * worker's records verbatim. The wall-time phases and the
 * partial/replayed markers are deliberately absent: phases were never
 * deterministic, and the markers describe a run, not a trial.
 */
constexpr size_t kTrialCounters = 19;

/** Flatten one trial's counter deltas into record-array order. */
void packTrialCounters(const CampaignResult &r,
                       u64 (&d)[kTrialCounters]);

/** Inverse of packTrialCounters (phases/markers zero). */
CampaignResult unpackTrialCounters(const u64 (&d)[kTrialCounters]);

/**
 * The sampling metadata serialized per trial, in record-array order:
 * the journal's "m" array and the dist TRIAL frames carry exactly
 * this vector next to the counters.
 */
constexpr size_t kTrialMetaFields = 7;

/** Flatten one trial's TrialMeta into record-array order. */
void packTrialMeta(const TrialMeta &m, u64 (&v)[kTrialMetaFields]);

/** Inverse of packTrialMeta (narrow fields truncate to their width). */
TrialMeta unpackTrialMeta(const u64 (&v)[kTrialMetaFields]);

class TrialJournal
{
  public:
    /**
     * Open (or create) the journal at path for the campaign described
     * by cfg/scheme. An existing journal must carry a matching header
     * (else fh_fatal); its well-formed prefix of trial records is
     * loaded for replay and subsequent records append after it.
     */
    TrialJournal(const std::string &path, const CampaignConfig &cfg,
                 const std::string &scheme);
    ~TrialJournal();

    TrialJournal(const TrialJournal &) = delete;
    TrialJournal &operator=(const TrialJournal &) = delete;

    /**
     * Trials restored from the file: records are written in trial
     * order, so the journaled set is always the prefix [0, count).
     */
    u64 replayCount() const { return replayed_.size(); }

    /** Counter deltas of a journaled trial (trial < replayCount()). */
    const CampaignResult &replayed(u64 trial) const
    {
        return replayed_[trial];
    }

    /** Sampling metadata of a journaled trial (trial < replayCount()). */
    const TrialMeta &replayedMeta(u64 trial) const
    {
        return replayedMeta_[trial];
    }

    /**
     * Append one completed trial's deltas + metadata and flush, so the
     * record survives any later crash. Must be called in trial order,
     * starting at replayCount().
     */
    void record(u64 trial, const CampaignResult &delta,
                const TrialMeta &meta);

  private:
    std::string path_;
    std::FILE *out_ = nullptr;
    u64 nextTrial_ = 0;
    std::vector<CampaignResult> replayed_;
    std::vector<TrialMeta> replayedMeta_;
};

} // namespace fh::fault

#endif // FH_FAULT_JOURNAL_HH
