#include "fault/injector.hh"

#include <bit>

namespace fh::fault
{

std::string
to_string(Target target)
{
    switch (target) {
      case Target::RegFile: return "regfile";
      case Target::Lsq: return "lsq";
      case Target::Rename: return "rename";
      case Target::None: return "idle";
    }
    return "?";
}

InjectionPlan
drawPlan(const pipeline::Core &core, const InjectionMix &mix, Rng &rng)
{
    InjectionPlan plan;
    const double r = rng.uniform();
    if (r < mix.renameFrac) {
        plan.target = Target::Rename;
        plan.tid = static_cast<unsigned>(rng.below(core.numThreads()));
        plan.arch =
            1 + static_cast<unsigned>(rng.below(isa::numArchRegs - 1));
        const unsigned tag_bits = static_cast<unsigned>(
            std::bit_width(core.numPhysRegs() - 1u));
        plan.bit = static_cast<unsigned>(rng.below(tag_bits));
    } else if (r < mix.renameFrac + mix.lsqFrac) {
        plan.target = Target::Lsq;
        plan.lsqNth = static_cast<unsigned>(
            rng.below(core.params().lsqSize));
        plan.lsqAddrField = rng.chance(0.5);
        plan.bit = static_cast<unsigned>(rng.below(wordBits));
    } else {
        plan.target = Target::RegFile;
        plan.bit = static_cast<unsigned>(rng.below(wordBits));
        if (rng.chance(mix.inflightFrac)) {
            // Datapath-fault emulation: corrupt a just-produced value.
            // If nothing completed near this cycle the strike hits
            // idle logic and is trivially masked.
            plan.inflightDraw = true;
            auto inflight = core.inflightDestPregs();
            if (inflight.empty()) {
                plan.target = Target::None;
            } else {
                plan.preg = inflight[rng.below(inflight.size())];
            }
        } else {
            plan.preg =
                static_cast<unsigned>(rng.below(core.numPhysRegs()));
        }
    }
    attributePlan(core, plan);
    return plan;
}

void
attributePlan(const pipeline::Core &core, InjectionPlan &plan)
{
    switch (plan.target) {
      case Target::RegFile:
        plan.faultPc = core.pcOfDestPreg(plan.preg);
        break;
      case Target::Lsq: {
        const unsigned occupied = core.lsqOccupied();
        plan.faultPc =
            occupied ? core.pcOfLsqNth(plan.lsqNth % occupied) : 0;
        break;
      }
      case Target::Rename:
        plan.faultPc = core.nextCommitPcOf(plan.tid);
        break;
      case Target::None:
        plan.faultPc = 0;
        break;
    }
}

bool
apply(pipeline::Core &core, const InjectionPlan &plan)
{
    switch (plan.target) {
      case Target::RegFile:
        core.injectRegfileBit(plan.preg, plan.bit);
        return true;
      case Target::Lsq: {
        unsigned occupied = core.lsqOccupied();
        if (occupied == 0)
            return false;
        return core.injectLsqBit(plan.lsqNth % occupied,
                                 plan.lsqAddrField, plan.bit);
      }
      case Target::Rename:
        core.injectRenameBit(plan.tid, plan.arch, plan.bit);
        return true;
      case Target::None:
        return false;
    }
    return false;
}

} // namespace fh::fault
