#include "fault/journal.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "sim/crc32c.hh"
#include "sim/logging.hh"

namespace fh::fault
{

void
packTrialCounters(const CampaignResult &r, u64 (&d)[kTrialCounters])
{
    d[0] = r.injected;
    d[1] = r.masked;
    d[2] = r.noisy;
    d[3] = r.sdc;
    d[4] = r.recovered;
    d[5] = r.detected;
    d[6] = r.uncovered;
    d[7] = r.trialErrors;
    d[8] = r.hungBare;
    d[9] = r.hungProtected;
    d[10] = r.bins.covered;
    d[11] = r.bins.secondLevelMasked;
    d[12] = r.bins.completedReg;
    d[13] = r.bins.archReg;
    d[14] = r.bins.renameUncovered;
    d[15] = r.bins.noTrigger;
    d[16] = r.bins.other;
    d[17] = r.skippedProvablyMasked;
    d[18] = r.earlyTerminated;
}

CampaignResult
unpackTrialCounters(const u64 (&d)[kTrialCounters])
{
    CampaignResult r;
    r.injected = d[0];
    r.masked = d[1];
    r.noisy = d[2];
    r.sdc = d[3];
    r.recovered = d[4];
    r.detected = d[5];
    r.uncovered = d[6];
    r.trialErrors = d[7];
    r.hungBare = d[8];
    r.hungProtected = d[9];
    r.bins.covered = d[10];
    r.bins.secondLevelMasked = d[11];
    r.bins.completedReg = d[12];
    r.bins.archReg = d[13];
    r.bins.renameUncovered = d[14];
    r.bins.noTrigger = d[15];
    r.bins.other = d[16];
    r.skippedProvablyMasked = d[17];
    r.earlyTerminated = d[18];
    return r;
}

void
packTrialMeta(const TrialMeta &m, u64 (&v)[kTrialMetaFields])
{
    v[0] = m.stratum;
    v[1] = m.structure;
    v[2] = m.bit;
    v[3] = m.cycleBucket;
    v[4] = m.flags;
    v[5] = m.pc;
    v[6] = m.exitCycle;
}

TrialMeta
unpackTrialMeta(const u64 (&v)[kTrialMetaFields])
{
    TrialMeta m;
    m.stratum = static_cast<u32>(v[0]);
    m.structure = static_cast<u8>(v[1]);
    m.bit = static_cast<u8>(v[2]);
    m.cycleBucket = static_cast<u8>(v[3]);
    m.flags = static_cast<u8>(v[4]);
    m.pc = v[5];
    m.exitCycle = v[6];
    return m;
}

namespace
{

/**
 * The header pins everything the trial outcomes are a function of:
 * the seed (gap schedule + per-trial streams), the trial count and
 * window, the schedule bounds, the fork cycle budget, the injection
 * mix, and the detector scheme. Matching is exact string equality of
 * this line, so any config drift — including a float formatting
 * change — refuses to resume rather than resuming wrong.
 */
std::string
headerLine(const CampaignConfig &cfg, const std::string &scheme)
{
    return csprintf(
        "{\"fh_trial_journal\": 3, \"scheme\": \"%s\", \"seed\": %llu, "
        "\"injections\": %llu, \"window\": %llu, \"warmup\": %llu, "
        "\"min_gap\": %llu, \"max_gap\": %llu, "
        "\"fork_max_cycles\": %llu, \"rename_frac\": %.17g, "
        "\"lsq_frac\": %.17g, \"inflight_frac\": %.17g, "
        "\"early_stop\": %d, \"ci_target\": %.17g, \"ci_wave\": %llu}",
        scheme.c_str(), static_cast<unsigned long long>(cfg.seed),
        static_cast<unsigned long long>(cfg.injections),
        static_cast<unsigned long long>(cfg.window),
        static_cast<unsigned long long>(cfg.warmupInsts),
        static_cast<unsigned long long>(cfg.minGap),
        static_cast<unsigned long long>(cfg.maxGap),
        static_cast<unsigned long long>(cfg.forkMaxCycles),
        cfg.mix.renameFrac, cfg.mix.lsqFrac, cfg.mix.inflightFrac,
        cfg.earlyStop ? 1 : 0, cfg.ciTarget,
        static_cast<unsigned long long>(cfg.ciWave));
}

/**
 * CRC32C over the record's *values* (trial index, counters, metadata —
 * 27 u64s packed little-endian), not its JSON text: two textual
 * spellings of the same numbers are the same record, and it is the
 * values the resumed campaign depends on. Journal v3 stores this as
 * the record's "c" field, catching mid-file bit rot that still parses
 * as valid JSON — the case the torn-tail heuristic can never see.
 */
u32
recordCrc(u64 trial, const u64 (&d)[kTrialCounters],
          const u64 (&m)[kTrialMetaFields])
{
    u8 buf[8 * (1 + kTrialCounters + kTrialMetaFields)];
    size_t o = 0;
    auto put = [&](u64 v) {
        for (int i = 0; i < 8; ++i)
            buf[o++] = static_cast<u8>(v >> (8 * i));
    };
    put(trial);
    for (size_t i = 0; i < kTrialCounters; ++i)
        put(d[i]);
    for (size_t i = 0; i < kTrialMetaFields; ++i)
        put(m[i]);
    return crc32c(buf, o);
}

/** Parse `{"t": N, "d": [c0, ..., c18], "m": [m0, ..., m6], "c": C}`;
 *  false on any malformation (a crash-truncated tail line must not be
 *  trusted). The stored checksum is returned for the caller to verify
 *  against recordCrc — shape and integrity are separate diagnoses. */
bool
parseRecord(const std::string &line, u64 &trial, u64 (&d)[kTrialCounters],
            u64 (&m)[kTrialMetaFields], u64 &crc)
{
    const char *p = line.c_str();
    auto expect = [&](const char *tok) {
        while (std::isspace(static_cast<unsigned char>(*p)))
            ++p;
        const size_t n = std::strlen(tok);
        if (std::strncmp(p, tok, n) != 0)
            return false;
        p += n;
        return true;
    };
    auto number = [&](u64 &out) {
        while (std::isspace(static_cast<unsigned char>(*p)))
            ++p;
        if (!std::isdigit(static_cast<unsigned char>(*p)))
            return false;
        char *end = nullptr;
        out = std::strtoull(p, &end, 10);
        p = end;
        return true;
    };
    if (!expect("{") || !expect("\"t\":") || !number(trial) ||
        !expect(",") || !expect("\"d\":") || !expect("[")) {
        return false;
    }
    for (size_t i = 0; i < kTrialCounters; ++i) {
        if (!number(d[i]))
            return false;
        if (i + 1 < kTrialCounters && !expect(","))
            return false;
    }
    if (!expect("]") || !expect(",") || !expect("\"m\":") ||
        !expect("[")) {
        return false;
    }
    for (size_t i = 0; i < kTrialMetaFields; ++i) {
        if (!number(m[i]))
            return false;
        if (i + 1 < kTrialMetaFields && !expect(","))
            return false;
    }
    return expect("]") && expect(",") && expect("\"c\":") &&
           number(crc) && crc <= ~u32{0} && expect("}");
}

/** Write one record line (shared by the prefix rewrite and record). */
void
writeRecord(std::FILE *out, u64 trial, const u64 (&d)[kTrialCounters],
            const u64 (&m)[kTrialMetaFields])
{
    std::fprintf(out, "{\"t\": %llu, \"d\": [",
                 static_cast<unsigned long long>(trial));
    for (size_t i = 0; i < kTrialCounters; ++i)
        std::fprintf(out, "%s%llu", i ? ", " : "",
                     static_cast<unsigned long long>(d[i]));
    std::fprintf(out, "], \"m\": [");
    for (size_t i = 0; i < kTrialMetaFields; ++i)
        std::fprintf(out, "%s%llu", i ? ", " : "",
                     static_cast<unsigned long long>(m[i]));
    std::fprintf(out, "], \"c\": %lu}\n",
                 static_cast<unsigned long>(recordCrc(trial, d, m)));
}

} // namespace

TrialJournal::TrialJournal(const std::string &path,
                           const CampaignConfig &cfg,
                           const std::string &scheme)
    : path_(path)
{
    const std::string header = headerLine(cfg, scheme);

    std::ifstream in(path_);
    if (in) {
        std::string line;
        if (std::getline(in, line) && !line.empty()) {
            if (line != header) {
                fh_fatal("journal '%s' was written by a different "
                         "campaign configuration; delete it or point "
                         "FH_JOURNAL/journal= elsewhere\n  file: %s\n  "
                         "want: %s",
                         path_.c_str(), line.c_str(), header.c_str());
            }
            u64 d[kTrialCounters];
            u64 m[kTrialMetaFields];
            u64 trial = 0;
            u64 crc = 0;
            u64 lineNo = 1; // the header
            std::string badWhy;
            u64 badLine = 0;
            while (std::getline(in, line)) {
                ++lineNo;
                if (!parseRecord(line, trial, d, m, crc)) {
                    badWhy = "malformed record";
                    badLine = lineNo;
                    break;
                }
                if (static_cast<u32>(crc) != recordCrc(trial, d, m)) {
                    badWhy = csprintf(
                        "record checksum mismatch (trial %llu: stored "
                        "%llu, computed %lu)",
                        static_cast<unsigned long long>(trial),
                        static_cast<unsigned long long>(crc),
                        static_cast<unsigned long>(
                            recordCrc(trial, d, m)));
                    badLine = lineNo;
                    break;
                }
                if (trial != replayed_.size()) {
                    badWhy = csprintf(
                        "trial out of order (got %llu, expected %llu)",
                        static_cast<unsigned long long>(trial),
                        static_cast<unsigned long long>(
                            replayed_.size()));
                    badLine = lineNo;
                    break;
                }
                replayed_.push_back(unpackTrialCounters(d));
                replayedMeta_.push_back(unpackTrialMeta(m));
            }
            if (badLine != 0) {
                // Torn tail or corrupt body? A crash truncates the
                // *last* line; it cannot leave intact records after
                // the damage. If any later line still checks out, the
                // file was corrupted in place — refuse, loudly, with
                // the exact record: silently resuming would fork the
                // campaign's history.
                bool laterValid = false;
                while (std::getline(in, line)) {
                    if (parseRecord(line, trial, d, m, crc) &&
                        static_cast<u32>(crc) ==
                            recordCrc(trial, d, m)) {
                        laterValid = true;
                        break;
                    }
                }
                if (laterValid) {
                    fh_fatal(
                        "journal '%s': %s at line %llu, but valid "
                        "records follow — mid-file corruption, not a "
                        "torn tail; refusing to resume (delete the "
                        "journal or restore it to re-run)",
                        path_.c_str(), badWhy.c_str(),
                        static_cast<unsigned long long>(badLine));
                }
                // Torn tail: keep the clean prefix, drop the rest
                // (it re-executes).
            }
        }
        in.close();
    }
    nextTrial_ = replayed_.size();

    // Rewrite header + the validated prefix rather than appending
    // after a possibly torn tail line, so the file is always
    // well-formed from here on.
    out_ = std::fopen(path_.c_str(), "w");
    if (!out_)
        fh_fatal("cannot open journal '%s' for writing", path_.c_str());
    std::fprintf(out_, "%s\n", header.c_str());
    for (u64 t = 0; t < replayed_.size(); ++t) {
        u64 d[kTrialCounters];
        u64 m[kTrialMetaFields];
        packTrialCounters(replayed_[t], d);
        packTrialMeta(replayedMeta_[t], m);
        writeRecord(out_, t, d, m);
    }
    std::fflush(out_);
}

TrialJournal::~TrialJournal()
{
    if (out_)
        std::fclose(out_);
}

void
TrialJournal::record(u64 trial, const CampaignResult &delta,
                     const TrialMeta &meta)
{
    fh_assert(trial == nextTrial_,
              "journal records must arrive in trial order (got %llu, "
              "expected %llu)",
              static_cast<unsigned long long>(trial),
              static_cast<unsigned long long>(nextTrial_));
    ++nextTrial_;
    u64 d[kTrialCounters];
    u64 m[kTrialMetaFields];
    packTrialCounters(delta, d);
    packTrialMeta(meta, m);
    writeRecord(out_, trial, d, m);
    // One flush per completed trial: at campaign throughput (~500
    // trials/s) this is noise, and it is exactly the durability the
    // journal exists for.
    std::fflush(out_);
}

} // namespace fh::fault
