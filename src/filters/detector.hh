/**
 * @file
 * Unified soft-fault detector front. The pipeline checks load/store
 * addresses and store values at completion and at commit through this
 * interface and is agnostic to the attached scheme:
 *
 *  - Pbfs:         PC-indexed tables, one-bit sticky counters, full
 *                  rollback on trigger (Section 2.1).
 *  - PbfsBiased:   PBFS with the biased two-bit machines (Section 3).
 *  - FaultHound:   counting TCAMs + second-level filter + squash state
 *                  machines + predecessor replay + LSQ commit check.
 *  - FaultHound backend-only and the Figure 12 ablations are expressed
 *    through DetectorParams flags.
 */

#ifndef FH_FILTERS_DETECTOR_HH
#define FH_FILTERS_DETECTOR_HH

#include <string>
#include <vector>

#include "filters/pbfs.hh"
#include "filters/second_level.hh"
#include "filters/state_machine.hh"
#include "filters/tcam.hh"
#include "sim/types.hh"

namespace fh::filters
{

/** Which detection scheme is attached to the core. */
enum class Scheme : u8
{
    None,       ///< fault-intolerant baseline
    Pbfs,       ///< PBFS with sticky counters
    PbfsBiased, ///< PBFS with biased two-bit machines
    FaultHound  ///< this paper (variants via flags)
};

/** The value streams the filters watch. */
enum class StreamKind : u8
{
    LoadAddr,
    StoreAddr,
    StoreValue
};

/** Recovery action requested by a completion-time check. */
enum class CompleteAction : u8
{
    None,
    Replay,  ///< predecessor replay (Section 3.3)
    Rollback ///< full pipeline rollback
};

/** Action requested by a commit-time (LSQ) check. */
enum class CommitAction : u8
{
    None,
    Reexec ///< singleton re-execute from the register file (Section 3.5)
};

struct DetectorParams
{
    Scheme scheme = Scheme::FaultHound;

    TcamParams tcam{};
    PbfsParams pbfs{};

    /** Inverted (value-indexed) first level; false = PC-indexed tables
     *  with biased counters (FH-BE-nocluster ablation). */
    bool clustering = true;
    /** Second-level delinquent-bit filter (Section 3.2). */
    bool secondLevel = true;
    /** Squash state machines for rename faults (Section 3.4); this is
     *  what distinguishes full FaultHound from FaultHound-backend. */
    bool squashDetect = true;
    /** Commit-time LSQ check + singleton re-execute (Section 3.5). */
    bool lsqCommitCheck = true;
    /** Recover allowed triggers by replay; false = full rollback
     *  (FH-BE-full-rollback ablation). */
    bool replayRecovery = true;

    u8 secondLevelStates = 8;
    u8 squashStates = 8;

    bool operator==(const DetectorParams &other) const = default;

    static DetectorParams none();
    static DetectorParams pbfsSticky();
    static DetectorParams pbfsBiased();
    static DetectorParams faultHound();
    static DetectorParams faultHoundBackend();
};

/** Aggregate detector statistics. */
struct DetectorStats
{
    u64 checks = 0;
    u64 triggers = 0;          ///< first-level non-matches
    u64 suppressed = 0;        ///< silenced by the second-level filter
    u64 replays = 0;           ///< replay actions requested
    u64 rollbacks = 0;         ///< rollback actions requested
    u64 squashAlarms = 0;      ///< rollbacks due to squash machines
    u64 replayIgnored = 0;     ///< triggers ignored during replay
    u64 commitChecks = 0;
    u64 commitTriggers = 0;    ///< singleton re-executes requested
    u64 reexecMismatches = 0;  ///< detected faults (Section 3.5 compare)

    bool operator==(const DetectorStats &other) const = default;
};

/**
 * The detector attached to one core. Copyable by value so tandem fault
 * runs can fork the whole machine.
 */
class Detector
{
  public:
    explicit Detector(const DetectorParams &params = {});

    /**
     * Check a completed load/store operand value.
     *
     * @param kind which value stream the operand belongs to
     * @param pc static instruction index (used by PC-indexed schemes)
     * @param value the operand value (address or store data)
     * @param in_replay true when the instruction is re-executing under
     *        a replay or post-rollback recovery; the filters still
     *        learn but triggers are ignored (values deemed final)
     */
    CompleteAction checkComplete(StreamKind kind, u64 pc, u64 value,
                                 bool in_replay);

    /**
     * Commit-time LSQ check (probe-only: does not train the filters).
     */
    CommitAction checkCommit(StreamKind kind, u64 pc, u64 value);

    /** Record the result of a singleton re-execute comparison. */
    void onReexecCompare(bool mismatch);

    const DetectorParams &params() const { return params_; }
    const DetectorStats &stats() const { return stats_; }
    Scheme scheme() const { return params_.scheme; }
    bool active() const { return params_.scheme != Scheme::None; }

    /** Total first-level filter accesses (for the energy model). */
    u64 filterAccesses() const;

    const CountingTcam &addrTcam() const { return addrTcam_; }
    const CountingTcam &valueTcam() const { return valueTcam_; }

    bool operator==(const Detector &other) const = default;

  private:
    CompleteAction checkPbfs(StreamKind kind, u64 pc, u64 value,
                             bool in_replay);
    CompleteAction checkFaultHound(StreamKind kind, u64 pc, u64 value,
                                   bool in_replay);

    CountingTcam &tcamFor(StreamKind kind)
    {
        return kind == StreamKind::StoreValue ? valueTcam_ : addrTcam_;
    }
    const CountingTcam &tcamFor(StreamKind kind) const
    {
        return kind == StreamKind::StoreValue ? valueTcam_ : addrTcam_;
    }
    SecondLevelFilter &secondFor(StreamKind kind)
    {
        return kind == StreamKind::StoreValue ? valueSecond_ : addrSecond_;
    }
    std::vector<BiasedNState> &squashFor(StreamKind kind)
    {
        return kind == StreamKind::StoreValue ? valueSquash_ : addrSquash_;
    }
    PbfsTable &pbfsFor(StreamKind kind);

    DetectorParams params_;

    // FaultHound first level: one TCAM for addresses (loads and
    // stores), one for store values (Section 3.1).
    CountingTcam addrTcam_;
    CountingTcam valueTcam_;
    SecondLevelFilter addrSecond_;
    SecondLevelFilter valueSecond_;
    std::vector<BiasedNState> addrSquash_;
    std::vector<BiasedNState> valueSquash_;

    // PBFS (and FH-nocluster) first level: PC-indexed tables, one per
    // stream.
    PbfsTable loadAddrTable_;
    PbfsTable storeAddrTable_;
    PbfsTable storeValueTable_;

    DetectorStats stats_;
};

std::string to_string(Scheme scheme);
std::string to_string(StreamKind kind);

} // namespace fh::filters

#endif // FH_FILTERS_DETECTOR_HH
