/**
 * @file
 * A 64-bit bit-mask filter: one per-bit counter plus the previous
 * value. Together they encode the ternary neighborhood of Figure 1
 * ("unchanging 0", "unchanging 1", "changing wildcard").
 *
 * The per-bit counter flavor is configurable so the same structure
 * serves PBFS (one-bit sticky), PBFS-biased and FaultHound's TCAM
 * entries (biased two-bit), and the state-machine-depth ablation
 * (three-bit biased, Section 3).
 *
 * The 64 counters are stored bit-sliced: plane p holds bit p of every
 * bit position's counter, so a filter of depth maxCount = 2^P - 1
 * needs P words instead of 64 count bytes, and observe() updates all
 * 64 counters with a handful of word-wide boolean ops (ripple-carry
 * saturating add on changed lanes, borrow-chain decrement on unchanged
 * ones). See DESIGN.md "Bit-sliced counter planes".
 */

#ifndef FH_FILTERS_BIT_FILTER_HH
#define FH_FILTERS_BIT_FILTER_HH

#include <array>

#include "sim/popcount.hh"
#include "sim/types.hh"

namespace fh::filters
{

/** Per-bit counter flavor. */
enum class CounterKind : u8
{
    Sticky,   ///< PBFS one-bit sticky counter
    Standard, ///< unbiased saturating counter (Figure 2(a))
    Biased    ///< biased machine (Figure 2(b)); depth configurable
};

/** Counter configuration shared by every bit of a filter. */
struct CounterConfig
{
    CounterKind kind = CounterKind::Biased;
    /** Deepest changing state (1 for sticky, 3 for two-bit machines,
     *  7 for the three-bit ablation). Must be 2^P - 1 so the planes
     *  saturate on carry-out. */
    u8 maxCount = 3;
    /** How far from "unchanging" a change throws the counter. A jump
     *  of 2 realizes the two-consecutive-no-changes bias. */
    u8 jump = 2;

    static CounterConfig sticky() { return {CounterKind::Sticky, 1, 1}; }
    static CounterConfig standard()
    {
        return {CounterKind::Standard, 3, 1};
    }
    static CounterConfig biased() { return {CounterKind::Biased, 3, 2}; }
    /** Three-bit biased machine for the Section 3 depth ablation. */
    static CounterConfig biased3() { return {CounterKind::Biased, 7, 4}; }

    bool operator==(const CounterConfig &other) const = default;
};

/**
 * One bit-mask filter over 64-bit values. A bit is "unchanging" while
 * its counter is zero; the cached unchanging mask makes the mismatch
 * check a single XOR + AND + popcount.
 */
class BitFilter
{
  public:
    /** Deepest supported counter: maxCount <= 2^maxPlanes - 1. */
    static constexpr unsigned maxPlanes = 3;

    explicit BitFilter(CounterConfig cfg = CounterConfig::biased());

    /** (Re)install the filter around value: all bits unchanging. */
    void install(u64 value);

    /** Bits that are unchanging yet differ from the previous value. */
    u64 mismatchMask(u64 value) const
    {
        return (prev_ ^ value) & unchangingMask_;
    }

    /** Number of mismatching unchanging bits. Inline: this is the
     *  TCAM scan's innermost operation. */
    unsigned mismatchCount(u64 value) const
    {
        return popcount64(mismatchMask(value));
    }

    /**
     * Observe value: every bit's counter sees change/no-change relative
     * to the previous value, and the previous value becomes value.
     * Returns the mismatch mask the observation alarmed on (bits that
     * changed while unchanging).
     */
    u64 observe(u64 value);

    /** PBFS periodic flash clear: all counters back to unchanging. */
    void clear();

    u64 prev() const { return prev_; }
    u64 unchangingMask() const { return unchangingMask_; }
    /** Reconstruct one bit position's counter from the planes. */
    u8 counterAt(unsigned bit) const
    {
        u8 c = 0;
        for (unsigned p = 0; p < numPlanes_; ++p)
            c = static_cast<u8>(c | (((planes_[p] >> bit) & 1) << p));
        return c;
    }
    const CounterConfig &config() const { return cfg_; }

    bool operator==(const BitFilter &other) const = default;

  private:
    CounterConfig cfg_;
    u8 numPlanes_ = 2;
    u64 prev_ = 0;
    u64 unchangingMask_ = ~0ULL;
    /** planes_[p] bit b = bit p of position b's counter; planes at and
     *  above numPlanes_ stay zero, so default == compares logical
     *  counter state. */
    std::array<u64, maxPlanes> planes_{};
};

} // namespace fh::filters

#endif // FH_FILTERS_BIT_FILTER_HH
