/**
 * @file
 * A 64-bit bit-mask filter: one per-bit counter plus the previous
 * value. Together they encode the ternary neighborhood of Figure 1
 * ("unchanging 0", "unchanging 1", "changing wildcard").
 *
 * The per-bit counter flavor is configurable so the same structure
 * serves PBFS (one-bit sticky), PBFS-biased and FaultHound's TCAM
 * entries (biased two-bit), and the state-machine-depth ablation
 * (three-bit biased, Section 3).
 */

#ifndef FH_FILTERS_BIT_FILTER_HH
#define FH_FILTERS_BIT_FILTER_HH

#include <array>

#include "sim/types.hh"

namespace fh::filters
{

/** Per-bit counter flavor. */
enum class CounterKind : u8
{
    Sticky,   ///< PBFS one-bit sticky counter
    Standard, ///< unbiased saturating counter (Figure 2(a))
    Biased    ///< biased machine (Figure 2(b)); depth configurable
};

/** Counter configuration shared by every bit of a filter. */
struct CounterConfig
{
    CounterKind kind = CounterKind::Biased;
    /** Deepest changing state (1 for sticky, 3 for two-bit machines,
     *  7 for the three-bit ablation). */
    u8 maxCount = 3;
    /** How far from "unchanging" a change throws the counter. A jump
     *  of 2 realizes the two-consecutive-no-changes bias. */
    u8 jump = 2;

    static CounterConfig sticky() { return {CounterKind::Sticky, 1, 1}; }
    static CounterConfig standard()
    {
        return {CounterKind::Standard, 3, 1};
    }
    static CounterConfig biased() { return {CounterKind::Biased, 3, 2}; }
    /** Three-bit biased machine for the Section 3 depth ablation. */
    static CounterConfig biased3() { return {CounterKind::Biased, 7, 4}; }

    bool operator==(const CounterConfig &other) const = default;
};

/**
 * One bit-mask filter over 64-bit values. A bit is "unchanging" while
 * its counter is zero; the cached unchanging mask makes the mismatch
 * check a single XOR + AND + popcount.
 */
class BitFilter
{
  public:
    explicit BitFilter(CounterConfig cfg = CounterConfig::biased());

    /** (Re)install the filter around value: all bits unchanging. */
    void install(u64 value);

    /** Bits that are unchanging yet differ from the previous value. */
    u64 mismatchMask(u64 value) const
    {
        return (prev_ ^ value) & unchangingMask_;
    }

    /** Number of mismatching unchanging bits. */
    unsigned mismatchCount(u64 value) const;

    /**
     * Observe value: every bit's counter sees change/no-change relative
     * to the previous value, and the previous value becomes value.
     * Returns the mismatch mask the observation alarmed on (bits that
     * changed while unchanging).
     */
    u64 observe(u64 value);

    /** PBFS periodic flash clear: all counters back to unchanging. */
    void clear();

    u64 prev() const { return prev_; }
    u64 unchangingMask() const { return unchangingMask_; }
    u8 counterAt(unsigned bit) const { return counts_[bit]; }
    const CounterConfig &config() const { return cfg_; }

    bool operator==(const BitFilter &other) const = default;

  private:
    CounterConfig cfg_;
    u64 prev_ = 0;
    u64 unchangingMask_ = ~0ULL;
    std::array<u8, wordBits> counts_{};
};

} // namespace fh::filters

#endif // FH_FILTERS_BIT_FILTER_HH
