#include "filters/bit_filter.hh"

#include <algorithm>
#include <bit>

namespace fh::filters
{

BitFilter::BitFilter(CounterConfig cfg) : cfg_(cfg) {}

void
BitFilter::install(u64 value)
{
    prev_ = value;
    unchangingMask_ = ~0ULL;
    counts_.fill(0);
}

unsigned
BitFilter::mismatchCount(u64 value) const
{
    return static_cast<unsigned>(std::popcount(mismatchMask(value)));
}

u64
BitFilter::observe(u64 value)
{
    const u64 changed = prev_ ^ value;
    const u64 alarm = changed & unchangingMask_;

    u64 mask = 0;
    for (unsigned bit = 0; bit < wordBits; ++bit) {
        u8 &count = counts_[bit];
        const bool bit_changed = (changed >> bit) & 1;
        switch (cfg_.kind) {
          case CounterKind::Sticky:
            if (bit_changed)
                count = 1;
            break;
          case CounterKind::Standard:
          case CounterKind::Biased:
            if (bit_changed) {
                count = std::min<u8>(
                    static_cast<u8>(count + cfg_.jump), cfg_.maxCount);
            } else if (count > 0) {
                --count;
            }
            break;
        }
        if (count == 0)
            mask |= 1ULL << bit;
    }

    unchangingMask_ = mask;
    prev_ = value;
    return alarm;
}

void
BitFilter::clear()
{
    counts_.fill(0);
    unchangingMask_ = ~0ULL;
}

} // namespace fh::filters
