#include "filters/bit_filter.hh"

#include <bit>

#include "sim/logging.hh"

namespace fh::filters
{

BitFilter::BitFilter(CounterConfig cfg)
    : cfg_(cfg), numPlanes_(static_cast<u8>(std::bit_width(cfg.maxCount)))
{
    fh_assert(cfg_.maxCount > 0, "counter depth must be at least 1");
    fh_assert(numPlanes_ <= maxPlanes, "counter depth beyond plane budget");
    fh_assert(cfg_.maxCount == (1u << numPlanes_) - 1,
              "bit-plane counters need a 2^P - 1 depth");
    fh_assert(cfg_.jump >= 1 && cfg_.jump <= cfg_.maxCount,
              "counter jump outside [1, maxCount]");
}

void
BitFilter::install(u64 value)
{
    prev_ = value;
    unchangingMask_ = ~0ULL;
    planes_ = {};
}

u64
BitFilter::observe(u64 value)
{
    const u64 changed = prev_ ^ value;
    const u64 alarm = changed & unchangingMask_;
    prev_ = value;

    if (cfg_.kind == CounterKind::Sticky) {
        // One plane; a change saturates the lane until a flash clear.
        planes_[0] |= changed;
        unchangingMask_ = ~planes_[0];
        return alarm;
    }

    // Standard/Biased: count = min(count + jump, maxCount) on changed
    // lanes, count = max(count - 1, 0) on the rest — all 64 lanes at
    // once. The add is a ripple-carry sum of the jump constant over
    // the changed lanes (carry stays inside those lanes); because
    // maxCount is all-ones, lanes that carry out of the top plane are
    // exactly the ones to saturate. The decrement is a borrow chain
    // over the unchanged lanes whose counter is nonzero (nonzero =
    // ~unchangingMask_), and such a borrow always terminates within
    // the planes.
    u64 carry = 0;
    u64 borrow = ~changed & ~unchangingMask_;
    u64 nonzero = 0;
    const unsigned planes = numPlanes_;
    for (unsigned p = 0; p < planes; ++p) {
        const u64 add = ((cfg_.jump >> p) & 1) ? changed : 0;
        const u64 a = planes_[p];
        u64 s = a ^ add ^ carry;
        carry = (a & add) | (a & carry) | (add & carry);
        s ^= borrow;
        borrow &= ~a;
        planes_[p] = s;
        nonzero |= s;
    }
    if (carry) {
        // Saturate overflowed lanes at maxCount (all planes set).
        for (unsigned p = 0; p < planes; ++p)
            planes_[p] |= carry;
        nonzero |= carry;
    }
    unchangingMask_ = ~nonzero;
    return alarm;
}

void
BitFilter::clear()
{
    planes_ = {};
    unchangingMask_ = ~0ULL;
}

} // namespace fh::filters
