/**
 * @file
 * PBFS baseline (Racunas et al., HPCA 2007) as described in Section
 * 2.1: a PC-indexed table of bit-mask filters with one-bit sticky
 * counters and a periodic flash clear. The PBFS-biased variant swaps
 * the sticky counters for the biased two-bit machines (Section 3).
 */

#ifndef FH_FILTERS_PBFS_HH
#define FH_FILTERS_PBFS_HH

#include <vector>

#include "filters/bit_filter.hh"
#include "sim/types.hh"

namespace fh::filters
{

struct PbfsParams
{
    unsigned entries = 2048; ///< direct-mapped, PC-indexed
    /** Flash-clear every this many table accesses (sticky only). */
    u64 clearInterval = 10000;
    CounterConfig counters = CounterConfig::sticky();

    bool operator==(const PbfsParams &other) const = default;
};

/** Result of one PBFS check. */
struct PbfsResult
{
    bool trigger = false;
    u64 mismatchMask = 0;
};

/**
 * One PC-indexed PBFS filter table. The caller keeps one table per
 * checked stream (load address / store address / store value).
 */
class PbfsTable
{
  public:
    explicit PbfsTable(const PbfsParams &params = {});

    /**
     * Check value for the static instruction at pc and update the
     * filter as part of the access. The first access to an entry only
     * installs the value.
     */
    PbfsResult check(u64 pc, u64 value);

    u64 accesses() const { return accesses_; }
    u64 clears() const { return clears_; }
    const PbfsParams &params() const { return params_; }

    bool operator==(const PbfsTable &other) const = default;

  private:
    struct Entry
    {
        BitFilter filter;
        bool valid = false;

        bool operator==(const Entry &other) const = default;
    };

    PbfsParams params_;
    std::vector<Entry> entries_;
    u64 accesses_ = 0;
    u64 clears_ = 0;
};

} // namespace fh::filters

#endif // FH_FILTERS_PBFS_HH
