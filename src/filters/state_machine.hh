/**
 * @file
 * Per-bit state machines used by the fault-screening filters.
 *
 * Three machines from the paper:
 *  - StickyBit: PBFS's one-bit sticky counter. Saturates at "changing"
 *    on the first observed change and stays there until a flash clear.
 *  - BiasedTwoBit: the well-known biased two-bit machine (Figure 2(b),
 *    after Jacobsen et al.). Needs two consecutive no-changes after a
 *    change to re-enter the "unchanging" state, but a single change in
 *    the unchanging state raises an alarm.
 *  - BiasedNState: the generalized N-state machine used by the
 *    second-level filter and the squash state machines (8 states, 7
 *    consecutive quiet observations before an alarm is allowed again).
 */

#ifndef FH_FILTERS_STATE_MACHINE_HH
#define FH_FILTERS_STATE_MACHINE_HH

#include "sim/types.hh"

namespace fh::filters
{

/** PBFS one-bit sticky counter. */
class StickyBit
{
  public:
    /** True while the bit is tracked as unchanging. */
    bool unchanging() const { return !changing_; }

    /**
     * Observe whether the bit changed. Returns true if this observation
     * is an alarm (a change while in the unchanging state).
     */
    bool observe(bool changed);

    /** Periodic flash clear back to unchanging. */
    void clear() { changing_ = false; }

    bool operator==(const StickyBit &other) const = default;

  private:
    bool changing_ = false;
};

/**
 * Biased two-bit machine (Figure 2(b)). Four states: U (unchanging),
 * C1, C2, C3 (changing). A change always lands at least two no-changes
 * away from U; only a change observed in U raises an alarm.
 */
class BiasedTwoBit
{
  public:
    enum State : u8 { U = 0, C1 = 1, C2 = 2, C3 = 3 };

    State state() const { return state_; }
    bool unchanging() const { return state_ == U; }

    /** Observe a change/no-change; returns true on an alarm. */
    bool observe(bool changed);

    void reset() { state_ = U; }

    bool operator==(const BiasedTwoBit &other) const = default;

  private:
    State state_ = U;
};

/**
 * Standard (unbiased) saturating counter with one unchanging and three
 * changing states (Figure 2(a)); used only for the PBFS-with-standard-
 * counter comparison point discussed in Section 1.
 */
class StandardTwoBit
{
  public:
    bool unchanging() const { return count_ == 0; }
    bool observe(bool changed);
    void reset() { count_ = 0; }

    bool operator==(const StandardTwoBit &other) const = default;

  private:
    u8 count_ = 0; ///< 0 = U, 1..3 = changing depth
};

/**
 * Generalized biased machine with N states. State 0 is "quiet": an
 * event arriving while quiet is allowed through as an alarm. Any event
 * re-arms the machine to state N-1; a quiet observation decrements
 * toward 0, so `N - 1` consecutive quiet observations are needed before
 * the next alarm can fire. The paper uses N = 8 (7 no-alarms).
 */
class BiasedNState
{
  public:
    explicit BiasedNState(u8 num_states = 8) : numStates_(num_states) {}

    bool quiet() const { return count_ == 0; }
    u8 state() const { return count_; }
    u8 numStates() const { return numStates_; }

    /**
     * Record an observation; returns true if this event is allowed as
     * an alarm (event while quiet).
     */
    bool record(bool event);

    /** Force the machine into the fully re-armed (suppressing) state. */
    void arm() { count_ = static_cast<u8>(numStates_ - 1); }
    void reset() { count_ = 0; }

    bool operator==(const BiasedNState &other) const = default;

  private:
    u8 numStates_;
    u8 count_ = 0;
};

} // namespace fh::filters

#endif // FH_FILTERS_STATE_MACHINE_HH
