/**
 * @file
 * Second-level filter (Section 3.2): one biased N-state machine per
 * bit position, shared across all first-level filters of a TCAM. It
 * learns the delinquent bit positions that raise repeated false alarms
 * and suppresses their triggers.
 */

#ifndef FH_FILTERS_SECOND_LEVEL_HH
#define FH_FILTERS_SECOND_LEVEL_HH

#include <array>

#include "filters/state_machine.hh"
#include "sim/types.hh"

namespace fh::filters
{

/**
 * Tracks, per bit position, whether any first-level filter signaled a
 * non-match in that position in any of the last several replay
 * triggers. A non-match in a recently-quiet bit position is allowed
 * through (likely fault); a non-match in a recently-noisy position is
 * suppressed (likely false positive), though the machine still records
 * the occurrence.
 */
class SecondLevelFilter
{
  public:
    explicit SecondLevelFilter(u8 num_states = 8);

    /**
     * Feed one replay trigger's mismatch mask through the filter.
     * Returns true if the trigger is allowed (at least one mismatching
     * bit position was quiet), false if it is suppressed.
     */
    bool onTrigger(u64 mismatch_mask);

    bool quietAt(unsigned bit) const { return machines_[bit].quiet(); }

    /** Read-only query: would a trigger with this mismatch mask be
     *  allowed? Used by the commit-time LSQ check, which must not
     *  train the filters (Section 3.5). */
    bool wouldAllow(u64 mismatch_mask) const
    {
        for (unsigned bit = 0; bit < wordBits; ++bit)
            if (((mismatch_mask >> bit) & 1) && machines_[bit].quiet())
                return true;
        return false;
    }
    u8 stateAt(unsigned bit) const { return machines_[bit].state(); }

    u64 allowed() const { return allowed_; }
    u64 suppressed() const { return suppressed_; }

    bool operator==(const SecondLevelFilter &other) const = default;

  private:
    std::array<BiasedNState, wordBits> machines_;
    u64 allowed_ = 0;
    u64 suppressed_ = 0;
};

} // namespace fh::filters

#endif // FH_FILTERS_SECOND_LEVEL_HH
