#include "filters/second_level.hh"

namespace fh::filters
{

SecondLevelFilter::SecondLevelFilter(u8 num_states)
{
    machines_.fill(BiasedNState(num_states));
}

bool
SecondLevelFilter::onTrigger(u64 mismatch_mask)
{
    bool allow = false;
    for (unsigned bit = 0; bit < wordBits; ++bit) {
        const bool mismatched = (mismatch_mask >> bit) & 1;
        // record() returns true only for an event in a quiet machine.
        if (machines_[bit].record(mismatched))
            allow = true;
    }
    if (allow)
        ++allowed_;
    else
        ++suppressed_;
    return allow;
}

} // namespace fh::filters
