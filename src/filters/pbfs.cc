#include "filters/pbfs.hh"

#include "sim/logging.hh"

namespace fh::filters
{

PbfsTable::PbfsTable(const PbfsParams &params) : params_(params)
{
    fh_assert(params_.entries > 0, "PBFS table needs entries");
    entries_.resize(params_.entries,
                    Entry{BitFilter(params_.counters), false});
}

PbfsResult
PbfsTable::check(u64 pc, u64 value)
{
    ++accesses_;
    if (params_.counters.kind == CounterKind::Sticky &&
        params_.clearInterval > 0 &&
        accesses_ % params_.clearInterval == 0) {
        for (auto &entry : entries_)
            entry.filter.clear();
        ++clears_;
    }

    Entry &entry = entries_[pc % entries_.size()];
    PbfsResult res;
    if (!entry.valid) {
        entry.filter.install(value);
        entry.valid = true;
        return res;
    }

    res.mismatchMask = entry.filter.mismatchMask(value);
    res.trigger = res.mismatchMask != 0;
    entry.filter.observe(value);
    return res;
}

} // namespace fh::filters
