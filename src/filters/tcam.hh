/**
 * @file
 * Counting TCAM: the inverted (value-indexed) filter organization of
 * Section 3.1. Instead of a PC-indexed table, the current value is
 * matched against every filter entry; a full match reinforces the
 * matching neighborhood, while a non-match in every entry is a trigger.
 * On a trigger the closest-matching entry is loosened if its mismatch
 * count is at or below a threshold, otherwise the LRU entry is replaced
 * with a fresh filter (Figure 3).
 *
 * The "counting" part — a nearest-neighbor search reporting the number
 * of mismatching bits — follows the counting TCAMs of Shinde et al.
 * referenced by the paper.
 */

#ifndef FH_FILTERS_TCAM_HH
#define FH_FILTERS_TCAM_HH

#include <vector>

#include "filters/bit_filter.hh"
#include "sim/types.hh"

namespace fh::filters
{

struct TcamParams
{
    unsigned entries = 32;
    /** Loosen the closest filter when it mismatches in at most this
     *  many bit positions; replace otherwise. */
    unsigned loosenThreshold = 4;
    CounterConfig counters = CounterConfig::biased();

    bool operator==(const TcamParams &other) const = default;
};

/** Result of one TCAM lookup-and-update. */
struct TcamResult
{
    bool trigger = false; ///< no entry fully matched
    bool replaced = false; ///< trigger handled by installing a fresh entry
    unsigned entry = 0; ///< matching / closest / replaced entry index
    unsigned mismatchCount = 0; ///< of the closest entry (0 on a match)
    u64 mismatchMask = 0; ///< mismatching bit positions of that entry
};

/** Fixed-size counting TCAM of bit-mask filters with LRU replacement. */
class CountingTcam
{
  public:
    explicit CountingTcam(const TcamParams &params = {});

    /**
     * Search for the best-matching filter and update it as part of the
     * lookup (match -> observe; trigger -> loosen or replace).
     */
    TcamResult lookup(u64 value);

    /**
     * Search without modifying any filter state. Used by the
     * commit-time LSQ check (Section 3.5) so that re-checking a value
     * does not double-train the filters.
     */
    TcamResult probe(u64 value) const;

    unsigned size() const { return static_cast<unsigned>(entries_.size()); }
    unsigned validCount() const;
    const BitFilter &filterAt(unsigned i) const { return entries_[i].filter; }
    bool validAt(unsigned i) const { return entries_[i].valid; }
    const TcamParams &params() const { return params_; }

    /** Total updating lookups, for the energy model. */
    u64 accesses() const { return accesses_; }

    bool operator==(const CountingTcam &other) const = default;

  private:
    struct Entry
    {
        BitFilter filter;
        bool valid = false;
        u64 lastUse = 0;

        bool operator==(const Entry &other) const = default;
    };

    /** Find the closest valid entry; returns false if none valid.
     *  Scans the MRU entry first: a full match there ends the search
     *  on entry 1 of the scan, which is the common case under value
     *  locality. The mask is computed once, for the winner only. */
    bool closest(u64 value, unsigned &index, unsigned &count,
                 u64 &mask) const;

    TcamParams params_;
    std::vector<Entry> entries_;
    u64 useClock_ = 0;
    u64 accesses_ = 0;
    /** Last entry touched by lookup(); deterministic, so it may take
     *  part in the defaulted operator==. */
    unsigned mru_ = 0;
};

} // namespace fh::filters

#endif // FH_FILTERS_TCAM_HH
