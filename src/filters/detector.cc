#include "filters/detector.hh"

#include "sim/logging.hh"

namespace fh::filters
{

DetectorParams
DetectorParams::none()
{
    DetectorParams p;
    p.scheme = Scheme::None;
    return p;
}

DetectorParams
DetectorParams::pbfsSticky()
{
    DetectorParams p;
    p.scheme = Scheme::Pbfs;
    p.pbfs.counters = CounterConfig::sticky();
    return p;
}

DetectorParams
DetectorParams::pbfsBiased()
{
    DetectorParams p;
    p.scheme = Scheme::PbfsBiased;
    p.pbfs.counters = CounterConfig::biased();
    return p;
}

DetectorParams
DetectorParams::faultHound()
{
    return DetectorParams{};
}

DetectorParams
DetectorParams::faultHoundBackend()
{
    DetectorParams p;
    p.squashDetect = false;
    return p;
}

Detector::Detector(const DetectorParams &params)
    : params_(params),
      addrTcam_(params.tcam),
      valueTcam_(params.tcam),
      addrSecond_(params.secondLevelStates),
      valueSecond_(params.secondLevelStates),
      addrSquash_(params.tcam.entries, BiasedNState(params.squashStates)),
      valueSquash_(params.tcam.entries, BiasedNState(params.squashStates)),
      loadAddrTable_(params.pbfs),
      storeAddrTable_(params.pbfs),
      storeValueTable_(params.pbfs)
{
}

PbfsTable &
Detector::pbfsFor(StreamKind kind)
{
    switch (kind) {
      case StreamKind::LoadAddr:
        return loadAddrTable_;
      case StreamKind::StoreAddr:
        return storeAddrTable_;
      case StreamKind::StoreValue:
        return storeValueTable_;
    }
    fh_panic("bad stream kind");
}

CompleteAction
Detector::checkComplete(StreamKind kind, u64 pc, u64 value, bool in_replay)
{
    switch (params_.scheme) {
      case Scheme::None:
        return CompleteAction::None;
      case Scheme::Pbfs:
      case Scheme::PbfsBiased:
        return checkPbfs(kind, pc, value, in_replay);
      case Scheme::FaultHound:
        if (params_.clustering)
            return checkFaultHound(kind, pc, value, in_replay);
        return checkPbfs(kind, pc, value, in_replay);
    }
    fh_panic("bad scheme");
}

CompleteAction
Detector::checkPbfs(StreamKind kind, u64 pc, u64 value, bool in_replay)
{
    ++stats_.checks;
    PbfsResult res = pbfsFor(kind).check(pc, value);
    if (!res.trigger)
        return CompleteAction::None;
    ++stats_.triggers;

    if (in_replay) {
        // Re-executed values are deemed final (Section 2.1 / 3.3).
        ++stats_.replayIgnored;
        return CompleteAction::None;
    }

    // The FH-nocluster ablation layers the second-level filter over
    // PC-indexed tables; plain PBFS has no second level.
    if (params_.scheme == Scheme::FaultHound && params_.secondLevel) {
        if (!secondFor(kind).onTrigger(res.mismatchMask)) {
            ++stats_.suppressed;
            return CompleteAction::None;
        }
    }

    if (params_.scheme == Scheme::FaultHound && params_.replayRecovery) {
        ++stats_.replays;
        return CompleteAction::Replay;
    }
    ++stats_.rollbacks;
    return CompleteAction::Rollback;
}

CompleteAction
Detector::checkFaultHound(StreamKind kind, u64 pc, u64 value,
                          bool in_replay)
{
    (void)pc; // inverted organization: the value itself is the index
    ++stats_.checks;
    TcamResult res = tcamFor(kind).lookup(value);
    if (!res.trigger) {
        // A full match keeps the matched filter "in identity": its
        // squash machine re-arms so that an occasional false-positive
        // trigger from a filter in regular use does not masquerade as
        // a rename fault (Section 3.4).
        if (params_.squashDetect)
            squashFor(kind)[res.entry].arm();
        return CompleteAction::None;
    }
    ++stats_.triggers;

    if (in_replay) {
        ++stats_.replayIgnored;
        return CompleteAction::None;
    }

    // Second-level filter: suppress delinquent bit positions.
    if (params_.secondLevel) {
        if (!secondFor(kind).onTrigger(res.mismatchMask)) {
            ++stats_.suppressed;
            return CompleteAction::None;
        }
    }

    // Squash state machines observe the replay triggers: the machine
    // of the closest-matching (or freshly-installed) filter re-arms,
    // every other machine steps toward quiet (Section 3.4). An alarm —
    // the rename-fault signature — fires when the trigger changes the
    // identity of the closest-matching filter so strongly that no
    // existing filter claims the value (a replacement) and the victim
    // entry has not been the closest match in the recent past.
    bool squash_alarm = false;
    if (params_.squashDetect) {
        auto &machines = squashFor(kind);
        for (unsigned i = 0; i < machines.size(); ++i) {
            bool alarm = machines[i].record(i == res.entry);
            if (i == res.entry && res.replaced)
                squash_alarm = alarm;
        }
    }

    if (squash_alarm) {
        ++stats_.squashAlarms;
        ++stats_.rollbacks;
        return CompleteAction::Rollback;
    }

    if (params_.replayRecovery) {
        ++stats_.replays;
        return CompleteAction::Replay;
    }
    ++stats_.rollbacks;
    return CompleteAction::Rollback;
}

CommitAction
Detector::checkCommit(StreamKind kind, u64 pc, u64 value)
{
    (void)pc;
    if (params_.scheme != Scheme::FaultHound || !params_.lsqCommitCheck ||
        !params_.clustering) {
        return CommitAction::None;
    }
    ++stats_.commitChecks;
    TcamResult res = tcamFor(kind).probe(value);
    if (!res.trigger)
        return CommitAction::None;
    // The second-level filter's delinquent-bit knowledge also screens
    // the commit-time probe (read-only: the probe must not train).
    if (params_.secondLevel) {
        const auto &second = kind == StreamKind::StoreValue
                                 ? valueSecond_
                                 : addrSecond_;
        if (!second.wouldAllow(res.mismatchMask))
            return CommitAction::None;
    }
    ++stats_.commitTriggers;
    return CommitAction::Reexec;
}

void
Detector::onReexecCompare(bool mismatch)
{
    if (mismatch)
        ++stats_.reexecMismatches;
}

u64
Detector::filterAccesses() const
{
    return addrTcam_.accesses() + valueTcam_.accesses() +
           loadAddrTable_.accesses() + storeAddrTable_.accesses() +
           storeValueTable_.accesses() + stats_.commitChecks;
}

std::string
to_string(Scheme scheme)
{
    switch (scheme) {
      case Scheme::None: return "baseline";
      case Scheme::Pbfs: return "PBFS";
      case Scheme::PbfsBiased: return "PBFS-biased";
      case Scheme::FaultHound: return "FaultHound";
    }
    return "?";
}

std::string
to_string(StreamKind kind)
{
    switch (kind) {
      case StreamKind::LoadAddr: return "load-addr";
      case StreamKind::StoreAddr: return "store-addr";
      case StreamKind::StoreValue: return "store-value";
    }
    return "?";
}

} // namespace fh::filters
