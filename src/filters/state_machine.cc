#include "filters/state_machine.hh"

namespace fh::filters
{

bool
StickyBit::observe(bool changed)
{
    if (!changed)
        return false;
    bool alarm = !changing_;
    changing_ = true;
    return alarm;
}

bool
BiasedTwoBit::observe(bool changed)
{
    if (changed) {
        bool alarm = (state_ == U);
        // A change jumps two states deeper (saturating at C3), so at
        // least two no-changes are needed to re-enter U.
        state_ = state_ == U ? C2 : C3;
        return alarm;
    }
    switch (state_) {
      case C3:
        state_ = C2;
        break;
      case C2:
        state_ = C1;
        break;
      case C1:
        state_ = U;
        break;
      case U:
        break;
    }
    return false;
}

bool
StandardTwoBit::observe(bool changed)
{
    if (changed) {
        bool alarm = (count_ == 0);
        if (count_ < 3)
            ++count_;
        return alarm;
    }
    if (count_ > 0)
        --count_;
    return false;
}

bool
BiasedNState::record(bool event)
{
    if (event) {
        bool alarm = quiet();
        arm();
        return alarm;
    }
    if (count_ > 0)
        --count_;
    return false;
}

} // namespace fh::filters
