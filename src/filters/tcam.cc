#include "filters/tcam.hh"

#include "sim/logging.hh"

namespace fh::filters
{

CountingTcam::CountingTcam(const TcamParams &params) : params_(params)
{
    fh_assert(params_.entries > 0, "TCAM needs at least one entry");
    entries_.resize(params_.entries, Entry{BitFilter(params_.counters),
                                           false, 0});
}

bool
CountingTcam::closest(u64 value, unsigned &index, unsigned &count,
                      u64 &mask) const
{
    bool found = false;
    for (unsigned i = 0; i < entries_.size(); ++i) {
        const Entry &entry = entries_[i];
        if (!entry.valid)
            continue;
        unsigned c = entry.filter.mismatchCount(value);
        if (!found || c < count) {
            found = true;
            index = i;
            count = c;
            mask = entry.filter.mismatchMask(value);
            if (c == 0)
                break; // cannot do better than a full match
        }
    }
    return found;
}

TcamResult
CountingTcam::lookup(u64 value)
{
    ++accesses_;
    ++useClock_;
    TcamResult res;

    unsigned index = 0;
    unsigned count = 0;
    u64 mask = 0;
    if (!closest(value, index, count, mask)) {
        // Cold TCAM: install into entry 0 silently (fills happen only
        // in the first few accesses of a run).
        entries_[0].filter.install(value);
        entries_[0].valid = true;
        entries_[0].lastUse = useClock_;
        res.entry = 0;
        return res;
    }

    if (count == 0) {
        // Full match: reinforce the neighborhood.
        entries_[index].filter.observe(value);
        entries_[index].lastUse = useClock_;
        res.entry = index;
        return res;
    }

    res.trigger = true;
    res.mismatchCount = count;
    res.mismatchMask = mask;

    // Prefer filling an invalid entry before loosening or replacing.
    for (unsigned i = 0; i < entries_.size(); ++i) {
        if (!entries_[i].valid) {
            entries_[i].filter.install(value);
            entries_[i].valid = true;
            entries_[i].lastUse = useClock_;
            res.entry = i;
            res.replaced = true;
            return res;
        }
    }

    if (count <= params_.loosenThreshold) {
        // Loosen the closest filter to accommodate the value.
        entries_[index].filter.observe(value);
        entries_[index].lastUse = useClock_;
        res.entry = index;
        return res;
    }

    // Replace the LRU entry with a fresh filter around the value.
    unsigned victim = 0;
    for (unsigned i = 1; i < entries_.size(); ++i)
        if (entries_[i].lastUse < entries_[victim].lastUse)
            victim = i;
    entries_[victim].filter.install(value);
    entries_[victim].lastUse = useClock_;
    res.entry = victim;
    res.replaced = true;
    return res;
}

TcamResult
CountingTcam::probe(u64 value) const
{
    TcamResult res;
    unsigned index = 0;
    unsigned count = 0;
    u64 mask = 0;
    if (!closest(value, index, count, mask))
        return res;
    res.entry = index;
    if (count == 0)
        return res;
    res.trigger = true;
    res.mismatchCount = count;
    res.mismatchMask = mask;
    return res;
}

unsigned
CountingTcam::validCount() const
{
    unsigned n = 0;
    for (const auto &entry : entries_)
        n += entry.valid ? 1 : 0;
    return n;
}

} // namespace fh::filters
