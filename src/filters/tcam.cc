#include "filters/tcam.hh"

#include "sim/logging.hh"

namespace fh::filters
{

CountingTcam::CountingTcam(const TcamParams &params) : params_(params)
{
    fh_assert(params_.entries > 0, "TCAM needs at least one entry");
    entries_.resize(params_.entries, Entry{BitFilter(params_.counters),
                                           false, 0});
}

bool
CountingTcam::closest(u64 value, unsigned &index, unsigned &count,
                      u64 &mask) const
{
    const unsigned n = static_cast<unsigned>(entries_.size());
    const unsigned mru = mru_;
    const bool mru_valid = mru < n && entries_[mru].valid;
    const unsigned mru_count =
        mru_valid ? entries_[mru].filter.mismatchCount(value) : 0;

    // MRU fast path: value locality makes the last-touched entry the
    // likely full match. The winner must stay the lowest-index full
    // match (the tie-break the campaign results are pinned against),
    // and only an index below mru can beat a fully-matching mru — the
    // scan above mru is skipped entirely.
    if (mru_valid && mru_count == 0) {
        index = mru;
        for (unsigned i = 0; i < mru; ++i) {
            if (entries_[i].valid &&
                entries_[i].filter.mismatchCount(value) == 0) {
                index = i;
                break;
            }
        }
        count = 0;
        mask = 0;
        return true;
    }

    bool found = false;
    for (unsigned i = 0; i < n; ++i) {
        const Entry &entry = entries_[i];
        if (!entry.valid)
            continue;
        const unsigned c =
            i == mru ? mru_count : entry.filter.mismatchCount(value);
        if (!found || c < count) {
            found = true;
            index = i;
            count = c;
            if (c == 0)
                break; // cannot do better than a full match
        }
    }
    // The mask is only needed for the winner (and is 0 on a match).
    if (found)
        mask = count ? entries_[index].filter.mismatchMask(value) : 0;
    return found;
}

TcamResult
CountingTcam::lookup(u64 value)
{
    ++accesses_;
    ++useClock_;
    TcamResult res;

    unsigned index = 0;
    unsigned count = 0;
    u64 mask = 0;
    if (!closest(value, index, count, mask)) {
        // Cold TCAM: install into entry 0 silently (fills happen only
        // in the first few accesses of a run).
        entries_[0].filter.install(value);
        entries_[0].valid = true;
        entries_[0].lastUse = useClock_;
        mru_ = 0;
        res.entry = 0;
        return res;
    }

    if (count == 0) {
        // Full match: reinforce the neighborhood.
        entries_[index].filter.observe(value);
        entries_[index].lastUse = useClock_;
        mru_ = index;
        res.entry = index;
        return res;
    }

    res.trigger = true;
    res.mismatchCount = count;
    res.mismatchMask = mask;

    // Prefer filling an invalid entry before loosening or replacing.
    for (unsigned i = 0; i < entries_.size(); ++i) {
        if (!entries_[i].valid) {
            entries_[i].filter.install(value);
            entries_[i].valid = true;
            entries_[i].lastUse = useClock_;
            mru_ = i;
            res.entry = i;
            res.replaced = true;
            return res;
        }
    }

    if (count <= params_.loosenThreshold) {
        // Loosen the closest filter to accommodate the value.
        entries_[index].filter.observe(value);
        entries_[index].lastUse = useClock_;
        mru_ = index;
        res.entry = index;
        return res;
    }

    // Replace the LRU entry with a fresh filter around the value.
    unsigned victim = 0;
    for (unsigned i = 1; i < entries_.size(); ++i)
        if (entries_[i].lastUse < entries_[victim].lastUse)
            victim = i;
    entries_[victim].filter.install(value);
    entries_[victim].lastUse = useClock_;
    mru_ = victim;
    res.entry = victim;
    res.replaced = true;
    return res;
}

TcamResult
CountingTcam::probe(u64 value) const
{
    TcamResult res;
    unsigned index = 0;
    unsigned count = 0;
    u64 mask = 0;
    if (!closest(value, index, count, mask))
        return res;
    res.entry = index;
    if (count == 0)
        return res;
    res.trigger = true;
    res.mismatchCount = count;
    res.mismatchMask = mask;
    return res;
}

unsigned
CountingTcam::validCount() const
{
    unsigned n = 0;
    for (const auto &entry : entries_)
        n += entry.valid ? 1 : 0;
    return n;
}

} // namespace fh::filters
