/**
 * @file
 * Idealized SRT (Reinhardt & Mukherjee) comparison model, as the paper
 * evaluates it (Section 4): the trailing thread occupies SMT resources
 * but sees no branch mispredictions (branch outcome queue) and no
 * cache misses (load value queue). SRT-iso additionally duplicates
 * only a fraction of the leading thread's instructions equal to
 * FaultHound's coverage, to equalize coverage between the schemes.
 */

#ifndef FH_REDUNDANCY_SRT_HH
#define FH_REDUNDANCY_SRT_HH

#include "pipeline/core.hh"
#include "pipeline/params.hh"

namespace fh::redundancy
{

struct SrtConfig
{
    /** Fraction of leading-thread instructions duplicated: 1.0 = full
     *  SRT; FaultHound's measured coverage for SRT-iso. */
    double coverage = 1.0;
};

/**
 * Derive SRT core parameters from a baseline: twice the hardware
 * contexts (each leading thread gains a trailing copy) and no
 * value-locality detector.
 */
pipeline::CoreParams srtParams(pipeline::CoreParams base);

/**
 * Configure the trailing contexts of an SRT core. Thread t in
 * [lead, 2*lead) is the idealized copy of thread t - lead; each copy
 * executes coverage * lead_budget instructions and then vacates its
 * context.
 */
void configureSrt(pipeline::Core &core, unsigned lead_threads,
                  const SrtConfig &cfg, u64 lead_budget);

/** Redundant (trailing-thread) instructions committed so far. */
u64 redundantCommitted(const pipeline::Core &core, unsigned lead_threads);

} // namespace fh::redundancy

#endif // FH_REDUNDANCY_SRT_HH
