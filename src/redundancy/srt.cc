#include "redundancy/srt.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace fh::redundancy
{

pipeline::CoreParams
srtParams(pipeline::CoreParams base)
{
    base.threads *= 2;
    base.detector = filters::DetectorParams::none();
    // The extra contexts need rename storage.
    base.physRegs = std::max(base.physRegs,
                             base.threads * isa::numArchRegs +
                                 base.robSize + 8);
    return base;
}

void
configureSrt(pipeline::Core &core, unsigned lead_threads,
             const SrtConfig &cfg, u64 lead_budget)
{
    fh_assert(core.numThreads() == 2 * lead_threads,
              "SRT core must have twice the lead contexts");
    fh_assert(cfg.coverage > 0.0 && cfg.coverage <= 1.0,
              "coverage fraction out of range");
    for (unsigned t = 0; t < lead_threads; ++t) {
        auto &opts = core.threadOptions(lead_threads + t);
        opts.oracleFetch = true;
        opts.perfectDcache = true;
        opts.maxInsts = std::max<u64>(
            1, static_cast<u64>(std::llround(cfg.coverage *
                                             static_cast<double>(
                                                 lead_budget))));
    }
}

u64
redundantCommitted(const pipeline::Core &core, unsigned lead_threads)
{
    u64 n = 0;
    for (unsigned t = lead_threads; t < core.numThreads(); ++t)
        n += core.committed(t);
    return n;
}

} // namespace fh::redundancy
