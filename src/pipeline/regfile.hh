/**
 * @file
 * Shared physical register file with ready bits and a free list.
 * The fault framework injects single-bit flips directly into register
 * values; the paper uses register-file injections to emulate back-end
 * control and datapath faults generally (Section 4).
 */

#ifndef FH_PIPELINE_REGFILE_HH
#define FH_PIPELINE_REGFILE_HH

#include <vector>

#include "sim/types.hh"

namespace fh::pipeline
{

class PhysRegFile
{
  public:
    explicit PhysRegFile(unsigned num_regs = 288);

    unsigned size() const { return static_cast<unsigned>(values_.size()); }

    u64 read(unsigned preg) const { return values_[preg]; }
    bool ready(unsigned preg) const { return ready_[preg] != 0; }

    void write(unsigned preg, u64 value)
    {
        values_[preg] = value;
        ready_[preg] = 1;
    }

    void markNotReady(unsigned preg) { ready_[preg] = 0; }
    void markReady(unsigned preg) { ready_[preg] = 1; }

    /** Allocate a free register; returns false when none available. */
    bool allocate(unsigned &preg);
    /** Return a register to the free list. */
    void release(unsigned preg);
    bool isFree(unsigned preg) const { return free_[preg] != 0; }
    unsigned freeCount() const
    {
        return static_cast<unsigned>(freeList_.size());
    }

    /** Flip one bit of one register (fault injection). */
    void flipBit(unsigned preg, unsigned bit)
    {
        values_[preg] ^= 1ULL << bit;
    }

    /**
     * Rebuild the free list from a liveness bitmap (map-based recovery
     * at a full rollback): every register not marked live becomes
     * free. Repairs free-list corruption left by faulty rename tags,
     * as long as the wrongly-freed register was not yet reallocated.
     */
    void resetFreeList(const std::vector<bool> &live);

    bool operator==(const PhysRegFile &other) const = default;

  private:
    std::vector<u64> values_;
    std::vector<u8> ready_;
    std::vector<u8> free_;
    std::vector<unsigned> freeList_;
};

} // namespace fh::pipeline

#endif // FH_PIPELINE_REGFILE_HH
