/**
 * @file
 * Shared physical register file with ready bits and a free list.
 * The fault framework injects single-bit flips directly into register
 * values; the paper uses register-file injections to emulate back-end
 * control and datapath faults generally (Section 4).
 *
 * Storage is four flat arrays (values / ready / free / free-stack) —
 * structure-of-arrays so the issue stage's wakeup checks stream the
 * one-byte ready bits without dragging values through the cache. The
 * arrays normally live in the owning core's arena (bind());
 * standalone construction with a register count allocates private
 * backing for the unit tests.
 */

#ifndef FH_PIPELINE_REGFILE_HH
#define FH_PIPELINE_REGFILE_HH

#include <vector>

#include "pipeline/arena.hh"
#include "sim/types.hh"

namespace fh::pipeline
{

class PhysRegFile
{
  public:
    PhysRegFile() = default;

    /** Standalone mode: allocate private backing for num_regs. */
    explicit PhysRegFile(unsigned num_regs);

    PhysRegFile(const PhysRegFile &other) { *this = other; }
    PhysRegFile &operator=(const PhysRegFile &other);
    PhysRegFile(PhysRegFile &&other) = default;
    PhysRegFile &operator=(PhysRegFile &&other) = default;

    /** Arena mode: adopt externally-laid-out arrays (no init). */
    void bind(u64 *values, u8 *ready, u8 *free_flags, u32 *free_stack,
              unsigned num_regs)
    {
        values_ = values;
        ready_ = ready;
        free_ = free_flags;
        freeStack_ = free_stack;
        numRegs_ = num_regs;
    }

    /** Initial state: all registers zero, ready, and free. */
    void reset();

    /** Pointer fixup after a member-wise arena copy. */
    void shiftBase(std::ptrdiff_t delta)
    {
        values_ = shiftPtr(values_, delta);
        ready_ = shiftPtr(ready_, delta);
        free_ = shiftPtr(free_, delta);
        freeStack_ = shiftPtr(freeStack_, delta);
    }

    unsigned size() const { return numRegs_; }

    u64 read(unsigned preg) const
    {
        // Fault-watch consumption: any value read of the watched
        // register means the (possibly corrupted) value escaped into
        // the dataflow — stop watching, no erasure claim.
        if (preg == watchPreg_)
            watchPreg_ = kNoWatch;
        return values_[preg];
    }
    bool ready(unsigned preg) const { return ready_[preg] != 0; }

    /** Watch-transparent read for metadata (digest maintenance): not a
     *  dataflow consumption, so it must not disarm the fault watch. */
    u64 peek(unsigned preg) const { return values_[preg]; }

    // Wakeup contract (Core's event-driven issue mode): every call
    // that can flip a ready bit 0->1 — write(), release(),
    // markReady(), resetFreeList() — must be followed by a
    // Core::wakePreg() (or drainAllWakeRows() for the bulk rebuild) at
    // its Core call site, or subscribed consumers sleep through the
    // transition. 1->0 transitions (allocate(), markNotReady()) need
    // no hook: the ready pool re-proves readiness every issue cycle.

    void write(unsigned preg, u64 value)
    {
        // Full-word producer write before any consumption: the watched
        // fault is erased from the machine.
        if (preg == watchPreg_) {
            watchPreg_ = kNoWatch;
            watchErased_ = true;
        }
        values_[preg] = value;
        ready_[preg] = 1;
    }

    void markNotReady(unsigned preg) { ready_[preg] = 0; }
    void markReady(unsigned preg) { ready_[preg] = 1; }

    /** Allocate a free register; returns false when none available. */
    bool allocate(unsigned &preg);
    /** Return a register to the free list (its ready bit reads as set
     *  again — wakeup-contract site, see above). */
    void release(unsigned preg);
    bool isFree(unsigned preg) const { return free_[preg] != 0; }
    unsigned freeCount() const { return freeCount_; }

    /** Flip one bit of one register (fault injection). */
    void flipBit(unsigned preg, unsigned bit)
    {
        values_[preg] ^= 1ULL << bit;
    }

    /**
     * Fault watch (campaign early termination, DESIGN.md "Arch-digest
     * early exit"): watch one register after a fault flip. If the
     * register is overwritten — producer write() of a reallocation, or
     * release() on squash / dead-on-arrival — before any read()
     * consumed it, the fault provably never escaped: watchErased()
     * turns true and the fork is equivalent to a fault-free fork. A
     * read() of the watched register silently disarms the watch (the
     * value escaped; no claim either way).
     */
    void armWatch(unsigned preg)
    {
        watchPreg_ = preg;
        watchErased_ = false;
    }
    void disarmWatch()
    {
        watchPreg_ = kNoWatch;
        watchErased_ = false;
    }
    bool watchErased() const { return watchErased_; }

    /**
     * Rebuild the free list from a liveness bitmap (map-based recovery
     * at a full rollback): every register not marked live becomes
     * free. Repairs free-list corruption left by faulty rename tags,
     * as long as the wrongly-freed register was not yet reallocated.
     */
    void resetFreeList(const std::vector<bool> &live);

  private:
    static constexpr u32 kNoWatch = ~u32(0);

    u64 *values_ = nullptr;
    u8 *ready_ = nullptr;
    u8 *free_ = nullptr;
    u32 *freeStack_ = nullptr; ///< LIFO of free pregs; freeCount_ deep
    unsigned numRegs_ = 0;
    unsigned freeCount_ = 0;
    /// Fault-watched register; mutable so the const read() hot path
    /// can disarm on consumption with a single compare.
    mutable u32 watchPreg_ = kNoWatch;
    bool watchErased_ = false;
    std::vector<std::byte> own_; ///< standalone-mode backing (else empty)
};

} // namespace fh::pipeline

#endif // FH_PIPELINE_REGFILE_HH
