#include "pipeline/stats_dump.hh"

#include <iomanip>

namespace fh::pipeline
{

namespace
{

void
line(std::ostream &os, const char *name, double value,
     const char *comment)
{
    os << std::left << std::setw(34) << name << std::setw(16)
       << std::setprecision(6) << value << "# " << comment << "\n";
}

void
line(std::ostream &os, const char *name, u64 value,
     const char *comment)
{
    os << std::left << std::setw(34) << name << std::setw(16) << value
       << "# " << comment << "\n";
}

} // namespace

void
dumpStats(const Core &core, std::ostream &os)
{
    const auto &s = core.stats();
    const auto &d = core.detector().stats();
    const double cycles = std::max<double>(1.0, double(s.cycles));
    const double committed = std::max<double>(1.0, double(s.committed));

    line(os, "sim.cycles", s.cycles, "simulated cycles");
    line(os, "sim.committed", s.committed, "committed instructions");
    line(os, "sim.ipc", committed / cycles, "committed IPC (all threads)");
    for (unsigned t = 0; t < core.numThreads(); ++t) {
        std::string name = "sim.committed_t" + std::to_string(t);
        line(os, name.c_str(), core.committed(t),
             "per-thread committed");
    }

    line(os, "pipeline.fetched", s.fetched, "instructions fetched");
    line(os, "pipeline.dispatched", s.dispatched,
         "instructions dispatched");
    line(os, "pipeline.issued", s.issued, "instructions issued");
    line(os, "pipeline.loads", s.loads, "loads dispatched");
    line(os, "pipeline.stores", s.stores, "stores dispatched");
    line(os, "pipeline.branches", s.branches, "branches dispatched");
    line(os, "pipeline.mispredicts", s.mispredicts,
         "branch direction mispredicts");
    line(os, "pipeline.mispredict_squashed", s.mispredictSquashed,
         "instructions squashed by mispredicts");
    line(os, "pipeline.reg_reads", s.regReads,
         "physical register reads");
    line(os, "pipeline.reg_writes", s.regWrites,
         "physical register writes");

    line(os, "recovery.replay_triggers", s.replayTriggers,
         "predecessor replays started");
    line(os, "recovery.replay_marked", s.replayMarked,
         "instructions marked for replay");
    line(os, "recovery.replays_executed", s.replaysExecuted,
         "replay re-executions completed");
    line(os, "recovery.fault_rollbacks", s.faultRollbacks,
         "full rollbacks from fault triggers");
    line(os, "recovery.rollback_squashed", s.rollbackSquashed,
         "instructions squashed by fault rollbacks");
    line(os, "recovery.reexecs", s.reexecs,
         "singleton re-executes at commit");

    const auto &l1i = core.hierarchy().l1i();
    const auto &l1d = core.hierarchy().l1d();
    const auto &l2 = core.hierarchy().l2();
    line(os, "mem.l1i_misses", l1i.misses(), "L1I misses");
    line(os, "mem.l1d_accesses", l1d.hits() + l1d.misses(),
         "L1D accesses");
    line(os, "mem.l1d_misses", l1d.misses(), "L1D misses");
    line(os, "mem.l1d_miss_rate", l1d.missRate(), "L1D miss rate");
    line(os, "mem.l2_misses", l2.misses(), "L2 misses");
    line(os, "mem.dtlb_misses", core.hierarchy().dtlb().misses(),
         "DTLB misses");

    if (core.detector().active()) {
        line(os, "detector.checks", d.checks,
             "completion-time filter checks");
        line(os, "detector.triggers", d.triggers,
             "first-level non-matches");
        line(os, "detector.suppressed", d.suppressed,
             "suppressed by the second-level filter");
        line(os, "detector.replays", d.replays,
             "replay actions requested");
        line(os, "detector.rollbacks", d.rollbacks,
             "rollback actions requested");
        line(os, "detector.squash_alarms", d.squashAlarms,
             "rename-fault squash alarms");
        line(os, "detector.commit_checks", d.commitChecks,
             "commit-time LSQ probes");
        line(os, "detector.commit_triggers", d.commitTriggers,
             "singleton re-executes requested");
        line(os, "detector.reexec_mismatches", d.reexecMismatches,
             "faults declared by re-execute compare");
        line(os, "detector.fp_per_kinst",
             1000.0 * double(d.replays + d.rollbacks) / committed,
             "false-positive recoveries per 1000 instructions");
    }
}

} // namespace fh::pipeline
