/**
 * @file
 * Gshare-style direction predictor with 2-bit saturating counters.
 * Branch targets are static in FH-RISC, so only the direction is
 * predicted; mispredictions therefore model direction misses only.
 */

#ifndef FH_PIPELINE_BRANCH_PREDICTOR_HH
#define FH_PIPELINE_BRANCH_PREDICTOR_HH

#include <vector>

#include "sim/types.hh"

namespace fh::pipeline
{

class BranchPredictor
{
  public:
    explicit BranchPredictor(unsigned entries = 4096);

    /** Predict the direction of the conditional branch at pc. */
    bool predict(unsigned tid, u64 pc) const;

    /** Train with the resolved direction. */
    void update(unsigned tid, u64 pc, bool taken);

    u64 lookups() const { return lookups_; }
    u64 correct() const { return correct_; }

    bool operator==(const BranchPredictor &other) const = default;

  private:
    unsigned index(unsigned tid, u64 pc) const;

    std::vector<u8> counters_; ///< 2-bit saturating, init weakly taken
    std::vector<u16> history_; ///< per-thread global history
    u64 lookups_ = 0;
    u64 correct_ = 0;
};

} // namespace fh::pipeline

#endif // FH_PIPELINE_BRANCH_PREDICTOR_HH
