/**
 * @file
 * Core configuration (Table 2 of the paper). One Core models one
 * SMT-enabled out-of-order processor; the multicore experiments run
 * independent cores (the workloads have disjoint footprints).
 */

#ifndef FH_PIPELINE_PARAMS_HH
#define FH_PIPELINE_PARAMS_HH

#include "filters/detector.hh"
#include "mem/hierarchy.hh"
#include "sim/types.hh"

namespace fh::pipeline
{

struct CoreParams
{
    /** SMT hardware contexts (2 normally; 4 for SRT's extra copies). */
    unsigned threads = 2;

    unsigned fetchWidth = 4;
    unsigned dispatchWidth = 4;
    unsigned issueWidth = 4;
    unsigned commitWidth = 4;

    unsigned numAlu = 4;
    unsigned numMul = 2;
    unsigned memPorts = 2;

    unsigned iqSize = 40;
    /** Shared ROB capacity; partitioned evenly across threads. */
    unsigned robSize = 250;
    unsigned lsqSize = 64;
    /** Shared physical integer registers: sized so renaming never
     *  binds (arch state of up to 4 contexts + a full ROB), keeping
     *  baseline and SRT configurations comparable. */
    unsigned physRegs = 400;

    /** Recently-completed instructions held for predecessor replay.
     *  The paper uses 7; our completion stream is burstier (4-wide
     *  single-cycle back-end), so the default is slightly deeper to
     *  give the same produce-to-consume reach (see EXPERIMENTS.md). */
    unsigned delayBufferSize = 16;

    /** Cycles from fetch to dispatch (front-end depth; GEMS/Opal-like
     *  deep pipeline). */
    Cycle frontEndDepth = 10;
    /** Extra redirect penalty on a branch mispredict or rollback. */
    Cycle redirectPenalty = 5;
    /** Cycles a singleton re-execute steals from instruction issue. */
    Cycle reexecPenalty = 2;
    /**
     * Cycles between an instruction's completion and its earliest
     * commit (retirement-pipeline depth). The paper's machine has
     * complete-to-commit times of several tens of cycles (Section
     * 3.5); this keeps recently-completed producers in the ROB long
     * enough to be replayable when a consumer's check triggers.
     */
    Cycle commitDelay = 25;

    unsigned predictorEntries = 4096;

    /**
     * Issue-stage mode. False (default): producer-indexed wakeup — a
     * per-preg wake matrix plus per-thread ready pools feed the issue
     * stage, and idle cycles fast-forward to the next scheduled event.
     * True: the legacy per-cycle readiness scan over the whole issue
     * queue, kept compiled in as the equivalence oracle — candidate
     * sets are produced in identical seq order either way, so every
     * architectural outcome and classification is bit-identical
     * (tests/test_fuzz_equivalence.cc pins it). Defaults from the
     * FH_SCAN_ISSUE environment variable (=1 selects the scan).
     */
    bool scanIssue = envScanIssue();
    static bool envScanIssue();

    mem::HierarchyParams memory{};
    filters::DetectorParams detector{};
};

} // namespace fh::pipeline

#endif // FH_PIPELINE_PARAMS_HH
