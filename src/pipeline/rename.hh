/**
 * @file
 * Per-thread register rename state: the speculative (front-end) map
 * and the retirement (architectural) map. A full pipeline rollback
 * recovers the speculative map from the retirement map, which is what
 * lets FaultHound's squash recover rename faults (Section 3.4).
 */

#ifndef FH_PIPELINE_RENAME_HH
#define FH_PIPELINE_RENAME_HH

#include <array>
#include <vector>

#include "isa/instruction.hh"
#include "sim/types.hh"

namespace fh::pipeline
{

/** Rename maps of one SMT context. */
class RenameMap
{
  public:
    RenameMap() = default;

    /** Initialize both maps to the given identity pregs. */
    void init(const std::array<unsigned, isa::numArchRegs> &pregs);

    unsigned spec(unsigned arch) const { return spec_[arch]; }
    unsigned retire(unsigned arch) const { return retire_[arch]; }

    /** Front-end rename: arch now maps to preg; returns the old one. */
    unsigned rename(unsigned arch, unsigned preg);

    /** Undo one rename during a mispredict walk-back. */
    void restore(unsigned arch, unsigned old_preg) { spec_[arch] = old_preg; }

    /** Commit: the retirement map advances to preg. */
    void commit(unsigned arch, unsigned preg) { retire_[arch] = preg; }

    /** Full rollback: speculative map recovered from retirement map. */
    void rollbackToRetire() { spec_ = retire_; }

    /** Flip one bit of one speculative map entry (rename fault). */
    void flipSpecBit(unsigned arch, unsigned bit, unsigned num_pregs);

    bool operator==(const RenameMap &other) const = default;

  private:
    std::array<unsigned, isa::numArchRegs> spec_{};
    std::array<unsigned, isa::numArchRegs> retire_{};
};

} // namespace fh::pipeline

#endif // FH_PIPELINE_RENAME_HH
