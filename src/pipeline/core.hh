/**
 * @file
 * Cycle-level out-of-order SMT core with FaultHound's recovery
 * machinery: delayed issue-queue exit through a delay buffer,
 * predecessor replay, full-pipeline rollback, and commit-time singleton
 * re-execution for the LSQ (Sections 3.3-3.5 of the paper).
 *
 * The core is a plain copyable value: the tandem fault framework forks
 * it (together with its memory, caches, filters and RNG-free state) at
 * an injection point and runs golden and faulty copies side by side.
 * All per-cycle-touched pipeline state lives in one flat arena
 * (pipeline/arena.hh), so that fork — and the campaign's in-place
 * trial-slot restore via copy-assignment — is a single-block memcpy
 * plus a handful of flat-vector copies, with no per-fork allocation.
 */

#ifndef FH_PIPELINE_CORE_HH
#define FH_PIPELINE_CORE_HH

#include <array>
#include <unordered_map>
#include <vector>

#include "filters/detector.hh"
#include "isa/functional.hh"
#include "isa/program.hh"
#include "mem/hierarchy.hh"
#include "mem/memory.hh"
#include "pipeline/arena.hh"
#include "pipeline/branch_predictor.hh"
#include "pipeline/params.hh"
#include "pipeline/regfile.hh"
#include "pipeline/rename.hh"
#include "pipeline/rob.hh"
#include "sim/types.hh"

namespace fh::pipeline
{

/** Event counters of one core; inputs to the energy model. */
struct CoreStats
{
    u64 cycles = 0;
    u64 fetched = 0;
    u64 dispatched = 0;
    u64 issued = 0;
    u64 committed = 0;
    u64 loads = 0;   ///< dispatched (includes wrong path)
    u64 stores = 0;
    u64 branches = 0;
    u64 committedLoads = 0;
    u64 committedStores = 0;
    u64 committedBranches = 0;
    u64 mispredicts = 0;
    u64 mispredictSquashed = 0;

    u64 replayTriggers = 0;   ///< predecessor replays started
    u64 replayMarked = 0;     ///< instructions marked for replay
    u64 replaysExecuted = 0;  ///< replay re-executions completed
    u64 faultRollbacks = 0;   ///< full rollbacks from fault triggers
    u64 rollbackSquashed = 0; ///< instructions squashed by those
    u64 reexecs = 0;          ///< singleton re-executes at commit
    u64 delayBufferSquashes = 0;

    u64 regReads = 0;
    u64 regWrites = 0;

    // Event-driven scheduler observability. These describe *how* the
    // issue stage did its work, so they legitimately differ between
    // wakeup and scan-oracle mode; everything above is issue-order
    // driven and stays bit-identical across modes (the fuzz
    // equivalence suite compares those fields explicitly).
    u64 wakeupHits = 0;      ///< consumers moved wake row -> ready pool
    u64 overflowParks = 0;   ///< subscriptions parked on the overflow list
    u64 overflowRescans = 0; ///< overflow refs examined by the slow path
    u64 fastForwarded = 0;   ///< idle cycles skipped (included in cycles)
    u64 issueEvals = 0;      ///< cycles the issue stage examined refs
    u64 issueCandidates = 0; ///< ready candidates across those cycles

    bool operator==(const CoreStats &other) const = default;
};

/** Per-thread execution options (used by the SRT models). */
struct ThreadOptions
{
    /** Perfect branch direction via a fetch-time functional oracle
     *  (models SRT's branch outcome queue). Requires detector None. */
    bool oracleFetch = false;
    /** Loads always hit in the L1 (models SRT's load value queue). */
    bool perfectDcache = false;
    /** Halt after committing this many instructions (0 = unlimited);
     *  models SRT-iso's partial redundancy. */
    u64 maxInsts = 0;
    /**
     * Freeze the thread at exactly this commit count (0 = never): the
     * thread stops committing (and fetching) without squashing, so a
     * tandem fork's architectural state is sampled at a precise
     * per-thread instruction boundary.
     */
    u64 stopAfterInsts = 0;

    bool operator==(const ThreadOptions &other) const = default;
};

/** Where a fault-injected physical register was in its lifetime. */
enum class PregPhase : u8
{
    Free,
    InFlight,     ///< destination of an uncompleted instruction
    Completed,    ///< written, owner not yet committed
    Architectural ///< named by a retirement map
};

/** Per-bit value-change probe backing Figure 6. */
struct ValueProbe
{
    bool enabled = false;
    /** Previous value per static instruction, per stream. */
    std::array<std::unordered_map<u64, u64>, 3> prev;
    std::array<std::array<u64, wordBits>, 3> bitChanges{};
    std::array<u64, 3> samples{};

    void sample(filters::StreamKind kind, u64 pc, u64 value);

    bool operator==(const ValueProbe &other) const = default;
};

class Core;

/**
 * Passive observer of one core's retirement stream. The fault
 * campaign's golden checkpoint ledger hangs off this to sample
 * architectural state at exact per-thread commit counts, instead of
 * re-executing a golden fork to reach the same points.
 *
 * Callbacks fire synchronously inside tick(), once per retired
 * instruction (committed counts take every value — commits never skip
 * a count, even with commitWidth > 1) and once when a thread halts,
 * whether by committing a Halt / its maxInsts budget (after the
 * matching onCommit) or by raising a trap (no commit). The observer
 * must not mutate the core.
 */
class CommitObserver
{
  public:
    virtual ~CommitObserver() = default;
    /** Thread tid just retired one instruction. */
    virtual void onCommit(const Core &core, unsigned tid) = 0;
    /** Thread tid just halted (trap, Halt, or maxInsts). */
    virtual void onThreadHalted(const Core &core, unsigned tid) = 0;
};

/** The core. See file comment. */
class Core
{
  public:
    Core(const CoreParams &params, const isa::Program *prog);

    // Copying rebinds every arena view onto the copy's own buffer;
    // copy-assignment between same-parameter cores reuses the target's
    // buffers (pure memcpy, no allocation) — the campaign's trial
    // slots and per-worker fork scratch machines depend on that.
    Core(const Core &other);
    Core &operator=(const Core &other);
    Core(Core &&other) = default;
    Core &operator=(Core &&other) = default;

    /** Advance one cycle. */
    void tick();

    /**
     * Advance exactly `cycles` cycles (or until every thread halts),
     * fast-forwarding through provably idle stretches in wakeup mode:
     * when no stage can make progress before the next scheduled event
     * (pending finish, fetch stall expiry, commit-delay expiry, queued
     * front-end work), cycle_ jumps there instead of ticking through
     * dead cycles. State after advance(n) is bit-identical to n
     * tick() calls — dead cycles are exactly the ticks with no effect
     * beyond the cycle counters. The campaign's inter-injection gaps
     * run through this.
     */
    void advance(Cycle cycles);

    /** Run until every thread halted or max_cycles elapse. */
    void run(Cycle max_cycles);

    /**
     * Run until every active thread has committed at least the given
     * per-thread totals (or halted/trapped), bounded by max_cycles.
     * Returns false on the cycle bound (hung).
     */
    bool runUntilCommitted(const std::vector<u64> &targets,
                           Cycle max_cycles);

    /**
     * Timing-measurement run: freeze every thread at exactly
     * per_thread committed instructions (frozen threads stop fetching
     * and committing) and run until all threads are frozen or halted.
     * Returns the cycles elapsed, so per-scheme comparisons measure
     * the same per-thread work.
     */
    Cycle runPerThreadBudget(u64 per_thread, Cycle max_cycles);

    bool allHalted() const;
    bool halted(unsigned tid) const { return threads_[tid].halted; }
    isa::Trap trapOf(unsigned tid) const { return threads_[tid].trap; }
    bool anyTrap() const;

    Cycle cycle() const { return cycle_; }
    u64 committed(unsigned tid) const { return threads_[tid].committed; }
    u64 committedTotal() const;

    /** Architectural view of one thread (retirement map + next pc). */
    isa::ArchState archState(unsigned tid) const;

    /**
     * O(1)-maintained digest of archState(tid), updated at commit /
     * halt (DESIGN.md "Arch-digest early exit"). Equals
     * isa::archStateDigest(archState(tid)) on any fault-free core; on
     * a faulty fork the incremental value can go stale (a corrupted
     * free list may rewrite a retire-mapped register without a
     * commit), so fork-side compares must recompute from archState()
     * instead of reading this.
     */
    u64 archDigest(unsigned tid) const
    {
        return threads_[tid].archDigest;
    }

    const CoreParams &params() const { return params_; }
    unsigned numThreads() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    mem::Memory &memory() { return memory_; }
    const mem::Memory &memory() const { return memory_; }
    mem::Hierarchy &hierarchy() { return hier_; }
    const mem::Hierarchy &hierarchy() const { return hier_; }
    filters::Detector &detector() { return detector_; }
    const filters::Detector &detector() const { return detector_; }
    const BranchPredictor &predictor() const { return predictor_; }
    CoreStats &stats() { return stats_; }
    const CoreStats &stats() const { return stats_; }
    ValueProbe &probe() { return probe_; }

    ThreadOptions &threadOptions(unsigned tid)
    {
        return threads_[tid].opts;
    }

    /** Enable/disable detector checks at runtime (classification runs
     *  disable them without changing the trained filter state). */
    void setDetectorEnabled(bool enabled) { detectorEnabled_ = enabled; }
    bool detectorEnabled() const { return detectorEnabled_; }

    /**
     * Attach a retirement-stream observer (null detaches). The pointer
     * is borrowed, not owned, and is copied along with the core, so a
     * fork of an observed master must detach before ticking (runFork
     * does) — otherwise the observer would see a foreign core.
     */
    void setCommitObserver(CommitObserver *obs) { observer_ = obs; }

    /**
     * When set, threads frozen at their stopAfterInsts boundary also
     * stop dispatching: their already-fetched instructions stop
     * entering the ROB/IQ and consuming physical registers. Frozen
     * threads never commit again, so this cannot change any
     * architectural outcome — it only stops dead front-end work.
     * Issue/complete still drain in-flight entries (so shared IQ slots
     * are released), and fetch already skips frozen threads. Off by
     * default; the tandem classification forks (detector disabled)
     * turn it on.
     */
    void setQuiesceFrozen(bool on) { quiesceFrozen_ = on; }

    /** True once a singleton re-execute comparison declared a fault. */
    bool faultDetected() const { return faultDetected_; }

    // ---- Fault injection hooks (Section 4 methodology) ----

    unsigned numPhysRegs() const { return regfile_.size(); }
    /** Flip one bit of one physical register. */
    void injectRegfileBit(unsigned preg, unsigned bit);
    /**
     * Destination registers of instructions currently in flight
     * (dispatched, not yet committed). Faults drawn from these emulate
     * back-end datapath/control faults, which corrupt values on their
     * way through the pipeline (Section 4).
     */
    std::vector<unsigned> inflightDestPregs() const;
    /** Lifetime phase of a register, for the Figure 11 bins. */
    PregPhase pregPhase(unsigned preg) const;

    /** Number of LSQ entries with a captured address. */
    unsigned lsqOccupied() const;
    /**
     * Flip one bit of the nth occupied LSQ entry; addr_field selects
     * the address (true) or the store-data field (false; stores only —
     * falls back to the address for loads). Returns false if fewer
     * than nth+1 entries are occupied.
     */
    bool injectLsqBit(unsigned nth, bool addr_field, unsigned bit);

    /** Flip one bit of a speculative rename-map entry. */
    void injectRenameBit(unsigned tid, unsigned arch, unsigned bit);

    /**
     * Fault watch (campaign early termination): after injecting a
     * register-file flip, arm a watch on the register. runUntilCommitted
     * returns as soon as the regfile reports the watched value was
     * overwritten without ever being read — the fork is then provably
     * equivalent to a fault-free fork (see PhysRegFile::armWatch).
     */
    void armRegfileWatch(unsigned preg)
    {
        regfile_.armWatch(preg);
        stopOnWatchErased_ = true;
    }
    void disarmRegfileWatch()
    {
        regfile_.disarmWatch();
        stopOnWatchErased_ = false;
    }
    bool regfileWatchErased() const { return regfile_.watchErased(); }

    // ---- Injection-site attribution (vulnerability profiles) ----

    /** PC of the in-flight instruction producing preg (0 if none). */
    u64 pcOfDestPreg(unsigned preg) const;
    /** PC of the nth occupied LSQ entry, in injectLsqBit() order
     *  (0 if fewer than nth+1 entries are occupied). */
    u64 pcOfLsqNth(unsigned nth) const;
    /** Next-to-commit PC of one thread (rename-fault attribution). */
    u64 nextCommitPcOf(unsigned tid) const
    {
        return threads_[tid].nextCommitPc;
    }

    /** Read-only ROB access for tests and debugging probes. */
    const Rob &rob(unsigned tid) const { return robs_[tid]; }

    /** Recount issue-queue occupancy from scratch (test invariant:
     *  must always equal the incrementally-tracked count). */
    unsigned computeIqOccupancy() const;
    unsigned iqOccupancy() const { return iqCount_; }
    /** Recount LSQ occupancy from scratch (test invariant). */
    unsigned computeLsqOccupancy() const;
    unsigned lsqOccupancy() const
    {
        unsigned n = 0;
        for (unsigned c : lsqCounts_)
            n += c;
        return n;
    }

  private:
    struct FetchedInst
    {
        isa::Instruction inst;
        u64 pc = 0;
        bool predTaken = false;
        Cycle availAt = 0;

        bool operator==(const FetchedInst &other) const = default;
    };

    struct ThreadState
    {
        u64 fetchPc = 0;
        Cycle fetchStallUntil = 0;
        bool fetchBlocked = false; ///< fetched Halt or ran off text
        bool halted = false;
        isa::Trap trap = isa::Trap::None;
        u64 nextCommitPc = 0;
        u64 committed = 0;
        u64 exemptChecks = 0; ///< post-rollback "deemed final" budget
        RingView<FetchedInst> fetchQ;
        RingView<u32> delayBuffer; ///< rob slots, oldest first
        RingView<u32> storeList;   ///< in-flight store slots
        ThreadOptions opts;
        isa::ArchState oracle; ///< fetch-time oracle (oracleFetch)
        /// Incremental isa::archStateDigest of this thread; maintained
        /// at commit/halt, trustworthy on fault-free cores only (see
        /// Core::archDigest).
        u64 archDigest = 0;
    };

    /** One age-ordered scan element of the issue/complete stages. */
    struct SeqRef
    {
        SeqNum seq;
        u32 tid;
        u32 slot;
    };

    /**
     * Issued-list element: a SeqRef plus the finish time recorded at
     * issue. The complete scan compares the local key first and only
     * touches the ROB header once the key is due, so in-flight
     * long-latency entries cost one word read per cycle instead of a
     * header load. The key never exceeds the entry's live finishCycle
     * (equal at push; deferral only pushes the live value later), so
     * "key in the future" proves "not completing this cycle".
     */
    struct FinishRef
    {
        Cycle finish;
        SeqNum seq;
        u32 tid;
        u32 slot;
    };

    // Pipeline stages, called newest-to-oldest each tick.
    void commitStage();
    void completeStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    // ---- Producer-indexed wakeup (default issue mode) ----
    //
    // Invariant: every Dispatched entry is referenced by the ready
    // pool, the overflow list, or exactly one wake row keyed by a
    // source preg that was not ready when the entry subscribed. Wake
    // rows drain into the pool at every ready-bit 0->1 transition
    // (wakePreg below — completion writes, commit/squash releases,
    // rollback free-list rebuilds), so the pool+overflow scan sees
    // every entry the full-IQ scan would find ready, applies the
    // identical readiness predicate, and sorts candidates by their
    // unique seq — the candidate order is provably the scan order.

    /** Route a newly Dispatched entry: pool if its scanned-in-order
     *  sources are ready, else subscribe to the first not-ready one. */
    void enqueueForIssue(unsigned tid, unsigned slot, const RobHot &h);
    /** Park ref on wake row `preg` (overflow list when the row stays
     *  full after compacting stale refs). */
    void subscribeWaiter(unsigned preg, const SeqRef &ref);
    /** Drain row `preg` into the ready pools (ready bit went 0->1). */
    void wakePreg(unsigned preg);
    /** Conservative mass wake after resetFreeList flips many ready
     *  bits at once (fault rollback): drain every non-empty row. */
    void drainAllWakeRows();
    /** Collect this cycle's issue candidates into scanScratch_ (seq
     *  order) — scan oracle and wakeup flavors. */
    void collectCandidatesScan();
    void collectCandidatesWakeup();
    /** Issue scanScratch_ against the port/width limits. */
    void issueCandidates();

    /** Earliest cycle > cycle_ at which any stage can make progress,
     *  or kNoEvent when nothing is scheduled. */
    Cycle nextEventCycle() const;
    /** Jump cycle_ to min(nextEventCycle() - 1, limit); both cycle_
     *  and stats_.cycles advance by the skip. */
    void fastForward(Cycle limit);

    /** Try to commit the head of one thread; true if it retired. */
    bool tryCommitHead(unsigned tid);
    void executeAtIssue(unsigned tid, unsigned slot);
    void completeEntry(unsigned tid, unsigned slot);
    void resolveBranch(unsigned tid, unsigned slot);
    void runCompleteChecks(unsigned tid, unsigned slot);

    void triggerReplay(unsigned tid);
    void faultRollback(unsigned tid);
    void squashYounger(unsigned tid, SeqNum seq);
    void squashAllOf(unsigned tid);
    void undoRenameOf(RobCold &entry, unsigned tid);
    void purgeFromQueues(ThreadState &ts, const RobHot &h, RobCold &e,
                         unsigned slot);
    void redirectFetch(unsigned tid, u64 pc);

    /** True if the entry holds an issue-queue slot. */
    static bool occupiesIq(const RobHot &h);

    /** Append to a scan list, compacting stale refs on overflow with
     *  the same predicate the per-cycle scans apply (so the overflow
     *  path is behavior-invisible). */
    void pushRef(RefList<SeqRef> &list, EntryState want,
                 const SeqRef &ref);
    void pushRef(RefList<FinishRef> &list, EntryState want,
                 const FinishRef &ref);

    /** Stable age-order sort of a scan batch. Seq keys are unique, so
     *  any comparison sort yields the identical order; insertion sort
     *  wins on these small, mostly-sorted batches. */
    static void sortBySeq(RefList<SeqRef> &v);

    /** Fix every arena view pointer after a member-wise copy. */
    void rebindViews(const Core &other);

    /**
     * Memory-ordering check for a load about to issue at addr: blocked
     * while any older store's address is unknown, or an older store to
     * the same address has not yet captured its data.
     */
    bool loadBlocked(unsigned tid, SeqNum seq, Addr addr) const;
    u64 loadValueFor(unsigned tid, SeqNum seq, Addr addr) const;
    bool fetchOne(unsigned tid);

    CoreParams params_;
    const isa::Program *prog_;

    Cycle cycle_ = 0;
    SeqNum nextSeq_ = 1;

    mem::Memory memory_;
    mem::Hierarchy hier_;
    BranchPredictor predictor_;
    filters::Detector detector_;
    bool detectorEnabled_ = true;
    bool faultDetected_ = false;
    bool quiesceFrozen_ = false;
    /// runUntilCommitted returns early once the regfile fault watch
    /// reports erasure (campaign early termination; armRegfileWatch).
    bool stopOnWatchErased_ = false;
    CommitObserver *observer_ = nullptr;

    /** Flat backing for all per-cycle pipeline state; every view
     *  below points into it. Declared before the views so copies have
     *  the buffer ready when views rebind. */
    CoreArena arena_;

    PhysRegFile regfile_;
    std::vector<RenameMap> renames_;
    std::vector<Rob> robs_;
    std::vector<ThreadState> threads_;

    unsigned iqCount_ = 0;
    std::vector<unsigned> lsqCounts_; ///< per-context LSQ partitions

    /** Scratch for the per-cycle issue/complete batches, arena-backed
     *  so the hot path performs zero steady-state heap traffic (on the
     *  scan-oracle path too). Always empty outside a stage. */
    RefList<SeqRef> scanScratch_;

    /**
     * Per-thread slot lists driving the issue and complete scans:
     * entries possibly in the issue queue (Dispatched) and possibly
     * executing (Issued). Conservative supersets — every transition
     * into the state appends a ref, and the per-cycle scans drop refs
     * whose entry no longer matches (squashed, rolled back, reused or
     * moved on), so the scanned set is exactly the entries the full
     * ROB walk used to find. Part of the machine snapshot: forks
     * resume with the lists their master had.
     */
    std::vector<RefList<SeqRef>> iqLists_;
    std::vector<RefList<FinishRef>> issuedLists_;

    /**
     * Wakeup-mode scheduler state (all arena-backed; scan-oracle mode
     * allocates but never touches it, keeping the two layouts — and
     * therefore cross-mode copy-assignment — identical):
     *  - wakeRows_[preg]: consumers subscribed to producer preg
     *    (fixed-capacity rows, one per physical register);
     *  - readyPools_[tid]: entries whose subscribed source went ready
     *    (or that dispatched fully ready); re-validated every issue
     *    cycle with the full scan predicate, so non-monotonic
     *    readiness (replay markNotReady) re-subscribes them;
     *  - overflowLists_[tid]: waiters that found their row full — the
     *    "never wakes" parking lot (dangling rename-fault tags land
     *    here too when their row saturates), drained by a slow-path
     *    rescan each issue cycle.
     */
    std::vector<RefList<SeqRef>> wakeRows_;
    std::vector<RefList<SeqRef>> readyPools_;
    std::vector<RefList<SeqRef>> overflowLists_;

    unsigned fetchRotate_ = 0;
    Cycle issueBlockedUntil_ = 0;

    CoreStats stats_;
    ValueProbe probe_;
};

} // namespace fh::pipeline

#endif // FH_PIPELINE_CORE_HH
