#include "pipeline/rename.hh"

namespace fh::pipeline
{

void
RenameMap::init(const std::array<unsigned, isa::numArchRegs> &pregs)
{
    spec_ = pregs;
    retire_ = pregs;
}

unsigned
RenameMap::rename(unsigned arch, unsigned preg)
{
    unsigned old_preg = spec_[arch];
    spec_[arch] = preg;
    return old_preg;
}

void
RenameMap::flipSpecBit(unsigned arch, unsigned bit, unsigned num_pregs)
{
    // Flip within the tag width; wrap into range like a real tag that
    // indexes a power-of-two-padded register file.
    unsigned flipped = spec_[arch] ^ (1u << bit);
    spec_[arch] = flipped % num_pregs;
}

} // namespace fh::pipeline
