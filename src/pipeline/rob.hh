/**
 * @file
 * Re-order buffer. One Rob instance per SMT context (the shared ROB of
 * Table 2 is partitioned evenly). Entries carry everything the stages
 * need — issue-queue residency, LSQ fields, replay marks — so that the
 * whole core state remains a plain copyable value for tandem forking.
 */

#ifndef FH_PIPELINE_ROB_HH
#define FH_PIPELINE_ROB_HH

#include <vector>

#include "isa/functional.hh"
#include "isa/instruction.hh"
#include "sim/types.hh"

namespace fh::pipeline
{

/** Lifecycle of one in-flight instruction. */
enum class EntryState : u8
{
    Dispatched, ///< in the issue queue, waiting for operands/ports
    Issued,     ///< executing; finishes at finishCycle
    Completed   ///< executed; waiting to commit (may be replay-marked)
};

constexpr unsigned invalidPreg = ~0u;

/** One in-flight instruction. */
struct RobEntry
{
    // Hot header: everything the per-cycle issue/complete scans read
    // while rejecting a slot, packed at the front so a scanned entry
    // usually costs a single cache-line fill.
    bool valid = false;
    EntryState state = EntryState::Dispatched;
    bool isLoad = false;
    bool isStore = false;
    unsigned tid = 0;
    SeqNum seq = 0;
    Cycle finishCycle = 0;
    unsigned src1Preg = invalidPreg;
    unsigned src2Preg = invalidPreg;

    u64 pc = 0;
    isa::Instruction inst;

    unsigned destPreg = invalidPreg;
    unsigned oldPreg = invalidPreg;

    u64 result = 0; ///< ALU result / load value / branch direction
    /**
     * Held in the delay buffer for potential predecessor replay. An
     * issue-queue slot is occupied while Dispatched (conventional) or
     * while Completed-and-in-delay-buffer (FaultHound's delayed exit,
     * Section 3.3); issued instructions free their slot as in real
     * schedulers.
     */
    bool inDelayBuffer = false;
    bool inReplay = false;      ///< re-executing; triggers are ignored
    bool completedOnce = false; ///< completed at least one execution

    // Memory fields (double as the LSQ entry; isLoad/isStore live in
    // the hot header above). Stores issue when the address operand is
    // ready (split store-address/store-data): the data is captured at
    // completion, which defers until it is ready.
    bool addrValid = false;
    bool dataValid = false; ///< store data captured
    Addr effAddr = 0;
    u64 storeData = 0; ///< store: data to write
    u64 loadValue = 0; ///< load: value written back
    bool reexecDone = false; ///< singleton re-execute already performed
    Cycle commitReadyAt = 0; ///< commit stall for singleton re-execute

    // Branch fields.
    bool predTaken = false;
    bool usedTaken = false; ///< direction younger fetch actually followed
    bool resolvedOnce = false;

    isa::Trap trap = isa::Trap::None;

    bool operator==(const RobEntry &other) const = default;
};

/** Circular per-thread ROB partition. */
class Rob
{
  public:
    explicit Rob(unsigned capacity = 125);

    bool full() const { return count_ == entries_.size(); }
    bool empty() const { return count_ == 0; }
    unsigned size() const { return count_; }
    unsigned capacity() const
    {
        return static_cast<unsigned>(entries_.size());
    }

    /** Allocate the next entry (must not be full); returns its slot. */
    unsigned allocate();

    /** Slot index of the i-th oldest valid entry. */
    unsigned slotAt(unsigned i) const
    {
        return (head_ + i) % static_cast<unsigned>(entries_.size());
    }

    unsigned headSlot() const { return head_; }
    RobEntry &at(unsigned slot) { return entries_[slot]; }
    const RobEntry &at(unsigned slot) const { return entries_[slot]; }
    RobEntry &head() { return entries_[head_]; }
    const RobEntry &head() const { return entries_[head_]; }

    /** Retire the head entry. */
    void popHead();

    /** Remove the youngest entry (mispredict walk-back). */
    void popTail();

    /** The youngest valid entry's slot (rob must be non-empty). */
    unsigned tailSlot() const
    {
        return slotAt(count_ - 1);
    }

    void clear();

    bool operator==(const Rob &other) const = default;

  private:
    std::vector<RobEntry> entries_;
    unsigned head_ = 0;
    unsigned count_ = 0;
};

} // namespace fh::pipeline

#endif // FH_PIPELINE_ROB_HH
