/**
 * @file
 * Re-order buffer. One Rob instance per SMT context (the shared ROB of
 * Table 2 is partitioned evenly). Entries are split structure-of-arrays
 * style into a 32-byte hot header — everything the per-cycle issue and
 * complete scans read while rejecting a slot — and a cold remainder
 * touched only once a slot is actually dispatched, executed or
 * committed, so a scan sweeps four slots per pair of cache lines
 * instead of spanning lines entry by entry.
 *
 * Both arrays normally live in the owning core's arena (bind());
 * standalone construction with a capacity allocates private backing so
 * unit tests can exercise the circular mechanics directly.
 */

#ifndef FH_PIPELINE_ROB_HH
#define FH_PIPELINE_ROB_HH

#include <vector>

#include "isa/functional.hh"
#include "isa/instruction.hh"
#include "pipeline/arena.hh"
#include "sim/types.hh"

namespace fh::pipeline
{

/** Lifecycle of one in-flight instruction. */
enum class EntryState : u8
{
    Dispatched, ///< in the issue queue, waiting for operands/ports
    Issued,     ///< executing; finishes at finishCycle
    Completed   ///< executed; waiting to commit (may be replay-marked)
};

constexpr unsigned invalidPreg = ~0u;

/**
 * Scan-hot fields of one in-flight instruction: validity, lifecycle
 * state, the memory-op bits, the source tags the wakeup check reads,
 * the age key, and the completion time. Exactly 32 bytes.
 */
struct RobHot
{
    bool valid = false;
    EntryState state = EntryState::Dispatched;
    bool isLoad = false;
    bool isStore = false;
    u32 src1Preg = invalidPreg;
    u32 src2Preg = invalidPreg;
    SeqNum seq = 0;
    Cycle finishCycle = 0;
};

static_assert(sizeof(RobHot) == 32, "hot header must stay one half-line");

/** Everything else about one in-flight instruction. */
struct RobCold
{
    unsigned tid = 0;
    u64 pc = 0;
    isa::Instruction inst;

    unsigned destPreg = invalidPreg;
    unsigned oldPreg = invalidPreg;

    u64 result = 0; ///< ALU result / load value / branch direction
    /**
     * Held in the delay buffer for potential predecessor replay. An
     * issue-queue slot is occupied while Dispatched (conventional) or
     * while Completed-and-in-delay-buffer (FaultHound's delayed exit,
     * Section 3.3); issued instructions free their slot as in real
     * schedulers.
     */
    bool inDelayBuffer = false;
    bool inReplay = false;      ///< re-executing; triggers are ignored
    bool completedOnce = false; ///< completed at least one execution

    // Memory fields (double as the LSQ entry; isLoad/isStore live in
    // the hot header). Stores issue when the address operand is ready
    // (split store-address/store-data): the data is captured at
    // completion, which defers until it is ready.
    bool addrValid = false;
    bool dataValid = false; ///< store data captured
    Addr effAddr = 0;
    u64 storeData = 0; ///< store: data to write
    u64 loadValue = 0; ///< load: value written back
    bool reexecDone = false; ///< singleton re-execute already performed
    Cycle commitReadyAt = 0; ///< commit stall for singleton re-execute

    // Branch fields.
    bool predTaken = false;
    bool usedTaken = false; ///< direction younger fetch actually followed
    bool resolvedOnce = false;

    isa::Trap trap = isa::Trap::None;
};

/** Circular per-thread ROB partition (a view; see file comment). */
class Rob
{
  public:
    Rob() = default;

    /** Standalone mode: allocate private backing for capacity slots. */
    explicit Rob(unsigned capacity);

    Rob(const Rob &other) { *this = other; }
    Rob &operator=(const Rob &other);
    Rob(Rob &&other) = default;
    Rob &operator=(Rob &&other) = default;

    /** Arena mode: adopt externally-laid-out arrays (no init). */
    void bind(RobHot *hot, RobCold *cold, unsigned capacity)
    {
        hot_ = hot;
        cold_ = cold;
        cap_ = capacity;
    }

    /** Value-initialize every slot and empty the window. */
    void reset();

    /** Pointer fixup after a member-wise arena copy. */
    void shiftBase(std::ptrdiff_t delta)
    {
        hot_ = shiftPtr(hot_, delta);
        cold_ = shiftPtr(cold_, delta);
    }

    bool full() const { return count_ == cap_; }
    bool empty() const { return count_ == 0; }
    unsigned size() const { return count_; }
    unsigned capacity() const { return cap_; }

    /** Allocate the next entry (must not be full); returns its slot. */
    unsigned allocate();

    /** Slot index of the i-th oldest valid entry. */
    unsigned slotAt(unsigned i) const { return (head_ + i) % cap_; }

    unsigned headSlot() const { return head_; }
    RobHot &hot(unsigned slot) { return hot_[slot]; }
    const RobHot &hot(unsigned slot) const { return hot_[slot]; }
    RobCold &cold(unsigned slot) { return cold_[slot]; }
    const RobCold &cold(unsigned slot) const { return cold_[slot]; }

    /** Retire the head entry. */
    void popHead();

    /** Remove the youngest entry (mispredict walk-back). */
    void popTail();

    /** The youngest valid entry's slot (rob must be non-empty). */
    unsigned tailSlot() const { return slotAt(count_ - 1); }

    void clear();

  private:
    RobHot *hot_ = nullptr;
    RobCold *cold_ = nullptr;
    unsigned cap_ = 0;
    unsigned head_ = 0;
    unsigned count_ = 0;
    std::vector<std::byte> own_; ///< standalone-mode backing (else empty)
};

} // namespace fh::pipeline

#endif // FH_PIPELINE_ROB_HH
