#include "pipeline/rob.hh"

#include "sim/logging.hh"

namespace fh::pipeline
{

Rob::Rob(unsigned capacity)
{
    fh_assert(capacity > 0, "ROB needs capacity");
    entries_.resize(capacity);
}

unsigned
Rob::allocate()
{
    fh_assert(!full(), "allocate on full ROB");
    unsigned slot = slotAt(count_);
    ++count_;
    entries_[slot] = RobEntry{};
    entries_[slot].valid = true;
    return slot;
}

void
Rob::popHead()
{
    fh_assert(!empty(), "popHead on empty ROB");
    entries_[head_].valid = false;
    head_ = (head_ + 1) % static_cast<unsigned>(entries_.size());
    --count_;
}

void
Rob::popTail()
{
    fh_assert(!empty(), "popTail on empty ROB");
    entries_[tailSlot()].valid = false;
    --count_;
}

void
Rob::clear()
{
    for (auto &entry : entries_)
        entry.valid = false;
    head_ = 0;
    count_ = 0;
}

} // namespace fh::pipeline
