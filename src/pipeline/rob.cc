#include "pipeline/rob.hh"

#include <cstdint>

#include "sim/logging.hh"

namespace fh::pipeline
{

Rob::Rob(unsigned capacity)
{
    fh_assert(capacity > 0, "ROB needs capacity");
    own_.resize(capacity * (sizeof(RobHot) + sizeof(RobCold)) +
                alignof(RobCold));
    const auto base = reinterpret_cast<std::uintptr_t>(own_.data());
    const std::uintptr_t aligned =
        (base + alignof(RobCold) - 1) & ~(alignof(RobCold) - 1);
    auto *cold = reinterpret_cast<RobCold *>(aligned);
    auto *hot = reinterpret_cast<RobHot *>(cold + capacity);
    bind(hot, cold, capacity);
    reset();
}

Rob &
Rob::operator=(const Rob &other)
{
    if (this == &other)
        return *this;
    head_ = other.head_;
    count_ = other.count_;
    cap_ = other.cap_;
    if (other.own_.empty()) {
        // Arena mode: adopt the source pointers; the owning Core
        // shifts them onto its own arena right after the member copy.
        hot_ = other.hot_;
        cold_ = other.cold_;
        own_.clear();
        return *this;
    }
    // Standalone mode: deep-copy the private backing.
    own_ = other.own_;
    const std::ptrdiff_t delta = own_.data() - other.own_.data();
    hot_ = shiftPtr(other.hot_, delta);
    cold_ = shiftPtr(other.cold_, delta);
    return *this;
}

void
Rob::reset()
{
    for (unsigned i = 0; i < cap_; ++i) {
        hot_[i] = RobHot{};
        cold_[i] = RobCold{};
    }
    head_ = 0;
    count_ = 0;
}

unsigned
Rob::allocate()
{
    fh_assert(!full(), "allocate on full ROB");
    unsigned slot = slotAt(count_);
    ++count_;
    hot_[slot] = RobHot{};
    cold_[slot] = RobCold{};
    hot_[slot].valid = true;
    return slot;
}

void
Rob::popHead()
{
    fh_assert(!empty(), "popHead on empty ROB");
    hot_[head_].valid = false;
    head_ = (head_ + 1) % cap_;
    --count_;
}

void
Rob::popTail()
{
    fh_assert(!empty(), "popTail on empty ROB");
    hot_[tailSlot()].valid = false;
    --count_;
}

void
Rob::clear()
{
    for (unsigned i = 0; i < cap_; ++i)
        hot_[i].valid = false;
    head_ = 0;
    count_ = 0;
}

} // namespace fh::pipeline
