/**
 * @file
 * Flat per-core state arena. All per-cycle-touched pipeline state
 * (ROB hot/cold arrays, register file, fetch/LSQ/delay rings, the
 * issue and issued scan lists) lives in one contiguous byte buffer,
 * so forking a core copies a single block instead of walking an
 * object graph of vectors and deques — and a trial-slot restore
 * (copy-assignment between equal layouts) is a pure memcpy with no
 * allocator traffic.
 *
 * Views into the arena (Rob, PhysRegFile, RingView, RefList) hold raw
 * pointers plus their own control scalars. Copying a Core copies the
 * buffer and the views member-wise, then shifts every view pointer by
 * the distance between the two buffers (same layout, same offsets),
 * which keeps the views plain trivially-copyable values.
 */

#ifndef FH_PIPELINE_ARENA_HH
#define FH_PIPELINE_ARENA_HH

#include <cstddef>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace fh::pipeline
{

/** One contiguous, copyable byte buffer with bump-pointer layout. */
class CoreArena
{
  public:
    CoreArena() = default;

    /** Layout phase: reserve n objects of T; returns the offset. */
    template <typename T>
    size_t reserve(size_t n)
    {
        size_ = (size_ + alignof(T) - 1) & ~(alignof(T) - 1);
        const size_t off = size_;
        size_ += n * sizeof(T);
        return off;
    }

    /** Materialize the reserved layout (zero-filled; callers must
     *  value-initialize every object they place). */
    void commit() { buf_.assign(size_, std::byte{0}); }

    template <typename T>
    T *at(size_t off)
    {
        return reinterpret_cast<T *>(buf_.data() + off);
    }

    const std::byte *base() const { return buf_.data(); }
    std::byte *base() { return buf_.data(); }
    size_t bytes() const { return buf_.size(); }

  private:
    std::vector<std::byte> buf_;
    size_t size_ = 0;
};

/** Pointer distance between two equal-layout arenas (for view fixup
 *  after a member-wise copy). */
inline std::ptrdiff_t
arenaDelta(CoreArena &mine, const CoreArena &theirs)
{
    fh_assert(mine.bytes() == theirs.bytes(),
              "arena copy between different layouts");
    return reinterpret_cast<const std::byte *>(mine.base()) -
           theirs.base();
}

template <typename T>
inline T *
shiftPtr(T *p, std::ptrdiff_t delta)
{
    return reinterpret_cast<T *>(
        reinterpret_cast<std::byte *>(p) + delta);
}

/**
 * Fixed-capacity FIFO ring over arena storage. Replaces the
 * ThreadState deques (fetch queue, delay buffer, store list); the
 * capacities are hard bounds established by the pipeline's own gating
 * (fetch gate, delay-buffer trim, LSQ partition), asserted on push.
 */
template <typename T>
class RingView
{
  public:
    void bind(T *data, u32 cap)
    {
        data_ = data;
        cap_ = cap;
        head_ = 0;
        size_ = 0;
    }

    void shiftBase(std::ptrdiff_t delta)
    {
        data_ = shiftPtr(data_, delta);
    }

    bool empty() const { return size_ == 0; }
    u32 size() const { return size_; }

    T &operator[](u32 i) { return data_[index(i)]; }
    const T &operator[](u32 i) const { return data_[index(i)]; }
    T &front() { return data_[head_]; }
    const T &front() const { return data_[head_]; }
    T &back() { return (*this)[size_ - 1]; }

    void push_back(const T &v)
    {
        fh_assert(size_ < cap_, "ring overflow");
        data_[index(size_)] = v;
        ++size_;
    }

    void pop_front()
    {
        fh_assert(size_ > 0, "pop on empty ring");
        head_ = (head_ + 1) % cap_;
        --size_;
    }

    void pop_back()
    {
        fh_assert(size_ > 0, "pop on empty ring");
        --size_;
    }

    void clear()
    {
        head_ = 0;
        size_ = 0;
    }

    /** Remove every element equal to v, preserving order (the ring
     *  analog of std::erase on a deque). */
    void eraseValue(const T &v)
    {
        u32 out = 0;
        for (u32 i = 0; i < size_; ++i) {
            if ((*this)[i] == v)
                continue;
            if (out != i)
                (*this)[out] = (*this)[i];
            ++out;
        }
        size_ = out;
    }

  private:
    u32 index(u32 i) const { return (head_ + i) % cap_; }

    T *data_ = nullptr;
    u32 cap_ = 0;
    u32 head_ = 0;
    u32 size_ = 0;
};

/**
 * Fixed-capacity append/compact list over arena storage, for the
 * issue/complete scan lists. The per-cycle scans rewrite the list in
 * place (dropping stale refs); appends that find the list full first
 * compact it with the same staleness predicate the scans use, so
 * overflow handling is behavior-invisible.
 */
template <typename T>
class RefList
{
  public:
    void bind(T *data, u32 cap)
    {
        data_ = data;
        cap_ = cap;
        size_ = 0;
    }

    void shiftBase(std::ptrdiff_t delta)
    {
        data_ = shiftPtr(data_, delta);
    }

    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == cap_; }
    u32 size() const { return size_; }
    T &operator[](u32 i) { return data_[i]; }
    const T &operator[](u32 i) const { return data_[i]; }
    T *begin() { return data_; }
    T *end() { return data_ + size_; }
    const T *begin() const { return data_; }
    const T *end() const { return data_ + size_; }

    void push_back(const T &v)
    {
        fh_assert(size_ < cap_, "ref list overflow after compaction");
        data_[size_++] = v;
    }

    void resize(u32 n)
    {
        fh_assert(n <= size_, "ref lists only shrink in place");
        size_ = n;
    }

    void clear() { size_ = 0; }

    /** Drop every ref failing pred, preserving order. */
    template <typename Pred>
    void compact(Pred &&pred)
    {
        u32 out = 0;
        for (u32 i = 0; i < size_; ++i) {
            if (!pred(data_[i]))
                continue;
            if (out != i)
                data_[out] = data_[i];
            ++out;
        }
        size_ = out;
    }

  private:
    T *data_ = nullptr;
    u32 cap_ = 0;
    u32 size_ = 0;
};

} // namespace fh::pipeline

#endif // FH_PIPELINE_ARENA_HH
