#include "pipeline/regfile.hh"

#include <cstdint>

#include "sim/logging.hh"

namespace fh::pipeline
{

PhysRegFile::PhysRegFile(unsigned num_regs)
{
    own_.resize(num_regs * (sizeof(u64) + sizeof(u32) + 2) +
                alignof(u64));
    const auto base = reinterpret_cast<std::uintptr_t>(own_.data());
    const std::uintptr_t aligned =
        (base + alignof(u64) - 1) & ~(alignof(u64) - 1);
    auto *values = reinterpret_cast<u64 *>(aligned);
    auto *stack = reinterpret_cast<u32 *>(values + num_regs);
    auto *ready = reinterpret_cast<u8 *>(stack + num_regs);
    auto *free_flags = ready + num_regs;
    bind(values, ready, free_flags, stack, num_regs);
    reset();
}

PhysRegFile &
PhysRegFile::operator=(const PhysRegFile &other)
{
    if (this == &other)
        return *this;
    numRegs_ = other.numRegs_;
    freeCount_ = other.freeCount_;
    watchPreg_ = other.watchPreg_;
    watchErased_ = other.watchErased_;
    if (other.own_.empty()) {
        // Arena mode: adopt the source pointers; the owning Core
        // shifts them onto its own arena right after the member copy.
        values_ = other.values_;
        ready_ = other.ready_;
        free_ = other.free_;
        freeStack_ = other.freeStack_;
        own_.clear();
        return *this;
    }
    own_ = other.own_;
    const std::ptrdiff_t delta = own_.data() - other.own_.data();
    values_ = shiftPtr(other.values_, delta);
    ready_ = shiftPtr(other.ready_, delta);
    free_ = shiftPtr(other.free_, delta);
    freeStack_ = shiftPtr(other.freeStack_, delta);
    return *this;
}

void
PhysRegFile::reset()
{
    for (unsigned i = 0; i < numRegs_; ++i) {
        values_[i] = 0;
        ready_[i] = 1;
        free_[i] = 1;
        // Pop order is descending index; purely cosmetic.
        freeStack_[i] = i;
    }
    freeCount_ = numRegs_;
}

bool
PhysRegFile::allocate(unsigned &preg)
{
    if (freeCount_ == 0)
        return false;
    preg = freeStack_[--freeCount_];
    fh_assert(free_[preg], "allocating a non-free register");
    free_[preg] = 0;
    ready_[preg] = 0;
    return true;
}

void
PhysRegFile::resetFreeList(const std::vector<bool> &live)
{
    fh_assert(live.size() == numRegs_, "liveness size mismatch");
    // Bulk free-list rebuild (recovery path): conservatively drop the
    // fault watch without claiming erasure.
    watchPreg_ = kNoWatch;
    freeCount_ = 0;
    for (unsigned preg = 0; preg < numRegs_; ++preg) {
        free_[preg] = live[preg] ? 0 : 1;
        if (!live[preg]) {
            ready_[preg] = 1;
            freeStack_[freeCount_++] = preg;
        }
    }
}

void
PhysRegFile::release(unsigned preg)
{
    fh_assert(preg < numRegs_, "release out of range");
    if (free_[preg]) {
        // Releasing an already-free register: this only happens when a
        // corrupted rename tag frees the wrong register (Section 5.5);
        // hardware would double-insert and corrupt the free list. We
        // model the benign part (no duplicate entries) — the damage is
        // done by the *live* register that never gets freed / gets
        // freed early elsewhere.
        return;
    }
    // A watched register freed before any read was consumed is dead on
    // arrival: the producer slot it corrupted can only be rewritten
    // (allocate() clears ready; consumers of the new mapping wait for
    // the full-word producer write).
    if (preg == watchPreg_) {
        watchPreg_ = kNoWatch;
        watchErased_ = true;
    }
    free_[preg] = 1;
    ready_[preg] = 1;
    freeStack_[freeCount_++] = preg;
}

} // namespace fh::pipeline
