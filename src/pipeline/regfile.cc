#include "pipeline/regfile.hh"

#include "sim/logging.hh"

namespace fh::pipeline
{

PhysRegFile::PhysRegFile(unsigned num_regs)
    : values_(num_regs, 0), ready_(num_regs, 1), free_(num_regs, 1)
{
    freeList_.reserve(num_regs);
    // Pop order is descending index; purely cosmetic.
    for (unsigned i = 0; i < num_regs; ++i)
        freeList_.push_back(i);
}

bool
PhysRegFile::allocate(unsigned &preg)
{
    if (freeList_.empty())
        return false;
    preg = freeList_.back();
    freeList_.pop_back();
    fh_assert(free_[preg], "allocating a non-free register");
    free_[preg] = 0;
    ready_[preg] = 0;
    return true;
}

void
PhysRegFile::resetFreeList(const std::vector<bool> &live)
{
    fh_assert(live.size() == values_.size(), "liveness size mismatch");
    freeList_.clear();
    for (unsigned preg = 0; preg < values_.size(); ++preg) {
        free_[preg] = live[preg] ? 0 : 1;
        if (!live[preg]) {
            ready_[preg] = 1;
            freeList_.push_back(preg);
        }
    }
}

void
PhysRegFile::release(unsigned preg)
{
    fh_assert(preg < free_.size(), "release out of range");
    if (free_[preg]) {
        // Releasing an already-free register: this only happens when a
        // corrupted rename tag frees the wrong register (Section 5.5);
        // hardware would double-insert and corrupt the free list. We
        // model the benign part (no duplicate entries) — the damage is
        // done by the *live* register that never gets freed / gets
        // freed early elsewhere.
        return;
    }
    free_[preg] = 1;
    ready_[preg] = 1;
    freeList_.push_back(preg);
}

} // namespace fh::pipeline
