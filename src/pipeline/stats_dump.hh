/**
 * @file
 * gem5-style flat stats dump for a finished core run: every pipeline,
 * memory, detector and derived statistic as `name value # comment`
 * lines. Used by the fhsim CLI driver and handy in tests.
 */

#ifndef FH_PIPELINE_STATS_DUMP_HH
#define FH_PIPELINE_STATS_DUMP_HH

#include <ostream>

#include "pipeline/core.hh"

namespace fh::pipeline
{

/** Write all statistics of core to os, one per line. */
void dumpStats(const Core &core, std::ostream &os);

} // namespace fh::pipeline

#endif // FH_PIPELINE_STATS_DUMP_HH
