#include "pipeline/core.hh"

#include <algorithm>
#include <cstdlib>

#include "isa/exec.hh"
#include "sim/logging.hh"

namespace fh::pipeline
{

using filters::CommitAction;
using filters::CompleteAction;
using filters::StreamKind;

namespace
{

/**
 * Consumers one wake row holds before spilling to the overflow list.
 * Sized for the common fan-out of an in-flight producer (consumers of
 * long-ready values never subscribe); the spill path is correct at any
 * capacity, just slower, so this only trades arena bytes per fork
 * memcpy against overflow rescans.
 */
constexpr u32 kWakeRowCap = 6;

/** "No scheduled event" sentinel for the idle fast-forward. */
constexpr Cycle kNoEvent = ~Cycle{0};

} // namespace

bool
CoreParams::envScanIssue()
{
    static const bool scan = [] {
        const char *v = std::getenv("FH_SCAN_ISSUE");
        return v && v[0] == '1' && v[1] == '\0';
    }();
    return scan;
}

void
ValueProbe::sample(StreamKind kind, u64 pc, u64 value)
{
    const auto stream = static_cast<size_t>(kind);
    auto [it, fresh] = prev[stream].try_emplace(pc, value);
    if (!fresh) {
        const u64 changed = it->second ^ value;
        for (unsigned bit = 0; bit < wordBits; ++bit)
            if ((changed >> bit) & 1)
                ++bitChanges[stream][bit];
        it->second = value;
        ++samples[stream];
    }
}

Core::Core(const CoreParams &params, const isa::Program *prog)
    : params_(params),
      prog_(prog),
      hier_(params.memory),
      predictor_(params.predictorEntries),
      detector_(params.detector)
{
    fh_assert(prog_ != nullptr, "core needs a program");
    fh_assert(params_.threads >= 1 && params_.threads <= 8,
              "1..8 SMT threads supported");
    fh_assert(params_.physRegs >
                  params_.threads * isa::numArchRegs + params_.threads,
              "not enough physical registers");

    prog_->load(memory_);

    // The ROB is partitioned by the *provisioned* SMT width (2-way,
    // Table 2), not by how many contexts happen to run: SRT's
    // overcommitted copies get the same per-thread window as the
    // baseline threads, so window-depth effects cancel out of the
    // comparison.
    const unsigned nt = params_.threads;
    const unsigned rob_cap = std::max(8u, params_.robSize / 2);

    // Ring capacities are hard bounds from the pipeline's own gating:
    // fetch skips a thread at >= 4*fetchWidth queued and then adds at
    // most fetchWidth; the delay buffer is trimmed right after each
    // push; dispatch stalls a context at lsqSize/2 memory ops, and the
    // store list only ever holds a subset of those.
    const u32 fetch_cap = 5 * params_.fetchWidth;
    const u32 delay_cap = params_.delayBufferSize + 1;
    const u32 store_cap = params_.lsqSize / 2 + 1;
    // Scan lists hold at most rob_cap live refs; the slack absorbs
    // stale refs between compactions.
    const u32 ref_cap = 2 * rob_cap + 16;

    // Arena layout. Hot arrays (scanned or probed every cycle) are
    // grouped at the front, cold per-entry payloads at the back.
    struct PerTid
    {
        size_t hot, iq, issued, delay, store, pool, ovfl, cold, fetch;
    };
    std::vector<PerTid> off(nt);
    for (unsigned tid = 0; tid < nt; ++tid)
        off[tid].hot = arena_.reserve<RobHot>(rob_cap);
    const size_t ready_off = arena_.reserve<u8>(params_.physRegs);
    const size_t free_off = arena_.reserve<u8>(params_.physRegs);
    for (unsigned tid = 0; tid < nt; ++tid) {
        off[tid].iq = arena_.reserve<SeqRef>(ref_cap);
        off[tid].issued = arena_.reserve<FinishRef>(ref_cap);
        off[tid].delay = arena_.reserve<u32>(delay_cap);
        off[tid].store = arena_.reserve<u32>(store_cap);
        off[tid].pool = arena_.reserve<SeqRef>(ref_cap);
        off[tid].ovfl = arena_.reserve<SeqRef>(ref_cap);
    }
    const size_t stack_off = arena_.reserve<u32>(params_.physRegs);
    const size_t values_off = arena_.reserve<u64>(params_.physRegs);
    // Issue/complete batch scratch: bounded by every list that can feed
    // it (per tid: the issued list, or pool + overflow).
    const u32 scratch_cap = nt * 2 * ref_cap;
    const size_t scratch_off = arena_.reserve<SeqRef>(scratch_cap);
    const size_t rows_off =
        arena_.reserve<SeqRef>(size_t{params_.physRegs} * kWakeRowCap);
    for (unsigned tid = 0; tid < nt; ++tid)
        off[tid].cold = arena_.reserve<RobCold>(rob_cap);
    for (unsigned tid = 0; tid < nt; ++tid)
        off[tid].fetch = arena_.reserve<FetchedInst>(fetch_cap);
    arena_.commit();

    regfile_.bind(arena_.at<u64>(values_off), arena_.at<u8>(ready_off),
                  arena_.at<u8>(free_off), arena_.at<u32>(stack_off),
                  params_.physRegs);
    regfile_.reset();

    robs_.resize(nt);
    renames_.resize(nt);
    threads_.resize(nt);
    lsqCounts_.assign(nt, 0);
    iqLists_.resize(nt);
    issuedLists_.resize(nt);
    readyPools_.resize(nt);
    overflowLists_.resize(nt);
    for (unsigned tid = 0; tid < nt; ++tid) {
        robs_[tid].bind(arena_.at<RobHot>(off[tid].hot),
                        arena_.at<RobCold>(off[tid].cold), rob_cap);
        robs_[tid].reset();
        ThreadState &ts = threads_[tid];
        ts.fetchQ.bind(arena_.at<FetchedInst>(off[tid].fetch),
                       fetch_cap);
        ts.delayBuffer.bind(arena_.at<u32>(off[tid].delay), delay_cap);
        ts.storeList.bind(arena_.at<u32>(off[tid].store), store_cap);
        iqLists_[tid].bind(arena_.at<SeqRef>(off[tid].iq), ref_cap);
        issuedLists_[tid].bind(arena_.at<FinishRef>(off[tid].issued),
                               ref_cap);
        readyPools_[tid].bind(arena_.at<SeqRef>(off[tid].pool), ref_cap);
        overflowLists_[tid].bind(arena_.at<SeqRef>(off[tid].ovfl),
                                 ref_cap);
    }
    scanScratch_.bind(arena_.at<SeqRef>(scratch_off), scratch_cap);
    wakeRows_.resize(params_.physRegs);
    for (unsigned preg = 0; preg < params_.physRegs; ++preg) {
        wakeRows_[preg].bind(arena_.at<SeqRef>(rows_off) +
                                 size_t{preg} * kWakeRowCap,
                             kWakeRowCap);
    }

    for (unsigned tid = 0; tid < nt; ++tid) {
        std::array<unsigned, isa::numArchRegs> map{};
        const isa::ArchState init = isa::initialState(*prog_, tid);
        for (unsigned arch = 0; arch < isa::numArchRegs; ++arch) {
            unsigned preg = 0;
            bool ok = regfile_.allocate(preg);
            fh_assert(ok, "init ran out of physical registers");
            regfile_.write(preg, init.regs[arch]);
            map[arch] = preg;
        }
        renames_[tid].init(map);
        threads_[tid].oracle = init;
    }
    for (unsigned tid = 0; tid < nt; ++tid)
        threads_[tid].archDigest = isa::archStateDigest(archState(tid));
}

// NOTE: the copy ctor and copy-assignment below must list / assign
// every member; update both when adding one. They end with
// rebindViews(), which shifts every arena view pointer from the
// source's buffer onto ours. Assignment between same-parameter cores
// is allocation-free: every vector (arena bytes included) reuses the
// target's existing storage.
Core::Core(const Core &other)
    : params_(other.params_),
      prog_(other.prog_),
      cycle_(other.cycle_),
      nextSeq_(other.nextSeq_),
      memory_(other.memory_),
      hier_(other.hier_),
      predictor_(other.predictor_),
      detector_(other.detector_),
      detectorEnabled_(other.detectorEnabled_),
      faultDetected_(other.faultDetected_),
      quiesceFrozen_(other.quiesceFrozen_),
      stopOnWatchErased_(other.stopOnWatchErased_),
      observer_(other.observer_),
      arena_(other.arena_),
      regfile_(other.regfile_),
      renames_(other.renames_),
      robs_(other.robs_),
      threads_(other.threads_),
      iqCount_(other.iqCount_),
      lsqCounts_(other.lsqCounts_),
      scanScratch_(other.scanScratch_),
      iqLists_(other.iqLists_),
      issuedLists_(other.issuedLists_),
      wakeRows_(other.wakeRows_),
      readyPools_(other.readyPools_),
      overflowLists_(other.overflowLists_),
      fetchRotate_(other.fetchRotate_),
      issueBlockedUntil_(other.issueBlockedUntil_),
      stats_(other.stats_),
      probe_(other.probe_)
{
    rebindViews(other);
}

Core &
Core::operator=(const Core &other)
{
    if (this == &other)
        return *this;
    params_ = other.params_;
    prog_ = other.prog_;
    cycle_ = other.cycle_;
    nextSeq_ = other.nextSeq_;
    memory_ = other.memory_;
    hier_ = other.hier_;
    predictor_ = other.predictor_;
    detector_ = other.detector_;
    detectorEnabled_ = other.detectorEnabled_;
    faultDetected_ = other.faultDetected_;
    quiesceFrozen_ = other.quiesceFrozen_;
    stopOnWatchErased_ = other.stopOnWatchErased_;
    observer_ = other.observer_;
    arena_ = other.arena_;
    regfile_ = other.regfile_;
    renames_ = other.renames_;
    robs_ = other.robs_;
    threads_ = other.threads_;
    iqCount_ = other.iqCount_;
    lsqCounts_ = other.lsqCounts_;
    scanScratch_ = other.scanScratch_; // always empty between ticks
    iqLists_ = other.iqLists_;
    issuedLists_ = other.issuedLists_;
    wakeRows_ = other.wakeRows_;
    readyPools_ = other.readyPools_;
    overflowLists_ = other.overflowLists_;
    fetchRotate_ = other.fetchRotate_;
    issueBlockedUntil_ = other.issueBlockedUntil_;
    stats_ = other.stats_;
    probe_ = other.probe_;
    rebindViews(other);
    return *this;
}

void
Core::rebindViews(const Core &other)
{
    const std::ptrdiff_t delta = arenaDelta(arena_, other.arena_);
    regfile_.shiftBase(delta);
    for (Rob &rob : robs_)
        rob.shiftBase(delta);
    for (ThreadState &ts : threads_) {
        ts.fetchQ.shiftBase(delta);
        ts.delayBuffer.shiftBase(delta);
        ts.storeList.shiftBase(delta);
    }
    scanScratch_.shiftBase(delta);
    for (RefList<SeqRef> &list : iqLists_)
        list.shiftBase(delta);
    for (RefList<FinishRef> &list : issuedLists_)
        list.shiftBase(delta);
    for (RefList<SeqRef> &row : wakeRows_)
        row.shiftBase(delta);
    for (RefList<SeqRef> &list : readyPools_)
        list.shiftBase(delta);
    for (RefList<SeqRef> &list : overflowLists_)
        list.shiftBase(delta);
}

bool
Core::occupiesIq(const RobHot &h)
{
    // The delay buffer is separate storage (Figure 4 of the paper:
    // it "conceptually extends the pipeline depth after completion"),
    // so completed instructions held for replay do not occupy
    // scheduler slots; replay marking re-acquires one.
    return h.valid && h.state == EntryState::Dispatched;
}

void
Core::pushRef(RefList<SeqRef> &list, EntryState want, const SeqRef &ref)
{
    if (list.full()) {
        const Rob &rob = robs_[ref.tid];
        list.compact([&](const SeqRef &r) {
            const RobHot &h = rob.hot(r.slot);
            return h.valid && h.seq == r.seq && h.state == want;
        });
    }
    list.push_back(ref);
}

void
Core::pushRef(RefList<FinishRef> &list, EntryState want,
              const FinishRef &ref)
{
    if (list.full()) {
        const Rob &rob = robs_[ref.tid];
        list.compact([&](const FinishRef &r) {
            const RobHot &h = rob.hot(r.slot);
            return h.valid && h.seq == r.seq && h.state == want;
        });
    }
    list.push_back(ref);
}

void
Core::sortBySeq(RefList<SeqRef> &v)
{
    for (u32 i = 1; i < v.size(); ++i) {
        const SeqRef key = v[i];
        u32 j = i;
        while (j > 0 && v[j - 1].seq > key.seq) {
            v[j] = v[j - 1];
            --j;
        }
        v[j] = key;
    }
}

unsigned
Core::computeIqOccupancy() const
{
    unsigned n = 0;
    for (const Rob &rob : robs_)
        for (unsigned i = 0; i < rob.size(); ++i)
            n += occupiesIq(rob.hot(rob.slotAt(i))) ? 1 : 0;
    return n;
}

unsigned
Core::computeLsqOccupancy() const
{
    unsigned n = 0;
    for (const Rob &rob : robs_)
        for (unsigned i = 0; i < rob.size(); ++i) {
            const RobHot &h = rob.hot(rob.slotAt(i));
            n += (h.valid && (h.isLoad || h.isStore)) ? 1 : 0;
        }
    return n;
}

void
Core::tick()
{
    ++cycle_;
    commitStage();
    completeStage();
    issueStage();
    dispatchStage();
    fetchStage();
    ++stats_.cycles;
}

void
Core::run(Cycle max_cycles)
{
    advance(max_cycles);
}

void
Core::advance(Cycle cycles)
{
    const Cycle end = cycle_ + cycles;
    while (cycle_ < end && !allHalted()) {
        if (!params_.scanIssue) {
            fastForward(end);
            if (cycle_ >= end)
                break;
        }
        tick();
    }
}

bool
Core::runUntilCommitted(const std::vector<u64> &targets, Cycle max_cycles)
{
    auto done = [&] {
        for (unsigned tid = 0; tid < numThreads(); ++tid) {
            u64 target = tid < targets.size() ? targets[tid] : 0;
            if (!threads_[tid].halted && threads_[tid].committed < target)
                return false;
        }
        return true;
    };
    // A thread that is halted, or frozen at its stopAfterInsts
    // boundary, will never commit again; once every thread is in that
    // state no target can move, so ticking further only burns cycles.
    auto all_frozen = [&] {
        for (const ThreadState &ts : threads_) {
            if (ts.halted)
                continue;
            if (ts.opts.stopAfterInsts == 0 ||
                ts.committed < ts.opts.stopAfterInsts) {
                return false;
            }
        }
        return true;
    };
    const Cycle end = cycle_ + max_cycles;
    for (;;) {
        if (done())
            return true; // return before ticking: no post-freeze cycles
        if (stopOnWatchErased_ && regfile_.watchErased())
            return done(); // fault erased unread: outcome is decided
        if (all_frozen())
            return done(); // frozen short of a target: hung, bail now
        if (cycle_ >= end)
            return done();
        if (!params_.scanIssue) {
            // Dead cycles can't flip done()/all_frozen() (no commits
            // happen in them), so skipping is decision-equivalent; a
            // no-event machine lands on the same hung cycle_ = end the
            // per-cycle loop would reach.
            fastForward(end);
            if (cycle_ >= end)
                return done();
        }
        tick();
    }
}

Cycle
Core::runPerThreadBudget(u64 per_thread, Cycle max_cycles)
{
    std::vector<u64> targets;
    for (unsigned tid = 0; tid < numThreads(); ++tid) {
        threads_[tid].opts.stopAfterInsts = per_thread;
        targets.push_back(per_thread);
    }
    const Cycle start = cycle_;
    runUntilCommitted(targets, max_cycles);
    return cycle_ - start;
}

bool
Core::allHalted() const
{
    for (const auto &ts : threads_)
        if (!ts.halted)
            return false;
    return true;
}

bool
Core::anyTrap() const
{
    for (const auto &ts : threads_)
        if (ts.trap != isa::Trap::None)
            return true;
    return false;
}

u64
Core::committedTotal() const
{
    u64 n = 0;
    for (const auto &ts : threads_)
        n += ts.committed;
    return n;
}

isa::ArchState
Core::archState(unsigned tid) const
{
    isa::ArchState state;
    for (unsigned arch = 0; arch < isa::numArchRegs; ++arch)
        state.regs[arch] = regfile_.read(renames_[tid].retire(arch));
    state.regs[0] = regfile_.read(renames_[tid].retire(0));
    state.pc = threads_[tid].nextCommitPc;
    state.halted = threads_[tid].halted;
    return state;
}

// ---------------------------------------------------------------- commit

bool
Core::tryCommitHead(unsigned tid)
{
    Rob &rob = robs_[tid];
    ThreadState &ts = threads_[tid];
    if (ts.halted || rob.empty())
        return false;

    if (ts.opts.stopAfterInsts != 0 &&
        ts.committed >= ts.opts.stopAfterInsts) {
        return false; // frozen at a precise commit boundary
    }

    const unsigned slot = rob.headSlot();
    RobHot &h = rob.hot(slot);
    RobCold &e = rob.cold(slot);
    if (h.state != EntryState::Completed)
        return false;
    if (e.commitReadyAt > cycle_)
        return false;

    // Commit-time LSQ check + singleton re-execute (Section 3.5).
    if ((h.isLoad || h.isStore) && !e.reexecDone && detectorEnabled_ &&
        detector_.active()) {
        CommitAction action = CommitAction::None;
        if (h.isLoad) {
            action = detector_.checkCommit(StreamKind::LoadAddr, e.pc,
                                           e.effAddr);
        } else {
            action = detector_.checkCommit(StreamKind::StoreAddr, e.pc,
                                           e.effAddr);
            if (action == CommitAction::None) {
                action = detector_.checkCommit(StreamKind::StoreValue,
                                               e.pc, e.storeData);
            }
        }
        if (action == CommitAction::Reexec) {
            // Re-execute the singleton from the register file, whose
            // values are architectural at this point, and compare with
            // the LSQ copy; a mismatch means a fault in the register
            // file or the LSQ and is *detected* (Section 3.5).
            e.reexecDone = true;
            ++stats_.reexecs;
            issueBlockedUntil_ =
                std::max(issueBlockedUntil_,
                         cycle_ + params_.reexecPenalty);
            e.commitReadyAt = cycle_ + params_.reexecPenalty;

            const u64 a = h.src1Preg != invalidPreg
                              ? regfile_.read(h.src1Preg)
                              : 0;
            ++stats_.regReads;
            const Addr addr_new = isa::effectiveAddr(e.inst, a);
            bool mismatch = addr_new != e.effAddr;
            if (h.isStore) {
                const u64 data_new = h.src2Preg != invalidPreg
                                         ? regfile_.read(h.src2Preg)
                                         : 0;
                ++stats_.regReads;
                mismatch = mismatch || data_new != e.storeData;
                if (mismatch) {
                    e.storeData = data_new;
                }
            }
            detector_.onReexecCompare(mismatch);
            if (mismatch) {
                faultDetected_ = true;
                e.effAddr = addr_new;
                if (memory_.check(e.effAddr) == mem::AccessResult::Ok)
                    e.trap = isa::Trap::None;
            }
            return false; // stalled at commit until the re-execute
        }
        e.reexecDone = true;
    }

    // Architectural traps are raised at commit.
    if (e.trap != isa::Trap::None) {
        ts.trap = e.trap;
        ts.halted = true;
        ts.archDigest ^= isa::kDigestHaltedSalt;
        squashAllOf(tid);
        if (observer_)
            observer_->onThreadHalted(*this, tid);
        return false;
    }

    if (h.isStore) {
        auto res = memory_.write(e.effAddr, e.storeData);
        if (res != mem::AccessResult::Ok) {
            ts.trap = res == mem::AccessResult::Unmapped
                          ? isa::Trap::MemUnmapped
                          : isa::Trap::MemMisaligned;
            ts.halted = true;
            ts.archDigest ^= isa::kDigestHaltedSalt;
            squashAllOf(tid);
            if (observer_)
                observer_->onThreadHalted(*this, tid);
            return false;
        }
    }

    if (e.destPreg != invalidPreg) {
        // O(1) arch-digest maintenance: arch register rd moves from
        // the current retire mapping's value to the new one. peek()
        // (not read()) — this is metadata, not dataflow, and must not
        // consume a fork's fault watch.
        const unsigned rd = e.inst.rd;
        ts.archDigest ^=
            isa::digestRegTerm(rd,
                               regfile_.peek(renames_[tid].retire(rd))) ^
            isa::digestRegTerm(rd, regfile_.peek(e.destPreg));
        renames_[tid].commit(e.inst.rd, e.destPreg);
        if (e.oldPreg != invalidPreg) {
            regfile_.release(e.oldPreg);
            // release() flips the ready bit back on: a consumer whose
            // injected (dangling) source tag aliases the freed preg
            // becomes issuable now, exactly as the scan would see it.
            if (!params_.scanIssue)
                wakePreg(e.oldPreg);
        }
    }

    {
        const u64 new_pc = isa::isBranch(e.inst.op)
                               ? (e.usedTaken ? e.inst.target : e.pc + 1)
                               : e.pc + 1;
        ts.archDigest ^= isa::digestPcTerm(ts.nextCommitPc) ^
                         isa::digestPcTerm(new_pc);
        ts.nextCommitPc = new_pc;
    }

    if (occupiesIq(h))
        --iqCount_;
    purgeFromQueues(ts, h, e, slot);
    if (h.isLoad || h.isStore)
        --lsqCounts_[tid];

    const bool was_halt = e.inst.op == isa::Op::Halt;
    if (h.isLoad)
        ++stats_.committedLoads;
    if (h.isStore)
        ++stats_.committedStores;
    if (isa::isBranch(e.inst.op))
        ++stats_.committedBranches;
    rob.popHead();
    ++ts.committed;
    ++stats_.committed;

    if (was_halt ||
        (ts.opts.maxInsts != 0 && ts.committed >= ts.opts.maxInsts)) {
        ts.halted = true;
        ts.archDigest ^= isa::kDigestHaltedSalt;
        squashAllOf(tid);
        if (observer_) {
            observer_->onCommit(*this, tid);
            observer_->onThreadHalted(*this, tid);
        }
        return true;
    }
    if (observer_)
        observer_->onCommit(*this, tid);
    return true;
}

void
Core::commitStage()
{
    unsigned budget = params_.commitWidth;
    const unsigned n = numThreads();
    for (unsigned off = 0; off < n && budget > 0; ++off) {
        unsigned tid = (static_cast<unsigned>(cycle_) + off) % n;
        while (budget > 0 && tryCommitHead(tid))
            --budget;
    }
}

// -------------------------------------------------------------- complete

void
Core::completeStage()
{
    RefList<SeqRef> &pending = scanScratch_;
    pending.clear();
    for (unsigned tid = 0; tid < numThreads(); ++tid) {
        Rob &rob = robs_[tid];
        // Scan only the slots known to be executing instead of the
        // whole window. Each ref carries the finish time recorded at
        // issue; entries whose key is still in the future can't
        // complete this cycle (the key never exceeds the live
        // finishCycle), so the scan skips them on the local word alone
        // without touching the ROB. Due refs get the full staleness
        // check (squashed, completed, reused) and fall out here,
        // exactly as the header-checked scan dropped them.
        RefList<FinishRef> &il = issuedLists_[tid];
        u32 keep = 0;
        for (u32 i = 0; i < il.size(); ++i) {
            FinishRef ref = il[i];
            if (ref.finish > cycle_) {
                if (keep != i)
                    il[keep] = ref;
                ++keep;
                continue;
            }
            const RobHot &h = rob.hot(ref.slot);
            if (!h.valid || h.seq != ref.seq ||
                h.state != EntryState::Issued) {
                continue;
            }
            ref.finish = h.finishCycle; // re-sync a deferred store
            il[keep++] = ref;
            if (h.finishCycle <= cycle_)
                pending.push_back({ref.seq, ref.tid, ref.slot});
        }
        il.resize(keep);
    }
    sortBySeq(pending);

    for (const SeqRef &p : pending) {
        Rob &rob = robs_[p.tid];
        RobHot &h = rob.hot(p.slot);
        // Re-validate: an earlier completion may have squashed us.
        if (!h.valid || h.seq != p.seq ||
            h.state != EntryState::Issued) {
            continue;
        }
        if (h.isStore) {
            RobCold &e = rob.cold(p.slot);
            if (!e.dataValid) {
                // Split store-data: capture the data operand when it
                // becomes ready; completion defers until then.
                if (h.src2Preg != invalidPreg &&
                    regfile_.ready(h.src2Preg)) {
                    e.storeData = regfile_.read(h.src2Preg);
                    ++stats_.regReads;
                    e.dataValid = true;
                } else {
                    h.finishCycle = cycle_ + 1;
                    continue;
                }
            }
        }
        completeEntry(p.tid, p.slot);
    }
    pending.clear();
}

void
Core::completeEntry(unsigned tid, unsigned slot)
{
    ThreadState &ts = threads_[tid];
    Rob &rob = robs_[tid];
    RobHot &h = rob.hot(slot);
    RobCold &e = rob.cold(slot);

    const bool was_replay = e.inReplay;
    const bool first_completion = !e.completedOnce;
    h.state = EntryState::Completed;
    e.completedOnce = true;
    e.commitReadyAt =
        std::max(e.commitReadyAt, cycle_ + params_.commitDelay);

    if (e.destPreg != invalidPreg) {
        regfile_.write(e.destPreg, e.result);
        ++stats_.regWrites;
        if (!params_.scanIssue)
            wakePreg(e.destPreg);
    }

    if (isa::isBranch(e.inst.op))
        resolveBranch(tid, slot);
    if (!h.valid) {
        // resolveBranch cannot squash the branch itself, but guard
        // against future changes.
        return;
    }

    if (was_replay) {
        e.inReplay = false;
        ++stats_.replaysExecuted;
    }
    if (detectorEnabled_ &&
        detector_.scheme() == filters::Scheme::FaultHound &&
        detector_.params().replayRecovery &&
        params_.delayBufferSize > 0) {
        // Detector-off cores (bare forks) skip the hold: the buffer
        // feeds triggerReplay alone, which is gated on detectorEnabled_,
        // and residency has no timing effect (occupiesIq excludes it) —
        // so an unread buffer would only tax every commit's purge.
        // Hold the completed instruction in the delay buffer for
        // potential predecessor replay. Replayed instructions
        // re-enter like any other completion, so a false-positive
        // replay leaves no vacancy window in which a real fault's
        // predecessors would be unreachable.
        e.inDelayBuffer = true;
        ts.delayBuffer.push_back(slot);
        if (ts.delayBuffer.size() > params_.delayBufferSize) {
            unsigned old_slot = ts.delayBuffer.front();
            ts.delayBuffer.pop_front();
            if (rob.hot(old_slot).valid &&
                rob.cold(old_slot).inDelayBuffer) {
                rob.cold(old_slot).inDelayBuffer = false;
            }
        }
    }

    if (probe_.enabled && first_completion) {
        if (h.isLoad)
            probe_.sample(StreamKind::LoadAddr, e.pc, e.effAddr);
        if (h.isStore) {
            probe_.sample(StreamKind::StoreAddr, e.pc, e.effAddr);
            probe_.sample(StreamKind::StoreValue, e.pc, e.storeData);
        }
    }

    if (h.isLoad || h.isStore)
        runCompleteChecks(tid, slot);
}

void
Core::resolveBranch(unsigned tid, unsigned slot)
{
    ThreadState &ts = threads_[tid];
    Rob &rob = robs_[tid];
    const RobHot &h = rob.hot(slot);
    RobCold &e = rob.cold(slot);
    const bool taken = e.result != 0;

    if (!e.resolvedOnce) {
        e.resolvedOnce = true;
        e.usedTaken = taken;
        if (isa::isCondBranch(e.inst.op) && !ts.opts.oracleFetch)
            predictor_.update(tid, e.pc, taken);
        if (taken != e.predTaken) {
            ++stats_.mispredicts;
            squashYounger(tid, h.seq);
            redirectFetch(tid, taken ? e.inst.target : e.pc + 1);
        }
        return;
    }

    // Replay re-resolution: a corrected direction redirects the front
    // end just like a mispredict (the first execution was faulty).
    if (taken != e.usedTaken) {
        e.usedTaken = taken;
        ++stats_.mispredicts;
        squashYounger(tid, h.seq);
        redirectFetch(tid, taken ? e.inst.target : e.pc + 1);
    }
}

void
Core::runCompleteChecks(unsigned tid, unsigned slot)
{
    if (!detectorEnabled_ || !detector_.active())
        return;

    ThreadState &ts = threads_[tid];
    const RobHot &h = robs_[tid].hot(slot);
    RobCold &e = robs_[tid].cold(slot);

    auto exempt = [&]() -> bool {
        if (e.inReplay)
            return true;
        if (ts.exemptChecks > 0) {
            --ts.exemptChecks;
            return true;
        }
        return false;
    };

    CompleteAction worst = CompleteAction::None;
    if (h.isLoad) {
        worst = detector_.checkComplete(StreamKind::LoadAddr, e.pc,
                                        e.effAddr, exempt());
    } else {
        worst = detector_.checkComplete(StreamKind::StoreAddr, e.pc,
                                        e.effAddr, exempt());
        CompleteAction value_action = detector_.checkComplete(
            StreamKind::StoreValue, e.pc, e.storeData, exempt());
        worst = std::max(worst, value_action);
    }

    if (worst == CompleteAction::Replay)
        triggerReplay(tid);
    else if (worst == CompleteAction::Rollback)
        faultRollback(tid);
}

// ---------------------------------------------------------------- issue

bool
Core::loadBlocked(unsigned tid, SeqNum seq, Addr addr) const
{
    const ThreadState &ts = threads_[tid];
    const Rob &rob = robs_[tid];
    for (u32 i = 0; i < ts.storeList.size(); ++i) {
        const unsigned slot = ts.storeList[i];
        const RobHot &sh = rob.hot(slot);
        if (!sh.valid || sh.seq >= seq)
            continue;
        const RobCold &s = rob.cold(slot);
        if (!s.addrValid)
            return true; // no memory-dependence speculation
        if (s.effAddr == addr && !s.dataValid)
            return true; // forwarding source not ready yet
    }
    return false;
}

u64
Core::loadValueFor(unsigned tid, SeqNum seq, Addr addr) const
{
    const ThreadState &ts = threads_[tid];
    const Rob &rob = robs_[tid];
    // Forward from the youngest older store to the same address (its
    // data is ready: loadBlocked gates issue otherwise).
    for (u32 i = ts.storeList.size(); i-- > 0;) {
        const unsigned slot = ts.storeList[i];
        const RobHot &sh = rob.hot(slot);
        if (!sh.valid || sh.seq >= seq)
            continue;
        const RobCold &s = rob.cold(slot);
        if (s.addrValid && s.effAddr == addr && s.dataValid)
            return s.storeData;
    }
    u64 value = 0;
    memory_.read(addr, value);
    return value;
}

void
Core::executeAtIssue(unsigned tid, unsigned slot)
{
    Rob &rob = robs_[tid];
    RobHot &h = rob.hot(slot);
    RobCold &entry = rob.cold(slot);
    ThreadState &ts = threads_[tid];
    const bool is_store = isa::classOf(entry.inst.op) ==
                          isa::OpClass::Store;
    u64 a = 0;
    u64 b = 0;
    if (h.src1Preg != invalidPreg) {
        a = regfile_.read(h.src1Preg);
        ++stats_.regReads;
    }
    if (h.src2Preg != invalidPreg && !is_store) {
        b = regfile_.read(h.src2Preg);
        ++stats_.regReads;
    }

    switch (isa::classOf(entry.inst.op)) {
      case isa::OpClass::IntAlu:
      case isa::OpClass::IntMul:
        entry.result = isa::aluCompute(entry.inst, a, b);
        h.finishCycle = cycle_ + isa::execLatency(entry.inst.op);
        break;
      case isa::OpClass::Load: {
        entry.effAddr = isa::effectiveAddr(entry.inst, a);
        entry.addrValid = true;
        Cycle latency = hier_.params().l1d.hitLatency;
        if (!ts.opts.perfectDcache)
            latency = hier_.data(entry.effAddr, cycle_).latency;
        const mem::AccessResult chk = memory_.check(entry.effAddr);
        if (chk != mem::AccessResult::Ok) {
            entry.trap = chk == mem::AccessResult::Unmapped
                             ? isa::Trap::MemUnmapped
                             : isa::Trap::MemMisaligned;
            entry.result = 0;
        } else {
            entry.result = loadValueFor(tid, h.seq, entry.effAddr);
        }
        entry.loadValue = entry.result;
        h.finishCycle = cycle_ + 1 + latency;
        break;
      }
      case isa::OpClass::Store:
        // Split store-address / store-data: the address computes now;
        // the data is captured at completion once its operand is
        // ready (completeStage defers the store until then).
        entry.effAddr = isa::effectiveAddr(entry.inst, a);
        entry.addrValid = true;
        entry.dataValid = false;
        if (h.src2Preg == invalidPreg) {
            entry.storeData = 0;
            entry.dataValid = true;
        } else if (regfile_.ready(h.src2Preg)) {
            entry.storeData = regfile_.read(h.src2Preg);
            ++stats_.regReads;
            entry.dataValid = true;
        }
        if (!ts.opts.perfectDcache)
            hier_.data(entry.effAddr, cycle_);
        h.finishCycle = cycle_ + 1;
        break;
      case isa::OpClass::Branch:
        entry.result = isa::branchTaken(entry.inst.op, a, b) ? 1 : 0;
        h.finishCycle = cycle_ + 1;
        break;
      default:
        fh_panic("executeAtIssue on %s",
                 isa::nameOf(entry.inst.op).data());
    }
}

void
Core::issueStage()
{
    if (cycle_ < issueBlockedUntil_)
        return; // singleton re-execute owns the issue slots

    scanScratch_.clear();
    if (params_.scanIssue)
        collectCandidatesScan();
    else
        collectCandidatesWakeup();
    sortBySeq(scanScratch_);
    stats_.issueCandidates += scanScratch_.size();
    issueCandidates();
    scanScratch_.clear();
}

void
Core::collectCandidatesScan()
{
    RefList<SeqRef> &ready = scanScratch_;
    ++stats_.issueEvals;
    for (unsigned tid = 0; tid < numThreads(); ++tid) {
        Rob &rob = robs_[tid];
        // Scan only the slots known to wait in the issue queue; stale
        // refs (squashed, issued, reused) fall out of the list here.
        // List order does not matter — the sort below puts candidates
        // in seq order, exactly as the full ROB walk produced them.
        // Rejections read only the hot headers and ready bytes; the
        // cold payload is touched for ready loads alone.
        RefList<SeqRef> &iq = iqLists_[tid];
        u32 keep = 0;
        for (u32 i = 0; i < iq.size(); ++i) {
            const SeqRef ref = iq[i];
            const RobHot &h = rob.hot(ref.slot);
            if (!h.valid || h.seq != ref.seq ||
                h.state != EntryState::Dispatched) {
                continue;
            }
            if (keep != i)
                iq[keep] = ref;
            ++keep;
            if (h.src1Preg != invalidPreg && !regfile_.ready(h.src1Preg))
                continue;
            // Stores wait only for the address operand; the data is
            // captured later (split store-address/store-data).
            if (!h.isStore && h.src2Preg != invalidPreg &&
                !regfile_.ready(h.src2Preg)) {
                continue;
            }
            if (h.isLoad) {
                const RobCold &e = rob.cold(ref.slot);
                const u64 base_val = h.src1Preg != invalidPreg
                                         ? regfile_.read(h.src1Preg)
                                         : 0;
                const Addr addr = isa::effectiveAddr(e.inst, base_val);
                if (loadBlocked(tid, h.seq, addr))
                    continue;
            }
            ready.push_back(ref);
        }
        iq.resize(keep);
    }
}

void
Core::collectCandidatesWakeup()
{
    RefList<SeqRef> &ready = scanScratch_;
    bool examined = false;
    for (unsigned tid = 0; tid < numThreads(); ++tid) {
        Rob &rob = robs_[tid];

        // Slow path first: the overflow list holds waiters whose wake
        // row was full (including dangling rename-fault tags that may
        // never see a wake). They get the full scan predicate every
        // cycle, exactly like a scan-mode IQ ref; not-ready refs stay
        // parked here rather than bouncing back onto saturated rows.
        RefList<SeqRef> &ovfl = overflowLists_[tid];
        u32 keep = 0;
        for (u32 i = 0; i < ovfl.size(); ++i) {
            const SeqRef ref = ovfl[i];
            ++stats_.overflowRescans;
            examined = true;
            const RobHot &h = rob.hot(ref.slot);
            if (!h.valid || h.seq != ref.seq ||
                h.state != EntryState::Dispatched) {
                continue; // stale: squashed, issued, or slot reused
            }
            ovfl[keep++] = ref;
            if (h.src1Preg != invalidPreg && !regfile_.ready(h.src1Preg))
                continue;
            if (!h.isStore && h.src2Preg != invalidPreg &&
                !regfile_.ready(h.src2Preg)) {
                continue;
            }
            if (h.isLoad) {
                const RobCold &e = rob.cold(ref.slot);
                const u64 base_val = h.src1Preg != invalidPreg
                                         ? regfile_.read(h.src1Preg)
                                         : 0;
                const Addr addr = isa::effectiveAddr(e.inst, base_val);
                if (loadBlocked(tid, h.seq, addr))
                    continue;
            }
            ready.push_back(ref);
        }
        ovfl.resize(keep);

        // Ready pool: every ref re-proves the full scan predicate
        // before becoming a candidate. Readiness is non-monotonic
        // (triggerReplay re-marks producers not-ready), so a pooled
        // entry whose source went cold re-subscribes to a wake row and
        // leaves the pool; a load blocked on memory ordering stays
        // pooled (its store dependence has no wake edge) but yields no
        // candidate — identical to the scan's rejection.
        RefList<SeqRef> &pool = readyPools_[tid];
        keep = 0;
        for (u32 i = 0; i < pool.size(); ++i) {
            const SeqRef ref = pool[i];
            examined = true;
            const RobHot &h = rob.hot(ref.slot);
            if (!h.valid || h.seq != ref.seq ||
                h.state != EntryState::Dispatched) {
                continue; // stale ref, drop
            }
            if (h.src1Preg != invalidPreg &&
                !regfile_.ready(h.src1Preg)) {
                subscribeWaiter(h.src1Preg, ref);
                continue;
            }
            if (!h.isStore && h.src2Preg != invalidPreg &&
                !regfile_.ready(h.src2Preg)) {
                subscribeWaiter(h.src2Preg, ref);
                continue;
            }
            pool[keep++] = ref;
            if (h.isLoad) {
                const RobCold &e = rob.cold(ref.slot);
                const u64 base_val = h.src1Preg != invalidPreg
                                         ? regfile_.read(h.src1Preg)
                                         : 0;
                const Addr addr = isa::effectiveAddr(e.inst, base_val);
                if (loadBlocked(tid, h.seq, addr))
                    continue;
            }
            ready.push_back(ref);
        }
        pool.resize(keep);
    }
    if (examined)
        ++stats_.issueEvals;
}

void
Core::issueCandidates()
{
    unsigned total = 0;
    unsigned alu = 0;
    unsigned mul = 0;
    unsigned mem_ops = 0;
    for (const SeqRef &c : scanScratch_) {
        if (total >= params_.issueWidth)
            break;
        Rob &rob = robs_[c.tid];
        RobHot &h = rob.hot(c.slot);
        // Re-validate: the IQ list may briefly hold two refs to the
        // same entry (a replay re-append while issue was blocked), and
        // the first of the pair has issued it by the time the second
        // comes around.
        if (!h.valid || h.seq != c.seq ||
            h.state != EntryState::Dispatched) {
            continue;
        }
        switch (isa::classOf(rob.cold(c.slot).inst.op)) {
          case isa::OpClass::IntMul:
            if (mul >= params_.numMul)
                continue;
            ++mul;
            break;
          case isa::OpClass::Load:
          case isa::OpClass::Store:
            if (mem_ops >= params_.memPorts)
                continue;
            ++mem_ops;
            break;
          default:
            if (alu >= params_.numAlu)
                continue;
            ++alu;
            break;
        }
        executeAtIssue(c.tid, c.slot);
        h.state = EntryState::Issued;
        pushRef(issuedLists_[c.tid], EntryState::Issued,
                {h.finishCycle, c.seq, c.tid, c.slot});
        --iqCount_; // issued instructions vacate the scheduler
        ++total;
        ++stats_.issued;
    }
}

// The comment above issueStage's re-validation applies in wakeup mode
// too: the pool/overflow may briefly hold two refs to one entry (a
// replay re-dispatch while a stale ref still matches the reused
// seq/slot), so the candidate *multiplicity* can differ between modes
// — but duplicates past the first always fail the state check here,
// so the issued sequence is identical.

void
Core::enqueueForIssue(unsigned tid, unsigned slot, const RobHot &h)
{
    const SeqRef ref{h.seq, tid, slot};
    // Subscribe to the first not-ready source, probed in the exact
    // order the scan predicate checks them; the pool re-check catches
    // a second source that goes cold later.
    if (h.src1Preg != invalidPreg && !regfile_.ready(h.src1Preg)) {
        subscribeWaiter(h.src1Preg, ref);
        return;
    }
    if (!h.isStore && h.src2Preg != invalidPreg &&
        !regfile_.ready(h.src2Preg)) {
        subscribeWaiter(h.src2Preg, ref);
        return;
    }
    pushRef(readyPools_[tid], EntryState::Dispatched, ref);
}

void
Core::subscribeWaiter(unsigned preg, const SeqRef &ref)
{
    RefList<SeqRef> &row = wakeRows_[preg];
    if (row.full()) {
        // One row can hold waiters from several threads (dangling
        // rename-fault tags cross contexts), so staleness must consult
        // each ref's own ROB — unlike pushRef's single-list predicate.
        row.compact([&](const SeqRef &r) {
            const RobHot &h = robs_[r.tid].hot(r.slot);
            return h.valid && h.seq == r.seq &&
                   h.state == EntryState::Dispatched;
        });
    }
    if (!row.full()) {
        row.push_back(ref);
        return;
    }
    ++stats_.overflowParks;
    pushRef(overflowLists_[ref.tid], EntryState::Dispatched, ref);
}

void
Core::wakePreg(unsigned preg)
{
    RefList<SeqRef> &row = wakeRows_[preg];
    for (u32 i = 0; i < row.size(); ++i) {
        const SeqRef r = row[i];
        const RobHot &h = robs_[r.tid].hot(r.slot);
        if (h.valid && h.seq == r.seq &&
            h.state == EntryState::Dispatched) {
            pushRef(readyPools_[r.tid], EntryState::Dispatched, r);
            ++stats_.wakeupHits;
        }
    }
    row.clear();
}

void
Core::drainAllWakeRows()
{
    for (unsigned preg = 0; preg < params_.physRegs; ++preg)
        if (!wakeRows_[preg].empty())
            wakePreg(preg);
}

// ------------------------------------------------------- fast-forward

Cycle
Core::nextEventCycle() const
{
    const Cycle soon = cycle_ + 1;
    // A populated pool or overflow list must be re-examined every
    // cycle (memory-ordering blocks and non-monotonic readiness have
    // no wake edge), so those cycles are never dead.
    for (unsigned tid = 0; tid < numThreads(); ++tid) {
        if (!readyPools_[tid].empty() || !overflowLists_[tid].empty())
            return soon;
    }
    Cycle next = kNoEvent;
    const auto consider = [&](Cycle c) {
        next = std::min(next, std::max(c, soon));
    };
    for (unsigned tid = 0; tid < numThreads(); ++tid) {
        const ThreadState &ts = threads_[tid];
        if (ts.halted)
            continue;
        const bool frozen = ts.opts.stopAfterInsts != 0 &&
                            ts.committed >= ts.opts.stopAfterInsts;
        const Rob &rob = robs_[tid];
        if (!frozen && !rob.empty()) {
            const unsigned head = rob.headSlot();
            if (rob.hot(head).state == EntryState::Completed)
                consider(rob.cold(head).commitReadyAt);
        }
        // FinishRef keys never exceed the live finishCycle, so the
        // earliest key bounds the next completion from below — a safe
        // (possibly early) wake, never a missed one.
        const RefList<FinishRef> &il = issuedLists_[tid];
        for (u32 i = 0; i < il.size(); ++i)
            consider(il[i].finish);
        // Queued front-end work: dispatch acts when the fetch-queue
        // head matures (back-pressure stalls then re-check per cycle,
        // conservatively keeping those cycles live).
        if (!(quiesceFrozen_ && frozen) && !ts.fetchQ.empty())
            consider(ts.fetchQ.front().availAt);
        // Fetch eligibility mirrors fetchStage's own gating.
        if (!frozen && !ts.fetchBlocked &&
            ts.fetchQ.size() < 4 * params_.fetchWidth &&
            ts.fetchPc < prog_->text.size()) {
            consider(ts.fetchStallUntil);
        }
        if (next <= soon)
            return soon;
    }
    return next;
}

void
Core::fastForward(Cycle limit)
{
    // Jump to one cycle before the next scheduled event: every skipped
    // tick is provably a no-op in all five stages (nothing due to
    // commit, complete, issue, dispatch, or fetch), so only the cycle
    // counters move. kNoEvent machines skip straight to the limit,
    // landing on the same final cycle_ the per-cycle loop reaches.
    const Cycle next = nextEventCycle();
    if (next <= cycle_ + 1)
        return;
    const Cycle target = std::min(next - 1, limit);
    if (target <= cycle_)
        return;
    const Cycle skip = target - cycle_;
    stats_.fastForwarded += skip;
    stats_.cycles += skip;
    cycle_ = target;
}

// -------------------------------------------------------------- dispatch

void
Core::dispatchStage()
{
    unsigned budget = params_.dispatchWidth;
    const unsigned n = numThreads();
    for (unsigned off = 0; off < n && budget > 0; ++off) {
        unsigned tid = (static_cast<unsigned>(cycle_) + off) % n;
        ThreadState &ts = threads_[tid];
        Rob &rob = robs_[tid];
        if (quiesceFrozen_ && ts.opts.stopAfterInsts != 0 &&
            ts.committed >= ts.opts.stopAfterInsts) {
            continue; // frozen thread: stop feeding the back end
        }
        while (budget > 0 && !ts.halted && !ts.fetchQ.empty()) {
            FetchedInst &f = ts.fetchQ.front();
            if (f.availAt > cycle_)
                break;
            if (rob.full())
                break;

            const isa::OpClass cls = isa::classOf(f.inst.op);
            const bool needs_iq = cls != isa::OpClass::Nop &&
                                  cls != isa::OpClass::Halt;
            const bool is_mem = cls == isa::OpClass::Load ||
                                cls == isa::OpClass::Store;

            if (needs_iq && iqCount_ >= params_.iqSize)
                break; // scheduler full
            // The LSQ is statically partitioned per provisioned SMT
            // context, like the ROB.
            if (is_mem && lsqCounts_[tid] >= params_.lsqSize / 2)
                break;

            unsigned dest = invalidPreg;
            const bool writes = isa::writesReg(f.inst.op) &&
                                f.inst.rd != 0;
            if (writes && !regfile_.allocate(dest))
                break;

            unsigned slot = rob.allocate();
            RobHot &h = rob.hot(slot);
            RobCold &e = rob.cold(slot);
            e.tid = tid;
            h.seq = nextSeq_++;
            e.pc = f.pc;
            e.inst = f.inst;
            e.predTaken = f.predTaken;
            e.usedTaken = f.predTaken;
            h.isLoad = isa::isLoad(f.inst.op);
            h.isStore = isa::isStore(f.inst.op);

            RenameMap &map = renames_[tid];
            if (f.inst.readsRs1())
                h.src1Preg = map.spec(f.inst.rs1);
            if (f.inst.readsRs2())
                h.src2Preg = map.spec(f.inst.rs2);
            if (writes) {
                e.destPreg = dest;
                e.oldPreg = map.rename(f.inst.rd, dest);
            }

            if (needs_iq) {
                ++iqCount_;
                if (params_.scanIssue) {
                    pushRef(iqLists_[tid], EntryState::Dispatched,
                            {h.seq, tid, slot});
                } else {
                    enqueueForIssue(tid, slot, h);
                }
            } else {
                h.state = EntryState::Completed;
                e.completedOnce = true;
            }
            if (is_mem) {
                ++lsqCounts_[tid];
                if (h.isStore)
                    ts.storeList.push_back(slot);
            }

            if (h.isLoad)
                ++stats_.loads;
            if (h.isStore)
                ++stats_.stores;
            if (isa::isBranch(f.inst.op))
                ++stats_.branches;

            ts.fetchQ.pop_front();
            ++stats_.dispatched;
            --budget;
        }
    }
}

// ----------------------------------------------------------------- fetch

bool
Core::fetchOne(unsigned tid)
{
    ThreadState &ts = threads_[tid];
    if (ts.fetchPc >= prog_->text.size()) {
        ts.fetchBlocked = true;
        return false;
    }

    const u64 pc = ts.fetchPc;
    const isa::Instruction &inst = prog_->text[pc];
    bool taken = false;
    bool pred = false;

    if (isa::isCondBranch(inst.op)) {
        if (ts.opts.oracleFetch) {
            pred = isa::branchTaken(inst.op, ts.oracle.regs[inst.rs1],
                                    ts.oracle.regs[inst.rs2]);
        } else {
            pred = predictor_.predict(tid, pc);
        }
        taken = pred;
    } else if (inst.op == isa::Op::Jmp) {
        pred = true;
        taken = true;
    }

    if (ts.opts.oracleFetch && !ts.oracle.halted)
        isa::stepArch(*prog_, memory_, ts.oracle);

    ts.fetchQ.push_back(
        {inst, pc, pred, cycle_ + params_.frontEndDepth});
    ++stats_.fetched;

    ts.fetchPc = taken ? inst.target : pc + 1;
    if (inst.op == isa::Op::Halt) {
        ts.fetchBlocked = true;
        return false;
    }
    return !taken;
}

void
Core::fetchStage()
{
    const unsigned n = numThreads();
    // Coarse round-robin: one thread fetches per cycle. A persistent
    // rotation pointer keeps the split fair when some threads are
    // stalled or halted.
    for (unsigned off = 1; off <= n; ++off) {
        unsigned tid = (fetchRotate_ + off) % n;
        ThreadState &ts = threads_[tid];
        if (ts.halted || ts.fetchBlocked || ts.fetchStallUntil > cycle_)
            continue;
        if (ts.opts.stopAfterInsts != 0 &&
            ts.committed >= ts.opts.stopAfterInsts) {
            continue; // frozen threads stop consuming fetch slots
        }
        if (ts.fetchQ.size() >= 4 * params_.fetchWidth)
            continue;
        if (ts.fetchPc >= prog_->text.size()) {
            ts.fetchBlocked = true;
            continue;
        }

        fetchRotate_ = tid;
        auto timing = hier_.fetch(prog_->fetchAddr(ts.fetchPc), cycle_);
        if (!timing.l1Hit) {
            ts.fetchStallUntil = cycle_ + timing.latency;
            return;
        }

        for (unsigned i = 0; i < params_.fetchWidth; ++i)
            if (!fetchOne(tid))
                break;
        return; // only one thread fetches per cycle
    }
}

// ------------------------------------------------- recovery machinery

void
Core::triggerReplay(unsigned tid)
{
    ThreadState &ts = threads_[tid];
    Rob &rob = robs_[tid];
    if (ts.delayBuffer.empty())
        return;
    ++stats_.replayTriggers;

    for (u32 i = 0; i < ts.delayBuffer.size(); ++i) {
        const unsigned slot = ts.delayBuffer[i];
        RobHot &h = rob.hot(slot);
        RobCold &e = rob.cold(slot);
        if (!h.valid || h.state != EntryState::Completed ||
            !e.inDelayBuffer) {
            continue;
        }
        // Re-acquire a scheduler slot for the re-execution (the
        // window may transiently exceed iqSize; dispatch stalls until
        // it drains, which is the replay's back-pressure).
        h.state = EntryState::Dispatched;
        ++iqCount_;
        // Mark the destination cold *before* routing the entry: the
        // delay buffer is oldest-first and producers complete before
        // their consumers, so a replayed consumer later in this loop
        // subscribes to the already-not-ready producer it depends on.
        e.inReplay = true;
        e.inDelayBuffer = false;
        if (e.destPreg != invalidPreg)
            regfile_.markNotReady(e.destPreg);
        if (params_.scanIssue) {
            pushRef(iqLists_[tid], EntryState::Dispatched,
                    {h.seq, tid, slot});
        } else {
            enqueueForIssue(tid, slot, h);
        }
        if (h.isLoad || h.isStore) {
            e.addrValid = false;
            e.dataValid = false;
        }
        ++stats_.replayMarked;
    }
    ts.delayBuffer.clear();
}

void
Core::undoRenameOf(RobCold &entry, unsigned tid)
{
    if (entry.destPreg != invalidPreg) {
        renames_[tid].restore(entry.inst.rd, entry.oldPreg);
        regfile_.release(entry.destPreg);
        // The freed preg reads as ready again; waiters holding it as a
        // (possibly dangling) source tag become issuable.
        if (!params_.scanIssue)
            wakePreg(entry.destPreg);
    }
}

void
Core::purgeFromQueues(ThreadState &ts, const RobHot &h, RobCold &e,
                      unsigned slot)
{
    // inDelayBuffer and isStore are exact residency invariants (the
    // ring insert/remove sites all maintain them), so entries outside
    // a queue skip its compaction scan entirely. The departing store
    // is the oldest at commit (front) and the youngest in a squash
    // walk-back (back); eraseValue stays as the general fallback.
    if (e.inDelayBuffer) {
        ts.delayBuffer.eraseValue(slot);
        e.inDelayBuffer = false;
    }
    if (h.isStore && !ts.storeList.empty()) {
        if (ts.storeList.front() == slot)
            ts.storeList.pop_front();
        else if (ts.storeList.back() == slot)
            ts.storeList.pop_back();
        else
            ts.storeList.eraseValue(slot);
    }
}

void
Core::squashYounger(unsigned tid, SeqNum seq)
{
    Rob &rob = robs_[tid];
    while (!rob.empty()) {
        unsigned slot = rob.tailSlot();
        RobHot &h = rob.hot(slot);
        if (h.seq <= seq)
            break;
        undoRenameOf(rob.cold(slot), tid);
        if (occupiesIq(h))
            --iqCount_;
        if (h.isLoad || h.isStore)
            --lsqCounts_[tid];
        purgeFromQueues(threads_[tid], h, rob.cold(slot), slot);
        rob.popTail();
        ++stats_.mispredictSquashed;
    }
}

void
Core::squashAllOf(unsigned tid)
{
    ThreadState &ts = threads_[tid];
    Rob &rob = robs_[tid];
    while (!rob.empty()) {
        unsigned slot = rob.tailSlot();
        const RobHot &h = rob.hot(slot);
        const RobCold &e = rob.cold(slot);
        if (e.destPreg != invalidPreg) {
            regfile_.release(e.destPreg);
            if (!params_.scanIssue)
                wakePreg(e.destPreg);
        }
        if (occupiesIq(h))
            --iqCount_;
        if (h.isLoad || h.isStore)
            --lsqCounts_[tid];
        rob.popTail();
    }
    renames_[tid].rollbackToRetire();
    ts.delayBuffer.clear();
    ts.storeList.clear();
    ts.fetchQ.clear();
}

void
Core::faultRollback(unsigned tid)
{
    ThreadState &ts = threads_[tid];
    fh_assert(!ts.opts.oracleFetch,
              "fault rollback on an oracle-fetch thread");
    ++stats_.faultRollbacks;

    u64 squashed = robs_[tid].size();
    u64 exempt = 0;
    Rob &rob = robs_[tid];
    for (unsigned i = 0; i < rob.size(); ++i) {
        const RobHot &h = rob.hot(rob.slotAt(i));
        if (h.isLoad)
            exempt += 1;
        else if (h.isStore)
            exempt += 2;
    }

    squashAllOf(tid);
    stats_.rollbackSquashed += squashed;

    // Map-based recovery: rebuild the free list from the surviving
    // rename state, repairing any free-list damage left by a faulty
    // rename tag (Section 3.4) if the wrongly-freed register has not
    // been reallocated yet.
    std::vector<bool> live(regfile_.size(), false);
    for (unsigned t = 0; t < numThreads(); ++t) {
        for (unsigned arch = 0; arch < isa::numArchRegs; ++arch) {
            live[renames_[t].retire(arch)] = true;
            live[renames_[t].spec(arch)] = true;
        }
        const Rob &other = robs_[t];
        for (unsigned i = 0; i < other.size(); ++i) {
            const unsigned slot = other.slotAt(i);
            const RobHot &h = other.hot(slot);
            if (!h.valid)
                continue;
            const RobCold &e = other.cold(slot);
            if (e.destPreg != invalidPreg)
                live[e.destPreg] = true;
            if (e.oldPreg != invalidPreg)
                live[e.oldPreg] = true;
        }
    }
    regfile_.resetFreeList(live);
    // The free-list rebuild may flip many ready bits at once (wrongly-
    // freed registers repaired back to ready). Conservatively drain
    // every wake row into the pools; the per-cycle pool re-check
    // re-subscribes anything still genuinely waiting. Rollbacks are
    // rare, so the mass drain costs nothing on the steady path.
    if (!params_.scanIssue)
        drainAllWakeRows();

    // Values recomputed by the rollback are deemed final: the next
    // checks of this thread update the filters without re-triggering.
    ts.exemptChecks += exempt;
    redirectFetch(tid, ts.nextCommitPc);
}

void
Core::redirectFetch(unsigned tid, u64 pc)
{
    ThreadState &ts = threads_[tid];
    ts.fetchPc = pc;
    ts.fetchQ.clear();
    ts.fetchBlocked = false;
    ts.fetchStallUntil =
        std::max(ts.fetchStallUntil, cycle_ + params_.redirectPenalty);
}

// --------------------------------------------------------- fault hooks

void
Core::injectRegfileBit(unsigned preg, unsigned bit)
{
    fh_assert(preg < regfile_.size() && bit < wordBits,
              "regfile injection out of range");
    regfile_.flipBit(preg, bit);
}

std::vector<unsigned>
Core::inflightDestPregs() const
{
    // A datapath/control fault corrupts a value *at production time*
    // (ALU output, writeback bus, bypass), so candidates are the
    // destinations of instructions that completed within the last few
    // cycles. (Not-yet-executed destinations would be overwritten by
    // their own writeback; long-completed ones model RF cell faults,
    // which the uniform register-file draw already covers.)
    constexpr Cycle window = 1;
    std::vector<unsigned> pregs;
    for (unsigned tid = 0; tid < numThreads(); ++tid) {
        const Rob &rob = robs_[tid];
        for (unsigned i = 0; i < rob.size(); ++i) {
            const unsigned slot = rob.slotAt(i);
            const RobHot &h = rob.hot(slot);
            const RobCold &e = rob.cold(slot);
            if (h.valid && e.destPreg != invalidPreg &&
                h.state == EntryState::Completed &&
                h.finishCycle + window >= cycle_) {
                pregs.push_back(e.destPreg);
            }
        }
    }
    return pregs;
}

PregPhase
Core::pregPhase(unsigned preg) const
{
    if (regfile_.isFree(preg))
        return PregPhase::Free;
    for (unsigned tid = 0; tid < numThreads(); ++tid) {
        const Rob &rob = robs_[tid];
        for (unsigned i = 0; i < rob.size(); ++i) {
            const unsigned slot = rob.slotAt(i);
            const RobHot &h = rob.hot(slot);
            if (h.valid && rob.cold(slot).destPreg == preg) {
                return h.state == EntryState::Completed
                           ? PregPhase::Completed
                           : PregPhase::InFlight;
            }
        }
    }
    for (unsigned tid = 0; tid < numThreads(); ++tid)
        for (unsigned arch = 0; arch < isa::numArchRegs; ++arch)
            if (renames_[tid].retire(arch) == preg)
                return PregPhase::Architectural;
    // Owned but unnamed: a previous architectural value still readable
    // by in-flight consumers.
    return PregPhase::Completed;
}

unsigned
Core::lsqOccupied() const
{
    unsigned n = 0;
    for (unsigned tid = 0; tid < numThreads(); ++tid) {
        const Rob &rob = robs_[tid];
        for (unsigned i = 0; i < rob.size(); ++i) {
            const unsigned slot = rob.slotAt(i);
            const RobHot &h = rob.hot(slot);
            if (h.valid && (h.isLoad || h.isStore) &&
                rob.cold(slot).addrValid) {
                ++n;
            }
        }
    }
    return n;
}

bool
Core::injectLsqBit(unsigned nth, bool addr_field, unsigned bit)
{
    fh_assert(bit < wordBits, "LSQ injection bit out of range");
    unsigned n = 0;
    for (unsigned tid = 0; tid < numThreads(); ++tid) {
        Rob &rob = robs_[tid];
        for (unsigned i = 0; i < rob.size(); ++i) {
            const unsigned slot = rob.slotAt(i);
            const RobHot &h = rob.hot(slot);
            RobCold &e = rob.cold(slot);
            if (!h.valid || !(h.isLoad || h.isStore) || !e.addrValid)
                continue;
            if (n++ == nth) {
                if (addr_field || h.isLoad)
                    e.effAddr ^= 1ULL << bit;
                else
                    e.storeData ^= 1ULL << bit;
                return true;
            }
        }
    }
    return false;
}

u64
Core::pcOfDestPreg(unsigned preg) const
{
    for (unsigned tid = 0; tid < numThreads(); ++tid) {
        const Rob &rob = robs_[tid];
        for (unsigned i = 0; i < rob.size(); ++i) {
            const unsigned slot = rob.slotAt(i);
            if (rob.hot(slot).valid &&
                rob.cold(slot).destPreg == preg) {
                return rob.cold(slot).pc;
            }
        }
    }
    return 0;
}

u64
Core::pcOfLsqNth(unsigned nth) const
{
    unsigned n = 0;
    for (unsigned tid = 0; tid < numThreads(); ++tid) {
        const Rob &rob = robs_[tid];
        for (unsigned i = 0; i < rob.size(); ++i) {
            const unsigned slot = rob.slotAt(i);
            const RobHot &h = rob.hot(slot);
            const RobCold &e = rob.cold(slot);
            if (!h.valid || !(h.isLoad || h.isStore) || !e.addrValid)
                continue;
            if (n++ == nth)
                return e.pc;
        }
    }
    return 0;
}

void
Core::injectRenameBit(unsigned tid, unsigned arch, unsigned bit)
{
    fh_assert(tid < numThreads() && arch < isa::numArchRegs,
              "rename injection out of range");
    renames_[tid].flipSpecBit(arch, bit, regfile_.size());
}

} // namespace fh::pipeline
