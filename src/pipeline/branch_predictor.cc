#include "pipeline/branch_predictor.hh"

#include <bit>

#include "sim/logging.hh"

namespace fh::pipeline
{

BranchPredictor::BranchPredictor(unsigned entries)
    : counters_(entries, 2), history_(8, 0)
{
    fh_assert(std::has_single_bit(static_cast<u64>(entries)),
              "predictor entries must be a power of two");
}

unsigned
BranchPredictor::index(unsigned tid, u64 pc) const
{
    const u64 h = history_[tid % history_.size()];
    return static_cast<unsigned>((pc ^ (h << 2) ^ (u64(tid) << 9)) %
                                 counters_.size());
}

bool
BranchPredictor::predict(unsigned tid, u64 pc) const
{
    return counters_[index(tid, pc)] >= 2;
}

void
BranchPredictor::update(unsigned tid, u64 pc, bool taken)
{
    ++lookups_;
    u8 &ctr = counters_[index(tid, pc)];
    if ((ctr >= 2) == taken)
        ++correct_;
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
    u16 &h = history_[tid % history_.size()];
    h = static_cast<u16>((h << 1) | (taken ? 1 : 0));
}

} // namespace fh::pipeline
