#include "exec/thread_pool.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fh::exec
{

unsigned
hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

unsigned
resolveThreads(unsigned requested)
{
    return requested ? requested : hardwareThreads();
}

namespace
{
thread_local unsigned tlsWorkerIndex = 0;
} // namespace

unsigned
ThreadPool::currentWorker()
{
    return tlsWorkerIndex;
}

ThreadPool::ThreadPool(unsigned threads)
    : nthreads_(std::max(1u, resolveThreads(threads)))
{
    workers_.reserve(nthreads_ - 1);
    for (unsigned i = 1; i < nthreads_; ++i)
        workers_.emplace_back([this, i] {
            tlsWorkerIndex = i;
            workerLoop();
        });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::runChunks(Job &job)
{
    for (;;) {
        const u64 begin =
            job.next.fetch_add(job.grain, std::memory_order_relaxed);
        if (begin >= job.n)
            return;
        const u64 end = std::min(job.n, begin + job.grain);
        if (job.aborted.load(std::memory_order_acquire)) {
            // A body already failed: drain the remaining index space
            // without executing it, but account for it as skipped —
            // not silently "done" — so the caller can report how much
            // of the loop never ran.
            job.skipped.fetch_add(end - begin,
                                  std::memory_order_relaxed);
        } else {
            u64 i = begin;
            try {
                for (; i < end; ++i)
                    (*job.body)(i);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(mutex_);
                    if (!job.error)
                        job.error = std::current_exception();
                }
                // The rest of this chunk is abandoned too (the index
                // that threw counts as executed, not skipped).
                job.skipped.fetch_add(end - i - 1,
                                      std::memory_order_relaxed);
                job.aborted.store(true, std::memory_order_release);
            }
        }
        if (job.done.fetch_add(end - begin) + (end - begin) >= job.n) {
            // Last chunk: wake the caller blocked in parallelFor.
            std::lock_guard<std::mutex> lock(mutex_);
            idle_.notify_all();
        }
    }
}

void
ThreadPool::workerLoop()
{
    u64 seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock,
                   [&] { return stop_ || (job_ && generation_ != seen); });
        if (stop_)
            return;
        seen = generation_;
        Job &job = *job_;
        ++busy_;
        lock.unlock();
        runChunks(job);
        lock.lock();
        if (--busy_ == 0)
            idle_.notify_all();
    }
}

void
ThreadPool::parallelFor(u64 n, u64 grain,
                        const std::function<void(u64)> &body)
{
    if (n == 0)
        return;
    lastSkipped_ = 0;
    grain = std::max<u64>(1, grain);
    if (nthreads_ == 1 || n == 1) {
        // Inline path: an exception propagates directly; the indices
        // after it were never claimed, which is the same "skipped"
        // accounting the pooled path reports.
        u64 i = 0;
        try {
            for (; i < n; ++i)
                body(i);
        } catch (...) {
            lastSkipped_ = n - i - 1;
            if (lastSkipped_)
                fh_warn("parallelFor aborted by an exception: %llu of "
                        "%llu indices skipped",
                        static_cast<unsigned long long>(lastSkipped_),
                        static_cast<unsigned long long>(n));
            throw;
        }
        return;
    }

    Job job;
    job.n = n;
    job.grain = grain;
    job.body = &body;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &job;
        ++generation_;
    }
    wake_.notify_all();

    runChunks(job); // the caller is a worker too

    // job lives on this stack frame: wait until every index ran AND
    // every worker has stepped out of runChunks before retiring it.
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [&] {
            return job.done.load() >= job.n && busy_ == 0;
        });
        job_ = nullptr;
    }

    if (job.error) {
        lastSkipped_ = job.skipped.load(std::memory_order_relaxed);
        if (lastSkipped_)
            fh_warn("parallelFor aborted by an exception: %llu of %llu "
                    "indices skipped",
                    static_cast<unsigned long long>(lastSkipped_),
                    static_cast<unsigned long long>(job.n));
        std::rethrow_exception(job.error);
    }
}

void
parallelFor(unsigned threads, u64 n, const std::function<void(u64)> &body)
{
    ThreadPool pool(threads);
    pool.parallelFor(n, body);
}

} // namespace fh::exec
