/**
 * @file
 * Thread-safe campaign progress reporting: counts completed work items
 * and periodically logs throughput (items/s) and an ETA through
 * sim/logging. Built for ticks arriving from many pool workers at
 * once — the hot path is a single relaxed atomic increment, and only
 * the one thread that crosses the reporting interval formats a line.
 */

#ifndef FH_EXEC_PROGRESS_HH
#define FH_EXEC_PROGRESS_HH

#include <atomic>
#include <chrono>
#include <string>

#include "sim/types.hh"

namespace fh::exec
{

class ProgressMeter
{
  public:
    /**
     * Logs at most one line per interval_ms. total = 0 means the item
     * count is unknown (rate is reported, ETA is not).
     */
    explicit ProgressMeter(std::string label, u64 total,
                           u64 interval_ms = 2000);

    /** Record n completed items; may emit one log line. */
    void tick(u64 n = 1);

    /** Emit a final summary (items done, mean rate, wall time). */
    void finish();

    u64 done() const { return done_.load(std::memory_order_relaxed); }
    u64 total() const { return total_; }

  private:
    using Clock = std::chrono::steady_clock;

    u64 elapsedMs() const;
    void report(u64 done, bool final) const;

    std::string label_;
    u64 total_;
    u64 intervalMs_;
    Clock::time_point start_;
    std::atomic<u64> done_{0};
    std::atomic<u64> nextLogMs_;
};

} // namespace fh::exec

#endif // FH_EXEC_PROGRESS_HH
