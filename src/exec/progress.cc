#include "exec/progress.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace fh::exec
{

namespace
{

unsigned long long
ull(u64 v)
{
    return static_cast<unsigned long long>(v);
}

} // namespace

ProgressMeter::ProgressMeter(std::string label, u64 total,
                             u64 interval_ms)
    : label_(std::move(label)), total_(total), intervalMs_(interval_ms),
      start_(Clock::now()), nextLogMs_(interval_ms)
{
}

u64
ProgressMeter::elapsedMs() const
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Clock::now() - start_)
            .count());
}

void
ProgressMeter::tick(u64 n)
{
    const u64 done = done_.fetch_add(n, std::memory_order_relaxed) + n;
    const u64 now = elapsedMs();
    u64 next = nextLogMs_.load(std::memory_order_relaxed);
    // One thread wins the CAS per interval; the rest only count.
    if (now < next ||
        !nextLogMs_.compare_exchange_strong(next, now + intervalMs_))
        return;
    report(done, false);
}

void
ProgressMeter::finish()
{
    report(done(), true);
}

void
ProgressMeter::report(u64 done, bool final) const
{
    const double secs = std::max(1e-3, elapsedMs() / 1000.0);
    const double rate = static_cast<double>(done) / secs;
    if (final) {
        fh_inform("%s: %llu trials in %.1fs (%.1f trials/s)",
                  label_.c_str(), ull(done), secs, rate);
        return;
    }
    if (total_ && rate > 0.0) {
        const u64 left = total_ - std::min(done, total_);
        fh_inform("%s: %llu/%llu trials (%.1f%%) | %.1f trials/s | "
                  "ETA %.0fs",
                  label_.c_str(), ull(done), ull(total_),
                  100.0 * static_cast<double>(done) /
                      static_cast<double>(total_),
                  rate, static_cast<double>(left) / rate);
    } else {
        fh_inform("%s: %llu trials | %.1f trials/s", label_.c_str(),
                  ull(done), rate);
    }
}

} // namespace fh::exec
