/**
 * @file
 * Graceful-shutdown plumbing for long campaigns: a SIGINT/SIGTERM
 * handler latches a process-wide flag that fault::runCampaign polls
 * between trials. On the first signal the campaign stops opening new
 * trials, drains the ones already in flight, flushes its journal, and
 * returns a CampaignResult marked partial; a second signal falls back
 * to the default disposition (immediate kill) for a wedged run.
 *
 * The flag can also be set programmatically (requestShutdown), which
 * the resilience tests use to simulate a kill at a chosen trial.
 */

#ifndef FH_EXEC_INTERRUPT_HH
#define FH_EXEC_INTERRUPT_HH

namespace fh::exec
{

/**
 * Install the SIGINT/SIGTERM handlers described above. Idempotent;
 * call once from a driver before starting a long campaign.
 */
void installShutdownHandlers();

/** True once a signal arrived or requestShutdown() was called. */
bool shutdownRequested();

/** Latch the shutdown flag without a signal (tests, embedders). */
void requestShutdown();

/**
 * The signal that latched the flag, or 0 when none did (programmatic
 * request, or no shutdown yet). The distributed dispatcher uses this
 * to forward the *same* signal to its worker subprocesses, so a
 * session-level SIGTERM and an interactive ^C propagate faithfully.
 */
int shutdownSignal();

/** Clear the flag (tests that simulate several interrupted runs). */
void clearShutdown();

} // namespace fh::exec

#endif // FH_EXEC_INTERRUPT_HH
