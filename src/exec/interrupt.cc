#include "exec/interrupt.hh"

#include <atomic>
#include <csignal>

namespace fh::exec
{

namespace
{

/** sig_atomic_t for the handler, mirrored into an atomic for readers
 *  on other threads. */
volatile std::sig_atomic_t g_signalled = 0;
volatile std::sig_atomic_t g_signal_no = 0;
std::atomic<bool> g_shutdown{false};

extern "C" void
onShutdownSignal(int sig)
{
    g_signal_no = sig;
    g_signalled = 1;
    g_shutdown.store(true, std::memory_order_relaxed);
    // One polite request only: restore the default disposition so a
    // second ^C kills a campaign that wedged during its drain.
    std::signal(sig, SIG_DFL);
}

} // namespace

void
installShutdownHandlers()
{
    std::signal(SIGINT, onShutdownSignal);
    std::signal(SIGTERM, onShutdownSignal);
}

bool
shutdownRequested()
{
    return g_signalled != 0 ||
           g_shutdown.load(std::memory_order_relaxed);
}

void
requestShutdown()
{
    g_shutdown.store(true, std::memory_order_relaxed);
}

int
shutdownSignal()
{
    return static_cast<int>(g_signal_no);
}

void
clearShutdown()
{
    g_signalled = 0;
    g_signal_no = 0;
    g_shutdown.store(false, std::memory_order_relaxed);
}

} // namespace fh::exec
