/**
 * @file
 * Work-sharing thread-pool runtime. A pool of persistent workers
 * executes chunked parallel-for loops: indices of [0, n) are handed
 * out through an atomic cursor, so threads that finish their chunk
 * early keep stealing the remaining ones (dynamic load balancing),
 * and the calling thread participates as a worker — a 1-thread pool
 * therefore runs everything inline with zero synchronization.
 *
 * Determinism contract: parallelFor imposes no execution order.
 * Callers get bit-identical results across thread counts only when
 * every index's work is independent and writes to its own output
 * slot, with any reduction done serially afterwards — the pattern
 * fault::runCampaign uses for sharded injection campaigns.
 */

#ifndef FH_EXEC_THREAD_POOL_HH
#define FH_EXEC_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/types.hh"

namespace fh::exec
{

/** Host hardware thread count (never 0). */
unsigned hardwareThreads();

/** Map a requested worker count to an actual one (0 = all hardware). */
unsigned resolveThreads(unsigned requested);

class ThreadPool
{
  public:
    /**
     * threads counts the calling thread too: ThreadPool(4) spawns 3
     * workers and parallelFor adds the caller. 0 = all hardware.
     */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned size() const { return nthreads_; }

    /**
     * Stable identity of the executing thread within its pool, for
     * per-worker scratch indexing: the pool's caller thread is 0 and
     * spawned workers are 1..size()-1, so any thread inside a
     * parallelFor body may index a caller-owned array of size()
     * entries without synchronization. Threads that never entered a
     * pool report 0 (they are somebody's caller).
     */
    static unsigned currentWorker();

    /**
     * Run body(i) for every i in [0, n), handing out chunks of grain
     * consecutive indices; blocks until the loop is fully drained.
     * The first exception thrown by any body is rethrown here. Once a
     * failure is latched no further index runs: workers fast-forward
     * through the remaining chunks, counting them as skipped rather
     * than silently "done" — the count is reported via lastSkipped()
     * (and a warning) alongside the rethrown exception, so a caller
     * knows exactly how much of the loop never executed.
     */
    void parallelFor(u64 n, u64 grain,
                     const std::function<void(u64)> &body);
    void parallelFor(u64 n, const std::function<void(u64)> &body)
    {
        parallelFor(n, 1, body);
    }

    /**
     * Indices of the most recent parallelFor that were abandoned
     * because an earlier body threw (0 after a clean loop).
     */
    u64 lastSkipped() const { return lastSkipped_; }

  private:
    struct Job
    {
        std::atomic<u64> next{0}; ///< first unclaimed index
        std::atomic<u64> done{0}; ///< indices executed or skipped
        std::atomic<u64> skipped{0};      ///< abandoned after a failure
        std::atomic<bool> aborted{false}; ///< a body threw; stop work
        u64 n = 0;
        u64 grain = 1;
        const std::function<void(u64)> *body = nullptr;
        std::exception_ptr error; ///< first failure; guarded by mutex_
    };

    void workerLoop();
    void runChunks(Job &job);

    unsigned nthreads_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable wake_; ///< workers: a new job was posted
    std::condition_variable idle_; ///< caller: job drained, workers out
    Job *job_ = nullptr;           ///< currently posted job
    u64 generation_ = 0;           ///< bumped once per posted job
    unsigned busy_ = 0;            ///< workers inside runChunks
    bool stop_ = false;
    u64 lastSkipped_ = 0;          ///< see lastSkipped()
};

/** One-shot parallelFor on a transient pool. */
void parallelFor(unsigned threads, u64 n,
                 const std::function<void(u64)> &body);

} // namespace fh::exec

#endif // FH_EXEC_THREAD_POOL_HH
