#include "energy/cacti_lite.hh"

#include <cmath>

namespace fh::energy
{

namespace
{

// Reference: a 32 KB array (262144 bits) costs 0.5 units per access,
// the same as the L1 D-cache in the core energy table. Energy scales
// roughly with sqrt(bits) (bitline + wordline length in a square
// layout), with a fixed decoder/sense floor.
constexpr double referenceBits = 262144.0;
constexpr double referenceEnergy = 0.5;
constexpr double floorEnergy = 0.004;

} // namespace

double
sramAccessEnergy(u64 entries, unsigned bits_per_entry)
{
    const double bits =
        static_cast<double>(entries) * bits_per_entry;
    return floorEnergy +
           (referenceEnergy - floorEnergy) *
               std::sqrt(bits / referenceBits);
}

double
tcamAccessEnergy(u64 entries, unsigned bits_per_entry)
{
    // Every entry's match line switches on a search: linear in the
    // number of searched bits, with a CAM cell costing ~2x an SRAM
    // cell per activated bit. Normalized against the same reference.
    const double bits =
        static_cast<double>(entries) * bits_per_entry;
    return floorEnergy + 2.0 * referenceEnergy * (bits / referenceBits);
}

} // namespace fh::energy
