/**
 * @file
 * CACTI-flavored analytical per-access energy estimates for SRAM
 * tables and TCAMs. Only *relative* magnitudes matter for the paper's
 * energy figures; the model is normalized so that a 32 KB SRAM array
 * (an L1-D-sized structure, or PBFS's 2K-entry filter table) costs
 * roughly the paper's reference unit — the point of Section 3.1 being
 * that FaultHound's 32-entry TCAMs are orders of magnitude cheaper.
 */

#ifndef FH_ENERGY_CACTI_LITE_HH
#define FH_ENERGY_CACTI_LITE_HH

#include "sim/types.hh"

namespace fh::energy
{

/** Per-access energy (arbitrary units) of an SRAM array. */
double sramAccessEnergy(u64 entries, unsigned bits_per_entry);

/** Per-access energy of a TCAM search across all entries. */
double tcamAccessEnergy(u64 entries, unsigned bits_per_entry);

} // namespace fh::energy

#endif // FH_ENERGY_CACTI_LITE_HH
