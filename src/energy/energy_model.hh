/**
 * @file
 * Event-based core energy model in the spirit of McPAT: each pipeline
 * event carries a per-event energy in arbitrary units with relative
 * magnitudes matching an out-of-order core's published breakdowns,
 * plus per-cycle leakage. Replay and rollback overheads appear
 * naturally through the extra fetch/issue/regfile events they cause;
 * the detector's filter accesses are costed through the CACTI-lite
 * estimators.
 */

#ifndef FH_ENERGY_ENERGY_MODEL_HH
#define FH_ENERGY_ENERGY_MODEL_HH

#include "pipeline/core.hh"
#include "sim/types.hh"

namespace fh::energy
{

/** Per-event energies (arbitrary units; see cacti_lite.hh). */
struct EnergyParams
{
    double fetchDecode = 0.45; ///< per fetched instruction (incl. L1I)
    double rename = 0.15;      ///< per dispatched instruction
    double iq = 0.20;          ///< per dispatch + per issue (wakeup/select)
    double regRead = 0.08;     ///< per operand read
    double regWrite = 0.12;    ///< per result write
    double execute = 0.30;     ///< per issued instruction (FU)
    double lsq = 0.15;         ///< per load/store dispatched
    double rob = 0.10;         ///< per dispatch + per commit
    double l1d = 0.50;         ///< per L1 D access
    double l2 = 1.80;          ///< per L2 access
    double dram = 18.0;        ///< per memory access
    double leakPerCycle = 1.0; ///< static energy per core cycle
};

/** Energy totals, split for reporting. */
struct EnergyBreakdown
{
    double pipeline = 0.0; ///< fetch..commit dynamic energy
    double memory = 0.0;   ///< D-cache hierarchy dynamic energy
    double detector = 0.0; ///< filter tables / TCAM accesses
    double leakage = 0.0;

    double total() const
    {
        return pipeline + memory + detector + leakage;
    }
};

/** Cost a finished (or in-progress) core run. */
EnergyBreakdown computeEnergy(const pipeline::Core &core,
                              const EnergyParams &params = {});

} // namespace fh::energy

#endif // FH_ENERGY_ENERGY_MODEL_HH
