#include "energy/energy_model.hh"

#include "energy/cacti_lite.hh"

namespace fh::energy
{

EnergyBreakdown
computeEnergy(const pipeline::Core &core, const EnergyParams &p)
{
    const auto &s = core.stats();
    EnergyBreakdown e;

    e.pipeline += p.fetchDecode * static_cast<double>(s.fetched);
    e.pipeline += p.rename * static_cast<double>(s.dispatched);
    e.pipeline += p.iq * static_cast<double>(s.dispatched + s.issued);
    e.pipeline += p.regRead * static_cast<double>(s.regReads);
    e.pipeline += p.regWrite * static_cast<double>(s.regWrites);
    e.pipeline += p.execute * static_cast<double>(s.issued);
    e.pipeline += p.lsq * static_cast<double>(s.loads + s.stores);
    e.pipeline += p.rob * static_cast<double>(s.dispatched + s.committed);

    const auto &l1d = core.hierarchy().l1d();
    const auto &l2 = core.hierarchy().l2();
    e.memory += p.l1d * static_cast<double>(l1d.hits() + l1d.misses());
    e.memory += p.l2 * static_cast<double>(l2.hits() + l2.misses());
    e.memory += p.dram * static_cast<double>(l2.misses());

    const auto &det = core.detector();
    if (det.active()) {
        double per_access = 0.0;
        const auto &dp = det.params();
        if (dp.scheme == filters::Scheme::FaultHound && dp.clustering) {
            // Ternary entries: 2 bits of CAM state per value bit,
            // plus the stored previous value.
            per_access = tcamAccessEnergy(dp.tcam.entries, 3 * wordBits);
        } else {
            per_access = sramAccessEnergy(dp.pbfs.entries, 3 * wordBits);
        }
        e.detector = per_access * static_cast<double>(det.filterAccesses());
    }

    e.leakage = p.leakPerCycle * static_cast<double>(s.cycles);
    return e;
}

} // namespace fh::energy
