/**
 * @file
 * The benchmark suite of Table 1, rebuilt as synthetic FH-RISC kernels.
 *
 * The paper's experiments depend on the workloads only through their
 * load/store value-locality, cache behaviour, branch behaviour and
 * instruction mix; each generator here reproduces the archetypal
 * behaviour of its benchmark (streaming FP solver, pointer-chasing
 * integer code, hash-table server workloads, ...) with those knobs.
 * See DESIGN.md for the substitution rationale.
 */

#ifndef FH_WORKLOAD_WORKLOAD_HH
#define FH_WORKLOAD_WORKLOAD_HH

#include <string>
#include <vector>

#include "isa/program.hh"
#include "sim/types.hh"

namespace fh::workload
{

enum class Suite : u8
{
    SpecInt,
    SpecFp,
    Commercial,
    Splash
};

std::string to_string(Suite suite);

/** Build-time knobs shared by every generator. */
struct WorkloadSpec
{
    /** Kernel loop iterations. The default is effectively unbounded —
     *  harnesses stop at an instruction budget; tests use small values
     *  so programs halt. */
    u64 iterations = 1ull << 30;
    /** Hardware threads the program must support (disjoint data). */
    unsigned maxThreads = 4;
    /** Seed for data initialization. */
    u64 seed = 0x5eedULL;
    /** Footprint scale divider (tests use >1 for small footprints). */
    u64 footprintDivider = 1;
};

struct BenchmarkInfo
{
    std::string name;
    Suite suite;
    std::string archetype;
    isa::Program (*build)(const WorkloadSpec &spec);
};

/** All 14 benchmarks of Table 1, in paper order. */
const std::vector<BenchmarkInfo> &all();

/** Find by name; nullptr if unknown. */
const BenchmarkInfo *find(const std::string &name);

/** Build a benchmark by name; fatal on unknown names. */
isa::Program build(const std::string &name, const WorkloadSpec &spec);

} // namespace fh::workload

#endif // FH_WORKLOAD_WORKLOAD_HH
