/**
 * @file
 * Kernel archetypes used to synthesize the Table 1 benchmarks.
 * Each builder emits a self-contained FH-RISC program whose data is
 * laid out per hardware thread (r1-relative, disjoint segments).
 */

#ifndef FH_WORKLOAD_KERNELS_HH
#define FH_WORKLOAD_KERNELS_HH

#include "isa/program.hh"
#include "workload/workload.hh"

namespace fh::workload
{

/** How array contents are initialized (controls value locality). */
enum class ValueKind : u8
{
    Counter,  ///< base + index: very high locality
    LowNoise, ///< base + 16 random low bits: locality in high bits
    Random    ///< full 64-bit random: low locality
};

/** Streaming kernel: load A[i], compute, store B[i] (leslie3d, ocean,
 *  water-nsquared archetype). */
struct StreamParams
{
    u64 words = 1 << 16; ///< per-array footprint (power of two)
    unsigned computeOps = 4;
    bool useMul = false;
    ValueKind values = ValueKind::Counter;
};
isa::Program makeStream(const char *name, const WorkloadSpec &spec,
                        StreamParams p);

/** Pointer-chase kernel over a random permutation (mcf, OLTP). */
struct ChaseParams
{
    u64 nodes = 1 << 16; ///< 2 words per node (power of two)
    unsigned payloadOps = 1;
};
isa::Program makeChase(const char *name, const WorkloadSpec &spec,
                       ChaseParams p);

/** Hash-table update kernel with data-dependent branches (perl,
 *  apache, SPECjbb). */
struct HashParams
{
    u64 tableWords = 1 << 14;
    unsigned mixOps = 2;
    unsigned branchMask = 1; ///< value & mask == 0 drives a branch
    ValueKind values = ValueKind::LowNoise;
};
isa::Program makeHash(const char *name, const WorkloadSpec &spec,
                      HashParams p);

/** Sequential scan with bit twiddling and a threshold branch plus
 *  conditional stores (bzip2). */
struct CompressParams
{
    u64 words = 1 << 15;
    unsigned threshold = 96; ///< of 256; store probability
    ValueKind values = ValueKind::Random;
};
isa::Program makeCompress(const char *name, const WorkloadSpec &spec,
                          CompressParams p);

/** Irregular two-array search with data-dependent control (astar,
 *  raytrace, volrend). */
struct SearchParams
{
    u64 words = 1 << 14;
    unsigned storeEvery = 4; ///< power of two
    ValueKind values = ValueKind::LowNoise;
};
isa::Program makeSearch(const char *name, const WorkloadSpec &spec,
                        SearchParams p);

/** Dense mat-vec style loop nest with multiply-accumulate (dealII,
 *  gamess, water). */
struct MatrixParams
{
    u64 n = 64; ///< power of two
    ValueKind values = ValueKind::Counter;
};
isa::Program makeMatrix(const char *name, const WorkloadSpec &spec,
                        MatrixParams p);

} // namespace fh::workload

#endif // FH_WORKLOAD_KERNELS_HH
