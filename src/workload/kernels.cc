#include "workload/kernels.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace fh::workload
{

using isa::Instruction;
using isa::makeBranch;
using isa::makeJmp;
using isa::makeLd;
using isa::makeLi;
using isa::makeRRI;
using isa::makeRRR;
using isa::makeSt;
using isa::Op;
using isa::ProgramBuilder;

namespace
{

constexpr Addr dataBase = 0x20000000;
constexpr u64 guardBytes = 0x10000; ///< unmapped gap between threads

/** FNV-ish mixing for per-benchmark seeds. */
u64
mixSeed(u64 seed, const char *name)
{
    u64 h = seed ^ 0xcbf29ce484222325ULL;
    for (const char *c = name; *c; ++c)
        h = (h ^ static_cast<u64>(*c)) * 0x100000001b3ULL;
    return h;
}

u64
scaled(u64 words, const WorkloadSpec &spec)
{
    u64 div = std::max<u64>(1, spec.footprintDivider);
    u64 w = words / div;
    return std::max<u64>(w, 64);
}

/**
 * Array contents. Real programs keep most value bits stable (Figure 6:
 * most bit positions change in fewer than 1% of writes), so even the
 * "random" flavors confine the entropy to the low-order bits.
 */
u64
initValue(ValueKind kind, u64 index, Rng &rng)
{
    switch (kind) {
      case ValueKind::Counter:
        return 0x1000 + index;
      case ValueKind::LowNoise:
        return 0x100000 + (rng.next() & 0xff) * 8;
      case ValueKind::Random:
        return rng.next();
    }
    return 0;
}

/**
 * Declare one segment per thread of total_words words, starting at
 * dataBase and separated by unmapped guard gaps, and record the
 * per-thread r1 bases.
 */
std::vector<u64>
layoutThreads(ProgramBuilder &b, const WorkloadSpec &spec,
              u64 total_words)
{
    std::vector<u64> bases;
    const u64 bytes = total_words * 8;
    // Stagger the per-thread bases by 46 cache lines (multiple of 128
    // keeps bit 6 clear for the kernels' offset^64 accesses): SMT
    // contexts running copies of one program must not march over the
    // same cache sets in lockstep, which no real co-schedule does.
    const u64 stagger = 46 * 64;
    const u64 stride = bytes + guardBytes + stagger;
    for (unsigned tid = 0; tid < std::max(1u, spec.maxThreads); ++tid) {
        u64 base = dataBase + tid * stride;
        b.addSegment(base, bytes);
        bases.push_back(base);
    }
    return bases;
}

isa::Program
finish(ProgramBuilder &b, std::vector<u64> bases)
{
    isa::Program prog = b.take();
    prog.threadBases = std::move(bases);
    return prog;
}

void
initArrays(ProgramBuilder &b, const std::vector<u64> &bases, u64 words,
           ValueKind kind, Rng &rng)
{
    for (u64 base : bases) {
        Rng thread_rng = rng; // identical data per thread
        for (u64 i = 0; i < words; ++i)
            b.initWord(base + i * 8, initValue(kind, i, thread_rng));
    }
}

} // namespace

isa::Program
makeStream(const char *name, const WorkloadSpec &spec, StreamParams p)
{
    p.words = scaled(p.words, spec);
    ProgramBuilder b(name);
    auto bases = layoutThreads(b, spec, 2 * p.words);
    Rng rng(mixSeed(spec.seed, name));
    initArrays(b, bases, p.words, p.values, rng);

    const i64 out_off = static_cast<i64>(p.words * 8);
    b.emit(makeLi(2, 0));                               // i
    b.emit(makeLi(8, 0));                               // accumulator
    const u32 loop = b.here();
    // Constants are rematerialized per iteration (as compilers do),
    // keeping register lifetimes realistic for fault injection.
    b.emit(makeLi(3, static_cast<i64>(spec.iterations)));
    b.emit(makeLi(10, 8191));                           // phase stride
    // Sweep origin shifts every 2K iterations (grid-sweep phases).
    b.emit(makeRRI(Op::Srli, 9, 2, 11));
    b.emit(makeRRR(Op::Mul, 9, 9, 10));
    b.emit(makeRRR(Op::Add, 4, 2, 9));
    b.emit(makeRRI(Op::Andi, 4, 4, static_cast<i64>(p.words - 1)));
    b.emit(makeRRI(Op::Slli, 4, 4, 3));
    b.emit(makeRRR(Op::Add, 4, 4, 1));                  // &A[i]
    b.emit(makeLd(5, 4, 0));                            // A[i]
    b.emit(makeRRR(Op::Add, 8, 8, 5));                  // checksum
    // Dependent compute chain anchored at A[i]; the stored value keeps
    // A[i]'s structure so the store-value stream has real locality.
    u8 acc = 5;
    for (unsigned k = 0; k < p.computeOps; ++k) {
        b.emit(makeRRR(Op::Add, 6, acc, 5));
        acc = 6;
    }
    if (p.useMul) {
        b.emit(makeRRI(Op::Slli, 7, acc, 1));
        b.emit(makeRRR(Op::Add, 6, acc, 7)); // *3 via shift-add
        acc = 6;
    }
    b.emit(makeSt(4, acc, out_off));                    // B[i] = f(A[i])
    // Unrolled second element from a distinct static PC, same
    // neighborhood (offset ^ 64 stays inside A's power-of-two span).
    b.emit(makeRRI(Op::Xori, 11, 4, 64));
    b.emit(makeLd(12, 11, 0));
    b.emit(makeRRR(Op::Add, 12, 12, 5));
    b.emit(makeSt(11, 12, out_off));
    b.emit(makeRRI(Op::Addi, 2, 2, 1));
    b.emit(makeBranch(Op::Blt, 2, 3, loop));
    return finish(b, std::move(bases));
}

isa::Program
makeChase(const char *name, const WorkloadSpec &spec, ChaseParams p)
{
    p.nodes = scaled(p.nodes, spec);
    ProgramBuilder b(name);
    const u64 total_words = 2 * p.nodes;
    auto bases = layoutThreads(b, spec, total_words);
    Rng rng(mixSeed(spec.seed, name));

    // Single-cycle traversal with a large fixed stride: every access
    // lands on a new cache line (footprints past the L2 therefore
    // miss) while the address bit-change profile stays counter-like,
    // as in real list-of-arcs codes.
    u64 stride = (p.nodes * 3) / 8;
    stride |= 1; // odd => coprime with the power-of-two node count

    for (u64 base : bases) {
        for (u64 i = 0; i < p.nodes; ++i) {
            u64 next = (i + stride) & (p.nodes - 1);
            b.initWord(base + i * 16, base + next * 16);
            b.initWord(base + i * 16 + 8, 0x1000 + i); // payload
        }
    }

    // Two independent chains (the cycle entered at opposite phases)
    // plus a strided scan: real arc-traversal codes expose memory-
    // level parallelism, so the instruction window has value and
    // squashing it is not free.
    b.emit(makeLi(2, 0));
    b.emit(makeRRR(Op::Add, 4, 1, 0)); // p = base
    b.emit(makeLi(6, static_cast<i64>((p.nodes / 2) * 16)));
    b.emit(makeRRR(Op::Add, 6, 6, 1)); // q = mid-cycle node
    b.emit(makeLi(10, 0));             // scan checksum
    const u32 loop = b.here();
    b.emit(makeLi(3, static_cast<i64>(spec.iterations)));
    b.emit(makeLd(5, 4, 8));           // p payload
    for (unsigned k = 0; k < std::max(1u, p.payloadOps); ++k)
        b.emit(makeRRI(Op::Addi, 5, 5, 1));
    // Arc-relaxation style compute between the memory references.
    b.emit(makeRRI(Op::Slli, 11, 5, 2));
    b.emit(makeRRR(Op::Add, 11, 11, 5));
    b.emit(makeRRI(Op::Srli, 12, 11, 3));
    b.emit(makeRRR(Op::Xor, 12, 12, 11));
    b.emit(makeRRR(Op::Add, 10, 10, 12));
    b.emit(makeSt(4, 5, 8));
    b.emit(makeLd(4, 4, 0));           // p = p->next
    b.emit(makeLd(7, 6, 8));           // q payload
    b.emit(makeRRI(Op::Addi, 7, 7, 1));
    b.emit(makeSt(6, 7, 8));
    b.emit(makeLd(6, 6, 0));           // q = q->next
    // Strided scan over the same footprint (window-parallel stream).
    b.emit(makeRRI(Op::Slli, 8, 2, 4));
    b.emit(makeRRI(Op::Andi, 8, 8, static_cast<i64>(total_words * 8 - 8)));
    b.emit(makeRRR(Op::Add, 8, 8, 1));
    b.emit(makeLd(9, 8, 0));
    b.emit(makeRRR(Op::Add, 10, 10, 9));
    b.emit(makeRRI(Op::Addi, 2, 2, 1));
    b.emit(makeBranch(Op::Blt, 2, 3, loop));
    return finish(b, std::move(bases));
}

isa::Program
makeHash(const char *name, const WorkloadSpec &spec, HashParams p)
{
    p.tableWords = scaled(p.tableWords, spec);
    // Beyond the bucket table, request-processing code keeps many
    // static accesses to the current *frame* (locals, request state):
    // one shared base register that drifts to a new frame every few
    // requests, touched from many static PCs. A PC-indexed filter
    // re-learns the drift at every PC individually; the value-indexed
    // TCAM reinforces one shared neighborhood (Section 3.1).
    const u64 frame_words = 32;  // 256 bytes per frame
    const u64 num_frames = 32;
    const u64 frames_words = num_frames * frame_words;

    ProgramBuilder b(name);
    auto bases = layoutThreads(b, spec, p.tableWords + frames_words);
    Rng rng(mixSeed(spec.seed, name));
    initArrays(b, bases, p.tableWords, p.values, rng);

    const i64 frames_off = static_cast<i64>(p.tableWords * 8);
    for (u64 base : bases)
        for (u64 i = 0; i < frames_words; ++i)
            b.initWord(base + p.tableWords * 8 + i * 8, 0x2000 + i);

    // Temporal locality: most probes hit a hot subset of the table
    // (server working sets are Zipf-like); every 8th probe goes cold.
    // The hot region *wanders* every 2K iterations — working-set phase
    // changes are what separate the clustered TCAM (which re-learns a
    // shifted neighborhood once) from PC-indexed tables (every static
    // instruction re-learns individually).
    const u64 hot_mask = std::min<u64>(p.tableWords - 1, 255);
    const u64 full_mask = p.tableWords - 1;

    b.emit(makeLi(2, 0));
    b.emit(makeLi(9, 0)); // branch-taken tally
    const u32 loop = b.here();
    b.emit(makeLi(3, static_cast<i64>(spec.iterations)));
    b.emit(makeLi(8, static_cast<i64>(0x9e3779b97f4a7c15ULL)));
    // phase = ((i >> 11) * 977) & full_mask (page-aligned region)
    b.emit(makeRRI(Op::Srli, 14, 2, 11));
    b.emit(makeLi(15, 977));
    b.emit(makeRRR(Op::Mul, 14, 14, 15));
    b.emit(makeRRI(Op::Andi, 14, 14,
                   static_cast<i64>(full_mask & ~hot_mask)));
    b.emit(makeRRR(Op::Mul, 4, 2, 8)); // h = i * golden
    for (unsigned k = 0; k < p.mixOps; ++k) {
        b.emit(makeRRI(Op::Srli, 5, 4, 17));
        b.emit(makeRRR(Op::Xor, 4, 4, 5));
    }
    b.emit(makeRRI(Op::Andi, 13, 2, 7));
    u32 cold = b.emit(makeBranch(Op::Beq, 13, 0, 0));
    b.emit(makeRRI(Op::Andi, 4, 4, static_cast<i64>(hot_mask)));
    b.emit(makeRRR(Op::Or, 4, 4, 14)); // hot probe inside the phase
    u32 join = b.emit(makeJmp(0));
    b.patchTargetHere(cold);
    b.emit(makeRRI(Op::Andi, 4, 4, static_cast<i64>(full_mask)));
    b.patchTargetHere(join);
    b.emit(makeRRI(Op::Slli, 4, 4, 3));
    b.emit(makeRRR(Op::Add, 4, 4, 1)); // &T[h]
    b.emit(makeLd(5, 4, 0));
    b.emit(makeRRI(Op::Addi, 5, 5, 1)); // bump the bucket
    b.emit(makeSt(4, 5, 0));
    b.emit(makeRRI(Op::Andi, 6, 5, static_cast<i64>(p.branchMask)));
    u32 br = b.emit(makeBranch(Op::Bne, 6, 0, 0)); // data-dependent
    b.emit(makeRRI(Op::Addi, 9, 9, 1));
    b.patchTargetHere(br);
    // A second, unrolled probe touching the same neighborhood from a
    // different static PC (clusters in the TCAM; trains separately in
    // a PC-indexed table).
    b.emit(makeRRR(Op::Xor, 10, 4, 0));
    b.emit(makeRRI(Op::Xori, 10, 10, 64));
    b.emit(makeLd(11, 10, 0));
    b.emit(makeRRR(Op::Add, 11, 11, 5));
    b.emit(makeSt(10, 11, 0));
    // Frame traffic: r19 points at the current frame, drifting to the
    // next frame every 8 requests; several static PCs load/store
    // frame slots. Every drift makes each of these PCs re-learn the
    // frame bits in a PC-indexed table, while the TCAM's one frame
    // filter absorbs the drift once (and the second-level filter
    // silences the repeat alarms in the frame-index bit positions).
    b.emit(makeRRI(Op::Srli, 19, 2, 3));
    b.emit(makeRRI(Op::Andi, 19, 19, static_cast<i64>(num_frames - 1)));
    b.emit(makeRRI(Op::Slli, 19, 19, 8)); // * 256-byte frames
    b.emit(makeRRR(Op::Add, 19, 19, 1));
    for (unsigned slot = 0; slot < 4; ++slot) {
        const i64 off = frames_off + static_cast<i64>(slot * 16);
        b.emit(makeLd(20, 19, off));
        b.emit(makeRRI(Op::Addi, 20, 20, 1));
        b.emit(makeSt(19, 20, off));
    }
    b.emit(makeRRI(Op::Addi, 2, 2, 1));
    b.emit(makeBranch(Op::Blt, 2, 3, loop));
    return finish(b, std::move(bases));
}

isa::Program
makeCompress(const char *name, const WorkloadSpec &spec, CompressParams p)
{
    p.words = scaled(p.words, spec);
    ProgramBuilder b(name);
    auto bases = layoutThreads(b, spec, 2 * p.words);
    Rng rng(mixSeed(spec.seed, name));
    initArrays(b, bases, p.words, p.values, rng);

    const i64 out_off = static_cast<i64>(p.words * 8);
    b.emit(makeLi(2, 0));
    const u32 loop = b.here();
    b.emit(makeLi(3, static_cast<i64>(spec.iterations)));
    b.emit(makeLi(10, static_cast<i64>(p.threshold)));
    b.emit(makeRRI(Op::Andi, 4, 2, static_cast<i64>(p.words - 1)));
    b.emit(makeRRI(Op::Slli, 4, 4, 3));
    b.emit(makeRRR(Op::Add, 4, 4, 1));
    b.emit(makeLd(5, 4, 0));
    b.emit(makeRRI(Op::Srli, 6, 5, 7));
    b.emit(makeRRR(Op::Xor, 6, 5, 6));
    b.emit(makeRRI(Op::Andi, 7, 6, 255)); // symbol byte
    u32 br = b.emit(makeBranch(Op::Blt, 7, 10, 0)); // skip the store
    b.emit(makeSt(4, 7, out_off)); // emit the symbol
    b.patchTargetHere(br);
    b.emit(makeRRI(Op::Addi, 2, 2, 1));
    b.emit(makeBranch(Op::Blt, 2, 3, loop));
    return finish(b, std::move(bases));
}

isa::Program
makeSearch(const char *name, const WorkloadSpec &spec, SearchParams p)
{
    p.words = scaled(p.words, spec);
    ProgramBuilder b(name);
    // A, B and a small result array.
    const u64 result_words = 64;
    auto bases = layoutThreads(b, spec, 2 * p.words + result_words);
    Rng rng(mixSeed(spec.seed, name));
    initArrays(b, bases, 2 * p.words, p.values, rng);

    // Indirect accesses into B stay within a hot region, like the
    // node/leaf caches of a tracer or volume renderer.
    const u64 b_mask = std::min<u64>(p.words - 1, 2047);
    const i64 b_off = static_cast<i64>(p.words * 8);
    const i64 r_off = static_cast<i64>(2 * p.words * 8);
    b.emit(makeLi(2, 0));
    b.emit(makeLi(4, 0)); // idx
    b.emit(makeLi(9, 0)); // running result
    const u32 loop = b.here();
    b.emit(makeLi(3, static_cast<i64>(spec.iterations)));
    b.emit(makeRRI(Op::Slli, 5, 4, 3));
    b.emit(makeRRR(Op::Add, 5, 5, 1));
    b.emit(makeLd(6, 5, 0));                            // A[idx]
    b.emit(makeRRI(Op::Andi, 7, 6, static_cast<i64>(b_mask)));
    b.emit(makeRRI(Op::Slli, 7, 7, 3));
    b.emit(makeRRR(Op::Add, 7, 7, 1));
    b.emit(makeLd(8, 7, b_off));                        // B[A[idx]&m]
    u32 br1 = b.emit(makeBranch(Op::Blt, 6, 8, 0));
    b.emit(makeRRI(Op::Addi, 9, 9, 2));
    u32 j1 = b.emit(makeJmp(0));
    b.patchTargetHere(br1);
    b.emit(makeRRI(Op::Addi, 9, 9, 1));
    b.patchTargetHere(j1);
    // Periodic store of the running result.
    b.emit(makeRRI(Op::Andi, 10, 2,
                   static_cast<i64>(p.storeEvery - 1)));
    u32 br2 = b.emit(makeBranch(Op::Bne, 10, 0, 0));
    b.emit(makeRRI(Op::Andi, 11, 2, 63));
    b.emit(makeRRI(Op::Slli, 11, 11, 3));
    b.emit(makeRRR(Op::Add, 11, 11, 1));
    b.emit(makeSt(11, 9, r_off));
    b.patchTargetHere(br2);
    // idx = ((idx + (B & 15) + 1) ^ phase) & mask, where the phase
    // hops to a different tree/octree region every 2K iterations.
    b.emit(makeRRI(Op::Andi, 12, 8, 15));
    b.emit(makeRRR(Op::Add, 4, 4, 12));
    b.emit(makeRRI(Op::Addi, 4, 4, 1));
    b.emit(makeRRI(Op::Srli, 13, 2, 11));
    b.emit(makeRRI(Op::Andi, 13, 13, 7));
    b.emit(makeRRI(Op::Slli, 13, 13, 8));
    b.emit(makeRRR(Op::Xor, 4, 4, 13));
    b.emit(makeRRI(Op::Andi, 4, 4, static_cast<i64>(p.words - 1)));
    b.emit(makeRRI(Op::Addi, 2, 2, 1));
    b.emit(makeBranch(Op::Blt, 2, 3, loop));
    return finish(b, std::move(bases));
}

isa::Program
makeMatrix(const char *name, const WorkloadSpec &spec, MatrixParams p)
{
    p.n = scaled(p.n, spec);
    const u64 n = p.n;
    unsigned log_n = 0;
    while ((1ull << log_n) < n)
        ++log_n;
    fh_assert((1ull << log_n) == n, "matrix n must be a power of two");

    ProgramBuilder b(name);
    const u64 total_words = n * n + 2 * n; // A[n*n], b[n], c[n]
    auto bases = layoutThreads(b, spec, total_words);
    Rng rng(mixSeed(spec.seed, name));
    initArrays(b, bases, n * n + n, p.values, rng);

    const i64 b_off = static_cast<i64>(n * n * 8);
    const i64 c_off = static_cast<i64>((n * n + n) * 8);
    b.emit(makeLi(2, 0));                               // outer counter
    const u32 outer = b.here();
    b.emit(makeLi(3, static_cast<i64>(spec.iterations)));
    b.emit(makeLi(12, static_cast<i64>(n)));
    b.emit(makeRRI(Op::Andi, 5, 2, static_cast<i64>(n - 1))); // row
    b.emit(makeRRI(Op::Slli, 6, 5, static_cast<i64>(log_n)));
    b.emit(makeLi(4, 0));                               // j
    b.emit(makeLi(8, 0));                               // acc
    const u32 inner = b.here();
    b.emit(makeRRR(Op::Add, 7, 6, 4));                  // row*n + j
    b.emit(makeRRI(Op::Slli, 7, 7, 3));
    b.emit(makeRRR(Op::Add, 7, 7, 1));
    b.emit(makeLd(9, 7, 0));                            // A[row][j]
    b.emit(makeRRI(Op::Slli, 10, 4, 3));
    b.emit(makeRRR(Op::Add, 10, 10, 1));
    b.emit(makeLd(11, 10, b_off));                      // b[j]
    b.emit(makeRRR(Op::Mul, 9, 9, 11));
    b.emit(makeRRR(Op::Add, 8, 8, 9));
    b.emit(makeRRI(Op::Addi, 4, 4, 1));
    b.emit(makeBranch(Op::Blt, 4, 12, inner));
    b.emit(makeRRI(Op::Slli, 13, 5, 3));
    b.emit(makeRRR(Op::Add, 13, 13, 1));
    b.emit(makeSt(13, 8, c_off));                       // c[row] = acc
    // b[row] evolves slowly so successive passes are not identical.
    b.emit(makeLd(14, 13, b_off));
    b.emit(makeRRI(Op::Addi, 14, 14, 1));
    b.emit(makeSt(13, 14, b_off));
    b.emit(makeRRI(Op::Addi, 2, 2, 1));
    b.emit(makeBranch(Op::Blt, 2, 3, outer));
    return finish(b, std::move(bases));
}

} // namespace fh::workload
