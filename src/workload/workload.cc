#include "workload/workload.hh"

#include "sim/logging.hh"
#include "workload/kernels.hh"

namespace fh::workload
{

std::string
to_string(Suite suite)
{
    switch (suite) {
      case Suite::SpecInt: return "SPECint";
      case Suite::SpecFp: return "SPECfp";
      case Suite::Commercial: return "Commercial";
      case Suite::Splash: return "SPLASH-2";
    }
    return "?";
}

// Per-benchmark builders. Footprints are chosen relative to the 32 KB
// L1D / 2 MB L2 of Table 2: "memory-intensive" benchmarks (mcf, the
// commercial workloads, leslie3d) exceed the L2, compute-intensive
// ones fit in it.
namespace
{

isa::Program
perl(const WorkloadSpec &s)
{
    // Interpreter-style hash-heavy integer code, branchy.
    return makeHash("400.perl", s,
                    {.tableWords = 1 << 15,
                     .mixOps = 2,
                     .branchMask = 1,
                     .values = ValueKind::LowNoise});
}

isa::Program
bzip2(const WorkloadSpec &s)
{
    return makeCompress("401.bzip2", s,
                        {.words = 1 << 16,
                         .threshold = 96,
                         .values = ValueKind::Random});
}

isa::Program
mcf(const WorkloadSpec &s)
{
    // Pointer-chasing over a footprint well past the 2 MB L2.
    return makeChase("429.mcf", s, {.nodes = 1 << 18, .payloadOps = 2});
}

isa::Program
astar(const WorkloadSpec &s)
{
    return makeSearch("473.astar", s,
                      {.words = 1 << 15,
                       .storeEvery = 4,
                       .values = ValueKind::LowNoise});
}

isa::Program
dealII(const WorkloadSpec &s)
{
    return makeMatrix("447.dealII", s,
                      {.n = 128, .values = ValueKind::Counter});
}

isa::Program
gamess(const WorkloadSpec &s)
{
    return makeMatrix("416.gamess", s,
                      {.n = 64, .values = ValueKind::LowNoise});
}

isa::Program
leslie3d(const WorkloadSpec &s)
{
    // Streaming FP solver: large footprint, regular strides.
    return makeStream("437.leslie3d", s,
                      {.words = 1 << 18,
                       .computeOps = 6,
                       .useMul = true,
                       .values = ValueKind::LowNoise});
}

isa::Program
apache(const WorkloadSpec &s)
{
    return makeHash("apache", s,
                    {.tableWords = 1 << 18,
                     .mixOps = 3,
                     .branchMask = 3,
                     .values = ValueKind::LowNoise});
}

isa::Program
specjbb(const WorkloadSpec &s)
{
    return makeHash("specjbb", s,
                    {.tableWords = 1 << 17,
                     .mixOps = 2,
                     .branchMask = 1,
                     .values = ValueKind::LowNoise});
}

isa::Program
oltp(const WorkloadSpec &s)
{
    return makeChase("oltp", s, {.nodes = 1 << 17, .payloadOps = 3});
}

isa::Program
ocean(const WorkloadSpec &s)
{
    // 64x64 grid relaxation: streaming with small footprint.
    return makeStream("ocean", s,
                      {.words = 1 << 13,
                       .computeOps = 5,
                       .useMul = false,
                       .values = ValueKind::Counter});
}

isa::Program
raytrace(const WorkloadSpec &s)
{
    return makeSearch("raytrace", s,
                      {.words = 1 << 16,
                       .storeEvery = 8,
                       .values = ValueKind::LowNoise});
}

isa::Program
volrend(const WorkloadSpec &s)
{
    return makeSearch("volrend", s,
                      {.words = 1 << 14,
                       .storeEvery = 4,
                       .values = ValueKind::Counter});
}

isa::Program
waterNsq(const WorkloadSpec &s)
{
    // 216-molecule pairwise interactions: mul-heavy loop nest.
    return makeMatrix("water-nsq", s,
                      {.n = 256, .values = ValueKind::Counter});
}

} // namespace

const std::vector<BenchmarkInfo> &
all()
{
    static const std::vector<BenchmarkInfo> table = {
        {"400.perl", Suite::SpecInt, "hash", perl},
        {"401.bzip2", Suite::SpecInt, "compress", bzip2},
        {"429.mcf", Suite::SpecInt, "chase", mcf},
        {"473.astar", Suite::SpecInt, "search", astar},
        {"447.dealII", Suite::SpecFp, "matrix", dealII},
        {"416.gamess", Suite::SpecFp, "matrix", gamess},
        {"437.leslie3d", Suite::SpecFp, "stream", leslie3d},
        {"apache", Suite::Commercial, "hash", apache},
        {"specjbb", Suite::Commercial, "hash", specjbb},
        {"oltp", Suite::Commercial, "chase", oltp},
        {"ocean", Suite::Splash, "stream", ocean},
        {"raytrace", Suite::Splash, "search", raytrace},
        {"volrend", Suite::Splash, "search", volrend},
        {"water-nsq", Suite::Splash, "matrix", waterNsq},
    };
    return table;
}

const BenchmarkInfo *
find(const std::string &name)
{
    for (const auto &info : all())
        if (info.name == name)
            return &info;
    return nullptr;
}

isa::Program
build(const std::string &name, const WorkloadSpec &spec)
{
    const BenchmarkInfo *info = find(name);
    if (!info)
        fh_fatal("unknown benchmark '%s'", name.c_str());
    return info->build(spec);
}

} // namespace fh::workload
