/**
 * @file
 * Wire layer of the distributed campaign fabric: length-prefixed
 * frames over a stream socket, plus the small socket helpers the
 * coordinator and workers share.
 *
 * A frame is `u32 length (LE) | u8 type | payload | u32 crc32c (LE)`,
 * where length counts the type byte, the payload, and the CRC trailer.
 * The CRC covers the length prefix, the type byte, and the payload, so
 * any single flipped bit anywhere in the frame — length field included
 * — fails verification once the frame completes. The format is
 * deliberately trivial: trial records are ~150 bytes, the campaign
 * spec is a few hundred, and the fabric's correctness rests on
 * *framing* and *integrity* (a coordinator must never act on half a
 * record from a worker that died mid-write, nor on a record a flaky
 * link mutated in flight), not on encoding cleverness. FrameReader is
 * incremental and tolerant of torn tails — bytes short of a full frame
 * simply wait for more input, and a stream that ends inside a frame
 * yields the complete prefix and nothing else. An impossible length
 * (shorter than type + CRC, or beyond kMaxFrame) or a CRC mismatch
 * marks the stream corrupt, at which point the peer is treated as
 * dead; reconnection, not in-stream resync, is the recovery path —
 * on a byte stream there is no reliable way to find the next frame
 * boundary after corruption.
 *
 * Endpoints are `host:port` TCP (IPv4) or `unix:/path` domain
 * sockets. All sockets are used blocking on the worker side; the
 * coordinator multiplexes non-blocking reads under poll(2).
 */

#ifndef FH_DIST_WIRE_HH
#define FH_DIST_WIRE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace fh::dist
{

/** Frame types. The numeric values are the protocol; never reuse. */
enum class MsgType : u8
{
    Hello = 1,     ///< worker -> coordinator, once, on connect
    Spec = 2,      ///< coordinator -> worker: canonical campaign spec
    Assign = 3,    ///< coordinator -> worker: lease one trial range
    Trial = 4,     ///< worker -> coordinator: one completed trial
    RangeDone = 5, ///< worker -> coordinator: lease finished
    Heartbeat = 6, ///< worker -> coordinator: liveness + position
    Shutdown = 7,  ///< coordinator -> worker: drain and exit
    HelloAck = 8,  ///< coordinator -> worker: version verdict
};

/** Sanity bound on a frame's length field; a peer advertising more is
 *  corrupt (the largest legitimate frame — the spec — is < 4 KiB). */
constexpr u32 kMaxFrame = 1u << 20;

/** Bytes of the `u32 length` prefix. */
constexpr size_t kLengthBytes = 4;

/** Bytes of the trailing CRC32C; the smallest legal length field is
 *  one type byte plus this trailer. */
constexpr size_t kCrcBytes = 4;

struct Frame
{
    u8 type = 0;
    std::vector<u8> payload;
};

/* ------------------------------------------------------------------ */
/* Payload encode/decode primitives (little-endian, append-style).    */

void putU8(std::vector<u8> &buf, u8 v);
void putU32(std::vector<u8> &buf, u32 v);
void putU64(std::vector<u8> &buf, u64 v);
void putDouble(std::vector<u8> &buf, double v); ///< bit pattern, LE
/** u32 length + raw bytes. */
void putString(std::vector<u8> &buf, const std::string &s);

/**
 * Bounds-checked sequential reader over a payload. Any read past the
 * end latches fail() and returns zero values, so decoders can read
 * unconditionally and check once at the end — a malformed payload can
 * never read out of bounds or be half-applied.
 */
class Cursor
{
  public:
    Cursor(const u8 *data, size_t size) : p_(data), left_(size) {}
    explicit Cursor(const std::vector<u8> &payload)
        : Cursor(payload.data(), payload.size())
    {
    }

    u8 u8v();
    u32 u32v();
    u64 u64v();
    double doublev();
    std::string stringv();

    bool fail() const { return fail_; }
    /** True when every byte was consumed and nothing overran. */
    bool done() const { return !fail_ && left_ == 0; }

  private:
    bool take(size_t n, const u8 *&out);

    const u8 *p_;
    size_t left_;
    bool fail_ = false;
};

/** Serialize one frame (length prefix included). */
std::vector<u8> encodeFrame(MsgType type,
                            const std::vector<u8> &payload);

/**
 * Incremental frame parser. feed() raw bytes as they arrive; next()
 * yields complete frames in order. See the file comment for torn-tail
 * semantics.
 */
class FrameReader
{
  public:
    void feed(const u8 *data, size_t n);
    /** Pop the next complete frame; false if none (or corrupt). */
    bool next(Frame &out);
    /** The stream advertised an impossible frame length or failed CRC
     *  verification; no further frames will be produced. */
    bool corrupt() const { return corrupt_; }
    /** Complete frames whose CRC trailer did not match — counted so
     *  the coordinator can surface wire corruption in its fabric
     *  health stats instead of losing it in a generic "dropped". */
    u64 crcErrors() const { return crcErrors_; }
    /** Bytes buffered but not yet forming a complete frame. */
    size_t pendingBytes() const { return buf_.size() - pos_; }

  private:
    std::vector<u8> buf_;
    size_t pos_ = 0; ///< consumed prefix of buf_
    bool corrupt_ = false;
    u64 crcErrors_ = 0;
};

/* ------------------------------------------------------------------ */
/* Sockets.                                                           */

/** `host:port` (TCP) or `unix:/path` (domain socket). */
struct Endpoint
{
    bool unixDomain = false;
    std::string host; ///< or socket path when unixDomain
    u16 port = 0;

    std::string str() const;
};

/** Parse an endpoint string; false (with error) on malformed input. */
bool parseEndpoint(const std::string &text, Endpoint &out,
                   std::string &error);

/**
 * Bind + listen on the endpoint (port 0 = ephemeral; the actually
 * bound port is written back into ep.port). Returns the listening fd,
 * or -1 with error set.
 */
int listenOn(Endpoint &ep, std::string &error);

/** Connect to the endpoint; returns fd or -1 with error set. */
int connectTo(const Endpoint &ep, std::string &error);

/**
 * Track a fabric socket for child-process hygiene and bound its send
 * stalls. fork()ed children (spawnFn test workers, dispatch's
 * fork+exec window) inherit every open fd; an inherited connection
 * end keeps the stream artificially alive after its real owner dies —
 * the peer never sees EOF and can block forever in send() on a buffer
 * nobody drains. Registered fds are closed en masse in spawned
 * children (spawner.cc) and get a SO_SNDTIMEO so even a genuinely
 * wedged peer turns into a bounded send failure, not a hang.
 * listenOn/connectTo adopt their fds automatically; the coordinator
 * adopts each accept()ed fd.
 */
void adoptFabricFd(int fd);

/** Unregister + close a fabric fd (the only way fabric sockets should
 *  be closed, or the child-side registry leaks stale fds). */
void closeFabricFd(int fd);

/** Child-side half of adoptFabricFd: close every inherited fabric fd.
 *  Called by the spawners right after fork. */
void closeFabricFdsInChild();

/** Write all n bytes (handles short writes, EINTR; no SIGPIPE).
 *  False once the peer is gone — or once the send has stalled long
 *  enough (no buffer space drained for ~10 s) that the peer is
 *  functionally gone; an unbounded blocking send is how a dead fabric
 *  turns into a hung process. */
bool sendAll(int fd, const void *data, size_t n);

/** encodeFrame + sendAll — routed through the chaos interposer when
 *  FH_CHAOS is armed (see dist/chaos.hh); false once the peer is gone
 *  or chaos deliberately killed the connection. */
bool sendFrame(int fd, MsgType type, const std::vector<u8> &payload);

} // namespace fh::dist

#endif // FH_DIST_WIRE_HH
