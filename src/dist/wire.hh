/**
 * @file
 * Wire layer of the distributed campaign fabric: length-prefixed
 * frames over a stream socket, plus the small socket helpers the
 * coordinator and workers share.
 *
 * A frame is `u32 length (LE) | u8 type | payload`, where length
 * counts the type byte plus the payload. The format is deliberately
 * trivial: trial records are ~150 bytes, the campaign spec is a few
 * hundred, and the fabric's correctness rests on *framing* (a
 * coordinator must never act on half a record from a worker that died
 * mid-write), not on encoding cleverness. FrameReader is incremental
 * and tolerant of torn tails — bytes short of a full frame simply wait
 * for more input, and a stream that ends inside a frame yields the
 * complete prefix and nothing else. Only an impossible length (zero,
 * or beyond kMaxFrame) marks the stream corrupt, at which point the
 * peer is treated as dead.
 *
 * Endpoints are `host:port` TCP (IPv4) or `unix:/path` domain
 * sockets. All sockets are used blocking on the worker side; the
 * coordinator multiplexes non-blocking reads under poll(2).
 */

#ifndef FH_DIST_WIRE_HH
#define FH_DIST_WIRE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace fh::dist
{

/** Frame types. The numeric values are the protocol; never reuse. */
enum class MsgType : u8
{
    Hello = 1,     ///< worker -> coordinator, once, on connect
    Spec = 2,      ///< coordinator -> worker: canonical campaign spec
    Assign = 3,    ///< coordinator -> worker: lease one trial range
    Trial = 4,     ///< worker -> coordinator: one completed trial
    RangeDone = 5, ///< worker -> coordinator: lease finished
    Heartbeat = 6, ///< worker -> coordinator: liveness + position
    Shutdown = 7,  ///< coordinator -> worker: drain and exit
};

/** Sanity bound on a frame's length field; a peer advertising more is
 *  corrupt (the largest legitimate frame — the spec — is < 4 KiB). */
constexpr u32 kMaxFrame = 1u << 20;

/** Bytes of the `u32 length` prefix. */
constexpr size_t kLengthBytes = 4;

struct Frame
{
    u8 type = 0;
    std::vector<u8> payload;
};

/* ------------------------------------------------------------------ */
/* Payload encode/decode primitives (little-endian, append-style).    */

void putU8(std::vector<u8> &buf, u8 v);
void putU32(std::vector<u8> &buf, u32 v);
void putU64(std::vector<u8> &buf, u64 v);
void putDouble(std::vector<u8> &buf, double v); ///< bit pattern, LE
/** u32 length + raw bytes. */
void putString(std::vector<u8> &buf, const std::string &s);

/**
 * Bounds-checked sequential reader over a payload. Any read past the
 * end latches fail() and returns zero values, so decoders can read
 * unconditionally and check once at the end — a malformed payload can
 * never read out of bounds or be half-applied.
 */
class Cursor
{
  public:
    Cursor(const u8 *data, size_t size) : p_(data), left_(size) {}
    explicit Cursor(const std::vector<u8> &payload)
        : Cursor(payload.data(), payload.size())
    {
    }

    u8 u8v();
    u32 u32v();
    u64 u64v();
    double doublev();
    std::string stringv();

    bool fail() const { return fail_; }
    /** True when every byte was consumed and nothing overran. */
    bool done() const { return !fail_ && left_ == 0; }

  private:
    bool take(size_t n, const u8 *&out);

    const u8 *p_;
    size_t left_;
    bool fail_ = false;
};

/** Serialize one frame (length prefix included). */
std::vector<u8> encodeFrame(MsgType type,
                            const std::vector<u8> &payload);

/**
 * Incremental frame parser. feed() raw bytes as they arrive; next()
 * yields complete frames in order. See the file comment for torn-tail
 * semantics.
 */
class FrameReader
{
  public:
    void feed(const u8 *data, size_t n);
    /** Pop the next complete frame; false if none (or corrupt). */
    bool next(Frame &out);
    /** The stream advertised an impossible frame length; no further
     *  frames will be produced. */
    bool corrupt() const { return corrupt_; }
    /** Bytes buffered but not yet forming a complete frame. */
    size_t pendingBytes() const { return buf_.size() - pos_; }

  private:
    std::vector<u8> buf_;
    size_t pos_ = 0; ///< consumed prefix of buf_
    bool corrupt_ = false;
};

/* ------------------------------------------------------------------ */
/* Sockets.                                                           */

/** `host:port` (TCP) or `unix:/path` (domain socket). */
struct Endpoint
{
    bool unixDomain = false;
    std::string host; ///< or socket path when unixDomain
    u16 port = 0;

    std::string str() const;
};

/** Parse an endpoint string; false (with error) on malformed input. */
bool parseEndpoint(const std::string &text, Endpoint &out,
                   std::string &error);

/**
 * Bind + listen on the endpoint (port 0 = ephemeral; the actually
 * bound port is written back into ep.port). Returns the listening fd,
 * or -1 with error set.
 */
int listenOn(Endpoint &ep, std::string &error);

/** Connect to the endpoint; returns fd or -1 with error set. */
int connectTo(const Endpoint &ep, std::string &error);

/** Write all n bytes (handles short writes, EINTR; no SIGPIPE).
 *  False once the peer is gone. */
bool sendAll(int fd, const void *data, size_t n);

/** encodeFrame + sendAll. */
bool sendFrame(int fd, MsgType type, const std::vector<u8> &payload);

} // namespace fh::dist

#endif // FH_DIST_WIRE_HH
