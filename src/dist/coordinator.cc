#include "dist/coordinator.hh"

#include <algorithm>
#include <cerrno>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include "dist/chaos.hh"
#include "dist/messages.hh"
#include "exec/interrupt.hh"
#include "exec/progress.hh"
#include "sim/logging.hh"

namespace fh::dist
{

Coordinator::Coordinator(const CampaignSpec &spec,
                         const CoordinatorOptions &opts)
    : spec_(spec), opts_(opts), listen_(opts.listen),
      strata_(spec.campaign.mix)
{
    chaos::reload();
    std::string error;
    listenFd_ = listenOn(listen_, error);
    if (listenFd_ < 0)
        fh_fatal("coordinator: %s", error.c_str());
    ::fcntl(listenFd_, F_SETFL, O_NONBLOCK);
    effectiveEnd_ = spec_.campaign.injections;
}

Coordinator::~Coordinator()
{
    for (auto &c : conns_)
        if (c.fd >= 0)
            closeFabricFd(c.fd);
    if (listenFd_ >= 0)
        closeFabricFd(listenFd_);
    if (listen_.unixDomain)
        ::unlink(listen_.host.c_str());
}

void
Coordinator::addChild(pid_t pid)
{
    children_.push_back(pid);
}

void
Coordinator::requeue(Range r)
{
    r.end = std::min(r.end, effectiveEnd_);
    if (r.begin >= r.end)
        return;
    // Keep the queue sorted by begin so leases are handed out lowest
    // first — a worker's successive leases then move forward and its
    // session never rebuilds except after stealing a revoked range.
    auto it = std::lower_bound(
        queue_.begin(), queue_.end(), r,
        [](const Range &a, const Range &b) { return a.begin < b.begin; });
    queue_.insert(it, r);
}

void
Coordinator::applyHalt(u64 haltTrial)
{
    // The workload ran out at haltTrial: deterministically, no process
    // can produce a trial at or past it. Shrink the campaign.
    if (haltTrial >= effectiveEnd_)
        return;
    effectiveEnd_ = haltTrial;
    std::deque<Range> kept;
    for (Range r : queue_) {
        r.end = std::min(r.end, effectiveEnd_);
        if (r.begin < r.end)
            kept.push_back(r);
    }
    queue_.swap(kept);
}

void
Coordinator::drainStash(fault::TrialJournal *journal)
{
    auto it = stash_.find(mergedNext_);
    while (it != stash_.end() && it->first == mergedNext_ &&
           mergedNext_ < effectiveEnd_) {
        result_ += it->second.delta;
        result_.profile.addTrial(it->second.delta, it->second.meta);
        if (journal)
            journal->record(mergedNext_, it->second.delta,
                            it->second.meta);
        if (opts_.progress)
            opts_.progress->tick();
        ++stats_.trialsMerged;
        it = stash_.erase(it);
        ++mergedNext_;
        // Adaptive wave barrier: the stop rule fires only on the
        // merged contiguous prefix at a wave boundary — the identical
        // decision point a single-process run evaluates — so further
        // stashed records (from leases already in flight) are simply
        // never merged.
        maybeCiStop();
    }
    if (opts_.stopAfterMerged && !shuttingDown_ &&
        stats_.trialsMerged >= opts_.stopAfterMerged) {
        beginShutdown();
    }
}

void
Coordinator::maybeCiStop()
{
    const fault::CampaignConfig &cc = spec_.campaign;
    if (cc.ciTarget <= 0.0 || result_.ciStopped ||
        mergedNext_ >= effectiveEnd_ || mergedNext_ == 0) {
        return;
    }
    const u64 wave = std::max<u64>(cc.ciWave, 1);
    if (mergedNext_ % wave != 0)
        return;
    if (fault::pooledSdcHalfWidth(result_.profile, strata_) >
        cc.ciTarget) {
        return;
    }
    // Same shrink-and-truncate as a halt report: no trial at or past
    // the boundary is merged, queued chunks past it are dropped, and
    // in-flight leases resolve normally (their stashed records beyond
    // the boundary are discarded at the end).
    result_.ciStopped = true;
    effectiveEnd_ = mergedNext_;
    std::deque<Range> kept;
    for (Range r : queue_) {
        r.end = std::min(r.end, effectiveEnd_);
        if (r.begin < r.end)
            kept.push_back(r);
    }
    queue_.swap(kept);
}

void
Coordinator::beginShutdown()
{
    if (shuttingDown_)
        return;
    shuttingDown_ = true;
    // Protocol-level drain for connected workers...
    for (auto &c : conns_)
        if (c.fd >= 0)
            sendFrame(c.fd, MsgType::Shutdown, {});
    // ...and signal-level forwarding for subprocesses that have not
    // connected (or wedged before their receiver ran). Forward the
    // same signal we got; SIGTERM for programmatic stops.
    const int sig =
        exec::shutdownSignal() ? exec::shutdownSignal() : SIGTERM;
    for (pid_t pid : children_)
        ::kill(pid, sig);
}

void
Coordinator::dropConn(Conn &c, const char *why)
{
    if (c.fd < 0)
        return;
    stats_.crcErrors += c.reader.crcErrors();
    fh_warn("coordinator: worker %llu dropped (%s)",
            static_cast<unsigned long long>(c.pid), why);
    closeFabricFd(c.fd);
    c.fd = -1;
    ++stats_.workersDied;
    if (c.hasLease) {
        c.hasLease = false;
        // Everything at or past the acknowledged prefix re-executes
        // elsewhere; everything below it was already merged (or sits
        // in the stash), so nothing is lost and nothing duplicates.
        if (!shuttingDown_) {
            requeue({c.leaseNext, c.lease.end});
            ++stats_.rangesReissued;
            // Strike the pid, not the connection: a worker that keeps
            // losing leases (flapping link, sick host) gets benched so
            // healthy workers stop paying the re-execution tax.
            Strikes &q = quarantine_[c.pid];
            if (++q.strikes >= opts_.quarantineStrikes) {
                q.strikes = 0;
                q.until = Clock::now() +
                          std::chrono::milliseconds(
                              opts_.quarantineCooloffMs);
                ++stats_.quarantined;
                fh_warn("coordinator: worker %llu quarantined for "
                        "%llu ms after repeated lease failures",
                        static_cast<unsigned long long>(c.pid),
                        static_cast<unsigned long long>(
                            opts_.quarantineCooloffMs));
            }
        }
    }
}

bool
Coordinator::handleFrame(Conn &c, const Frame &f)
{
    switch (static_cast<MsgType>(f.type)) {
    case MsgType::Hello: {
        HelloMsg hello;
        if (!HelloMsg::decode(f.payload, hello) || c.helloed)
            return false;
        // Explicit verdict either way: a refused worker learns *why*
        // it can never join (version skew) instead of watching its
        // connection die and retrying forever.
        HelloAckMsg ack;
        ack.accepted = hello.version == kProtocolVersion;
        if (!sendFrame(c.fd, MsgType::HelloAck, ack.encode()))
            return false;
        if (!ack.accepted) {
            fh_warn("coordinator: worker speaks protocol %u, want %u",
                    hello.version, kProtocolVersion);
            return false;
        }
        c.helloed = true;
        c.pid = hello.pid;
        ++stats_.workersJoined;
        if (hello.reconnect > 0)
            ++stats_.reconnects;
        SpecMsg spec;
        spec.text = spec_.encode();
        if (!sendFrame(c.fd, MsgType::Spec, spec.encode()))
            return false;
        if (shuttingDown_)
            sendFrame(c.fd, MsgType::Shutdown, {});
        return true;
    }
    case MsgType::Trial: {
        TrialMsg t;
        if (!TrialMsg::decode(f.payload, t) || !c.hasLease ||
            t.trial != c.leaseNext) {
            return false; // out-of-order record: treat as dead
        }
        stash_.emplace(t.trial,
                       MergedTrial{fault::unpackTrialCounters(t.d),
                                   fault::unpackTrialMeta(t.m)});
        ++c.leaseNext;
        return true;
    }
    case MsgType::RangeDone: {
        RangeDoneMsg done;
        if (!RangeDoneMsg::decode(f.payload, done) || !c.hasLease)
            return false;
        quarantine_.erase(c.pid); // a finished lease clears strikes
        if (done.halted) {
            // The workload can run out during the skip-advance before
            // the lease's first trial, so the halt point may land
            // below the acknowledged prefix — never above it.
            if (done.nextTrial > c.leaseNext)
                return false;
            c.hasLease = false;
            applyHalt(done.nextTrial);
            return true;
        }
        if (done.nextTrial != c.leaseNext) {
            // A lease resolves exactly at its acknowledged prefix;
            // anything else means lost records.
            return false;
        }
        c.hasLease = false;
        if (done.nextTrial < c.lease.end && !shuttingDown_) {
            // The worker drained early (its own signal); give the
            // remainder to someone else.
            requeue({done.nextTrial, c.lease.end});
            ++stats_.rangesReissued;
        }
        return true;
    }
    case MsgType::Heartbeat: {
        HeartbeatMsg hb;
        return HeartbeatMsg::decode(f.payload, hb);
    }
    default:
        return false;
    }
}

void
Coordinator::readFrom(Conn &c)
{
    u8 buf[4096];
    while (true) {
        const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
        if (n > 0) {
            c.lastHeard = Clock::now();
            c.reader.feed(buf, static_cast<size_t>(n));
            Frame f;
            while (c.fd >= 0 && c.reader.next(f)) {
                if (!handleFrame(c, f)) {
                    dropConn(c, "protocol violation");
                    return;
                }
            }
            if (c.reader.corrupt()) {
                dropConn(c, c.reader.crcErrors() > 0
                                ? "crc mismatch"
                                : "corrupt stream");
                return;
            }
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            return; // drained
        // EOF or hard error. A torn frame in the reader's tail is
        // dropped by design: its trial was never acknowledged, so the
        // re-issued range re-executes it.
        dropConn(c, n == 0 ? "connection closed" : "read error");
        return;
    }
}

void
Coordinator::acceptNew()
{
    while (true) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            return;
        ::fcntl(fd, F_SETFL, O_NONBLOCK);
        adoptFabricFd(fd);
        Conn c;
        c.fd = fd;
        c.lastHeard = Clock::now();
        conns_.push_back(std::move(c));
    }
}

void
Coordinator::issueLeases()
{
    const auto now = Clock::now();
    // Pass 0 leases only to non-quarantined workers. Pass 1 is the
    // starvation fallback: if work remains, nothing is in flight, and
    // every idle worker is benched, a quarantined worker is still
    // better than stalling until the no-worker timeout degrades the
    // run — at worst it fails the lease again and the range requeues.
    for (int pass = 0; pass < 2; ++pass) {
        if (queue_.empty())
            return;
        if (pass == 1) {
            for (const auto &c : conns_)
                if (c.fd >= 0 && c.hasLease)
                    return;
        }
        for (auto &c : conns_) {
            if (queue_.empty())
                return;
            if (c.fd < 0 || !c.helloed || c.hasLease)
                continue;
            if (pass == 0) {
                const auto it = quarantine_.find(c.pid);
                if (it != quarantine_.end() && now < it->second.until)
                    continue;
            }
            Range r = queue_.front();
            queue_.pop_front();
            c.hasLease = true;
            c.lease = r;
            c.leaseNext = r.begin;
            c.lastHeard = now;
            ++stats_.rangesIssued;
            AssignMsg a;
            a.begin = r.begin;
            a.end = r.end;
            if (!sendFrame(c.fd, MsgType::Assign, a.encode()))
                dropConn(c, "send failed");
        }
    }
}

/**
 * Dead-fleet fallback: execute the unmerged tail in-process. Because
 * each trial is a pure function of (spec, trial index), the local
 * session produces the same records a worker would have streamed —
 * counters, journal bytes and the adaptive stop point are identical
 * to both the distributed and the single-process run. Everything the
 * fleet left behind (queued chunks, stashed out-of-order records) is
 * discarded first: the local session regenerates it from mergedNext_.
 */
void
Coordinator::runDegradedTail(fault::TrialJournal *journal)
{
    stats_.degraded = true;
    fh_warn("coordinator: no live workers for %llu ms; degrading to "
            "in-process execution of %llu remaining trial(s)",
            static_cast<unsigned long long>(opts_.noWorkerTimeoutMs),
            static_cast<unsigned long long>(effectiveEnd_ -
                                            mergedNext_));
    queue_.clear();
    stash_.clear();

    const isa::Program prog = spec_.buildProgram();
    const pipeline::CoreParams params = spec_.buildParams();
    fault::CampaignConfig ccfg = spec_.campaign;
    ccfg.journalPath.clear(); // the coordinator's journal, fed below
    ccfg.progress = nullptr;
    fault::CampaignSession session(params, &prog, ccfg);

    const u64 wave = std::max<u64>(ccfg.ciWave, 1);
    while (mergedNext_ < effectiveEnd_ && !exec::shutdownRequested()) {
        // Adaptive campaigns evaluate the stop rule only at wave
        // boundaries on the merged prefix; chunking each runRange at
        // the next boundary keeps the overshoot within one wave, the
        // same bound the lease path has.
        u64 end = effectiveEnd_;
        if (ccfg.ciTarget > 0.0)
            end = std::min(end, ((mergedNext_ / wave) + 1) * wave);
        const fault::RangeOutcome out = session.runRange(
            mergedNext_, end,
            [&](u64 trial, const fault::CampaignResult &delta,
                const fault::TrialMeta &meta) {
                if (trial != mergedNext_ || trial >= effectiveEnd_)
                    return;
                result_ += delta;
                result_.profile.addTrial(delta, meta);
                if (journal)
                    journal->record(trial, delta, meta);
                if (opts_.progress)
                    opts_.progress->tick();
                ++stats_.trialsMerged;
                ++mergedNext_;
                maybeCiStop();
            });
        if (out.halted) {
            applyHalt(out.nextTrial);
            break;
        }
        if (out.stopped)
            break;
    }
}

bool
Coordinator::outstandingWork() const
{
    if (mergedNext_ < effectiveEnd_)
        return true;
    for (const auto &c : conns_)
        if (c.fd >= 0 && c.hasLease)
            return true;
    return false;
}

fault::CampaignResult
Coordinator::run(fault::TrialJournal *journal)
{
    // Replay the journaled prefix upfront, exactly like runCampaign:
    // those trials' gaps are skip-advanced by whichever worker draws
    // the first unjournaled range.
    if (journal) {
        for (u64 t = 0; t < journal->replayCount(); ++t) {
            result_ += journal->replayed(t);
            result_.profile.addTrial(journal->replayed(t),
                                     journal->replayedMeta(t));
            ++result_.replayedTrials;
            if (opts_.progress)
                opts_.progress->tick();
        }
        mergedNext_ = journal->replayCount();
        // A resumed adaptive campaign whose journaled prefix already
        // satisfies the stop rule must stop at the same wave instead
        // of leasing more work.
        maybeCiStop();
    }

    // Chunking: ~4 leases per expected worker bounds both the lost
    // work on a death (one chunk) and the skip-advance overhead (a
    // worker's next lease starts near where its last one ended).
    if (mergedNext_ < effectiveEnd_) {
        const u64 total = effectiveEnd_ - mergedNext_;
        u64 chunk = opts_.chunk;
        if (chunk == 0)
            chunk = std::max<u64>(
                1, total / std::max<u64>(1, u64{opts_.workers} * 4));
        for (u64 b = mergedNext_; b < effectiveEnd_; b += chunk)
            queue_.push_back(
                {b, std::min(b + chunk, effectiveEnd_)});
    }

    auto lastWorkerSeen = Clock::now();
    while (outstandingWork()) {
        if (exec::shutdownRequested())
            beginShutdown();
        if (shuttingDown_) {
            // Only the resolution of live leases matters now; queued
            // chunks are abandoned (the journal holds a clean prefix
            // for a future resume).
            bool pending = false;
            for (const auto &c : conns_)
                if (c.fd >= 0 && c.hasLease)
                    pending = true;
            if (!pending)
                break;
        }

        std::vector<pollfd> fds;
        fds.push_back({listenFd_, POLLIN, 0});
        for (auto &c : conns_)
            if (c.fd >= 0)
                fds.push_back({c.fd, POLLIN, 0});
        ::poll(fds.data(), fds.size(), 100);

        acceptNew();
        for (auto &c : conns_)
            if (c.fd >= 0)
                readFrom(c);
        drainStash(journal);

        // Lease timeouts: heartbeat silence, not slow trials.
        const auto now = Clock::now();
        for (auto &c : conns_) {
            if (c.fd < 0 || !c.hasLease)
                continue;
            const u64 silentMs = static_cast<u64>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    now - c.lastHeard)
                    .count());
            if (silentMs > opts_.leaseTimeoutMs)
                dropConn(c, "lease timeout");
        }
        drainStash(journal);

        if (!shuttingDown_)
            issueLeases();

        bool anyLive = false;
        for (const auto &c : conns_)
            if (c.fd >= 0)
                anyLive = true;
        if (anyLive)
            lastWorkerSeen = now;
        else if (outstandingWork() && !shuttingDown_ &&
                 static_cast<u64>(
                     std::chrono::duration_cast<
                         std::chrono::milliseconds>(now -
                                                    lastWorkerSeen)
                         .count()) > opts_.noWorkerTimeoutMs) {
            if (!opts_.degradeToLocal) {
                fh_fatal("coordinator: no live workers for %llu ms "
                         "with %llu trials outstanding",
                         static_cast<unsigned long long>(
                             opts_.noWorkerTimeoutMs),
                         static_cast<unsigned long long>(
                             effectiveEnd_ - mergedNext_));
            }
            runDegradedTail(journal);
        }
    }

    // Completion (or drained shutdown): release every worker.
    for (auto &c : conns_) {
        if (c.fd >= 0) {
            sendFrame(c.fd, MsgType::Shutdown, {});
            closeFabricFd(c.fd);
            c.fd = -1;
        }
    }

    // Merged counters past a halt cannot exist; past a shutdown they
    // were never merged (the stash beyond the contiguous prefix is
    // discarded, keeping the journal a resumable clean prefix).
    stash_.clear();
    result_.partial = mergedNext_ < effectiveEnd_;
    return result_;
}

} // namespace fh::dist
