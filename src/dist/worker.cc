#include "dist/worker.hh"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "dist/chaos.hh"
#include "dist/messages.hh"
#include "dist/spec.hh"
#include "exec/interrupt.hh"
#include "fault/campaign.hh"
#include "fault/journal.hh"
#include "sim/logging.hh"

namespace fh::dist
{

namespace
{

/** Shared state between the socket threads and the session loop,
 *  scoped to ONE connection. */
struct WorkerState
{
    int fd = -1;
    std::mutex sendMu; ///< trial/heartbeat/done frames never interleave
    std::atomic<u64> position{0};
    std::atomic<bool> done{false};
    /** This connection is gone (EOF, corrupt stream, stalled frame, or
     *  failed send). Latched per-connection — unlike the global
     *  shutdown flag, it permits a reconnect. The session aborts on it
     *  via CampaignConfig::abortFlag. */
    std::atomic<bool> connDead{false};

    std::mutex qMu;
    std::condition_variable qCv;
    std::deque<Frame> inbox;
    bool eof = false;

    void push(Frame f)
    {
        {
            std::lock_guard<std::mutex> lk(qMu);
            inbox.push_back(std::move(f));
        }
        qCv.notify_all();
    }

    void markEof()
    {
        {
            std::lock_guard<std::mutex> lk(qMu);
            eof = true;
        }
        qCv.notify_all();
    }
};

/**
 * Socket reads -> inbox, under poll so a partial frame that stops
 * making progress can be timed out (see WorkerOptions::stallTimeoutMs).
 * A Shutdown frame latches the process shutdown flag immediately so
 * the session's stop checks fire mid-range. EOF / corruption latch
 * only connDead: the coordinator may be restarting, and the outer
 * reconnect loop decides whether to re-dial.
 */
void
receiverLoop(WorkerState &st, u64 stallTimeoutMs)
{
    using Clock = std::chrono::steady_clock;
    FrameReader reader;
    u8 buf[4096];
    bool stalled = false;
    Clock::time_point stallStart{};
    while (true) {
        pollfd pfd{st.fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 100);
        if (pr < 0 && errno != EINTR)
            break;
        if (st.done.load(std::memory_order_relaxed))
            break;
        if (pr > 0) {
            const ssize_t n = ::recv(st.fd, buf, sizeof(buf), 0);
            if (n <= 0)
                break;
            reader.feed(buf, static_cast<size_t>(n));
            Frame f;
            while (reader.next(f)) {
                if (static_cast<MsgType>(f.type) == MsgType::Shutdown)
                    exec::requestShutdown();
                st.push(std::move(f));
            }
            if (reader.corrupt()) {
                fh_warn("worker: coordinator stream corrupt "
                        "(%llu crc error(s)); dropping connection",
                        static_cast<unsigned long long>(
                            reader.crcErrors()));
                break;
            }
        }
        // Stall watchdog: a partial frame that never completes (e.g. a
        // flipped length field promising bytes that never come) would
        // otherwise hang here forever while our heartbeats keep the
        // lease alive on the coordinator.
        if (reader.pendingBytes() > 0) {
            const auto now = Clock::now();
            if (!stalled) {
                stalled = true;
                stallStart = now;
            } else if (std::chrono::duration_cast<
                           std::chrono::milliseconds>(now - stallStart)
                           .count() >=
                       static_cast<long long>(stallTimeoutMs)) {
                fh_warn("worker: partial frame stalled %llu ms; "
                        "dropping connection",
                        static_cast<unsigned long long>(
                            stallTimeoutMs));
                break;
            }
        } else {
            stalled = false;
        }
    }
    st.connDead.store(true, std::memory_order_relaxed);
    st.markEof();
}

void
heartbeatLoop(WorkerState &st, u64 periodMs)
{
    while (!st.done.load(std::memory_order_relaxed) &&
           !st.connDead.load(std::memory_order_relaxed)) {
        {
            std::lock_guard<std::mutex> lk(st.sendMu);
            HeartbeatMsg hb;
            hb.position = st.position.load(std::memory_order_relaxed);
            if (!sendFrame(st.fd, MsgType::Heartbeat, hb.encode())) {
                st.connDead.store(true, std::memory_order_relaxed);
                break;
            }
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(periodMs));
    }
}

enum class ConnOutcome
{
    CleanShutdown, ///< Shutdown frame or local signal: exit 0
    Fatal,         ///< version rejected / bad spec: exit 1, no retry
    Lost,          ///< connection died: reconnect with backoff
};

/**
 * One connection's lifetime: dial, Hello/HelloAck, then serve leases
 * until shutdown or the connection dies. `progressed` is set once a
 * Spec or Assign arrives, resetting the caller's reconnect budget.
 */
ConnOutcome
runConnection(const WorkerOptions &opts, u32 reconnect,
              bool &progressed)
{
    WorkerState st;
    std::string error;
    st.fd = connectTo(opts.endpoint, error);
    if (st.fd < 0) {
        fh_warn("worker: %s", error.c_str());
        return exec::shutdownRequested() ? ConnOutcome::CleanShutdown
                                         : ConnOutcome::Lost;
    }

    {
        HelloMsg hello;
        hello.pid = static_cast<u64>(::getpid());
        hello.reconnect = reconnect;
        std::lock_guard<std::mutex> lk(st.sendMu);
        if (!sendFrame(st.fd, MsgType::Hello, hello.encode())) {
            closeFabricFd(st.fd);
            return ConnOutcome::Lost;
        }
    }

    std::thread receiver(
        [&st, &opts] { receiverLoop(st, opts.stallTimeoutMs); });
    std::thread heartbeat(
        [&st, &opts] { heartbeatLoop(st, opts.heartbeatMs); });

    // The session is built from the Spec frame once per connection; a
    // stolen (re-issued) lease behind the current position rewinds it
    // to the post-warmup snapshot instead of re-running warmup —
    // ranges must be visited forward within one pass. cfg.threads is
    // host-local; everything deterministic comes from the spec.
    CampaignSpec spec;
    bool haveSpec = false;
    bool acked = false;
    std::unique_ptr<isa::Program> prog;
    pipeline::CoreParams params;
    fault::CampaignConfig ccfg;
    std::unique_ptr<fault::CampaignSession> session;

    ConnOutcome outcome = ConnOutcome::Lost;
    while (true) {
        Frame f;
        {
            // Timed wait: a signal delivered straight to an idle
            // worker (process-group ^C) latches the flag without
            // notifying the cv, so poll it.
            std::unique_lock<std::mutex> lk(st.qMu);
            st.qCv.wait_for(lk, std::chrono::milliseconds(100),
                            [&st] {
                                return !st.inbox.empty() || st.eof;
                            });
            if (st.inbox.empty()) {
                if (exec::shutdownRequested()) {
                    outcome = ConnOutcome::CleanShutdown;
                    break;
                }
                if (st.eof)
                    break; // outcome stays Lost
                continue;
            }
            f = std::move(st.inbox.front());
            st.inbox.pop_front();
        }

        switch (static_cast<MsgType>(f.type)) {
        case MsgType::HelloAck: {
            HelloAckMsg ack;
            if (!HelloAckMsg::decode(f.payload, ack)) {
                fh_warn("worker: bad hello-ack frame");
                outcome = ConnOutcome::Lost;
            } else if (!ack.accepted) {
                fh_warn("worker: coordinator rejected protocol "
                        "version %u (wants %u); exiting",
                        kProtocolVersion, ack.version);
                outcome = ConnOutcome::Fatal;
            } else {
                acked = true;
                break;
            }
            st.done.store(true, std::memory_order_relaxed);
            ::shutdown(st.fd, SHUT_RDWR);
            receiver.join();
            heartbeat.join();
            closeFabricFd(st.fd);
            return outcome;
        }
        case MsgType::Spec: {
            SpecMsg msg;
            if (!SpecMsg::decode(f.payload, msg) ||
                !CampaignSpec::decode(msg.text, spec, error)) {
                fh_warn("worker: bad campaign spec: %s", error.c_str());
                st.done.store(true, std::memory_order_relaxed);
                ::shutdown(st.fd, SHUT_RDWR);
                receiver.join();
                heartbeat.join();
                closeFabricFd(st.fd);
                return ConnOutcome::Fatal;
            }
            prog = std::make_unique<isa::Program>(spec.buildProgram());
            params = spec.buildParams();
            ccfg = spec.campaign;
            ccfg.threads = opts.jobs;
            ccfg.journalPath.clear();
            ccfg.progress = nullptr;
            ccfg.abortFlag = &st.connDead;
            haveSpec = true;
            progressed = true;
            break;
        }
        case MsgType::Assign: {
            AssignMsg a;
            if (!AssignMsg::decode(f.payload, a) || !haveSpec ||
                !acked) {
                fh_warn("worker: bad assign frame");
                st.connDead.store(true, std::memory_order_relaxed);
                break;
            }
            progressed = true;
            if (!session) {
                session = std::make_unique<fault::CampaignSession>(
                    params, prog.get(), ccfg);
                st.position.store(0, std::memory_order_relaxed);
            } else if (a.begin < session->position()) {
                session->rewind();
                st.position.store(0, std::memory_order_relaxed);
            }
            fault::RangeOutcome out = session->runRange(
                a.begin, a.end,
                [&](u64 trial, const fault::CampaignResult &delta,
                    const fault::TrialMeta &meta) {
                    TrialMsg t;
                    t.trial = trial;
                    fault::packTrialCounters(delta, t.d);
                    fault::packTrialMeta(meta, t.m);
                    std::lock_guard<std::mutex> lk(st.sendMu);
                    if (!sendFrame(st.fd, MsgType::Trial, t.encode()))
                        st.connDead.store(true,
                                          std::memory_order_relaxed);
                    st.position.store(trial + 1,
                                      std::memory_order_relaxed);
                });
            if (!st.connDead.load(std::memory_order_relaxed)) {
                RangeDoneMsg doneMsg;
                doneMsg.nextTrial = out.nextTrial;
                doneMsg.halted = out.halted;
                doneMsg.stopped = out.stopped;
                std::lock_guard<std::mutex> lk(st.sendMu);
                if (!sendFrame(st.fd, MsgType::RangeDone,
                               doneMsg.encode()))
                    st.connDead.store(true,
                                      std::memory_order_relaxed);
            }
            break;
        }
        case MsgType::Shutdown:
            // The receiver already latched the flag; just fall out.
            break;
        default:
            fh_warn("worker: unexpected frame type %u",
                    static_cast<unsigned>(f.type));
            break;
        }

        if (exec::shutdownRequested()) {
            std::lock_guard<std::mutex> lk(st.qMu);
            if (st.inbox.empty()) {
                outcome = ConnOutcome::CleanShutdown;
                break;
            }
        }
    }

    st.done.store(true, std::memory_order_relaxed);
    // Unblock the receiver's poll/recv and stop further sends.
    ::shutdown(st.fd, SHUT_RDWR);
    receiver.join();
    heartbeat.join();
    closeFabricFd(st.fd);
    return outcome;
}

/** splitmix64, for backoff jitter — cheap and dependency-free. */
u64
jitterMix(u64 x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/** Interruptible sleep: returns early once shutdown is requested. */
void
sleepMs(u64 ms)
{
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(ms);
    while (!exec::shutdownRequested() &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
}

} // namespace

int
runWorker(const WorkerOptions &opts)
{
    exec::installShutdownHandlers();
    chaos::reload();

    // Decorrelated jitter (sleep ~ uniform(base, prev*3), capped):
    // reconnecting workers spread out instead of thundering back into
    // a restarting coordinator in lockstep.
    u64 prevSleepMs = opts.backoffBaseMs;
    u64 jitterState =
        static_cast<u64>(::getpid()) * 0x9E3779B97F4A7C15ull;
    unsigned attempts = 0;
    u32 reconnects = 0;
    while (true) {
        bool progressed = false;
        const ConnOutcome out =
            runConnection(opts, reconnects, progressed);
        if (out == ConnOutcome::CleanShutdown)
            return 0;
        if (out == ConnOutcome::Fatal)
            return 1;
        if (exec::shutdownRequested())
            return 0;
        if (progressed)
            attempts = 0; // the fabric was alive; fresh budget
        if (++attempts > opts.maxReconnects) {
            fh_warn("worker: coordinator unreachable after %u "
                    "attempt(s); giving up",
                    opts.maxReconnects);
            return 1;
        }
        jitterState = jitterMix(jitterState);
        const u64 lo = opts.backoffBaseMs;
        const u64 hi = std::max<u64>(lo + 1, prevSleepMs * 3);
        const u64 sleep =
            std::min(opts.backoffCapMs, lo + jitterState % (hi - lo));
        fh_warn("worker: connection lost; reconnect %u in %llu ms",
                reconnects + 1,
                static_cast<unsigned long long>(sleep));
        sleepMs(sleep);
        prevSleepMs = sleep;
        ++reconnects;
        if (exec::shutdownRequested())
            return 0;
    }
}

} // namespace fh::dist
