#include "dist/worker.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include <sys/socket.h>
#include <unistd.h>

#include "dist/messages.hh"
#include "dist/spec.hh"
#include "exec/interrupt.hh"
#include "fault/campaign.hh"
#include "fault/journal.hh"
#include "sim/logging.hh"

namespace fh::dist
{

namespace
{

/** Shared state between the socket threads and the session loop. */
struct WorkerState
{
    int fd = -1;
    std::mutex sendMu; ///< trial/heartbeat/done frames never interleave
    std::atomic<u64> position{0};
    std::atomic<bool> done{false};

    std::mutex qMu;
    std::condition_variable qCv;
    std::deque<Frame> inbox;
    bool eof = false;

    void push(Frame f)
    {
        {
            std::lock_guard<std::mutex> lk(qMu);
            inbox.push_back(std::move(f));
        }
        qCv.notify_all();
    }

    void markEof()
    {
        {
            std::lock_guard<std::mutex> lk(qMu);
            eof = true;
        }
        qCv.notify_all();
    }
};

/** Blocking socket reads -> inbox. A Shutdown frame latches the
 *  process shutdown flag immediately so the session's stop checks
 *  fire mid-range; so does EOF or a corrupt stream (a dead
 *  coordinator must not leave the worker grinding on). */
void
receiverLoop(WorkerState &st)
{
    FrameReader reader;
    u8 buf[4096];
    while (true) {
        const ssize_t n = ::recv(st.fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        reader.feed(buf, static_cast<size_t>(n));
        Frame f;
        while (reader.next(f)) {
            if (static_cast<MsgType>(f.type) == MsgType::Shutdown)
                exec::requestShutdown();
            st.push(std::move(f));
        }
        if (reader.corrupt())
            break;
    }
    exec::requestShutdown();
    st.markEof();
}

void
heartbeatLoop(WorkerState &st, u64 periodMs)
{
    while (!st.done.load(std::memory_order_relaxed)) {
        {
            std::lock_guard<std::mutex> lk(st.sendMu);
            HeartbeatMsg hb;
            hb.position = st.position.load(std::memory_order_relaxed);
            if (!sendFrame(st.fd, MsgType::Heartbeat, hb.encode()))
                break;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(periodMs));
    }
}

} // namespace

int
runWorker(const WorkerOptions &opts)
{
    exec::installShutdownHandlers();

    WorkerState st;
    std::string error;
    st.fd = connectTo(opts.endpoint, error);
    if (st.fd < 0) {
        fh_warn("worker: %s", error.c_str());
        return 1;
    }

    {
        HelloMsg hello;
        hello.pid = static_cast<u64>(::getpid());
        std::lock_guard<std::mutex> lk(st.sendMu);
        if (!sendFrame(st.fd, MsgType::Hello, hello.encode())) {
            ::close(st.fd);
            return 1;
        }
    }

    std::thread receiver([&st] { receiverLoop(st); });
    std::thread heartbeat(
        [&st, &opts] { heartbeatLoop(st, opts.heartbeatMs); });

    // The session is built from the Spec frame once; a stolen
    // (re-issued) lease behind the current position rewinds it to the
    // post-warmup snapshot instead of re-running warmup — ranges must
    // be visited forward within one pass. cfg.threads is host-local;
    // everything deterministic comes from the spec.
    CampaignSpec spec;
    bool haveSpec = false;
    std::unique_ptr<isa::Program> prog;
    pipeline::CoreParams params;
    fault::CampaignConfig ccfg;
    std::unique_ptr<fault::CampaignSession> session;

    int rc = 0;
    while (true) {
        Frame f;
        {
            // Timed wait: a signal delivered straight to an idle
            // worker (process-group ^C) latches the flag without
            // notifying the cv, so poll it.
            std::unique_lock<std::mutex> lk(st.qMu);
            st.qCv.wait_for(lk, std::chrono::milliseconds(100),
                            [&st] {
                                return !st.inbox.empty() || st.eof;
                            });
            if (st.inbox.empty()) {
                if (st.eof || exec::shutdownRequested())
                    break;
                continue;
            }
            f = std::move(st.inbox.front());
            st.inbox.pop_front();
        }

        switch (static_cast<MsgType>(f.type)) {
        case MsgType::Spec: {
            SpecMsg msg;
            if (!SpecMsg::decode(f.payload, msg) ||
                !CampaignSpec::decode(msg.text, spec, error)) {
                fh_warn("worker: bad campaign spec: %s", error.c_str());
                rc = 1;
                exec::requestShutdown();
                break;
            }
            prog = std::make_unique<isa::Program>(spec.buildProgram());
            params = spec.buildParams();
            ccfg = spec.campaign;
            ccfg.threads = opts.jobs;
            ccfg.journalPath.clear();
            ccfg.progress = nullptr;
            haveSpec = true;
            break;
        }
        case MsgType::Assign: {
            AssignMsg a;
            if (!AssignMsg::decode(f.payload, a) || !haveSpec) {
                fh_warn("worker: bad assign frame");
                rc = 1;
                exec::requestShutdown();
                break;
            }
            if (!session) {
                session = std::make_unique<fault::CampaignSession>(
                    params, prog.get(), ccfg);
                st.position.store(0, std::memory_order_relaxed);
            } else if (a.begin < session->position()) {
                session->rewind();
                st.position.store(0, std::memory_order_relaxed);
            }
            fault::RangeOutcome out = session->runRange(
                a.begin, a.end,
                [&](u64 trial, const fault::CampaignResult &delta,
                    const fault::TrialMeta &meta) {
                    TrialMsg t;
                    t.trial = trial;
                    fault::packTrialCounters(delta, t.d);
                    fault::packTrialMeta(meta, t.m);
                    std::lock_guard<std::mutex> lk(st.sendMu);
                    sendFrame(st.fd, MsgType::Trial, t.encode());
                    st.position.store(trial + 1,
                                      std::memory_order_relaxed);
                });
            RangeDoneMsg doneMsg;
            doneMsg.nextTrial = out.nextTrial;
            doneMsg.halted = out.halted;
            doneMsg.stopped = out.stopped;
            {
                std::lock_guard<std::mutex> lk(st.sendMu);
                sendFrame(st.fd, MsgType::RangeDone, doneMsg.encode());
            }
            break;
        }
        case MsgType::Shutdown:
            // The receiver already latched the flag; just fall out.
            break;
        default:
            fh_warn("worker: unexpected frame type %u",
                    static_cast<unsigned>(f.type));
            break;
        }

        if (exec::shutdownRequested()) {
            std::lock_guard<std::mutex> lk(st.qMu);
            if (st.inbox.empty())
                break;
        }
    }

    st.done.store(true, std::memory_order_relaxed);
    // Unblock the receiver's recv() and stop further sends.
    ::shutdown(st.fd, SHUT_RDWR);
    receiver.join();
    heartbeat.join();
    ::close(st.fd);
    return rc;
}

} // namespace fh::dist
