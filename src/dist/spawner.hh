/**
 * @file
 * Local worker spawner: fork+exec for fhsim's dispatch mode, fork+fn
 * for tests and benches that want a real worker *process* (its own
 * shutdown flag, its own sockets, killable with signal 9) without
 * depending on a binary path.
 */

#ifndef FH_DIST_SPAWNER_HH
#define FH_DIST_SPAWNER_HH

#include <functional>
#include <string>
#include <vector>

#include <sys/types.h>

namespace fh::dist
{

/** Absolute path of the running binary (/proc/self/exe). */
std::string selfExe();

/** fork + exec argv[0] with the given arguments; the child's stdin is
 *  /dev/null. Returns the child pid, or -1 on failure. */
pid_t spawnExec(const std::vector<std::string> &argv);

/** fork; the child runs fn() and _exit()s with its return value (no
 *  atexit handlers, no flushing parent-inherited buffers twice).
 *  Returns the child pid, or -1 on failure. */
pid_t spawnFn(const std::function<int()> &fn);

/** Non-blocking reap: true if the child has exited (status filled). */
bool reapIfExited(pid_t pid, int &status);

/** Blocking reap; returns the exit status (or -1 on waitpid error). */
int reap(pid_t pid);

/**
 * Last-resort orphan prevention for spawned worker processes.
 *
 * fh_fatal std::exit()s and fh_panic (strict mode) aborts — neither
 * unwinds, so no RAII cleanup ever runs on those paths, and a
 * coordinator dying mid-dispatch used to leave its forked workers
 * running forever. ChildGuard registers every spawned pid in a
 * process-global table; the first add() installs an atexit hook
 * (SIGTERM, short grace, then SIGKILL + reap) and a SIGABRT handler
 * (async-signal-safe SIGKILL + reap, then re-raise). Normal-path code
 * should still reap children itself and remove() them — the guard only
 * fires for pids still registered when the process dies.
 */
namespace ChildGuard
{
/** Register a child for at-death cleanup (first call installs the
 *  exit/abort hooks). */
void add(pid_t pid);
/** Deregister after a normal reap; unknown pids are ignored. */
void remove(pid_t pid);
} // namespace ChildGuard

} // namespace fh::dist

#endif // FH_DIST_SPAWNER_HH
