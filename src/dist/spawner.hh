/**
 * @file
 * Local worker spawner: fork+exec for fhsim's dispatch mode, fork+fn
 * for tests and benches that want a real worker *process* (its own
 * shutdown flag, its own sockets, killable with signal 9) without
 * depending on a binary path.
 */

#ifndef FH_DIST_SPAWNER_HH
#define FH_DIST_SPAWNER_HH

#include <functional>
#include <string>
#include <vector>

#include <sys/types.h>

namespace fh::dist
{

/** Absolute path of the running binary (/proc/self/exe). */
std::string selfExe();

/** fork + exec argv[0] with the given arguments; the child's stdin is
 *  /dev/null. Returns the child pid, or -1 on failure. */
pid_t spawnExec(const std::vector<std::string> &argv);

/** fork; the child runs fn() and _exit()s with its return value (no
 *  atexit handlers, no flushing parent-inherited buffers twice).
 *  Returns the child pid, or -1 on failure. */
pid_t spawnFn(const std::function<int()> &fn);

/** Non-blocking reap: true if the child has exited (status filled). */
bool reapIfExited(pid_t pid, int &status);

/** Blocking reap; returns the exit status (or -1 on waitpid error). */
int reap(pid_t pid);

} // namespace fh::dist

#endif // FH_DIST_SPAWNER_HH
