#include "dist/wire.hh"

#include <atomic>
#include <cerrno>
#include <cstring>

#include "dist/chaos.hh"
#include "sim/crc32c.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace fh::dist
{

/* ------------------------------------------------------------------ */
/* Encode / decode.                                                   */

void
putU8(std::vector<u8> &buf, u8 v)
{
    buf.push_back(v);
}

void
putU32(std::vector<u8> &buf, u32 v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<u8>(v >> (8 * i)));
}

void
putU64(std::vector<u8> &buf, u64 v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<u8>(v >> (8 * i)));
}

void
putDouble(std::vector<u8> &buf, double v)
{
    u64 bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(buf, bits);
}

void
putString(std::vector<u8> &buf, const std::string &s)
{
    putU32(buf, static_cast<u32>(s.size()));
    buf.insert(buf.end(), s.begin(), s.end());
}

bool
Cursor::take(size_t n, const u8 *&out)
{
    if (fail_ || left_ < n) {
        fail_ = true;
        return false;
    }
    out = p_;
    p_ += n;
    left_ -= n;
    return true;
}

u8
Cursor::u8v()
{
    const u8 *p;
    return take(1, p) ? *p : 0;
}

u32
Cursor::u32v()
{
    const u8 *p;
    if (!take(4, p))
        return 0;
    u32 v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<u32>(p[i]) << (8 * i);
    return v;
}

u64
Cursor::u64v()
{
    const u8 *p;
    if (!take(8, p))
        return 0;
    u64 v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<u64>(p[i]) << (8 * i);
    return v;
}

double
Cursor::doublev()
{
    const u64 bits = u64v();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
Cursor::stringv()
{
    const u32 n = u32v();
    const u8 *p;
    if (!take(n, p))
        return {};
    return std::string(reinterpret_cast<const char *>(p), n);
}

std::vector<u8>
encodeFrame(MsgType type, const std::vector<u8> &payload)
{
    std::vector<u8> out;
    out.reserve(kLengthBytes + 1 + payload.size() + kCrcBytes);
    putU32(out, static_cast<u32>(1 + payload.size() + kCrcBytes));
    putU8(out, static_cast<u8>(type));
    out.insert(out.end(), payload.begin(), payload.end());
    // The CRC covers everything before it — length prefix included, so
    // a flipped length bit is caught once the (mis-sized) frame
    // completes rather than silently resyncing the stream.
    putU32(out, crc32c(out.data(), out.size()));
    return out;
}

void
FrameReader::feed(const u8 *data, size_t n)
{
    // Drop the consumed prefix before growing; the buffer stays at
    // most one partial frame plus one read() worth of bytes.
    if (pos_ > 0) {
        buf_.erase(buf_.begin(),
                   buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data, data + n);
}

bool
FrameReader::next(Frame &out)
{
    if (corrupt_)
        return false;
    const size_t avail = buf_.size() - pos_;
    if (avail < kLengthBytes)
        return false;
    Cursor len(buf_.data() + pos_, kLengthBytes);
    const u32 length = len.u32v();
    if (length < 1 + kCrcBytes || length > kMaxFrame) {
        corrupt_ = true;
        return false;
    }
    if (avail < kLengthBytes + length)
        return false; // torn tail: wait for the rest (or EOF drops it)
    const u8 *start = buf_.data() + pos_;
    const size_t covered = kLengthBytes + length - kCrcBytes;
    Cursor trailer(start + covered, kCrcBytes);
    if (crc32c(start, covered) != trailer.u32v()) {
        ++crcErrors_;
        corrupt_ = true;
        return false;
    }
    const u8 *body = start + kLengthBytes;
    out.type = body[0];
    out.payload.assign(body + 1, body + length - kCrcBytes);
    pos_ += kLengthBytes + length;
    return true;
}

/* ------------------------------------------------------------------ */
/* Sockets.                                                           */

std::string
Endpoint::str() const
{
    if (unixDomain)
        return "unix:" + host;
    return host + ":" + std::to_string(port);
}

bool
parseEndpoint(const std::string &text, Endpoint &out,
              std::string &error)
{
    if (text.rfind("unix:", 0) == 0) {
        out.unixDomain = true;
        out.host = text.substr(5);
        out.port = 0;
        if (out.host.empty()) {
            error = "empty unix socket path in '" + text + "'";
            return false;
        }
        if (out.host.size() >= sizeof(sockaddr_un{}.sun_path)) {
            error = "unix socket path too long in '" + text + "'";
            return false;
        }
        return true;
    }
    const auto colon = text.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= text.size()) {
        error = "expected host:port or unix:/path, got '" + text + "'";
        return false;
    }
    out.unixDomain = false;
    out.host = text.substr(0, colon);
    char *end = nullptr;
    const unsigned long port =
        std::strtoul(text.c_str() + colon + 1, &end, 10);
    if (*end != '\0' || port > 65535) {
        error = "bad port in '" + text + "'";
        return false;
    }
    out.port = static_cast<u16>(port);
    return true;
}

namespace
{

/** The fabric-fd registry (see adoptFabricFd in wire.hh): a fixed
 *  lock-free table so the child-side sweep right after fork() needs
 *  no allocation and no locks that might be mid-acquire in another
 *  thread at fork time. Slot value 0 = free (fd 0 is never a
 *  socket). A full table only weakens child-side hygiene — the send
 *  stall bound still holds — so overflow is not an error. */
constexpr size_t kMaxFabricFds = 256;
std::atomic<int> gFabricFds[kMaxFabricFds];

bool
fillSockaddr(const Endpoint &ep, sockaddr_storage &ss, socklen_t &len,
             std::string &error)
{
    std::memset(&ss, 0, sizeof(ss));
    if (ep.unixDomain) {
        auto *sun = reinterpret_cast<sockaddr_un *>(&ss);
        sun->sun_family = AF_UNIX;
        std::strncpy(sun->sun_path, ep.host.c_str(),
                     sizeof(sun->sun_path) - 1);
        len = sizeof(sockaddr_un);
        return true;
    }
    auto *sin = reinterpret_cast<sockaddr_in *>(&ss);
    sin->sin_family = AF_INET;
    sin->sin_port = htons(ep.port);
    if (inet_pton(AF_INET, ep.host.c_str(), &sin->sin_addr) != 1) {
        error = "bad IPv4 address '" + ep.host + "'";
        return false;
    }
    len = sizeof(sockaddr_in);
    return true;
}

} // namespace

void
adoptFabricFd(int fd)
{
    if (fd <= 0)
        return;
    // Bounded sends: a peer that stops draining its receive buffer
    // turns send() into EAGAIN after 2 s instead of an infinite
    // block; sendAll then gives the buffer ~10 s total to move before
    // declaring the peer gone.
    timeval tv{2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    for (auto &slot : gFabricFds) {
        int expected = 0;
        if (slot.compare_exchange_strong(expected, fd))
            return;
    }
}

void
closeFabricFd(int fd)
{
    if (fd <= 0)
        return;
    for (auto &slot : gFabricFds) {
        int expected = fd;
        if (slot.compare_exchange_strong(expected, 0))
            break;
    }
    ::close(fd);
}

void
closeFabricFdsInChild()
{
    for (auto &slot : gFabricFds) {
        const int fd = slot.exchange(0);
        if (fd > 0)
            ::close(fd);
    }
}

int
listenOn(Endpoint &ep, std::string &error)
{
    sockaddr_storage ss;
    socklen_t len = 0;
    if (!fillSockaddr(ep, ss, len, error))
        return -1;
    const int fd =
        ::socket(ep.unixDomain ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    if (!ep.unixDomain) {
        int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    } else {
        ::unlink(ep.host.c_str()); // stale path from a previous run
    }
    if (::bind(fd, reinterpret_cast<sockaddr *>(&ss), len) != 0 ||
        ::listen(fd, 64) != 0) {
        error = std::string("bind/listen ") + ep.str() + ": " +
                std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (!ep.unixDomain && ep.port == 0) {
        sockaddr_in bound;
        socklen_t blen = sizeof(bound);
        if (::getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                          &blen) == 0)
            ep.port = ntohs(bound.sin_port);
    }
    adoptFabricFd(fd);
    return fd;
}

int
connectTo(const Endpoint &ep, std::string &error)
{
    sockaddr_storage ss;
    socklen_t len = 0;
    if (!fillSockaddr(ep, ss, len, error))
        return -1;
    const int fd =
        ::socket(ep.unixDomain ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        error = std::string("socket: ") + std::strerror(errno);
        return -1;
    }
    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<sockaddr *>(&ss), len);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        error = std::string("connect ") + ep.str() + ": " +
                std::strerror(errno);
        ::close(fd);
        return -1;
    }
    if (!ep.unixDomain) {
        int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    adoptFabricFd(fd);
    return fd;
}

bool
sendAll(int fd, const void *data, size_t n)
{
    const char *p = static_cast<const char *>(data);
    int stalledMs = 0;
    while (n > 0) {
        const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // Coordinator fds are non-blocking for reads and every
                // fabric fd carries a SO_SNDTIMEO; wait for buffer
                // space, but only so long — a peer that drains nothing
                // for ~10 s is gone, and blocking forever here is how
                // a dead fabric becomes a hung process.
                if (stalledMs >= 10000)
                    return false;
                pollfd pfd{fd, POLLOUT, 0};
                if (::poll(&pfd, 1, 1000) <= 0)
                    stalledMs += 1000;
                continue;
            }
            return false;
        }
        stalledMs = 0;
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

bool
sendFrame(int fd, MsgType type, const std::vector<u8> &payload)
{
    const std::vector<u8> frame = encodeFrame(type, payload);
    if (chaos::enabled())
        return chaos::send(fd, frame.data(), frame.size());
    return sendAll(fd, frame.data(), frame.size());
}

} // namespace fh::dist
