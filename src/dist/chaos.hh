/**
 * @file
 * Deterministic network-fault interposer for the distributed fabric —
 * FaultHound turned on its own infrastructure. When armed (via
 * `FH_CHAOS=seed[:rates]` in the environment), every outbound frame is
 * routed through chaos::send(), which consults a seeded counter-mode
 * PRNG to decide whether to deliver the frame clean or to perturb it:
 *
 *   drop   — frame never sent; the connection is then shut down.
 *   trunc  — a random prefix is sent, then the connection is shut down.
 *   flip   — one random bit anywhere in the frame is inverted.
 *   dup    — the frame is sent twice back-to-back.
 *   delay  — the send is stalled 1–20 ms, then delivered clean.
 *   reset  — the frame is sent, then the connection is shut down.
 *
 * Drop and trunc deliberately kill the connection rather than letting
 * the stream continue: on a healthy TCP/unix stream, bytes do not
 * vanish from the middle — partial delivery only happens when the
 * connection itself dies. Silently swallowing a frame while keeping
 * the stream alive would model a failure TCP cannot produce, and would
 * livelock the fabric (a dropped Assign with live heartbeats stalls a
 * lease forever). Flip and dup keep the connection alive; the
 * receiver's CRC / protocol checks are what must catch them.
 *
 * Decisions are a pure function of (seed, global frame ordinal), so a
 * chaos schedule is reproducible for a fixed interleaving and — more
 * importantly — the *oracle* is deterministic regardless: whatever the
 * schedule does, the campaign result must be bit-identical to the
 * clean run (see tests/test_chaos.cc).
 *
 * The rates string is `key=per-mille` pairs joined by commas, e.g.
 * `FH_CHAOS=42:drop=5,flip=10`. Omitted keys are zero; a bare seed
 * (`FH_CHAOS=42`) uses a default mixed schedule. Unknown keys are a
 * fatal config error, not a silent no-op.
 */

#ifndef FH_DIST_CHAOS_HH
#define FH_DIST_CHAOS_HH

#include <cstddef>

#include "sim/types.hh"

namespace fh::dist::chaos
{

/** Per-action event counts since the last reload(). */
struct Stats
{
    u64 frames = 0; ///< frames that passed through the interposer
    u64 drops = 0;
    u64 truncs = 0;
    u64 flips = 0;
    u64 dups = 0;
    u64 delays = 0;
    u64 resets = 0;
};

/**
 * Re-read FH_CHAOS from the environment and reset the frame ordinal
 * and stats. Called by the coordinator constructor and runWorker() so
 * each fabric process arms itself exactly once per run; tests call it
 * after setenv/unsetenv to flip chaos on and off mid-process.
 */
void reload();

/** True when FH_CHAOS is armed for this process. */
bool enabled();

/** Snapshot of the interposer's event counts. */
Stats stats();

/**
 * Chaos-mediated frame transmission (called by sendFrame when
 * enabled). Returns false when the frame was not (fully) delivered —
 * the connection has then already been shut down and the caller should
 * treat the peer as lost.
 */
bool send(int fd, const u8 *frame, size_t n);

} // namespace fh::dist::chaos

#endif // FH_DIST_CHAOS_HH
