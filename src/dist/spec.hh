/**
 * @file
 * CampaignSpec: the single description of a campaign that crosses the
 * coordinator/worker wire.
 *
 * Every input the trial outcomes are a function of rides in the spec —
 * the benchmark and its workload knobs, the core and detector
 * configuration, and the campaign schedule — serialized as a canonical
 * `key = value` text blob (parsed back with the same fh::Config used
 * by the CLI). Workers build their program, core parameters and
 * CampaignConfig exclusively from the received spec, so a
 * coordinator/worker configuration mismatch is structurally
 * impossible: there is no second place the configuration could come
 * from. Host-local execution knobs (worker thread count, journal path,
 * progress meter) are deliberately NOT part of the spec — they vary
 * per process and the results are independent of them.
 */

#ifndef FH_DIST_SPEC_HH
#define FH_DIST_SPEC_HH

#include <string>

#include "fault/campaign.hh"
#include "filters/detector.hh"
#include "isa/program.hh"
#include "pipeline/params.hh"
#include "workload/workload.hh"

namespace fh::dist
{

/** Map a scheme name (none|pbfs|pbfs-biased|fh-backend|faulthound)
 *  to its DetectorParams preset; false on unknown names. */
bool schemeByName(const std::string &name, filters::DetectorParams &out);

struct CampaignSpec
{
    // Workload.
    std::string bench = "400.perl";
    workload::WorkloadSpec workload{};

    // Core + detector (the subset fhsim exposes; everything else is
    // the CoreParams default on both sides of the wire).
    std::string scheme = "faulthound";
    unsigned coreThreads = 2;
    unsigned tcamEntries = 0;     ///< 0 = scheme preset
    unsigned tcamThreshold = 0;   ///< 0 = scheme preset
    unsigned delayBuffer = 0;     ///< 0 = CoreParams default

    // Campaign schedule. Only the deterministic inputs; threads /
    // journalPath / progress / test hooks stay host-local.
    fault::CampaignConfig campaign{};

    /** Canonical key=value text (the Spec frame payload). */
    std::string encode() const;

    /** Parse an encoded spec; false (with error) on malformed text,
     *  unknown keys, or an unknown benchmark/scheme. */
    static bool decode(const std::string &text, CampaignSpec &out,
                       std::string &error);

    /** Build the workload program described by the spec. */
    isa::Program buildProgram() const;

    /** Build the core parameters described by the spec. */
    pipeline::CoreParams buildParams() const;
};

} // namespace fh::dist

#endif // FH_DIST_SPEC_HH
