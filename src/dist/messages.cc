#include "dist/messages.hh"

namespace fh::dist
{

std::vector<u8>
HelloMsg::encode() const
{
    std::vector<u8> p;
    putU32(p, version);
    putU64(p, pid);
    putU32(p, reconnect);
    return p;
}

bool
HelloMsg::decode(const std::vector<u8> &payload, HelloMsg &out)
{
    Cursor c(payload);
    out.version = c.u32v();
    out.pid = c.u64v();
    out.reconnect = c.u32v();
    return c.done();
}

std::vector<u8>
HelloAckMsg::encode() const
{
    std::vector<u8> p;
    putU32(p, version);
    putU8(p, accepted ? 1 : 0);
    return p;
}

bool
HelloAckMsg::decode(const std::vector<u8> &payload, HelloAckMsg &out)
{
    Cursor c(payload);
    out.version = c.u32v();
    out.accepted = c.u8v() != 0;
    return c.done();
}

std::vector<u8>
SpecMsg::encode() const
{
    std::vector<u8> p;
    putString(p, text);
    return p;
}

bool
SpecMsg::decode(const std::vector<u8> &payload, SpecMsg &out)
{
    Cursor c(payload);
    out.text = c.stringv();
    return c.done();
}

std::vector<u8>
AssignMsg::encode() const
{
    std::vector<u8> p;
    putU64(p, begin);
    putU64(p, end);
    return p;
}

bool
AssignMsg::decode(const std::vector<u8> &payload, AssignMsg &out)
{
    Cursor c(payload);
    out.begin = c.u64v();
    out.end = c.u64v();
    return c.done() && out.begin <= out.end;
}

std::vector<u8>
TrialMsg::encode() const
{
    std::vector<u8> p;
    putU64(p, trial);
    for (size_t i = 0; i < fault::kTrialCounters; ++i)
        putU64(p, d[i]);
    for (size_t i = 0; i < fault::kTrialMetaFields; ++i)
        putU64(p, m[i]);
    return p;
}

bool
TrialMsg::decode(const std::vector<u8> &payload, TrialMsg &out)
{
    Cursor c(payload);
    out.trial = c.u64v();
    for (size_t i = 0; i < fault::kTrialCounters; ++i)
        out.d[i] = c.u64v();
    for (size_t i = 0; i < fault::kTrialMetaFields; ++i)
        out.m[i] = c.u64v();
    return c.done();
}

std::vector<u8>
RangeDoneMsg::encode() const
{
    std::vector<u8> p;
    putU64(p, nextTrial);
    putU8(p, halted ? 1 : 0);
    putU8(p, stopped ? 1 : 0);
    return p;
}

bool
RangeDoneMsg::decode(const std::vector<u8> &payload, RangeDoneMsg &out)
{
    Cursor c(payload);
    out.nextTrial = c.u64v();
    out.halted = c.u8v() != 0;
    out.stopped = c.u8v() != 0;
    return c.done();
}

std::vector<u8>
HeartbeatMsg::encode() const
{
    std::vector<u8> p;
    putU64(p, position);
    return p;
}

bool
HeartbeatMsg::decode(const std::vector<u8> &payload, HeartbeatMsg &out)
{
    Cursor c(payload);
    out.position = c.u64v();
    return c.done();
}

} // namespace fh::dist
