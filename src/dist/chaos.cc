#include "dist/chaos.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>

#include "dist/wire.hh"
#include "sim/logging.hh"

namespace fh::dist::chaos
{

namespace
{

/** Per-mille probabilities for each perturbation. */
struct Rates
{
    u32 dropPm = 0;
    u32 truncPm = 0;
    u32 flipPm = 0;
    u32 dupPm = 0;
    u32 delayPm = 0;
    u32 resetPm = 0;
};

bool gEnabled = false;
u64 gSeed = 0;
Rates gRates;

std::atomic<u64> gOrdinal{0};
std::atomic<u64> gFrames{0};
std::atomic<u64> gDrops{0};
std::atomic<u64> gTruncs{0};
std::atomic<u64> gFlips{0};
std::atomic<u64> gDups{0};
std::atomic<u64> gDelays{0};
std::atomic<u64> gResets{0};

/** splitmix64 — decisions are a pure function of (seed, ordinal). */
u64
mix(u64 x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

Rates
defaultRates()
{
    // A mixed schedule exercising every perturbation; mild enough
    // that a campaign still converges through reconnects.
    Rates r;
    r.dropPm = 2;
    r.truncPm = 2;
    r.flipPm = 4;
    r.dupPm = 4;
    r.delayPm = 8;
    r.resetPm = 2;
    return r;
}

void
parseSpec(const std::string &spec)
{
    const auto colon = spec.find(':');
    const std::string seedPart = spec.substr(0, colon);
    char *end = nullptr;
    gSeed = std::strtoull(seedPart.c_str(), &end, 10);
    if (end == seedPart.c_str() || *end != '\0')
        fh_fatal("FH_CHAOS: bad seed in '%s'", spec.c_str());
    if (colon == std::string::npos) {
        gRates = defaultRates();
        return;
    }
    gRates = Rates{};
    std::string rest = spec.substr(colon + 1);
    size_t pos = 0;
    while (pos < rest.size()) {
        size_t comma = rest.find(',', pos);
        if (comma == std::string::npos)
            comma = rest.size();
        const std::string pair = rest.substr(pos, comma - pos);
        pos = comma + 1;
        const auto eq = pair.find('=');
        if (eq == std::string::npos)
            fh_fatal("FH_CHAOS: expected key=permille, got '%s'",
                     pair.c_str());
        const std::string key = pair.substr(0, eq);
        const std::string val = pair.substr(eq + 1);
        char *vend = nullptr;
        const unsigned long pm = std::strtoul(val.c_str(), &vend, 10);
        if (vend == val.c_str() || *vend != '\0' || pm > 1000)
            fh_fatal("FH_CHAOS: bad per-mille value '%s' for '%s'",
                     val.c_str(), key.c_str());
        const u32 v = static_cast<u32>(pm);
        if (key == "drop")
            gRates.dropPm = v;
        else if (key == "trunc")
            gRates.truncPm = v;
        else if (key == "flip")
            gRates.flipPm = v;
        else if (key == "dup")
            gRates.dupPm = v;
        else if (key == "delay")
            gRates.delayPm = v;
        else if (key == "reset")
            gRates.resetPm = v;
        else
            fh_fatal("FH_CHAOS: unknown rate key '%s'", key.c_str());
    }
}

/** Kill the connection both ways so the peer sees EOF promptly and
 *  this side's next read/send fails — models a connection death, the
 *  only way bytes legitimately go missing on a stream socket. */
void
killConnection(int fd)
{
    ::shutdown(fd, SHUT_RDWR);
}

} // namespace

void
reload()
{
    gOrdinal.store(0, std::memory_order_relaxed);
    gFrames.store(0, std::memory_order_relaxed);
    gDrops.store(0, std::memory_order_relaxed);
    gTruncs.store(0, std::memory_order_relaxed);
    gFlips.store(0, std::memory_order_relaxed);
    gDups.store(0, std::memory_order_relaxed);
    gDelays.store(0, std::memory_order_relaxed);
    gResets.store(0, std::memory_order_relaxed);
    const char *spec = std::getenv("FH_CHAOS");
    if (!spec || !*spec) {
        gEnabled = false;
        return;
    }
    parseSpec(spec);
    gEnabled = true;
}

bool
enabled()
{
    return gEnabled;
}

Stats
stats()
{
    Stats s;
    s.frames = gFrames.load(std::memory_order_relaxed);
    s.drops = gDrops.load(std::memory_order_relaxed);
    s.truncs = gTruncs.load(std::memory_order_relaxed);
    s.flips = gFlips.load(std::memory_order_relaxed);
    s.dups = gDups.load(std::memory_order_relaxed);
    s.delays = gDelays.load(std::memory_order_relaxed);
    s.resets = gResets.load(std::memory_order_relaxed);
    return s;
}

bool
send(int fd, const u8 *frame, size_t n)
{
    const u64 ordinal =
        gOrdinal.fetch_add(1, std::memory_order_relaxed);
    gFrames.fetch_add(1, std::memory_order_relaxed);
    const u64 r = mix(gSeed + ordinal);
    const u32 roll = static_cast<u32>(r % 1000);
    // Extra random bits for the perturbation's parameters (which bit
    // to flip, how much to truncate, how long to stall).
    const u64 aux = mix(r);

    u32 edge = gRates.dropPm;
    if (roll < edge) {
        gDrops.fetch_add(1, std::memory_order_relaxed);
        killConnection(fd);
        return false;
    }
    edge += gRates.truncPm;
    if (roll < edge) {
        gTruncs.fetch_add(1, std::memory_order_relaxed);
        const size_t keep = n > 1 ? 1 + aux % (n - 1) : 0;
        if (keep > 0)
            sendAll(fd, frame, keep);
        killConnection(fd);
        return false;
    }
    edge += gRates.flipPm;
    if (roll < edge) {
        gFlips.fetch_add(1, std::memory_order_relaxed);
        std::vector<u8> mutated(frame, frame + n);
        const u64 bit = aux % (n * 8);
        mutated[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
        return sendAll(fd, mutated.data(), n);
    }
    edge += gRates.dupPm;
    if (roll < edge) {
        gDups.fetch_add(1, std::memory_order_relaxed);
        return sendAll(fd, frame, n) && sendAll(fd, frame, n);
    }
    edge += gRates.delayPm;
    if (roll < edge) {
        gDelays.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1 + aux % 20));
        return sendAll(fd, frame, n);
    }
    edge += gRates.resetPm;
    if (roll < edge) {
        gResets.fetch_add(1, std::memory_order_relaxed);
        sendAll(fd, frame, n); // frame arrives, then the line dies
        killConnection(fd);
        return false;
    }
    return sendAll(fd, frame, n);
}

} // namespace fh::dist::chaos
