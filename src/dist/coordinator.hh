/**
 * @file
 * Campaign coordinator: shards the trial-index space into contiguous
 * range leases across however many workers connect, merges their trial
 * records back in trial order, and re-issues the unacknowledged part
 * of a dead or hung worker's lease to a live worker.
 *
 * Bit-identical merge: each trial's counter deltas are a pure function
 * of (spec, trial index) — see fault::CampaignSession — so the merge
 * only has to restore trial order. Within one lease, records arrive in
 * order on one TCP stream; across leases, a stash holds early records
 * until the contiguous prefix reaches them. Counters, journal bytes
 * and FH_JSON classification counts therefore equal a single-process
 * run's for any worker count, any chunk size, and any interleaving —
 * including across worker deaths, because a lease's acknowledged
 * prefix is exactly what was merged and the re-issued remainder
 * re-executes trials whose records were never ingested.
 *
 * Elasticity: leases are granted from a sorted queue of chunks,
 * lowest first, one outstanding lease per worker. A worker death
 * (EOF/error) or lease timeout (heartbeat silence) requeues
 * [acknowledged, end) at its sorted position; late joiners are
 * welcomed at any time (Hello -> Spec -> Assign). The coordinator is
 * single-threaded around poll(2) — no locks, no shared state with
 * worker processes beyond the protocol itself.
 */

#ifndef FH_DIST_COORDINATOR_HH
#define FH_DIST_COORDINATOR_HH

#include <chrono>
#include <deque>
#include <map>
#include <vector>

#include "dist/spec.hh"
#include "dist/wire.hh"
#include "fault/campaign.hh"
#include "fault/journal.hh"

namespace fh::exec
{
class ProgressMeter;
} // namespace fh::exec

namespace fh::dist
{

struct CoordinatorOptions
{
    /** Where to listen; port 0 picks an ephemeral port (read it back
     *  via Coordinator::endpoint() before spawning workers). */
    Endpoint listen{false, "127.0.0.1", 0};
    /** Expected worker count — only sizes the auto chunk; more or
     *  fewer workers may actually join. */
    unsigned workers = 1;
    /** Trials per lease; 0 = auto (~4 leases per expected worker). */
    u64 chunk = 0;
    /** Heartbeat silence after which a worker's lease is revoked and
     *  re-issued. Generous: heartbeats flow even while a worker
     *  grinds one slow trial, so silence really means hung/dead. */
    u64 leaseTimeoutMs = 10000;
    /** Give up (fatal) after this long with work outstanding and not
     *  a single live worker. */
    u64 noWorkerTimeoutMs = 120000;
    exec::ProgressMeter *progress = nullptr; ///< ticked per merged trial
    /** Test hook: behave as if SIGTERM arrived once this many trials
     *  have been merged; 0 = never. */
    u64 stopAfterMerged = 0;

    /** Lease failures (death/timeout/corruption with a lease held)
     *  before a worker pid is quarantined — its Hello is still
     *  welcome, but it gets no leases until the cool-off expires. A
     *  successful lease clears the strike count. */
    unsigned quarantineStrikes = 3;
    u64 quarantineCooloffMs = 2000;

    /** When the whole fleet is dead past noWorkerTimeoutMs, execute
     *  the remaining trials in-process (bit-identical — each trial is
     *  a pure function of spec and index) instead of dying with work
     *  outstanding. The result is flagged in DistStats::degraded and
     *  FH_JSON's "fabric" block. false restores the old fatal. */
    bool degradeToLocal = true;
};

struct DistStats
{
    unsigned workersJoined = 0;
    unsigned workersDied = 0; ///< EOF, protocol violation, or timeout
    u64 rangesIssued = 0;
    u64 rangesReissued = 0;
    u64 trialsMerged = 0;
    u64 crcErrors = 0;   ///< frames rejected by the CRC trailer
    u64 reconnects = 0;  ///< Hellos carrying a nonzero reconnect ordinal
    u64 quarantined = 0; ///< quarantine episodes (not distinct pids)
    bool degraded = false; ///< tail ran in-process, fleet was dead
};

class Coordinator
{
  public:
    /** Binds and listens immediately (fatal on failure), so workers
     *  can be spawned against endpoint() before run() is entered. */
    Coordinator(const CampaignSpec &spec,
                const CoordinatorOptions &opts);
    ~Coordinator();

    Coordinator(const Coordinator &) = delete;
    Coordinator &operator=(const Coordinator &) = delete;

    const Endpoint &endpoint() const { return listen_; }

    /** Subprocess to forward shutdown signals to (dispatch mode). */
    void addChild(pid_t pid);

    /**
     * Drive the campaign to completion (or to a drained shutdown —
     * the result is then marked partial). journal may be null; when
     * set, merged records are appended in trial order and the
     * journaled prefix is replayed upfront, exactly like a
     * single-process runCampaign.
     */
    fault::CampaignResult run(fault::TrialJournal *journal);

    const DistStats &stats() const { return stats_; }

  private:
    using Clock = std::chrono::steady_clock;

    struct Range
    {
        u64 begin;
        u64 end;
    };

    struct Conn
    {
        int fd = -1;
        FrameReader reader;
        bool helloed = false;
        bool hasLease = false;
        Range lease{0, 0};
        u64 leaseNext = 0; ///< acknowledged contiguous prefix
        u64 pid = 0;
        Clock::time_point lastHeard;
    };

    void acceptNew();
    void readFrom(Conn &c);
    bool handleFrame(Conn &c, const Frame &f);
    void dropConn(Conn &c, const char *why);
    void requeue(Range r);
    void issueLeases();
    void applyHalt(u64 haltTrial);
    void drainStash(fault::TrialJournal *journal);
    void maybeCiStop();
    void beginShutdown();
    bool outstandingWork() const;
    void runDegradedTail(fault::TrialJournal *journal);

    CampaignSpec spec_;
    CoordinatorOptions opts_;
    Endpoint listen_;
    int listenFd_ = -1;
    std::vector<Conn> conns_;
    std::vector<pid_t> children_;

    /** One merged trial: the journal record pair. */
    struct MergedTrial
    {
        fault::CampaignResult delta;
        fault::TrialMeta meta;
    };

    /** Lease-failure strikes per worker pid; survives reconnects (the
     *  pid, not the connection, is what keeps failing). */
    struct Strikes
    {
        unsigned strikes = 0;
        Clock::time_point until{}; ///< quarantined while now < until
    };
    std::map<u64, Strikes> quarantine_;

    std::deque<Range> queue_; ///< sorted by begin, non-overlapping
    std::map<u64, MergedTrial> stash_;
    u64 mergedNext_ = 0;
    u64 effectiveEnd_ = 0; ///< injections, shrunk by halt or CI stop
    bool shuttingDown_ = false;
    /** The campaign's stratification — the same analytic weights every
     *  worker uses, so the coordinator's CI stop rule is the exact
     *  rule a single process applies to the same merged prefix. */
    fault::StratumSpace strata_;
    fault::CampaignResult result_;
    DistStats stats_;
};

} // namespace fh::dist

#endif // FH_DIST_COORDINATOR_HH
