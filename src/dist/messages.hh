/**
 * @file
 * Typed messages of the coordinator/worker protocol, one struct per
 * MsgType with encode/decode against the wire.hh payload primitives.
 *
 * Decoders are strict: a payload must parse completely (Cursor::done)
 * or the message is rejected, and a rejected message from a worker
 * marks that worker dead — the merge never ingests a suspect record.
 *
 * The Trial payload is exactly the journal's counter vector plus its
 * sampling-metadata vector (fault::kTrialCounters and
 * fault::kTrialMetaFields, both in record-array order): a coordinator
 * can journal a worker's trial verbatim — and fold it into its
 * vulnerability profile / CI estimator — and the merged journal and
 * profile are byte-identical to a single-process run's.
 */

#ifndef FH_DIST_MESSAGES_HH
#define FH_DIST_MESSAGES_HH

#include <string>
#include <vector>

#include "dist/wire.hh"
#include "fault/journal.hh"

namespace fh::dist
{

/** Bump on any wire-visible change; mismatch refuses the worker.
 *  v2: Trial frames carry the sampling-metadata vector (stratum id,
 *  site, flags, attribution PC, early-exit cycle) after the counters,
 *  and the counter vector grew the skipped/early-terminated pair.
 *  v3: every frame carries a CRC32C trailer, Hello carries the
 *  worker's reconnect ordinal, and the coordinator answers Hello with
 *  an explicit HelloAck version verdict instead of silently dropping
 *  mismatched workers. */
constexpr u32 kProtocolVersion = 3;

/** Worker -> coordinator, once, immediately after connecting.
 *  reconnect is 0 on the first connection and counts up on each
 *  re-dial, letting the coordinator tell a flapping worker from a
 *  fresh fleet member in its fabric health stats. */
struct HelloMsg
{
    u32 version = kProtocolVersion;
    u64 pid = 0;
    u32 reconnect = 0;

    std::vector<u8> encode() const;
    static bool decode(const std::vector<u8> &payload, HelloMsg &out);
};

/** Coordinator -> worker: explicit version verdict for the Hello.
 *  accepted=false means the worker must exit (its protocol is wrong
 *  for this coordinator); reconnecting would never succeed. */
struct HelloAckMsg
{
    u32 version = kProtocolVersion;
    bool accepted = false;

    std::vector<u8> encode() const;
    static bool decode(const std::vector<u8> &payload,
                       HelloAckMsg &out);
};

/** Coordinator -> worker: the canonical campaign spec text (see
 *  dist/spec.hh). Sent once, before any Assign. */
struct SpecMsg
{
    std::string text;

    std::vector<u8> encode() const;
    static bool decode(const std::vector<u8> &payload, SpecMsg &out);
};

/** Coordinator -> worker: lease trials [begin, end). */
struct AssignMsg
{
    u64 begin = 0;
    u64 end = 0;

    std::vector<u8> encode() const;
    static bool decode(const std::vector<u8> &payload, AssignMsg &out);
};

/** Worker -> coordinator: one completed trial's counter deltas and
 *  its sampling metadata (journal record-array order for both). */
struct TrialMsg
{
    u64 trial = 0;
    u64 d[fault::kTrialCounters] = {};
    u64 m[fault::kTrialMetaFields] = {};

    std::vector<u8> encode() const;
    static bool decode(const std::vector<u8> &payload, TrialMsg &out);
};

/** Worker -> coordinator: the current lease is finished. nextTrial is
 *  the first trial not produced — the lease end, or the halt/stop
 *  point. halted means the workload ran out: no trial >= nextTrial
 *  exists in this campaign (deterministic across processes). */
struct RangeDoneMsg
{
    u64 nextTrial = 0;
    bool halted = false;
    bool stopped = false;

    std::vector<u8> encode() const;
    static bool decode(const std::vector<u8> &payload,
                       RangeDoneMsg &out);
};

/** Worker -> coordinator: periodic liveness, independent of trial
 *  completion (a worker grinding a slow fork still heartbeats). */
struct HeartbeatMsg
{
    u64 position = 0; ///< session position (trials advanced)

    std::vector<u8> encode() const;
    static bool decode(const std::vector<u8> &payload,
                       HeartbeatMsg &out);
};

// Shutdown carries no payload.

} // namespace fh::dist

#endif // FH_DIST_MESSAGES_HH
