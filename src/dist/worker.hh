/**
 * @file
 * Campaign worker: connects to a coordinator, receives the campaign
 * spec, and executes leased trial ranges through a CampaignSession,
 * streaming each completed trial's counter deltas back in trial order.
 *
 * Threads: the main thread runs the session (and owns the socket for
 * ordered sends); a receiver thread blocks on the socket so a Shutdown
 * frame (or coordinator death) latches the process shutdown flag even
 * mid-range — the session's own stop checks then drain the range; a
 * heartbeat thread proves liveness independently of trial completion,
 * so a worker grinding one slow fork is distinguishable from a hung
 * one. All sends go through one mutex: frames never interleave.
 */

#ifndef FH_DIST_WORKER_HH
#define FH_DIST_WORKER_HH

#include "dist/wire.hh"

namespace fh::dist
{

struct WorkerOptions
{
    Endpoint endpoint;
    /** Host threads for the per-trial forks (CampaignConfig::threads);
     *  0 = one per hardware thread. */
    unsigned jobs = 1;
    u64 heartbeatMs = 300;
};

/**
 * Run a worker to completion (coordinator sent Shutdown, the socket
 * closed, or a local SIGINT/SIGTERM drained it). Returns a process
 * exit code: 0 on a clean drain, 1 on connect/protocol failure.
 */
int runWorker(const WorkerOptions &opts);

} // namespace fh::dist

#endif // FH_DIST_WORKER_HH
