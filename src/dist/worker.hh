/**
 * @file
 * Campaign worker: connects to a coordinator, receives the campaign
 * spec, and executes leased trial ranges through a CampaignSession,
 * streaming each completed trial's counter deltas back in trial order.
 *
 * Threads (per connection): the main thread runs the session (and owns
 * the socket for ordered sends); a receiver thread polls the socket so
 * a Shutdown frame latches the process shutdown flag even mid-range —
 * the session's own stop checks then drain the range; a heartbeat
 * thread proves liveness independently of trial completion, so a
 * worker grinding one slow fork is distinguishable from a hung one.
 * All sends go through one mutex: frames never interleave.
 *
 * Connection loss is not fatal: EOF, a corrupt/CRC-failed stream, or a
 * stalled partial frame kill only the *session* (via
 * CampaignConfig::abortFlag), and the worker re-dials the coordinator
 * with exponentially backed-off, decorrelated-jitter delays, starting
 * a fresh session on the new connection. Because every trial is a pure
 * function of (spec, trial index), re-executing a lease after a
 * reconnect is harmless — the coordinator's merge discards duplicates.
 * Only a Shutdown frame, a local signal, or an explicit version
 * rejection (HelloAck) ends the worker.
 */

#ifndef FH_DIST_WORKER_HH
#define FH_DIST_WORKER_HH

#include "dist/wire.hh"

namespace fh::dist
{

struct WorkerOptions
{
    Endpoint endpoint;
    /** Host threads for the per-trial forks (CampaignConfig::threads);
     *  0 = one per hardware thread. */
    unsigned jobs = 1;
    u64 heartbeatMs = 300;

    /**
     * How long a partial frame may sit in the receive buffer without
     * completing before the connection is declared corrupt. Guards
     * against a flipped *length* field on the coordinator->worker
     * path: the mis-sized frame never completes, yet the worker's own
     * heartbeats would keep its lease alive forever — a livelock no
     * timeout on the coordinator side can see.
     */
    u64 stallTimeoutMs = 2000;

    /** Consecutive failed (re)connection attempts before giving up;
     *  the counter resets whenever a connection makes progress (a
     *  spec or lease arrives). */
    unsigned maxReconnects = 8;
    /** Decorrelated-jitter backoff: sleep ~ uniform(base, prev*3),
     *  capped. */
    u64 backoffBaseMs = 50;
    u64 backoffCapMs = 1000;
};

/**
 * Run a worker to completion (coordinator sent Shutdown, or a local
 * SIGINT/SIGTERM drained it). Returns a process exit code: 0 on a
 * clean drain, 1 on protocol failure / version rejection / reconnect
 * budget exhausted.
 */
int runWorker(const WorkerOptions &opts);

} // namespace fh::dist

#endif // FH_DIST_WORKER_HH
