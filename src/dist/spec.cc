#include "dist/spec.hh"

#include "sim/config.hh"
#include "sim/logging.hh"

namespace fh::dist
{

bool
schemeByName(const std::string &name, filters::DetectorParams &out)
{
    if (name == "none")
        out = filters::DetectorParams::none();
    else if (name == "pbfs")
        out = filters::DetectorParams::pbfsSticky();
    else if (name == "pbfs-biased")
        out = filters::DetectorParams::pbfsBiased();
    else if (name == "fh-backend")
        out = filters::DetectorParams::faultHoundBackend();
    else if (name == "faulthound")
        out = filters::DetectorParams::faultHound();
    else
        return false;
    return true;
}

std::string
CampaignSpec::encode() const
{
    // One key per line, fixed order: the blob doubles as the
    // campaign's identity, so encoding must be canonical. Doubles use
    // %.17g (round-trip exact), matching the journal header's policy.
    return csprintf(
        "bench = %s\n"
        "scheme = %s\n"
        "core_threads = %u\n"
        "workload_iterations = %llu\n"
        "workload_seed = %llu\n"
        "footprint_divider = %llu\n"
        "tcam_entries = %u\n"
        "tcam_threshold = %u\n"
        "delay_buffer = %u\n"
        "injections = %llu\n"
        "window = %llu\n"
        "warmup = %llu\n"
        "min_gap = %llu\n"
        "max_gap = %llu\n"
        "fork_max_cycles = %llu\n"
        "seed = %llu\n"
        "rename_frac = %.17g\n"
        "lsq_frac = %.17g\n"
        "inflight_frac = %.17g\n"
        "golden_fork = %u\n"
        "trial_timeout_ms = %llu\n"
        "early_stop = %u\n"
        "ci_target = %.17g\n"
        "ci_wave = %llu\n",
        bench.c_str(), scheme.c_str(), coreThreads,
        static_cast<unsigned long long>(workload.iterations),
        static_cast<unsigned long long>(workload.seed),
        static_cast<unsigned long long>(workload.footprintDivider),
        tcamEntries, tcamThreshold, delayBuffer,
        static_cast<unsigned long long>(campaign.injections),
        static_cast<unsigned long long>(campaign.window),
        static_cast<unsigned long long>(campaign.warmupInsts),
        static_cast<unsigned long long>(campaign.minGap),
        static_cast<unsigned long long>(campaign.maxGap),
        static_cast<unsigned long long>(campaign.forkMaxCycles),
        static_cast<unsigned long long>(campaign.seed),
        campaign.mix.renameFrac, campaign.mix.lsqFrac,
        campaign.mix.inflightFrac, campaign.forceGoldenFork ? 1 : 0,
        static_cast<unsigned long long>(campaign.trialTimeoutMs),
        campaign.earlyStop ? 1 : 0, campaign.ciTarget,
        static_cast<unsigned long long>(campaign.ciWave));
}

bool
CampaignSpec::decode(const std::string &text, CampaignSpec &out,
                     std::string &error)
{
    Config cfg;
    if (!cfg.parse(text, error))
        return false;

    CampaignSpec s;
    s.bench = cfg.getString("bench", s.bench);
    s.scheme = cfg.getString("scheme", s.scheme);
    s.coreThreads = static_cast<unsigned>(
        cfg.getU64("core_threads", s.coreThreads));
    s.workload.iterations =
        cfg.getU64("workload_iterations", s.workload.iterations);
    s.workload.seed = cfg.getU64("workload_seed", s.workload.seed);
    s.workload.footprintDivider =
        cfg.getU64("footprint_divider", s.workload.footprintDivider);
    s.workload.maxThreads = std::max(2u, s.coreThreads);
    s.tcamEntries =
        static_cast<unsigned>(cfg.getU64("tcam_entries", 0));
    s.tcamThreshold =
        static_cast<unsigned>(cfg.getU64("tcam_threshold", 0));
    s.delayBuffer =
        static_cast<unsigned>(cfg.getU64("delay_buffer", 0));
    s.campaign.injections =
        cfg.getU64("injections", s.campaign.injections);
    s.campaign.window = cfg.getU64("window", s.campaign.window);
    s.campaign.warmupInsts =
        cfg.getU64("warmup", s.campaign.warmupInsts);
    s.campaign.minGap = cfg.getU64("min_gap", s.campaign.minGap);
    s.campaign.maxGap = cfg.getU64("max_gap", s.campaign.maxGap);
    s.campaign.forkMaxCycles =
        cfg.getU64("fork_max_cycles", s.campaign.forkMaxCycles);
    s.campaign.seed = cfg.getU64("seed", s.campaign.seed);
    s.campaign.mix.renameFrac =
        cfg.getDouble("rename_frac", s.campaign.mix.renameFrac);
    s.campaign.mix.lsqFrac =
        cfg.getDouble("lsq_frac", s.campaign.mix.lsqFrac);
    s.campaign.mix.inflightFrac =
        cfg.getDouble("inflight_frac", s.campaign.mix.inflightFrac);
    s.campaign.forceGoldenFork = cfg.getBool("golden_fork", false);
    s.campaign.trialTimeoutMs = cfg.getU64("trial_timeout_ms", 0);
    s.campaign.earlyStop =
        cfg.getBool("early_stop", s.campaign.earlyStop);
    s.campaign.ciTarget =
        cfg.getDouble("ci_target", s.campaign.ciTarget);
    s.campaign.ciWave = cfg.getU64("ci_wave", s.campaign.ciWave);

    // A key this decoder does not read means the peer speaks a newer
    // spec; running with it silently dropped would break the
    // bit-identical contract, so refuse.
    const auto unknown = cfg.unknownKeys();
    if (!unknown.empty()) {
        error = "unknown spec key '" + unknown.front() + "'";
        return false;
    }
    if (!workload::find(s.bench)) {
        error = "unknown benchmark '" + s.bench + "'";
        return false;
    }
    filters::DetectorParams dp;
    if (!schemeByName(s.scheme, dp)) {
        error = "unknown scheme '" + s.scheme + "'";
        return false;
    }
    out = s;
    return true;
}

isa::Program
CampaignSpec::buildProgram() const
{
    workload::WorkloadSpec ws = workload;
    ws.maxThreads = std::max(2u, coreThreads);
    return workload::build(bench, ws);
}

pipeline::CoreParams
CampaignSpec::buildParams() const
{
    pipeline::CoreParams params;
    params.threads = coreThreads;
    if (!schemeByName(scheme, params.detector))
        fh_fatal("unknown scheme '%s'", scheme.c_str());
    if (tcamEntries)
        params.detector.tcam.entries = tcamEntries;
    if (tcamThreshold)
        params.detector.tcam.loosenThreshold = tcamThreshold;
    if (delayBuffer)
        params.delayBufferSize = delayBuffer;
    return params;
}

} // namespace fh::dist
