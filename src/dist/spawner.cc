#include "dist/spawner.hh"

#include <cerrno>
#include <cstdlib>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

namespace fh::dist
{

std::string
selfExe()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return {};
    buf[n] = '\0';
    return buf;
}

pid_t
spawnExec(const std::vector<std::string> &argv)
{
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto &a : argv)
        cargv.push_back(const_cast<char *>(a.c_str()));
    cargv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    const int devnull = ::open("/dev/null", O_RDONLY);
    if (devnull >= 0) {
        ::dup2(devnull, 0);
        ::close(devnull);
    }
    ::execv(cargv[0], cargv.data());
    _exit(127);
}

pid_t
spawnFn(const std::function<int()> &fn)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    _exit(fn());
}

bool
reapIfExited(pid_t pid, int &status)
{
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    return r == pid;
}

int
reap(pid_t pid)
{
    int status = 0;
    pid_t r;
    do {
        r = ::waitpid(pid, &status, 0);
    } while (r < 0 && errno == EINTR);
    return r == pid ? status : -1;
}

} // namespace fh::dist
