#include "dist/spawner.hh"

#include "dist/wire.hh"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <mutex>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

namespace fh::dist
{

namespace ChildGuard
{
/** Clears the inherited pid table in a freshly forked child; without
 *  this a child dying via std::exit/abort would kill its *siblings*
 *  (the table and the hooks survive fork). Internal to the spawners —
 *  deliberately not in the header. */
void resetInChild();
} // namespace ChildGuard

std::string
selfExe()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return {};
    buf[n] = '\0';
    return buf;
}

pid_t
spawnExec(const std::vector<std::string> &argv)
{
    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto &a : argv)
        cargv.push_back(const_cast<char *>(a.c_str()));
    cargv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    ChildGuard::resetInChild();
    // An inherited fabric socket keeps the stream alive after its real
    // owner dies — the peer never sees EOF (see wire.hh).
    closeFabricFdsInChild();
    const int devnull = ::open("/dev/null", O_RDONLY);
    if (devnull >= 0) {
        ::dup2(devnull, 0);
        ::close(devnull);
    }
    ::execv(cargv[0], cargv.data());
    _exit(127);
}

pid_t
spawnFn(const std::function<int()> &fn)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    ChildGuard::resetInChild();
    closeFabricFdsInChild();
    _exit(fn());
}

bool
reapIfExited(pid_t pid, int &status)
{
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    return r == pid;
}

int
reap(pid_t pid)
{
    int status = 0;
    pid_t r;
    do {
        r = ::waitpid(pid, &status, 0);
    } while (r < 0 && errno == EINTR);
    return r == pid ? status : -1;
}

namespace ChildGuard
{

namespace
{

// Fixed-size lock-free table: the SIGABRT handler may only touch
// async-signal-safe state, and fh_fatal's std::exit path must not
// allocate either. Slots hold 0 when empty; adds scan for a free
// slot, removes scan for the pid.
constexpr size_t kMaxGuarded = 256;
std::atomic<pid_t> gPids[kMaxGuarded];
std::once_flag gInstallOnce;

void
killAll(int sig)
{
    for (auto &slot : gPids) {
        const pid_t pid = slot.load(std::memory_order_relaxed);
        if (pid > 0)
            ::kill(pid, sig);
    }
}

/** Reap whatever already exited; true when the table drained. */
bool
reapExited()
{
    bool allGone = true;
    for (auto &slot : gPids) {
        const pid_t pid = slot.load(std::memory_order_relaxed);
        if (pid <= 0)
            continue;
        int status;
        if (::waitpid(pid, &status, WNOHANG) == pid)
            slot.store(0, std::memory_order_relaxed);
        else
            allGone = false;
    }
    return allGone;
}

void
atExitHook()
{
    killAll(SIGTERM);
    // Grace period for a clean drain, polled so a prompt exit stays
    // prompt; then the hammer.
    for (int i = 0; i < 100; ++i) {
        if (reapExited())
            return;
        struct timespec ts{0, 20 * 1000 * 1000};
        ::nanosleep(&ts, nullptr);
    }
    killAll(SIGKILL);
    for (auto &slot : gPids) {
        const pid_t pid = slot.load(std::memory_order_relaxed);
        if (pid > 0) {
            int status;
            ::waitpid(pid, &status, 0);
            slot.store(0, std::memory_order_relaxed);
        }
    }
}

void
abortHandler(int sig)
{
    // Async-signal-safe only: kill(2), waitpid(2), sigaction(2).
    // No grace period — the process is aborting right now.
    killAll(SIGKILL);
    for (auto &slot : gPids) {
        const pid_t pid = slot.load(std::memory_order_relaxed);
        if (pid > 0) {
            int status;
            ::waitpid(pid, &status, 0);
        }
    }
    struct sigaction sa{};
    sa.sa_handler = SIG_DFL;
    ::sigaction(sig, &sa, nullptr);
    ::raise(sig);
}

} // namespace

void
resetInChild()
{
    for (auto &slot : gPids)
        slot.store(0, std::memory_order_relaxed);
}

void
add(pid_t pid)
{
    if (pid <= 0)
        return;
    std::call_once(gInstallOnce, [] {
        std::atexit(atExitHook);
        struct sigaction sa{};
        sa.sa_handler = abortHandler;
        ::sigaction(SIGABRT, &sa, nullptr);
    });
    for (auto &slot : gPids) {
        pid_t expect = 0;
        if (slot.compare_exchange_strong(expect, pid,
                                         std::memory_order_relaxed))
            return;
    }
    // Table full: nothing guards this pid. 256 concurrent local
    // workers is far past any real dispatch; don't fail the spawn.
}

void
remove(pid_t pid)
{
    for (auto &slot : gPids) {
        pid_t expect = pid;
        if (slot.compare_exchange_strong(expect, 0,
                                         std::memory_order_relaxed))
            return;
    }
}

} // namespace ChildGuard

} // namespace fh::dist
