#include "mem/cache.hh"

#include <bit>

#include "sim/logging.hh"

namespace fh::mem
{

Cache::Cache(const CacheParams &params) : params_(params)
{
    fh_assert(params_.lineBytes > 0 && params_.ways > 0, "bad cache params");
    u64 lines = params_.sizeBytes / params_.lineBytes;
    fh_assert(lines % params_.ways == 0, "size/ways mismatch");
    numSets_ = static_cast<unsigned>(lines / params_.ways);
    fh_assert(std::has_single_bit(static_cast<u64>(numSets_)),
              "sets must be a power of two");
    tags_.resize(lines, 0);
    valid_.resize(lines, 0);
    lastUse_.resize(lines, 0);
    readyAt_.resize(lines, 0);
}

unsigned
Cache::setIndex(Addr addr) const
{
    return static_cast<unsigned>((addr / params_.lineBytes) % numSets_);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr / params_.lineBytes / numSets_;
}

bool
Cache::find(Addr addr, Cycle now, Cycle &ready_at)
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const size_t base = static_cast<size_t>(set) * params_.ways;
    ++useClock_;

    for (unsigned w = 0; w < params_.ways; ++w) {
        const size_t i = base + w;
        if (valid_[i] && tags_[i] == tag) {
            lastUse_[i] = useClock_;
            ready_at = readyAt_[i] > now ? readyAt_[i] : now;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

void
Cache::install(Addr addr, Cycle now, Cycle ready_at)
{
    (void)now;
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const size_t base = static_cast<size_t>(set) * params_.ways;
    ++useClock_;

    // Victim preference: refill of an existing line, else the last
    // invalid way, else true LRU.
    size_t victim = base;
    for (unsigned w = 0; w < params_.ways; ++w) {
        const size_t i = base + w;
        if (valid_[i] && tags_[i] == tag) {
            victim = i; // refill of an existing line
            break;
        }
        if (!valid_[i]) {
            victim = i;
        } else if (valid_[victim] && lastUse_[i] < lastUse_[victim]) {
            victim = i;
        }
    }

    valid_[victim] = 1;
    tags_[victim] = tag;
    lastUse_[victim] = useClock_;
    readyAt_[victim] = ready_at;
}

bool
Cache::probe(Addr addr) const
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const size_t base = static_cast<size_t>(set) * params_.ways;
    for (unsigned w = 0; w < params_.ways; ++w)
        if (valid_[base + w] && tags_[base + w] == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &v : valid_)
        v = 0;
}

double
Cache::missRate() const
{
    u64 total = hits_ + misses_;
    return total ? static_cast<double>(misses_) / total : 0.0;
}

} // namespace fh::mem
