#include "mem/cache.hh"

#include <bit>

#include "sim/logging.hh"

namespace fh::mem
{

Cache::Cache(const CacheParams &params) : params_(params)
{
    fh_assert(params_.lineBytes > 0 && params_.ways > 0, "bad cache params");
    u64 lines = params_.sizeBytes / params_.lineBytes;
    fh_assert(lines % params_.ways == 0, "size/ways mismatch");
    numSets_ = static_cast<unsigned>(lines / params_.ways);
    fh_assert(std::has_single_bit(static_cast<u64>(numSets_)),
              "sets must be a power of two");
    lines_.resize(lines);
}

unsigned
Cache::setIndex(Addr addr) const
{
    return static_cast<unsigned>((addr / params_.lineBytes) % numSets_);
}

Addr
Cache::tagOf(Addr addr) const
{
    return addr / params_.lineBytes / numSets_;
}

bool
Cache::find(Addr addr, Cycle now, Cycle &ready_at)
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[static_cast<size_t>(set) * params_.ways];
    ++useClock_;

    for (unsigned w = 0; w < params_.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            line.lastUse = useClock_;
            ready_at = line.readyAt > now ? line.readyAt : now;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

void
Cache::install(Addr addr, Cycle now, Cycle ready_at)
{
    (void)now;
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    Line *base = &lines_[static_cast<size_t>(set) * params_.ways];
    ++useClock_;

    Line *victim = base;
    for (unsigned w = 0; w < params_.ways; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == tag) {
            victim = &line; // refill of an existing line
            break;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock_;
    victim->readyAt = ready_at;
}

bool
Cache::probe(Addr addr) const
{
    const unsigned set = setIndex(addr);
    const Addr tag = tagOf(addr);
    const Line *base = &lines_[static_cast<size_t>(set) * params_.ways];
    for (unsigned w = 0; w < params_.ways; ++w)
        if (base[w].valid && base[w].tag == tag)
            return true;
    return false;
}

void
Cache::flush()
{
    for (auto &line : lines_)
        line.valid = false;
}

double
Cache::missRate() const
{
    u64 total = hits_ + misses_;
    return total ? static_cast<double>(misses_) / total : 0.0;
}

} // namespace fh::mem
