/**
 * @file
 * Set-associative cache timing model with true-LRU replacement and
 * in-flight fill tracking.
 *
 * The cache tracks tags only: data always comes from the coherent
 * backing Memory (one core, SMT threads share the L1s), so the cache
 * model's job is purely latency classification. Each line records when
 * its fill completes; an access that arrives while the line is still
 * in flight pays the remaining fill time (an MSHR hit), which keeps
 * squashed wrong-path and re-executed accesses from acting as free
 * prefetches.
 *
 * Line state is stored structure-of-arrays (tags / valid / lastUse /
 * readyAt), so the per-access way scan streams the tag array alone,
 * and a cache fork copies four flat vectors — 25 bytes per line
 * instead of a 32-byte padded struct — which matters at fork rates of
 * hundreds of copies per second on a megabyte-sized L2.
 */

#ifndef FH_MEM_CACHE_HH
#define FH_MEM_CACHE_HH

#include <string>
#include <vector>

#include "sim/types.hh"

namespace fh::mem
{

/** Configuration for one cache level. */
struct CacheParams
{
    std::string name = "cache";
    u64 sizeBytes = 32 * 1024;
    unsigned ways = 2;
    unsigned lineBytes = 64;
    Cycle hitLatency = 3;

    bool operator==(const CacheParams &other) const = default;
};

/** Tag-only set-associative cache with LRU replacement. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Look up addr at time now. On a hit, ready_at is when the line's
     * data is available (>= now for in-flight fills). Counts stats and
     * touches LRU.
     */
    bool find(Addr addr, Cycle now, Cycle &ready_at);

    /** Allocate addr with its fill completing at ready_at. */
    void install(Addr addr, Cycle now, Cycle ready_at);

    /** Look up addr without allocating or touching any state. */
    bool probe(Addr addr) const;

    /** Invalidate everything. */
    void flush();

    Cycle hitLatency() const { return params_.hitLatency; }
    const CacheParams &params() const { return params_; }

    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }
    double missRate() const;

    bool operator==(const Cache &other) const = default;

  private:
    unsigned setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheParams params_;
    unsigned numSets_;
    // numSets_ * ways entries each, set-major (parallel arrays).
    std::vector<Addr> tags_;
    std::vector<u8> valid_;
    std::vector<u64> lastUse_;  ///< LRU timestamps
    std::vector<Cycle> readyAt_; ///< fill completion times
    u64 useClock_ = 0;
    u64 hits_ = 0;
    u64 misses_ = 0;
};

} // namespace fh::mem

#endif // FH_MEM_CACHE_HH
