#include "mem/tlb.hh"

#include "sim/logging.hh"

namespace fh::mem
{

Tlb::Tlb(const TlbParams &params) : params_(params)
{
    fh_assert(params_.entries > 0 && params_.pageBytes > 0,
              "bad TLB params");
    entries_.resize(params_.entries);
}

bool
Tlb::access(Addr addr)
{
    const u64 page = addr / params_.pageBytes;
    ++useClock_;

    Entry &hint = entries_[mru_];
    if (hint.valid && hint.page == page) {
        hint.lastUse = useClock_;
        ++hits_;
        return true;
    }

    Entry *victim = &entries_[0];
    for (auto &entry : entries_) {
        if (entry.valid && entry.page == page) {
            entry.lastUse = useClock_;
            ++hits_;
            mru_ = static_cast<unsigned>(&entry - entries_.data());
            return true;
        }
        if (!entry.valid) {
            victim = &entry;
        } else if (victim->valid && entry.lastUse < victim->lastUse) {
            victim = &entry;
        }
    }

    victim->valid = true;
    victim->page = page;
    victim->lastUse = useClock_;
    mru_ = static_cast<unsigned>(victim - entries_.data());
    ++misses_;
    return false;
}

void
Tlb::flush()
{
    for (auto &entry : entries_)
        entry.valid = false;
}

} // namespace fh::mem
