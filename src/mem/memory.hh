/**
 * @file
 * Simulated physical memory with segment-based validity.
 *
 * Accesses are 64-bit words. The workload declares valid segments;
 * accesses outside any segment or misaligned accesses raise an access
 * fault, which the tandem fault classifier uses to bin "noisy" faults
 * (fault-induced exceptions) exactly as the paper does.
 *
 * Storage is dense per segment (flat vectors) so that copying a whole
 * machine state for a tandem fault fork is a handful of memcpys rather
 * than a hash-table rebuild.
 */

#ifndef FH_MEM_MEMORY_HH
#define FH_MEM_MEMORY_HH

#include <cstddef>
#include <vector>

#include "sim/types.hh"

namespace fh::mem
{

/** A contiguous valid address range, [base, base + size). */
struct Segment
{
    Addr base = 0;
    u64 size = 0;

    bool contains(Addr a) const { return a >= base && a < base + size; }

    bool operator==(const Segment &other) const = default;
};

/** Outcome of a memory access attempt. */
enum class AccessResult : u8
{
    Ok,        ///< access completed
    Unmapped,  ///< address outside every declared segment
    Misaligned ///< address not 8-byte aligned
};

/** Word-granular memory backed by dense per-segment storage. */
class Memory
{
  public:
    Memory() = default;

    /** Declare a valid segment (zero-filled). May not overlap. */
    void addSegment(Addr base, u64 size);
    std::vector<Segment> segments() const;

    /** Check validity without accessing. */
    AccessResult check(Addr a) const;

    /** Read the 64-bit word at a; result through value. */
    AccessResult read(Addr a, u64 &value) const;

    /** Write the 64-bit word at a. */
    AccessResult write(Addr a, u64 value);

    /** Backdoor read; returns 0 outside declared segments. */
    u64 peek(Addr a) const;
    /** Backdoor write; ignored outside declared segments. */
    void poke(Addr a, u64 value);

    /** Total words across all declared segments. */
    size_t footprintWords() const;

    /** True if all segment contents match the other memory. */
    bool sameContents(const Memory &other) const;

    bool operator==(const Memory &other) const = default;

  private:
    struct Backing
    {
        Segment seg;
        std::vector<u64> words;

        bool operator==(const Backing &other) const = default;
    };

    const Backing *find(Addr a) const;
    Backing *find(Addr a);

    std::vector<Backing> backings_;
};

} // namespace fh::mem

#endif // FH_MEM_MEMORY_HH
