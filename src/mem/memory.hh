/**
 * @file
 * Simulated physical memory with segment-based validity.
 *
 * Accesses are 64-bit words. The workload declares valid segments;
 * accesses outside any segment or misaligned accesses raise an access
 * fault, which the tandem fault classifier uses to bin "noisy" faults
 * (fault-induced exceptions) exactly as the paper does.
 *
 * Storage is dense per segment (flat vectors) behind copy-on-write
 * backings: copying a Memory — which the tandem fault framework does
 * several times per injection trial, whole-Core copies included —
 * only bumps a reference count per segment, and the first write
 * through a shared backing detaches a private copy. A fork that never
 * writes a segment never pays for it.
 *
 * Each backing also carries an incremental content digest: an XOR
 * multiset hash over (address, word) pairs of the nonzero words, kept
 * up to date in O(1) per write. The digest is a pure function of the
 * segment contents — independent of write order and of COW sharing —
 * so two segments with different digests provably differ, and the
 * tandem classifier can compare whole memories against a recorded
 * golden checkpoint in O(segments) without sweeping any words.
 */

#ifndef FH_MEM_MEMORY_HH
#define FH_MEM_MEMORY_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "sim/types.hh"

namespace fh::mem
{

/** A contiguous valid address range, [base, base + size). */
struct Segment
{
    Addr base = 0;
    u64 size = 0;

    bool contains(Addr a) const { return a >= base && a < base + size; }

    bool operator==(const Segment &other) const = default;
};

/** Outcome of a memory access attempt. */
enum class AccessResult : u8
{
    Ok,        ///< access completed
    Unmapped,  ///< address outside every declared segment
    Misaligned ///< address not 8-byte aligned
};

/** Word-granular memory backed by dense per-segment COW storage. */
class Memory
{
  public:
    Memory() = default;
    Memory(const Memory &) = default;
    Memory(Memory &&) = default;
    Memory &operator=(Memory &&) = default;

    /**
     * Copy assignment recycles storage: a backing whose target-side
     * buffer is exclusively owned (a scratch fork's privately
     * detached segment) is stashed as a spare instead of freed, and
     * the next detach copies into the spare rather than allocating.
     * A reused fork thus COWs exactly as before — only written
     * segments are ever copied — but with no allocation or page
     * churn in the steady state. Contents and digests are identical
     * either way.
     */
    Memory &operator=(const Memory &other);

    /** Declare a valid segment (zero-filled). May not overlap. */
    void addSegment(Addr base, u64 size);
    std::vector<Segment> segments() const;

    /** Check validity without accessing. */
    AccessResult check(Addr a) const;

    /** Read the 64-bit word at a; result through value. */
    AccessResult read(Addr a, u64 &value) const;

    /** Write the 64-bit word at a. */
    AccessResult write(Addr a, u64 value);

    /** Backdoor read; returns 0 outside declared segments. */
    u64 peek(Addr a) const;
    /** Backdoor write; ignored outside declared segments. */
    void poke(Addr a, u64 value);

    /** Total words across all declared segments. */
    size_t footprintWords() const;

    /** Number of declared segments (digest index space). */
    size_t segmentCount() const { return backings_.size(); }

    /**
     * Content digest of segment i (declaration order): XOR over the
     * segment's nonzero words of wordHash(addr, word). Equal contents
     * always give equal digests; unequal digests prove unequal
     * contents. Maintained incrementally by write()/poke().
     */
    u64 segmentDigest(size_t i) const { return backings_[i].digest; }

    /** True if all segment contents match the other memory. */
    bool sameContents(const Memory &other) const;

    /** Same segments and same contents (COW sharing is invisible). */
    bool operator==(const Memory &other) const
    {
        return sameContents(other);
    }

    /**
     * Hash contribution of one (address, word) pair to a segment
     * digest. Zero words contribute nothing, so a freshly declared
     * (zero-filled) segment starts at digest 0 without a sweep.
     */
    static u64 wordHash(Addr a, u64 v)
    {
        if (v == 0)
            return 0;
        u64 x = v ^ mix64(a * 0x9e3779b97f4a7c15ULL);
        return mix64(x);
    }

  private:
    /** splitmix64 finalizer: a cheap, well-mixing 64-bit permutation. */
    static u64 mix64(u64 x)
    {
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return x;
    }

    struct Backing
    {
        Segment seg;
        /** Shared until the first write after a copy; read-mostly
         *  forks of one machine state alias the same storage. */
        std::shared_ptr<std::vector<u64>> words;
        /** XOR-multiset content digest; travels with the value (a
         *  copied Memory keeps the digest even while sharing words). */
        u64 digest = 0;
        /** Retired private buffer awaiting reuse by detach(). Only
         *  consumed while exclusively held, so sharing it around via
         *  backing copies is safe, just unproductive. */
        std::shared_ptr<std::vector<u64>> spare;
    };

    const Backing *find(Addr a) const;
    Backing *find(Addr a);

    /** Give b private storage before a write lands in it. Safe when
     *  other threads hold references to the old storage: they only
     *  read it, and a stale use_count over-estimate merely causes a
     *  harmless extra copy. */
    static void detach(Backing &b)
    {
        if (b.words.use_count() <= 1)
            return;
        if (b.spare && b.spare.use_count() == 1 &&
            b.spare->size() == b.words->size()) {
            *b.spare = *b.words; // same-size copy: no allocation
            b.words = std::move(b.spare);
        } else {
            b.words = std::make_shared<std::vector<u64>>(*b.words);
        }
    }

    std::vector<Backing> backings_;
    /** Last backing hit by find(); accesses cluster per segment, so
     *  this kills the linear segment scan on the hot path. */
    mutable unsigned lastHit_ = 0;
};

} // namespace fh::mem

#endif // FH_MEM_MEMORY_HH
