/**
 * @file
 * Two-level cache hierarchy (Table 2 of the paper): private 32 KB L1I
 * and L1D, 2 MB L2, ITLB/DTLB, and a flat main-memory latency. Produces
 * per-access latencies for the pipeline timing model, honoring
 * in-flight line fills (see cache.hh).
 */

#ifndef FH_MEM_HIERARCHY_HH
#define FH_MEM_HIERARCHY_HH

#include "mem/cache.hh"
#include "mem/tlb.hh"
#include "sim/types.hh"

namespace fh::mem
{

struct HierarchyParams
{
    CacheParams l1i{"l1i", 32 * 1024, 2, 64, 3};
    CacheParams l1d{"l1d", 32 * 1024, 2, 64, 3};
    CacheParams l2{"l2", 2 * 1024 * 1024, 4, 64, 20};
    TlbParams itlb{64, 4096, 30};
    TlbParams dtlb{64, 4096, 30};
    Cycle memoryLatency = 200;

    bool operator==(const HierarchyParams &other) const = default;
};

/** The result of a timed access: total latency plus hit levels. */
struct AccessTiming
{
    Cycle latency = 0;
    bool l1Hit = false;
    bool l2Hit = false;
    bool tlbHit = false;
};

/** L1 + L2 + TLB latency model shared by the SMT contexts of a core. */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyParams &params = {});

    /** Timed instruction fetch of addr issued at cycle now. */
    AccessTiming fetch(Addr addr, Cycle now);
    /** Timed data access (loads and stores share the port model). */
    AccessTiming data(Addr addr, Cycle now);

    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const Tlb &dtlb() const { return dtlb_; }

    const HierarchyParams &params() const { return params_; }

    bool operator==(const Hierarchy &other) const = default;

  private:
    AccessTiming timed(Cache &l1, Tlb &tlb, Addr addr, Cycle now);

    HierarchyParams params_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Tlb itlb_;
    Tlb dtlb_;
};

} // namespace fh::mem

#endif // FH_MEM_HIERARCHY_HH
