#include "mem/hierarchy.hh"

namespace fh::mem
{

Hierarchy::Hierarchy(const HierarchyParams &params)
    : params_(params),
      l1i_(params.l1i),
      l1d_(params.l1d),
      l2_(params.l2),
      itlb_(params.itlb),
      dtlb_(params.dtlb)
{
}

AccessTiming
Hierarchy::timed(Cache &l1, Tlb &tlb, Addr addr, Cycle now)
{
    AccessTiming t;
    t.tlbHit = tlb.access(addr);
    Cycle start = now + (t.tlbHit ? 0 : tlb.walkLatency());

    Cycle l1_ready = 0;
    t.l1Hit = l1.find(addr, start, l1_ready);
    if (t.l1Hit) {
        t.latency = (l1_ready - now) + l1.hitLatency();
        return t;
    }

    Cycle l2_ready = 0;
    t.l2Hit = l2_.find(addr, start, l2_ready);
    Cycle data_at;
    if (t.l2Hit) {
        data_at = l2_ready + l2_.hitLatency();
    } else {
        data_at = start + l2_.hitLatency() + params_.memoryLatency;
        l2_.install(addr, start, data_at);
    }
    l1.install(addr, start, data_at);
    t.latency = (data_at - now) + l1.hitLatency();
    return t;
}

AccessTiming
Hierarchy::fetch(Addr addr, Cycle now)
{
    return timed(l1i_, itlb_, addr, now);
}

AccessTiming
Hierarchy::data(Addr addr, Cycle now)
{
    return timed(l1d_, dtlb_, addr, now);
}

} // namespace fh::mem
