#include "mem/memory.hh"

#include "sim/logging.hh"

namespace fh::mem
{

Memory &
Memory::operator=(const Memory &other)
{
    if (this == &other)
        return *this;
    if (backings_.size() != other.backings_.size()) {
        backings_ = other.backings_;
        lastHit_ = other.lastHit_;
        return *this;
    }
    for (size_t i = 0; i < backings_.size(); ++i) {
        Backing &dst = backings_[i];
        const Backing &src = other.backings_[i];
        dst.seg = src.seg;
        dst.digest = src.digest;
        if (dst.words == src.words)
            continue; // already sharing: nothing to copy
        if (dst.words && dst.words.use_count() == 1)
            dst.spare = std::move(dst.words); // recycle, don't free
        dst.words = src.words; // COW-share; detach on first write
    }
    lastHit_ = other.lastHit_;
    return *this;
}

void
Memory::addSegment(Addr base, u64 size)
{
    fh_assert(size > 0, "empty segment");
    fh_assert(base % 8 == 0 && size % 8 == 0, "unaligned segment");
    for (const auto &b : backings_) {
        bool disjoint = base + size <= b.seg.base ||
                        b.seg.base + b.seg.size <= base;
        fh_assert(disjoint, "overlapping segments");
    }
    Backing b;
    b.seg = {base, size};
    b.words = std::make_shared<std::vector<u64>>(size / 8, 0);
    backings_.push_back(std::move(b));
}

std::vector<Segment>
Memory::segments() const
{
    std::vector<Segment> out;
    out.reserve(backings_.size());
    for (const auto &b : backings_)
        out.push_back(b.seg);
    return out;
}

const Memory::Backing *
Memory::find(Addr a) const
{
    if (lastHit_ < backings_.size() &&
        backings_[lastHit_].seg.contains(a)) {
        return &backings_[lastHit_];
    }
    for (unsigned i = 0; i < backings_.size(); ++i) {
        if (backings_[i].seg.contains(a)) {
            lastHit_ = i;
            return &backings_[i];
        }
    }
    return nullptr;
}

Memory::Backing *
Memory::find(Addr a)
{
    return const_cast<Backing *>(
        static_cast<const Memory *>(this)->find(a));
}

AccessResult
Memory::check(Addr a) const
{
    if (a % 8 != 0)
        return AccessResult::Misaligned;
    return find(a) ? AccessResult::Ok : AccessResult::Unmapped;
}

AccessResult
Memory::read(Addr a, u64 &value) const
{
    if (a % 8 != 0)
        return AccessResult::Misaligned;
    const Backing *b = find(a);
    if (!b)
        return AccessResult::Unmapped;
    value = (*b->words)[(a - b->seg.base) / 8];
    return AccessResult::Ok;
}

AccessResult
Memory::write(Addr a, u64 value)
{
    if (a % 8 != 0)
        return AccessResult::Misaligned;
    Backing *b = find(a);
    if (!b)
        return AccessResult::Unmapped;
    detach(*b);
    u64 &w = (*b->words)[(a - b->seg.base) / 8];
    b->digest ^= wordHash(a, w) ^ wordHash(a, value);
    w = value;
    return AccessResult::Ok;
}

u64
Memory::peek(Addr a) const
{
    const Backing *b = a % 8 == 0 ? find(a) : nullptr;
    return b ? (*b->words)[(a - b->seg.base) / 8] : 0;
}

void
Memory::poke(Addr a, u64 value)
{
    Backing *b = a % 8 == 0 ? find(a) : nullptr;
    if (b) {
        detach(*b);
        u64 &w = (*b->words)[(a - b->seg.base) / 8];
        b->digest ^= wordHash(a, w) ^ wordHash(a, value);
        w = value;
    }
}

size_t
Memory::footprintWords() const
{
    size_t n = 0;
    for (const auto &b : backings_)
        n += b.words->size();
    return n;
}

bool
Memory::sameContents(const Memory &other) const
{
    if (backings_.size() != other.backings_.size())
        return false;
    for (size_t i = 0; i < backings_.size(); ++i) {
        const Backing &a = backings_[i];
        const Backing &b = other.backings_[i];
        if (a.seg != b.seg)
            return false;
        if (a.words == b.words)
            continue; // still sharing storage: trivially equal
        if (a.digest != b.digest)
            return false; // digests are content-determined
        if (*a.words != *b.words)
            return false;
    }
    return true;
}

} // namespace fh::mem
