/**
 * @file
 * Simple fully-associative TLB timing model (identity translation).
 *
 * Translation is identity-mapped — only the hit/miss timing matters for
 * the experiments — but a TLB miss adds a page-walk latency, which
 * contributes realistic stall variety to the baseline CPI.
 */

#ifndef FH_MEM_TLB_HH
#define FH_MEM_TLB_HH

#include <vector>

#include "sim/types.hh"

namespace fh::mem
{

struct TlbParams
{
    unsigned entries = 64;
    unsigned pageBytes = 4096;
    Cycle walkLatency = 30;

    bool operator==(const TlbParams &other) const = default;
};

/** Fully-associative LRU TLB tracking page-number tags. */
class Tlb
{
  public:
    explicit Tlb(const TlbParams &params);

    /** Touch the page of addr; returns true on hit. */
    bool access(Addr addr);

    void flush();

    /** The MRU hint is a pure accelerator, not TLB state. */
    bool operator==(const Tlb &other) const
    {
        return params_ == other.params_ && entries_ == other.entries_ &&
               useClock_ == other.useClock_ && hits_ == other.hits_ &&
               misses_ == other.misses_;
    }

    Cycle walkLatency() const { return params_.walkLatency; }
    u64 hits() const { return hits_; }
    u64 misses() const { return misses_; }

  private:
    struct Entry
    {
        u64 page = 0;
        bool valid = false;
        u64 lastUse = 0;

        bool operator==(const Entry &other) const = default;
    };

    TlbParams params_;
    std::vector<Entry> entries_;
    /** Index of the last hit: page locality makes back-to-back
     *  accesses land on the same entry, skipping the CAM scan. Pages
     *  are unique across entries, so the shortcut returns exactly
     *  what the scan would. */
    unsigned mru_ = 0;
    u64 useClock_ = 0;
    u64 hits_ = 0;
    u64 misses_ = 0;
};

} // namespace fh::mem

#endif // FH_MEM_TLB_HH
