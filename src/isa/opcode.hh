/**
 * @file
 * Opcodes of the FH-RISC target: a minimal 64-bit RISC instruction set
 * rich enough to express the synthetic workloads (loop nests, pointer
 * chases, hash kernels) whose load/store value streams exercise
 * FaultHound's filters.
 */

#ifndef FH_ISA_OPCODE_HH
#define FH_ISA_OPCODE_HH

#include <string_view>

#include "sim/types.hh"

namespace fh::isa
{

enum class Op : u8
{
    Nop,
    Halt,
    // Register-register ALU
    Add,
    Sub,
    And,
    Or,
    Xor,
    Sll,
    Srl,
    Sra,
    Mul,
    SltU, ///< rd = (rs1 < rs2) unsigned
    // Register-immediate ALU
    Addi,
    Andi,
    Ori,
    Xori,
    Slli,
    Srli,
    Li, ///< rd = imm (full 64-bit immediate)
    // Memory (64-bit words): address = rs1 + imm
    Ld,
    St, ///< mem[rs1 + imm] = rs2
    // Control: direct targets, compare rs1 vs rs2
    Beq,
    Bne,
    Blt, ///< signed less-than
    Bge, ///< signed greater-or-equal
    Jmp,

    NumOps
};

/** Coarse class used by the pipeline for latency and port selection. */
enum class OpClass : u8
{
    Nop,
    IntAlu,
    IntMul,
    Load,
    Store,
    Branch,
    Halt
};

OpClass classOf(Op op);
std::string_view nameOf(Op op);

inline bool isLoad(Op op) { return op == Op::Ld; }
inline bool isStore(Op op) { return op == Op::St; }
inline bool isMemory(Op op) { return isLoad(op) || isStore(op); }
inline bool
isBranch(Op op)
{
    return op == Op::Beq || op == Op::Bne || op == Op::Blt ||
           op == Op::Bge || op == Op::Jmp;
}

/** True if the op is a conditional (direction-predicted) branch. */
inline bool
isCondBranch(Op op)
{
    return isBranch(op) && op != Op::Jmp;
}

bool writesReg(Op op);
bool readsRs1(Op op);
bool readsRs2(Op op);

/** Execution latency in cycles once issued (memory adds cache time). */
Cycle execLatency(Op op);

} // namespace fh::isa

#endif // FH_ISA_OPCODE_HH
