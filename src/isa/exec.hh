/**
 * @file
 * Shared execution semantics for FH-RISC. Both the functional (golden)
 * model and the timing pipeline evaluate instructions through these
 * helpers, guaranteeing identical semantics in both models.
 */

#ifndef FH_ISA_EXEC_HH
#define FH_ISA_EXEC_HH

#include "isa/instruction.hh"
#include "sim/types.hh"

namespace fh::isa
{

/** Compute the result of an ALU (register or immediate) instruction. */
u64 aluCompute(const Instruction &inst, u64 a, u64 b);

/** Direction of a conditional branch given its operand values. */
bool branchTaken(Op op, u64 a, u64 b);

/** Effective address of a load or store. */
inline Addr
effectiveAddr(const Instruction &inst, u64 base)
{
    return base + static_cast<u64>(inst.imm);
}

} // namespace fh::isa

#endif // FH_ISA_EXEC_HH
