/**
 * @file
 * A self-contained FH-RISC program: text, initial data image, and the
 * valid memory segments. Produced by the workload generators.
 */

#ifndef FH_ISA_PROGRAM_HH
#define FH_ISA_PROGRAM_HH

#include <string>
#include <utility>
#include <vector>

#include "isa/instruction.hh"
#include "mem/memory.hh"
#include "sim/types.hh"

namespace fh::isa
{

/** A complete program image. */
struct Program
{
    std::string name;
    std::vector<Instruction> text;
    /** Valid data segments (registered with the Memory on load). */
    std::vector<mem::Segment> segments;
    /** Initial (addr, value) words of the data image. */
    std::vector<std::pair<Addr, u64>> data;
    /** Base address of the text for I-cache modeling. */
    Addr textBase = 0x10000000;
    /**
     * Per-thread data base addresses. By convention r1 is initialized
     * to threadBases[tid] and all data addressing is r1-relative, so
     * SMT contexts (and SRT trailing copies) run the same text over
     * disjoint footprints.
     */
    std::vector<u64> threadBases;

    /** Fetch address of the instruction at index pc. */
    Addr fetchAddr(u64 pc) const { return textBase + pc * 8; }

    /** r1 value for the given hardware thread. */
    u64 baseOf(unsigned tid) const
    {
        return threadBases.empty() ? 0
                                   : threadBases[tid % threadBases.size()];
    }

    /** Register segments and write the initial image into memory. */
    void load(mem::Memory &memory) const;
};

/**
 * Incremental program builder with forward-branch patching, used by the
 * workload generators.
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name);

    /** Append an instruction; returns its index. */
    u32 emit(const Instruction &inst);

    /** Index the next emitted instruction will get. */
    u32 here() const { return static_cast<u32>(prog_.text.size()); }

    /** Point the branch/jump at index at to the next instruction. */
    void patchTargetHere(u32 at);
    /** Point the branch/jump at index at to target. */
    void patchTarget(u32 at, u32 target);

    /** Declare a data segment. */
    void addSegment(Addr base, u64 size);
    /** Add an initial data word. */
    void initWord(Addr addr, u64 value);

    /** Finish: appends a Halt if the program does not end in one. */
    Program take();

  private:
    Program prog_;
};

} // namespace fh::isa

#endif // FH_ISA_PROGRAM_HH
