#include "isa/exec.hh"

#include "sim/logging.hh"

namespace fh::isa
{

u64
aluCompute(const Instruction &inst, u64 a, u64 b)
{
    const u64 imm = static_cast<u64>(inst.imm);
    switch (inst.op) {
      case Op::Add: return a + b;
      case Op::Sub: return a - b;
      case Op::And: return a & b;
      case Op::Or: return a | b;
      case Op::Xor: return a ^ b;
      case Op::Sll: return a << (b & 63);
      case Op::Srl: return a >> (b & 63);
      case Op::Sra:
        return static_cast<u64>(static_cast<i64>(a) >> (b & 63));
      case Op::Mul: return a * b;
      case Op::SltU: return a < b ? 1 : 0;
      case Op::Addi: return a + imm;
      case Op::Andi: return a & imm;
      case Op::Ori: return a | imm;
      case Op::Xori: return a ^ imm;
      case Op::Slli: return a << (imm & 63);
      case Op::Srli: return a >> (imm & 63);
      case Op::Li: return imm;
      default:
        fh_panic("aluCompute on non-ALU op %s", nameOf(inst.op).data());
    }
}

bool
branchTaken(Op op, u64 a, u64 b)
{
    switch (op) {
      case Op::Beq: return a == b;
      case Op::Bne: return a != b;
      case Op::Blt: return static_cast<i64>(a) < static_cast<i64>(b);
      case Op::Bge: return static_cast<i64>(a) >= static_cast<i64>(b);
      case Op::Jmp: return true;
      default:
        fh_panic("branchTaken on non-branch op %s", nameOf(op).data());
    }
}

} // namespace fh::isa
