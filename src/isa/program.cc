#include "isa/program.hh"

#include "sim/logging.hh"

namespace fh::isa
{

void
Program::load(mem::Memory &memory) const
{
    for (const auto &seg : segments)
        memory.addSegment(seg.base, seg.size);
    for (const auto &[addr, value] : data) {
        auto res = memory.write(addr, value);
        fh_assert(res == mem::AccessResult::Ok,
                  "initial data word outside declared segments");
    }
}

ProgramBuilder::ProgramBuilder(std::string name)
{
    prog_.name = std::move(name);
}

u32
ProgramBuilder::emit(const Instruction &inst)
{
    u32 idx = here();
    prog_.text.push_back(inst);
    return idx;
}

void
ProgramBuilder::patchTargetHere(u32 at)
{
    patchTarget(at, here());
}

void
ProgramBuilder::patchTarget(u32 at, u32 target)
{
    fh_assert(at < prog_.text.size(), "patch index out of range");
    fh_assert(isBranch(prog_.text[at].op), "patching a non-branch");
    prog_.text[at].target = target;
}

void
ProgramBuilder::addSegment(Addr base, u64 size)
{
    prog_.segments.push_back({base, size});
}

void
ProgramBuilder::initWord(Addr addr, u64 value)
{
    prog_.data.emplace_back(addr, value);
}

Program
ProgramBuilder::take()
{
    if (prog_.text.empty() || prog_.text.back().op != Op::Halt)
        prog_.text.push_back(makeHalt());
    return std::move(prog_);
}

} // namespace fh::isa
