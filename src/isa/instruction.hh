/**
 * @file
 * Static instruction representation and disassembly.
 */

#ifndef FH_ISA_INSTRUCTION_HH
#define FH_ISA_INSTRUCTION_HH

#include <string>

#include "isa/opcode.hh"
#include "sim/types.hh"

namespace fh::isa
{

/** Number of architectural integer registers. r0 is hardwired zero. */
constexpr unsigned numArchRegs = 32;

/**
 * One static FH-RISC instruction. PCs are instruction indices into the
 * program (word-addressed text); branch targets are static indices.
 */
struct Instruction
{
    Op op = Op::Nop;
    u8 rd = 0;
    u8 rs1 = 0;
    u8 rs2 = 0;
    i64 imm = 0;
    u32 target = 0; ///< branch/jump destination (instruction index)

    bool writesReg() const { return isa::writesReg(op) && rd != 0; }
    bool readsRs1() const { return isa::readsRs1(op); }
    bool readsRs2() const { return isa::readsRs2(op); }

    bool operator==(const Instruction &other) const = default;
};

/** Human-readable rendering, e.g. "add r3, r1, r2". */
std::string disassemble(const Instruction &inst);

// Assembler-style constructors.
Instruction makeNop();
Instruction makeHalt();
Instruction makeRRR(Op op, u8 rd, u8 rs1, u8 rs2);
Instruction makeRRI(Op op, u8 rd, u8 rs1, i64 imm);
Instruction makeLi(u8 rd, i64 imm);
Instruction makeLd(u8 rd, u8 rs1, i64 imm);
Instruction makeSt(u8 rs1, u8 rs2, i64 imm);
Instruction makeBranch(Op op, u8 rs1, u8 rs2, u32 target);
Instruction makeJmp(u32 target);

} // namespace fh::isa

#endif // FH_ISA_INSTRUCTION_HH
