#include "isa/opcode.hh"

#include "sim/logging.hh"

namespace fh::isa
{

OpClass
classOf(Op op)
{
    switch (op) {
      case Op::Nop:
        return OpClass::Nop;
      case Op::Halt:
        return OpClass::Halt;
      case Op::Mul:
        return OpClass::IntMul;
      case Op::Ld:
        return OpClass::Load;
      case Op::St:
        return OpClass::Store;
      case Op::Beq:
      case Op::Bne:
      case Op::Blt:
      case Op::Bge:
      case Op::Jmp:
        return OpClass::Branch;
      default:
        return OpClass::IntAlu;
    }
}

std::string_view
nameOf(Op op)
{
    switch (op) {
      case Op::Nop: return "nop";
      case Op::Halt: return "halt";
      case Op::Add: return "add";
      case Op::Sub: return "sub";
      case Op::And: return "and";
      case Op::Or: return "or";
      case Op::Xor: return "xor";
      case Op::Sll: return "sll";
      case Op::Srl: return "srl";
      case Op::Sra: return "sra";
      case Op::Mul: return "mul";
      case Op::SltU: return "sltu";
      case Op::Addi: return "addi";
      case Op::Andi: return "andi";
      case Op::Ori: return "ori";
      case Op::Xori: return "xori";
      case Op::Slli: return "slli";
      case Op::Srli: return "srli";
      case Op::Li: return "li";
      case Op::Ld: return "ld";
      case Op::St: return "st";
      case Op::Beq: return "beq";
      case Op::Bne: return "bne";
      case Op::Blt: return "blt";
      case Op::Bge: return "bge";
      case Op::Jmp: return "jmp";
      default: return "???";
    }
}

bool
writesReg(Op op)
{
    switch (classOf(op)) {
      case OpClass::IntAlu:
      case OpClass::IntMul:
      case OpClass::Load:
        return true;
      default:
        return false;
    }
}

bool
readsRs1(Op op)
{
    switch (op) {
      case Op::Nop:
      case Op::Halt:
      case Op::Li:
      case Op::Jmp:
        return false;
      default:
        return true;
    }
}

bool
readsRs2(Op op)
{
    switch (op) {
      case Op::Add:
      case Op::Sub:
      case Op::And:
      case Op::Or:
      case Op::Xor:
      case Op::Sll:
      case Op::Srl:
      case Op::Sra:
      case Op::Mul:
      case Op::SltU:
      case Op::St:
      case Op::Beq:
      case Op::Bne:
      case Op::Blt:
      case Op::Bge:
        return true;
      default:
        return false;
    }
}

Cycle
execLatency(Op op)
{
    switch (classOf(op)) {
      case OpClass::IntMul:
        return 3;
      case OpClass::Load:
      case OpClass::Store:
        return 1; // address generation; cache time added separately
      default:
        return 1;
    }
}

} // namespace fh::isa
