/**
 * @file
 * Functional (architecture-level) executor. Runs a Program one
 * instruction at a time against a Memory; the tandem fault framework
 * uses it as the golden oracle, and the timing pipeline's final
 * architectural state is property-tested against it.
 */

#ifndef FH_ISA_FUNCTIONAL_HH
#define FH_ISA_FUNCTIONAL_HH

#include <array>

#include "isa/exec.hh"
#include "isa/program.hh"
#include "mem/memory.hh"
#include "sim/types.hh"

namespace fh::isa
{

/** Architectural trap kinds; any trap is a "noisy" fault symptom. */
enum class Trap : u8
{
    None,
    MemUnmapped,
    MemMisaligned,
    BadPc
};

/** Architectural register + PC state of one hardware thread. */
struct ArchState
{
    std::array<u64, numArchRegs> regs{};
    u64 pc = 0;
    bool halted = false;

    bool operator==(const ArchState &other) const = default;
};

/** Initial architectural state of thread tid for a program. */
ArchState initialState(const Program &prog, unsigned tid);

/** splitmix64 finalizer; the per-term mixer behind the O(1)
 *  architectural-state digest (DESIGN.md "Arch-digest early exit"). */
constexpr u64
digestMix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** One register's digest term. Binding the architectural index into
 *  the mix keeps the XOR combination order-free yet position-aware. */
constexpr u64
digestRegTerm(unsigned arch, u64 value)
{
    return digestMix64(value + (u64(arch) + 1) * 0x9e3779b97f4a7c15ULL);
}

/** The PC's digest term (salted so pc==reg-value collisions mix). */
constexpr u64
digestPcTerm(u64 pc)
{
    return digestMix64(pc ^ 0xa5a5a5a55a5a5a5aULL);
}

/** XOR-ed into the digest while the thread is halted. */
inline constexpr u64 kDigestHaltedSalt = 0xc3c3c3c33c3c3c3cULL;

/**
 * Digest of one thread's architectural state: XOR of the per-register
 * terms, the PC term, and the halted salt. XOR combination makes the
 * digest O(1)-maintainable at commit: replacing register r's value
 * costs `d ^= digestRegTerm(r, old) ^ digestRegTerm(r, new)`.
 * Collision probability per compare is ~2^-64, same acceptance as the
 * PR 3 incremental memory digests.
 */
constexpr u64
archStateDigest(const ArchState &s)
{
    u64 d = digestPcTerm(s.pc);
    for (unsigned r = 0; r < numArchRegs; ++r)
        d ^= digestRegTerm(r, s.regs[r]);
    if (s.halted)
        d ^= kDigestHaltedSalt;
    return d;
}

/**
 * Execute one instruction of prog against state/memory. This is the
 * single source of truth for FH-RISC semantics: the Functional
 * executor and the timing core's oracle threads both call it.
 */
Trap stepArch(const Program &prog, mem::Memory &memory, ArchState &state);

/**
 * Single-stepping functional executor. Copyable; holds a pointer to the
 * program (immutable, shared) and a reference-wrapped memory.
 */
class Functional
{
  public:
    Functional(const Program *prog, mem::Memory *memory);

    /** Execute one instruction. Returns the trap raised, if any. */
    Trap step();

    /** Execute up to maxInsts instructions or until halt/trap. Returns
     *  the number of instructions retired. */
    u64 run(u64 max_insts);

    const ArchState &state() const { return state_; }
    ArchState &state() { return state_; }

    bool halted() const { return state_.halted; }
    u64 retired() const { return retired_; }
    Trap lastTrap() const { return trap_; }

    const Program &program() const { return *prog_; }
    mem::Memory &memory() { return *memory_; }

  private:
    const Program *prog_;
    mem::Memory *memory_;
    ArchState state_;
    u64 retired_ = 0;
    Trap trap_ = Trap::None;
};

} // namespace fh::isa

#endif // FH_ISA_FUNCTIONAL_HH
