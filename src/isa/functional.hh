/**
 * @file
 * Functional (architecture-level) executor. Runs a Program one
 * instruction at a time against a Memory; the tandem fault framework
 * uses it as the golden oracle, and the timing pipeline's final
 * architectural state is property-tested against it.
 */

#ifndef FH_ISA_FUNCTIONAL_HH
#define FH_ISA_FUNCTIONAL_HH

#include <array>

#include "isa/exec.hh"
#include "isa/program.hh"
#include "mem/memory.hh"
#include "sim/types.hh"

namespace fh::isa
{

/** Architectural trap kinds; any trap is a "noisy" fault symptom. */
enum class Trap : u8
{
    None,
    MemUnmapped,
    MemMisaligned,
    BadPc
};

/** Architectural register + PC state of one hardware thread. */
struct ArchState
{
    std::array<u64, numArchRegs> regs{};
    u64 pc = 0;
    bool halted = false;

    bool operator==(const ArchState &other) const = default;
};

/** Initial architectural state of thread tid for a program. */
ArchState initialState(const Program &prog, unsigned tid);

/**
 * Execute one instruction of prog against state/memory. This is the
 * single source of truth for FH-RISC semantics: the Functional
 * executor and the timing core's oracle threads both call it.
 */
Trap stepArch(const Program &prog, mem::Memory &memory, ArchState &state);

/**
 * Single-stepping functional executor. Copyable; holds a pointer to the
 * program (immutable, shared) and a reference-wrapped memory.
 */
class Functional
{
  public:
    Functional(const Program *prog, mem::Memory *memory);

    /** Execute one instruction. Returns the trap raised, if any. */
    Trap step();

    /** Execute up to maxInsts instructions or until halt/trap. Returns
     *  the number of instructions retired. */
    u64 run(u64 max_insts);

    const ArchState &state() const { return state_; }
    ArchState &state() { return state_; }

    bool halted() const { return state_.halted; }
    u64 retired() const { return retired_; }
    Trap lastTrap() const { return trap_; }

    const Program &program() const { return *prog_; }
    mem::Memory &memory() { return *memory_; }

  private:
    const Program *prog_;
    mem::Memory *memory_;
    ArchState state_;
    u64 retired_ = 0;
    Trap trap_ = Trap::None;
};

} // namespace fh::isa

#endif // FH_ISA_FUNCTIONAL_HH
