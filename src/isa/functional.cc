#include "isa/functional.hh"

#include "sim/logging.hh"

namespace fh::isa
{

namespace
{

Trap
trapFor(mem::AccessResult res)
{
    switch (res) {
      case mem::AccessResult::Ok:
        return Trap::None;
      case mem::AccessResult::Unmapped:
        return Trap::MemUnmapped;
      case mem::AccessResult::Misaligned:
        return Trap::MemMisaligned;
    }
    return Trap::None;
}

} // namespace

ArchState
initialState(const Program &prog, unsigned tid)
{
    ArchState state;
    state.regs[1] = prog.baseOf(tid);
    return state;
}

Trap
stepArch(const Program &prog, mem::Memory &memory, ArchState &state)
{
    if (state.halted)
        return Trap::None;

    if (state.pc >= prog.text.size()) {
        state.halted = true;
        return Trap::BadPc;
    }

    const Instruction &inst = prog.text[state.pc];
    const u64 a = state.regs[inst.rs1];
    const u64 b = state.regs[inst.rs2];
    u64 next_pc = state.pc + 1;

    switch (classOf(inst.op)) {
      case OpClass::Nop:
        break;
      case OpClass::Halt:
        state.halted = true;
        break;
      case OpClass::IntAlu:
      case OpClass::IntMul:
        if (inst.rd != 0)
            state.regs[inst.rd] = aluCompute(inst, a, b);
        break;
      case OpClass::Load: {
        u64 value = 0;
        Trap t = trapFor(memory.read(effectiveAddr(inst, a), value));
        if (t != Trap::None) {
            state.halted = true;
            return t;
        }
        if (inst.rd != 0)
            state.regs[inst.rd] = value;
        break;
      }
      case OpClass::Store: {
        Trap t = trapFor(memory.write(effectiveAddr(inst, a), b));
        if (t != Trap::None) {
            state.halted = true;
            return t;
        }
        break;
      }
      case OpClass::Branch:
        if (branchTaken(inst.op, a, b))
            next_pc = inst.target;
        break;
    }

    state.regs[0] = 0;
    if (!state.halted)
        state.pc = next_pc;
    return Trap::None;
}

Functional::Functional(const Program *prog, mem::Memory *memory)
    : prog_(prog), memory_(memory)
{
    fh_assert(prog_ && memory_, "null program/memory");
    state_ = initialState(*prog_, 0);
}

Trap
Functional::step()
{
    if (state_.halted)
        return Trap::None;
    Trap t = stepArch(*prog_, *memory_, state_);
    if (t != Trap::None) {
        trap_ = t;
        return t;
    }
    ++retired_;
    return Trap::None;
}

u64
Functional::run(u64 max_insts)
{
    u64 n = 0;
    while (n < max_insts && !state_.halted) {
        if (step() != Trap::None)
            break;
        ++n;
    }
    return n;
}

} // namespace fh::isa
