#include "isa/instruction.hh"

#include "sim/logging.hh"

namespace fh::isa
{

std::string
disassemble(const Instruction &inst)
{
    const char *name = nameOf(inst.op).data();
    switch (inst.op) {
      case Op::Nop:
      case Op::Halt:
        return name;
      case Op::Li:
        return csprintf("%s r%u, %lld", name, inst.rd,
                        static_cast<long long>(inst.imm));
      case Op::Addi:
      case Op::Andi:
      case Op::Ori:
      case Op::Xori:
      case Op::Slli:
      case Op::Srli:
        return csprintf("%s r%u, r%u, %lld", name, inst.rd, inst.rs1,
                        static_cast<long long>(inst.imm));
      case Op::Ld:
        return csprintf("%s r%u, [r%u + %lld]", name, inst.rd, inst.rs1,
                        static_cast<long long>(inst.imm));
      case Op::St:
        return csprintf("%s [r%u + %lld], r%u", name, inst.rs1,
                        static_cast<long long>(inst.imm), inst.rs2);
      case Op::Beq:
      case Op::Bne:
      case Op::Blt:
      case Op::Bge:
        return csprintf("%s r%u, r%u, @%u", name, inst.rs1, inst.rs2,
                        inst.target);
      case Op::Jmp:
        return csprintf("%s @%u", name, inst.target);
      default:
        return csprintf("%s r%u, r%u, r%u", name, inst.rd, inst.rs1,
                        inst.rs2);
    }
}

Instruction
makeNop()
{
    return {};
}

Instruction
makeHalt()
{
    Instruction inst;
    inst.op = Op::Halt;
    return inst;
}

Instruction
makeRRR(Op op, u8 rd, u8 rs1, u8 rs2)
{
    fh_assert(classOf(op) == OpClass::IntAlu || classOf(op) == OpClass::IntMul,
              "makeRRR on non-ALU op");
    Instruction inst;
    inst.op = op;
    inst.rd = rd;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    return inst;
}

Instruction
makeRRI(Op op, u8 rd, u8 rs1, i64 imm)
{
    Instruction inst;
    inst.op = op;
    inst.rd = rd;
    inst.rs1 = rs1;
    inst.imm = imm;
    return inst;
}

Instruction
makeLi(u8 rd, i64 imm)
{
    Instruction inst;
    inst.op = Op::Li;
    inst.rd = rd;
    inst.imm = imm;
    return inst;
}

Instruction
makeLd(u8 rd, u8 rs1, i64 imm)
{
    Instruction inst;
    inst.op = Op::Ld;
    inst.rd = rd;
    inst.rs1 = rs1;
    inst.imm = imm;
    return inst;
}

Instruction
makeSt(u8 rs1, u8 rs2, i64 imm)
{
    Instruction inst;
    inst.op = Op::St;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    inst.imm = imm;
    return inst;
}

Instruction
makeBranch(Op op, u8 rs1, u8 rs2, u32 target)
{
    fh_assert(isCondBranch(op), "makeBranch on non-branch op");
    Instruction inst;
    inst.op = op;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    inst.target = target;
    return inst;
}

Instruction
makeJmp(u32 target)
{
    Instruction inst;
    inst.op = Op::Jmp;
    inst.target = target;
    return inst;
}

} // namespace fh::isa
