/**
 * @file
 * The exec runtime and its determinism contract: parallelFor covers
 * every index exactly once under concurrency, exceptions propagate,
 * the progress meter counts concurrent ticks, and — the property the
 * whole subsystem exists for — runCampaign produces bit-identical
 * CampaignResults no matter how many worker threads execute it.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "exec/progress.hh"
#include "exec/thread_pool.hh"
#include "fault/campaign.hh"
#include "workload/workload.hh"

using namespace fh;

namespace
{

isa::Program
prog(const std::string &name = "ocean")
{
    workload::WorkloadSpec spec;
    spec.maxThreads = 2;
    spec.footprintDivider = 64;
    return workload::build(name, spec);
}

pipeline::CoreParams
fhParams()
{
    pipeline::CoreParams p;
    p.detector = filters::DetectorParams::faultHound();
    return p;
}

void
expectIdentical(const fault::CampaignResult &a,
                const fault::CampaignResult &b)
{
    EXPECT_EQ(a.injected, b.injected);
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.noisy, b.noisy);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.recovered, b.recovered);
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.uncovered, b.uncovered);
    EXPECT_EQ(a.bins.covered, b.bins.covered);
    EXPECT_EQ(a.bins.secondLevelMasked, b.bins.secondLevelMasked);
    EXPECT_EQ(a.bins.completedReg, b.bins.completedReg);
    EXPECT_EQ(a.bins.archReg, b.bins.archReg);
    EXPECT_EQ(a.bins.renameUncovered, b.bins.renameUncovered);
    EXPECT_EQ(a.bins.noTrigger, b.bins.noTrigger);
    EXPECT_EQ(a.bins.other, b.bins.other);
    EXPECT_EQ(a.trialErrors, b.trialErrors);
    EXPECT_EQ(a.hungBare, b.hungBare);
    EXPECT_EQ(a.hungProtected, b.hungProtected);
    EXPECT_EQ(a.partial, b.partial);
}

} // namespace

TEST(ThreadPool, ResolveThreadsNeverZero)
{
    EXPECT_GE(exec::hardwareThreads(), 1u);
    EXPECT_GE(exec::resolveThreads(0), 1u);
    EXPECT_EQ(exec::resolveThreads(3), 3u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    exec::ThreadPool pool(4);
    const u64 n = 10007; // prime, so no grain divides it evenly
    std::vector<std::atomic<unsigned>> hits(n);
    for (u64 grain : {u64{1}, u64{3}, u64{64}, u64{20000}}) {
        for (auto &h : hits)
            h.store(0);
        pool.parallelFor(n, grain, [&](u64 i) { hits[i].fetch_add(1); });
        for (u64 i = 0; i < n; ++i)
            ASSERT_EQ(hits[i].load(), 1u)
                << "index " << i << " grain " << grain;
    }
}

TEST(ThreadPool, ReusableAcrossManySmallLoops)
{
    exec::ThreadPool pool(3);
    std::atomic<u64> sum{0};
    for (int round = 0; round < 50; ++round)
        pool.parallelFor(10, [&](u64 i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 50u * 55u);
}

TEST(ThreadPool, EmptyAndSingletonLoops)
{
    exec::ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(0, [&](u64) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](u64 i) { calls += static_cast<int>(i) + 1; });
    EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, SingleThreadRunsInOrder)
{
    exec::ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    std::vector<u64> order;
    pool.parallelFor(100, [&](u64 i) { order.push_back(i); });
    std::vector<u64> want(100);
    std::iota(want.begin(), want.end(), 0);
    EXPECT_EQ(order, want);
}

TEST(ThreadPool, ExceptionPropagatesToCaller)
{
    exec::ThreadPool pool(4);
    std::atomic<u64> ran{0};
    EXPECT_THROW(pool.parallelFor(64,
                                  [&](u64 i) {
                                      ran.fetch_add(1);
                                      if (i == 13)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    // Once the failure is latched, the remaining chunks are skipped —
    // not silently counted as done — and every index is accounted for
    // as either executed (including the one that threw) or skipped.
    EXPECT_GE(ran.load(), 1u);
    EXPECT_LE(ran.load(), 64u);
    EXPECT_EQ(ran.load() + pool.lastSkipped(), 64u);
    // A clean loop resets the skip accounting.
    pool.parallelFor(8, [](u64) {});
    EXPECT_EQ(pool.lastSkipped(), 0u);
}

TEST(ThreadPool, SerialExceptionReportsSkipped)
{
    exec::ThreadPool pool(1);
    u64 ran = 0;
    EXPECT_THROW(pool.parallelFor(10,
                                  [&](u64 i) {
                                      ++ran;
                                      if (i == 3)
                                          throw std::runtime_error("boom");
                                  }),
                 std::runtime_error);
    EXPECT_EQ(ran, 4u);
    EXPECT_EQ(pool.lastSkipped(), 6u);
}

TEST(ThreadPool, OneShotHelper)
{
    std::atomic<u64> sum{0};
    exec::parallelFor(4, 1000, [&](u64 i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 999u * 1000u / 2);
}

TEST(ProgressMeter, CountsConcurrentTicks)
{
    exec::ProgressMeter meter("test", 5000, /*interval_ms=*/1u << 30);
    exec::ThreadPool pool(4);
    pool.parallelFor(5000, [&](u64) { meter.tick(); });
    EXPECT_EQ(meter.done(), 5000u);
    EXPECT_EQ(meter.total(), 5000u);
    meter.finish();
}

TEST(CampaignParallel, BitIdenticalFor1And4Threads)
{
    auto program = prog();
    fault::CampaignConfig cfg;
    cfg.injections = 24;
    cfg.window = 300;
    cfg.seed = 77;

    cfg.threads = 1;
    auto serial = fault::runCampaign(fhParams(), &program, cfg);
    EXPECT_EQ(serial.injected, 24u);

    cfg.threads = 4;
    auto parallel = fault::runCampaign(fhParams(), &program, cfg);
    expectIdentical(serial, parallel);
}

TEST(CampaignParallel, BitIdenticalWithoutDetector)
{
    // The scheme=None early-out path shards identically too.
    auto program = prog();
    fault::CampaignConfig cfg;
    cfg.injections = 16;
    cfg.window = 300;
    cfg.seed = 5;
    pipeline::CoreParams p;
    p.detector = filters::DetectorParams::none();

    cfg.threads = 1;
    auto serial = fault::runCampaign(p, &program, cfg);
    cfg.threads = 3;
    auto parallel = fault::runCampaign(p, &program, cfg);
    expectIdentical(serial, parallel);
}

TEST(CampaignParallel, EnvThreadsMatchesSerial)
{
    // CI runs this binary under FH_THREADS=1 and FH_THREADS=4; the
    // campaign must agree with the serial reference either way.
    const char *env = std::getenv("FH_THREADS");
    const unsigned env_threads = static_cast<unsigned>(
        env ? std::strtoul(env, nullptr, 0) : 0);

    auto program = prog();
    fault::CampaignConfig cfg;
    cfg.injections = 16;
    cfg.window = 300;
    cfg.seed = 123;

    cfg.threads = 1;
    auto serial = fault::runCampaign(fhParams(), &program, cfg);
    cfg.threads = env_threads;
    auto parallel = fault::runCampaign(fhParams(), &program, cfg);
    expectIdentical(serial, parallel);
}

TEST(CampaignParallel, ProgressTicksOncePerTrial)
{
    auto program = prog();
    fault::CampaignConfig cfg;
    cfg.injections = 12;
    cfg.window = 300;
    cfg.threads = 4;
    exec::ProgressMeter meter("campaign", cfg.injections,
                              /*interval_ms=*/1u << 30);
    cfg.progress = &meter;
    auto r = fault::runCampaign(fhParams(), &program, cfg);
    EXPECT_EQ(meter.done(), r.injected);
}
