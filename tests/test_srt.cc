/**
 * @file
 * The idealized SRT / SRT-iso comparison model (Section 4): trailing
 * threads run with perfect branch direction and L1-hit loads, consume
 * resources, and halt after their coverage-scaled budget.
 */

#include <gtest/gtest.h>

#include "redundancy/srt.hh"
#include "workload/workload.hh"

using namespace fh;
using namespace fh::redundancy;

namespace
{

isa::Program
prog4(const std::string &name = "ocean")
{
    workload::WorkloadSpec spec;
    spec.maxThreads = 4;
    spec.footprintDivider = 64;
    return workload::build(name, spec);
}

} // namespace

TEST(Srt, ParamsDoubleThreadsAndDropDetector)
{
    pipeline::CoreParams base;
    base.detector = filters::DetectorParams::faultHound();
    auto params = srtParams(base);
    EXPECT_EQ(params.threads, base.threads * 2);
    EXPECT_EQ(params.detector.scheme, filters::Scheme::None);
}

TEST(Srt, TrailingThreadsHaltAtCoverageBudget)
{
    auto prog = prog4();
    pipeline::CoreParams base;
    base.detector = filters::DetectorParams::none();
    auto params = srtParams(base);
    pipeline::Core core(params, &prog);
    configureSrt(core, 2, {0.5}, 4000);
    std::vector<u64> targets{4000, 4000, 0, 0};
    for (unsigned t = 0; t < 2; ++t)
        core.threadOptions(t).stopAfterInsts = 4000;
    ASSERT_TRUE(core.runUntilCommitted(targets, 5'000'000));
    EXPECT_EQ(core.committed(2), 2000u);
    EXPECT_EQ(core.committed(3), 2000u);
    EXPECT_TRUE(core.halted(2));
    EXPECT_TRUE(core.halted(3));
    EXPECT_EQ(redundantCommitted(core, 2), 4000u);
}

TEST(Srt, TrailingOracleThreadsNeverMispredict)
{
    auto prog = prog4("401.bzip2"); // branchy workload
    pipeline::CoreParams base;
    base.detector = filters::DetectorParams::none();
    auto params = srtParams(base);

    // Run only the trailing contexts (leads frozen immediately).
    pipeline::Core core(params, &prog);
    configureSrt(core, 2, {1.0}, 3000);
    core.threadOptions(0).maxInsts = 1; // halt the leads immediately
    core.threadOptions(1).maxInsts = 1;
    std::vector<u64> targets{1, 1, 3000, 3000};
    ASSERT_TRUE(core.runUntilCommitted(targets, 5'000'000));
    EXPECT_EQ(core.stats().mispredicts, 0u)
        << "oracle-fetch threads must not mispredict";
}

TEST(Srt, TrailingThreadsComputeCorrectResults)
{
    // The idealized trailing thread is a timing shortcut, not a
    // semantic one: its architectural results must match the
    // functional model.
    workload::WorkloadSpec spec;
    spec.maxThreads = 4;
    spec.footprintDivider = 64;
    spec.iterations = 800;
    auto prog = workload::build("ocean", spec);

    pipeline::CoreParams base;
    base.detector = filters::DetectorParams::none();
    auto params = srtParams(base);
    pipeline::Core core(params, &prog);
    for (unsigned t = 2; t < 4; ++t) {
        core.threadOptions(t).oracleFetch = true;
        core.threadOptions(t).perfectDcache = true;
    }
    core.run(30'000'000);
    ASSERT_TRUE(core.allHalted());
    ASSERT_FALSE(core.anyTrap());

    mem::Memory ref;
    prog.load(ref);
    for (unsigned t = 0; t < 4; ++t) {
        isa::ArchState s = isa::initialState(prog, t);
        while (!s.halted)
            ASSERT_EQ(isa::stepArch(prog, ref, s), isa::Trap::None);
        auto got = core.archState(t);
        for (unsigned r = 0; r < isa::numArchRegs; ++r)
            EXPECT_EQ(got.regs[r], s.regs[r])
                << "thread " << t << " r" << r;
    }
    EXPECT_TRUE(core.memory().sameContents(ref));
}

TEST(Srt, FullRedundancySlowsTheLeads)
{
    auto prog = prog4("447.dealII");
    pipeline::CoreParams base;
    base.detector = filters::DetectorParams::none();

    pipeline::Core solo(base, &prog);
    Cycle base_cycles = solo.runPerThreadBudget(8000, 50'000'000);

    auto params = srtParams(base);
    pipeline::Core srt(params, &prog);
    configureSrt(srt, 2, {1.0}, 8000);
    std::vector<u64> targets{8000, 8000, 0, 0};
    for (unsigned t = 0; t < 2; ++t)
        srt.threadOptions(t).stopAfterInsts = 8000;
    ASSERT_TRUE(srt.runUntilCommitted(targets, 100'000'000));
    EXPECT_GT(srt.cycle(), base_cycles)
        << "running the redundant copies cannot be free";
}
