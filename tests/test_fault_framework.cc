/**
 * @file
 * The injection/tandem/campaign framework: plan distributions, fork
 * determinism, precise windows, classification accounting.
 */

#include <gtest/gtest.h>

#include "fault/campaign.hh"
#include "fault/injector.hh"
#include "fault/tandem.hh"
#include "workload/workload.hh"

using namespace fh;
using namespace fh::fault;

namespace
{

isa::Program
prog(const std::string &name = "400.perl")
{
    workload::WorkloadSpec spec;
    spec.maxThreads = 2;
    spec.footprintDivider = 64;
    return workload::build(name, spec);
}

pipeline::CoreParams
fhParams()
{
    pipeline::CoreParams p;
    p.detector = filters::DetectorParams::faultHound();
    return p;
}

} // namespace

TEST(Injector, MixProportionsRoughlyHold)
{
    auto program = prog();
    pipeline::Core core(fhParams(), &program);
    for (int i = 0; i < 5000; ++i)
        core.tick();
    Rng rng(1);
    InjectionMix mix;
    int rename = 0;
    int lsq = 0;
    int reg = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        auto plan = drawPlan(core, mix, rng);
        switch (plan.target) {
          case Target::Rename: ++rename; break;
          case Target::Lsq: ++lsq; break;
          default: ++reg; break; // RegFile or idle None
        }
    }
    EXPECT_NEAR(rename / double(n), mix.renameFrac, 0.03);
    EXPECT_NEAR(lsq / double(n), mix.lsqFrac, 0.02);
    EXPECT_NEAR(reg / double(n),
                1.0 - mix.renameFrac - mix.lsqFrac, 0.03);
}

TEST(Injector, PlansStayInRange)
{
    auto program = prog();
    pipeline::Core core(fhParams(), &program);
    for (int i = 0; i < 3000; ++i)
        core.tick();
    Rng rng(2);
    for (int i = 0; i < 2000; ++i) {
        auto plan = drawPlan(core, {}, rng);
        EXPECT_LT(plan.bit, wordBits);
        if (plan.target == Target::RegFile)
            EXPECT_LT(plan.preg, core.numPhysRegs());
        if (plan.target == Target::Rename) {
            EXPECT_LT(plan.tid, core.numThreads());
            EXPECT_GE(plan.arch, 1u);
            EXPECT_LT(plan.arch, isa::numArchRegs);
        }
    }
}

TEST(Injector, ApplyFlipsExactlyOneRegfileBit)
{
    auto program = prog();
    pipeline::Core a(fhParams(), &program);
    pipeline::Core b = a;
    InjectionPlan plan;
    plan.target = Target::RegFile;
    plan.preg = 10;
    plan.bit = 5;
    EXPECT_TRUE(apply(b, plan));
    // Flipping twice restores the original state (pure XOR).
    apply(b, plan);
    for (unsigned t = 0; t < a.numThreads(); ++t)
        EXPECT_TRUE(a.archState(t) == b.archState(t));
}

TEST(Injector, IdleTargetAppliesNothing)
{
    auto program = prog();
    pipeline::Core core(fhParams(), &program);
    InjectionPlan plan;
    plan.target = Target::None;
    EXPECT_FALSE(apply(core, plan));
}

TEST(Injector, LsqInjectionRequiresOccupancy)
{
    auto program = prog();
    pipeline::Core core(fhParams(), &program);
    // At cycle 0 the LSQ is empty.
    InjectionPlan plan;
    plan.target = Target::Lsq;
    plan.lsqNth = 0;
    plan.bit = 1;
    EXPECT_FALSE(apply(core, plan));
    for (int i = 0; i < 3000; ++i)
        core.tick();
    if (core.lsqOccupied() > 0)
        EXPECT_TRUE(apply(core, plan));
}

TEST(Tandem, ForkWithoutFaultMatchesGolden)
{
    auto program = prog();
    pipeline::Core master(fhParams(), &program);
    for (int i = 0; i < 20000; ++i)
        master.tick();
    auto targets = windowTargets(master, 1000);
    auto a = runFork(master, nullptr, false, targets, 500000);
    auto b = runFork(master, nullptr, false, targets, 500000);
    ASSERT_TRUE(a.reachedTargets);
    EXPECT_TRUE(archEquals(a.core, b.core)) << "forks must be "
                                               "deterministic";
    for (unsigned t = 0; t < 2; ++t)
        EXPECT_EQ(a.core.committed(t), targets[t]);
}

TEST(Tandem, WindowTargetsAreRelative)
{
    auto program = prog();
    pipeline::Core master(fhParams(), &program);
    for (int i = 0; i < 10000; ++i)
        master.tick();
    auto targets = windowTargets(master, 123);
    for (unsigned t = 0; t < 2; ++t)
        EXPECT_EQ(targets[t], master.committed(t) + 123);
}

TEST(Campaign, AccountingAddsUp)
{
    auto program = prog("ocean");
    CampaignConfig cfg;
    cfg.injections = 40;
    cfg.window = 400;
    auto r = runCampaign(fhParams(), &program, cfg);
    EXPECT_EQ(r.injected, 40u);
    EXPECT_EQ(r.masked + r.noisy + r.sdc, r.injected);
    EXPECT_EQ(r.recovered + r.detected + r.uncovered, r.sdc);
    EXPECT_EQ(r.bins.covered + r.bins.secondLevelMasked +
                  r.bins.completedReg + r.bins.renameUncovered +
                  r.bins.noTrigger + r.bins.other,
              r.sdc);
    EXPECT_GT(r.maskedFrac(), 0.5) << "most faults mask";
}

TEST(Campaign, DeterministicForSameSeed)
{
    auto program = prog("ocean");
    CampaignConfig cfg;
    cfg.injections = 25;
    cfg.window = 300;
    cfg.seed = 77;
    auto a = runCampaign(fhParams(), &program, cfg);
    auto b = runCampaign(fhParams(), &program, cfg);
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.noisy, b.noisy);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.covered(), b.covered());
}

TEST(Campaign, BaselineSchemeCoversNothing)
{
    auto program = prog("ocean");
    CampaignConfig cfg;
    cfg.injections = 30;
    cfg.window = 300;
    pipeline::CoreParams p;
    p.detector = filters::DetectorParams::none();
    auto r = runCampaign(p, &program, cfg);
    EXPECT_EQ(r.covered(), 0u);
    EXPECT_EQ(r.uncovered, r.sdc);
}
