/**
 * @file
 * SecondLevelFilter: delinquent-bit learning and suppression
 * (Section 3.2).
 */

#include <gtest/gtest.h>

#include "filters/second_level.hh"

using namespace fh;
using namespace fh::filters;

TEST(SecondLevel, FirstAlarmInAnyBitIsAllowed)
{
    SecondLevelFilter f(8);
    EXPECT_TRUE(f.onTrigger(1ULL << 7));
    EXPECT_EQ(f.allowed(), 1u);
}

TEST(SecondLevel, RepeatAlarmInSameBitIsSuppressed)
{
    SecondLevelFilter f(8);
    f.onTrigger(1ULL << 7);
    EXPECT_FALSE(f.onTrigger(1ULL << 7));
    EXPECT_EQ(f.suppressed(), 1u);
}

TEST(SecondLevel, BitRearmsAfterSevenQuietTriggers)
{
    SecondLevelFilter f(8);
    f.onTrigger(1ULL << 3);
    // 7 triggers in which bit 3 is silent...
    for (int i = 0; i < 7; ++i)
        f.onTrigger(1ULL << 9); // first allowed, rest suppressed
    EXPECT_TRUE(f.quietAt(3));
    EXPECT_TRUE(f.onTrigger(1ULL << 3));
}

TEST(SecondLevel, AnyQuietBitInMaskAllowsTheTrigger)
{
    SecondLevelFilter f(8);
    f.onTrigger(1ULL << 2); // bit 2 now armed
    // Mask includes armed bit 2 plus quiet bit 40: allowed.
    EXPECT_TRUE(f.onTrigger((1ULL << 2) | (1ULL << 40)));
}

TEST(SecondLevel, DelinquentBitsGetSilencedUnderChurn)
{
    // Bits 0-3 alarm constantly; bit 50 alarms once late. The
    // delinquent bits get suppressed while the rare bit is heard —
    // the whole point of the second-level filter.
    SecondLevelFilter f(8);
    unsigned low_allowed = 0;
    for (int i = 0; i < 100; ++i)
        low_allowed += f.onTrigger(1ULL << (i % 4)) ? 1 : 0;
    EXPECT_LE(low_allowed, 8u);
    EXPECT_TRUE(f.onTrigger(1ULL << 50));
}

TEST(SecondLevel, WouldAllowIsReadOnly)
{
    SecondLevelFilter f(8);
    f.onTrigger(1ULL << 5);
    SecondLevelFilter before = f;
    EXPECT_FALSE(f.wouldAllow(1ULL << 5));
    EXPECT_TRUE(f.wouldAllow(1ULL << 6));
    EXPECT_TRUE(f == before);
}

TEST(SecondLevel, EmptyMaskSuppressed)
{
    SecondLevelFilter f(8);
    EXPECT_FALSE(f.onTrigger(0));
    EXPECT_FALSE(f.wouldAllow(0));
}
