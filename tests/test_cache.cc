/**
 * @file
 * Cache / TLB / Hierarchy timing models, including the in-flight fill
 * (MSHR) behavior that prevents free wrong-path prefetching.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "mem/tlb.hh"

using namespace fh;
using namespace fh::mem;

namespace
{

CacheParams
tiny()
{
    return {"t", 1024, 2, 64, 3}; // 8 sets, 2-way
}

} // namespace

TEST(Cache, MissThenHit)
{
    Cache c(tiny());
    Cycle ready = 0;
    EXPECT_FALSE(c.find(0x100, 0, ready));
    c.install(0x100, 0, 10);
    EXPECT_TRUE(c.find(0x100, 20, ready));
    EXPECT_EQ(ready, 20u); // fill long done
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, InFlightFillDelaysSecondAccess)
{
    Cache c(tiny());
    c.install(0x100, 0, 50);
    Cycle ready = 0;
    EXPECT_TRUE(c.find(0x100, 10, ready));
    EXPECT_EQ(ready, 50u) << "access during fill waits for the line";
}

TEST(Cache, SameLineDifferentWordHits)
{
    Cache c(tiny());
    c.install(0x100, 0, 0);
    Cycle ready = 0;
    EXPECT_TRUE(c.find(0x138, 1, ready)); // same 64-byte line
}

TEST(Cache, LruEvictsLeastRecentlyUsed)
{
    Cache c(tiny()); // 2 ways per set
    Cycle ready = 0;
    // Three lines mapping to the same set (stride = sets*line = 512).
    c.install(0x000, 0, 0);
    c.install(0x200, 1, 1);
    c.find(0x000, 2, ready); // touch: 0x200 becomes LRU
    c.install(0x400, 3, 3);  // evicts 0x200
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x200));
    EXPECT_TRUE(c.probe(0x400));
}

TEST(Cache, ProbeDoesNotTouchState)
{
    Cache c(tiny());
    c.install(0x000, 0, 0);
    u64 h = c.hits();
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x999 & ~7ULL));
    EXPECT_EQ(c.hits(), h);
}

TEST(Cache, FlushInvalidatesAll)
{
    Cache c(tiny());
    c.install(0x100, 0, 0);
    c.flush();
    EXPECT_FALSE(c.probe(0x100));
}

TEST(Tlb, HitAfterWalkAndLruReplacement)
{
    Tlb tlb({2, 4096, 30});
    EXPECT_FALSE(tlb.access(0x0000));
    EXPECT_TRUE(tlb.access(0x0008)); // same page
    EXPECT_FALSE(tlb.access(0x1000));
    tlb.access(0x0000);               // touch page 0
    EXPECT_FALSE(tlb.access(0x2000)); // evicts page 1 (LRU)
    EXPECT_FALSE(tlb.access(0x1000));
}

TEST(Hierarchy, LatencyComposition)
{
    HierarchyParams hp;
    Hierarchy h(hp);
    // Cold access: TLB walk + L1 + L2 + memory.
    auto t1 = h.data(0x20000000, 0);
    EXPECT_FALSE(t1.l1Hit);
    EXPECT_FALSE(t1.l2Hit);
    EXPECT_FALSE(t1.tlbHit);
    EXPECT_EQ(t1.latency, hp.itlb.walkLatency + hp.l2.hitLatency +
                              hp.memoryLatency + hp.l1d.hitLatency);

    // Warm re-access after the fill completes: pure L1 hit.
    auto t2 = h.data(0x20000000, t1.latency + 1);
    EXPECT_TRUE(t2.l1Hit);
    EXPECT_TRUE(t2.tlbHit);
    EXPECT_EQ(t2.latency, hp.l1d.hitLatency);
}

TEST(Hierarchy, AccessDuringFillPaysRemainingTime)
{
    HierarchyParams hp;
    Hierarchy h(hp);
    auto t1 = h.data(0x20000000, 0);
    // Re-access halfway through the fill.
    Cycle mid = t1.latency / 2;
    auto t2 = h.data(0x20000000, mid);
    EXPECT_TRUE(t2.l1Hit);
    EXPECT_NEAR(static_cast<double>(t2.latency),
                static_cast<double>(t1.latency - mid +
                                    hp.l1d.hitLatency),
                static_cast<double>(hp.l1d.hitLatency));
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    HierarchyParams hp;
    hp.l1d = {"l1", 128, 2, 64, 3}; // one set, 2 ways: tiny L1
    Hierarchy h(hp);
    h.data(0x20000000, 0);
    h.data(0x20010000, 1000);
    h.data(0x20020000, 2000); // evicts the first line from L1
    auto t = h.data(0x20000000, 3000);
    EXPECT_FALSE(t.l1Hit);
    EXPECT_TRUE(t.l2Hit);
    EXPECT_EQ(t.latency, hp.l2.hitLatency + hp.l1d.hitLatency);
}

TEST(Hierarchy, InstructionAndDataPathsAreSeparate)
{
    Hierarchy h;
    h.fetch(0x10000000, 0);
    EXPECT_EQ(h.l1d().misses(), 0u);
    h.data(0x20000000, 0);
    EXPECT_EQ(h.l1d().misses(), 1u);
    EXPECT_EQ(h.l1i().misses(), 1u);
}
