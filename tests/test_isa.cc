/**
 * @file
 * FH-RISC: opcode metadata, instruction constructors, ALU/branch
 * semantics (the shared exec helpers), disassembly, and the program
 * builder.
 */

#include <gtest/gtest.h>

#include "isa/exec.hh"
#include "isa/functional.hh"
#include "isa/instruction.hh"
#include "isa/program.hh"

using namespace fh;
using namespace fh::isa;

TEST(Opcode, ClassesAndMetadata)
{
    EXPECT_EQ(classOf(Op::Add), OpClass::IntAlu);
    EXPECT_EQ(classOf(Op::Mul), OpClass::IntMul);
    EXPECT_EQ(classOf(Op::Ld), OpClass::Load);
    EXPECT_EQ(classOf(Op::St), OpClass::Store);
    EXPECT_EQ(classOf(Op::Beq), OpClass::Branch);
    EXPECT_EQ(classOf(Op::Jmp), OpClass::Branch);
    EXPECT_TRUE(isCondBranch(Op::Blt));
    EXPECT_FALSE(isCondBranch(Op::Jmp));
    EXPECT_TRUE(writesReg(Op::Ld));
    EXPECT_FALSE(writesReg(Op::St));
    EXPECT_FALSE(writesReg(Op::Beq));
    EXPECT_TRUE(readsRs2(Op::St));
    EXPECT_FALSE(readsRs2(Op::Addi));
    EXPECT_FALSE(readsRs1(Op::Li));
}

struct AluCase
{
    Op op;
    u64 a;
    u64 b;
    i64 imm;
    u64 expect;
};

class AluSemantics : public testing::TestWithParam<AluCase>
{
};

TEST_P(AluSemantics, Computes)
{
    const AluCase &c = GetParam();
    Instruction inst;
    inst.op = c.op;
    inst.imm = c.imm;
    EXPECT_EQ(aluCompute(inst, c.a, c.b), c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluSemantics,
    testing::Values(
        AluCase{Op::Add, 5, 7, 0, 12},
        AluCase{Op::Add, ~0ULL, 1, 0, 0}, // wraparound
        AluCase{Op::Sub, 5, 7, 0, static_cast<u64>(-2)},
        AluCase{Op::And, 0xf0f0, 0xff00, 0, 0xf000},
        AluCase{Op::Or, 0xf0f0, 0x0f0f, 0, 0xffff},
        AluCase{Op::Xor, 0xff, 0x0f, 0, 0xf0},
        AluCase{Op::Sll, 1, 63, 0, 1ULL << 63},
        AluCase{Op::Sll, 1, 64, 0, 1},       // shift amount mod 64
        AluCase{Op::Srl, 1ULL << 63, 63, 0, 1},
        AluCase{Op::Sra, ~0ULL, 8, 0, ~0ULL}, // sign extension
        AluCase{Op::Sra, 1ULL << 62, 62, 0, 1},
        AluCase{Op::Mul, 0xffffffffULL, 0xffffffffULL, 0,
                0xfffffffe00000001ULL},
        AluCase{Op::SltU, 3, 5, 0, 1},
        AluCase{Op::SltU, 5, 3, 0, 0},
        AluCase{Op::Addi, 10, 99, -3, 7},
        AluCase{Op::Andi, 0xabcd, 0, 0xff, 0xcd},
        AluCase{Op::Ori, 0x100, 0, 0x2, 0x102},
        AluCase{Op::Xori, 0xf, 0, 0x1, 0xe},
        AluCase{Op::Slli, 3, 0, 4, 48},
        AluCase{Op::Srli, 0x100, 0, 4, 0x10},
        AluCase{Op::Li, 99, 99, -5, static_cast<u64>(-5)}));

TEST(BranchSemantics, AllConditions)
{
    EXPECT_TRUE(branchTaken(Op::Beq, 4, 4));
    EXPECT_FALSE(branchTaken(Op::Beq, 4, 5));
    EXPECT_TRUE(branchTaken(Op::Bne, 4, 5));
    EXPECT_TRUE(branchTaken(Op::Blt, static_cast<u64>(-1), 0)); // signed
    EXPECT_FALSE(branchTaken(Op::Blt, 0, static_cast<u64>(-1)));
    EXPECT_TRUE(branchTaken(Op::Bge, 0, static_cast<u64>(-1)));
    EXPECT_TRUE(branchTaken(Op::Jmp, 0, 0));
}

TEST(EffectiveAddr, AddsSignedOffset)
{
    Instruction inst = makeLd(2, 1, -16);
    EXPECT_EQ(effectiveAddr(inst, 0x1000), 0xff0u);
}

TEST(Disassemble, RendersAllFormats)
{
    EXPECT_EQ(disassemble(makeNop()), "nop");
    EXPECT_EQ(disassemble(makeHalt()), "halt");
    EXPECT_EQ(disassemble(makeRRR(Op::Add, 3, 1, 2)), "add r3, r1, r2");
    EXPECT_EQ(disassemble(makeRRI(Op::Addi, 3, 1, -4)),
              "addi r3, r1, -4");
    EXPECT_EQ(disassemble(makeLi(5, 10)), "li r5, 10");
    EXPECT_EQ(disassemble(makeLd(2, 1, 8)), "ld r2, [r1 + 8]");
    EXPECT_EQ(disassemble(makeSt(1, 2, 8)), "st [r1 + 8], r2");
    EXPECT_EQ(disassemble(makeBranch(Op::Blt, 1, 2, 7)),
              "blt r1, r2, @7");
    EXPECT_EQ(disassemble(makeJmp(3)), "jmp @3");
}

TEST(ProgramBuilder, ForwardPatchingAndAutoHalt)
{
    ProgramBuilder b("t");
    b.emit(makeLi(2, 1));
    u32 br = b.emit(makeBranch(Op::Beq, 2, 0, 0));
    b.emit(makeLi(3, 2));
    b.patchTargetHere(br);
    b.emit(makeLi(4, 3));
    Program p = b.take();
    EXPECT_EQ(p.text[br].target, 3u);
    EXPECT_EQ(p.text.back().op, Op::Halt);
}

TEST(Program, LoadRegistersSegmentsAndData)
{
    ProgramBuilder b("t");
    b.addSegment(0x1000, 0x100);
    b.initWord(0x1008, 42);
    Program p = b.take();
    mem::Memory m;
    p.load(m);
    EXPECT_EQ(m.peek(0x1008), 42u);
    EXPECT_EQ(m.check(0x1000), mem::AccessResult::Ok);
    EXPECT_EQ(m.check(0x2000), mem::AccessResult::Unmapped);
}

TEST(Program, PerThreadBasesAndFetchAddr)
{
    Program p;
    p.threadBases = {0x1000, 0x2000};
    EXPECT_EQ(p.baseOf(0), 0x1000u);
    EXPECT_EQ(p.baseOf(1), 0x2000u);
    EXPECT_EQ(p.baseOf(2), 0x1000u); // wraps
    EXPECT_EQ(p.fetchAddr(3), p.textBase + 24);

    auto init = isa::initialState(p, 1);
    EXPECT_EQ(init.regs[1], 0x2000u);
    EXPECT_EQ(init.pc, 0u);
    EXPECT_FALSE(init.halted);
}
