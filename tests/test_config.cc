/**
 * @file
 * Config: the key=value parser behind the fhsim CLI.
 */

#include <gtest/gtest.h>

#include "sim/config.hh"

using namespace fh;

TEST(Config, ParsesKeysValuesAndComments)
{
    Config cfg;
    std::string err;
    ASSERT_TRUE(cfg.parse("a = 1\n"
                          "# full-line comment\n"
                          "b.c = hello   # trailing comment\n"
                          "\n"
                          "  spaced.key   =   42  \n",
                          err))
        << err;
    EXPECT_EQ(cfg.getU64("a"), 1u);
    EXPECT_EQ(cfg.getString("b.c"), "hello");
    EXPECT_EQ(cfg.getU64("spaced.key"), 42u);
}

TEST(Config, LaterKeysOverride)
{
    Config cfg;
    std::string err;
    ASSERT_TRUE(cfg.parse("x = 1\nx = 2\n", err));
    EXPECT_EQ(cfg.getU64("x"), 2u);
    cfg.set("x=3");
    EXPECT_EQ(cfg.getU64("x"), 3u);
}

TEST(Config, MalformedLineFails)
{
    Config cfg;
    std::string err;
    EXPECT_FALSE(cfg.parse("just-a-token\n", err));
    EXPECT_NE(err.find("line 1"), std::string::npos);
    EXPECT_FALSE(cfg.parse("= value\n", err));
}

TEST(Config, TypedAccessorsAndDefaults)
{
    Config cfg;
    std::string err;
    ASSERT_TRUE(cfg.parse("n = 0x20\nf = 2.5\n"
                          "t1 = true\nt2 = on\nt3 = 1\n"
                          "f1 = false\nf2 = off\n",
                          err));
    EXPECT_EQ(cfg.getU64("n"), 0x20u);
    EXPECT_DOUBLE_EQ(cfg.getDouble("f"), 2.5);
    EXPECT_TRUE(cfg.getBool("t1"));
    EXPECT_TRUE(cfg.getBool("t2"));
    EXPECT_TRUE(cfg.getBool("t3"));
    EXPECT_FALSE(cfg.getBool("f1"));
    EXPECT_FALSE(cfg.getBool("f2"));
    // Defaults for missing keys.
    EXPECT_EQ(cfg.getU64("missing", 7), 7u);
    EXPECT_EQ(cfg.getString("missing", "d"), "d");
    EXPECT_TRUE(cfg.getBool("missing", true));
    EXPECT_FALSE(cfg.has("missing"));
}

TEST(Config, UnknownKeysTracksUndeclaredUnreadKeys)
{
    Config cfg;
    std::string err;
    ASSERT_TRUE(cfg.parse("injections = 5000\n"
                          "injectons = 5000\n"
                          "jobs = 8\n",
                          err));
    // Nothing consumed yet: everything is unknown.
    EXPECT_EQ(cfg.unknownKeys().size(), 3u);
    // Reading a key (even via has()) recognises it; declareKey covers
    // keys a driver reads only conditionally.
    EXPECT_EQ(cfg.getU64("injections", 0), 5000u);
    cfg.declareKey("jobs");
    const auto unknown = cfg.unknownKeys();
    ASSERT_EQ(unknown.size(), 1u);
    EXPECT_EQ(unknown[0], "injectons");
    // Declaring a key that was never set is fine (optional options).
    cfg.declareKey("window");
    EXPECT_EQ(cfg.unknownKeys().size(), 1u);
}

TEST(Config, MissingFileIsAnError)
{
    Config cfg;
    std::string err;
    EXPECT_FALSE(cfg.parseFile("/nonexistent/path.conf", err));
    EXPECT_FALSE(err.empty());
}
