/**
 * @file
 * PbfsTable: PC-indexed filter tables with sticky counters and the
 * periodic flash clear (Section 2.1).
 */

#include <gtest/gtest.h>

#include "filters/pbfs.hh"

using namespace fh;
using namespace fh::filters;

namespace
{

PbfsParams
sticky(unsigned entries = 64, u64 clear = 0)
{
    PbfsParams p;
    p.entries = entries;
    p.clearInterval = clear;
    p.counters = CounterConfig::sticky();
    return p;
}

} // namespace

TEST(Pbfs, FirstAccessInstallsWithoutTrigger)
{
    PbfsTable t(sticky());
    EXPECT_FALSE(t.check(0x10, 0xabc).trigger);
}

TEST(Pbfs, StableValueNeverTriggers)
{
    PbfsTable t(sticky());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(t.check(0x10, 0x5555).trigger);
}

TEST(Pbfs, ChangeTriggersOncePerStickySaturation)
{
    PbfsTable t(sticky());
    t.check(7, 0);
    EXPECT_TRUE(t.check(7, 1).trigger);  // bit 0 change detected
    EXPECT_FALSE(t.check(7, 0).trigger); // sticky: now a wildcard
    EXPECT_FALSE(t.check(7, 1).trigger);
}

TEST(Pbfs, DistinctPcsTrainIndependently)
{
    PbfsTable t(sticky());
    t.check(1, 0x100);
    t.check(2, 0x200);
    EXPECT_FALSE(t.check(1, 0x100).trigger);
    EXPECT_FALSE(t.check(2, 0x200).trigger);
    // PC 1's neighborhood knows nothing about PC 2's values.
    EXPECT_TRUE(t.check(1, 0x200).trigger);
}

TEST(Pbfs, PcsAliasModuloTableSize)
{
    PbfsTable t(sticky(16));
    t.check(3, 0xaaaa);
    // PC 19 maps to the same entry: the foreign value triggers.
    EXPECT_TRUE(t.check(19, 0x5555).trigger);
}

TEST(Pbfs, FlashClearRearmsStickyCounters)
{
    PbfsTable t(sticky(64, 8)); // clear every 8 accesses
    t.check(1, 0);
    EXPECT_TRUE(t.check(1, 1).trigger);
    EXPECT_FALSE(t.check(1, 0).trigger); // saturated
    for (int i = 0; i < 8; ++i)
        t.check(1, 0); // drive past the clear boundary
    EXPECT_GE(t.clears(), 1u);
    EXPECT_TRUE(t.check(1, 1).trigger) << "clear must re-arm";
}

TEST(Pbfs, BiasedVariantRecoversDetection)
{
    PbfsParams p;
    p.entries = 64;
    p.counters = CounterConfig::biased();
    PbfsTable t(p);
    t.check(1, 0);
    EXPECT_TRUE(t.check(1, 1).trigger);
    // Two stable revisits re-arm the biased counter...
    t.check(1, 1);
    t.check(1, 1);
    t.check(1, 1);
    // ...so the next change is detected again (unlike sticky).
    EXPECT_TRUE(t.check(1, 0).trigger);
}

TEST(Pbfs, AccessCounting)
{
    PbfsTable t(sticky());
    for (int i = 0; i < 9; ++i)
        t.check(i, i);
    EXPECT_EQ(t.accesses(), 9u);
}

TEST(Pbfs, MismatchMaskReportsFaultyBit)
{
    PbfsTable t(sticky());
    t.check(4, 0x1000);
    auto res = t.check(4, 0x1000 ^ (1ULL << 33));
    EXPECT_TRUE(res.trigger);
    EXPECT_EQ(res.mismatchMask, 1ULL << 33);
}
