/**
 * @file
 * Equivalence guard for the golden checkpoint ledger: a campaign
 * classified against the master's ledger checkpoints must produce the
 * exact CampaignResult of the legacy per-trial golden fork
 * (CampaignConfig::forceGoldenFork), on multiple workloads and
 * schemes, for 1 and 4 worker threads. Also pins the fork runtime's
 * no-post-freeze-ticks guarantee that the ledger's throughput win
 * partly rests on.
 */

#include <gtest/gtest.h>

#include "fault/campaign.hh"
#include "fault/golden_ledger.hh"
#include "fault/tandem.hh"
#include "workload/workload.hh"

namespace
{

using namespace fh;

fault::CampaignResult
runOnce(const char *bench, const filters::DetectorParams &det, u64 seed,
        bool force_golden_fork, unsigned threads)
{
    workload::WorkloadSpec spec;
    spec.maxThreads = 2;
    spec.footprintDivider = 64;
    isa::Program program = workload::build(bench, spec);

    pipeline::CoreParams params;
    params.detector = det;

    fault::CampaignConfig cfg;
    cfg.injections = 28;
    cfg.window = 250;
    cfg.seed = seed;
    cfg.threads = threads;
    cfg.forceGoldenFork = force_golden_fork;
    return fault::runCampaign(params, &program, cfg);
}

void
expectSameCounts(const fault::CampaignResult &a,
                 const fault::CampaignResult &b)
{
    EXPECT_EQ(a.injected, b.injected);
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.noisy, b.noisy);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.recovered, b.recovered);
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.uncovered, b.uncovered);
    EXPECT_EQ(a.bins.covered, b.bins.covered);
    EXPECT_EQ(a.bins.secondLevelMasked, b.bins.secondLevelMasked);
    EXPECT_EQ(a.bins.completedReg, b.bins.completedReg);
    EXPECT_EQ(a.bins.archReg, b.bins.archReg);
    EXPECT_EQ(a.bins.renameUncovered, b.bins.renameUncovered);
    EXPECT_EQ(a.bins.noTrigger, b.bins.noTrigger);
    EXPECT_EQ(a.bins.other, b.bins.other);
}

struct LedgerCase
{
    const char *label;
    const char *bench;
    filters::DetectorParams detector;
    u64 seed;
};

class LedgerEquivalence : public testing::TestWithParam<LedgerCase>
{
};

TEST_P(LedgerEquivalence, MatchesExplicitGoldenFork)
{
    const LedgerCase &c = GetParam();
    const auto forked = runOnce(c.bench, c.detector, c.seed,
                                /*force_golden_fork=*/true, 1);
    const auto ledger = runOnce(c.bench, c.detector, c.seed,
                                /*force_golden_fork=*/false, 1);
    expectSameCounts(forked, ledger);
    // The worker count shards wave execution differently but must not
    // change a single count either way.
    const auto ledger4 = runOnce(c.bench, c.detector, c.seed,
                                 /*force_golden_fork=*/false, 4);
    expectSameCounts(forked, ledger4);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, LedgerEquivalence,
    testing::Values(
        LedgerCase{"ocean_faulthound", "ocean",
                   filters::DetectorParams::faultHound(), 1234},
        LedgerCase{"ocean_unprotected", "ocean",
                   filters::DetectorParams::none(), 42},
        LedgerCase{"volrend_faulthound", "volrend",
                   filters::DetectorParams::faultHound(), 7},
        LedgerCase{"gamess_pbfs_biased", "416.gamess",
                   filters::DetectorParams::pbfsBiased(), 99}),
    [](const testing::TestParamInfo<LedgerCase> &pinfo) {
        return std::string(pinfo.param.label);
    });

TEST(GoldenLedger, SupportsBuiltInWorkloadLayout)
{
    workload::WorkloadSpec spec;
    spec.maxThreads = 2;
    spec.footprintDivider = 64;
    isa::Program program = workload::build("ocean", spec);
    pipeline::CoreParams params;
    pipeline::Core core(params, &program);
    EXPECT_TRUE(fault::GoldenLedger::supports(core, program));
    EXPECT_EQ(core.memory().segmentCount(),
              static_cast<size_t>(core.numThreads()));
}

// Regression: once every thread is frozen at its stopAfterInsts
// boundary (or halted), runUntilCommitted must return without ticking
// — fork cycle counts may not include post-freeze cycles.
TEST(GoldenLedger, NoTicksAfterAllThreadsFrozen)
{
    workload::WorkloadSpec spec;
    spec.maxThreads = 2;
    spec.footprintDivider = 64;
    isa::Program program = workload::build("ocean", spec);
    pipeline::CoreParams params;
    pipeline::Core core(params, &program);

    std::vector<u64> targets(core.numThreads());
    for (unsigned tid = 0; tid < core.numThreads(); ++tid) {
        targets[tid] = core.committed(tid) + 200;
        core.threadOptions(tid).stopAfterInsts = targets[tid];
    }
    ASSERT_TRUE(core.runUntilCommitted(targets, 1000000));
    const Cycle frozen_at = core.cycle();
    const u64 stat_cycles = core.stats().cycles;

    // Re-running against the same (met) targets must be a no-op.
    EXPECT_TRUE(core.runUntilCommitted(targets, 1000000));
    EXPECT_EQ(core.cycle(), frozen_at);
    EXPECT_EQ(core.stats().cycles, stat_cycles);

    // Raising the targets while the freeze points stay put can never
    // make progress; the runtime must bail immediately instead of
    // burning the whole cycle bound.
    std::vector<u64> beyond = targets;
    for (u64 &t : beyond)
        t += 100;
    EXPECT_FALSE(core.runUntilCommitted(beyond, 1000000));
    EXPECT_EQ(core.cycle(), frozen_at);
    EXPECT_EQ(core.stats().cycles, stat_cycles);
}

} // namespace
