/**
 * @file
 * End-to-end fault recovery scenarios on a hand-built kernel whose
 * dataflow is fully understood: predecessor replay repairing a
 * corrupted producer, singleton re-execute detecting LSQ corruption,
 * squash-and-rollback repairing a rename fault, and trap
 * classification for wild addresses.
 */

#include <gtest/gtest.h>

#include "fault/tandem.hh"
#include "isa/program.hh"
#include "pipeline/core.hh"
#include "sim/rng.hh"

using namespace fh;
using namespace fh::fault;
using namespace fh::pipeline;
using namespace fh::isa;

namespace
{

/** r4 = i + K; st [r1 + (i&63)*8], r4; i++ — a store-checked chain. */
Program
tinyKernel()
{
    ProgramBuilder b("tiny");
    b.addSegment(0x20000000, 8192);
    b.addSegment(0x20010000, 8192);
    b.emit(makeLi(2, 0));
    u32 loop = b.here();
    b.emit(makeRRI(Op::Addi, 4, 2, 0x100000)); // pc=1: producer
    b.emit(makeRRI(Op::Andi, 5, 2, 255));
    b.emit(makeRRI(Op::Slli, 5, 5, 3));
    b.emit(makeRRR(Op::Add, 5, 5, 1));
    b.emit(makeSt(5, 4, 0)); // pc=5: checked consumer
    b.emit(makeRRI(Op::Addi, 2, 2, 1));
    b.emit(makeLi(3, 1 << 30));
    b.emit(makeBranch(Op::Blt, 2, 3, loop));
    Program p = b.take();
    p.threadBases = {0x20000000, 0x20010000};
    return p;
}

struct Scenario
{
    Program prog = tinyKernel();
    Core master;

    Scenario()
        : master(
              [] {
                  CoreParams p;
                  p.detector = filters::DetectorParams::faultHound();
                  return p;
              }(),
              &prog)
    {
        while (master.committedTotal() < 20000)
            master.tick();
    }
};

} // namespace

TEST(Recovery, ReplayRepairsFreshProducerCorruption)
{
    Scenario s;
    Rng rng(7);
    int sdc = 0;
    int covered = 0;
    for (int trial = 0; trial < 80 && sdc < 12; ++trial) {
        for (Cycle c = 0; c < 113; ++c)
            s.master.tick();
        // Flip a high bit of the freshest completed producer (pc=1).
        unsigned preg = invalidPreg;
        const auto &rob = s.master.rob(0);
        for (unsigned i = 0; i < rob.size(); ++i) {
            const unsigned slot = rob.slotAt(i);
            const auto &h = rob.hot(slot);
            if (h.valid && rob.cold(slot).pc == 1 &&
                h.state == EntryState::Completed) {
                preg = rob.cold(slot).destPreg;
            }
        }
        if (preg == invalidPreg)
            continue;
        InjectionPlan plan;
        plan.target = Target::RegFile;
        plan.preg = preg;
        plan.bit = 40;
        auto targets = windowTargets(s.master, 600);
        auto g = runFork(s.master, nullptr, false, targets, 500000);
        auto u = runFork(s.master, &plan, false, targets, 500000);
        if (u.trapped != g.trapped || !u.reachedTargets)
            continue;
        if (archEquals(u.core, g.core))
            continue; // masked
        ++sdc;
        auto f = runFork(s.master, &plan, true, targets, 500000);
        bool ok = f.core.faultDetected() ||
                  (f.reachedTargets && !f.trapped &&
                   archEquals(f.core, g.core));
        covered += ok ? 1 : 0;
    }
    ASSERT_GE(sdc, 4) << "scenario produced too few SDC faults";
    EXPECT_GE(covered * 2, sdc)
        << "replay must repair at least half of fresh producer faults";
}

TEST(Recovery, SingletonReexecDetectsLsqCorruption)
{
    Scenario s;
    int sdc = 0;
    int detected = 0;
    for (int trial = 0; trial < 120 && sdc < 10; ++trial) {
        for (Cycle c = 0; c < 101; ++c)
            s.master.tick();
        if (s.master.lsqOccupied() == 0)
            continue;
        InjectionPlan plan;
        plan.target = Target::Lsq;
        plan.lsqNth = trial % 4;
        plan.lsqAddrField = false; // store data
        plan.bit = 41;
        auto targets = windowTargets(s.master, 600);
        auto g = runFork(s.master, nullptr, false, targets, 500000);
        auto u = runFork(s.master, &plan, false, targets, 500000);
        if (u.trapped != g.trapped || !u.reachedTargets)
            continue;
        if (archEquals(u.core, g.core))
            continue;
        ++sdc;
        auto f = runFork(s.master, &plan, true, targets, 500000);
        bool ok = f.core.faultDetected() ||
                  (f.reachedTargets && !f.trapped &&
                   archEquals(f.core, g.core));
        detected += ok ? 1 : 0;
    }
    ASSERT_GE(sdc, 3);
    EXPECT_GE(detected * 2, sdc)
        << "the commit-time check must catch LSQ data corruption";
}

TEST(Recovery, WildAddressBecomesTrapNotSilentCorruption)
{
    Scenario s;
    // Corrupt the base register's high bit right at injection: the
    // next store's address leaves every segment and must trap.
    InjectionPlan plan;
    plan.target = Target::RegFile;
    // r1 is architectural: find its physical register via archState
    // equivalence — flip through the rename hook instead.
    auto targets = windowTargets(s.master, 400);
    Core f = s.master;
    for (unsigned t = 0; t < f.numThreads(); ++t)
        f.threadOptions(t).stopAfterInsts = targets[t];
    f.setDetectorEnabled(false);
    // Flip bit 35 of thread 0's architectural r1 value.
    auto pregs_before = f.archState(0).regs[1];
    (void)pregs_before;
    // Inject via direct memory of the regfile: use the rename map of
    // thread 0 through the public injection API.
    // (r1 is never renamed by the kernel, so spec(1) == retire(1).)
    // We locate it by flipping and checking the architectural view.
    bool flipped = false;
    for (unsigned p = 0; p < f.numPhysRegs() && !flipped; ++p) {
        Core probe = f;
        probe.injectRegfileBit(p, 35);
        if (probe.archState(0).regs[1] !=
            f.archState(0).regs[1]) {
            f.injectRegfileBit(p, 35);
            flipped = true;
        }
    }
    ASSERT_TRUE(flipped);
    f.runUntilCommitted(targets, 500000);
    EXPECT_TRUE(f.anyTrap())
        << "an out-of-segment store must raise a trap at commit";
}

TEST(Recovery, RenameFaultOftenRecoveredBySquash)
{
    Scenario s;
    Rng rng(13);
    int sdc = 0;
    int covered = 0;
    for (int trial = 0; trial < 200 && sdc < 12; ++trial) {
        for (Cycle c = 0; c < 97; ++c)
            s.master.tick();
        InjectionPlan plan;
        plan.target = Target::Rename;
        plan.tid = 0;
        plan.arch = 4; // the producer's architectural register
        plan.bit = static_cast<unsigned>(rng.below(8));
        auto targets = windowTargets(s.master, 800);
        auto g = runFork(s.master, nullptr, false, targets, 500000);
        auto u = runFork(s.master, &plan, false, targets, 500000);
        if (u.trapped != g.trapped || !u.reachedTargets)
            continue;
        if (archEquals(u.core, g.core))
            continue;
        ++sdc;
        auto f = runFork(s.master, &plan, true, targets, 500000);
        bool ok = f.core.faultDetected() ||
                  (f.reachedTargets && !f.trapped &&
                   archEquals(f.core, g.core));
        covered += ok ? 1 : 0;
    }
    if (sdc >= 4) {
        EXPECT_GT(covered, 0)
            << "some rename faults must be recovered by rollback";
    }
}

TEST(Recovery, ReplayAndRollbackAreArchitecturallyTransparent)
{
    // The protected fault-free fork must match the unprotected one
    // exactly — FaultHound's false positives never change results.
    Scenario s;
    auto targets = windowTargets(s.master, 2000);
    auto a = runFork(s.master, nullptr, true, targets, 500000);
    auto b = runFork(s.master, nullptr, false, targets, 500000);
    ASSERT_TRUE(a.reachedTargets);
    ASSERT_TRUE(b.reachedTargets);
    EXPECT_TRUE(archEquals(a.core, b.core));
}
