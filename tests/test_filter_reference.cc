/**
 * @file
 * Plane/scalar equivalence fuzzing: the bit-sliced BitFilter must be
 * observationally identical to the scalar ReferenceBitFilter — same
 * alarm masks from observe(), same unchanging mask, same per-bit
 * counter values — through arbitrary install/observe/clear sequences,
 * for every counter flavor the paper uses. The campaign's
 * bit-identical-results guarantee rests on this.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "filters/bit_filter.hh"
#include "reference_bit_filter.hh"
#include "sim/rng.hh"

using namespace fh;
using namespace fh::filters;

namespace
{

struct NamedConfig
{
    const char *name;
    CounterConfig cfg;
};

const NamedConfig kConfigs[] = {
    {"sticky", CounterConfig::sticky()},
    {"standard", CounterConfig::standard()},
    {"biased", CounterConfig::biased()},
    {"biased3", CounterConfig::biased3()},
};

/** Values with locality: a base with a few jittering low bits, plus
 *  occasional far values so counters move through all states. */
u64
drawValue(Rng &rng)
{
    if (rng.chance(0.05))
        return rng.next(); // teleport: exercises saturation everywhere
    const u64 base = 0x40000000 + (rng.below(4) << 24);
    return base + (rng.next() & 0x1f) * 8;
}

void
expectSameState(const BitFilter &swar, const ReferenceBitFilter &ref,
                const std::string &ctx)
{
    ASSERT_EQ(swar.prev(), ref.prev()) << ctx;
    ASSERT_EQ(swar.unchangingMask(), ref.unchangingMask()) << ctx;
    for (unsigned bit = 0; bit < wordBits; ++bit)
        ASSERT_EQ(swar.counterAt(bit), ref.counterAt(bit))
            << ctx << " bit " << bit;
}

class PlaneScalarFuzz : public testing::TestWithParam<NamedConfig>
{
};

} // namespace

TEST_P(PlaneScalarFuzz, RandomSequencesMatchAtEveryStep)
{
    const CounterConfig cfg = GetParam().cfg;
    for (u64 seed = 1; seed <= 40; ++seed) {
        Rng rng(seed);
        BitFilter swar(cfg);
        ReferenceBitFilter ref(cfg);
        const u64 v0 = drawValue(rng);
        swar.install(v0);
        ref.install(v0);
        for (unsigned step = 0; step < 400; ++step) {
            const std::string ctx = std::string(GetParam().name) +
                                    " seed " + std::to_string(seed) +
                                    " step " + std::to_string(step);
            const int roll = rng.chance(0.02)   ? 0
                             : rng.chance(0.02) ? 1
                                                : 2;
            if (roll == 0) {
                const u64 v = drawValue(rng);
                swar.install(v);
                ref.install(v);
            } else if (roll == 1) {
                swar.clear();
                ref.clear();
            } else {
                const u64 v = drawValue(rng);
                ASSERT_EQ(swar.observe(v), ref.observe(v)) << ctx;
            }
            // Probe-side equivalence rides on the state equality.
            const u64 probe = drawValue(rng);
            ASSERT_EQ(swar.mismatchMask(probe), ref.mismatchMask(probe))
                << ctx;
            ASSERT_EQ(swar.mismatchCount(probe),
                      ref.mismatchCount(probe))
                << ctx;
            expectSameState(swar, ref, ctx);
        }
    }
}

TEST_P(PlaneScalarFuzz, AdversarialBitPatterns)
{
    // All-ones flips, single-bit walks, and alternating masks push
    // every lane through saturation and full decay together.
    const CounterConfig cfg = GetParam().cfg;
    BitFilter swar(cfg);
    ReferenceBitFilter ref(cfg);
    swar.install(0);
    ref.install(0);
    std::vector<u64> pattern;
    for (unsigned bit = 0; bit < wordBits; ++bit)
        pattern.push_back(1ULL << bit);
    pattern.insert(pattern.end(),
                   {~0ULL, 0ULL, ~0ULL, 0ULL, 0xaaaaaaaaaaaaaaaaULL,
                    0x5555555555555555ULL, 0ULL, 0ULL, 0ULL, 0ULL, 0ULL,
                    0ULL, 0ULL, 0ULL});
    for (size_t i = 0; i < pattern.size(); ++i) {
        const std::string ctx = std::string(GetParam().name) + " i " +
                                std::to_string(i);
        ASSERT_EQ(swar.observe(pattern[i]), ref.observe(pattern[i]))
            << ctx;
        expectSameState(swar, ref, ctx);
    }
}

INSTANTIATE_TEST_SUITE_P(Configs, PlaneScalarFuzz,
                         testing::ValuesIn(kConfigs),
                         [](const testing::TestParamInfo<NamedConfig> &i) {
                             return i.param.name;
                         });
