/**
 * @file
 * Chaos hardening for the distributed fabric, oracle-checked against
 * PR 5's guarantee: under ANY seeded FH_CHAOS schedule (frame drops,
 * truncations, bit flips, duplications, delays, connection resets),
 * after a coordinator SIGKILL + restart, and with a fully dead fleet,
 * a dispatched campaign's counters, profile, and journal BYTES must
 * equal the clean single-process run. Also covers: quarantine of a
 * repeatedly-failing worker pid, record-level journal corruption
 * (every single-bit flip either heals as a torn tail or refuses with
 * a precise error — never silently continues), and ChildGuard's
 * no-orphans promise on the fh_fatal / abort death paths.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <dirent.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "dist/chaos.hh"
#include "dist/coordinator.hh"
#include "dist/messages.hh"
#include "dist/spawner.hh"
#include "dist/spec.hh"
#include "dist/worker.hh"
#include "fault/campaign.hh"
#include "fault/journal.hh"
#include "workload/workload.hh"

using namespace fh;

namespace
{

/** The same small classification-diverse campaign test_dist uses. */
dist::CampaignSpec
testSpec()
{
    dist::CampaignSpec spec;
    spec.bench = "ocean";
    spec.scheme = "faulthound";
    spec.coreThreads = 2;
    spec.workload.maxThreads = 2;
    spec.workload.footprintDivider = 64;
    spec.campaign.injections = 24;
    spec.campaign.window = 300;
    spec.campaign.seed = 77;
    spec.campaign.threads = 1;
    return spec;
}

fault::CampaignResult
singleProcess(const dist::CampaignSpec &spec,
              const std::string &journal = "")
{
    isa::Program prog = spec.buildProgram();
    fault::CampaignConfig cfg = spec.campaign;
    cfg.threads = 1;
    cfg.journalPath = journal;
    return fault::runCampaign(spec.buildParams(), &prog, cfg);
}

void
expectIdentical(const fault::CampaignResult &a,
                const fault::CampaignResult &b)
{
    EXPECT_EQ(a.injected, b.injected);
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.noisy, b.noisy);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.recovered, b.recovered);
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.uncovered, b.uncovered);
    EXPECT_EQ(a.trialErrors, b.trialErrors);
    EXPECT_EQ(a.hungBare, b.hungBare);
    EXPECT_EQ(a.hungProtected, b.hungProtected);
    EXPECT_EQ(a.skippedProvablyMasked, b.skippedProvablyMasked);
    EXPECT_EQ(a.earlyTerminated, b.earlyTerminated);
    EXPECT_EQ(a.profile, b.profile);
    EXPECT_EQ(a.bins.covered, b.bins.covered);
    EXPECT_EQ(a.bins.secondLevelMasked, b.bins.secondLevelMasked);
    EXPECT_EQ(a.bins.completedReg, b.bins.completedReg);
    EXPECT_EQ(a.bins.archReg, b.bins.archReg);
    EXPECT_EQ(a.bins.renameUncovered, b.bins.renameUncovered);
    EXPECT_EQ(a.bins.noTrigger, b.bins.noTrigger);
    EXPECT_EQ(a.bins.other, b.bins.other);
}

std::string
tempPath(const std::string &name)
{
    const std::string path = testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
schemeName(const dist::CampaignSpec &spec)
{
    return filters::to_string(spec.buildParams().detector.scheme);
}

/** A worker tuned for a hostile wire: fast heartbeats, fast stall
 *  detection, and enough cheap reconnect attempts to outlast any
 *  schedule the chaos engine throws at it. */
pid_t
spawnChaosWorker(const dist::Endpoint &ep)
{
    return dist::spawnFn([ep] {
        dist::WorkerOptions opts;
        opts.endpoint = ep;
        opts.jobs = 1;
        opts.heartbeatMs = 25;
        opts.stallTimeoutMs = 500;
        opts.maxReconnects = 50;
        opts.backoffBaseMs = 5;
        opts.backoffCapMs = 50;
        return dist::runWorker(opts);
    });
}

pid_t
spawnRealWorker(const dist::Endpoint &ep, unsigned delayMs = 0)
{
    return dist::spawnFn([ep, delayMs] {
        if (delayMs)
            ::usleep(delayMs * 1000);
        dist::WorkerOptions opts;
        opts.endpoint = ep;
        opts.jobs = 1;
        opts.heartbeatMs = 50;
        return dist::runWorker(opts);
    });
}

/** Blocking read of the next frame (child-side helper). */
bool
recvFrame(int fd, dist::FrameReader &reader, dist::Frame &out)
{
    while (!reader.next(out)) {
        if (reader.corrupt())
            return false;
        u8 buf[4096];
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            return false;
        reader.feed(buf, static_cast<size_t>(n));
    }
    return true;
}

// ---------------------------------------------------------------------
// Chaos schedules: the oracle is bit-identity with the clean run.
// ---------------------------------------------------------------------

TEST(Chaos, AnyScheduleYieldsBitIdenticalResults)
{
    ::unsetenv("FH_CHAOS");
    const dist::CampaignSpec spec = testSpec();
    const std::string refJournal = tempPath("chaos_ref.fhj");
    const fault::CampaignResult ref = singleProcess(spec, refJournal);
    ASSERT_GT(ref.injected, 0u);
    const std::string refBytes = fileBytes(refJournal);

    // Four very different storms: CRC-caught corruption, connection
    // churn, vanished/torn frames, and the default mixed schedule.
    const char *schedules[] = {
        "101:flip=60,dup=60",
        "202:reset=40,delay=20",
        "303:drop=25,trunc=25",
        "404",
    };
    u64 disruption = 0;
    for (const char *schedule : schedules) {
        ::setenv("FH_CHAOS", schedule, 1);
        dist::CoordinatorOptions opts;
        opts.workers = 2;
        opts.chunk = 6;
        opts.leaseTimeoutMs = 700;
        opts.noWorkerTimeoutMs = 2500; // degraded tail beats hanging
        dist::Coordinator coord(spec, opts); // re-arms chaos from env
        std::vector<pid_t> pids;
        for (unsigned i = 0; i < 2; ++i)
            pids.push_back(spawnChaosWorker(coord.endpoint()));

        const std::string journal = tempPath("chaos_run.fhj");
        fault::CampaignResult r;
        {
            fault::TrialJournal j(journal, spec.campaign,
                                  schemeName(spec));
            r = coord.run(&j);
        }
        for (pid_t pid : pids)
            dist::reap(pid);

        expectIdentical(ref, r);
        EXPECT_FALSE(r.partial) << "schedule " << schedule;
        EXPECT_EQ(refBytes, fileBytes(journal))
            << "journal diverged under schedule " << schedule;
        const dist::DistStats &ds = coord.stats();
        disruption += ds.crcErrors + ds.reconnects + ds.workersDied +
                      ds.rangesReissued + (ds.degraded ? 1 : 0);
        std::remove(journal.c_str());
    }
    // The storms must actually have hit something, or this test is
    // vacuously passing on a clean wire.
    EXPECT_GT(disruption, 0u);
    ::unsetenv("FH_CHAOS");
    dist::chaos::reload();
    std::remove(refJournal.c_str());
}

TEST(Chaos, ChaosSpecParsesAndArms)
{
    ::setenv("FH_CHAOS", "7:flip=1000", 1);
    dist::chaos::reload();
    EXPECT_TRUE(dist::chaos::enabled());
    ::unsetenv("FH_CHAOS");
    dist::chaos::reload();
    EXPECT_FALSE(dist::chaos::enabled());
}

// ---------------------------------------------------------------------
// Coordinator crash recovery: SIGKILL mid-campaign, restart, resume.
// ---------------------------------------------------------------------

TEST(Chaos, CoordinatorSigkillRestartResumesBitIdentically)
{
    ::unsetenv("FH_CHAOS");
    dist::chaos::reload();
    dist::CampaignSpec spec = testSpec();
    spec.campaign.injections = 48;
    const std::string refJournal = tempPath("crash_ref.fhj");
    const fault::CampaignResult ref = singleProcess(spec, refJournal);

    const std::string journal = tempPath("crash_run.fhj");
    const std::string sock = tempPath("crash_coord.sock");

    // Phase 1: a coordinator process (own workers, journal enabled),
    // SIGKILLed once the journal shows a merged prefix — torn tail
    // and all, exactly what a crashed host leaves behind.
    const pid_t coordPid = dist::spawnFn([&]() -> int {
        dist::CoordinatorOptions opts;
        opts.workers = 2;
        opts.chunk = 6;
        opts.listen.unixDomain = true;
        opts.listen.host = sock;
        dist::Coordinator coord(spec, opts);
        std::vector<pid_t> pids;
        for (unsigned i = 0; i < 2; ++i)
            pids.push_back(spawnRealWorker(coord.endpoint()));
        fault::TrialJournal j(journal, spec.campaign,
                              schemeName(spec));
        coord.run(&j);
        for (pid_t pid : pids)
            dist::reap(pid);
        return 0;
    });
    ASSERT_GT(coordPid, 0);

    // Wait for the header + at least 8 records, then kill -9.
    for (int spins = 0; spins < 10000; ++spins) {
        const std::string bytes = fileBytes(journal);
        const long lines =
            std::count(bytes.begin(), bytes.end(), '\n');
        if (lines >= 9)
            break;
        int status;
        if (dist::reapIfExited(coordPid, status))
            break; // finished before we could kill it — still valid
        ::usleep(2000);
    }
    ::kill(coordPid, SIGKILL);
    dist::reap(coordPid);

    // Phase 2: same spec, same journal, fresh coordinator + fleet.
    // The merged prefix replays; the rest executes; bytes converge.
    {
        fault::TrialJournal j(journal, spec.campaign,
                              schemeName(spec));
        dist::CoordinatorOptions opts;
        opts.workers = 2;
        dist::Coordinator coord(spec, opts);
        std::vector<pid_t> pids;
        for (unsigned i = 0; i < 2; ++i)
            pids.push_back(spawnRealWorker(coord.endpoint()));
        const fault::CampaignResult r = coord.run(&j);
        for (pid_t pid : pids)
            dist::reap(pid);
        expectIdentical(ref, r);
        EXPECT_FALSE(r.partial);
    }
    EXPECT_EQ(fileBytes(refJournal), fileBytes(journal));
    std::remove(refJournal.c_str());
    std::remove(journal.c_str());
    std::remove(sock.c_str());
}

// ---------------------------------------------------------------------
// Dead fleet: degrade to in-process execution, never hang or die.
// ---------------------------------------------------------------------

TEST(Chaos, DeadFleetDegradesToInProcessIdentically)
{
    ::unsetenv("FH_CHAOS");
    dist::chaos::reload();
    const dist::CampaignSpec spec = testSpec();
    const std::string refJournal = tempPath("degraded_ref.fhj");
    const fault::CampaignResult ref = singleProcess(spec, refJournal);

    dist::CoordinatorOptions opts;
    opts.workers = 2;
    opts.noWorkerTimeoutMs = 200; // nobody is coming
    dist::Coordinator coord(spec, opts);
    const std::string journal = tempPath("degraded_run.fhj");
    fault::CampaignResult r;
    {
        fault::TrialJournal j(journal, spec.campaign,
                              schemeName(spec));
        r = coord.run(&j);
    }
    expectIdentical(ref, r);
    EXPECT_FALSE(r.partial);
    EXPECT_TRUE(coord.stats().degraded);
    EXPECT_EQ(fileBytes(refJournal), fileBytes(journal));
    std::remove(refJournal.c_str());
    std::remove(journal.c_str());
}

// ---------------------------------------------------------------------
// Quarantine: a pid that keeps failing leases stops getting them.
// ---------------------------------------------------------------------

/** Takes a lease, then vanishes — one lease failure per connection. */
pid_t
spawnLeaseDropper(const dist::Endpoint &ep)
{
    return dist::spawnFn([ep]() -> int {
        std::string error;
        const int fd = dist::connectTo(ep, error);
        if (fd < 0)
            return 1;
        dist::HelloMsg hello;
        hello.pid = static_cast<u64>(::getpid());
        dist::sendFrame(fd, dist::MsgType::Hello, hello.encode());
        dist::FrameReader reader;
        dist::Frame f;
        while (recvFrame(fd, reader, f)) {
            if (static_cast<dist::MsgType>(f.type) ==
                dist::MsgType::Assign) {
                ::close(fd);
                return 0;
            }
        }
        return 0;
    });
}

TEST(Chaos, RepeatedLeaseFailureQuarantinesWorker)
{
    ::unsetenv("FH_CHAOS");
    dist::chaos::reload();
    const dist::CampaignSpec spec = testSpec();
    const fault::CampaignResult ref = singleProcess(spec);

    dist::CoordinatorOptions opts;
    opts.workers = 2;
    opts.chunk = 12;
    opts.quarantineStrikes = 1; // first failure quarantines
    dist::Coordinator coord(spec, opts);
    const pid_t bad = spawnLeaseDropper(coord.endpoint());
    const pid_t good = spawnRealWorker(coord.endpoint(), 100);

    const fault::CampaignResult r = coord.run(nullptr);
    dist::reap(bad);
    dist::reap(good);

    expectIdentical(ref, r);
    EXPECT_FALSE(r.partial);
    EXPECT_GE(coord.stats().quarantined, 1u);
    EXPECT_GE(coord.stats().rangesReissued, 1u);
}

// ---------------------------------------------------------------------
// Journal corruption: every single-bit flip is either a healed torn
// tail or a precise refusal — never a silent wrong resume.
// ---------------------------------------------------------------------

TEST(Chaos, JournalBitFlipHealsOrRefusesNeverLies)
{
    dist::CampaignSpec spec = testSpec();
    spec.campaign.injections = 4; // tiny: the sweep forks per byte
    const std::string clean = tempPath("flip_clean.fhj");
    singleProcess(spec, clean);
    const std::string cleanBytes = fileBytes(clean);
    ASSERT_GT(cleanBytes.size(), 0u);

    // Capture the clean replay (packed, comparable across processes).
    std::vector<std::vector<u64>> want;
    {
        fault::TrialJournal j(clean, spec.campaign, schemeName(spec));
        for (u64 t = 0; t < j.replayCount(); ++t) {
            std::vector<u64> rec(fault::kTrialCounters +
                                 fault::kTrialMetaFields);
            u64 d[fault::kTrialCounters];
            u64 m[fault::kTrialMetaFields];
            fault::packTrialCounters(j.replayed(t), d);
            fault::packTrialMeta(j.replayedMeta(t), m);
            std::copy(d, d + fault::kTrialCounters, rec.begin());
            std::copy(m, m + fault::kTrialMetaFields,
                      rec.begin() + fault::kTrialCounters);
            want.push_back(std::move(rec));
        }
        ASSERT_EQ(want.size(), 4u);
    }

    const std::string flipped = tempPath("flip_damaged.fhj");
    size_t healed = 0, refused = 0;
    for (size_t off = 0; off < cleanBytes.size(); ++off) {
        std::string bytes = cleanBytes;
        bytes[off] = static_cast<char>(
            static_cast<u8>(bytes[off]) ^ (1u << (off % 8)));
        {
            std::ofstream out(flipped, std::ios::binary |
                                           std::ios::trunc);
            out.write(bytes.data(),
                      static_cast<std::streamsize>(bytes.size()));
        }
        // Open in a throwaway process: fh_fatal is a refusal (exit 1);
        // exit 0 means the replayed prefix matched the clean records
        // exactly; exit 2 flags a silent lie.
        const pid_t child = dist::spawnFn([&]() -> int {
            std::FILE *sink = std::freopen("/dev/null", "w", stderr);
            (void)sink;
            sink = std::freopen("/dev/null", "w", stdout);
            (void)sink;
            fault::TrialJournal j(flipped, spec.campaign,
                                  schemeName(spec));
            if (j.replayCount() > want.size())
                return 2;
            for (u64 t = 0; t < j.replayCount(); ++t) {
                u64 d[fault::kTrialCounters];
                u64 m[fault::kTrialMetaFields];
                fault::packTrialCounters(j.replayed(t), d);
                fault::packTrialMeta(j.replayedMeta(t), m);
                for (size_t i = 0; i < fault::kTrialCounters; ++i)
                    if (d[i] != want[t][i])
                        return 2;
                for (size_t i = 0; i < fault::kTrialMetaFields; ++i)
                    if (m[i] != want[t][fault::kTrialCounters + i])
                        return 2;
            }
            return 0;
        });
        ASSERT_GT(child, 0);
        const int raw = dist::reap(child);
        const int status =
            WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
        ASSERT_TRUE(status == 0 || status == 1)
            << "flip at byte " << off << " produced exit " << status
            << " — a corrupted journal was neither healed nor "
               "refused";
        if (status == 0)
            ++healed;
        else
            ++refused;
    }
    // Both regimes must occur: header/mid-file flips refuse, final-
    // record flips heal as torn tails.
    EXPECT_GT(healed, 0u);
    EXPECT_GT(refused, 0u);
    std::remove(clean.c_str());
    std::remove(flipped.c_str());
}

// ---------------------------------------------------------------------
// ChildGuard: no orphans on the no-RAII death paths.
// ---------------------------------------------------------------------

void
expectGuardReaps(bool viaAbort)
{
    int pfd[2];
    ASSERT_EQ(::pipe(pfd), 0);
    const pid_t child = dist::spawnFn([&]() -> int {
        std::FILE *sink = std::freopen("/dev/null", "w", stderr);
        (void)sink;
        const pid_t g = dist::spawnFn([]() -> int {
            ::sleep(600);
            return 0;
        });
        dist::ChildGuard::add(g);
        const ssize_t w = ::write(pfd[1], &g, sizeof(g));
        (void)w;
        if (viaAbort)
            std::abort(); // the SIGABRT handler must clean up
        std::exit(1);     // the atexit hook must clean up (fh_fatal)
    });
    ASSERT_GT(child, 0);
    ::close(pfd[1]);
    pid_t g = -1;
    ASSERT_EQ(::read(pfd[0], &g, sizeof(g)),
              static_cast<ssize_t>(sizeof(g)));
    ::close(pfd[0]);
    ASSERT_GT(g, 0);
    dist::reap(child);
    // The grandchild must be gone shortly after the guard fired.
    bool dead = false;
    for (int spins = 0; spins < 2500; ++spins) {
        if (::kill(g, 0) != 0 && errno == ESRCH) {
            dead = true;
            break;
        }
        ::usleep(2000);
    }
    EXPECT_TRUE(dead) << "grandchild " << g << " survived the "
                      << (viaAbort ? "abort" : "exit") << " path";
}

TEST(Chaos, ChildGuardReapsOnExitPath)
{
    expectGuardReaps(false);
}

TEST(Chaos, ChildGuardReapsOnAbortPath)
{
    expectGuardReaps(true);
}

// ---------------------------------------------------------------------
// fhsim dispatch: a coordinator fh_fatal must not orphan workers.
// ---------------------------------------------------------------------

bool
anyCmdlineMentions(const std::string &needle)
{
    DIR *proc = ::opendir("/proc");
    if (!proc)
        return false;
    bool found = false;
    while (const dirent *ent = ::readdir(proc)) {
        const std::string name = ent->d_name;
        if (name.empty() ||
            name.find_first_not_of("0123456789") != std::string::npos)
            continue;
        std::ifstream in("/proc/" + name + "/cmdline",
                         std::ios::binary);
        std::stringstream ss;
        ss << in.rdbuf();
        if (ss.str().find(needle) != std::string::npos) {
            found = true;
            break;
        }
    }
    ::closedir(proc);
    return found;
}

TEST(Chaos, DispatchFatalLeavesNoOrphanWorkers)
{
    std::string exe = dist::selfExe();
    const size_t slash = exe.rfind('/');
    ASSERT_NE(slash, std::string::npos);
    const std::string fhsim =
        exe.substr(0, slash) + "/../examples/fhsim";
    if (::access(fhsim.c_str(), X_OK) != 0)
        GTEST_SKIP() << "fhsim binary not built at " << fhsim;

    // A journal from a different campaign: dispatch opens it AFTER
    // spawning the workers, hits the header mismatch, fh_fatals — and
    // ChildGuard must take the workers down with it.
    const dist::CampaignSpec spec = testSpec();
    const std::string journal = tempPath("orphan_mismatch.fhj");
    {
        fault::CampaignConfig other = spec.campaign;
        other.seed = 987654321;
        fault::TrialJournal j(journal, other, schemeName(spec));
    }
    const std::string sock =
        tempPath("orphan_marker_" + std::to_string(::getpid()) +
                 ".sock");
    const std::string cmd =
        fhsim + " dispatch jobs=2 bench=ocean seed=77 injections=24 "
                "window=300 journal=" +
        journal + " listen=unix:" + sock + " >/dev/null 2>&1";
    const int rc = std::system(cmd.c_str());
    ASSERT_TRUE(WIFEXITED(rc));
    EXPECT_NE(WEXITSTATUS(rc), 0);
    // The endpoint string is on every worker's command line; nobody
    // may still be carrying it.
    EXPECT_FALSE(anyCmdlineMentions(sock))
        << "a worker process survived the coordinator's fh_fatal";
    std::remove(journal.c_str());
    std::remove(sock.c_str());
}

} // namespace
