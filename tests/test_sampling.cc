/**
 * @file
 * Statistical campaign engine: Wilson interval closed forms, stratum
 * weights and draw/label consistency, the incremental architectural
 * digest invariant, vulnerability-profile attribution, journal meta
 * round-trips, and — the load-bearing property — adaptive (ciTarget)
 * campaigns stopping at the same wave with byte-identical profiles for
 * any worker-thread count, across a journal resume, and through the
 * distributed fabric.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "dist/coordinator.hh"
#include "dist/spawner.hh"
#include "dist/spec.hh"
#include "dist/worker.hh"
#include "fault/campaign.hh"
#include "fault/journal.hh"
#include "fault/sampling.hh"
#include "isa/functional.hh"
#include "pipeline/core.hh"
#include "sim/rng.hh"
#include "workload/workload.hh"

using namespace fh;

namespace
{

/** Hand-evaluated Wilson score interval (the textbook formula). */
fault::WilsonInterval
wilsonReference(u64 successes, u64 n, double z)
{
    fault::WilsonInterval w;
    if (n == 0)
        return w;
    const double nn = static_cast<double>(n);
    const double p = static_cast<double>(successes) / nn;
    const double z2 = z * z;
    const double denom = 1.0 + z2 / nn;
    w.center = (p + z2 / (2.0 * nn)) / denom;
    w.halfWidth = z *
                  std::sqrt(p * (1.0 - p) / nn +
                            z2 / (4.0 * nn * nn)) /
                  denom;
    return w;
}

} // namespace

TEST(Wilson, ClosedForm)
{
    // No observations: full prior width, so an unsampled stratum keeps
    // the pooled interval wide open.
    const fault::WilsonInterval empty = fault::wilson(0, 0);
    EXPECT_EQ(empty.halfWidth, 1.0);

    for (const auto &[k, n] : std::vector<std::pair<u64, u64>>{
             {0, 10}, {3, 10}, {5, 10}, {30, 100}, {999, 1000}}) {
        const fault::WilsonInterval got = fault::wilson(k, n);
        const fault::WilsonInterval want = wilsonReference(k, n, 1.96);
        EXPECT_NEAR(got.center, want.center, 1e-12) << k << "/" << n;
        EXPECT_NEAR(got.halfWidth, want.halfWidth, 1e-12)
            << k << "/" << n;
        // Symmetry: counting failures instead of successes mirrors
        // the interval around 1/2.
        const fault::WilsonInterval mirror = fault::wilson(n - k, n);
        EXPECT_NEAR(got.center + mirror.center, 1.0, 1e-12);
        EXPECT_NEAR(got.halfWidth, mirror.halfWidth, 1e-12);
    }

    // More evidence at the same rate always tightens the interval.
    double prev = fault::wilson(1, 4).halfWidth;
    for (u64 scale = 2; scale <= 64; scale *= 2) {
        const double hw = fault::wilson(scale, 4 * scale).halfWidth;
        EXPECT_LT(hw, prev) << "n=" << 4 * scale;
        prev = hw;
    }
}

TEST(StratumSpace, WeightsSumToOne)
{
    for (const fault::InjectionMix mix :
         {fault::InjectionMix{},
          fault::InjectionMix{0.6, 0.3, 0.1},
          fault::InjectionMix{0.0, 0.0, 1.0},
          fault::InjectionMix{0.0, 1.0, 0.5}}) {
        const fault::StratumSpace space(mix);
        double sum = 0.0;
        for (unsigned s = 0; s < fault::StratumSpace::kCount; ++s) {
            EXPECT_GE(space.weight(s), 0.0) << "stratum " << s;
            sum += space.weight(s);
        }
        EXPECT_NEAR(sum, 1.0, 1e-12);
    }
}

TEST(StratumSpace, DrawLandsInItsStratum)
{
    workload::WorkloadSpec wspec;
    wspec.maxThreads = 2;
    wspec.footprintDivider = 64;
    isa::Program prog = workload::build("ocean", wspec);
    pipeline::CoreParams params;
    params.detector = filters::DetectorParams::faultHound();
    pipeline::Core core(params, &prog);
    while (core.committedTotal() < 2000 && !core.allHalted())
        core.tick();
    ASSERT_FALSE(core.allHalted());

    const fault::StratumSpace space{fault::InjectionMix{}};
    Rng rng(5);
    for (unsigned s = 0; s < fault::StratumSpace::kCount; ++s) {
        for (unsigned rep = 0; rep < 8; ++rep) {
            const fault::InjectionPlan plan = space.draw(core, s, rng);
            EXPECT_EQ(fault::StratumSpace::stratumOf(plan), s)
                << "stratum " << s << " rep " << rep << " target "
                << static_cast<int>(plan.target) << " bit "
                << plan.bit;
        }
    }

    // Fixed-count labeling covers every mix-drawn plan too.
    fault::InjectionMix mix;
    for (unsigned rep = 0; rep < 256; ++rep) {
        const fault::InjectionPlan plan =
            fault::drawPlan(core, mix, rng);
        EXPECT_LT(fault::StratumSpace::stratumOf(plan),
                  fault::StratumSpace::kCount);
    }
}

/**
 * The commit-time incremental digest must equal the bulk digest of the
 * drained architectural state on a fault-free core — that identity is
 * what lets GoldenLedger::matches compare digests instead of register
 * arrays, and what the early-termination soundness argument rests on.
 */
TEST(ArchDigest, IncrementalMatchesBulk)
{
    workload::WorkloadSpec wspec;
    wspec.maxThreads = 2;
    wspec.footprintDivider = 64;
    isa::Program prog = workload::build("ocean", wspec);
    pipeline::CoreParams params;
    params.detector = filters::DetectorParams::faultHound();
    pipeline::Core core(params, &prog);
    for (unsigned checkpoints = 0; checkpoints < 6; ++checkpoints) {
        u64 goal = core.committedTotal() + 500;
        while (core.committedTotal() < goal && !core.allHalted())
            core.tick();
        for (unsigned tid = 0; tid < core.numThreads(); ++tid)
            EXPECT_EQ(core.archDigest(tid),
                      isa::archStateDigest(core.archState(tid)))
                << "tid " << tid << " checkpoint " << checkpoints;
        if (core.allHalted())
            break;
    }
}

TEST(VulnProfile, AttributesSdcTrials)
{
    fault::CampaignResult delta;
    delta.injected = 1;
    delta.sdc = 1;
    delta.detected = 1;
    fault::TrialMeta meta;
    meta.stratum = 6;
    meta.structure = static_cast<u8>(fault::Target::RegFile);
    meta.bit = 17;
    meta.cycleBucket = 3;
    meta.pc = 0x1234;

    fault::VulnProfile p;
    p.addTrial(delta, meta);
    EXPECT_EQ(p.strata[6].trials, 1u);
    EXPECT_EQ(p.strata[6].sdc, 1u);
    EXPECT_EQ(p.strata[6].covered, 1u);
    EXPECT_EQ(p.sdcBits[0][17], 1u);
    EXPECT_EQ(p.sdcPcs.at(0x1234), 1u);
    EXPECT_EQ(p.sdcCycleBuckets[3], 1u);

    // Masked trials contribute trial counts but no SDC attribution.
    fault::CampaignResult maskedDelta;
    maskedDelta.injected = 1;
    maskedDelta.masked = 1;
    maskedDelta.skippedProvablyMasked = 1;
    fault::TrialMeta maskedMeta;
    maskedMeta.stratum = 2;
    maskedMeta.flags = fault::kMetaSkippedProvablyMasked;
    maskedMeta.pc = 0x9999;
    p.addTrial(maskedDelta, maskedMeta);
    EXPECT_EQ(p.strata[2].trials, 1u);
    EXPECT_EQ(p.strata[2].masked, 1u);
    EXPECT_EQ(p.strata[2].skippedProvablyMasked, 1u);
    EXPECT_EQ(p.sdcPcs.count(0x9999), 0u);

    // Merging profiles is plain counter addition.
    fault::VulnProfile q;
    q.addTrial(delta, meta);
    q += p;
    EXPECT_EQ(q.strata[6].sdc, 2u);
    EXPECT_EQ(q.sdcPcs.at(0x1234), 2u);
    EXPECT_EQ(q.trials(), 3u);
}

namespace
{

/** Small classification-diverse adaptive campaign over ocean. */
struct AdaptiveSetup
{
    isa::Program prog;
    pipeline::CoreParams params;
    fault::CampaignConfig cfg;
};

AdaptiveSetup
adaptiveSetup()
{
    workload::WorkloadSpec wspec;
    wspec.maxThreads = 2;
    wspec.footprintDivider = 64;
    AdaptiveSetup s{workload::build("ocean", wspec), {}, {}};
    s.params.detector = filters::DetectorParams::faultHound();
    s.cfg.injections = 400; // generous cap; the CI stop should fire
    s.cfg.window = 300;
    s.cfg.seed = 1234;
    s.cfg.ciTarget = 0.12;
    s.cfg.ciWave = 32;
    return s;
}

std::string
tempPath(const std::string &name)
{
    const std::string path = testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

} // namespace

/**
 * The adaptive stop is a pure function of the trial-order-merged
 * counter prefix at wave boundaries, so any worker-thread count must
 * stop at the same wave with the same counters and a byte-identical
 * profile — and a journal resume must land on the same stop.
 */
TEST(Adaptive, DeterministicAcrossThreadsAndResume)
{
    AdaptiveSetup s = adaptiveSetup();

    s.cfg.threads = 1;
    const fault::CampaignResult one =
        fault::runCampaign(s.params, &s.prog, s.cfg);
    ASSERT_TRUE(one.ciStopped)
        << "tune ciTarget: the adaptive stop never fired (injected="
        << one.injected << ")";
    EXPECT_FALSE(one.partial);
    EXPECT_LT(one.injected, s.cfg.injections);
    EXPECT_EQ(one.injected % s.cfg.ciWave, 0u);
    EXPECT_EQ(one.injected, one.profile.trials());

    s.cfg.threads = 4;
    const fault::CampaignResult four =
        fault::runCampaign(s.params, &s.prog, s.cfg);
    EXPECT_EQ(four.injected, one.injected);
    EXPECT_EQ(four.ciStopped, one.ciStopped);
    EXPECT_EQ(four.masked, one.masked);
    EXPECT_EQ(four.noisy, one.noisy);
    EXPECT_EQ(four.sdc, one.sdc);
    EXPECT_EQ(four.recovered, one.recovered);
    EXPECT_EQ(four.detected, one.detected);
    EXPECT_EQ(four.uncovered, one.uncovered);
    EXPECT_EQ(four.profile, one.profile);

    // Journal round-trip: replaying the recorded trials reconstructs
    // the same profile and re-derives the same stop without running
    // a single new trial.
    const std::string journal = tempPath("fh_adaptive_journal.jsonl");
    s.cfg.threads = 2;
    s.cfg.journalPath = journal;
    const fault::CampaignResult live =
        fault::runCampaign(s.params, &s.prog, s.cfg);
    EXPECT_EQ(live.injected, one.injected);
    EXPECT_EQ(live.profile, one.profile);
    const fault::CampaignResult replay =
        fault::runCampaign(s.params, &s.prog, s.cfg);
    EXPECT_EQ(replay.replayedTrials, one.injected);
    EXPECT_EQ(replay.injected, one.injected);
    EXPECT_TRUE(replay.ciStopped);
    EXPECT_EQ(replay.profile, one.profile);
    std::remove(journal.c_str());
}

/**
 * The coordinator applies the same wave-boundary rule to the same
 * merged prefix, so a distributed adaptive campaign stops at the same
 * wave as a single process, with a byte-identical profile — even
 * though workers may have speculatively executed trials past the
 * boundary by the time the stop is decided.
 */
TEST(Adaptive, DistributedMatchesSingleProcess)
{
    AdaptiveSetup s = adaptiveSetup();
    s.cfg.threads = 1;
    const fault::CampaignResult solo =
        fault::runCampaign(s.params, &s.prog, s.cfg);
    ASSERT_TRUE(solo.ciStopped);

    dist::CampaignSpec spec;
    spec.bench = "ocean";
    spec.scheme = "faulthound";
    spec.coreThreads = 2;
    spec.workload.maxThreads = 2;
    spec.workload.footprintDivider = 64;
    spec.campaign = s.cfg;

    dist::CoordinatorOptions opts;
    opts.workers = 2;
    dist::Coordinator coord(spec, opts);
    std::vector<pid_t> pids;
    for (unsigned i = 0; i < 2; ++i) {
        const dist::Endpoint ep = coord.endpoint();
        pids.push_back(dist::spawnFn([ep] {
            dist::WorkerOptions w;
            w.endpoint = ep;
            w.jobs = 2;
            w.heartbeatMs = 50;
            return dist::runWorker(w);
        }));
    }
    const fault::CampaignResult merged = coord.run(nullptr);
    for (pid_t pid : pids)
        dist::reap(pid);

    EXPECT_TRUE(merged.ciStopped);
    EXPECT_FALSE(merged.partial);
    EXPECT_EQ(merged.injected, solo.injected);
    EXPECT_EQ(merged.masked, solo.masked);
    EXPECT_EQ(merged.noisy, solo.noisy);
    EXPECT_EQ(merged.sdc, solo.sdc);
    EXPECT_EQ(merged.recovered, solo.recovered);
    EXPECT_EQ(merged.detected, solo.detected);
    EXPECT_EQ(merged.uncovered, solo.uncovered);
    EXPECT_EQ(merged.profile, solo.profile);
}

/** ciTarget = 0 is the fixed-count legacy: no stop, full count, and
 *  the stratum labels are post-hoc only (schedule unchanged — pinned
 *  counts are guarded by test_campaign_pinned; here we check the cap
 *  and labeling side). */
TEST(Adaptive, ZeroTargetRunsFixedCount)
{
    AdaptiveSetup s = adaptiveSetup();
    s.cfg.ciTarget = 0.0;
    s.cfg.injections = 48;
    s.cfg.threads = 2;
    const fault::CampaignResult r =
        fault::runCampaign(s.params, &s.prog, s.cfg);
    EXPECT_FALSE(r.ciStopped);
    EXPECT_EQ(r.injected, 48u);
    EXPECT_EQ(r.profile.trials(), 48u);
}
