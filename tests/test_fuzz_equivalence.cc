/**
 * @file
 * Randomized-program equivalence fuzzing: generate arbitrary (but
 * well-formed) FH-RISC programs — straight-line blocks, nested loops,
 * data-dependent branches, loads/stores over a scratch segment — and
 * require the out-of-order core's final architectural state to equal
 * the functional executor's, under every detection scheme. This is the
 * widest net for pipeline bugs (forwarding, squash, replay, rollback).
 */

#include <gtest/gtest.h>

#include <optional>

#include "exec/thread_pool.hh"
#include "fault/campaign.hh"
#include "fault/injector.hh"
#include "fault/tandem.hh"
#include "isa/functional.hh"
#include "pipeline/core.hh"
#include "sim/rng.hh"

using namespace fh;
using namespace fh::isa;

namespace
{

constexpr Addr segBase = 0x30000000;
constexpr u64 segWords = 256; // power of two

/**
 * Emit a random basic block: ALU ops over r2..r12, masked loads and
 * stores over the scratch segment, using only in-range addresses.
 */
void
emitBlock(ProgramBuilder &b, Rng &rng, unsigned len)
{
    auto reg = [&] { return static_cast<u8>(2 + rng.below(11)); };
    for (unsigned i = 0; i < len; ++i) {
        switch (rng.below(10)) {
          case 0:
          case 1:
          case 2: {
            static const Op rrr[] = {Op::Add, Op::Sub, Op::And,
                                     Op::Or, Op::Xor, Op::Mul,
                                     Op::SltU};
            b.emit(makeRRR(rrr[rng.below(7)], reg(), reg(), reg()));
            break;
          }
          case 3:
          case 4: {
            static const Op rri[] = {Op::Addi, Op::Andi, Op::Ori,
                                     Op::Xori};
            b.emit(makeRRI(rri[rng.below(4)], reg(), reg(),
                           static_cast<i64>(rng.below(1024))));
            break;
          }
          case 5:
            b.emit(makeRRI(rng.chance(0.5) ? Op::Slli : Op::Srli,
                           reg(), reg(),
                           static_cast<i64>(rng.below(16))));
            break;
          case 6:
            b.emit(makeLi(reg(), static_cast<i64>(rng.next() >> 40)));
            break;
          case 7:
          case 8: {
            // addr = r1 + ((rX & mask) << 3): always in-segment.
            u8 idx = reg();
            b.emit(makeRRI(Op::Andi, 13, idx,
                           static_cast<i64>(segWords - 1)));
            b.emit(makeRRI(Op::Slli, 13, 13, 3));
            b.emit(makeRRR(Op::Add, 13, 13, 1));
            if (rng.chance(0.5))
                b.emit(makeLd(reg(), 13, 0));
            else
                b.emit(makeSt(13, reg(), 0));
            break;
          }
          default:
            b.emit(makeNop());
            break;
        }
    }
}

/** A random program: counted outer loop around random blocks with a
 *  data-dependent inner branch. */
Program
randomProgram(u64 seed, u64 iterations)
{
    Rng rng(seed);
    ProgramBuilder b("fuzz");
    b.addSegment(segBase, segWords * 8);
    b.addSegment(segBase + 0x10000, segWords * 8);
    Rng init_rng = rng.fork();
    for (u64 w = 0; w < segWords; ++w) {
        u64 v = init_rng.next() & 0xffff;
        b.initWord(segBase + w * 8, v);
        b.initWord(segBase + 0x10000 + w * 8, v);
    }

    b.emit(makeLi(14, 0)); // loop counter
    const u32 loop = b.here();
    b.emit(makeLi(15, static_cast<i64>(iterations)));
    emitBlock(b, rng, 4 + static_cast<unsigned>(rng.below(12)));

    // A data-dependent diamond.
    b.emit(makeRRI(Op::Andi, 13, static_cast<u8>(2 + rng.below(11)),
                   3));
    u32 br = b.emit(makeBranch(Op::Bne, 13, 0, 0));
    emitBlock(b, rng, 2 + static_cast<unsigned>(rng.below(6)));
    u32 jmp = b.emit(makeJmp(0));
    b.patchTargetHere(br);
    emitBlock(b, rng, 2 + static_cast<unsigned>(rng.below(6)));
    b.patchTargetHere(jmp);

    b.emit(makeRRI(Op::Addi, 14, 14, 1));
    b.emit(makeBranch(Op::Blt, 14, 15, loop));
    Program p = b.take();
    p.threadBases = {segBase, segBase + 0x10000};
    return p;
}

struct FuzzCase
{
    u64 seed;
    filters::Scheme scheme;
};

class FuzzEquivalence : public testing::TestWithParam<FuzzCase>
{
};

} // namespace

TEST_P(FuzzEquivalence, TimingMatchesFunctional)
{
    const auto &c = GetParam();
    Program prog = randomProgram(c.seed, 400);

    pipeline::CoreParams params;
    switch (c.scheme) {
      case filters::Scheme::None:
        params.detector = filters::DetectorParams::none();
        break;
      case filters::Scheme::PbfsBiased:
        params.detector = filters::DetectorParams::pbfsBiased();
        break;
      default:
        params.detector = filters::DetectorParams::faultHound();
        break;
    }
    pipeline::Core core(params, &prog);
    core.run(20'000'000);
    ASSERT_TRUE(core.allHalted()) << "seed " << c.seed;
    ASSERT_FALSE(core.anyTrap()) << "seed " << c.seed;

    mem::Memory ref;
    prog.load(ref);
    for (unsigned tid = 0; tid < 2; ++tid) {
        ArchState s = initialState(prog, tid);
        u64 guard = 0;
        while (!s.halted) {
            ASSERT_EQ(stepArch(prog, ref, s), Trap::None)
                << "seed " << c.seed;
            ASSERT_LT(++guard, 5'000'000u);
        }
        auto got = core.archState(tid);
        for (unsigned r = 0; r < numArchRegs; ++r)
            EXPECT_EQ(got.regs[r], s.regs[r])
                << "seed " << c.seed << " tid " << tid << " r" << r;
    }
    EXPECT_TRUE(core.memory().sameContents(ref)) << "seed " << c.seed;
}

namespace
{

std::vector<FuzzCase>
fuzzCases()
{
    std::vector<FuzzCase> cases;
    for (u64 seed = 1; seed <= 24; ++seed) {
        filters::Scheme scheme =
            seed % 3 == 0   ? filters::Scheme::None
            : seed % 3 == 1 ? filters::Scheme::FaultHound
                            : filters::Scheme::PbfsBiased;
        cases.push_back({seed, scheme});
    }
    return cases;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzEquivalence,
                         testing::ValuesIn(fuzzCases()),
                         [](const testing::TestParamInfo<FuzzCase> &i) {
                             return "seed" +
                                    std::to_string(i.param.seed) + "_" +
                                    std::to_string(static_cast<int>(
                                        i.param.scheme));
                         });

namespace
{

/** Every observable a fork-based classification reads. */
void
expectSameOutcome(const fault::ForkOutcome &a, const fault::ForkOutcome &b,
                  u64 trial, const char *flavor)
{
    EXPECT_EQ(a.reachedTargets, b.reachedTargets)
        << flavor << " trial " << trial;
    EXPECT_EQ(a.trapped, b.trapped) << flavor << " trial " << trial;
    EXPECT_EQ(a.core.cycle(), b.core.cycle())
        << flavor << " trial " << trial;
    for (unsigned tid = 0; tid < a.core.numThreads(); ++tid)
        EXPECT_EQ(a.core.committed(tid), b.core.committed(tid))
            << flavor << " trial " << trial << " tid " << tid;
    EXPECT_TRUE(fault::archEquals(a.core, b.core))
        << flavor << " trial " << trial;
}

class ForkEquivalence : public testing::TestWithParam<unsigned>
{
};

} // namespace

/**
 * The campaign's scratch-fork reuse (runForkInto restoring into a
 * warm machine via flat-arena copy assignment, or swapping buffers
 * for the trial's last fork) must be indistinguishable from the
 * from-scratch copy constructor it replaced. Fuzz it over randomized
 * injection windows: a fresh runFork and a reused-scratch runForkInto
 * of the same snapshot must agree on every observable a classifier
 * reads. Parameterized over pool width so the per-worker scratch path
 * is exercised both single-threaded and with 4 workers racing.
 */
TEST_P(ForkEquivalence, ScratchForkMatchesFreshFork)
{
    const unsigned nthreads = GetParam();
    Program prog = randomProgram(11, 100'000);

    pipeline::CoreParams params;
    params.detector = filters::DetectorParams::faultHound();
    pipeline::Core master(params, &prog);
    while (master.committedTotal() < 3000 && !master.allHalted())
        master.tick();
    ASSERT_FALSE(master.allHalted());

    // Produce snapshots serially (randomized gaps and plans), then
    // fork them on the pool with per-worker scratch — the campaign's
    // exact memory-reuse pattern.
    struct Snap
    {
        pipeline::Core core;
        fault::InjectionPlan plan;
        std::vector<u64> targets;
    };
    constexpr u64 kTrials = 12;
    constexpr Cycle kMaxCycles = 200'000;
    constexpr u64 kWindow = 150;
    Rng rng(17);
    fault::InjectionMix mix;
    std::vector<Snap> snaps;
    snaps.reserve(kTrials);
    for (u64 t = 0; t < kTrials && !master.allHalted(); ++t) {
        const Cycle gap = rng.range(40, 160);
        for (Cycle c = 0; c < gap && !master.allHalted(); ++c)
            master.tick();
        if (master.allHalted())
            break;
        snaps.push_back({master, fault::drawPlan(master, mix, rng),
                         fault::windowTargets(master, kWindow)});
    }
    ASSERT_GE(snaps.size(), 8u);

    // One scratch pair per worker; reused across this worker's trials
    // so later restores hit genuinely dirty buffers.
    struct Scratch
    {
        std::optional<fault::ForkOutcome> bare;
        std::optional<fault::ForkOutcome> prot;
    };
    std::vector<Scratch> scratch(nthreads);
    exec::ThreadPool pool(nthreads);
    pool.parallelFor(snaps.size(), [&](u64 k) {
        Scratch &sc = scratch[exec::ThreadPool::currentWorker()];
        const Snap &s = snaps[k];

        // Bare fork (detector off): fresh copy vs copy-restored scratch.
        fault::ForkOutcome fresh = fault::runFork(
            s.core, &s.plan, false, s.targets, kMaxCycles);
        if (!sc.bare) {
            sc.bare.emplace(fault::runFork(s.core, &s.plan, false,
                                           s.targets, kMaxCycles));
        } else {
            fault::runForkInto(*sc.bare, s.core, &s.plan, false,
                               s.targets, kMaxCycles);
        }
        expectSameOutcome(fresh, *sc.bare, k, "bare");

        // Protected fork (detector on): fresh copy vs the consuming
        // swap flavor fed a throwaway copy of the snapshot.
        fault::ForkOutcome freshProt = fault::runFork(
            s.core, &s.plan, true, s.targets, kMaxCycles);
        pipeline::Core doomed(s.core);
        if (!sc.prot) {
            sc.prot.emplace(fault::runFork(std::move(doomed), &s.plan,
                                           true, s.targets, kMaxCycles));
        } else {
            fault::runForkInto(*sc.prot, std::move(doomed), &s.plan,
                               true, s.targets, kMaxCycles);
        }
        expectSameOutcome(freshProt, *sc.prot, k, "protected");
        EXPECT_EQ(freshProt.core.detector().stats().triggers,
                  sc.prot->core.detector().stats().triggers)
            << "trial " << k;
        EXPECT_EQ(freshProt.core.faultDetected(),
                  sc.prot->core.faultDetected())
            << "trial " << k;
    });
}

INSTANTIATE_TEST_SUITE_P(PoolWidths, ForkEquivalence,
                         testing::Values(1u, 4u),
                         [](const testing::TestParamInfo<unsigned> &i) {
                             return "threads" + std::to_string(i.param);
                         });

namespace
{

class ScanOracleEquivalence : public testing::TestWithParam<unsigned>
{
};

} // namespace

/**
 * Wakeup-vs-scan issue-stage oracle: two masters over the same random
 * program, one on the event-driven wakeup scheduler (the default) and
 * one on the retired per-cycle scan (params.scanIssue, the
 * FH_SCAN_ISSUE oracle), ticked in lockstep — then fault trials forked
 * from both at the same points must agree on every observable a
 * classifier reads. The mix is rename-heavy so plans routinely leave
 * dangling source tags (the wakeup overflow/park path), and the
 * protected forks run the FaultHound detector whose triggered replays
 * re-dispatch completed consumers (the non-monotonic markNotReady
 * re-subscription path). Both modes are forced explicitly so the suite
 * stays meaningful whichever mode the surrounding ctest run selected.
 * Parameterized over pool width to race per-worker forks at 1 and 4
 * threads.
 */
TEST_P(ScanOracleEquivalence, WakeupMatchesScanIssue)
{
    const unsigned nthreads = GetParam();
    Program prog = randomProgram(23, 100'000);

    pipeline::CoreParams wakeParams;
    wakeParams.detector = filters::DetectorParams::faultHound();
    wakeParams.scanIssue = false;
    pipeline::CoreParams scanParams = wakeParams;
    scanParams.scanIssue = true;

    pipeline::Core wakeMaster(wakeParams, &prog);
    pipeline::Core scanMaster(scanParams, &prog);
    while (wakeMaster.committedTotal() < 3000 &&
           !wakeMaster.allHalted()) {
        wakeMaster.tick();
        scanMaster.tick();
    }
    ASSERT_FALSE(wakeMaster.allHalted());
    ASSERT_EQ(wakeMaster.cycle(), scanMaster.cycle());

    struct Snap
    {
        pipeline::Core wake;
        pipeline::Core scan;
        fault::InjectionPlan plan;
        std::vector<u64> targets;
    };
    constexpr u64 kTrials = 10;
    constexpr Cycle kMaxCycles = 200'000;
    constexpr u64 kWindow = 150;
    Rng rng(29);
    fault::InjectionMix mix;
    mix.renameFrac = 0.6; // rename-heavy: dangling-tag parks
    std::vector<Snap> snaps;
    snaps.reserve(kTrials);
    for (u64 t = 0; t < kTrials && !wakeMaster.allHalted(); ++t) {
        const Cycle gap = rng.range(40, 160);
        for (Cycle c = 0; c < gap && !wakeMaster.allHalted(); ++c) {
            wakeMaster.tick();
            scanMaster.tick();
        }
        if (wakeMaster.allHalted())
            break;
        snaps.push_back({wakeMaster, scanMaster,
                         fault::drawPlan(wakeMaster, mix, rng),
                         fault::windowTargets(wakeMaster, kWindow)});
    }
    ASSERT_GE(snaps.size(), 6u);

    exec::ThreadPool pool(nthreads);
    pool.parallelFor(snaps.size(), [&](u64 k) {
        const Snap &s = snaps[k];

        // Bare forks: identical fault propagation without a detector.
        fault::ForkOutcome wb = fault::runFork(s.wake, &s.plan, false,
                                               s.targets, kMaxCycles);
        fault::ForkOutcome sb = fault::runFork(s.scan, &s.plan, false,
                                               s.targets, kMaxCycles);
        expectSameOutcome(wb, sb, k, "bare");

        // Protected forks: detector triggers and replay storms must
        // land on the same cycles in both schedulers.
        fault::ForkOutcome wp = fault::runFork(s.wake, &s.plan, true,
                                               s.targets, kMaxCycles);
        fault::ForkOutcome sp = fault::runFork(s.scan, &s.plan, true,
                                               s.targets, kMaxCycles);
        expectSameOutcome(wp, sp, k, "protected");
        EXPECT_EQ(wp.core.detector().stats().triggers,
                  sp.core.detector().stats().triggers)
            << "trial " << k;
        EXPECT_EQ(wp.core.faultDetected(), sp.core.faultDetected())
            << "trial " << k;
    });
}

INSTANTIATE_TEST_SUITE_P(PoolWidths, ScanOracleEquivalence,
                         testing::Values(1u, 4u),
                         [](const testing::TestParamInfo<unsigned> &i) {
                             return "threads" + std::to_string(i.param);
                         });

namespace
{

struct EarlyStopCase
{
    u64 seed;
    bool goldenFork;
};

class EarlyStopEquivalence : public testing::TestWithParam<EarlyStopCase>
{
};

} // namespace

/**
 * Arch-digest early termination must be classification-invariant: a
 * bare fork is cut short only when its injected fault was provably
 * erased (fault-watch disarm before any read), which implies the fork
 * is bit-equivalent to a fault-free run — masked. Fuzz whole campaigns
 * over random programs with early stop forced on and off: every
 * classification counter, the SDC bins, and the per-stratum profile
 * rows must be identical. Only the earlyTerminated diagnostic (and the
 * trials' exit cycles, which no counter reads) may differ. Runs in
 * both golden modes so the forked-golden and checkpoint-ledger arming
 * conditions are each exercised.
 */
TEST_P(EarlyStopEquivalence, ClassificationIdentical)
{
    const auto &c = GetParam();
    Program prog = randomProgram(c.seed, 100'000);

    pipeline::CoreParams params;
    params.detector = filters::DetectorParams::faultHound();

    fault::CampaignConfig cfg;
    cfg.injections = 80;
    cfg.window = 200;
    cfg.seed = c.seed;
    cfg.threads = 2;
    cfg.forceGoldenFork = c.goldenFork;

    cfg.earlyStop = true;
    const fault::CampaignResult on =
        fault::runCampaign(params, &prog, cfg);
    cfg.earlyStop = false;
    const fault::CampaignResult off =
        fault::runCampaign(params, &prog, cfg);

    EXPECT_EQ(off.earlyTerminated, 0u);
    EXPECT_EQ(on.injected, off.injected);
    EXPECT_EQ(on.masked, off.masked);
    EXPECT_EQ(on.noisy, off.noisy);
    EXPECT_EQ(on.sdc, off.sdc);
    EXPECT_EQ(on.recovered, off.recovered);
    EXPECT_EQ(on.detected, off.detected);
    EXPECT_EQ(on.uncovered, off.uncovered);
    EXPECT_EQ(on.trialErrors, off.trialErrors);
    EXPECT_EQ(on.hungBare, off.hungBare);
    EXPECT_EQ(on.hungProtected, off.hungProtected);
    EXPECT_EQ(on.skippedProvablyMasked, off.skippedProvablyMasked);
    EXPECT_EQ(on.bins.covered, off.bins.covered);
    EXPECT_EQ(on.bins.secondLevelMasked, off.bins.secondLevelMasked);
    EXPECT_EQ(on.bins.completedReg, off.bins.completedReg);
    EXPECT_EQ(on.bins.archReg, off.bins.archReg);
    EXPECT_EQ(on.bins.renameUncovered, off.bins.renameUncovered);
    EXPECT_EQ(on.bins.noTrigger, off.bins.noTrigger);
    EXPECT_EQ(on.bins.other, off.bins.other);
    for (unsigned s = 0; s < fault::StratumSpace::kCount; ++s) {
        const fault::StratumCounts &a = on.profile.strata[s];
        const fault::StratumCounts &b = off.profile.strata[s];
        EXPECT_EQ(a.trials, b.trials) << "stratum " << s;
        EXPECT_EQ(a.masked, b.masked) << "stratum " << s;
        EXPECT_EQ(a.noisy, b.noisy) << "stratum " << s;
        EXPECT_EQ(a.sdc, b.sdc) << "stratum " << s;
        EXPECT_EQ(a.covered, b.covered) << "stratum " << s;
        EXPECT_EQ(a.skippedProvablyMasked, b.skippedProvablyMasked)
            << "stratum " << s;
    }
    EXPECT_EQ(on.profile.sdcBits, off.profile.sdcBits);
    EXPECT_EQ(on.profile.sdcPcs, off.profile.sdcPcs);
    EXPECT_EQ(on.profile.sdcCycleBuckets, off.profile.sdcCycleBuckets);
}

INSTANTIATE_TEST_SUITE_P(
    Campaigns, EarlyStopEquivalence,
    testing::Values(EarlyStopCase{7, false}, EarlyStopCase{7, true},
                    EarlyStopCase{19, false}),
    [](const testing::TestParamInfo<EarlyStopCase> &i) {
        return "seed" + std::to_string(i.param.seed) +
               (i.param.goldenFork ? "_forked" : "_ledger");
    });
