/**
 * @file
 * Parameterized property sweeps over the cache hierarchy: latency
 * monotonicity, inclusion-style behavior of repeated accesses, and
 * footprint-vs-miss-rate trends that the workload calibration relies
 * on.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"
#include "sim/rng.hh"

using namespace fh;
using namespace fh::mem;

namespace
{

struct SweepCase
{
    u64 footprintBytes;
    unsigned strideBytes;
};

class HierarchySweep : public testing::TestWithParam<SweepCase>
{
};

} // namespace

TEST_P(HierarchySweep, SecondPassIsNeverSlower)
{
    const auto &c = GetParam();
    Hierarchy h;
    Cycle now = 0;
    u64 first_total = 0;
    u64 second_total = 0;
    for (int pass = 0; pass < 2; ++pass) {
        u64 &total = pass == 0 ? first_total : second_total;
        for (Addr a = 0; a < c.footprintBytes; a += c.strideBytes) {
            auto t = h.data(0x20000000 + a, now);
            total += t.latency;
            now += t.latency; // serial access stream
        }
    }
    EXPECT_LE(second_total, first_total)
        << "a warmed hierarchy cannot be slower";
}

TEST_P(HierarchySweep, LatencyIsBounded)
{
    const auto &c = GetParam();
    HierarchyParams hp;
    Hierarchy h(hp);
    const Cycle worst = hp.itlb.walkLatency + hp.l1d.hitLatency +
                        hp.l2.hitLatency + hp.memoryLatency;
    Cycle now = 0;
    for (Addr a = 0; a < c.footprintBytes; a += c.strideBytes) {
        auto t = h.data(0x20000000 + a, now);
        EXPECT_GE(t.latency, hp.l1d.hitLatency);
        EXPECT_LE(t.latency, worst);
        now += t.latency;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Footprints, HierarchySweep,
    testing::Values(SweepCase{16 * 1024, 64},    // L1-resident
                    SweepCase{256 * 1024, 64},   // L2-resident
                    SweepCase{4 * 1024 * 1024, 64}, // past the L2
                    SweepCase{256 * 1024, 8},    // sub-line stride
                    SweepCase{1 * 1024 * 1024, 4096})); // page stride

TEST(HierarchyProperties, MissRateOrdersWithFootprint)
{
    // The workload calibration depends on this trend: footprints past
    // a level miss in it, resident footprints do not.
    auto missRateFor = [](u64 footprint) {
        Hierarchy h;
        Rng rng(3);
        Cycle now = 0;
        // Random touches over the footprint, two passes.
        for (int i = 0; i < 8000; ++i) {
            Addr a = 0x20000000 + (rng.below(footprint / 8)) * 8;
            now += h.data(a, now).latency;
        }
        return h.l1d().missRate();
    };
    double small = missRateFor(16 * 1024);
    double medium = missRateFor(512 * 1024);
    double large = missRateFor(8 * 1024 * 1024);
    EXPECT_LT(small, medium);
    EXPECT_LE(medium, large + 0.02);
}

TEST(HierarchyProperties, SequentialStreamMissesOncePerLine)
{
    HierarchyParams hp;
    Hierarchy h(hp);
    Cycle now = 0;
    const unsigned words_per_line = hp.l1d.lineBytes / 8;
    const unsigned lines = 64;
    for (unsigned w = 0; w < lines * words_per_line; ++w) {
        now += h.data(0x20000000 + w * 8ull, now).latency;
    }
    EXPECT_EQ(h.l1d().misses(), lines);
    EXPECT_EQ(h.l1d().hits(), lines * (words_per_line - 1));
}
