/**
 * @file
 * BitFilter: the ternary neighborhood encoding of Figure 1 — per-bit
 * counters plus the previous value — across all counter flavors.
 */

#include <gtest/gtest.h>

#include "filters/bit_filter.hh"

using namespace fh;
using namespace fh::filters;

TEST(BitFilter, InstallMakesEverythingUnchanging)
{
    BitFilter f(CounterConfig::biased());
    f.install(0xdeadbeefULL);
    EXPECT_EQ(f.prev(), 0xdeadbeefULL);
    EXPECT_EQ(f.unchangingMask(), ~0ULL);
    EXPECT_EQ(f.mismatchCount(0xdeadbeefULL), 0u);
}

TEST(BitFilter, MismatchCountsDifferingUnchangingBits)
{
    BitFilter f(CounterConfig::biased());
    f.install(0);
    EXPECT_EQ(f.mismatchCount(0b1011), 3u);
    EXPECT_EQ(f.mismatchMask(0b1011), 0b1011ULL);
}

TEST(BitFilter, ObserveReturnsAlarmMaskAndUpdatesPrev)
{
    BitFilter f(CounterConfig::biased());
    f.install(0);
    u64 alarm = f.observe(0b100);
    EXPECT_EQ(alarm, 0b100ULL); // bit 2 changed while unchanging
    EXPECT_EQ(f.prev(), 0b100ULL);
    // Bit 2 is now changing (biased counter jumped to 2).
    EXPECT_EQ(f.counterAt(2), 2);
    EXPECT_FALSE((f.unchangingMask() >> 2) & 1);
}

TEST(BitFilter, WildcardBitsDoNotMismatch)
{
    BitFilter f(CounterConfig::biased());
    f.install(0);
    f.observe(0b1); // bit 0 becomes changing
    // Bit 0 differs from prev but is wildcarded: no mismatch.
    EXPECT_EQ(f.mismatchCount(0b0), 0u);
}

TEST(BitFilter, BiasedBitNeedsTwoNoChangesToRearm)
{
    BitFilter f(CounterConfig::biased());
    f.install(0);
    f.observe(1); // bit 0: counter -> 2
    f.observe(1); // no change (value stays 1): counter -> 1
    EXPECT_EQ(f.counterAt(0), 1);
    EXPECT_FALSE((f.unchangingMask() >> 0) & 1);
    f.observe(1); // counter -> 0: unchanging again
    EXPECT_TRUE((f.unchangingMask() >> 0) & 1);
    // A change now alarms again.
    EXPECT_EQ(f.observe(0) & 1ULL, 1ULL);
}

TEST(BitFilter, StickyStaysSaturatedUntilClear)
{
    BitFilter f(CounterConfig::sticky());
    f.install(0);
    EXPECT_EQ(f.observe(1), 1ULL); // alarm once
    f.observe(0);
    f.observe(0);
    f.observe(0);
    // Sticky: still changing despite no-changes.
    EXPECT_EQ(f.observe(1), 0ULL);
    f.clear();
    EXPECT_EQ(f.unchangingMask(), ~0ULL);
    // After clear the counters are re-armed: the next change alarms.
    EXPECT_EQ(f.observe(0), 1ULL); // prev was 1, value 0 flips bit 0
    // ...and saturates sticky again.
    EXPECT_EQ(f.observe(1), 0ULL);
}

TEST(BitFilter, StandardCounterReentersImmediately)
{
    BitFilter f(CounterConfig::standard());
    f.install(0);
    f.observe(1); // bit0 count 1
    f.observe(1); // no change: count 0 -> unchanging after ONE
    EXPECT_TRUE((f.unchangingMask() >> 0) & 1);
}

TEST(BitFilter, Biased3IsSlower)
{
    BitFilter f(CounterConfig::biased3());
    f.install(0);
    f.observe(1); // jump 4
    EXPECT_EQ(f.counterAt(0), 4);
    f.observe(1);
    f.observe(1);
    f.observe(1);
    EXPECT_EQ(f.counterAt(0), 1);
    EXPECT_FALSE((f.unchangingMask() >> 0) & 1);
    f.observe(1);
    EXPECT_TRUE((f.unchangingMask() >> 0) & 1);
}

TEST(BitFilter, MultipleBitsTrackedIndependently)
{
    BitFilter f(CounterConfig::biased());
    f.install(0);
    f.observe(0b11);   // bits 0,1 change
    f.observe(0b01);   // bit 1 changes back; bit 0 stable
    f.observe(0b01);   // bit 0: two no-changes later...
    f.observe(0b01);   // bit 0 unchanging again; bit 1 still armed
    EXPECT_TRUE((f.unchangingMask() >> 0) & 1);
    EXPECT_FALSE((f.unchangingMask() >> 1) & 1);
}

TEST(BitFilter, HighBitsStayUnchangingUnderCounterTraffic)
{
    // A counter-like stream leaves high bits unchanging: this is the
    // value-locality property the whole scheme rests on.
    BitFilter f(CounterConfig::biased());
    f.install(0x100000);
    for (u64 i = 1; i < 200; ++i)
        f.observe(0x100000 + i);
    unsigned high_unchanging = 0;
    for (unsigned bit = 24; bit < 64; ++bit)
        high_unchanging += (f.unchangingMask() >> bit) & 1;
    EXPECT_EQ(high_unchanging, 40u);
    // A bit-40 flip is detected.
    EXPECT_NE(f.mismatchMask(f.prev() ^ (1ULL << 40)), 0ULL);
}
