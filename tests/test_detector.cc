/**
 * @file
 * Detector: scheme dispatch and the trigger -> suppress -> squash ->
 * replay decision chain of Section 3.
 */

#include <gtest/gtest.h>

#include "filters/detector.hh"

using namespace fh;
using namespace fh::filters;

namespace
{

/** Train the addr TCAM of det on a counter-like stream. */
void
train(Detector &det, StreamKind kind, u64 base, int n = 300)
{
    for (int i = 0; i < n; ++i)
        det.checkComplete(kind, 5, base + (i % 32) * 8, false);
}

} // namespace

TEST(Detector, NoneSchemeNeverActs)
{
    Detector det(DetectorParams::none());
    EXPECT_FALSE(det.active());
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(det.checkComplete(StreamKind::LoadAddr, 1, i * 977,
                                    false),
                  CompleteAction::None);
        EXPECT_EQ(det.checkCommit(StreamKind::LoadAddr, 1, i * 977),
                  CommitAction::None);
    }
    EXPECT_EQ(det.stats().checks, 0u);
}

TEST(Detector, PbfsTriggersFullRollback)
{
    Detector det(DetectorParams::pbfsSticky());
    det.checkComplete(StreamKind::LoadAddr, 9, 0x1000, false);
    auto action = det.checkComplete(StreamKind::LoadAddr, 9,
                                    0x1000 ^ (1ULL << 40), false);
    EXPECT_EQ(action, CompleteAction::Rollback);
    EXPECT_EQ(det.stats().rollbacks, 1u);
}

TEST(Detector, FaultHoundRepliesWithReplay)
{
    Detector det(DetectorParams::faultHound());
    train(det, StreamKind::LoadAddr, 0x20000000);
    auto action = det.checkComplete(StreamKind::LoadAddr, 5,
                                    (0x20000000 + 8) ^ (1ULL << 40),
                                    false);
    EXPECT_EQ(action, CompleteAction::Replay);
    EXPECT_EQ(det.stats().replays, 1u);
}

TEST(Detector, InReplayTriggersAreIgnored)
{
    Detector det(DetectorParams::faultHound());
    train(det, StreamKind::LoadAddr, 0x20000000);
    auto action = det.checkComplete(StreamKind::LoadAddr, 5,
                                    (0x20000000 + 8) ^ (1ULL << 40),
                                    true);
    EXPECT_EQ(action, CompleteAction::None);
    EXPECT_EQ(det.stats().replayIgnored, 1u);
    EXPECT_EQ(det.stats().replays, 0u);
}

TEST(Detector, SecondLevelSuppressesRepeatedBit)
{
    Detector det(DetectorParams::faultHound());
    train(det, StreamKind::StoreValue, 0x4000);
    // Same delinquent bit alarming repeatedly: first replay allowed,
    // subsequent ones suppressed.
    unsigned replays = 0;
    for (int i = 0; i < 6; ++i) {
        auto action = det.checkComplete(
            StreamKind::StoreValue, 5,
            (0x4000 + (i % 32) * 8) ^ (1ULL << 40), false);
        replays += action == CompleteAction::Replay ? 1 : 0;
        // Re-stabilize so the per-bit filter counter re-arms.
        train(det, StreamKind::StoreValue, 0x4000, 40);
    }
    EXPECT_GE(replays, 1u);
    EXPECT_GT(det.stats().suppressed, 0u);
}

TEST(Detector, ReplayRecoveryOffMeansRollback)
{
    auto params = DetectorParams::faultHoundBackend();
    params.replayRecovery = false;
    Detector det(params);
    train(det, StreamKind::LoadAddr, 0x20000000);
    auto action = det.checkComplete(StreamKind::LoadAddr, 5,
                                    (0x20000000 + 8) ^ (1ULL << 40),
                                    false);
    EXPECT_EQ(action, CompleteAction::Rollback);
}

TEST(Detector, BackendVariantNeverSquashes)
{
    Detector det(DetectorParams::faultHoundBackend());
    train(det, StreamKind::LoadAddr, 0x20000000);
    // A wildly foreign value causes replacement, not rollback.
    auto action = det.checkComplete(StreamKind::LoadAddr, 5,
                                    0x7777777777777777ULL, false);
    EXPECT_NE(action, CompleteAction::Rollback);
    EXPECT_EQ(det.stats().squashAlarms, 0u);
}

TEST(Detector, ForeignValueCanRaiseSquashAlarm)
{
    Detector det(DetectorParams::faultHound());
    train(det, StreamKind::LoadAddr, 0x20000000);
    // Fill remaining entries with a second neighborhood so the TCAM
    // is warm, then present a totally foreign value (rename-fault
    // signature: replacement of a quiet victim).
    train(det, StreamKind::LoadAddr, 0x30000000);
    auto action = det.checkComplete(StreamKind::LoadAddr, 5,
                                    0x7777777777777777ULL, false);
    // Depending on victim arming this is Rollback (squash alarm) or
    // Replay; it must at least trigger.
    EXPECT_NE(action, CompleteAction::None);
    EXPECT_GT(det.stats().triggers, 0u);
}

TEST(Detector, CommitProbeRequestsReexec)
{
    Detector det(DetectorParams::faultHound());
    train(det, StreamKind::StoreAddr, 0x20000000);
    auto action = det.checkCommit(StreamKind::StoreAddr, 5,
                                  (0x20000000 + 8) ^ (1ULL << 44));
    EXPECT_EQ(action, CommitAction::Reexec);
    EXPECT_EQ(det.stats().commitTriggers, 1u);
}

TEST(Detector, CommitProbeDoesNotTrain)
{
    Detector det(DetectorParams::faultHound());
    train(det, StreamKind::StoreAddr, 0x20000000);
    Detector before = det;
    det.checkCommit(StreamKind::StoreAddr, 5, 0x20000000 + 16);
    EXPECT_EQ(det.addrTcam().accesses(), before.addrTcam().accesses());
}

TEST(Detector, LsqCheckDisabledByFlag)
{
    auto params = DetectorParams::faultHound();
    params.lsqCommitCheck = false;
    Detector det(params);
    train(det, StreamKind::StoreAddr, 0x20000000);
    EXPECT_EQ(det.checkCommit(StreamKind::StoreAddr, 5,
                              0x20000000 ^ (1ULL << 44)),
              CommitAction::None);
}

TEST(Detector, AddressesAndValuesUseSeparateTcams)
{
    Detector det(DetectorParams::faultHound());
    train(det, StreamKind::LoadAddr, 0x20000000);
    // The value TCAM is untouched by address training.
    EXPECT_EQ(det.valueTcam().validCount(), 0u);
    train(det, StreamKind::StoreValue, 0x1234);
    EXPECT_GT(det.valueTcam().validCount(), 0u);
}

TEST(Detector, ReexecCompareCountsMismatches)
{
    Detector det(DetectorParams::faultHound());
    det.onReexecCompare(false);
    det.onReexecCompare(true);
    det.onReexecCompare(true);
    EXPECT_EQ(det.stats().reexecMismatches, 2u);
}

TEST(Detector, NoclusterVariantUsesPcTables)
{
    auto params = DetectorParams::faultHoundBackend();
    params.clustering = false;
    Detector det(params);
    det.checkComplete(StreamKind::LoadAddr, 11, 0x5000, false);
    auto action = det.checkComplete(StreamKind::LoadAddr, 11,
                                    0x5000 ^ (1ULL << 39), false);
    EXPECT_EQ(action, CompleteAction::Replay);
    EXPECT_EQ(det.addrTcam().accesses(), 0u)
        << "nocluster must not touch the TCAMs";
}
