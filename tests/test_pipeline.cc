/**
 * @file
 * Core pipeline behaviors beyond architectural equivalence: resource
 * occupancy invariants, branch prediction learning, precise per-thread
 * freezing, SMT fairness, and the replay/rollback plumbing statistics.
 */

#include <gtest/gtest.h>

#include "pipeline/branch_predictor.hh"
#include "pipeline/core.hh"
#include "pipeline/regfile.hh"
#include "pipeline/rename.hh"
#include "pipeline/rob.hh"
#include "workload/workload.hh"

using namespace fh;
using namespace fh::pipeline;

namespace
{

isa::Program
benchProgram(const std::string &name, u64 iterations = 1ull << 30)
{
    workload::WorkloadSpec spec;
    spec.iterations = iterations;
    spec.maxThreads = 2;
    spec.footprintDivider = 64;
    return workload::build(name, spec);
}

} // namespace

TEST(PhysRegFile, AllocateReleaseCycle)
{
    PhysRegFile rf(8);
    EXPECT_EQ(rf.freeCount(), 8u);
    unsigned p = 0;
    ASSERT_TRUE(rf.allocate(p));
    EXPECT_FALSE(rf.isFree(p));
    EXPECT_FALSE(rf.ready(p));
    rf.write(p, 42);
    EXPECT_TRUE(rf.ready(p));
    EXPECT_EQ(rf.read(p), 42u);
    rf.release(p);
    EXPECT_TRUE(rf.isFree(p));
    EXPECT_EQ(rf.freeCount(), 8u);
}

TEST(PhysRegFile, ExhaustionFailsGracefully)
{
    PhysRegFile rf(2);
    unsigned a = 0;
    unsigned b = 0;
    unsigned c = 0;
    EXPECT_TRUE(rf.allocate(a));
    EXPECT_TRUE(rf.allocate(b));
    EXPECT_FALSE(rf.allocate(c));
}

TEST(PhysRegFile, DoubleReleaseIsBenign)
{
    PhysRegFile rf(4);
    unsigned p = 0;
    rf.allocate(p);
    rf.release(p);
    rf.release(p); // corrupted-rename-tag scenario
    EXPECT_EQ(rf.freeCount(), 4u);
    // The free list must not contain duplicates.
    unsigned a, b, c, d, e;
    EXPECT_TRUE(rf.allocate(a));
    EXPECT_TRUE(rf.allocate(b));
    EXPECT_TRUE(rf.allocate(c));
    EXPECT_TRUE(rf.allocate(d));
    EXPECT_FALSE(rf.allocate(e));
}

TEST(PhysRegFile, ResetFreeListFromLiveness)
{
    PhysRegFile rf(4);
    unsigned a = 0;
    unsigned b = 0;
    rf.allocate(a);
    rf.allocate(b);
    std::vector<bool> live(4, false);
    live[a] = true; // b was wrongly freed conceptually; only a lives
    rf.resetFreeList(live);
    EXPECT_FALSE(rf.isFree(a));
    EXPECT_TRUE(rf.isFree(b));
    EXPECT_EQ(rf.freeCount(), 3u);
}

TEST(RenameMap, RenameCommitRollback)
{
    RenameMap map;
    std::array<unsigned, isa::numArchRegs> init{};
    for (unsigned i = 0; i < isa::numArchRegs; ++i)
        init[i] = i;
    map.init(init);
    unsigned old = map.rename(5, 100);
    EXPECT_EQ(old, 5u);
    EXPECT_EQ(map.spec(5), 100u);
    EXPECT_EQ(map.retire(5), 5u);
    map.commit(5, 100);
    EXPECT_EQ(map.retire(5), 100u);
    map.rename(5, 101);
    map.rollbackToRetire();
    EXPECT_EQ(map.spec(5), 100u);
}

TEST(RenameMap, RestoreUndoesInReverse)
{
    RenameMap map;
    std::array<unsigned, isa::numArchRegs> init{};
    map.init(init);
    unsigned old1 = map.rename(3, 50);
    unsigned old2 = map.rename(3, 51);
    map.restore(3, old2);
    map.restore(3, old1);
    EXPECT_EQ(map.spec(3), 0u);
}

TEST(RenameMap, FlipSpecBitWrapsIntoRange)
{
    RenameMap map;
    std::array<unsigned, isa::numArchRegs> init{};
    init[4] = 300;
    map.init(init);
    map.flipSpecBit(4, 8, 400); // 300 ^ 256 = 44
    EXPECT_LT(map.spec(4), 400u);
    EXPECT_NE(map.spec(4), 300u);
}

TEST(Rob, CircularAllocateCommitSquash)
{
    Rob rob(4);
    EXPECT_TRUE(rob.empty());
    unsigned s0 = rob.allocate();
    unsigned s1 = rob.allocate();
    rob.hot(s0).seq = 1;
    rob.hot(s1).seq = 2;
    EXPECT_EQ(rob.size(), 2u);
    EXPECT_EQ(rob.hot(rob.headSlot()).seq, 1u);
    EXPECT_EQ(rob.hot(rob.tailSlot()).seq, 2u);
    rob.popTail();
    EXPECT_EQ(rob.size(), 1u);
    rob.popHead();
    EXPECT_TRUE(rob.empty());
    // Wrap around the circular storage.
    for (int round = 0; round < 10; ++round) {
        unsigned s = rob.allocate();
        rob.hot(s).seq = 100 + round;
        rob.popHead();
    }
    EXPECT_TRUE(rob.empty());
}

TEST(BranchPredictor, LearnsABiasedBranch)
{
    BranchPredictor bp(256);
    for (int i = 0; i < 64; ++i)
        bp.update(0, 10, true);
    EXPECT_TRUE(bp.predict(0, 10));
    double acc = static_cast<double>(bp.correct()) / bp.lookups();
    EXPECT_GT(acc, 0.9);
}

struct OccCase
{
    std::string bench;
    filters::Scheme scheme;
};

class OccupancyInvariants : public testing::TestWithParam<OccCase>
{
};

TEST_P(OccupancyInvariants, TrackedCountsMatchRecounts)
{
    auto prog = benchProgram(GetParam().bench);
    CoreParams params;
    params.detector = GetParam().scheme == filters::Scheme::None
                          ? filters::DetectorParams::none()
                      : GetParam().scheme == filters::Scheme::PbfsBiased
                          ? filters::DetectorParams::pbfsBiased()
                          : filters::DetectorParams::faultHound();
    Core core(params, &prog);
    for (int cyc = 0; cyc < 30000; ++cyc) {
        core.tick();
        if (cyc % 7 == 0) {
            ASSERT_EQ(core.iqOccupancy(), core.computeIqOccupancy())
                << "IQ accounting leak at cycle " << cyc;
            ASSERT_EQ(core.lsqOccupancy(), core.computeLsqOccupancy())
                << "LSQ accounting leak at cycle " << cyc;
            ASSERT_LE(core.lsqOccupancy(), params.lsqSize);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Mix, OccupancyInvariants,
    testing::Values(OccCase{"400.perl", filters::Scheme::None},
                    OccCase{"400.perl", filters::Scheme::FaultHound},
                    OccCase{"429.mcf", filters::Scheme::FaultHound},
                    OccCase{"437.leslie3d", filters::Scheme::PbfsBiased},
                    OccCase{"ocean", filters::Scheme::FaultHound}),
    [](const testing::TestParamInfo<OccCase> &info) {
        std::string n = info.param.bench + "_" +
                        filters::to_string(info.param.scheme);
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(Core, PerThreadFreezeIsExact)
{
    auto prog = benchProgram("ocean");
    CoreParams params;
    params.detector = filters::DetectorParams::none();
    Core core(params, &prog);
    core.runPerThreadBudget(5000, 10'000'000);
    EXPECT_EQ(core.committed(0), 5000u);
    EXPECT_EQ(core.committed(1), 5000u);
    // Further ticks change nothing architectural.
    auto s0 = core.archState(0);
    for (int i = 0; i < 100; ++i)
        core.tick();
    EXPECT_TRUE(core.archState(0) == s0);
    EXPECT_EQ(core.committed(0), 5000u);
}

TEST(Core, SmtThreadsShareFairly)
{
    auto prog = benchProgram("447.dealII");
    CoreParams params;
    params.detector = filters::DetectorParams::none();
    Core core(params, &prog);
    for (int i = 0; i < 40000; ++i)
        core.tick();
    double a = static_cast<double>(core.committed(0));
    double b = static_cast<double>(core.committed(1));
    EXPECT_GT(a, 0);
    EXPECT_GT(b, 0);
    EXPECT_NEAR(a / (a + b), 0.5, 0.1);
}

TEST(Core, MispredictsHappenAndAreBounded)
{
    auto prog = benchProgram("401.bzip2"); // data-dependent branches
    CoreParams params;
    params.detector = filters::DetectorParams::none();
    Core core(params, &prog);
    core.runPerThreadBudget(20000, 10'000'000);
    const auto &s = core.stats();
    EXPECT_GT(s.mispredicts, 100u);
    EXPECT_LT(s.mispredicts, s.branches);
}

TEST(Core, FaultHoundProducesReplaysNotManyRollbacks)
{
    auto prog = benchProgram("400.perl");
    CoreParams params;
    params.detector = filters::DetectorParams::faultHound();
    Core core(params, &prog);
    core.runPerThreadBudget(30000, 10'000'000);
    const auto &d = core.detector().stats();
    EXPECT_GT(d.replays, 50u) << "false positives should replay";
    EXPECT_LT(d.rollbacks, d.replays / 2)
        << "rollbacks must be the rare case";
    EXPECT_GT(core.stats().replaysExecuted, 0u);
}

TEST(Core, BaselineHasNoDetectorActivity)
{
    auto prog = benchProgram("ocean");
    CoreParams params;
    params.detector = filters::DetectorParams::none();
    Core core(params, &prog);
    core.runPerThreadBudget(10000, 10'000'000);
    EXPECT_EQ(core.detector().stats().checks, 0u);
    EXPECT_EQ(core.stats().replayTriggers, 0u);
    EXPECT_EQ(core.stats().faultRollbacks, 0u);
}

TEST(Core, DisabledDetectorKeepsArchitectureIdentical)
{
    auto prog = benchProgram("400.perl", 2000);
    CoreParams params;
    params.detector = filters::DetectorParams::faultHound();
    Core on(params, &prog);
    Core off(params, &prog);
    off.setDetectorEnabled(false);
    on.run(10'000'000);
    off.run(10'000'000);
    ASSERT_TRUE(on.allHalted());
    ASSERT_TRUE(off.allHalted());
    for (unsigned t = 0; t < 2; ++t)
        EXPECT_TRUE(on.archState(t) == off.archState(t));
    EXPECT_TRUE(on.memory().sameContents(off.memory()));
}

TEST(Core, InflightDestPregsAreRecentCompletions)
{
    auto prog = benchProgram("400.perl");
    CoreParams params;
    params.detector = filters::DetectorParams::none();
    Core core(params, &prog);
    for (int i = 0; i < 2000; ++i)
        core.tick();
    auto pregs = core.inflightDestPregs();
    for (unsigned p : pregs) {
        auto phase = core.pregPhase(p);
        EXPECT_EQ(phase, PregPhase::Completed);
    }
}
