/**
 * @file
 * The campaign resilience layer: panic-to-SimError trial isolation
 * (and its FH_STRICT escape hatch), the trial journal's
 * kill-at-trial-K → resume → bit-identical-continuation contract at 1
 * and 4 worker threads, the hung-fork diagnostics (forkMaxCycles on an
 * always-looping program, the GoldenLedger forceFinalizeAll hung-master
 * drain), and the wall-clock watchdog.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "fault/campaign.hh"
#include "fault/tandem.hh"
#include "isa/program.hh"
#include "pipeline/core.hh"
#include "sim/error.hh"
#include "sim/logging.hh"
#include "workload/workload.hh"

using namespace fh;

namespace
{

/** Scoped FH_STRICT override restoring the previous value on exit. */
class StrictModeOverride
{
  public:
    explicit StrictModeOverride(const char *value)
    {
        const char *old = std::getenv("FH_STRICT");
        had_ = old != nullptr;
        if (had_)
            old_ = old;
        setenv("FH_STRICT", value, 1);
    }

    ~StrictModeOverride()
    {
        if (had_)
            setenv("FH_STRICT", old_.c_str(), 1);
        else
            unsetenv("FH_STRICT");
    }

  private:
    bool had_ = false;
    std::string old_;
};

isa::Program
prog()
{
    workload::WorkloadSpec spec;
    spec.maxThreads = 2;
    spec.footprintDivider = 64;
    return workload::build("ocean", spec);
}

pipeline::CoreParams
fhParams()
{
    pipeline::CoreParams p;
    p.detector = filters::DetectorParams::faultHound();
    return p;
}

/** Both SMT contexts spin forever: addi/jmp, unreachable halt. */
isa::Program
spinProg()
{
    isa::ProgramBuilder b("spin");
    b.addSegment(0x20000000, 4096);
    b.addSegment(0x20010000, 4096);
    b.emit(isa::makeLi(2, 0));
    const u32 loop = b.here();
    b.emit(isa::makeRRI(isa::Op::Addi, 2, 2, 1));
    b.emit(isa::makeJmp(loop));
    isa::Program p = b.take();
    p.threadBases = {0x20000000, 0x20010000};
    return p;
}

/** A journal path under the test temp dir, fresh per call site. */
std::string
journalPath(const std::string &name)
{
    const std::string path = testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

void
expectIdentical(const fault::CampaignResult &a,
                const fault::CampaignResult &b)
{
    EXPECT_EQ(a.injected, b.injected);
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.noisy, b.noisy);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.recovered, b.recovered);
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.uncovered, b.uncovered);
    EXPECT_EQ(a.trialErrors, b.trialErrors);
    EXPECT_EQ(a.hungBare, b.hungBare);
    EXPECT_EQ(a.hungProtected, b.hungProtected);
    EXPECT_EQ(a.bins.covered, b.bins.covered);
    EXPECT_EQ(a.bins.secondLevelMasked, b.bins.secondLevelMasked);
    EXPECT_EQ(a.bins.completedReg, b.bins.completedReg);
    EXPECT_EQ(a.bins.archReg, b.bins.archReg);
    EXPECT_EQ(a.bins.renameUncovered, b.bins.renameUncovered);
    EXPECT_EQ(a.bins.noTrigger, b.bins.noTrigger);
    EXPECT_EQ(a.bins.other, b.bins.other);
}

fault::CampaignConfig
baseConfig()
{
    fault::CampaignConfig cfg;
    cfg.injections = 24;
    cfg.window = 300;
    cfg.seed = 77;
    cfg.threads = 1;
    return cfg;
}

/**
 * The resume-determinism contract (at the given worker-thread count,
 * in either golden mode): killing a journaled campaign after K
 * executed trials and rerunning it with the same configuration yields
 * the exact counters of the uninterrupted reference run.
 */
void
checkResume(unsigned threads, bool golden_fork)
{
    auto program = prog();
    auto params = fhParams();

    fault::CampaignConfig cfg = baseConfig();
    cfg.threads = threads;
    cfg.forceGoldenFork = golden_fork;
    const auto reference = fault::runCampaign(params, &program, cfg);
    ASSERT_EQ(reference.injected, cfg.injections);
    EXPECT_FALSE(reference.partial);

    cfg.journalPath = journalPath(
        "resume_t" + std::to_string(threads) +
        (golden_fork ? "_gf" : "_ledger") + ".fhj");
    cfg.stopAfterTrials = 10; // simulated SIGINT after 10 trials
    const auto interrupted = fault::runCampaign(params, &program, cfg);
    EXPECT_TRUE(interrupted.partial);
    EXPECT_GE(interrupted.injected, cfg.stopAfterTrials);
    EXPECT_LT(interrupted.injected, cfg.injections);

    cfg.stopAfterTrials = 0;
    const auto resumed = fault::runCampaign(params, &program, cfg);
    EXPECT_FALSE(resumed.partial);
    // Every trial the interrupted run completed was replayed from the
    // journal, not executed again.
    EXPECT_EQ(resumed.replayedTrials, interrupted.injected);
    expectIdentical(reference, resumed);

    // A second rerun replays everything and still matches.
    const auto replayed = fault::runCampaign(params, &program, cfg);
    EXPECT_EQ(replayed.replayedTrials, cfg.injections);
    expectIdentical(reference, replayed);
    std::remove(cfg.journalPath.c_str());
}

} // namespace

TEST(TrialIsolation, PanicThrowsSimErrorInsideScope)
{
    StrictModeOverride strict("0");
    PanicScope scope;
    EXPECT_TRUE(PanicScope::active());
    try {
        fh_panic("isolated failure %d", 42);
        FAIL() << "fh_panic returned";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.message()).find("isolated failure 42"),
                  std::string::npos);
        EXPECT_NE(std::string(e.file()).find("test_resilience"),
                  std::string::npos);
        EXPECT_GT(e.line(), 0);
        EXPECT_NE(std::string(e.what()).find("isolated failure 42"),
                  std::string::npos);
    }
}

TEST(TrialIsolation, ScopeNestsAndDeactivates)
{
    EXPECT_FALSE(PanicScope::active());
    {
        PanicScope outer;
        PanicScope inner;
        EXPECT_TRUE(PanicScope::active());
    }
    EXPECT_FALSE(PanicScope::active());
}

TEST(TrialIsolationDeathTest, PanicAbortsOutsideScope)
{
    StrictModeOverride strict("0");
    EXPECT_FALSE(PanicScope::active());
    EXPECT_DEATH(fh_panic("unscoped"), "panic: unscoped");
}

TEST(TrialIsolationDeathTest, StrictModeAbortsEvenInScope)
{
    StrictModeOverride strict("1");
    PanicScope scope;
    EXPECT_DEATH(fh_panic("strict"), "panic: strict");
}

TEST(TrialIsolation, CampaignIsolatesInTrialPanic)
{
    StrictModeOverride strict("0");
    auto program = prog();
    auto params = fhParams();

    fault::CampaignConfig cfg = baseConfig();
    const auto clean = fault::runCampaign(params, &program, cfg);
    EXPECT_EQ(clean.trialErrors, 0u);

    cfg.panicAtTrial = 7;
    const auto serial = fault::runCampaign(params, &program, cfg);
    EXPECT_EQ(serial.injected, cfg.injections);
    EXPECT_EQ(serial.trialErrors, 1u);
    // The errored trial is counted in injected but in no class;
    // everything else classifies exactly as before.
    EXPECT_EQ(serial.masked + serial.noisy + serial.sdc +
                  serial.trialErrors,
              serial.injected);
    EXPECT_EQ(serial.masked + serial.noisy + serial.sdc + 1,
              clean.masked + clean.noisy + clean.sdc);

    // Isolation does not disturb the worker-count determinism
    // contract: the panicking trial errors identically under a pool.
    cfg.threads = 4;
    const auto parallel = fault::runCampaign(params, &program, cfg);
    expectIdentical(serial, parallel);
}

TEST(TrialIsolationDeathTest, StrictModeAbortsCampaignOnTrialPanic)
{
    StrictModeOverride strict("1");
    auto program = prog();
    auto params = fhParams();
    fault::CampaignConfig cfg = baseConfig();
    cfg.injections = 10;
    cfg.panicAtTrial = 5;
    EXPECT_DEATH(fault::runCampaign(params, &program, cfg),
                 "panic: campaign debug hook");
}

TEST(Journal, ResumeBitIdenticalLedgerSerial) { checkResume(1, false); }

TEST(Journal, ResumeBitIdenticalLedgerParallel) { checkResume(4, false); }

TEST(Journal, ResumeBitIdenticalGoldenForkSerial)
{
    checkResume(1, true);
}

TEST(Journal, ResumeBitIdenticalGoldenForkParallel)
{
    checkResume(4, true);
}

TEST(Journal, CompletedJournalShortCircuitsTheCampaign)
{
    auto program = prog();
    auto params = fhParams();
    fault::CampaignConfig cfg = baseConfig();
    cfg.journalPath = journalPath("complete.fhj");
    const auto first = fault::runCampaign(params, &program, cfg);
    EXPECT_EQ(first.replayedTrials, 0u);
    const auto second = fault::runCampaign(params, &program, cfg);
    EXPECT_EQ(second.replayedTrials, cfg.injections);
    expectIdentical(first, second);
    std::remove(cfg.journalPath.c_str());
}

TEST(JournalDeathTest, ConfigMismatchRefusesToResume)
{
    auto program = prog();
    auto params = fhParams();
    fault::CampaignConfig cfg = baseConfig();
    cfg.injections = 4;
    cfg.journalPath = journalPath("mismatch.fhj");
    fault::runCampaign(params, &program, cfg);
    // Same journal, different seed: resuming would silently mix two
    // campaigns, so the journal must refuse.
    cfg.seed = cfg.seed + 1;
    EXPECT_DEATH(fault::runCampaign(params, &program, cfg),
                 "different campaign configuration");
    std::remove(cfg.journalPath.c_str());
}

TEST(HungForks, AlwaysLoopingForkExhaustsForkMaxCycles)
{
    // Direct runFork on a program that can never reach its commit
    // targets: the cycle bound is the only thing that ends the fork.
    isa::Program p = spinProg();
    pipeline::CoreParams params; // no detector
    pipeline::Core master(params, &p);
    for (int i = 0; i < 2000; ++i)
        master.tick();
    ASSERT_FALSE(master.allHalted());

    std::vector<u64> targets =
        fault::windowTargets(master, 1'000'000'000ull);
    auto out =
        fault::runFork(master, nullptr, false, targets, /*max_cycles=*/3000);
    EXPECT_FALSE(out.reachedTargets);
    EXPECT_FALSE(out.trapped);
}

TEST(HungForks, ExpiredDeadlineThrowsSimError)
{
    isa::Program p = spinProg();
    pipeline::CoreParams params;
    pipeline::Core master(params, &p);
    for (int i = 0; i < 2000; ++i)
        master.tick();

    std::vector<u64> targets =
        fault::windowTargets(master, 1'000'000'000ull);
    fault::ForkDeadline deadline;
    deadline.at = std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1);
    EXPECT_THROW(fault::runFork(master, nullptr, false, targets,
                                /*max_cycles=*/1'000'000, &deadline),
                 SimError);
}

TEST(HungForks, CampaignCountsHungForksWithoutReclassifying)
{
    // A window far beyond what forkMaxCycles allows: every bare fork
    // hangs (counted), classification still covers every injection,
    // and the ledger drain takes the forceFinalizeAll hung-master
    // path (window >> forkMaxCycles, master not halted).
    auto program = prog();
    auto params = fhParams();
    fault::CampaignConfig cfg = baseConfig();
    cfg.injections = 8;
    cfg.window = 5000;
    cfg.forkMaxCycles = 200;

    const auto serial = fault::runCampaign(params, &program, cfg);
    EXPECT_EQ(serial.injected, cfg.injections);
    EXPECT_GT(serial.hungBare, 0u);
    EXPECT_EQ(serial.masked + serial.noisy + serial.sdc,
              serial.injected);

    cfg.threads = 4;
    const auto parallel = fault::runCampaign(params, &program, cfg);
    expectIdentical(serial, parallel);

    // The legacy golden-fork loop hits its own drain-free path with
    // the same hang accounting.
    cfg.forceGoldenFork = true;
    cfg.threads = 1;
    const auto forked = fault::runCampaign(params, &program, cfg);
    EXPECT_EQ(forked.injected, cfg.injections);
    EXPECT_GT(forked.hungBare, 0u);
}

TEST(Watchdog, TimeoutClassifiesRunawayTrialsAsErrors)
{
    StrictModeOverride strict("0");
    // A 1 ms budget with a huge window: trials blow the
    // deadline inside their forks and must be isolated as trial
    // errors, not wedge the campaign.
    auto program = prog();
    auto params = fhParams();
    fault::CampaignConfig cfg = baseConfig();
    cfg.injections = 4;
    cfg.window = 50000;
    cfg.forkMaxCycles = 1'000'000'000ull;
    cfg.trialTimeoutMs = 1;

    const auto r = fault::runCampaign(params, &program, cfg);
    EXPECT_EQ(r.injected, cfg.injections);
    EXPECT_GT(r.trialErrors, 0u);
    EXPECT_EQ(r.masked + r.noisy + r.sdc + r.trialErrors, r.injected);
}
