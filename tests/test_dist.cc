/**
 * @file
 * The distributed campaign fabric end to end, against real worker
 * processes (fork) on loopback sockets: bit-identical merge at 1/2/4
 * workers (counters AND journal bytes vs a single-process run),
 * elastic re-issue after a worker is SIGKILLed mid-lease (with a torn
 * trial frame on the wire), lease-timeout revocation of a hung
 * worker, deterministic early-halt agreement, and the shutdown-drain
 * -> journal-resume contract.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "dist/coordinator.hh"
#include "dist/messages.hh"
#include "dist/spawner.hh"
#include "dist/spec.hh"
#include "dist/worker.hh"
#include "fault/campaign.hh"
#include "fault/journal.hh"
#include "workload/workload.hh"

using namespace fh;

namespace
{

/** The test campaign: small but classification-diverse (the same
 *  shrunken-footprint ocean the resilience suite uses). */
dist::CampaignSpec
testSpec()
{
    dist::CampaignSpec spec;
    spec.bench = "ocean";
    spec.scheme = "faulthound";
    spec.coreThreads = 2;
    spec.workload.maxThreads = 2;
    spec.workload.footprintDivider = 64;
    spec.campaign.injections = 24;
    spec.campaign.window = 300;
    spec.campaign.seed = 77;
    spec.campaign.threads = 1;
    return spec;
}

fault::CampaignResult
singleProcess(const dist::CampaignSpec &spec,
              const std::string &journal = "")
{
    isa::Program prog = spec.buildProgram();
    fault::CampaignConfig cfg = spec.campaign;
    cfg.threads = 1;
    cfg.journalPath = journal;
    return fault::runCampaign(spec.buildParams(), &prog, cfg);
}

void
expectIdentical(const fault::CampaignResult &a,
                const fault::CampaignResult &b)
{
    EXPECT_EQ(a.injected, b.injected);
    EXPECT_EQ(a.masked, b.masked);
    EXPECT_EQ(a.noisy, b.noisy);
    EXPECT_EQ(a.sdc, b.sdc);
    EXPECT_EQ(a.recovered, b.recovered);
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.uncovered, b.uncovered);
    EXPECT_EQ(a.trialErrors, b.trialErrors);
    EXPECT_EQ(a.hungBare, b.hungBare);
    EXPECT_EQ(a.hungProtected, b.hungProtected);
    EXPECT_EQ(a.skippedProvablyMasked, b.skippedProvablyMasked);
    EXPECT_EQ(a.earlyTerminated, b.earlyTerminated);
    // The vulnerability profile is rebuilt record-by-record on the
    // coordinator; it must merge to the single-process bytes.
    EXPECT_EQ(a.profile, b.profile);
    EXPECT_EQ(a.bins.covered, b.bins.covered);
    EXPECT_EQ(a.bins.secondLevelMasked, b.bins.secondLevelMasked);
    EXPECT_EQ(a.bins.completedReg, b.bins.completedReg);
    EXPECT_EQ(a.bins.archReg, b.bins.archReg);
    EXPECT_EQ(a.bins.renameUncovered, b.bins.renameUncovered);
    EXPECT_EQ(a.bins.noTrigger, b.bins.noTrigger);
    EXPECT_EQ(a.bins.other, b.bins.other);
}

std::string
tempPath(const std::string &name)
{
    const std::string path = testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

pid_t
spawnRealWorker(const dist::Endpoint &ep, unsigned delayMs = 0)
{
    return dist::spawnFn([ep, delayMs] {
        if (delayMs)
            ::usleep(delayMs * 1000);
        dist::WorkerOptions opts;
        opts.endpoint = ep;
        opts.jobs = 1;
        opts.heartbeatMs = 50;
        return dist::runWorker(opts);
    });
}

/** Blocking read of the next frame (child-side helper). */
bool
recvFrame(int fd, dist::FrameReader &reader, dist::Frame &out)
{
    while (!reader.next(out)) {
        if (reader.corrupt())
            return false;
        u8 buf[4096];
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0)
            return false;
        reader.feed(buf, static_cast<size_t>(n));
    }
    return true;
}

/**
 * A worker that executes its first lease correctly for `goodTrials`
 * trials, then writes HALF of the next trial's frame and SIGKILLs
 * itself — the re-issue path plus the torn-write path in one: the
 * coordinator must merge the acknowledged prefix, discard the torn
 * tail, and re-run the rest elsewhere.
 */
pid_t
spawnSabotagedWorker(const dist::Endpoint &ep, u64 goodTrials)
{
    return dist::spawnFn([ep, goodTrials]() -> int {
        std::string error;
        const int fd = dist::connectTo(ep, error);
        if (fd < 0)
            return 1;
        dist::HelloMsg hello;
        hello.pid = static_cast<u64>(::getpid());
        dist::sendFrame(fd, dist::MsgType::Hello, hello.encode());

        dist::FrameReader reader;
        dist::Frame f;
        dist::CampaignSpec spec;
        // v3: the coordinator answers Hello with an explicit verdict.
        if (!recvFrame(fd, reader, f) ||
            static_cast<dist::MsgType>(f.type) !=
                dist::MsgType::HelloAck)
            return 1;
        if (!recvFrame(fd, reader, f) ||
            static_cast<dist::MsgType>(f.type) != dist::MsgType::Spec)
            return 1;
        dist::SpecMsg sm;
        if (!dist::SpecMsg::decode(f.payload, sm) ||
            !dist::CampaignSpec::decode(sm.text, spec, error))
            return 1;
        if (!recvFrame(fd, reader, f) ||
            static_cast<dist::MsgType>(f.type) !=
                dist::MsgType::Assign)
            return 0; // campaign ended without us; nothing to wreck
        dist::AssignMsg a;
        if (!dist::AssignMsg::decode(f.payload, a))
            return 1;

        isa::Program prog = spec.buildProgram();
        fault::CampaignConfig cfg = spec.campaign;
        cfg.threads = 1;
        fault::CampaignSession session(spec.buildParams(), &prog,
                                       cfg);
        u64 sent = 0;
        session.runRange(
            a.begin, a.end,
            [&](u64 trial, const fault::CampaignResult &delta,
                const fault::TrialMeta &meta) {
                dist::TrialMsg t;
                t.trial = trial;
                fault::packTrialCounters(delta, t.d);
                fault::packTrialMeta(meta, t.m);
                const auto frame = dist::encodeFrame(
                    dist::MsgType::Trial, t.encode());
                if (sent < goodTrials) {
                    dist::sendAll(fd, frame.data(), frame.size());
                    ++sent;
                } else {
                    // Torn write: half a frame, then die on the spot.
                    dist::sendAll(fd, frame.data(),
                                  frame.size() / 2);
                    ::raise(SIGKILL);
                }
            });
        return 0;
    });
}

/** A worker that takes a lease and then hangs without heartbeats —
 *  only the lease timeout can unstick the campaign. */
pid_t
spawnHungWorker(const dist::Endpoint &ep)
{
    return dist::spawnFn([ep]() -> int {
        std::string error;
        const int fd = dist::connectTo(ep, error);
        if (fd < 0)
            return 1;
        dist::HelloMsg hello;
        hello.pid = static_cast<u64>(::getpid());
        dist::sendFrame(fd, dist::MsgType::Hello, hello.encode());
        dist::FrameReader reader;
        dist::Frame f;
        while (recvFrame(fd, reader, f)) {
            if (static_cast<dist::MsgType>(f.type) ==
                dist::MsgType::Assign) {
                ::sleep(600); // hold the lease, say nothing
            }
        }
        return 0;
    });
}

struct DistRun
{
    fault::CampaignResult result;
    dist::DistStats stats;
};

DistRun
runDistributed(const dist::CampaignSpec &spec, unsigned workers,
               dist::CoordinatorOptions opts = {},
               const std::string &journal = "")
{
    dist::Coordinator coord(spec, opts);
    std::vector<pid_t> pids;
    for (unsigned i = 0; i < workers; ++i)
        pids.push_back(spawnRealWorker(coord.endpoint()));

    std::unique_ptr<fault::TrialJournal> j;
    if (!journal.empty())
        j = std::make_unique<fault::TrialJournal>(
            journal, spec.campaign,
            filters::to_string(spec.buildParams().detector.scheme));
    DistRun run;
    run.result = coord.run(j.get());
    run.stats = coord.stats();
    for (pid_t pid : pids)
        dist::reap(pid);
    return run;
}

TEST(Dist, BitIdenticalAtAnyWorkerCount)
{
    const dist::CampaignSpec spec = testSpec();
    const std::string refJournal = tempPath("dist_ref.fhj");
    const fault::CampaignResult ref = singleProcess(spec, refJournal);
    ASSERT_GT(ref.injected, 0u);

    for (unsigned workers : {1u, 2u, 4u}) {
        dist::CoordinatorOptions opts;
        opts.workers = workers;
        const std::string journal = tempPath("dist_w.fhj");
        const DistRun run =
            runDistributed(spec, workers, opts, journal);
        expectIdentical(ref, run.result);
        EXPECT_FALSE(run.result.partial);
        EXPECT_EQ(run.stats.workersJoined, workers);
        EXPECT_EQ(run.stats.workersDied, 0u);
        EXPECT_EQ(run.stats.trialsMerged, spec.campaign.injections);
        // The merged journal is byte-identical to the single-process
        // journal: same header, same records, same order.
        EXPECT_EQ(fileBytes(refJournal), fileBytes(journal))
            << "journal diverged at " << workers << " worker(s)";
        std::remove(journal.c_str());
    }
    std::remove(refJournal.c_str());
}

TEST(Dist, UnixDomainSocketWorks)
{
    const dist::CampaignSpec spec = testSpec();
    const fault::CampaignResult ref = singleProcess(spec);

    dist::CoordinatorOptions opts;
    opts.workers = 2;
    opts.listen.unixDomain = true;
    opts.listen.host = tempPath("dist_fabric.sock");
    const DistRun run = runDistributed(spec, 2, opts);
    expectIdentical(ref, run.result);
}

TEST(Dist, SigkilledWorkerMidLeaseIsReissuedIdentically)
{
    const dist::CampaignSpec spec = testSpec();
    const fault::CampaignResult ref = singleProcess(spec);

    dist::CoordinatorOptions opts;
    opts.workers = 2;
    opts.chunk = 12; // two leases over 24 trials
    dist::Coordinator coord(spec, opts);

    // The saboteur connects first (it leases the first chunk), runs
    // two trials honestly, tears the third's frame and SIGKILLs
    // itself; the real worker joins shortly after and must absorb
    // both its own lease and the re-issued remainder.
    const pid_t bad = spawnSabotagedWorker(coord.endpoint(), 2);
    const pid_t good = spawnRealWorker(coord.endpoint(), 100);

    const fault::CampaignResult r = coord.run(nullptr);
    dist::reap(bad);
    dist::reap(good);

    expectIdentical(ref, r);
    EXPECT_FALSE(r.partial);
    EXPECT_EQ(coord.stats().workersDied, 1u);
    EXPECT_GE(coord.stats().rangesReissued, 1u);
    EXPECT_EQ(coord.stats().trialsMerged, spec.campaign.injections);
}

TEST(Dist, HungWorkerLeaseTimesOutAndReissues)
{
    const dist::CampaignSpec spec = testSpec();
    const fault::CampaignResult ref = singleProcess(spec);

    dist::CoordinatorOptions opts;
    opts.workers = 2;
    opts.chunk = 12;
    opts.leaseTimeoutMs = 400; // heartbeats are silent: revoke fast
    dist::Coordinator coord(spec, opts);

    const pid_t hung = spawnHungWorker(coord.endpoint());
    const pid_t good = spawnRealWorker(coord.endpoint(), 100);

    const fault::CampaignResult r = coord.run(nullptr);
    ::kill(hung, SIGKILL);
    dist::reap(hung);
    dist::reap(good);

    expectIdentical(ref, r);
    EXPECT_EQ(coord.stats().workersDied, 1u);
    EXPECT_GE(coord.stats().rangesReissued, 1u);
}

TEST(Dist, EarlyHaltAgreesWithSingleProcess)
{
    // A workload that runs out mid-campaign: the halt point is a pure
    // function of the schedule, so the distributed run must shrink to
    // exactly the single-process trial count.
    dist::CampaignSpec spec = testSpec();
    spec.workload.iterations = 800;
    spec.campaign.injections = 40;
    const fault::CampaignResult ref = singleProcess(spec);
    ASSERT_LT(ref.injected, 40u) << "halt never happened; the test "
                                    "needs a smaller workload";

    dist::CoordinatorOptions opts;
    opts.workers = 2;
    const DistRun run = runDistributed(spec, 2, opts);
    expectIdentical(ref, run.result);
    EXPECT_FALSE(run.result.partial);
}

TEST(Dist, ShutdownDrainsPartialAndJournalResumes)
{
    const dist::CampaignSpec spec = testSpec();
    const fault::CampaignResult ref = singleProcess(spec);
    const std::string journal = tempPath("dist_resume.fhj");

    // Stop after ~a third of the campaign: the coordinator drains the
    // live leases, the journal keeps the merged clean prefix. One
    // worker keeps the drain point deterministic — leases are granted
    // one at a time and the stop lands between two of them.
    dist::CoordinatorOptions opts;
    opts.workers = 1;
    opts.chunk = 4;
    opts.stopAfterMerged = 8;
    const DistRun first = runDistributed(spec, 1, opts, journal);
    EXPECT_TRUE(first.result.partial);
    EXPECT_GE(first.result.injected, 8u);
    EXPECT_LT(first.result.injected, spec.campaign.injections);

    // Resume: replay the journaled prefix, execute the rest, land on
    // the uninterrupted campaign's exact counters.
    dist::CoordinatorOptions opts2;
    opts2.workers = 2;
    const DistRun second = runDistributed(spec, 2, opts2, journal);
    EXPECT_FALSE(second.result.partial);
    EXPECT_EQ(second.result.replayedTrials, first.result.injected);
    expectIdentical(ref, second.result);
    std::remove(journal.c_str());
}

} // namespace

