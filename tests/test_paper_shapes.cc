/**
 * @file
 * Integration tests pinning the paper's *qualitative* results on fast,
 * scaled-down runs. These are the regression guards for the headline
 * claims; the full-size numbers live in bench/ and EXPERIMENTS.md.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"
#include "fault/campaign.hh"
#include "workload/workload.hh"

using namespace fh;

namespace
{

isa::Program
prog(const std::string &name)
{
    workload::WorkloadSpec spec;
    spec.maxThreads = 2;
    return workload::build(name, spec);
}

pipeline::CoreParams
withDetector(const filters::DetectorParams &det)
{
    pipeline::CoreParams p;
    p.detector = det;
    return p;
}

Cycle
cyclesFor(const filters::DetectorParams &det, const isa::Program &p,
          u64 per_thread = 40000)
{
    pipeline::Core core(withDetector(det), &p);
    return core.runPerThreadBudget(per_thread, 1u << 30);
}

} // namespace

TEST(PaperShapes, Fig9_PbfsBiasedIsTheSlowestScheme)
{
    auto program = prog("400.perl");
    Cycle base = cyclesFor(filters::DetectorParams::none(), program);
    Cycle pbfs = cyclesFor(filters::DetectorParams::pbfsSticky(),
                           program);
    Cycle pbfsb = cyclesFor(filters::DetectorParams::pbfsBiased(),
                            program);
    Cycle fh = cyclesFor(filters::DetectorParams::faultHound(),
                         program);

    // PBFS: negligible overhead (sticky filters rarely trigger).
    EXPECT_LT(static_cast<double>(pbfs), 1.08 * base);
    // PBFS-biased: dramatically slower than everything else.
    EXPECT_GT(static_cast<double>(pbfsb), 1.25 * base);
    EXPECT_GT(pbfsb, fh);
    // FaultHound: much cheaper than PBFS-biased.
    EXPECT_LT(static_cast<double>(fh) - base,
              0.7 * (static_cast<double>(pbfsb) - base));
}

TEST(PaperShapes, Fig9_MemoryBoundWorkloadsHideTheOverhead)
{
    auto program = prog("473.astar"); // latency-bound search kernel
    Cycle base = cyclesFor(filters::DetectorParams::none(), program);
    Cycle fh = cyclesFor(filters::DetectorParams::faultHound(),
                         program);
    EXPECT_LT(static_cast<double>(fh), 1.10 * base)
        << "recovery work must hide under the memory stalls";
}

TEST(PaperShapes, Fig8_FaultHoundCoversFarMoreThanPbfs)
{
    auto program = prog("400.perl");
    fault::CampaignConfig cfg;
    cfg.injections = 150;
    auto pbfs = fault::runCampaign(
        withDetector(filters::DetectorParams::pbfsSticky()), &program,
        cfg);
    auto fh = fault::runCampaign(
        withDetector(filters::DetectorParams::faultHound()), &program,
        cfg);
    EXPECT_GT(fh.coverage(), pbfs.coverage())
        << "sticky counters detect only one change per clear";
    EXPECT_GT(fh.coverage(), 0.25);
}

TEST(PaperShapes, Fig8_FaultHoundBeatsBackendOnlyViaRenameCoverage)
{
    auto program = prog("400.perl");
    fault::CampaignConfig cfg;
    cfg.injections = 220;
    auto be = fault::runCampaign(
        withDetector(filters::DetectorParams::faultHoundBackend()),
        &program, cfg);
    auto fh = fault::runCampaign(
        withDetector(filters::DetectorParams::faultHound()), &program,
        cfg);
    // Full FaultHound adds the rename-fault squash: it must never
    // cover less than backend-only (sampling noise allowed for).
    EXPECT_GE(fh.covered() + 2, be.covered());
}

TEST(PaperShapes, Fig7_MostFaultsAreMasked)
{
    auto program = prog("ocean");
    fault::CampaignConfig cfg;
    cfg.injections = 200;
    auto r = fault::runCampaign(
        withDetector(filters::DetectorParams::none()), &program, cfg);
    EXPECT_GT(r.maskedFrac(), 0.6);
    EXPECT_LT(r.sdcFrac(), 0.35);
}

TEST(PaperShapes, Fig10_EnergyOrderingHolds)
{
    auto program = prog("447.dealII");
    auto run = [&](const filters::DetectorParams &det) {
        pipeline::Core core(withDetector(det), &program);
        core.runPerThreadBudget(40000, 1u << 30);
        return energy::computeEnergy(core).total();
    };
    double base = run(filters::DetectorParams::none());
    double be = run(filters::DetectorParams::faultHoundBackend());
    double fh = run(filters::DetectorParams::faultHound());
    EXPECT_GT(be, base);
    // Full FaultHound adds rollbacks for squash alarms: at least as
    // expensive as backend-only, within noise.
    EXPECT_GT(fh, 0.98 * be);
}

TEST(PaperShapes, Fig12_ReplayBeatsFullRollback)
{
    auto program = prog("437.leslie3d");
    auto replay = filters::DetectorParams::faultHoundBackend();
    auto rollback = replay;
    rollback.replayRecovery = false;
    Cycle with_replay = cyclesFor(replay, program);
    Cycle with_rollback = cyclesFor(rollback, program);
    EXPECT_LT(with_replay, with_rollback)
        << "predecessor replay must be cheaper than full rollback";
}

TEST(PaperShapes, Fig12_LsqCheckAddsCoverage)
{
    auto program = prog("400.perl");
    fault::CampaignConfig cfg;
    cfg.injections = 250;
    // Make LSQ faults prominent so the comparison is well-powered.
    cfg.mix.lsqFrac = 0.5;
    cfg.mix.renameFrac = 0.1;
    auto no_lsq = filters::DetectorParams::faultHoundBackend();
    no_lsq.lsqCommitCheck = false;
    auto with_lsq = filters::DetectorParams::faultHoundBackend();
    auto a = fault::runCampaign(withDetector(no_lsq), &program, cfg);
    auto b =
        fault::runCampaign(withDetector(with_lsq), &program, cfg);
    EXPECT_GE(b.covered() + 2, a.covered());
    EXPECT_GT(b.detected, 0u)
        << "the singleton re-execute must declare some faults";
}

TEST(PaperShapes, Fig6_ValueLocalityProfile)
{
    // Most bit positions change in <1% of writes; the low-order bits
    // carry nearly all the churn (Figure 6).
    auto program = prog("specjbb");
    pipeline::CoreParams params =
        withDetector(filters::DetectorParams::none());
    pipeline::Core core(params, &program);
    core.probe().enabled = true;
    core.runPerThreadBudget(40000, 1u << 30);

    const auto &probe = core.probe();
    for (unsigned stream = 0; stream < 3; ++stream) {
        ASSERT_GT(probe.samples[stream], 1000u);
        unsigned under1 = 0;
        double low = 0;
        double high = 0;
        for (unsigned bit = 0; bit < wordBits; ++bit) {
            double frac =
                static_cast<double>(probe.bitChanges[stream][bit]) /
                static_cast<double>(probe.samples[stream]);
            if (frac < 0.01)
                ++under1;
            (bit < 24 ? low : high) += frac;
        }
        EXPECT_GE(under1, 40u) << "stream " << stream;
        EXPECT_GT(low, high) << "stream " << stream;
    }
}
