/**
 * @file
 * Wire-protocol robustness for the distributed campaign fabric:
 * message round-trips, incremental/torn-frame parsing (a worker
 * killed mid-write must never yield a phantom frame), corrupt-length
 * detection, CRC32C trailer verification (every single-byte flip in a
 * frame is caught), endpoint parsing, and the CampaignSpec text
 * round-trip.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dist/messages.hh"
#include "dist/spec.hh"
#include "dist/wire.hh"
#include "fault/journal.hh"

using namespace fh;
using namespace fh::dist;

namespace
{

TEST(Wire, PrimitivesRoundTrip)
{
    std::vector<u8> buf;
    putU8(buf, 0xab);
    putU32(buf, 0xdeadbeefu);
    putU64(buf, 0x0123456789abcdefULL);
    putDouble(buf, 0.85);
    putString(buf, "hello world");
    putString(buf, "");

    Cursor c(buf);
    EXPECT_EQ(c.u8v(), 0xab);
    EXPECT_EQ(c.u32v(), 0xdeadbeefu);
    EXPECT_EQ(c.u64v(), 0x0123456789abcdefULL);
    EXPECT_EQ(c.doublev(), 0.85);
    EXPECT_EQ(c.stringv(), "hello world");
    EXPECT_EQ(c.stringv(), "");
    EXPECT_TRUE(c.done());
}

TEST(Wire, CursorOverrunLatchesFail)
{
    std::vector<u8> buf;
    putU32(buf, 7);
    Cursor c(buf);
    EXPECT_EQ(c.u32v(), 7u);
    EXPECT_EQ(c.u64v(), 0u); // past the end
    EXPECT_TRUE(c.fail());
    EXPECT_FALSE(c.done());
    EXPECT_EQ(c.stringv(), ""); // stays failed, stays in bounds
}

TEST(Wire, FrameRoundTrip)
{
    std::vector<u8> payload{1, 2, 3, 4, 5};
    const auto bytes = encodeFrame(MsgType::Trial, payload);

    FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    Frame f;
    ASSERT_TRUE(reader.next(f));
    EXPECT_EQ(static_cast<MsgType>(f.type), MsgType::Trial);
    EXPECT_EQ(f.payload, payload);
    EXPECT_FALSE(reader.next(f));
    EXPECT_FALSE(reader.corrupt());
}

TEST(Wire, ByteAtATimeFeed)
{
    // Three frames, delivered one byte at a time: exactly three come
    // out, in order, each complete.
    std::vector<u8> stream;
    for (u8 k = 0; k < 3; ++k) {
        std::vector<u8> payload(k + 1, static_cast<u8>(0x40 + k));
        const auto bytes =
            encodeFrame(static_cast<MsgType>(k + 1), payload);
        stream.insert(stream.end(), bytes.begin(), bytes.end());
    }

    FrameReader reader;
    std::vector<Frame> got;
    for (u8 byte : stream) {
        reader.feed(&byte, 1);
        Frame f;
        while (reader.next(f))
            got.push_back(f);
    }
    ASSERT_EQ(got.size(), 3u);
    for (u8 k = 0; k < 3; ++k) {
        EXPECT_EQ(got[k].type, k + 1);
        EXPECT_EQ(got[k].payload,
                  std::vector<u8>(k + 1, static_cast<u8>(0x40 + k)));
    }
    EXPECT_EQ(reader.pendingBytes(), 0u);
}

TEST(Wire, TruncationAtEveryOffsetYieldsNoFrame)
{
    // A stream cut at any point inside a frame (a worker killed
    // mid-write) must yield only the frames fully delivered before
    // the cut — never a partial or phantom frame.
    TrialMsg t;
    t.trial = 41;
    for (size_t i = 0; i < fault::kTrialCounters; ++i)
        t.d[i] = 1000 + i;
    const auto first = encodeFrame(MsgType::Trial, t.encode());
    const auto second = encodeFrame(MsgType::RangeDone,
                                    RangeDoneMsg{42, false, false}
                                        .encode());
    std::vector<u8> stream = first;
    stream.insert(stream.end(), second.begin(), second.end());

    for (size_t cut = 0; cut <= stream.size(); ++cut) {
        FrameReader reader;
        reader.feed(stream.data(), cut);
        Frame f;
        size_t frames = 0;
        while (reader.next(f))
            ++frames;
        EXPECT_FALSE(reader.corrupt()) << "cut at " << cut;
        size_t want = 0;
        if (cut >= first.size())
            ++want;
        if (cut >= stream.size())
            ++want;
        EXPECT_EQ(frames, want) << "cut at " << cut;
    }
}

TEST(Wire, CorruptLengthIsTerminal)
{
    // Length zero.
    std::vector<u8> zero;
    putU32(zero, 0);
    FrameReader r1;
    r1.feed(zero.data(), zero.size());
    Frame f;
    EXPECT_FALSE(r1.next(f));
    EXPECT_TRUE(r1.corrupt());

    // Length too small to hold type + CRC trailer (v3 minimum is 5).
    std::vector<u8> tiny;
    putU32(tiny, 4);
    for (int i = 0; i < 4; ++i)
        putU8(tiny, 0);
    FrameReader r3;
    r3.feed(tiny.data(), tiny.size());
    EXPECT_FALSE(r3.next(f));
    EXPECT_TRUE(r3.corrupt());

    // Length beyond the sanity bound.
    std::vector<u8> huge;
    putU32(huge, kMaxFrame + 1);
    FrameReader r2;
    r2.feed(huge.data(), huge.size());
    EXPECT_FALSE(r2.next(f));
    EXPECT_TRUE(r2.corrupt());
    // Corrupt is latched: feeding valid bytes later changes nothing.
    const auto good = encodeFrame(MsgType::Heartbeat, {});
    r2.feed(good.data(), good.size());
    EXPECT_FALSE(r2.next(f));
    EXPECT_TRUE(r2.corrupt());
}

TEST(Wire, CrcCatchesEverySingleBitFlip)
{
    // Flip every bit of an encoded frame in turn: no flipped variant
    // may ever produce a frame. A flip in the body or trailer is a CRC
    // mismatch; a flip in the length prefix either fails the sanity
    // bounds, fails the CRC (the prefix is covered), or leaves the
    // reader waiting for bytes that never arrive — but never a frame.
    TrialMsg t;
    t.trial = 3;
    for (size_t i = 0; i < fault::kTrialCounters; ++i)
        t.d[i] = 7 * i + 1;
    const auto clean = encodeFrame(MsgType::Trial, t.encode());

    for (size_t bit = 0; bit < clean.size() * 8; ++bit) {
        auto bytes = clean;
        bytes[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
        FrameReader reader;
        reader.feed(bytes.data(), bytes.size());
        Frame f;
        EXPECT_FALSE(reader.next(f)) << "bit " << bit;
        EXPECT_TRUE(reader.corrupt() || reader.pendingBytes() > 0)
            << "bit " << bit;
        if (reader.corrupt() && bit >= 32) {
            EXPECT_EQ(reader.crcErrors(), 1u) << "bit " << bit;
        }
    }

    // The pristine frame still round-trips (the loop above copied).
    FrameReader reader;
    reader.feed(clean.data(), clean.size());
    Frame f;
    ASSERT_TRUE(reader.next(f));
    EXPECT_EQ(reader.crcErrors(), 0u);
}

TEST(Messages, RoundTrips)
{
    HelloMsg hello;
    hello.pid = 4242;
    hello.reconnect = 3;
    HelloMsg hello2;
    ASSERT_TRUE(HelloMsg::decode(hello.encode(), hello2));
    EXPECT_EQ(hello2.version, kProtocolVersion);
    EXPECT_EQ(hello2.pid, 4242u);
    EXPECT_EQ(hello2.reconnect, 3u);

    HelloAckMsg ack;
    ack.accepted = true;
    HelloAckMsg ack2;
    ASSERT_TRUE(HelloAckMsg::decode(ack.encode(), ack2));
    EXPECT_EQ(ack2.version, kProtocolVersion);
    EXPECT_TRUE(ack2.accepted);

    SpecMsg spec{"bench = ocean\nseed = 7\n"};
    SpecMsg spec2;
    ASSERT_TRUE(SpecMsg::decode(spec.encode(), spec2));
    EXPECT_EQ(spec2.text, spec.text);

    AssignMsg assign{100, 250};
    AssignMsg assign2;
    ASSERT_TRUE(AssignMsg::decode(assign.encode(), assign2));
    EXPECT_EQ(assign2.begin, 100u);
    EXPECT_EQ(assign2.end, 250u);

    TrialMsg trial;
    trial.trial = 7;
    for (size_t i = 0; i < fault::kTrialCounters; ++i)
        trial.d[i] = i * i;
    fault::TrialMeta meta;
    meta.stratum = 11;
    meta.structure = 2;
    meta.bit = 63;
    meta.cycleBucket = 5;
    meta.flags = fault::kMetaEarlyTerminated;
    meta.pc = 0xdeadbeefcafeULL;
    meta.exitCycle = 123456789;
    fault::packTrialMeta(meta, trial.m);
    TrialMsg trial2;
    ASSERT_TRUE(TrialMsg::decode(trial.encode(), trial2));
    EXPECT_EQ(trial2.trial, 7u);
    for (size_t i = 0; i < fault::kTrialCounters; ++i)
        EXPECT_EQ(trial2.d[i], i * i);
    // The v2 meta tail survives the wire verbatim: profile and CI
    // state on the coordinator are rebuilt from exactly these fields.
    EXPECT_EQ(fault::unpackTrialMeta(trial2.m), meta);

    RangeDoneMsg done{55, true, false};
    RangeDoneMsg done2;
    ASSERT_TRUE(RangeDoneMsg::decode(done.encode(), done2));
    EXPECT_EQ(done2.nextTrial, 55u);
    EXPECT_TRUE(done2.halted);
    EXPECT_FALSE(done2.stopped);

    HeartbeatMsg hb{12345};
    HeartbeatMsg hb2;
    ASSERT_TRUE(HeartbeatMsg::decode(hb.encode(), hb2));
    EXPECT_EQ(hb2.position, 12345u);
}

TEST(Messages, RejectMalformedPayloads)
{
    // Short payloads.
    HelloMsg hello;
    EXPECT_FALSE(HelloMsg::decode({1, 2, 3}, hello));
    TrialMsg trial;
    EXPECT_FALSE(TrialMsg::decode({0, 0, 0}, trial));
    // Every truncation of a full Trial payload is rejected — in
    // particular the v1 length (counters but no meta tail), so a
    // version-skewed peer cannot slip records past the decoder.
    {
        TrialMsg full;
        full.trial = 9;
        const auto payload = full.encode();
        for (size_t cut = 0; cut < payload.size(); ++cut) {
            TrialMsg out;
            EXPECT_FALSE(TrialMsg::decode(
                std::vector<u8>(payload.begin(),
                                payload.begin() +
                                    static_cast<long>(cut)),
                out))
                << "cut at " << cut;
        }
        TrialMsg out;
        auto extra = payload;
        extra.push_back(0);
        EXPECT_FALSE(TrialMsg::decode(extra, out));
    }
    // Trailing garbage is as bad as missing bytes.
    AssignMsg assign{1, 2};
    auto p = assign.encode();
    p.push_back(0);
    AssignMsg out;
    EXPECT_FALSE(AssignMsg::decode(p, out));
    // Inverted range.
    AssignMsg bad{9, 3};
    EXPECT_FALSE(AssignMsg::decode(bad.encode(), out));
}

TEST(Endpoint, Parsing)
{
    Endpoint ep;
    std::string error;
    ASSERT_TRUE(parseEndpoint("127.0.0.1:8737", ep, error));
    EXPECT_FALSE(ep.unixDomain);
    EXPECT_EQ(ep.host, "127.0.0.1");
    EXPECT_EQ(ep.port, 8737);
    EXPECT_EQ(ep.str(), "127.0.0.1:8737");

    ASSERT_TRUE(parseEndpoint("unix:/tmp/fh.sock", ep, error));
    EXPECT_TRUE(ep.unixDomain);
    EXPECT_EQ(ep.host, "/tmp/fh.sock");
    EXPECT_EQ(ep.str(), "unix:/tmp/fh.sock");

    EXPECT_FALSE(parseEndpoint("no-port", ep, error));
    EXPECT_FALSE(parseEndpoint(":80", ep, error));
    EXPECT_FALSE(parseEndpoint("host:", ep, error));
    EXPECT_FALSE(parseEndpoint("host:99999", ep, error));
    EXPECT_FALSE(parseEndpoint("host:12x", ep, error));
    EXPECT_FALSE(parseEndpoint("unix:", ep, error));
}

TEST(CampaignSpec, RoundTrip)
{
    CampaignSpec spec;
    spec.bench = "ocean";
    spec.scheme = "pbfs-biased";
    spec.coreThreads = 2;
    spec.workload.seed = 99;
    spec.workload.iterations = 5000;
    spec.workload.footprintDivider = 64;
    spec.tcamEntries = 48;
    spec.campaign.injections = 123;
    spec.campaign.window = 456;
    spec.campaign.seed = 789;
    spec.campaign.mix.renameFrac = 0.25;
    spec.campaign.forceGoldenFork = true;
    spec.campaign.trialTimeoutMs = 1500;
    spec.campaign.earlyStop = false;
    spec.campaign.ciTarget = 0.015625;
    spec.campaign.ciWave = 96;

    CampaignSpec out;
    std::string error;
    ASSERT_TRUE(CampaignSpec::decode(spec.encode(), out, error))
        << error;
    EXPECT_EQ(out.bench, "ocean");
    EXPECT_EQ(out.scheme, "pbfs-biased");
    EXPECT_EQ(out.workload.seed, 99u);
    EXPECT_EQ(out.workload.iterations, 5000u);
    EXPECT_EQ(out.workload.footprintDivider, 64u);
    EXPECT_EQ(out.tcamEntries, 48u);
    EXPECT_EQ(out.campaign.injections, 123u);
    EXPECT_EQ(out.campaign.window, 456u);
    EXPECT_EQ(out.campaign.seed, 789u);
    EXPECT_EQ(out.campaign.mix.renameFrac, 0.25);
    EXPECT_TRUE(out.campaign.forceGoldenFork);
    EXPECT_EQ(out.campaign.trialTimeoutMs, 1500u);
    EXPECT_FALSE(out.campaign.earlyStop);
    EXPECT_EQ(out.campaign.ciTarget, 0.015625);
    EXPECT_EQ(out.campaign.ciWave, 96u);
    // Canonical: re-encoding the decoded spec reproduces the text.
    EXPECT_EQ(out.encode(), spec.encode());
}

TEST(CampaignSpec, RejectsUnknownKeysAndBadNames)
{
    CampaignSpec out;
    std::string error;
    CampaignSpec spec;
    EXPECT_FALSE(CampaignSpec::decode(
        spec.encode() + "future_knob = 1\n", out, error));
    EXPECT_NE(error.find("future_knob"), std::string::npos);

    spec.bench = "no-such-bench";
    EXPECT_FALSE(CampaignSpec::decode(spec.encode(), out, error));
    spec.bench = "ocean";
    spec.scheme = "no-such-scheme";
    EXPECT_FALSE(CampaignSpec::decode(spec.encode(), out, error));
}

} // namespace
