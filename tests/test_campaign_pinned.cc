/**
 * @file
 * Pins the exact `CampaignResult` of fixed (seed, injections) pairs
 * against recorded counts. The campaign is specified to be a pure
 * function of the seed — trial plans come from per-trial counter
 * streams and the master advances deterministically — so ANY change
 * to these numbers means a semantic change to the simulated machine,
 * the filters, or the classifier, not a refactor. The perf work on
 * the filter kernels, snapshot copies and pipeline scans must keep
 * every count bit-identical; update these constants only with a
 * deliberate, explained behavior change.
 *
 * The counts below were recorded from the seed revision of the
 * campaign runtime (pre-bit-sliced filters, pre-COW snapshots).
 */

#include <gtest/gtest.h>

#include "fault/campaign.hh"
#include "workload/workload.hh"

namespace
{

using namespace fh;

struct PinnedCase
{
    const char *label;
    filters::DetectorParams detector;
    u64 seed;
    u64 injections;
    // Recorded classification.
    u64 masked;
    u64 noisy;
    u64 sdc;
    u64 recovered;
    u64 detected;
    u64 uncovered;
    // Recorded Figure 11 bins.
    u64 covered;
    u64 secondLevelMasked;
    u64 completedReg;
    u64 archReg;
    u64 renameUncovered;
    u64 noTrigger;
    u64 other;
};

class CampaignPinned : public testing::TestWithParam<PinnedCase>
{
};

TEST_P(CampaignPinned, ResultsMatchRecordedCounts)
{
    const PinnedCase &c = GetParam();

    workload::WorkloadSpec spec;
    spec.maxThreads = 2;
    spec.footprintDivider = 64;
    isa::Program program = workload::build("ocean", spec);

    pipeline::CoreParams params;
    params.detector = c.detector;

    fault::CampaignConfig cfg;
    cfg.injections = c.injections;
    cfg.window = 300;
    cfg.seed = c.seed;

    // The recorded counts must hold for any worker-thread count: the
    // golden-ledger waves shard trials differently at 1 and 4 threads
    // but merge results in trial order.
    for (unsigned threads : {1u, 4u}) {
        SCOPED_TRACE(testing::Message() << "threads=" << threads);
        cfg.threads = threads;

        const fault::CampaignResult r =
            fault::runCampaign(params, &program, cfg);

        EXPECT_EQ(r.injected, c.injections);
        EXPECT_EQ(r.masked, c.masked);
        EXPECT_EQ(r.noisy, c.noisy);
        EXPECT_EQ(r.sdc, c.sdc);
        EXPECT_EQ(r.recovered, c.recovered);
        EXPECT_EQ(r.detected, c.detected);
        EXPECT_EQ(r.uncovered, c.uncovered);
        EXPECT_EQ(r.bins.covered, c.covered);
        EXPECT_EQ(r.bins.secondLevelMasked, c.secondLevelMasked);
        EXPECT_EQ(r.bins.completedReg, c.completedReg);
        EXPECT_EQ(r.bins.archReg, c.archReg);
        EXPECT_EQ(r.bins.renameUncovered, c.renameUncovered);
        EXPECT_EQ(r.bins.noTrigger, c.noTrigger);
        EXPECT_EQ(r.bins.other, c.other);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, CampaignPinned,
    testing::Values(
        PinnedCase{"faulthound", filters::DetectorParams::faultHound(),
                   1234, 48,
                   /*masked*/ 37, /*noisy*/ 3, /*sdc*/ 8,
                   /*recovered*/ 2, /*detected*/ 0, /*uncovered*/ 6,
                   /*covered*/ 2, /*slm*/ 0, /*creg*/ 4, /*areg*/ 1,
                   /*ren*/ 2, /*notrig*/ 0, /*other*/ 0},
        PinnedCase{"pbfs_biased", filters::DetectorParams::pbfsBiased(),
                   99, 32,
                   /*masked*/ 24, /*noisy*/ 6, /*sdc*/ 2,
                   /*recovered*/ 0, /*detected*/ 0, /*uncovered*/ 2,
                   /*covered*/ 0, /*slm*/ 0, /*creg*/ 1, /*areg*/ 0,
                   /*ren*/ 1, /*notrig*/ 0, /*other*/ 0},
        PinnedCase{"pbfs_sticky", filters::DetectorParams::pbfsSticky(),
                   7, 32,
                   /*masked*/ 32, /*noisy*/ 0, /*sdc*/ 0,
                   /*recovered*/ 0, /*detected*/ 0, /*uncovered*/ 0,
                   /*covered*/ 0, /*slm*/ 0, /*creg*/ 0, /*areg*/ 0,
                   /*ren*/ 0, /*notrig*/ 0, /*other*/ 0},
        PinnedCase{"unprotected", filters::DetectorParams::none(),
                   42, 32,
                   /*masked*/ 28, /*noisy*/ 2, /*sdc*/ 2,
                   /*recovered*/ 0, /*detected*/ 0, /*uncovered*/ 2,
                   /*covered*/ 0, /*slm*/ 0, /*creg*/ 0, /*areg*/ 0,
                   /*ren*/ 0, /*notrig*/ 0, /*other*/ 2}),
    [](const testing::TestParamInfo<PinnedCase> &pinfo) {
        return std::string(pinfo.param.label);
    });

} // namespace
