/**
 * @file
 * Exact transition behavior of the filter state machines: PBFS's
 * sticky bit, the biased two-bit machine of Figure 2(b), the standard
 * counter of Figure 2(a), and the generalized N-state machine used by
 * the second-level filter and the squash machines.
 */

#include <gtest/gtest.h>

#include "filters/state_machine.hh"

using namespace fh::filters;

TEST(StickyBit, FirstChangeAlarmsThenSaturates)
{
    StickyBit bit;
    EXPECT_TRUE(bit.unchanging());
    EXPECT_FALSE(bit.observe(false));
    EXPECT_TRUE(bit.observe(true)); // first change alarms
    EXPECT_FALSE(bit.unchanging());
    // Saturated: further changes are silent.
    EXPECT_FALSE(bit.observe(true));
    EXPECT_FALSE(bit.observe(false));
    EXPECT_FALSE(bit.observe(true));
}

TEST(StickyBit, ClearRearmsDetection)
{
    StickyBit bit;
    EXPECT_TRUE(bit.observe(true));
    bit.clear();
    EXPECT_TRUE(bit.unchanging());
    EXPECT_TRUE(bit.observe(true)); // detects again after flash clear
}

TEST(BiasedTwoBit, RequiresTwoNoChangesAfterAChange)
{
    BiasedTwoBit sm;
    EXPECT_TRUE(sm.unchanging());
    EXPECT_TRUE(sm.observe(true)); // change in U alarms, lands in C2
    EXPECT_EQ(sm.state(), BiasedTwoBit::C2);
    EXPECT_FALSE(sm.observe(false)); // C2 -> C1
    EXPECT_EQ(sm.state(), BiasedTwoBit::C1);
    EXPECT_FALSE(sm.observe(false)); // C1 -> U: two no-changes needed
    EXPECT_TRUE(sm.unchanging());
}

TEST(BiasedTwoBit, ChangeInIntermediateStateDoesNotAlarm)
{
    BiasedTwoBit sm;
    sm.observe(true);  // U -> C2 (alarm)
    sm.observe(false); // C2 -> C1
    // Change in C1: no alarm (the bias's coverage cost, Section 3).
    EXPECT_FALSE(sm.observe(true));
    EXPECT_EQ(sm.state(), BiasedTwoBit::C3);
}

TEST(BiasedTwoBit, SaturatesAtC3)
{
    BiasedTwoBit sm;
    sm.observe(true);
    sm.observe(true); // C2 -> C3
    EXPECT_EQ(sm.state(), BiasedTwoBit::C3);
    sm.observe(true);
    EXPECT_EQ(sm.state(), BiasedTwoBit::C3);
    // Three no-changes to return to U from saturation.
    sm.observe(false);
    sm.observe(false);
    EXPECT_FALSE(sm.unchanging());
    sm.observe(false);
    EXPECT_TRUE(sm.unchanging());
}

TEST(StandardTwoBit, DirectTransitionsBothWays)
{
    StandardTwoBit sm;
    EXPECT_TRUE(sm.unchanging());
    EXPECT_TRUE(sm.observe(true)); // U -> C1, alarm
    EXPECT_FALSE(sm.unchanging());
    EXPECT_FALSE(sm.observe(false)); // C1 -> U directly (no bias)
    EXPECT_TRUE(sm.unchanging());
    // The unbiased machine re-alarms on every alternation: this is
    // exactly why PBFS with standard counters has unacceptable
    // false-positive rates (Section 1).
    EXPECT_TRUE(sm.observe(true));
    EXPECT_FALSE(sm.observe(false));
    EXPECT_TRUE(sm.observe(true));
}

TEST(BiasedNState, NeedsNMinusOneQuietObservations)
{
    BiasedNState sm(8);
    EXPECT_TRUE(sm.quiet());
    EXPECT_TRUE(sm.record(true)); // event while quiet: alarm, re-arm
    EXPECT_FALSE(sm.quiet());
    // 7 consecutive quiet observations to re-enter quiet.
    for (int i = 0; i < 6; ++i) {
        EXPECT_FALSE(sm.record(false));
        EXPECT_FALSE(sm.quiet());
    }
    EXPECT_FALSE(sm.record(false));
    EXPECT_TRUE(sm.quiet());
}

TEST(BiasedNState, EventWhileArmedIsSuppressedButRecorded)
{
    BiasedNState sm(8);
    sm.record(true);
    sm.record(false);
    sm.record(false);
    EXPECT_EQ(sm.state(), 5);
    // A new event is suppressed but fully re-arms the machine.
    EXPECT_FALSE(sm.record(true));
    EXPECT_EQ(sm.state(), 7);
}

TEST(BiasedNState, ArmAndReset)
{
    BiasedNState sm(4);
    sm.arm();
    EXPECT_FALSE(sm.quiet());
    EXPECT_EQ(sm.state(), 3);
    sm.reset();
    EXPECT_TRUE(sm.quiet());
}

class BiasedNStateDepth : public testing::TestWithParam<int>
{
};

TEST_P(BiasedNStateDepth, QuietAfterExactlyNMinusOne)
{
    const int n = GetParam();
    BiasedNState sm(static_cast<fh::u8>(n));
    sm.record(true);
    for (int i = 0; i < n - 2; ++i) {
        sm.record(false);
        EXPECT_FALSE(sm.quiet()) << "after " << i + 1 << " quiets";
    }
    sm.record(false);
    EXPECT_TRUE(sm.quiet());
}

INSTANTIATE_TEST_SUITE_P(Depths, BiasedNStateDepth,
                         testing::Values(2, 3, 4, 8, 16));
