/**
 * @file
 * CountingTcam: the inverted (value-indexed) filter organization with
 * nearest-match search and the loosen-or-replace update policy of
 * Figure 3.
 */

#include <gtest/gtest.h>

#include "filters/tcam.hh"
#include "sim/rng.hh"

using namespace fh;
using namespace fh::filters;

namespace
{

TcamParams
smallParams(unsigned entries = 4, unsigned threshold = 2)
{
    TcamParams p;
    p.entries = entries;
    p.loosenThreshold = threshold;
    return p;
}

} // namespace

TEST(Tcam, ColdLookupInstallsSilently)
{
    CountingTcam tcam(smallParams());
    auto res = tcam.lookup(0xabcd);
    EXPECT_FALSE(res.trigger);
    EXPECT_EQ(tcam.validCount(), 1u);
}

TEST(Tcam, ExactRevisitMatches)
{
    CountingTcam tcam(smallParams());
    tcam.lookup(0xabcd);
    auto res = tcam.lookup(0xabcd);
    EXPECT_FALSE(res.trigger);
    EXPECT_EQ(res.mismatchCount, 0u);
}

TEST(Tcam, NearbyValueFillsInvalidEntryFirst)
{
    CountingTcam tcam(smallParams());
    tcam.lookup(0b0000);
    auto res = tcam.lookup(0b0001); // 1-bit mismatch
    // With invalid entries available, a trigger installs fresh.
    EXPECT_TRUE(res.trigger);
    EXPECT_TRUE(res.replaced);
    EXPECT_EQ(tcam.validCount(), 2u);
}

TEST(Tcam, LoosensClosestWhenFullAndWithinThreshold)
{
    CountingTcam tcam(smallParams(2, 2));
    tcam.lookup(0x0);
    tcam.lookup(0xff00);
    // Both entries valid now; 0x1 is 1 bit from the 0x0 filter.
    auto res = tcam.lookup(0x1);
    EXPECT_TRUE(res.trigger);
    EXPECT_FALSE(res.replaced);
    EXPECT_EQ(res.mismatchCount, 1u);
    EXPECT_EQ(res.mismatchMask, 1ULL);
    // The loosened filter now treats bit 0 as changing.
    auto again = tcam.lookup(0x0);
    EXPECT_FALSE(again.trigger) << "wildcarded bit must match";
}

TEST(Tcam, ReplacesLruWhenPastThreshold)
{
    CountingTcam tcam(smallParams(2, 2));
    tcam.lookup(0x0);    // entry 0
    tcam.lookup(0xff00); // entry 1
    tcam.lookup(0x0);    // touch entry 0: entry 1 becomes LRU
    auto res = tcam.lookup(0xffffffffULL); // far from both
    EXPECT_TRUE(res.trigger);
    EXPECT_TRUE(res.replaced);
    EXPECT_EQ(res.entry, 1u) << "LRU entry must be the victim";
    // The new neighborhood matches immediately.
    EXPECT_FALSE(tcam.lookup(0xffffffffULL).trigger);
    // Entry 0's neighborhood survived.
    EXPECT_FALSE(tcam.lookup(0x0).trigger);
}

TEST(Tcam, ProbeDoesNotMutate)
{
    CountingTcam tcam(smallParams());
    tcam.lookup(0x10);
    CountingTcam before = tcam;
    auto res = tcam.probe(0x13);
    EXPECT_TRUE(res.trigger);
    EXPECT_EQ(res.mismatchCount, 2u);
    EXPECT_TRUE(tcam == before) << "probe must not train the filters";
}

TEST(Tcam, ProbeOnColdTcamNeverTriggers)
{
    CountingTcam tcam(smallParams());
    EXPECT_FALSE(tcam.probe(0x1234).trigger);
}

TEST(Tcam, ClusteringReinforcesSharedNeighborhood)
{
    // Values from many "static instructions" around one base cluster
    // into one filter: after the low bits are learned as changing,
    // the whole neighborhood stops triggering.
    CountingTcam tcam(smallParams(4, 4));
    Rng rng; // default-seeded, deterministic
    unsigned early_triggers = 0;
    for (int i = 0; i < 100; ++i) {
        u64 value = 0x5000000 + (rng.next() & 3) * 8;
        early_triggers += tcam.lookup(value).trigger ? 1 : 0;
    }
    // Steady state: the volatile bits are wildcarded most of the time
    // (the biased counters re-arm after runs of no-changes, so some
    // residual triggering remains -- that is the false-positive source
    // the second-level filter exists for).
    unsigned late_triggers = 0;
    for (int i = 0; i < 400; ++i) {
        u64 value = 0x5000000 + (rng.next() & 3) * 8;
        late_triggers += tcam.lookup(value).trigger ? 1 : 0;
    }
    EXPECT_LT(late_triggers / 4.0, static_cast<double>(early_triggers));
    EXPECT_LT(late_triggers, 120u); // well under the ~400 naive rate
    EXPECT_LE(tcam.validCount(), 4u);
}

TEST(Tcam, DistinctNeighborhoodsGetDistinctFilters)
{
    CountingTcam tcam(smallParams(4, 4));
    const u64 bases[3] = {0x1000000, 0x2000000, 0x3000000};
    for (int round = 0; round < 50; ++round)
        for (u64 base : bases)
            tcam.lookup(base + (round & 7));
    // Each neighborhood is held by its own filter: any probe within a
    // cluster mismatches in at most the three learned low bits, never
    // in the cluster-identity bits.
    for (u64 base : bases) {
        auto res = tcam.probe(base + 3);
        EXPECT_LE(res.mismatchCount, 3u);
        EXPECT_EQ(res.mismatchMask & ~0x7ULL, 0u);
    }
    EXPECT_GE(tcam.validCount(), 3u);
}

TEST(Tcam, AccessCounterTracksLookups)
{
    CountingTcam tcam(smallParams());
    for (int i = 0; i < 5; ++i)
        tcam.lookup(i);
    EXPECT_EQ(tcam.accesses(), 5u);
}

class TcamSizes : public testing::TestWithParam<unsigned>
{
};

TEST_P(TcamSizes, FaultBitIsDetectedAfterTraining)
{
    TcamParams p;
    p.entries = GetParam();
    CountingTcam tcam(p);
    for (u64 i = 0; i < 1000; ++i)
        tcam.lookup(0x40000000 + i % 64);
    // A high-bit corruption of an in-neighborhood value triggers.
    auto res = tcam.probe((0x40000000 + 5) ^ (1ULL << 45));
    EXPECT_TRUE(res.trigger);
    EXPECT_TRUE(res.mismatchMask & (1ULL << 45));
}

INSTANTIATE_TEST_SUITE_P(Entries, TcamSizes,
                         testing::Values(1, 2, 8, 16, 32, 64));
