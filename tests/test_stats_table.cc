/**
 * @file
 * stats:: counters/accumulators/histograms/groups and the TextTable
 * renderer used by the benchmark harnesses.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"
#include "sim/text_table.hh"

using namespace fh;
using namespace fh::stats;

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Accumulator, TracksMeanMinMax)
{
    Accumulator a;
    EXPECT_EQ(a.mean(), 0.0);
    a.sample(2.0);
    a.sample(4.0);
    a.sample(9.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.min(), 2.0);
    EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(Histogram, BucketsAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.sample(0.5);
    h.sample(3.0);
    h.sample(9.9);
    h.sample(-4.0); // clamps into first bucket
    h.sample(40.0); // clamps into last bucket
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[4], 2u);
    EXPECT_DOUBLE_EQ(h.bucketLo(1), 2.0);
    EXPECT_DOUBLE_EQ(h.bucketHi(1), 4.0);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h(0.0, 4.0, 2);
    h.sample(1.0, 7);
    EXPECT_EQ(h.total(), 7u);
    EXPECT_EQ(h.buckets()[0], 7u);
}

TEST(Group, CountersCreatedOnFirstUseAndMerged)
{
    Group a("core0");
    ++a.counter("commits");
    a.counter("commits") += 2;
    EXPECT_EQ(a.get("commits"), 3u);
    EXPECT_EQ(a.get("missing"), 0u);

    Group b("core1");
    b.counter("commits") += 10;
    b.counter("loads") += 4;
    a.merge(b);
    EXPECT_EQ(a.get("commits"), 13u);
    EXPECT_EQ(a.get("loads"), 4u);
}

TEST(Group, DumpIsPrefixed)
{
    Group g("fh");
    ++g.counter("x");
    std::ostringstream os;
    g.dump(os);
    EXPECT_NE(os.str().find("fh.x 1"), std::string::npos);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer-name", "23456"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    // Header, separator, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
    // The value column starts at the same offset in both data rows.
    auto lines_start = out.find("a ");
    auto second = out.find("longer-name");
    ASSERT_NE(lines_start, std::string::npos);
    ASSERT_NE(second, std::string::npos);
}

TEST(TextTable, Formatters)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::pct(0.253, 1), "25.3%");
    EXPECT_EQ(TextTable::pct(1.0, 0), "100%");
}
