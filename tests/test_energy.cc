/**
 * @file
 * Energy model: CACTI-lite scaling laws and the event-based core
 * accounting, including the paper's central cost claim — a 32-entry
 * TCAM is far cheaper per access than PBFS's 2K-entry tables.
 */

#include <gtest/gtest.h>

#include "energy/cacti_lite.hh"
#include "energy/energy_model.hh"
#include "workload/workload.hh"

using namespace fh;
using namespace fh::energy;

TEST(CactiLite, SramEnergyGrowsWithSize)
{
    double small = sramAccessEnergy(64, 128);
    double big = sramAccessEnergy(2048, 128);
    EXPECT_GT(big, small);
    EXPECT_GT(small, 0.0);
}

TEST(CactiLite, ReferencePointIsL1Like)
{
    // 32 KB = 262144 bits should cost about the 0.5-unit reference.
    EXPECT_NEAR(sramAccessEnergy(2048, 128), 0.5, 0.05);
}

TEST(CactiLite, SmallTcamIsMuchCheaperThanPbfsTable)
{
    // Section 3.1's cost argument: 32-entry TCAMs are negligible next
    // to 2K-entry PC-indexed tables.
    double tcam = tcamAccessEnergy(32, 192);
    double pbfs = sramAccessEnergy(2048, 192);
    EXPECT_LT(tcam * 5, pbfs);
}

TEST(CactiLite, TcamCostsMoreThanSramAtEqualSize)
{
    EXPECT_GT(tcamAccessEnergy(2048, 192), sramAccessEnergy(2048, 192));
}

namespace
{

pipeline::Core
runOne(const filters::DetectorParams &det, u64 budget = 20000)
{
    static workload::WorkloadSpec spec = [] {
        workload::WorkloadSpec s;
        s.maxThreads = 2;
        s.footprintDivider = 64;
        return s;
    }();
    static isa::Program prog = workload::build("400.perl", spec);
    pipeline::CoreParams p;
    p.detector = det;
    pipeline::Core core(p, &prog);
    core.runPerThreadBudget(budget / 2, 100'000'000);
    return core;
}

} // namespace

TEST(EnergyModel, BaselineHasNoDetectorEnergy)
{
    auto core = runOne(filters::DetectorParams::none());
    auto e = computeEnergy(core);
    EXPECT_EQ(e.detector, 0.0);
    EXPECT_GT(e.pipeline, 0.0);
    EXPECT_GT(e.leakage, 0.0);
    EXPECT_NEAR(e.total(),
                e.pipeline + e.memory + e.detector + e.leakage, 1e-9);
}

TEST(EnergyModel, FaultHoundAddsDetectorAndReplayEnergy)
{
    auto base = computeEnergy(runOne(filters::DetectorParams::none()));
    auto fh =
        computeEnergy(runOne(filters::DetectorParams::faultHound()));
    EXPECT_GT(fh.detector, 0.0);
    EXPECT_GT(fh.total(), base.total());
    // The filter energy must be a small fraction of the total — the
    // tables are tiny (Section 3.1).
    EXPECT_LT(fh.detector, 0.05 * fh.total());
}

TEST(EnergyModel, PbfsTablesCostMorePerAccessThanTcams)
{
    auto pb = runOne(filters::DetectorParams::pbfsSticky());
    auto fh = runOne(filters::DetectorParams::faultHound());
    double pb_per = computeEnergy(pb).detector /
                    static_cast<double>(pb.detector().filterAccesses());
    double fh_per = computeEnergy(fh).detector /
                    static_cast<double>(fh.detector().filterAccesses());
    EXPECT_GT(pb_per, fh_per);
}

TEST(EnergyModel, LeakageScalesWithCycles)
{
    auto a = runOne(filters::DetectorParams::none(), 8000);
    auto b = runOne(filters::DetectorParams::none(), 24000);
    EXPECT_GT(computeEnergy(b).leakage, computeEnergy(a).leakage);
}
