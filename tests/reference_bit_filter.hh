/**
 * @file
 * Scalar reference implementation of BitFilter: the original
 * one-byte-counter-per-bit loop, kept verbatim as the behavioral
 * oracle for the bit-sliced (SWAR) production implementation. Any
 * divergence between the two is a bug in the plane kernels, never in
 * this file — keep it boring.
 */

#ifndef FH_TESTS_REFERENCE_BIT_FILTER_HH
#define FH_TESTS_REFERENCE_BIT_FILTER_HH

#include <algorithm>
#include <array>

#include "filters/bit_filter.hh"
#include "sim/popcount.hh"
#include "sim/types.hh"

namespace fh::filters
{

/** Scalar (per-bit loop) twin of BitFilter; same observable API. */
class ReferenceBitFilter
{
  public:
    explicit ReferenceBitFilter(CounterConfig cfg = CounterConfig::biased())
        : cfg_(cfg)
    {
    }

    void install(u64 value)
    {
        prev_ = value;
        unchangingMask_ = ~0ULL;
        counts_.fill(0);
    }

    u64 mismatchMask(u64 value) const
    {
        return (prev_ ^ value) & unchangingMask_;
    }

    unsigned mismatchCount(u64 value) const
    {
        return popcount64(mismatchMask(value));
    }

    u64 observe(u64 value)
    {
        const u64 changed = prev_ ^ value;
        const u64 alarm = changed & unchangingMask_;

        u64 mask = 0;
        for (unsigned bit = 0; bit < wordBits; ++bit) {
            u8 &count = counts_[bit];
            const bool bit_changed = (changed >> bit) & 1;
            switch (cfg_.kind) {
              case CounterKind::Sticky:
                if (bit_changed)
                    count = 1;
                break;
              case CounterKind::Standard:
              case CounterKind::Biased:
                if (bit_changed) {
                    count = std::min<u8>(
                        static_cast<u8>(count + cfg_.jump), cfg_.maxCount);
                } else if (count > 0) {
                    --count;
                }
                break;
            }
            if (count == 0)
                mask |= 1ULL << bit;
        }

        unchangingMask_ = mask;
        prev_ = value;
        return alarm;
    }

    void clear()
    {
        counts_.fill(0);
        unchangingMask_ = ~0ULL;
    }

    u64 prev() const { return prev_; }
    u64 unchangingMask() const { return unchangingMask_; }
    u8 counterAt(unsigned bit) const { return counts_[bit]; }
    const CounterConfig &config() const { return cfg_; }

  private:
    CounterConfig cfg_;
    u64 prev_ = 0;
    u64 unchangingMask_ = ~0ULL;
    std::array<u8, wordBits> counts_{};
};

} // namespace fh::filters

#endif // FH_TESTS_REFERENCE_BIT_FILTER_HH
