/**
 * @file
 * mem::Memory: dense segment storage, validity checks, trap plumbing.
 */

#include <gtest/gtest.h>

#include "mem/memory.hh"

using namespace fh;
using namespace fh::mem;

TEST(Memory, ReadsZeroInitialized)
{
    Memory m;
    m.addSegment(0x1000, 0x100);
    u64 v = 0xdead;
    EXPECT_EQ(m.read(0x1008, v), AccessResult::Ok);
    EXPECT_EQ(v, 0u);
}

TEST(Memory, WriteReadRoundTrip)
{
    Memory m;
    m.addSegment(0x1000, 0x100);
    EXPECT_EQ(m.write(0x1010, 0xfeedULL), AccessResult::Ok);
    u64 v = 0;
    EXPECT_EQ(m.read(0x1010, v), AccessResult::Ok);
    EXPECT_EQ(v, 0xfeedULL);
}

TEST(Memory, UnmappedAccessFaults)
{
    Memory m;
    m.addSegment(0x1000, 0x100);
    u64 v = 0;
    EXPECT_EQ(m.read(0x2000, v), AccessResult::Unmapped);
    EXPECT_EQ(m.write(0x0ff8, 1), AccessResult::Unmapped);
    EXPECT_EQ(m.check(0x1100), AccessResult::Unmapped); // one past end
    EXPECT_EQ(m.check(0x10f8), AccessResult::Ok);       // last word
}

TEST(Memory, MisalignedAccessFaults)
{
    Memory m;
    m.addSegment(0x1000, 0x100);
    u64 v = 0;
    EXPECT_EQ(m.read(0x1004, v), AccessResult::Misaligned);
    EXPECT_EQ(m.write(0x1001, 1), AccessResult::Misaligned);
}

TEST(Memory, MultipleDisjointSegments)
{
    Memory m;
    m.addSegment(0x1000, 0x100);
    m.addSegment(0x9000, 0x200);
    EXPECT_EQ(m.write(0x1000, 1), AccessResult::Ok);
    EXPECT_EQ(m.write(0x9000, 2), AccessResult::Ok);
    EXPECT_EQ(m.check(0x5000), AccessResult::Unmapped);
    EXPECT_EQ(m.footprintWords(), (0x100 + 0x200) / 8u);
}

TEST(Memory, PeekPokeBackdoor)
{
    Memory m;
    m.addSegment(0x1000, 0x100);
    m.poke(0x1020, 77);
    EXPECT_EQ(m.peek(0x1020), 77u);
    EXPECT_EQ(m.peek(0x5000), 0u); // outside: reads as zero
    m.poke(0x5000, 1);             // outside: ignored
    EXPECT_EQ(m.peek(0x5000), 0u);
}

TEST(Memory, SameContentsDetectsDivergence)
{
    Memory a;
    a.addSegment(0x1000, 0x100);
    Memory b = a;
    EXPECT_TRUE(a.sameContents(b));
    b.poke(0x1008, 5);
    EXPECT_FALSE(a.sameContents(b));
    a.poke(0x1008, 5);
    EXPECT_TRUE(a.sameContents(b));
}

TEST(Memory, CopyIsIndependent)
{
    Memory a;
    a.addSegment(0x1000, 0x100);
    a.poke(0x1000, 1);
    Memory b = a;
    b.poke(0x1000, 2);
    EXPECT_EQ(a.peek(0x1000), 1u);
    EXPECT_EQ(b.peek(0x1000), 2u);
}

// ---- Incremental per-segment content digests (golden ledger) ----

namespace
{

/** Recompute a segment's digest from scratch through the public
 *  contract: XOR of wordHash(addr, word) over nonzero words. */
u64
referenceDigest(const Memory &m, const Segment &seg)
{
    u64 d = 0;
    for (Addr a = seg.base; a < seg.base + seg.size; a += 8)
        d ^= Memory::wordHash(a, m.peek(a));
    return d;
}

} // namespace

TEST(MemoryDigest, FreshSegmentDigestsToZero)
{
    Memory m;
    m.addSegment(0x1000, 0x100);
    ASSERT_EQ(m.segmentCount(), 1u);
    EXPECT_EQ(m.segmentDigest(0), 0u);
}

TEST(MemoryDigest, TracksWritesIncrementally)
{
    Memory m;
    m.addSegment(0x1000, 0x100);
    m.addSegment(0x9000, 0x200);
    const auto segs = m.segments();
    m.write(0x1008, 42);
    m.write(0x1010, 7);
    m.poke(0x9008, 99);
    m.write(0x1008, 43); // overwrite: old contribution must cancel
    for (size_t i = 0; i < m.segmentCount(); ++i)
        EXPECT_EQ(m.segmentDigest(i), referenceDigest(m, segs[i]));
}

TEST(MemoryDigest, ContentDeterminedRegardlessOfHistory)
{
    // Two memories reach the same contents along different write
    // sequences; the digests must agree (XOR multiset property).
    Memory a, b;
    a.addSegment(0x1000, 0x100);
    b.addSegment(0x1000, 0x100);
    a.write(0x1000, 1);
    a.write(0x1008, 2);
    a.write(0x1000, 5);
    b.write(0x1008, 9);
    b.write(0x1008, 2);
    b.write(0x1000, 5);
    EXPECT_EQ(a.segmentDigest(0), b.segmentDigest(0));
    // Writing a word back to zero restores the fresh digest.
    a.write(0x1000, 0);
    a.write(0x1008, 0);
    EXPECT_EQ(a.segmentDigest(0), 0u);
}

TEST(MemoryDigest, UnequalDigestsProveUnequalContents)
{
    Memory a;
    a.addSegment(0x1000, 0x100);
    a.write(0x1018, 3);
    Memory b = a; // COW copy: shares words AND digest
    EXPECT_EQ(a.segmentDigest(0), b.segmentDigest(0));
    b.write(0x1018, 4);
    EXPECT_NE(a.segmentDigest(0), b.segmentDigest(0));
    EXPECT_FALSE(a.sameContents(b));
    b.write(0x1018, 3); // converge again (COW already detached)
    EXPECT_EQ(a.segmentDigest(0), b.segmentDigest(0));
    EXPECT_TRUE(a.sameContents(b));
}
