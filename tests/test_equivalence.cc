/**
 * @file
 * The master property test: for every benchmark, every thread count,
 * and every detection scheme, the timing core's final architectural
 * state must equal the functional executor's. This pins down (a) the
 * out-of-order pipeline's correctness (renaming, forwarding, squash,
 * commit) and (b) the architectural transparency of FaultHound's
 * recovery mechanisms — false-positive replays and rollbacks must
 * never change computed results.
 */

#include <gtest/gtest.h>

#include "filters/detector.hh"
#include "isa/functional.hh"
#include "pipeline/core.hh"
#include "workload/workload.hh"

using namespace fh;

namespace
{

isa::Program
smallProgram(const std::string &name, unsigned threads, u64 iterations)
{
    workload::WorkloadSpec spec;
    spec.iterations = iterations;
    spec.maxThreads = threads;
    spec.footprintDivider = 64; // small, fast, still multi-segment
    return workload::build(name, spec);
}

/** Run the program functionally for every thread in its own memory. */
std::vector<isa::ArchState>
functionalResult(const isa::Program &prog, unsigned threads,
                 mem::Memory &memory)
{
    std::vector<isa::ArchState> states;
    for (unsigned tid = 0; tid < threads; ++tid) {
        isa::ArchState state = isa::initialState(prog, tid);
        u64 guard = 0;
        while (!state.halted) {
            EXPECT_EQ(isa::stepArch(prog, memory, state),
                      isa::Trap::None)
                << prog.name << " trapped functionally";
            EXPECT_LT(++guard, 50'000'000u) << "functional run hung";
            if (testing::Test::HasFailure())
                break;
        }
        states.push_back(state);
    }
    return states;
}

struct Config
{
    std::string bench;
    unsigned threads;
    filters::Scheme scheme;
};

std::string
configName(const testing::TestParamInfo<Config> &info)
{
    std::string n = info.param.bench + "_t" +
                    std::to_string(info.param.threads) + "_" +
                    filters::to_string(info.param.scheme);
    for (auto &c : n)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return n;
}

class EquivalenceTest : public testing::TestWithParam<Config>
{
};

} // namespace

TEST_P(EquivalenceTest, TimingMatchesFunctional)
{
    const Config &cfg = GetParam();
    isa::Program prog = smallProgram(cfg.bench, cfg.threads, 3000);

    pipeline::CoreParams params;
    params.threads = cfg.threads;
    switch (cfg.scheme) {
      case filters::Scheme::None:
        params.detector = filters::DetectorParams::none();
        break;
      case filters::Scheme::Pbfs:
        params.detector = filters::DetectorParams::pbfsSticky();
        break;
      case filters::Scheme::PbfsBiased:
        params.detector = filters::DetectorParams::pbfsBiased();
        break;
      case filters::Scheme::FaultHound:
        params.detector = filters::DetectorParams::faultHound();
        break;
    }

    pipeline::Core core(params, &prog);
    core.run(30'000'000);
    ASSERT_TRUE(core.allHalted()) << "timing run did not finish";
    ASSERT_FALSE(core.anyTrap());

    mem::Memory ref_mem;
    prog.load(ref_mem);
    auto ref = functionalResult(prog, cfg.threads, ref_mem);

    for (unsigned tid = 0; tid < cfg.threads; ++tid) {
        isa::ArchState got = core.archState(tid);
        for (unsigned r = 0; r < isa::numArchRegs; ++r) {
            EXPECT_EQ(got.regs[r], ref[tid].regs[r])
                << "thread " << tid << " r" << r;
        }
        EXPECT_TRUE(got.halted);
    }
    EXPECT_TRUE(core.memory().sameContents(ref_mem))
        << "memory contents diverged";
}

namespace
{

std::vector<Config>
allConfigs()
{
    std::vector<Config> out;
    for (const auto &info : workload::all()) {
        out.push_back({info.name, 1, filters::Scheme::None});
        out.push_back({info.name, 2, filters::Scheme::None});
        out.push_back({info.name, 2, filters::Scheme::FaultHound});
    }
    // Schemes beyond FaultHound: spot-check on representative kernels.
    out.push_back({"400.perl", 2, filters::Scheme::Pbfs});
    out.push_back({"429.mcf", 2, filters::Scheme::Pbfs});
    out.push_back({"400.perl", 2, filters::Scheme::PbfsBiased});
    out.push_back({"437.leslie3d", 2, filters::Scheme::PbfsBiased});
    out.push_back({"ocean", 4, filters::Scheme::FaultHound});
    return out;
}

} // namespace

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, EquivalenceTest,
                         testing::ValuesIn(allConfigs()), configName);
