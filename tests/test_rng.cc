/**
 * @file
 * Rng: determinism, range contracts, stream independence.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hh"

using namespace fh;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsTheStream)
{
    Rng a(7);
    u64 first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(3);
    for (u64 bound : {1ull, 2ull, 7ull, 100ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneAlwaysZero)
{
    Rng rng(5);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    std::set<u64> seen;
    for (int i = 0; i < 2000; ++i) {
        u64 v = rng.range(3, 5);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 5u);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 3u); // all three values occur
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(17);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, GeometricMeanMatches)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(0.2));
    EXPECT_NEAR(sum / n, 5.0, 0.3); // mean of geometric(p) = 1/p
}

TEST(Rng, ForkedStreamsAreIndependent)
{
    Rng parent(23);
    Rng child = parent.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += parent.next() == child.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, StreamIsPureFunctionOfSeedAndIndex)
{
    Rng a = Rng::stream(42, 7);
    Rng b = Rng::stream(42, 7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, AdjacentStreamIndicesDoNotCorrelate)
{
    // The campaign derives trial i's stream as stream(seed, i), so
    // neighboring trials must behave like independent generators
    // (same criterion as ForkedStreamsAreIndependent).
    for (u64 t = 0; t < 32; ++t) {
        Rng a = Rng::stream(1, t);
        Rng b = Rng::stream(1, t + 1);
        int same = 0;
        for (int i = 0; i < 100; ++i)
            same += a.next() == b.next() ? 1 : 0;
        EXPECT_LT(same, 3) << "streams " << t << " and " << t + 1;
    }
}

TEST(Rng, StreamsWithDifferentSeedsDiverge)
{
    Rng a = Rng::stream(1, 5);
    Rng b = Rng::stream(2, 5);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, StreamFirstDrawsLookBalanced)
{
    // Cross-stream balance: the first draw of stream i, over many i,
    // must satisfy the same per-bit criterion as one stream's output
    // (mirrors BitsLookBalanced).
    int ones[64] = {};
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        u64 v = Rng::stream(31, static_cast<u64>(i)).next();
        for (int b = 0; b < 64; ++b)
            ones[b] += (v >> b) & 1;
    }
    for (int b = 0; b < 64; ++b)
        EXPECT_NEAR(static_cast<double>(ones[b]) / n, 0.5, 0.06)
            << "bit " << b;
}

TEST(Rng, StreamFirstUniformsAverageHalf)
{
    // Mirrors UniformInUnitInterval, but sampling across streams.
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += Rng::stream(13, static_cast<u64>(i)).uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, CopyablePreservesState)
{
    Rng a(29);
    a.next();
    Rng b = a;
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BitsLookBalanced)
{
    Rng rng(31);
    int ones[64] = {};
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
        u64 v = rng.next();
        for (int b = 0; b < 64; ++b)
            ones[b] += (v >> b) & 1;
    }
    for (int b = 0; b < 64; ++b)
        EXPECT_NEAR(static_cast<double>(ones[b]) / n, 0.5, 0.06)
            << "bit " << b;
}
