/**
 * @file
 * The functional executor: small programs with loops, memory traffic,
 * and trap behavior. This model is the golden oracle of every tandem
 * experiment, so its semantics are pinned here in detail.
 */

#include <gtest/gtest.h>

#include "isa/functional.hh"

using namespace fh;
using namespace fh::isa;

namespace
{

Program
sumLoop(u64 n)
{
    // r4 = sum(1..n), storing partials to memory.
    ProgramBuilder b("sum");
    b.addSegment(0x1000, 0x800);
    b.emit(makeLi(2, 1));                  // i = 1
    b.emit(makeLi(3, static_cast<i64>(n + 1)));
    b.emit(makeLi(4, 0));                  // sum
    u32 loop = b.here();
    b.emit(makeRRR(Op::Add, 4, 4, 2));
    b.emit(makeRRI(Op::Andi, 5, 2, 63));
    b.emit(makeRRI(Op::Slli, 5, 5, 3));
    b.emit(makeRRI(Op::Addi, 5, 5, 0x1000));
    b.emit(makeSt(5, 4, 0));
    b.emit(makeRRI(Op::Addi, 2, 2, 1));
    b.emit(makeBranch(Op::Blt, 2, 3, loop));
    Program p = b.take();
    p.threadBases = {0};
    return p;
}

} // namespace

TEST(Functional, ComputesLoopSum)
{
    Program p = sumLoop(100);
    mem::Memory m;
    p.load(m);
    Functional f(&p, &m);
    f.run(100000);
    EXPECT_TRUE(f.halted());
    EXPECT_EQ(f.state().regs[4], 5050u);
    EXPECT_EQ(f.lastTrap(), Trap::None);
}

TEST(Functional, StoresReachMemory)
{
    Program p = sumLoop(10);
    mem::Memory m;
    p.load(m);
    Functional f(&p, &m);
    f.run(100000);
    // i=10 stored sum(1..10)=55 at slot 10.
    EXPECT_EQ(m.peek(0x1000 + 10 * 8), 55u);
}

TEST(Functional, LoadsSeeEarlierStores)
{
    ProgramBuilder b("rt");
    b.addSegment(0x1000, 0x100);
    b.emit(makeLi(2, 0x1000));
    b.emit(makeLi(3, 777));
    b.emit(makeSt(2, 3, 8));
    b.emit(makeLd(4, 2, 8));
    Program p = b.take();
    mem::Memory m;
    p.load(m);
    Functional f(&p, &m);
    f.run(100);
    EXPECT_EQ(f.state().regs[4], 777u);
}

TEST(Functional, R0IsHardwiredZero)
{
    ProgramBuilder b("r0");
    b.emit(makeLi(0, 99)); // attempt to write r0
    b.emit(makeRRI(Op::Addi, 2, 0, 5));
    Program p = b.take();
    mem::Memory m;
    p.load(m);
    Functional f(&p, &m);
    f.run(10);
    EXPECT_EQ(f.state().regs[0], 0u);
    EXPECT_EQ(f.state().regs[2], 5u);
}

TEST(Functional, UnmappedLoadTraps)
{
    ProgramBuilder b("trap");
    b.addSegment(0x1000, 0x100);
    b.emit(makeLi(2, 0x9000));
    b.emit(makeLd(3, 2, 0));
    Program p = b.take();
    mem::Memory m;
    p.load(m);
    Functional f(&p, &m);
    f.step();
    EXPECT_EQ(f.step(), Trap::MemUnmapped);
    EXPECT_TRUE(f.halted());
}

TEST(Functional, MisalignedStoreTraps)
{
    ProgramBuilder b("trap2");
    b.addSegment(0x1000, 0x100);
    b.emit(makeLi(2, 0x1004));
    b.emit(makeSt(2, 0, 0));
    Program p = b.take();
    mem::Memory m;
    p.load(m);
    Functional f(&p, &m);
    f.step();
    EXPECT_EQ(f.step(), Trap::MemMisaligned);
}

TEST(Functional, RunStopsAtBudget)
{
    Program p = sumLoop(1000000);
    mem::Memory m;
    p.load(m);
    Functional f(&p, &m);
    EXPECT_EQ(f.run(500), 500u);
    EXPECT_FALSE(f.halted());
    EXPECT_EQ(f.retired(), 500u);
}

TEST(Functional, StepArchMatchesFunctionalObject)
{
    Program p = sumLoop(50);
    mem::Memory m1;
    mem::Memory m2;
    p.load(m1);
    p.load(m2);
    Functional f(&p, &m1);
    ArchState s = initialState(p, 0);
    for (int i = 0; i < 400 && !s.halted; ++i) {
        f.step();
        stepArch(p, m2, s);
    }
    EXPECT_TRUE(s == f.state());
    EXPECT_TRUE(m1.sameContents(m2));
}
