/**
 * @file
 * Workload generators: every Table 1 benchmark must build, run to
 * completion functionally, be deterministic, and keep its threads in
 * disjoint segments.
 */

#include <gtest/gtest.h>

#include "isa/functional.hh"
#include "workload/workload.hh"

using namespace fh;

namespace
{

workload::WorkloadSpec
tinySpec(u64 iterations = 500)
{
    workload::WorkloadSpec spec;
    spec.iterations = iterations;
    spec.maxThreads = 2;
    spec.footprintDivider = 64;
    return spec;
}

} // namespace

TEST(Workload, RegistryHasAllFourteenBenchmarks)
{
    EXPECT_EQ(workload::all().size(), 14u);
    EXPECT_NE(workload::find("429.mcf"), nullptr);
    EXPECT_EQ(workload::find("nonexistent"), nullptr);
}

TEST(Workload, BuildIsDeterministic)
{
    auto a = workload::build("400.perl", tinySpec());
    auto b = workload::build("400.perl", tinySpec());
    EXPECT_EQ(a.text.size(), b.text.size());
    for (size_t i = 0; i < a.text.size(); ++i)
        EXPECT_TRUE(a.text[i] == b.text[i]) << "at " << i;
    EXPECT_EQ(a.data, b.data);
    EXPECT_EQ(a.threadBases, b.threadBases);
}

TEST(Workload, DifferentSeedsChangeData)
{
    auto spec1 = tinySpec();
    auto spec2 = tinySpec();
    spec2.seed = 999;
    auto a = workload::build("401.bzip2", spec1);
    auto b = workload::build("401.bzip2", spec2);
    EXPECT_NE(a.data, b.data);
}

class AllBenchmarks : public testing::TestWithParam<std::string>
{
};

TEST_P(AllBenchmarks, BuildsWithSaneStructure)
{
    auto prog = workload::build(GetParam(), tinySpec());
    EXPECT_FALSE(prog.text.empty());
    EXPECT_EQ(prog.text.back().op, isa::Op::Halt);
    EXPECT_EQ(prog.threadBases.size(), 2u);
    EXPECT_EQ(prog.segments.size(), 2u);
    // Branch targets must be in range.
    for (const auto &inst : prog.text)
        if (isa::isBranch(inst.op))
            EXPECT_LT(inst.target, prog.text.size());
}

TEST_P(AllBenchmarks, ThreadsRunFunctionallyInDisjointSegments)
{
    auto prog = workload::build(GetParam(), tinySpec());
    mem::Memory m;
    prog.load(m);

    for (unsigned tid = 0; tid < 2; ++tid) {
        isa::ArchState s = isa::initialState(prog, tid);
        u64 guard = 0;
        const auto &my_seg = prog.segments[tid];
        const auto &other_seg = prog.segments[1 - tid];
        while (!s.halted) {
            // Check memory operands against the thread's segment.
            const auto &inst = prog.text[s.pc];
            if (isa::isMemory(inst.op)) {
                Addr a = isa::effectiveAddr(inst, s.regs[inst.rs1]);
                EXPECT_TRUE(my_seg.contains(a)) << GetParam();
                EXPECT_FALSE(other_seg.contains(a));
            }
            ASSERT_EQ(isa::stepArch(prog, m, s), isa::Trap::None)
                << GetParam() << " trapped";
            ASSERT_LT(++guard, 3'000'000u) << GetParam() << " hung";
        }
    }
}

TEST_P(AllBenchmarks, FootprintDividerShrinksSegments)
{
    auto small = tinySpec();
    auto big = tinySpec();
    big.footprintDivider = 1;
    auto ps = workload::build(GetParam(), small);
    auto pb = workload::build(GetParam(), big);
    EXPECT_LE(ps.segments[0].size, pb.segments[0].size);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, AllBenchmarks,
    testing::Values("400.perl", "401.bzip2", "429.mcf", "473.astar",
                    "447.dealII", "416.gamess", "437.leslie3d",
                    "apache", "specjbb", "oltp", "ocean", "raytrace",
                    "volrend", "water-nsq"),
    [](const testing::TestParamInfo<std::string> &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(Workload, FourThreadLayoutsForSrt)
{
    workload::WorkloadSpec spec = tinySpec();
    spec.maxThreads = 4;
    auto prog = workload::build("ocean", spec);
    EXPECT_EQ(prog.threadBases.size(), 4u);
    EXPECT_EQ(prog.segments.size(), 4u);
    for (unsigned i = 0; i < 4; ++i)
        for (unsigned j = i + 1; j < 4; ++j) {
            const auto &a = prog.segments[i];
            const auto &b = prog.segments[j];
            bool disjoint = a.base + a.size <= b.base ||
                            b.base + b.size <= a.base;
            EXPECT_TRUE(disjoint);
        }
}
